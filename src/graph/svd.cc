#include "graph/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

namespace {

// Cyclic Jacobi eigendecomposition of a small symmetric matrix `m`
// (n x n, row-major, destroyed). Writes eigenvalues into `eigenvalues`
// and the corresponding orthonormal eigenvectors into the *columns* of
// `eigenvectors` (n x n).
void JacobiEigen(std::vector<double>& m, size_t n,
                 std::vector<double>& eigenvalues,
                 std::vector<double>& eigenvectors) {
  eigenvectors.assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) eigenvectors[i * n + i] = 1.0;

  constexpr int kMaxSweeps = 60;
  constexpr double kTol = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += m[p * n + q] * m[p * n + q];
    }
    if (off < kTol) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = m[p * n + p];
        const double aqq = m[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t k = 0; k < n; ++k) {
          const double mkp = m[k * n + p];
          const double mkq = m[k * n + q];
          m[k * n + p] = c * mkp - s * mkq;
          m[k * n + q] = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m[p * n + k];
          const double mqk = m[q * n + k];
          m[p * n + k] = c * mpk - s * mqk;
          m[q * n + k] = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = eigenvectors[k * n + p];
          const double vkq = eigenvectors[k * n + q];
          eigenvectors[k * n + p] = c * vkp - s * vkq;
          eigenvectors[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }
  eigenvalues.resize(n);
  for (size_t i = 0; i < n; ++i) eigenvalues[i] = m[i * n + i];
}

}  // namespace

void OrthonormalizeColumns(Matrix& m, Rng& rng) {
  const size_t rows = m.rows();
  const size_t cols = m.cols();
  // Modified Gram-Schmidt, column-major access on row-major storage.
  for (size_t j = 0; j < cols; ++j) {
    for (size_t prev = 0; prev < j; ++prev) {
      double dot = 0.0;
      for (size_t r = 0; r < rows; ++r) {
        dot += static_cast<double>(m.At(r, j)) * m.At(r, prev);
      }
      for (size_t r = 0; r < rows; ++r) {
        m.At(r, j) -= static_cast<float>(dot) * m.At(r, prev);
      }
    }
    double norm_sq = 0.0;
    for (size_t r = 0; r < rows; ++r) {
      norm_sq += static_cast<double>(m.At(r, j)) * m.At(r, j);
    }
    double norm = std::sqrt(norm_sq);
    if (norm < 1e-10) {
      // Degenerate direction: re-seed with random data and retry against
      // the already-fixed prefix.
      for (size_t r = 0; r < rows; ++r) {
        m.At(r, j) = static_cast<float>(rng.NextGaussian());
      }
      for (size_t prev = 0; prev < j; ++prev) {
        double dot = 0.0;
        for (size_t r = 0; r < rows; ++r) {
          dot += static_cast<double>(m.At(r, j)) * m.At(r, prev);
        }
        for (size_t r = 0; r < rows; ++r) {
          m.At(r, j) -= static_cast<float>(dot) * m.At(r, prev);
        }
      }
      norm_sq = 0.0;
      for (size_t r = 0; r < rows; ++r) {
        norm_sq += static_cast<double>(m.At(r, j)) * m.At(r, j);
      }
      norm = std::sqrt(norm_sq);
      BSLREC_CHECK(norm > 1e-10);
    }
    const float inv = static_cast<float>(1.0 / norm);
    for (size_t r = 0; r < rows; ++r) m.At(r, j) *= inv;
  }
}

SvdResult TruncatedSvd(const SparseMatrix& a, size_t rank, size_t power_iters,
                       Rng& rng) {
  const size_t rows = a.rows();
  const size_t cols = a.cols();
  BSLREC_CHECK(rank > 0 && rank <= std::min(rows, cols));

  // Range sketch Y = A * G, then power iterations to sharpen the spectrum.
  Matrix g(cols, rank);
  g.InitGaussian(rng, 1.0f);
  Matrix y(rows, rank);
  a.Multiply(g, y);
  OrthonormalizeColumns(y, rng);
  Matrix z(cols, rank);
  for (size_t it = 0; it < power_iters; ++it) {
    a.TransposeMultiply(y, z);
    OrthonormalizeColumns(z, rng);
    a.Multiply(z, y);
    OrthonormalizeColumns(y, rng);
  }

  // Project: Z2 = A^T Y (cols x rank); B = Z2^T has B B^T = Z2^T Z2.
  Matrix z2(cols, rank);
  a.TransposeMultiply(y, z2);
  std::vector<double> small(rank * rank, 0.0);
  for (size_t i = 0; i < rank; ++i) {
    for (size_t j = i; j < rank; ++j) {
      double acc = 0.0;
      for (size_t r = 0; r < cols; ++r) {
        acc += static_cast<double>(z2.At(r, i)) * z2.At(r, j);
      }
      small[i * rank + j] = acc;
      small[j * rank + i] = acc;
    }
  }
  std::vector<double> eigenvalues, w;
  JacobiEigen(small, rank, eigenvalues, w);

  // Order by descending eigenvalue.
  std::vector<size_t> order(rank);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t yy) {
    return eigenvalues[x] > eigenvalues[yy];
  });

  SvdResult res;
  res.u = Matrix(rows, rank);
  res.v = Matrix(cols, rank);
  res.singular.resize(rank);
  for (size_t jj = 0; jj < rank; ++jj) {
    const size_t src = order[jj];
    const double sigma = std::sqrt(std::max(0.0, eigenvalues[src]));
    res.singular[jj] = static_cast<float>(sigma);
    // U column = Y * w_col.
    for (size_t r = 0; r < rows; ++r) {
      double acc = 0.0;
      for (size_t k = 0; k < rank; ++k) {
        acc += static_cast<double>(y.At(r, k)) * w[k * rank + src];
      }
      res.u.At(r, jj) = static_cast<float>(acc);
    }
    // V column = Z2 * w_col / sigma.
    const double inv_sigma = sigma > 1e-12 ? 1.0 / sigma : 0.0;
    for (size_t r = 0; r < cols; ++r) {
      double acc = 0.0;
      for (size_t k = 0; k < rank; ++k) {
        acc += static_cast<double>(z2.At(r, k)) * w[k * rank + src];
      }
      res.v.At(r, jj) = static_cast<float>(acc * inv_sigma);
    }
  }
  return res;
}

}  // namespace bslrec
