#include "graph/propagation.h"

#include <algorithm>
#include <numeric>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

SparseMatrix::SparseMatrix(size_t rows, size_t cols,
                           const std::vector<uint32_t>& coo_rows,
                           const std::vector<uint32_t>& coo_cols,
                           const std::vector<float>& coo_vals)
    : rows_(rows), cols_(cols) {
  BSLREC_CHECK(coo_rows.size() == coo_cols.size() &&
               coo_rows.size() == coo_vals.size());
  const size_t nnz_in = coo_rows.size();

  // Sort triplet indices by (row, col) so duplicates are adjacent.
  std::vector<size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (coo_rows[a] != coo_rows[b]) return coo_rows[a] < coo_rows[b];
    return coo_cols[a] < coo_cols[b];
  });

  row_offsets_.assign(rows + 1, 0);
  col_indices_.reserve(nnz_in);
  values_.reserve(nnz_in);
  uint32_t prev_row = 0, prev_col = 0;
  bool have_prev = false;
  for (size_t n = 0; n < nnz_in; ++n) {
    const size_t k = order[n];
    const uint32_t r = coo_rows[k];
    const uint32_t c = coo_cols[k];
    BSLREC_CHECK(r < rows && c < cols);
    if (have_prev && r == prev_row && c == prev_col) {
      values_.back() += coo_vals[k];  // merge duplicate entry
      continue;
    }
    col_indices_.push_back(c);
    values_.push_back(coo_vals[k]);
    ++row_offsets_[r + 1];
    prev_row = r;
    prev_col = c;
    have_prev = true;
  }
  for (size_t r = 0; r < rows; ++r) row_offsets_[r + 1] += row_offsets_[r];
}

void SparseMatrix::EnsureTransposeIndex() const {
  if (transpose_built_) return;
  // Column-compressed transpose index. Filling in row-major order leaves
  // each column's entries sorted by row, which preserves the summation
  // order of the classic scatter-based A^T*X (see header design notes).
  const size_t nnz = values_.size();
  col_offsets_.assign(cols_ + 1, 0);
  for (uint32_t c : col_indices_) ++col_offsets_[c + 1];
  for (size_t c = 0; c < cols_; ++c) col_offsets_[c + 1] += col_offsets_[c];
  row_indices_.resize(nnz);
  col_values_.resize(nnz);
  std::vector<size_t> cursor(col_offsets_.begin(), col_offsets_.end() - 1);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const size_t pos = cursor[col_indices_[k]]++;
      row_indices_[pos] = static_cast<uint32_t>(r);
      col_values_[pos] = values_[k];
    }
  }
  transpose_built_ = true;
}

void SparseMatrix::MultiplyRowRange(const Matrix& x, Matrix& out,
                                    size_t row_begin, size_t row_end) const {
  const size_t d = x.cols();
  for (size_t r = row_begin; r < row_end; ++r) {
    float* out_row = out.Row(r);
    vec::Fill(out_row, d, 0.0f);
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      vec::Axpy(values_[k], x.Row(col_indices_[k]), out_row, d);
    }
  }
}

void SparseMatrix::TransposeMultiplyRowRange(const Matrix& x, Matrix& out,
                                             size_t row_begin,
                                             size_t row_end) const {
  EnsureTransposeIndex();  // no-op after the first transpose product
  const size_t d = x.cols();
  for (size_t c = row_begin; c < row_end; ++c) {
    float* out_row = out.Row(c);
    vec::Fill(out_row, d, 0.0f);
    for (size_t k = col_offsets_[c]; k < col_offsets_[c + 1]; ++k) {
      vec::Axpy(col_values_[k], x.Row(row_indices_[k]), out_row, d);
    }
  }
}

void SparseMatrix::Multiply(const Matrix& x, Matrix& out) const {
  BSLREC_CHECK(x.rows() == cols_ && out.rows() == rows_ &&
               x.cols() == out.cols());
  MultiplyRowRange(x, out, 0, rows_);
}

void SparseMatrix::Multiply(const Matrix& x, Matrix& out,
                            runtime::ThreadPool& pool,
                            size_t row_grain) const {
  BSLREC_CHECK(x.rows() == cols_ && out.rows() == rows_ &&
               x.cols() == out.cols());
  runtime::ParallelFor(pool, 0, rows_, row_grain,
                       [&](size_t lo, size_t hi, size_t /*shard*/,
                           size_t /*worker*/) {
                         MultiplyRowRange(x, out, lo, hi);
                       });
}

void SparseMatrix::TransposeMultiply(const Matrix& x, Matrix& out) const {
  BSLREC_CHECK(x.rows() == rows_ && out.rows() == cols_ &&
               x.cols() == out.cols());
  // Index-free scatter: serial-only callers (e.g. the SVD's one-shot
  // products) never pay for the CSC index. Accumulation into output row
  // c happens in increasing source-row order — exactly the gather order
  // of TransposeMultiplyRowRange, so the two paths are bit-identical
  // (locked by tests/test_propagation_engine.cc).
  const size_t d = x.cols();
  out.SetZero();
  for (size_t r = 0; r < rows_; ++r) {
    const float* x_row = x.Row(r);
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      vec::Axpy(values_[k], x_row, out.Row(col_indices_[k]), d);
    }
  }
}

void SparseMatrix::TransposeMultiply(const Matrix& x, Matrix& out,
                                     runtime::ThreadPool& pool,
                                     size_t row_grain) const {
  BSLREC_CHECK(x.rows() == rows_ && out.rows() == cols_ &&
               x.cols() == out.cols());
  EnsureTransposeIndex();  // build on the calling thread, not in a task
  runtime::ParallelFor(pool, 0, cols_, row_grain,
                       [&](size_t lo, size_t hi, size_t /*shard*/,
                           size_t /*worker*/) {
                         TransposeMultiplyRowRange(x, out, lo, hi);
                       });
}

namespace graph {

PropagationEngine::PropagationEngine(runtime::ThreadPool* pool,
                                     size_t row_grain)
    : pool_(pool), row_grain_(row_grain) {
  BSLREC_CHECK(row_grain > 0);
}

void PropagationEngine::For(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t, size_t)>& fn) const {
  if (pool_ != nullptr) {
    runtime::ParallelFor(*pool_, begin, end, grain, fn);
    return;
  }
  // Inline fallback with runtime::ParallelFor's exact shard boundaries,
  // executed in shard order on the calling thread (worker 0).
  BSLREC_CHECK(grain > 0);
  size_t shard = 0;
  for (size_t lo = begin; lo < end; lo += grain, ++shard) {
    fn(lo, std::min(end, lo + grain), shard, 0);
  }
}

void PropagationEngine::Multiply(const SparseMatrix& a, const Matrix& x,
                                 Matrix& out) const {
  BSLREC_CHECK(x.rows() == a.cols() && out.rows() == a.rows() &&
               x.cols() == out.cols());
  For(0, a.rows(), row_grain_,
      [&](size_t lo, size_t hi, size_t, size_t) {
        a.MultiplyRowRange(x, out, lo, hi);
      });
}

void PropagationEngine::TransposeMultiply(const SparseMatrix& a,
                                          const Matrix& x,
                                          Matrix& out) const {
  // Delegate so the lazy CSC index is built on the calling thread
  // before any task shard touches it.
  if (pool_ != nullptr) {
    a.TransposeMultiply(x, out, *pool_, row_grain_);
  } else {
    a.TransposeMultiply(x, out);
  }
}

void PropagationEngine::MeanPropagate(const SparseMatrix& adjacency,
                                      const Matrix& base, int num_layers,
                                      Matrix& out) {
  BSLREC_CHECK(num_layers >= 0);
  BSLREC_CHECK(adjacency.rows() == base.rows() &&
               adjacency.cols() == base.rows());
  BSLREC_CHECK(&out != &base);
  const size_t n = base.rows();
  const size_t d = base.cols();
  out = base;  // layer-0 term (vector copy-assign: no realloc once sized)
  if (num_layers == 0) return;
  cur_ = base;
  if (next_.rows() != n || next_.cols() != d) next_ = Matrix(n, d);
  for (int layer = 1; layer <= num_layers; ++layer) {
    // Fused hop + readout accumulate: each shard owns a disjoint row
    // range of both `next_` and `out`, so the fusion keeps the
    // sharded-rows determinism contract.
    For(0, n, row_grain_, [&](size_t lo, size_t hi, size_t, size_t) {
      adjacency.MultiplyRowRange(cur_, next_, lo, hi);
      for (size_t r = lo; r < hi; ++r) {
        vec::Axpy(1.0f, next_.Row(r), out.Row(r), d);
      }
    });
    std::swap(cur_, next_);
  }
  const float inv = 1.0f / static_cast<float>(num_layers + 1);
  For(0, n, row_grain_, [&](size_t lo, size_t hi, size_t, size_t) {
    for (size_t r = lo; r < hi; ++r) vec::Scale(out.Row(r), d, inv);
  });
}

void PropagationEngine::MeanPropagateAccum(const SparseMatrix& adjacency,
                                           const Matrix& grad, int num_layers,
                                           Matrix& accum) {
  BSLREC_CHECK(accum.rows() == grad.rows() && accum.cols() == grad.cols());
  MeanPropagate(adjacency, grad, num_layers, accum_ws_);
  const size_t d = grad.cols();
  For(0, grad.rows(), row_grain_, [&](size_t lo, size_t hi, size_t, size_t) {
    for (size_t r = lo; r < hi; ++r) {
      vec::Axpy(1.0f, accum_ws_.Row(r), accum.Row(r), d);
    }
  });
}

void PropagationEngine::DenseMatMul(const Matrix& a, const Matrix& b,
                                    Matrix& out, bool accumulate) const {
  BSLREC_CHECK(a.cols() == b.rows() && out.rows() == a.rows() &&
               out.cols() == b.cols());
  For(0, a.rows(), row_grain_, [&](size_t lo, size_t hi, size_t, size_t) {
    if (!accumulate) {
      for (size_t r = lo; r < hi; ++r) {
        vec::Fill(out.Row(r), out.cols(), 0.0f);
      }
    }
    MatMulAccumRowRange(a, b, out, lo, hi);
  });
}

void PropagationEngine::DenseMatMulTAccum(const Matrix& a, const Matrix& b,
                                          Matrix& out) const {
  BSLREC_CHECK(a.cols() == b.cols() && out.rows() == a.rows() &&
               out.cols() == b.rows());
  For(0, a.rows(), row_grain_, [&](size_t lo, size_t hi, size_t, size_t) {
    MatMulTAccumRowRange(a, b, out, lo, hi);
  });
}

Matrix& PropagationEngine::Workspace(size_t slot, size_t rows, size_t cols) {
  if (workspace_.size() <= slot) workspace_.resize(slot + 1);
  Matrix& m = workspace_[slot];
  if (m.rows() != rows || m.cols() != cols) m = Matrix(rows, cols);
  return m;
}

}  // namespace graph
}  // namespace bslrec
