#include "graph/propagation.h"

#include <algorithm>
#include <numeric>

#include "math/check.h"

namespace bslrec {

SparseMatrix::SparseMatrix(size_t rows, size_t cols,
                           const std::vector<uint32_t>& coo_rows,
                           const std::vector<uint32_t>& coo_cols,
                           const std::vector<float>& coo_vals)
    : rows_(rows), cols_(cols) {
  BSLREC_CHECK(coo_rows.size() == coo_cols.size() &&
               coo_rows.size() == coo_vals.size());
  const size_t nnz_in = coo_rows.size();

  // Sort triplet indices by (row, col) so duplicates are adjacent.
  std::vector<size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (coo_rows[a] != coo_rows[b]) return coo_rows[a] < coo_rows[b];
    return coo_cols[a] < coo_cols[b];
  });

  row_offsets_.assign(rows + 1, 0);
  col_indices_.reserve(nnz_in);
  values_.reserve(nnz_in);
  uint32_t prev_row = 0, prev_col = 0;
  bool have_prev = false;
  for (size_t n = 0; n < nnz_in; ++n) {
    const size_t k = order[n];
    const uint32_t r = coo_rows[k];
    const uint32_t c = coo_cols[k];
    BSLREC_CHECK(r < rows && c < cols);
    if (have_prev && r == prev_row && c == prev_col) {
      values_.back() += coo_vals[k];  // merge duplicate entry
      continue;
    }
    col_indices_.push_back(c);
    values_.push_back(coo_vals[k]);
    ++row_offsets_[r + 1];
    prev_row = r;
    prev_col = c;
    have_prev = true;
  }
  for (size_t r = 0; r < rows; ++r) row_offsets_[r + 1] += row_offsets_[r];
}

void SparseMatrix::Multiply(const Matrix& x, Matrix& out) const {
  BSLREC_CHECK(x.rows() == cols_ && out.rows() == rows_ &&
               x.cols() == out.cols());
  const size_t d = x.cols();
  out.SetZero();
  for (size_t r = 0; r < rows_; ++r) {
    float* out_row = out.Row(r);
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const float w = values_[k];
      const float* x_row = x.Row(col_indices_[k]);
      for (size_t c = 0; c < d; ++c) out_row[c] += w * x_row[c];
    }
  }
}

void SparseMatrix::TransposeMultiply(const Matrix& x, Matrix& out) const {
  BSLREC_CHECK(x.rows() == rows_ && out.rows() == cols_ &&
               x.cols() == out.cols());
  const size_t d = x.cols();
  out.SetZero();
  for (size_t r = 0; r < rows_; ++r) {
    const float* x_row = x.Row(r);
    for (size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k) {
      const float w = values_[k];
      float* out_row = out.Row(col_indices_[k]);
      for (size_t c = 0; c < d; ++c) out_row[c] += w * x_row[c];
    }
  }
}

}  // namespace bslrec
