// Normalized user-item bipartite graph.
//
// GCN backbones operate on the symmetric normalized adjacency of the
// bipartite interaction graph (LightGCN Eq. 8):
//
//      A = [ 0   R ]        A_hat = D^{-1/2} A D^{-1/2}
//          [ R^T 0 ]
//
// Node ids: users occupy [0, U), items occupy [U, U+I). `Adjacency()`
// returns A_hat over the combined node space; `NormalizedRatings()`
// returns the U x I block R_hat = D_u^{-1/2} R D_i^{-1/2} used by the
// LightGCL SVD view. `EdgeDropout` produces the SGL-style augmented graph:
// each interaction is kept with probability 1-p and surviving edges are
// re-normalized on the *original* degrees scaled by 1/(1-p), matching the
// inverted-dropout convention.
#ifndef BSLREC_GRAPH_BIPARTITE_GRAPH_H_
#define BSLREC_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "graph/propagation.h"
#include "math/rng.h"

namespace bslrec {

class BipartiteGraph {
 public:
  // Builds the normalized adjacency from the train split of `data`.
  explicit BipartiteGraph(const Dataset& data);

  uint32_t num_users() const { return num_users_; }
  uint32_t num_items() const { return num_items_; }
  uint32_t num_nodes() const { return num_users_ + num_items_; }

  // Symmetric normalized adjacency over users+items.
  const SparseMatrix& Adjacency() const { return adjacency_; }

  // Normalized U x I rating block (for SVD-based views).
  const SparseMatrix& NormalizedRatings() const { return ratings_; }

  // Train degree of user u / item i (0 for isolated nodes).
  uint32_t UserDegree(uint32_t u) const { return user_degree_[u]; }
  uint32_t ItemDegree(uint32_t i) const { return item_degree_[i]; }

  // Returns the normalized adjacency of an edge-dropped copy of the graph
  // (each undirected interaction dropped i.i.d. with probability p).
  SparseMatrix EdgeDropout(double p, Rng& rng) const;

 private:
  uint32_t num_users_ = 0;
  uint32_t num_items_ = 0;
  std::vector<uint32_t> user_degree_;
  std::vector<uint32_t> item_degree_;
  std::vector<Edge> edges_;
  SparseMatrix adjacency_;
  SparseMatrix ratings_;
};

}  // namespace bslrec

#endif  // BSLREC_GRAPH_BIPARTITE_GRAPH_H_
