// Sparse matrix kernels and the deterministic parallel propagation engine.
//
// Graph-based backbones (NGCF, LightGCN, SGL, SimGCL, LightGCL) propagate
// embeddings through the normalized bipartite adjacency. `SparseMatrix` is
// a CSR matrix with the two products the models need — A*X and A^T*X over
// row-major dense matrices — and `graph::PropagationEngine` layers
// multi-hop propagation with layer combination on top, fanning the work
// across a `runtime::ThreadPool`.
//
// ========================== Design notes ==============================
//
// Sharded-rows determinism contract
//   Every parallel kernel in this module shards the *output rows* of the
//   product into fixed-size contiguous ranges (`row_grain` rows per
//   shard) via `runtime::ParallelFor`. Each output row is produced by
//   exactly one shard, no two shards touch the same row, and within a
//   row the nonzeros are accumulated in CSR storage order by the same
//   `vec::Axpy` kernel the serial path uses. The floating-point
//   summation tree of every output element is therefore a pure function
//   of the matrix and the input — never of the worker count, the shard
//   grain, or OS scheduling — so the parallel products are *bit
//   identical* to the serial ones for any pool size (the PR 1 contract
//   documented atop src/runtime/thread_pool.h).
//
//   A^T*X is made row-shardable by a column-compressed (CSC) view of the
//   matrix, built lazily on the first transpose product (edge-dropped
//   adjacencies drawn per batch never pay for it — their operator is
//   symmetric): gathering column c's entries in increasing row order
//   reproduces, bit for bit, the order in which the classic row-major
//   scatter would have accumulated into output row c.
//
// PropagationEngine
//   The engine owns (a pointer to) the pool plus persistent ping-pong
//   and named workspace matrices, so repeated Forward/Backward passes
//   through a model allocate nothing after the first call. A null pool
//   runs every shard inline on the calling thread in shard order —
//   useful for standalone models — and produces the same bits as any
//   pool, by the contract above. One engine must be driven from one
//   thread at a time, and never from inside a pool task (no nested Run).
// ======================================================================
#ifndef BSLREC_GRAPH_PROPAGATION_H_
#define BSLREC_GRAPH_PROPAGATION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "math/matrix.h"
#include "runtime/thread_pool.h"

namespace bslrec {

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Builds a rows x cols CSR matrix from COO triplets. Duplicate entries
  // are summed.
  SparseMatrix(size_t rows, size_t cols,
               const std::vector<uint32_t>& coo_rows,
               const std::vector<uint32_t>& coo_cols,
               const std::vector<float>& coo_vals);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  // out = this * x. Requires x.rows() == cols(), out.rows() == rows(),
  // matching column counts. `out` is overwritten.
  void Multiply(const Matrix& x, Matrix& out) const;
  // Pool-parallel variant: output rows are split into fixed `row_grain`
  // shards; bit-identical to the serial product for any worker count.
  void Multiply(const Matrix& x, Matrix& out, runtime::ThreadPool& pool,
                size_t row_grain) const;

  // out = this^T * x. Requires x.rows() == rows(), out.rows() == cols().
  // The serial overload is an index-free scatter; the pool overload
  // gathers through the CSC index, building it on the first call (one
  // O(nnz) pass on the calling thread, cached thereafter — that first
  // call must not race with other operations on the same matrix). Both
  // orders coincide, so the overloads are bit-identical.
  void TransposeMultiply(const Matrix& x, Matrix& out) const;
  void TransposeMultiply(const Matrix& x, Matrix& out,
                         runtime::ThreadPool& pool, size_t row_grain) const;

  // Row-range kernels shared by the serial and sharded paths: overwrite
  // output rows [row_begin, row_end) of A*X (resp. A^T*X). All variants
  // above funnel through these, which is what makes parallel == serial.
  void MultiplyRowRange(const Matrix& x, Matrix& out, size_t row_begin,
                        size_t row_end) const;
  void TransposeMultiplyRowRange(const Matrix& x, Matrix& out,
                                 size_t row_begin, size_t row_end) const;

  // Row iteration helpers (used by tests and by the SVD).
  const std::vector<size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<uint32_t>& col_indices() const { return col_indices_; }
  const std::vector<float>& values() const { return values_; }

 private:
  // Builds the CSC transpose index if absent. Lazy (and `mutable`)
  // because most matrices — notably the per-batch edge-dropped
  // adjacencies — never take a transpose product; not thread-safe on
  // the building call (see TransposeMultiply).
  void EnsureTransposeIndex() const;

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_offsets_;
  std::vector<uint32_t> col_indices_;
  std::vector<float> values_;
  // Column-compressed transpose index: column c's entries live at
  // [col_offsets_[c], col_offsets_[c+1]) in increasing row order, with
  // values copied out so the gather runs without indirection.
  mutable bool transpose_built_ = false;
  mutable std::vector<size_t> col_offsets_;
  mutable std::vector<uint32_t> row_indices_;
  mutable std::vector<float> col_values_;
};

namespace graph {

// Rows per shard for the parallel kernels. Chosen so a shard's work
// (grain x dim x avg-degree flops) comfortably exceeds the pool's task
// dispatch cost at the library's typical dims; results do not depend on
// it (see the determinism contract above).
inline constexpr size_t kDefaultRowGrain = 128;

// Deterministic parallel multi-hop propagation with persistent scratch.
//
// The engine is the single seam through which every graph backbone's
// forward and backward pass runs its heavy linear algebra. It borrows a
// pool (never owns one) so the trainer's `--threads` governs propagation
// too, and it keeps ping-pong buffers plus caller-named workspace
// matrices alive across calls so steady-state passes do not allocate.
class PropagationEngine {
 public:
  // `pool` may be null (inline execution) and must outlive the engine.
  explicit PropagationEngine(runtime::ThreadPool* pool = nullptr,
                             size_t row_grain = kDefaultRowGrain);

  // Swaps the pool the engine drives; null reverts to inline execution.
  // Results are unaffected (sharded-rows contract above).
  void SetPool(runtime::ThreadPool* pool) { pool_ = pool; }
  runtime::ThreadPool* pool() const { return pool_; }
  size_t row_grain() const { return row_grain_; }

  // Sharded products through the pool. out is overwritten.
  void Multiply(const SparseMatrix& a, const Matrix& x, Matrix& out) const;
  void TransposeMultiply(const SparseMatrix& a, const Matrix& x,
                         Matrix& out) const;

  // Mean-of-powers layer combination (the LightGCN readout, also the
  // per-layer trunk the contrastive views reuse):
  //   out = 1/(L+1) * sum_{k=0..L} A^k base.
  // `out` must not alias `base`. Scratch comes from the engine.
  void MeanPropagate(const SparseMatrix& adjacency, const Matrix& base,
                     int num_layers, Matrix& out);

  // accum += 1/(L+1) * sum_{k=0..L} A^k grad — the backward form (the
  // mean-of-powers operator is symmetric for symmetric A). Uses an
  // internal workspace; `accum` must not alias `grad`.
  void MeanPropagateAccum(const SparseMatrix& adjacency, const Matrix& grad,
                          int num_layers, Matrix& accum);

  // Per-layer propagation for backbones that combine layers themselves
  // (NGCF's per-layer transform path): writes A*x into `out` only.
  // Identical to Multiply; named for intent at call sites.
  void PropagateLayer(const SparseMatrix& adjacency, const Matrix& x,
                      Matrix& out) const {
    Multiply(adjacency, x, out);
  }

  // Row-sharded dense products (NGCF's layer transforms). Deterministic
  // for any worker count: output rows are disjoint.
  //   MatMul:       out = a * b     (accumulate=false) / out += a * b
  //   MatMulTAccum: out += a * b^T
  void DenseMatMul(const Matrix& a, const Matrix& b, Matrix& out,
                   bool accumulate) const;
  void DenseMatMulTAccum(const Matrix& a, const Matrix& b, Matrix& out) const;

  // Deterministic sharded loop: same shard boundaries as
  // runtime::ParallelFor; runs inline in shard order when the engine has
  // no pool. fn(shard_begin, shard_end, shard_index, worker_id).
  void For(size_t begin, size_t end, size_t grain,
           const std::function<void(size_t, size_t, size_t, size_t)>& fn)
      const;

  // Persistent named workspace: returns the matrix registered under
  // `slot`, reshaping (and zero-filling) it only when the requested
  // shape differs from the cached one. Contents are otherwise preserved
  // from the previous call — callers that need zeros must clear. The
  // returned reference stays valid across later Workspace calls (the
  // store is a deque: growing it never moves existing slots).
  Matrix& Workspace(size_t slot, size_t rows, size_t cols);

 private:
  runtime::ThreadPool* pool_;
  size_t row_grain_;
  Matrix cur_, next_;   // mean-propagate ping-pong buffers
  Matrix accum_ws_;     // MeanPropagateAccum staging buffer
  std::deque<Matrix> workspace_;
};

}  // namespace graph
}  // namespace bslrec

#endif  // BSLREC_GRAPH_PROPAGATION_H_
