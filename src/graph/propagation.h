// Sparse matrix and embedding propagation kernels.
//
// Graph-based backbones (NGCF, LightGCN, SGL, SimGCL, LightGCL) propagate
// embeddings through the normalized bipartite adjacency. `SparseMatrix` is
// a CSR matrix with just the two products the models need: A*X and A^T*X
// over row-major dense matrices. Because the normalized adjacency we build
// is symmetric, backward passes reuse the forward product.
#ifndef BSLREC_GRAPH_PROPAGATION_H_
#define BSLREC_GRAPH_PROPAGATION_H_

#include <cstdint>
#include <vector>

#include "math/matrix.h"

namespace bslrec {

class SparseMatrix {
 public:
  SparseMatrix() = default;

  // Builds a rows x cols CSR matrix from COO triplets. Duplicate entries
  // are summed.
  SparseMatrix(size_t rows, size_t cols,
               const std::vector<uint32_t>& coo_rows,
               const std::vector<uint32_t>& coo_cols,
               const std::vector<float>& coo_vals);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  // out = this * x. Requires x.rows() == cols(), out.rows() == rows(),
  // matching column counts. `out` is overwritten.
  void Multiply(const Matrix& x, Matrix& out) const;

  // out = this^T * x. Requires x.rows() == rows(), out.rows() == cols().
  void TransposeMultiply(const Matrix& x, Matrix& out) const;

  // Row iteration helpers (used by tests and by the SVD).
  const std::vector<size_t>& row_offsets() const { return row_offsets_; }
  const std::vector<uint32_t>& col_indices() const { return col_indices_; }
  const std::vector<float>& values() const { return values_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_offsets_;
  std::vector<uint32_t> col_indices_;
  std::vector<float> values_;
};

}  // namespace bslrec

#endif  // BSLREC_GRAPH_PROPAGATION_H_
