#include "graph/bipartite_graph.h"

#include <cmath>

#include "math/check.h"

namespace bslrec {

namespace {

// Builds the symmetric normalized adjacency over U+I nodes from an edge
// list with explicit degrees (weights 1/sqrt(d_u * d_i)).
SparseMatrix BuildAdjacency(uint32_t num_users, uint32_t num_items,
                            const std::vector<Edge>& edges,
                            const std::vector<uint32_t>& user_degree,
                            const std::vector<uint32_t>& item_degree,
                            double rescale) {
  const size_t n = num_users + num_items;
  std::vector<uint32_t> rows, cols;
  std::vector<float> vals;
  rows.reserve(edges.size() * 2);
  cols.reserve(edges.size() * 2);
  vals.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    const double du = user_degree[e.user];
    const double di = item_degree[e.item];
    if (du == 0.0 || di == 0.0) continue;
    const float w = static_cast<float>(rescale / std::sqrt(du * di));
    const uint32_t item_node = num_users + e.item;
    rows.push_back(e.user);
    cols.push_back(item_node);
    vals.push_back(w);
    rows.push_back(item_node);
    cols.push_back(e.user);
    vals.push_back(w);
  }
  return SparseMatrix(n, n, rows, cols, vals);
}

}  // namespace

BipartiteGraph::BipartiteGraph(const Dataset& data)
    : num_users_(data.num_users()),
      num_items_(data.num_items()),
      user_degree_(data.num_users(), 0),
      item_degree_(data.num_items(), 0),
      edges_(data.train_edges()) {
  for (const Edge& e : edges_) {
    ++user_degree_[e.user];
    ++item_degree_[e.item];
  }
  adjacency_ = BuildAdjacency(num_users_, num_items_, edges_, user_degree_,
                              item_degree_, /*rescale=*/1.0);

  // Normalized U x I block for SVD views.
  std::vector<uint32_t> rows, cols;
  std::vector<float> vals;
  rows.reserve(edges_.size());
  cols.reserve(edges_.size());
  vals.reserve(edges_.size());
  for (const Edge& e : edges_) {
    const double du = user_degree_[e.user];
    const double di = item_degree_[e.item];
    rows.push_back(e.user);
    cols.push_back(e.item);
    vals.push_back(static_cast<float>(1.0 / std::sqrt(du * di)));
  }
  ratings_ = SparseMatrix(num_users_, num_items_, rows, cols, vals);
}

SparseMatrix BipartiteGraph::EdgeDropout(double p, Rng& rng) const {
  BSLREC_CHECK(p >= 0.0 && p < 1.0);
  std::vector<Edge> kept;
  kept.reserve(edges_.size());
  for (const Edge& e : edges_) {
    if (!rng.NextBernoulli(p)) kept.push_back(e);
  }
  // Inverted-dropout rescale keeps the expected propagation magnitude
  // equal to the clean graph's.
  const double rescale = 1.0 / (1.0 - p);
  return BuildAdjacency(num_users_, num_items_, kept, user_degree_,
                        item_degree_, rescale);
}

}  // namespace bslrec
