// Truncated SVD via randomized subspace iteration.
//
// LightGCL (Cai et al., ICLR 2023) propagates embeddings through a rank-q
// SVD reconstruction of the normalized rating matrix instead of a
// stochastically augmented graph. This module computes that factorization
// for sparse matrices with a few hundred to a few thousand rows: random
// range sketch, power iterations with re-orthonormalization, then an SVD
// of the small projected matrix (via Jacobi eigendecomposition of B B^T).
#ifndef BSLREC_GRAPH_SVD_H_
#define BSLREC_GRAPH_SVD_H_

#include <cstddef>

#include "graph/propagation.h"
#include "math/matrix.h"
#include "math/rng.h"

namespace bslrec {

struct SvdResult {
  Matrix u;                     // rows x rank, orthonormal columns
  std::vector<float> singular;  // rank singular values (descending)
  Matrix v;                     // cols x rank, orthonormal columns
};

// Rank-`rank` truncated SVD of `a` (approximately; accuracy improves with
// `power_iters`, 2-4 is plenty for graph spectra). Requires
// rank <= min(rows, cols).
SvdResult TruncatedSvd(const SparseMatrix& a, size_t rank, size_t power_iters,
                       Rng& rng);

// Orthonormalizes the columns of m in place (modified Gram-Schmidt).
// Columns that collapse to (numerical) zero are re-seeded from rng.
void OrthonormalizeColumns(Matrix& m, Rng& rng);

}  // namespace bslrec

#endif  // BSLREC_GRAPH_SVD_H_
