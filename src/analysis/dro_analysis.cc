#include "analysis/dro_analysis.h"

#include <algorithm>

#include "math/check.h"
#include "math/stats.h"
#include "math/vec.h"

namespace bslrec {

NegativeScoreProbe CollectNegativeScores(const EmbeddingModel& model,
                                         const Dataset& data,
                                         const NegativeSampler& sampler,
                                         size_t num_users,
                                         size_t negs_per_user, Rng& rng) {
  BSLREC_CHECK(num_users > 0 && negs_per_user > 0);
  const size_t d = model.dim();
  NegativeScoreProbe probe;
  probe.scores.reserve(num_users * negs_per_user);

  std::vector<float> u_hat(d), j_hat(d);
  std::vector<uint32_t> negs;
  RunningStats stats;
  size_t false_negatives = 0;
  for (size_t k = 0; k < num_users; ++k) {
    const uint32_t u = static_cast<uint32_t>(rng.NextIndex(data.num_users()));
    if (data.TrainItems(u).empty()) continue;
    vec::Normalize(model.UserEmb(u), u_hat.data(), d);
    sampler.Sample(u, negs_per_user, rng, negs);
    for (uint32_t j : negs) {
      vec::Normalize(model.ItemEmb(j), j_hat.data(), d);
      const float s = vec::Dot(u_hat.data(), j_hat.data(), d);
      probe.scores.push_back(s);
      stats.Add(s);
      if (data.IsTrainPositive(u, j)) ++false_negatives;
    }
  }
  probe.mean = stats.mean();
  probe.variance = stats.variance();
  probe.false_negative_rate =
      probe.scores.empty()
          ? 0.0
          : static_cast<double>(false_negatives) / probe.scores.size();
  return probe;
}

std::vector<double> MeanItemScores(const EmbeddingModel& model,
                                   const Dataset& data, size_t num_users,
                                   Rng& rng) {
  const size_t d = model.dim();
  std::vector<double> acc(data.num_items(), 0.0);
  std::vector<float> u_hat(d), i_hat(d);
  size_t counted = 0;
  for (size_t k = 0; k < num_users; ++k) {
    const uint32_t u = static_cast<uint32_t>(rng.NextIndex(data.num_users()));
    vec::Normalize(model.UserEmb(u), u_hat.data(), d);
    for (uint32_t i = 0; i < data.num_items(); ++i) {
      vec::Normalize(model.ItemEmb(i), i_hat.data(), d);
      acc[i] += vec::Dot(u_hat.data(), i_hat.data(), d);
    }
    ++counted;
  }
  if (counted > 0) {
    for (double& x : acc) x /= static_cast<double>(counted);
  }
  return acc;
}

}  // namespace bslrec
