#include "analysis/embedding_analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

namespace {

Matrix NormalizeRows(const Matrix& points) {
  Matrix out(points.rows(), points.cols());
  for (size_t r = 0; r < points.rows(); ++r) {
    vec::Normalize(points.Row(r), out.Row(r), points.cols());
  }
  return out;
}

}  // namespace

double SilhouetteScore(const Matrix& points,
                       const std::vector<uint32_t>& labels) {
  const size_t n = points.rows();
  BSLREC_CHECK(labels.size() == n && n >= 2);
  const uint32_t num_clusters =
      1 + *std::max_element(labels.begin(), labels.end());

  std::vector<size_t> cluster_size(num_clusters, 0);
  for (uint32_t l : labels) ++cluster_size[l];

  double total = 0.0;
  std::vector<double> mean_dist(num_clusters);
  for (size_t i = 0; i < n; ++i) {
    std::fill(mean_dist.begin(), mean_dist.end(), 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double dist = std::sqrt(std::max(
          0.0f, vec::SquaredDistance(points.Row(i), points.Row(j),
                                     points.cols())));
      mean_dist[labels[j]] += dist;
    }
    const uint32_t own = labels[i];
    if (cluster_size[own] <= 1) continue;  // singleton: contributes 0
    const double a =
        mean_dist[own] / static_cast<double>(cluster_size[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (uint32_t c = 0; c < num_clusters; ++c) {
      if (c == own || cluster_size[c] == 0) continue;
      b = std::min(b, mean_dist[c] / static_cast<double>(cluster_size[c]));
    }
    if (!std::isfinite(b)) continue;  // only one non-empty cluster
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

double AlignmentLoss(const Matrix& points,
                     const std::vector<uint32_t>& labels) {
  BSLREC_CHECK(labels.size() == points.rows());
  const Matrix normed = NormalizeRows(points);
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < normed.rows(); ++i) {
    for (size_t j = i + 1; j < normed.rows(); ++j) {
      if (labels[i] != labels[j]) continue;
      sum += vec::SquaredDistance(normed.Row(i), normed.Row(j),
                                  normed.cols());
      ++pairs;
    }
  }
  return pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
}

double UniformityLoss(const Matrix& points) {
  const Matrix normed = NormalizeRows(points);
  const size_t n = normed.rows();
  BSLREC_CHECK(n >= 2);
  double sum = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d2 =
          vec::SquaredDistance(normed.Row(i), normed.Row(j), normed.cols());
      sum += std::exp(-2.0 * d2);
      ++pairs;
    }
  }
  return std::log(sum / static_cast<double>(pairs));
}

double IntraInterRatio(const Matrix& points,
                       const std::vector<uint32_t>& labels) {
  BSLREC_CHECK(labels.size() == points.rows());
  const Matrix normed = NormalizeRows(points);
  double intra = 0.0, inter = 0.0;
  size_t n_intra = 0, n_inter = 0;
  for (size_t i = 0; i < normed.rows(); ++i) {
    for (size_t j = i + 1; j < normed.rows(); ++j) {
      const double dist = std::sqrt(std::max(
          0.0f,
          vec::SquaredDistance(normed.Row(i), normed.Row(j), normed.cols())));
      if (labels[i] == labels[j]) {
        intra += dist;
        ++n_intra;
      } else {
        inter += dist;
        ++n_inter;
      }
    }
  }
  if (n_intra == 0 || n_inter == 0 || inter <= 0.0) return 1.0;
  return (intra / static_cast<double>(n_intra)) /
         (inter / static_cast<double>(n_inter));
}

}  // namespace bslrec
