// DRO diagnostics on live models.
//
// Bridges the trained model to the core DRO quantities: samples negative
// scores exactly the way training does (normalized cosine head + the
// configured sampler) so that worst-case weights, empirical eta and score
// variance (Figs 3b and 4b) are measured on the same distribution the
// loss optimizes against.
#ifndef BSLREC_ANALYSIS_DRO_ANALYSIS_H_
#define BSLREC_ANALYSIS_DRO_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "sampling/negative_sampler.h"

namespace bslrec {

struct NegativeScoreProbe {
  std::vector<float> scores;  // pooled negative scores
  double mean = 0.0;
  double variance = 0.0;
  double false_negative_rate = 0.0;  // fraction that are actually positives
};

// Samples `negs_per_user` negatives for `num_users` random users (with
// test interactions) and scores them with the model's cosine head.
// The model must have been Forward()ed.
NegativeScoreProbe CollectNegativeScores(const EmbeddingModel& model,
                                         const Dataset& data,
                                         const NegativeSampler& sampler,
                                         size_t num_users,
                                         size_t negs_per_user, Rng& rng);

// Per-item mean prediction score over a random user sample; indexable by
// popularity group to quantify the popularity bias SL's variance penalty
// suppresses (Lemma 2 / Fig 5 discussion).
std::vector<double> MeanItemScores(const EmbeddingModel& model,
                                   const Dataset& data, size_t num_users,
                                   Rng& rng);

}  // namespace bslrec

#endif  // BSLREC_ANALYSIS_DRO_ANALYSIS_H_
