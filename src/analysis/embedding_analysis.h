// Quantitative embedding-geometry diagnostics.
//
// The paper argues qualitatively (t-SNE pictures) that BSL keeps item
// clusters separated under positive noise. These metrics turn that into
// numbers the benches print and the tests assert on:
//
//   * silhouette score over ground-truth clusters (higher = better
//     separated),
//   * alignment / uniformity (Wang & Isola, 2020): alignment is the mean
//     squared distance between normalized embeddings of items in the same
//     cluster; uniformity is log E exp(-2 ||x - y||^2) over random pairs,
//   * intra/inter distance ratio (lower = tighter clusters).
#ifndef BSLREC_ANALYSIS_EMBEDDING_ANALYSIS_H_
#define BSLREC_ANALYSIS_EMBEDDING_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "math/matrix.h"

namespace bslrec {

// Mean silhouette coefficient of `points` (rows) under `labels`.
// Points in singleton clusters contribute 0. Returns a value in [-1, 1].
double SilhouetteScore(const Matrix& points,
                       const std::vector<uint32_t>& labels);

// Wang-Isola alignment: mean || x_i - x_j ||^2 over same-label pairs of
// L2-normalized rows. Lower is better-aligned.
double AlignmentLoss(const Matrix& points,
                     const std::vector<uint32_t>& labels);

// Wang-Isola uniformity: log of the mean Gaussian-potential
// exp(-t ||x - y||^2) over all distinct (normalized) pairs, t = 2.
// More negative = more uniform.
double UniformityLoss(const Matrix& points);

// Mean intra-cluster distance divided by mean inter-cluster distance
// (normalized rows). Lower = crisper clusters.
double IntraInterRatio(const Matrix& points,
                       const std::vector<uint32_t>& labels);

}  // namespace bslrec

#endif  // BSLREC_ANALYSIS_EMBEDDING_ANALYSIS_H_
