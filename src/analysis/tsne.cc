#include "analysis/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

namespace {

// Row-conditional distribution p_{j|i} with bandwidth found by binary
// search so the row entropy matches log(perplexity).
void ComputeRowP(const std::vector<double>& sq_dist_row, size_t i,
                 double perplexity, std::vector<double>& p_row) {
  const size_t n = sq_dist_row.size();
  const double target_entropy = std::log(perplexity);
  double beta = 1.0;  // 1 / (2 sigma^2)
  double beta_lo = 0.0;
  double beta_hi = std::numeric_limits<double>::infinity();
  for (int it = 0; it < 64; ++it) {
    double sum = 0.0;
    double weighted = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        p_row[j] = 0.0;
        continue;
      }
      const double pj = std::exp(-beta * sq_dist_row[j]);
      p_row[j] = pj;
      sum += pj;
      weighted += pj * sq_dist_row[j];
    }
    if (sum <= 0.0) {
      beta /= 2.0;
      continue;
    }
    // Entropy H = log(sum) + beta * E[d^2].
    const double entropy = std::log(sum) + beta * weighted / sum;
    const double diff = entropy - target_entropy;
    if (std::abs(diff) < 1e-5) break;
    if (diff > 0.0) {  // too flat -> raise beta
      beta_lo = beta;
      beta = std::isinf(beta_hi) ? beta * 2.0 : 0.5 * (beta + beta_hi);
    } else {
      beta_hi = beta;
      beta = beta_lo > 0.0 ? 0.5 * (beta + beta_lo) : beta / 2.0;
    }
  }
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) sum += p_row[j];
  if (sum > 0.0) {
    for (size_t j = 0; j < n; ++j) p_row[j] /= sum;
  }
}

}  // namespace

Matrix RunTsne(const Matrix& points, const TsneConfig& config) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  BSLREC_CHECK_MSG(n >= 5, "t-SNE needs at least 5 points");
  const double perplexity =
      std::min(config.perplexity, static_cast<double>(n - 1) / 3.0);

  // Pairwise squared distances in the input space.
  std::vector<std::vector<double>> sq_dist(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dist = vec::SquaredDistance(points.Row(i), points.Row(j), d);
      sq_dist[i][j] = dist;
      sq_dist[j][i] = dist;
    }
  }

  // Symmetrized joint P.
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  {
    std::vector<double> row(n);
    for (size_t i = 0; i < n; ++i) {
      ComputeRowP(sq_dist[i], i, perplexity, row);
      for (size_t j = 0; j < n; ++j) p[i][j] = row[j];
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double v = (p[i][j] + p[j][i]) / (2.0 * static_cast<double>(n));
        p[i][j] = std::max(v, 1e-12);
        p[j][i] = p[i][j];
      }
      p[i][i] = 0.0;
    }
  }

  // Gradient descent on the 2-D map.
  Rng rng(config.seed);
  Matrix y(n, 2);
  y.InitGaussian(rng, 1e-2f);
  Matrix velocity(n, 2);
  std::vector<double> q_num(n * n, 0.0);

  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    const double momentum = iter < config.momentum_switch_iter
                                ? config.initial_momentum
                                : config.final_momentum;
    // Student-t numerators and normalizer.
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double dx = y.At(i, 0) - y.At(j, 0);
        const double dy = y.At(i, 1) - y.At(j, 1);
        const double num = 1.0 / (1.0 + dx * dx + dy * dy);
        q_num[i * n + j] = num;
        q_num[j * n + i] = num;
        q_sum += 2.0 * num;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    for (size_t i = 0; i < n; ++i) {
      double gx = 0.0, gy = 0.0;
      for (size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double num = q_num[i * n + j];
        const double q = std::max(num / q_sum, 1e-12);
        const double coeff = (exaggeration * p[i][j] - q) * num;
        gx += coeff * (y.At(i, 0) - y.At(j, 0));
        gy += coeff * (y.At(i, 1) - y.At(j, 1));
      }
      gx *= 4.0;
      gy *= 4.0;
      velocity.At(i, 0) = static_cast<float>(
          momentum * velocity.At(i, 0) - config.learning_rate * gx);
      velocity.At(i, 1) = static_cast<float>(
          momentum * velocity.At(i, 1) - config.learning_rate * gy);
    }
    for (size_t i = 0; i < n; ++i) {
      y.At(i, 0) += velocity.At(i, 0);
      y.At(i, 1) += velocity.At(i, 1);
    }
    // Re-center to keep the map bounded.
    double mx = 0.0, my = 0.0;
    for (size_t i = 0; i < n; ++i) {
      mx += y.At(i, 0);
      my += y.At(i, 1);
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    for (size_t i = 0; i < n; ++i) {
      y.At(i, 0) -= static_cast<float>(mx);
      y.At(i, 1) -= static_cast<float>(my);
    }
  }
  return y;
}

}  // namespace bslrec
