// Exact t-SNE (van der Maaten & Hinton, 2008) for embedding visualization.
//
// Figures 10-11 of the paper project item embeddings to 2-D with t-SNE to
// show that BSL preserves cluster structure under positive noise while SL
// degrades toward a uniform cloud. The O(n^2) exact implementation is
// plenty for the few hundred items per synthetic catalog; output
// coordinates are written to CSV by the bench and summarized with the
// silhouette metric from embedding_analysis.h so the claim is testable.
#ifndef BSLREC_ANALYSIS_TSNE_H_
#define BSLREC_ANALYSIS_TSNE_H_

#include <cstddef>

#include "math/matrix.h"
#include "math/rng.h"

namespace bslrec {

struct TsneConfig {
  double perplexity = 30.0;
  int iterations = 300;
  double learning_rate = 200.0;
  double early_exaggeration = 12.0;
  int exaggeration_iters = 80;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 120;
  uint64_t seed = 7;
};

// Embeds the rows of `points` (n x d) into 2-D. Returns an n x 2 matrix.
// Requires n >= 5; perplexity is clamped to (n-1)/3 internally.
Matrix RunTsne(const Matrix& points, const TsneConfig& config);

}  // namespace bslrec

#endif  // BSLREC_ANALYSIS_TSNE_H_
