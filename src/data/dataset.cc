#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "math/check.h"

namespace bslrec {

namespace {

// Builds CSR (offsets, items) from an edge list; sorts and de-duplicates
// per-user item lists and rewrites `edges` to the de-duplicated set.
void BuildCsr(uint32_t num_users, uint32_t num_items, std::vector<Edge>& edges,
              std::vector<size_t>& offsets, std::vector<uint32_t>& items) {
  std::vector<std::vector<uint32_t>> per_user(num_users);
  for (const Edge& e : edges) {
    BSLREC_CHECK_MSG(e.user < num_users, "user id %u out of range", e.user);
    BSLREC_CHECK_MSG(e.item < num_items, "item id %u out of range", e.item);
    per_user[e.user].push_back(e.item);
  }
  edges.clear();
  offsets.assign(num_users + 1, 0);
  items.clear();
  for (uint32_t u = 0; u < num_users; ++u) {
    auto& v = per_user[u];
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    offsets[u + 1] = offsets[u] + v.size();
    for (uint32_t i : v) {
      items.push_back(i);
      edges.push_back(Edge{u, i});
    }
  }
}

}  // namespace

Dataset::Dataset(uint32_t num_users, uint32_t num_items,
                 std::vector<Edge> train, std::vector<Edge> test)
    : num_users_(num_users),
      num_items_(num_items),
      train_edges_(std::move(train)),
      test_edges_(std::move(test)) {
  BSLREC_CHECK(num_users > 0 && num_items > 0);
  BuildCsr(num_users, num_items, train_edges_, train_offsets_, train_items_);
  BuildCsr(num_users, num_items, test_edges_, test_offsets_, test_items_);
  item_popularity_.assign(num_items, 0);
  for (uint32_t i : train_items_) ++item_popularity_[i];
}

double Dataset::TrainDensity() const {
  return static_cast<double>(num_train()) /
         (static_cast<double>(num_users_) * num_items_);
}

std::span<const uint32_t> Dataset::TrainItems(uint32_t u) const {
  BSLREC_CHECK(u < num_users_);
  return {train_items_.data() + train_offsets_[u],
          train_offsets_[u + 1] - train_offsets_[u]};
}

std::span<const uint32_t> Dataset::TestItems(uint32_t u) const {
  BSLREC_CHECK(u < num_users_);
  return {test_items_.data() + test_offsets_[u],
          test_offsets_[u + 1] - test_offsets_[u]};
}

bool Dataset::IsTrainPositive(uint32_t u, uint32_t i) const {
  const auto items = TrainItems(u);
  return std::binary_search(items.begin(), items.end(), i);
}

std::vector<uint32_t> Dataset::PopularityGroups(uint32_t num_groups) const {
  BSLREC_CHECK(num_groups > 0);
  std::vector<uint32_t> order(num_items_);
  std::iota(order.begin(), order.end(), 0);
  // Ascending popularity; ties broken by item id for determinism.
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (item_popularity_[a] != item_popularity_[b]) {
      return item_popularity_[a] < item_popularity_[b];
    }
    return a < b;
  });
  std::vector<uint32_t> group(num_items_, 0);
  for (uint32_t rank = 0; rank < num_items_; ++rank) {
    group[order[rank]] = static_cast<uint32_t>(
        (static_cast<uint64_t>(rank) * num_groups) / num_items_);
  }
  return group;
}

std::vector<uint32_t> Dataset::TestUsers() const {
  std::vector<uint32_t> users;
  for (uint32_t u = 0; u < num_users_; ++u) {
    if (!TestItems(u).empty()) users.push_back(u);
  }
  return users;
}

}  // namespace bslrec
