// Plain-text dataset I/O.
//
// Format (one interaction per line, the layout used by the LightGCN /
// BSL reference repositories after flattening):
//
//   <user_id> <item_id>\n
//
// Lines starting with '#' and blank lines are skipped. Ids must be
// non-negative integers; the matrix dimensions are inferred as
// max(id)+1 across both splits unless explicit dims are given.
#ifndef BSLREC_DATA_LOADERS_H_
#define BSLREC_DATA_LOADERS_H_

#include <optional>
#include <string>

#include "data/dataset.h"

namespace bslrec {

// Loads a dataset from train/test interaction files. Returns std::nullopt
// (and prints a diagnostic to stderr) when a file cannot be opened or a
// line fails to parse — malformed external input is a recoverable error,
// not a programmer error.
std::optional<Dataset> LoadInteractions(const std::string& train_path,
                                        const std::string& test_path);

// Writes the train and test edge lists of `data` to the given paths.
// Returns false on I/O failure.
bool SaveInteractions(const Dataset& data, const std::string& train_path,
                      const std::string& test_path);

}  // namespace bslrec

#endif  // BSLREC_DATA_LOADERS_H_
