#include "data/loaders.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace bslrec {

namespace {

// Parses one file of "user item" lines into `edges`; tracks max ids.
// Returns false (with a stderr diagnostic) on open/parse failure.
bool ParseFile(const std::string& path, std::vector<Edge>& edges,
               uint32_t& max_user, uint32_t& max_item) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bslrec: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    long long u = -1, i = -1;
    if (!(ss >> u >> i) || u < 0 || i < 0) {
      std::fprintf(stderr, "bslrec: parse error at %s:%zu: '%s'\n",
                   path.c_str(), line_no, line.c_str());
      return false;
    }
    const uint32_t uu = static_cast<uint32_t>(u);
    const uint32_t ii = static_cast<uint32_t>(i);
    edges.push_back(Edge{uu, ii});
    max_user = std::max(max_user, uu);
    max_item = std::max(max_item, ii);
  }
  return true;
}

}  // namespace

std::optional<Dataset> LoadInteractions(const std::string& train_path,
                                        const std::string& test_path) {
  std::vector<Edge> train, test;
  uint32_t max_user = 0, max_item = 0;
  if (!ParseFile(train_path, train, max_user, max_item)) return std::nullopt;
  if (!ParseFile(test_path, test, max_user, max_item)) return std::nullopt;
  if (train.empty()) {
    std::fprintf(stderr, "bslrec: '%s' contains no interactions\n",
                 train_path.c_str());
    return std::nullopt;
  }
  return Dataset(max_user + 1, max_item + 1, std::move(train),
                 std::move(test));
}

bool SaveInteractions(const Dataset& data, const std::string& train_path,
                      const std::string& test_path) {
  const auto write = [](const std::string& path,
                        const std::vector<Edge>& edges) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bslrec: cannot write '%s'\n", path.c_str());
      return false;
    }
    for (const Edge& e : edges) out << e.user << ' ' << e.item << '\n';
    return static_cast<bool>(out);
  };
  return write(train_path, data.train_edges()) &&
         write(test_path, data.test_edges());
}

}  // namespace bslrec
