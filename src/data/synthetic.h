// Synthetic implicit-feedback dataset generator.
//
// The paper evaluates on Yelp2018, Amazon-Book, Gowalla and MovieLens-1M,
// none of which ship with this repository. The generator reproduces the
// *mechanisms* those datasets exercise:
//
//   * latent-factor preference structure: items live in clusters on the
//     unit sphere; users prefer a small mixture of clusters. This yields
//     the groupable embedding geometry behind the paper's t-SNE figures.
//   * long-tail popularity: item exposure follows a Zipf law, so the
//     popularity-bias / fairness experiments (Figs 4a, 5) have the same
//     head-vs-tail tension as the real data.
//   * noisy positives: a configurable fraction of interactions is drawn
//     ignoring preference (clickbait / conformity stand-in). The Gowalla
//     preset uses a higher rate, mirroring the paper's conjecture that
//     Gowalla contains more positive noise (Section V-B).
//
// Interactions are drawn per user without replacement with probability
// proportional to popularity^gamma * exp(beta * cos(u, i)) via the
// Gumbel-top-k trick (exact Plackett-Luce sampling), then split 80/20 into
// train/test per user.
#ifndef BSLREC_DATA_SYNTHETIC_H_
#define BSLREC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "math/matrix.h"

namespace bslrec {

struct SyntheticConfig {
  std::string name = "synthetic";
  uint32_t num_users = 500;
  uint32_t num_items = 400;
  uint32_t num_clusters = 10;
  uint32_t latent_dim = 16;    // ground-truth latent dimensionality
  double zipf_alpha = 1.0;     // popularity long-tail exponent
  double popularity_gamma = 0.6;  // exposure strength of popularity
  double affinity_beta = 4.0;  // preference sharpness in exp(beta*cos)
  double cluster_noise = 0.35; // item scatter around cluster centers
  double avg_items_per_user = 25.0;
  uint32_t min_items_per_user = 5;
  double positive_noise_rate = 0.02;  // fraction of random (noisy) positives
  double test_fraction = 0.2;
  uint64_t seed = 42;
};

// A generated dataset together with the ground truth used to generate it
// (cluster assignments back the t-SNE separation metrics; latents back
// sanity tests).
struct SyntheticData {
  SyntheticConfig config;
  Dataset dataset;
  std::vector<uint32_t> item_cluster;  // item -> generating cluster id
  Matrix user_latent;                  // num_users x latent_dim (unit rows)
  Matrix item_latent;                  // num_items x latent_dim (unit rows)
};

// Generates a dataset from `config`. Deterministic given config.seed.
SyntheticData GenerateSynthetic(const SyntheticConfig& config);

// Named presets standing in for the paper's four datasets, scaled ~50x
// down so a full backbone x loss grid trains in seconds. Relative density
// ordering matches Table I (MovieLens densest, Amazon sparsest).
SyntheticConfig Movielens1MSynth(uint64_t seed = 42);
SyntheticConfig Yelp18Synth(uint64_t seed = 42);
SyntheticConfig GowallaSynth(uint64_t seed = 42);
SyntheticConfig AmazonSynth(uint64_t seed = 42);

// All four presets in paper order {Amazon, Yelp2018, Gowalla, MovieLens-1M}.
std::vector<SyntheticConfig> AllPresets(uint64_t seed = 42);

}  // namespace bslrec

#endif  // BSLREC_DATA_SYNTHETIC_H_
