#include "data/noise.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/check.h"

namespace bslrec {

Dataset InjectFalsePositives(const Dataset& data, double ratio, Rng& rng) {
  BSLREC_CHECK(ratio >= 0.0);
  std::vector<Edge> train = data.train_edges();
  std::vector<Edge> test = data.test_edges();

  for (uint32_t u = 0; u < data.num_users(); ++u) {
    const auto pos = data.TrainItems(u);
    const auto test_pos = data.TestItems(u);
    const uint32_t want =
        static_cast<uint32_t>(std::lround(ratio * pos.size()));
    if (want == 0) continue;

    // Candidate pool: all items the user never interacted with.
    std::vector<bool> taken(data.num_items(), false);
    for (uint32_t i : pos) taken[i] = true;
    for (uint32_t i : test_pos) taken[i] = true;
    std::vector<uint32_t> pool;
    pool.reserve(data.num_items());
    for (uint32_t i = 0; i < data.num_items(); ++i) {
      if (!taken[i]) pool.push_back(i);
    }
    const uint32_t n_add =
        std::min<uint32_t>(want, static_cast<uint32_t>(pool.size()));
    if (n_add == 0) continue;
    std::vector<uint32_t> picks = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(pool.size()), n_add);
    for (uint32_t p : picks) train.push_back(Edge{u, pool[p]});
  }
  return Dataset(data.num_users(), data.num_items(), std::move(train),
                 std::move(test));
}

Dataset DropTrainPositives(const Dataset& data, double ratio, Rng& rng) {
  BSLREC_CHECK(ratio >= 0.0 && ratio <= 1.0);
  std::vector<Edge> train;
  std::vector<Edge> test = data.test_edges();
  for (uint32_t u = 0; u < data.num_users(); ++u) {
    const auto pos = data.TrainItems(u);
    uint32_t drop = static_cast<uint32_t>(std::lround(ratio * pos.size()));
    // Keep at least one train positive so the user stays connected.
    drop = std::min<uint32_t>(
        drop, pos.empty() ? 0 : static_cast<uint32_t>(pos.size()) - 1);
    std::vector<bool> dropped(pos.size(), false);
    if (drop > 0) {
      for (uint32_t p : rng.SampleWithoutReplacement(
               static_cast<uint32_t>(pos.size()), drop)) {
        dropped[p] = true;
      }
    }
    for (size_t k = 0; k < pos.size(); ++k) {
      if (!dropped[k]) train.push_back(Edge{u, pos[k]});
    }
  }
  return Dataset(data.num_users(), data.num_items(), std::move(train),
                 std::move(test));
}

Dataset ResplitLeaveOneOut(const Dataset& data, Rng& rng) {
  std::vector<Edge> train, test;
  for (uint32_t u = 0; u < data.num_users(); ++u) {
    std::vector<uint32_t> items;
    const auto tr = data.TrainItems(u);
    const auto te = data.TestItems(u);
    items.insert(items.end(), tr.begin(), tr.end());
    items.insert(items.end(), te.begin(), te.end());
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    if (items.size() < 2) {
      for (uint32_t i : items) train.push_back(Edge{u, i});
      continue;
    }
    const size_t held_out = rng.NextIndex(items.size());
    for (size_t k = 0; k < items.size(); ++k) {
      if (k == held_out) {
        test.push_back(Edge{u, items[k]});
      } else {
        train.push_back(Edge{u, items[k]});
      }
    }
  }
  return Dataset(data.num_users(), data.num_items(), std::move(train),
                 std::move(test));
}

}  // namespace bslrec
