// Implicit-feedback interaction dataset.
//
// A `Dataset` holds the user-item interaction matrix R in CSR form, split
// into train and test positives per user (the conventional collaborative
// filtering protocol from LightGCN et al. that the paper follows). Items a
// user interacted with in train are S+_u; everything else is S-_u for
// sampling purposes. Test positives are used only by the evaluator.
#ifndef BSLREC_DATA_DATASET_H_
#define BSLREC_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace bslrec {

// One observed (user, item) interaction.
struct Edge {
  uint32_t user;
  uint32_t item;
};

class Dataset {
 public:
  Dataset() = default;

  // Builds the CSR structures from raw edge lists. Duplicate edges are
  // de-duplicated; user/item ids must be < num_users / num_items.
  Dataset(uint32_t num_users, uint32_t num_items, std::vector<Edge> train,
          std::vector<Edge> test);

  uint32_t num_users() const { return num_users_; }
  uint32_t num_items() const { return num_items_; }
  size_t num_train() const { return train_edges_.size(); }
  size_t num_test() const { return test_edges_.size(); }

  // Density of the training matrix, |train| / (|U|*|I|).
  double TrainDensity() const;

  // Sorted train positives of user u (S+_u).
  std::span<const uint32_t> TrainItems(uint32_t u) const;

  // Sorted test positives of user u.
  std::span<const uint32_t> TestItems(uint32_t u) const;

  // True iff (u, i) is a train positive. O(log |S+_u|).
  bool IsTrainPositive(uint32_t u, uint32_t i) const;

  // Flat edge list for mini-batch iteration (one sample per train edge).
  const std::vector<Edge>& train_edges() const { return train_edges_; }
  const std::vector<Edge>& test_edges() const { return test_edges_; }

  // Number of train interactions per item ("popularity").
  const std::vector<uint32_t>& item_popularity() const {
    return item_popularity_;
  }

  // Partitions items into `num_groups` popularity groups of (nearly) equal
  // item count; returns item -> group id, where larger group id means more
  // popular (matching the paper's Figure 4a/5 convention).
  std::vector<uint32_t> PopularityGroups(uint32_t num_groups) const;

  // Users that have at least one test item (the evaluation population).
  std::vector<uint32_t> TestUsers() const;

 private:
  uint32_t num_users_ = 0;
  uint32_t num_items_ = 0;
  std::vector<Edge> train_edges_;
  std::vector<Edge> test_edges_;
  // CSR: items of user u are train_items_[train_offsets_[u] ..
  // train_offsets_[u+1]), sorted ascending.
  std::vector<size_t> train_offsets_;
  std::vector<uint32_t> train_items_;
  std::vector<size_t> test_offsets_;
  std::vector<uint32_t> test_items_;
  std::vector<uint32_t> item_popularity_;
};

}  // namespace bslrec

#endif  // BSLREC_DATA_DATASET_H_
