// Controlled noise injection for robustness experiments.
//
// Two kinds of corruption appear in the paper's evaluation:
//
//  * False positives (Section V-D, Table IV, Figs 6/10/11): a proportion
//    of random non-interacted items is added to each user's *training*
//    positives while the test set stays clean. `InjectFalsePositives`
//    implements exactly that.
//  * False negatives (Sections III-B, V-C, Figs 3/8): handled at sampling
//    time by `NoisyNegativeSampler` (see sampling/negative_sampler.h),
//    which draws true positives as "negatives" with a configurable odds
//    ratio r_noise.
#ifndef BSLREC_DATA_NOISE_H_
#define BSLREC_DATA_NOISE_H_

#include <cstdint>

#include "data/dataset.h"
#include "math/rng.h"

namespace bslrec {

// Returns a copy of `data` whose train set additionally contains
// round(ratio * |S+_u|) random items per user u that the user did NOT
// interact with (neither train nor test). The test set is unchanged.
// `ratio` in [0, 1+); 0 returns an identical dataset.
Dataset InjectFalsePositives(const Dataset& data, double ratio, Rng& rng);

// Returns a copy of `data` where round(ratio * |S+_u|) random train
// positives per user are *removed* (exposure-dropout; used by failure-
// injection tests to study sparsity robustness).
Dataset DropTrainPositives(const Dataset& data, double ratio, Rng& rng);

// Re-splits the union of `data`'s train and test interactions with the
// leave-one-out protocol (He et al., NCF): exactly one random
// interaction per user is held out for testing; users with fewer than
// two interactions keep everything in train. The alternative evaluation
// protocol common in the pointwise-loss literature.
Dataset ResplitLeaveOneOut(const Dataset& data, Rng& rng);

}  // namespace bslrec

#endif  // BSLREC_DATA_NOISE_H_
