#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/alias_table.h"
#include "math/check.h"
#include "math/rng.h"
#include "math/vec.h"

namespace bslrec {

namespace {

// Draws k distinct indices with probability proportional to weights[i]
// (sequential sampling without replacement) using the Gumbel-top-k trick:
// argtop-k of log(w_i) + G_i with iid standard Gumbel noise G_i.
std::vector<uint32_t> GumbelTopK(const std::vector<double>& weights,
                                 uint32_t k, Rng& rng) {
  const size_t n = weights.size();
  BSLREC_CHECK(k <= n);
  std::vector<std::pair<double, uint32_t>> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] <= 0.0) continue;
    const double u = std::max(rng.NextDouble(), 1e-300);
    const double gumbel = -std::log(-std::log(u));
    keys.emplace_back(std::log(weights[i]) + gumbel,
                      static_cast<uint32_t>(i));
  }
  BSLREC_CHECK(keys.size() >= k);
  std::partial_sort(
      keys.begin(), keys.begin() + k, keys.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<uint32_t> result(k);
  for (uint32_t j = 0; j < k; ++j) result[j] = keys[j].second;
  return result;
}

}  // namespace

SyntheticData GenerateSynthetic(const SyntheticConfig& config) {
  BSLREC_CHECK(config.num_users > 0 && config.num_items > 0);
  BSLREC_CHECK(config.num_clusters > 0 && config.latent_dim > 0);
  BSLREC_CHECK(config.test_fraction >= 0.0 && config.test_fraction < 1.0);
  Rng rng(config.seed);

  const uint32_t d = config.latent_dim;

  // Cluster centers on the unit sphere.
  Matrix centers(config.num_clusters, d);
  centers.InitGaussian(rng, 1.0f);
  for (uint32_t c = 0; c < config.num_clusters; ++c) {
    vec::Normalize(centers.Row(c), centers.Row(c), d);
  }

  // Item latents: center + Gaussian scatter, normalized.
  SyntheticData out;
  out.config = config;
  out.item_cluster.resize(config.num_items);
  out.item_latent = Matrix(config.num_items, d);
  for (uint32_t i = 0; i < config.num_items; ++i) {
    const uint32_t c =
        static_cast<uint32_t>(rng.NextIndex(config.num_clusters));
    out.item_cluster[i] = c;
    float* row = out.item_latent.Row(i);
    for (uint32_t k = 0; k < d; ++k) {
      row[k] = centers.At(c, k) +
               static_cast<float>(rng.NextGaussian() * config.cluster_noise);
    }
    vec::Normalize(row, row, d);
  }

  // User latents: mixture of 1-3 preferred clusters + noise, normalized.
  out.user_latent = Matrix(config.num_users, d);
  for (uint32_t u = 0; u < config.num_users; ++u) {
    const uint32_t num_pref = 1 + static_cast<uint32_t>(rng.NextIndex(3));
    float* row = out.user_latent.Row(u);
    for (uint32_t p = 0; p < num_pref; ++p) {
      const uint32_t c =
          static_cast<uint32_t>(rng.NextIndex(config.num_clusters));
      const float w = 0.5f + 0.5f * static_cast<float>(rng.NextDouble());
      vec::Axpy(w, centers.Row(c), row, d);
    }
    for (uint32_t k = 0; k < d; ++k) {
      row[k] += static_cast<float>(rng.NextGaussian() * 0.2);
    }
    vec::Normalize(row, row, d);
  }

  // Popularity: Zipf weights assigned to a random permutation of items, so
  // popularity is independent of cluster identity (as in real catalogs
  // every cluster has its head and tail items).
  std::vector<double> zipf = ZipfWeights(config.num_items, config.zipf_alpha);
  std::vector<uint32_t> perm(config.num_items);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  std::vector<double> popularity(config.num_items);
  for (uint32_t i = 0; i < config.num_items; ++i) {
    popularity[perm[i]] = zipf[i];
  }

  // Interactions per user.
  std::vector<Edge> train, test;
  std::vector<double> weights(config.num_items);
  for (uint32_t u = 0; u < config.num_users; ++u) {
    // Poisson-ish count via rounded exponential jitter around the mean.
    const double jitter = 0.5 + rng.NextDouble();
    uint32_t n_u = static_cast<uint32_t>(
        std::lround(config.avg_items_per_user * jitter));
    n_u = std::max(n_u, config.min_items_per_user);
    n_u = std::min(n_u, config.num_items);

    // Preference-driven draws vs pure-popularity noisy draws.
    uint32_t n_noise = static_cast<uint32_t>(
        std::lround(n_u * config.positive_noise_rate));
    n_noise = std::min(n_noise, n_u);
    const uint32_t n_pref = n_u - n_noise;

    const float* ul = out.user_latent.Row(u);
    for (uint32_t i = 0; i < config.num_items; ++i) {
      const double affinity =
          vec::Dot(ul, out.item_latent.Row(i), d);  // rows are unit norm
      weights[i] = std::pow(popularity[i], config.popularity_gamma) *
                   std::exp(config.affinity_beta * affinity);
    }
    std::vector<uint32_t> items = GumbelTopK(weights, n_pref, rng);

    if (n_noise > 0) {
      // Noise draws ignore preference entirely: popularity-only exposure.
      std::vector<double> noise_w = popularity;
      for (uint32_t i : items) noise_w[i] = 0.0;  // avoid duplicates
      std::vector<uint32_t> noisy = GumbelTopK(noise_w, n_noise, rng);
      items.insert(items.end(), noisy.begin(), noisy.end());
    }

    // Per-user split: last ceil(test_fraction * n) of a shuffle go to test.
    rng.Shuffle(items);
    const uint32_t n_test = static_cast<uint32_t>(
        std::floor(config.test_fraction * items.size()));
    for (size_t k = 0; k < items.size(); ++k) {
      if (k < items.size() - n_test) {
        train.push_back(Edge{u, items[k]});
      } else {
        test.push_back(Edge{u, items[k]});
      }
    }
  }

  out.dataset = Dataset(config.num_users, config.num_items, std::move(train),
                        std::move(test));
  return out;
}

// Preset scale note: the catalogs are large enough (~1000 items) that the
// hardness-aware weighting of SL matters — with tiny catalogs every
// random negative is informative and the paper's loss ordering does not
// emerge. Relative train densities mirror Table I's ordering
// (MovieLens >> Yelp2018 > Gowalla > Amazon).
SyntheticConfig Movielens1MSynth(uint64_t seed) {
  SyntheticConfig c;
  c.name = "MovieLens-1M(synth)";
  c.num_users = 450;
  c.num_items = 450;
  c.num_clusters = 12;
  c.zipf_alpha = 0.8;
  c.avg_items_per_user = 50.0;
  c.positive_noise_rate = 0.03;
  c.seed = seed;
  return c;
}

SyntheticConfig Yelp18Synth(uint64_t seed) {
  SyntheticConfig c;
  c.name = "Yelp2018(synth)";
  c.num_users = 800;
  c.num_items = 1100;
  c.num_clusters = 20;
  c.zipf_alpha = 1.0;
  c.avg_items_per_user = 22.0;
  c.positive_noise_rate = 0.04;
  c.seed = seed + 1;
  return c;
}

SyntheticConfig GowallaSynth(uint64_t seed) {
  SyntheticConfig c;
  c.name = "Gowalla(synth)";
  c.num_users = 700;
  c.num_items = 1000;
  c.num_clusters = 18;
  c.zipf_alpha = 1.1;
  c.avg_items_per_user = 18.0;
  // The paper conjectures Gowalla carries more positive noise (Sec. V-B);
  // the preset bakes that in so the SL-vs-BSL gap reproduces.
  c.positive_noise_rate = 0.15;
  c.seed = seed + 2;
  return c;
}

SyntheticConfig AmazonSynth(uint64_t seed) {
  SyntheticConfig c;
  c.name = "Amazon(synth)";
  c.num_users = 900;
  c.num_items = 1400;
  c.num_clusters = 24;
  c.zipf_alpha = 1.2;
  c.avg_items_per_user = 14.0;
  c.positive_noise_rate = 0.05;
  c.seed = seed + 3;
  return c;
}

std::vector<SyntheticConfig> AllPresets(uint64_t seed) {
  return {AmazonSynth(seed), Yelp18Synth(seed), GowallaSynth(seed),
          Movielens1MSynth(seed)};
}

}  // namespace bslrec
