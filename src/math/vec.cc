#include "math/vec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

// SIMD tier selection. AVX2 needs an explicit opt-in (-mavx2, via the
// BSLREC_NATIVE CMake option); SSE2 is part of the x86-64 baseline, so
// every 64-bit x86 build gets real vector code. Anything else falls
// back to the scalar reference — which is always compiled regardless,
// both as the vec::ref contract oracle and as the portable path.
#if defined(__AVX2__)
#include <immintrin.h>
#define BSLREC_SIMD_AVX2 1
#define BSLREC_SIMD_SSE2 1
// F16C (half-float converts) ships with every AVX2 CPU but is a
// separate ISA flag; the fp16 kernels use it only when the build
// enables both.
#if defined(__F16C__)
#define BSLREC_SIMD_F16C 1
#endif
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define BSLREC_SIMD_SSE2 1
#endif

// The hot kernels below are written as unrolled/blocked loops with
// multiple independent accumulators. Two properties are load-bearing:
//   * Stability: reductions still accumulate in double (the original
//     contract), so long rows don't lose low-order bits.
//   * Determinism: the summation tree is a pure function of n — four
//     fixed accumulator lanes combined in a fixed order — so results
//     never depend on call context. The multi-threaded trainer and
//     evaluator rely on this for their bit-identical-results guarantee.
// The SIMD forms keep the same four double lanes in hardware registers
// (see the vec.h contract note), so enabling them changes no result.

namespace bslrec::vec {

const char* SimdTier() {
#if BSLREC_SIMD_AVX2
  return "avx2";
#elif BSLREC_SIMD_SSE2
  return "sse2";
#else
  return "scalar";
#endif
}

namespace ref {

float Dot(const float* a, const float* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 += static_cast<double>(a[k + 0]) * b[k + 0];
    acc1 += static_cast<double>(a[k + 1]) * b[k + 1];
    acc2 += static_cast<double>(a[k + 2]) * b[k + 2];
    acc3 += static_cast<double>(a[k + 3]) * b[k + 3];
  }
  for (; k < n; ++k) acc0 += static_cast<double>(a[k]) * b[k];
  return static_cast<float>((acc0 + acc1) + (acc2 + acc3));
}

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t k = 0; k < n; ++k) {
    acc += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return acc;
}

void DotBatchI8(const int8_t* q, const int8_t* rows, size_t m, size_t d,
                int32_t* out) {
  for (size_t r = 0; r < m; ++r) out[r] = DotI8(q, rows + r * d, d);
}

}  // namespace ref

namespace {

// Shared quantization encoder: max_abs -> scale + codes. Both the
// reference and the degenerate branches of the SIMD kernel route here,
// so the two stay bitwise aligned by construction. The main branch
// (nearbyintf(x * inv)) is also exactly what the packed CVTPS2DQ form
// computes: one IEEE float multiply, then round-to-nearest-even.
float QuantizeCodes(const float* x, size_t n, float max_abs, int8_t* out) {
  if (!(max_abs > 0.0f)) {
    std::fill(out, out + n, static_cast<int8_t>(0));
    return 0.0f;
  }
  const float inv = 127.0f / max_abs;
  if (!std::isfinite(inv)) {
    // Denormal max_abs overflows the reciprocal; divide instead
    // (|x / max_abs| <= 1, so the codes stay in range).
    for (size_t k = 0; k < n; ++k) {
      const float r = std::nearbyintf((x[k] / max_abs) * 127.0f);
      out[k] = static_cast<int8_t>(std::min(127.0f, std::max(-127.0f, r)));
    }
    return max_abs / 127.0f;
  }
  for (size_t k = 0; k < n; ++k) {
    const float r = std::nearbyintf(x[k] * inv);
    out[k] = static_cast<int8_t>(std::min(127.0f, std::max(-127.0f, r)));
  }
  return max_abs / 127.0f;
}

float MaxAbsScalar(const float* x, size_t n) {
  float m = 0.0f;
  for (size_t k = 0; k < n; ++k) m = std::max(m, std::fabs(x[k]));
  return m;
}

#if BSLREC_SIMD_SSE2
// Horizontal sum of four int32 lanes (exact: integer adds).
inline int32_t HSumEpi32(__m128i v) {
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
  v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(v);
}
#endif

#if BSLREC_SIMD_AVX2
inline int32_t HSumEpi32(__m256i v) {
  return HSumEpi32(
      _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1)));
}

// 16 int8 lanes sign-extended to int16, multiply-accumulated into 8
// int32 lanes. Products are <= 127^2, so MADD's pairwise int32 sums and
// the running accumulator are overflow-free for any realistic dim.
inline __m256i MaddI8Block(const int8_t* a, const int8_t* b, __m256i acc) {
  const __m256i a16 = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(a)));
  const __m256i b16 = _mm256_cvtepi8_epi16(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(b)));
  return _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
}
#endif

}  // namespace

float Dot(const float* a, const float* b, size_t n) {
#if BSLREC_SIMD_AVX2
  // Four double lanes in one 256-bit register: lane j holds exactly the
  // reference's acc_j (float*float widened to double is exact, so the
  // packed multiply-add performs the same sequence of IEEE double adds).
  __m256d acc = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m256d da = _mm256_cvtps_pd(_mm_loadu_ps(a + k));
    const __m256d db = _mm256_cvtps_pd(_mm_loadu_ps(b + k));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(da, db));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double acc0 = lane[0];
  for (; k < n; ++k) acc0 += static_cast<double>(a[k]) * b[k];
  return static_cast<float>((acc0 + lane[1]) + (lane[2] + lane[3]));
#elif BSLREC_SIMD_SSE2
  // Same four lanes split across two 128-bit registers.
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128 va = _mm_loadu_ps(a + k);
    const __m128 vb = _mm_loadu_ps(b + k);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_cvtps_pd(va), _mm_cvtps_pd(vb)));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(va, va)),
                                         _mm_cvtps_pd(_mm_movehl_ps(vb, vb))));
  }
  alignas(16) double lane01[2], lane23[2];
  _mm_store_pd(lane01, acc01);
  _mm_store_pd(lane23, acc23);
  double acc0 = lane01[0];
  for (; k < n; ++k) acc0 += static_cast<double>(a[k]) * b[k];
  return static_cast<float>((acc0 + lane01[1]) + (lane23[0] + lane23[1]));
#else
  return ref::Dot(a, b, n);
#endif
}

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
#if BSLREC_SIMD_AVX2
  __m256i acc = _mm256_setzero_si256();
  size_t k = 0;
  for (; k + 16 <= n; k += 16) acc = MaddI8Block(a + k, b + k, acc);
  int32_t sum = HSumEpi32(acc);
  for (; k < n; ++k) {
    sum += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return sum;
#elif BSLREC_SIMD_SSE2
  const __m128i zero = _mm_setzero_si128();
  __m128i acc = zero;
  size_t k = 0;
  for (; k + 16 <= n; k += 16) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + k));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + k));
    // SSE2 has no 8->16 sign-extend; widen via sign-mask unpack.
    const __m128i sa = _mm_cmpgt_epi8(zero, va);
    const __m128i sb = _mm_cmpgt_epi8(zero, vb);
    acc = _mm_add_epi32(acc, _mm_madd_epi16(_mm_unpacklo_epi8(va, sa),
                                            _mm_unpacklo_epi8(vb, sb)));
    acc = _mm_add_epi32(acc, _mm_madd_epi16(_mm_unpackhi_epi8(va, sa),
                                            _mm_unpackhi_epi8(vb, sb)));
  }
  int32_t sum = HSumEpi32(acc);
  for (; k < n; ++k) {
    sum += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return sum;
#else
  return ref::DotI8(a, b, n);
#endif
}

void DotBatchI8(const int8_t* q, const int8_t* rows, size_t m, size_t d,
                int32_t* out) {
#if BSLREC_SIMD_AVX2
  // Four-row blocking: the widened query block is loaded once and
  // multiply-accumulated against four item rows, quartering the query
  // traffic of the per-row form. Integer adds are associative, so the
  // blocking cannot change any result.
  size_t r = 0;
  for (; r + 4 <= m; r += 4) {
    const int8_t* r0 = rows + (r + 0) * d;
    const int8_t* r1 = rows + (r + 1) * d;
    const int8_t* r2 = rows + (r + 2) * d;
    const int8_t* r3 = rows + (r + 3) * d;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    size_t k = 0;
    for (; k + 16 <= d; k += 16) {
      const __m256i q16 = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + k)));
      const auto row16 = [k](const int8_t* row) {
        return _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + k)));
      };
      acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(q16, row16(r0)));
      acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(q16, row16(r1)));
      acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(q16, row16(r2)));
      acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(q16, row16(r3)));
    }
    int32_t s0 = HSumEpi32(acc0), s1 = HSumEpi32(acc1);
    int32_t s2 = HSumEpi32(acc2), s3 = HSumEpi32(acc3);
    for (; k < d; ++k) {
      const int32_t qk = q[k];
      s0 += qk * r0[k];
      s1 += qk * r1[k];
      s2 += qk * r2[k];
      s3 += qk * r3[k];
    }
    out[r + 0] = s0;
    out[r + 1] = s1;
    out[r + 2] = s2;
    out[r + 3] = s3;
  }
  for (; r < m; ++r) out[r] = DotI8(q, rows + r * d, d);
#else
  for (size_t r = 0; r < m; ++r) out[r] = DotI8(q, rows + r * d, d);
#endif
}

namespace ref {
float QuantizeRow(const float* x, size_t n, int8_t* out) {
  return QuantizeCodes(x, n, MaxAbsScalar(x, n), out);
}
}  // namespace ref

float QuantizeRow(const float* x, size_t n, int8_t* out) {
#if BSLREC_SIMD_SSE2
  // Max-abs reduction (order-invariant: abs and max are exact).
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  __m128 vmax = _mm_setzero_ps();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    vmax = _mm_max_ps(vmax, _mm_and_ps(abs_mask, _mm_loadu_ps(x + k)));
  }
  alignas(16) float lane[4];
  _mm_store_ps(lane, vmax);
  float max_abs = std::max(std::max(lane[0], lane[1]),
                           std::max(lane[2], lane[3]));
  for (; k < n; ++k) max_abs = std::max(max_abs, std::fabs(x[k]));

  const float inv = max_abs > 0.0f ? 127.0f / max_abs : 0.0f;
  if (!(max_abs > 0.0f) || !std::isfinite(inv)) {
    return QuantizeCodes(x, n, max_abs, out);  // degenerate rows: scalar
  }
  // Encode 8 floats per iteration: multiply, CVTPS2DQ (round-to-nearest
  // -even, same as nearbyintf under the default FP environment), then
  // narrow 32->16->8 with saturating packs. |x*inv| <= 127*(1 + 2^-22)
  // < 127.5, so neither the rounding nor the packs ever saturate and
  // every code lands in [-127, 127] — bitwise equal to the scalar form.
  const __m128 vinv = _mm_set1_ps(inv);
  k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m128i i0 = _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + k), vinv));
    const __m128i i1 =
        _mm_cvtps_epi32(_mm_mul_ps(_mm_loadu_ps(x + k + 4), vinv));
    const __m128i p8 = _mm_packs_epi16(_mm_packs_epi32(i0, i1),
                                       _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + k), p8);
  }
  for (; k < n; ++k) {
    const float r = std::nearbyintf(x[k] * inv);
    out[k] = static_cast<int8_t>(std::min(127.0f, std::max(-127.0f, r)));
  }
  return max_abs / 127.0f;
#else
  return ref::QuantizeRow(x, n, out);
#endif
}

uint16_t F32ToF16(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint16_t sign = static_cast<uint16_t>((x >> 16) & 0x8000u);
  x &= 0x7fffffffu;
  if (x >= 0x7f800000u) {
    // inf / NaN: quiet bit forced, high payload bits preserved (what
    // VCVTPS2PH does with signaling NaNs).
    const uint16_t mant =
        x > 0x7f800000u
            ? static_cast<uint16_t>(0x0200u | ((x >> 13) & 0x03ffu))
            : static_cast<uint16_t>(0);
    return static_cast<uint16_t>(sign | 0x7c00u | mant);
  }
  if (x >= 0x477ff000u) {
    // Magnitude >= 65520 rounds past the max normal (65504) to inf.
    return static_cast<uint16_t>(sign | 0x7c00u);
  }
  if (x >= 0x38800000u) {
    // Normal f16: rebias the exponent, round the 13 dropped mantissa
    // bits to nearest-even (a carry ripples correctly into the
    // exponent field, including up to inf-1 -> never, guarded above).
    const uint32_t e = x >> 23;  // 113..142
    uint32_t q = ((e - 112u) << 10) | ((x >> 13) & 0x3ffu);
    const uint32_t rem = x & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (q & 1u))) ++q;
    return static_cast<uint16_t>(sign | q);
  }
  if (x < 0x33000000u) {
    // Below 2^-25: rounds to (signed) zero. Covers f32 subnormals too.
    return sign;
  }
  // Subnormal f16: the value is m * 2^(e-150) with the implicit bit
  // restored; shift it down to units of 2^-24 and round to nearest-even.
  const uint32_t e = x >> 23;                    // 102..112
  const uint32_t m = (x & 0x7fffffu) | 0x800000u;
  const uint32_t shift = 126u - e;               // 14..24
  uint32_t q = m >> shift;
  const uint32_t rem = m & ((1u << shift) - 1u);
  const uint32_t half = 1u << (shift - 1u);
  if (rem > half || (rem == half && (q & 1u))) ++q;
  return static_cast<uint16_t>(sign | q);  // carry into 0x0400 is exact
}

float F16ToF32(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t em = h & 0x7fffu;
  uint32_t r;
  if (em >= 0x7c00u) {
    // inf / NaN; quiet bit forced on NaNs (matching VCVTPH2PS).
    r = sign | 0x7f800000u | (static_cast<uint32_t>(em & 0x3ffu) << 13);
    if (em > 0x7c00u) r |= 0x400000u;
  } else if (em >= 0x0400u) {
    // Normal: rebias exponent, widen mantissa. Exact.
    r = sign | (((em >> 10) + 112u) << 23) |
        (static_cast<uint32_t>(em & 0x3ffu) << 13);
  } else if (em != 0u) {
    // Subnormal f16 -> normal f32: renormalize the mantissa. Exact.
    uint32_t m = em;
    uint32_t e = 113u;
    while ((m & 0x400u) == 0u) {
      m <<= 1;
      --e;
    }
    r = sign | (e << 23) | (static_cast<uint32_t>(m & 0x3ffu) << 13);
  } else {
    r = sign;  // +-0
  }
  float f;
  std::memcpy(&f, &r, sizeof(f));
  return f;
}

namespace ref {

void EncodeF16(const float* x, size_t n, uint16_t* out) {
  for (size_t k = 0; k < n; ++k) out[k] = F32ToF16(x[k]);
}

void GatherF16(const uint16_t* in, size_t n, float* out) {
  for (size_t k = 0; k < n; ++k) out[k] = F16ToF32(in[k]);
}

float DotF16(const float* q, const uint16_t* row, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 += static_cast<double>(q[k + 0]) * F16ToF32(row[k + 0]);
    acc1 += static_cast<double>(q[k + 1]) * F16ToF32(row[k + 1]);
    acc2 += static_cast<double>(q[k + 2]) * F16ToF32(row[k + 2]);
    acc3 += static_cast<double>(q[k + 3]) * F16ToF32(row[k + 3]);
  }
  for (; k < n; ++k) acc0 += static_cast<double>(q[k]) * F16ToF32(row[k]);
  return static_cast<float>((acc0 + acc1) + (acc2 + acc3));
}

void DotBatchF16(const float* q, const uint16_t* rows, size_t m, size_t d,
                 float* out) {
  for (size_t r = 0; r < m; ++r) out[r] = DotF16(q, rows + r * d, d);
}

}  // namespace ref

void EncodeF16(const float* x, size_t n, uint16_t* out) {
#if BSLREC_SIMD_F16C
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(x + k),
                                      _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), h);
  }
  for (; k < n; ++k) out[k] = F32ToF16(x[k]);
#else
  ref::EncodeF16(x, n, out);
#endif
}

void GatherF16(const uint16_t* in, size_t n, float* out) {
#if BSLREC_SIMD_F16C
  size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + k));
    _mm256_storeu_ps(out + k, _mm256_cvtph_ps(h));
  }
  for (; k < n; ++k) out[k] = F16ToF32(in[k]);
#else
  ref::GatherF16(in, n, out);
#endif
}

float DotF16(const float* q, const uint16_t* row, size_t n) {
#if BSLREC_SIMD_F16C
  // Same four double lanes as Dot: decode 4 halves (exact), widen both
  // operands to double, multiply-add. The decode is exact and the adds
  // follow the reference's lane order, so the result is bit-identical
  // to ref::DotF16.
  __m256d acc = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128 vr = _mm_cvtph_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + k)));
    const __m256d dq = _mm256_cvtps_pd(_mm_loadu_ps(q + k));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(dq, _mm256_cvtps_pd(vr)));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  double acc0 = lane[0];
  for (; k < n; ++k) acc0 += static_cast<double>(q[k]) * F16ToF32(row[k]);
  return static_cast<float>((acc0 + lane[1]) + (lane[2] + lane[3]));
#else
  return ref::DotF16(q, row, n);
#endif
}

void DotBatchF16(const float* q, const uint16_t* rows, size_t m, size_t d,
                 float* out) {
  for (size_t r = 0; r < m; ++r) out[r] = DotF16(q, rows + r * d, d);
}

double L1Norm(const float* x, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 += std::fabs(static_cast<double>(x[k + 0]));
    acc1 += std::fabs(static_cast<double>(x[k + 1]));
    acc2 += std::fabs(static_cast<double>(x[k + 2]));
    acc3 += std::fabs(static_cast<double>(x[k + 3]));
  }
  for (; k < n; ++k) acc0 += std::fabs(static_cast<double>(x[k]));
  return (acc0 + acc1) + (acc2 + acc3);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    y[k + 0] += alpha * x[k + 0];
    y[k + 1] += alpha * x[k + 1];
    y[k + 2] += alpha * x[k + 2];
    y[k + 3] += alpha * x[k + 3];
  }
  for (; k < n; ++k) y[k] += alpha * x[k];
}

void Scale(float* x, size_t n, float alpha) {
  for (size_t k = 0; k < n; ++k) x[k] *= alpha;
}

float Norm(const float* x, size_t n) {
  return std::sqrt(std::max(0.0f, Dot(x, x, n)));
}

float Normalize(const float* x, float* out, size_t n, float eps) {
  const float norm = Norm(x, n);
  const float inv = 1.0f / std::max(norm, eps);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    out[k + 0] = x[k + 0] * inv;
    out[k + 1] = x[k + 1] * inv;
    out[k + 2] = x[k + 2] * inv;
    out[k + 3] = x[k + 3] * inv;
  }
  for (; k < n; ++k) out[k] = x[k] * inv;
  return norm;
}

float Cosine(const float* a, const float* b, size_t n) {
  const float na = Norm(a, n);
  const float nb = Norm(b, n);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void Sub(const float* a, const float* b, float* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = a[k] - b[k];
}

void Add(const float* a, const float* b, float* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = a[k] + b[k];
}

void Fill(float* x, size_t n, float v) {
  std::fill(x, x + n, v);
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const double d0 = static_cast<double>(a[k + 0]) - b[k + 0];
    const double d1 = static_cast<double>(a[k + 1]) - b[k + 1];
    const double d2 = static_cast<double>(a[k + 2]) - b[k + 2];
    const double d3 = static_cast<double>(a[k + 3]) - b[k + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; k < n; ++k) {
    const double d = static_cast<double>(a[k]) - b[k];
    acc0 += d * d;
  }
  return static_cast<float>((acc0 + acc1) + (acc2 + acc3));
}

void DotBatch(const float* q, const float* rows, size_t m, size_t d,
              float* out) {
  // Two regimes, picked by row length (measured on GCC -O3 x86-64):
  //  * Long rows vectorize best as the plain four-lane Dot loop — the
  //    autovectorizer handles one row's reduction well, and pairing rows
  //    only starves it of registers. Delegate per row.
  //  * Short rows are dominated by loop setup and query reloads; pairing
  //    two rows amortizes both (~1.2x at d=16).
  // Either way each row keeps Dot's exact four-lane summation tree, so
  // out[r] == Dot(q, row r, d) bitwise — callers may mix the kernels.
  if (d >= 32) {
    for (size_t r = 0; r < m; ++r) out[r] = Dot(q, rows + r * d, d);
    return;
  }
  size_t r = 0;
  for (; r + 2 <= m; r += 2) {
    const float* a = rows + r * d;
    const float* b = a + d;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
    size_t k = 0;
    for (; k + 4 <= d; k += 4) {
      const double q0 = q[k + 0], q1 = q[k + 1];
      const double q2 = q[k + 2], q3 = q[k + 3];
      a0 += q0 * a[k + 0];
      a1 += q1 * a[k + 1];
      a2 += q2 * a[k + 2];
      a3 += q3 * a[k + 3];
      b0 += q0 * b[k + 0];
      b1 += q1 * b[k + 1];
      b2 += q2 * b[k + 2];
      b3 += q3 * b[k + 3];
    }
    for (; k < d; ++k) {
      a0 += static_cast<double>(q[k]) * a[k];
      b0 += static_cast<double>(q[k]) * b[k];
    }
    out[r + 0] = static_cast<float>((a0 + a1) + (a2 + a3));
    out[r + 1] = static_cast<float>((b0 + b1) + (b2 + b3));
  }
  for (; r < m; ++r) out[r] = Dot(q, rows + r * d, d);
}

void GatherNormalize(const float* table, size_t stride, const uint32_t* ids,
                     size_t m, size_t d, float* out_rows, float* out_norms) {
  for (size_t r = 0; r < m; ++r) {
    out_norms[r] = Normalize(table + static_cast<size_t>(ids[r]) * stride,
                             out_rows + r * d, d);
  }
}

void AccumulateCosineGrad(const float* u_hat, const float* i_hat, float score,
                          float u_norm, float coeff, float* grad_u, size_t n) {
  // d cos / d u = (i_hat - score * u_hat) / ||u||.
  const float inv = coeff / std::max(u_norm, 1e-12f);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    grad_u[k + 0] += inv * (i_hat[k + 0] - score * u_hat[k + 0]);
    grad_u[k + 1] += inv * (i_hat[k + 1] - score * u_hat[k + 1]);
    grad_u[k + 2] += inv * (i_hat[k + 2] - score * u_hat[k + 2]);
    grad_u[k + 3] += inv * (i_hat[k + 3] - score * u_hat[k + 3]);
  }
  for (; k < n; ++k) {
    grad_u[k] += inv * (i_hat[k] - score * u_hat[k]);
  }
}

double LogSumExp(const float* x, size_t n) {
  if (n == 0) return -std::numeric_limits<double>::infinity();
  // Blocked max scan (max is associative/commutative, so lane order is
  // irrelevant), then a four-lane double exp-sum with a fixed tree.
  float m0 = x[0], m1 = x[0], m2 = x[0], m3 = x[0];
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    m0 = std::max(m0, x[k + 0]);
    m1 = std::max(m1, x[k + 1]);
    m2 = std::max(m2, x[k + 2]);
    m3 = std::max(m3, x[k + 3]);
  }
  for (; k < n; ++k) m0 = std::max(m0, x[k]);
  const float max_x = std::max(std::max(m0, m1), std::max(m2, m3));

  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 += std::exp(static_cast<double>(x[k + 0]) - max_x);
    acc1 += std::exp(static_cast<double>(x[k + 1]) - max_x);
    acc2 += std::exp(static_cast<double>(x[k + 2]) - max_x);
    acc3 += std::exp(static_cast<double>(x[k + 3]) - max_x);
  }
  for (; k < n; ++k) acc0 += std::exp(static_cast<double>(x[k]) - max_x);
  return static_cast<double>(max_x) + std::log((acc0 + acc1) + (acc2 + acc3));
}

void Softmax(const float* x, float* out, size_t n) {
  if (n == 0) return;
  float max_x = x[0];
  for (size_t k = 1; k < n; ++k) max_x = std::max(max_x, x[k]);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double e = std::exp(static_cast<double>(x[k]) - max_x);
    out[k] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (size_t k = 0; k < n; ++k) out[k] *= inv;
}

}  // namespace bslrec::vec
