#include "math/vec.h"

#include <algorithm>
#include <cmath>
#include <limits>

// The hot kernels below are written as unrolled/blocked loops with
// multiple independent accumulators. Two properties are load-bearing:
//   * Stability: reductions still accumulate in double (the original
//     contract), so long rows don't lose low-order bits.
//   * Determinism: the summation tree is a pure function of n — four
//     fixed accumulator lanes combined in a fixed order — so results
//     never depend on call context. The multi-threaded trainer and
//     evaluator rely on this for their bit-identical-results guarantee.
// The four-lane form breaks the serial dependency chain, which is what
// lets the compiler keep the FP pipeline full and auto-vectorize.

namespace bslrec::vec {

float Dot(const float* a, const float* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 += static_cast<double>(a[k + 0]) * b[k + 0];
    acc1 += static_cast<double>(a[k + 1]) * b[k + 1];
    acc2 += static_cast<double>(a[k + 2]) * b[k + 2];
    acc3 += static_cast<double>(a[k + 3]) * b[k + 3];
  }
  for (; k < n; ++k) acc0 += static_cast<double>(a[k]) * b[k];
  return static_cast<float>((acc0 + acc1) + (acc2 + acc3));
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    y[k + 0] += alpha * x[k + 0];
    y[k + 1] += alpha * x[k + 1];
    y[k + 2] += alpha * x[k + 2];
    y[k + 3] += alpha * x[k + 3];
  }
  for (; k < n; ++k) y[k] += alpha * x[k];
}

void Scale(float* x, size_t n, float alpha) {
  for (size_t k = 0; k < n; ++k) x[k] *= alpha;
}

float Norm(const float* x, size_t n) {
  return std::sqrt(std::max(0.0f, Dot(x, x, n)));
}

float Normalize(const float* x, float* out, size_t n, float eps) {
  const float norm = Norm(x, n);
  const float inv = 1.0f / std::max(norm, eps);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    out[k + 0] = x[k + 0] * inv;
    out[k + 1] = x[k + 1] * inv;
    out[k + 2] = x[k + 2] * inv;
    out[k + 3] = x[k + 3] * inv;
  }
  for (; k < n; ++k) out[k] = x[k] * inv;
  return norm;
}

float Cosine(const float* a, const float* b, size_t n) {
  const float na = Norm(a, n);
  const float nb = Norm(b, n);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void Sub(const float* a, const float* b, float* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = a[k] - b[k];
}

void Add(const float* a, const float* b, float* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = a[k] + b[k];
}

void Fill(float* x, size_t n, float v) {
  std::fill(x, x + n, v);
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const double d0 = static_cast<double>(a[k + 0]) - b[k + 0];
    const double d1 = static_cast<double>(a[k + 1]) - b[k + 1];
    const double d2 = static_cast<double>(a[k + 2]) - b[k + 2];
    const double d3 = static_cast<double>(a[k + 3]) - b[k + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; k < n; ++k) {
    const double d = static_cast<double>(a[k]) - b[k];
    acc0 += d * d;
  }
  return static_cast<float>((acc0 + acc1) + (acc2 + acc3));
}

void DotBatch(const float* q, const float* rows, size_t m, size_t d,
              float* out) {
  // Two regimes, picked by row length (measured on GCC -O3 x86-64):
  //  * Long rows vectorize best as the plain four-lane Dot loop — the
  //    autovectorizer handles one row's reduction well, and pairing rows
  //    only starves it of registers. Delegate per row.
  //  * Short rows are dominated by loop setup and query reloads; pairing
  //    two rows amortizes both (~1.2x at d=16).
  // Either way each row keeps Dot's exact four-lane summation tree, so
  // out[r] == Dot(q, row r, d) bitwise — callers may mix the kernels.
  if (d >= 32) {
    for (size_t r = 0; r < m; ++r) out[r] = Dot(q, rows + r * d, d);
    return;
  }
  size_t r = 0;
  for (; r + 2 <= m; r += 2) {
    const float* a = rows + r * d;
    const float* b = a + d;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
    size_t k = 0;
    for (; k + 4 <= d; k += 4) {
      const double q0 = q[k + 0], q1 = q[k + 1];
      const double q2 = q[k + 2], q3 = q[k + 3];
      a0 += q0 * a[k + 0];
      a1 += q1 * a[k + 1];
      a2 += q2 * a[k + 2];
      a3 += q3 * a[k + 3];
      b0 += q0 * b[k + 0];
      b1 += q1 * b[k + 1];
      b2 += q2 * b[k + 2];
      b3 += q3 * b[k + 3];
    }
    for (; k < d; ++k) {
      a0 += static_cast<double>(q[k]) * a[k];
      b0 += static_cast<double>(q[k]) * b[k];
    }
    out[r + 0] = static_cast<float>((a0 + a1) + (a2 + a3));
    out[r + 1] = static_cast<float>((b0 + b1) + (b2 + b3));
  }
  for (; r < m; ++r) out[r] = Dot(q, rows + r * d, d);
}

void GatherNormalize(const float* table, size_t stride, const uint32_t* ids,
                     size_t m, size_t d, float* out_rows, float* out_norms) {
  for (size_t r = 0; r < m; ++r) {
    out_norms[r] = Normalize(table + static_cast<size_t>(ids[r]) * stride,
                             out_rows + r * d, d);
  }
}

void AccumulateCosineGrad(const float* u_hat, const float* i_hat, float score,
                          float u_norm, float coeff, float* grad_u, size_t n) {
  // d cos / d u = (i_hat - score * u_hat) / ||u||.
  const float inv = coeff / std::max(u_norm, 1e-12f);
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    grad_u[k + 0] += inv * (i_hat[k + 0] - score * u_hat[k + 0]);
    grad_u[k + 1] += inv * (i_hat[k + 1] - score * u_hat[k + 1]);
    grad_u[k + 2] += inv * (i_hat[k + 2] - score * u_hat[k + 2]);
    grad_u[k + 3] += inv * (i_hat[k + 3] - score * u_hat[k + 3]);
  }
  for (; k < n; ++k) {
    grad_u[k] += inv * (i_hat[k] - score * u_hat[k]);
  }
}

double LogSumExp(const float* x, size_t n) {
  if (n == 0) return -std::numeric_limits<double>::infinity();
  // Blocked max scan (max is associative/commutative, so lane order is
  // irrelevant), then a four-lane double exp-sum with a fixed tree.
  float m0 = x[0], m1 = x[0], m2 = x[0], m3 = x[0];
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    m0 = std::max(m0, x[k + 0]);
    m1 = std::max(m1, x[k + 1]);
    m2 = std::max(m2, x[k + 2]);
    m3 = std::max(m3, x[k + 3]);
  }
  for (; k < n; ++k) m0 = std::max(m0, x[k]);
  const float max_x = std::max(std::max(m0, m1), std::max(m2, m3));

  double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
  k = 0;
  for (; k + 4 <= n; k += 4) {
    acc0 += std::exp(static_cast<double>(x[k + 0]) - max_x);
    acc1 += std::exp(static_cast<double>(x[k + 1]) - max_x);
    acc2 += std::exp(static_cast<double>(x[k + 2]) - max_x);
    acc3 += std::exp(static_cast<double>(x[k + 3]) - max_x);
  }
  for (; k < n; ++k) acc0 += std::exp(static_cast<double>(x[k]) - max_x);
  return static_cast<double>(max_x) + std::log((acc0 + acc1) + (acc2 + acc3));
}

void Softmax(const float* x, float* out, size_t n) {
  if (n == 0) return;
  float max_x = x[0];
  for (size_t k = 1; k < n; ++k) max_x = std::max(max_x, x[k]);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double e = std::exp(static_cast<double>(x[k]) - max_x);
    out[k] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (size_t k = 0; k < n; ++k) out[k] *= inv;
}

}  // namespace bslrec::vec
