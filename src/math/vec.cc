#include "math/vec.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace bslrec::vec {

float Dot(const float* a, const float* b, size_t n) {
  // Accumulate in double to keep reductions stable for long rows.
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) acc += static_cast<double>(a[k]) * b[k];
  return static_cast<float>(acc);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t k = 0; k < n; ++k) y[k] += alpha * x[k];
}

void Scale(float* x, size_t n, float alpha) {
  for (size_t k = 0; k < n; ++k) x[k] *= alpha;
}

float Norm(const float* x, size_t n) {
  return std::sqrt(std::max(0.0f, Dot(x, x, n)));
}

float Normalize(const float* x, float* out, size_t n, float eps) {
  const float norm = Norm(x, n);
  const float inv = 1.0f / std::max(norm, eps);
  for (size_t k = 0; k < n; ++k) out[k] = x[k] * inv;
  return norm;
}

float Cosine(const float* a, const float* b, size_t n) {
  const float na = Norm(a, n);
  const float nb = Norm(b, n);
  if (na <= 0.0f || nb <= 0.0f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void Sub(const float* a, const float* b, float* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = a[k] - b[k];
}

void Add(const float* a, const float* b, float* out, size_t n) {
  for (size_t k = 0; k < n; ++k) out[k] = a[k] + b[k];
}

void Fill(float* x, size_t n, float v) {
  std::fill(x, x + n, v);
}

float SquaredDistance(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double d = static_cast<double>(a[k]) - b[k];
    acc += d * d;
  }
  return static_cast<float>(acc);
}

void AccumulateCosineGrad(const float* u_hat, const float* i_hat, float score,
                          float u_norm, float coeff, float* grad_u, size_t n) {
  // d cos / d u = (i_hat - score * u_hat) / ||u||.
  const float inv = coeff / std::max(u_norm, 1e-12f);
  for (size_t k = 0; k < n; ++k) {
    grad_u[k] += inv * (i_hat[k] - score * u_hat[k]);
  }
}

double LogSumExp(const float* x, size_t n) {
  if (n == 0) return -std::numeric_limits<double>::infinity();
  float max_x = x[0];
  for (size_t k = 1; k < n; ++k) max_x = std::max(max_x, x[k]);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += std::exp(static_cast<double>(x[k]) - max_x);
  }
  return static_cast<double>(max_x) + std::log(acc);
}

void Softmax(const float* x, float* out, size_t n) {
  if (n == 0) return;
  float max_x = x[0];
  for (size_t k = 1; k < n; ++k) max_x = std::max(max_x, x[k]);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    const double e = std::exp(static_cast<double>(x[k]) - max_x);
    out[k] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (size_t k = 0; k < n; ++k) out[k] *= inv;
}

}  // namespace bslrec::vec
