// Lightweight precondition / invariant checking.
//
// The library follows the Google C++ style: no exceptions cross the public
// API. Programmer errors (violated preconditions, broken invariants) abort
// with a diagnostic; recoverable conditions (I/O, parsing) are reported via
// return values instead.
#ifndef BSLREC_MATH_CHECK_H_
#define BSLREC_MATH_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a file:line diagnostic when `condition` is false.
// Always enabled (also in release builds): every call site guards a
// programmer-error precondition, never a hot inner loop.
#define BSLREC_CHECK(condition)                                          \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "BSLREC_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, #condition);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

// Like BSLREC_CHECK but with a printf-style message appended.
#define BSLREC_CHECK_MSG(condition, ...)                                 \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "BSLREC_CHECK failed at %s:%d: %s: ",         \
                   __FILE__, __LINE__, #condition);                      \
      std::fprintf(stderr, __VA_ARGS__);                                 \
      std::fprintf(stderr, "\n");                                        \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#endif  // BSLREC_MATH_CHECK_H_
