// Deterministic pseudo-random number generation.
//
// The library has two generator families with different determinism
// disciplines:
//
//  * `Rng` — a sequential stream (xoshiro256**, seeded through SplitMix64
//    as recommended by its authors). Draw order matters: two consumers
//    sharing an `Rng` must interleave their draws identically for a run
//    to reproduce. Used where a single logical thread owns the stream
//    (dataset synthesis, initialization, epoch shuffling, noise
//    injection, model augmentations).
//
//  * `StreamRng` — a *counter-based* stream for parallel consumers.
//    Every stream is keyed by (seed, epoch, sample_index) and draw t is
//    a pure hash of (key, t): there is no shared mutable state, so any
//    worker can draw from any sample's stream in any order — or
//    re-derive an individual draw — and always observe the same values.
//    This is what lets negative sampling run *inside* the trainer's
//    parallel shards while staying bit-identical for every worker count
//    (see train/trainer.h): the drawn items are a function of the sample
//    index, never of which thread processed it or when.
//
// Bounded sampling (`NextIndex`) uses Lemire's multiply-shift reduction
// (Lemire 2019, "Fast Random Integer Generation in an Interval") with
// the exact rejection threshold, so draws stay unbiased for every bound
// while doing one 128-bit multiply instead of a divide per accepted
// draw.
//
// Both families are bit-reproducible across platforms and build modes;
// experiments seed them explicitly.
#ifndef BSLREC_MATH_RNG_H_
#define BSLREC_MATH_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bslrec {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Also usable standalone as a tiny stateless hash/stream generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  // Returns the next 64-bit value in the stream.
  uint64_t Next();

  // The stateless finalizer at the heart of the stream: a bijective
  // avalanche mix of a single 64-bit word. `Next()` is
  // `Mix(state += golden)`; `StreamRng` uses it to hash (key, counter)
  // pairs.
  static uint64_t Mix(uint64_t z);

 private:
  uint64_t state_;
};

namespace rng_internal {

// Lemire multiply-shift bounded reduction shared by Rng and StreamRng:
// maps 64-bit draws from `g` to a uniform integer in [0, n) without
// modulo bias. Rejects only draws whose 128-bit product lands in the
// short fractional window (probability < n / 2^64), and needs a divide
// only on the first rejection.
template <typename G>
inline uint64_t LemireIndex(G& g, uint64_t n) {
  using U128 = unsigned __int128;
  uint64_t x = g.NextU64();
  U128 m = static_cast<U128>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    const uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    while (low < threshold) {
      x = g.NextU64();
      m = static_cast<U128>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

}  // namespace rng_internal

// xoshiro256** generator with convenience sampling helpers.
//
// Copyable: copying an Rng forks the stream (both copies produce the same
// subsequent values), which tests use to replay a sampling decision.
class Rng {
 public:
  // Seeds the generator; two Rng instances with equal seeds produce equal
  // streams. Seed 0 is valid (state is expanded via SplitMix64).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Core stream: uniformly distributed 64-bit values.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n). Requires n > 0. Lemire multiply-shift
  // reduction; unbiased for every n.
  uint64_t NextIndex(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Standard normal via Marsaglia polar method (cached spare value).
  double NextGaussian();

  // Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextIndex(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) without replacement
  // (Floyd's algorithm; requires k <= n).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

// Counter-based per-sample random stream (stateless under the hood).
//
// A StreamRng is an index-addressable stream: the (seed, epoch,
// sample_index) triple is absorbed into a 64-bit key at construction and
// draw t is `SplitMix64::Mix(key + (t+1) * golden)` — i.e. the SplitMix64
// sequence seeded at the key (draw t maintained as a running counter, so
// a draw costs one add + one Mix). Consequences:
//
//  * Construction is two Mix calls; no warm-up, no stored tables.
//  * Streams for different sample indices (or epochs, or seeds) are
//    statistically independent — SplitMix64's avalanche decorrelates
//    adjacent keys.
//  * The stream consumed for one sample is a pure function of the triple,
//    so parallel shards drawing "their" samples' negatives reproduce the
//    serial draw sequence exactly, for any worker count and any
//    scheduling. No cross-thread RNG handoff exists to get wrong.
//
// The helper set mirrors what the negative samplers need (NextIndex /
// NextDouble / NextBernoulli); use `Rng` when you want a long-lived
// general-purpose stream.
class StreamRng {
 public:
  StreamRng(uint64_t seed, uint64_t epoch, uint64_t sample_index);

  // Next value of this stream: Mix(key + (draw index) * golden).
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n). Requires n > 0. Lemire multiply-shift
  // reduction; unbiased for every n.
  uint64_t NextIndex(uint64_t n);

  // Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

 private:
  uint64_t ctr_;  // key + draw_index * golden, advanced per draw
};

}  // namespace bslrec

#endif  // BSLREC_MATH_RNG_H_
