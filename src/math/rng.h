// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (dataset synthesis, negative
// sampling, initialization, noise injection, SGD shuffling) draws from an
// explicitly seeded `Rng` so that experiments are bit-reproducible on a
// single thread. The core generator is xoshiro256**, seeded through
// SplitMix64 as recommended by its authors; it is much faster than
// std::mt19937_64 and has no observable bias for our use cases.
#ifndef BSLREC_MATH_RNG_H_
#define BSLREC_MATH_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bslrec {

// SplitMix64: used to expand a single 64-bit seed into generator state.
// Also usable standalone as a tiny stateless hash/stream generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  // Returns the next 64-bit value in the stream.
  uint64_t Next();

 private:
  uint64_t state_;
};

// xoshiro256** generator with convenience sampling helpers.
//
// Copyable: copying an Rng forks the stream (both copies produce the same
// subsequent values), which tests use to replay a sampling decision.
class Rng {
 public:
  // Seeds the generator; two Rng instances with equal seeds produce equal
  // streams. Seed 0 is valid (state is expanded via SplitMix64).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Core stream: uniformly distributed 64-bit values.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextIndex(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Standard normal via Marsaglia polar method (cached spare value).
  double NextGaussian();

  // Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextIndex(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) without replacement
  // (Floyd's algorithm; requires k <= n).
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace bslrec

#endif  // BSLREC_MATH_RNG_H_
