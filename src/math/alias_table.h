// Walker alias method for O(1) sampling from a discrete distribution.
//
// Used by the popularity-based negative sampler and by the synthetic data
// generator (Zipf item popularity). Construction is O(n); each draw costs
// one uniform index + one Bernoulli.
#ifndef BSLREC_MATH_ALIAS_TABLE_H_
#define BSLREC_MATH_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "math/check.h"
#include "math/rng.h"

namespace bslrec {

class AliasTable {
 public:
  AliasTable() = default;

  // Builds the table from non-negative weights (need not be normalized).
  // Requires at least one strictly positive weight.
  explicit AliasTable(const std::vector<double>& weights);

  // Draws an index in [0, size()) with probability proportional to its
  // weight. Works with any generator exposing NextIndex/NextDouble
  // (`Rng` for sequential streams, `StreamRng` for counter-based
  // per-sample streams); monomorphized per generator, no dispatch cost.
  template <typename G>
  uint32_t Sample(G& rng) const {
    BSLREC_CHECK(!prob_.empty());
    const uint32_t i = static_cast<uint32_t>(rng.NextIndex(prob_.size()));
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

  size_t size() const { return prob_.size(); }

  // Probability of index i under the normalized distribution.
  double Probability(uint32_t i) const;

 private:
  std::vector<double> prob_;      // acceptance probability per bucket
  std::vector<uint32_t> alias_;   // fallback index per bucket
  std::vector<double> normalized_;  // normalized weights (for Probability())
};

// Convenience: weights[i] = 1 / (i+1)^alpha, the Zipf popularity profile
// used by the synthetic dataset generator.
std::vector<double> ZipfWeights(size_t n, double alpha);

}  // namespace bslrec

#endif  // BSLREC_MATH_ALIAS_TABLE_H_
