#include "math/rng.h"

#include <cmath>

#include "math/check.h"

namespace bslrec {

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

uint64_t SplitMix64::Next() { return Mix(state_ += 0x9e3779b97f4a7c15ULL); }

uint64_t SplitMix64::Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextIndex(uint64_t n) {
  BSLREC_CHECK(n > 0);
  return rng_internal::LemireIndex(*this, n);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  BSLREC_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextIndex(span));
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

namespace {

// Absorbs one word into a running key, SplitMix64-style: offset by the
// golden gamma so absorbing zeros still moves the key, then avalanche.
inline uint64_t AbsorbWord(uint64_t key, uint64_t word) {
  return SplitMix64::Mix((key + 0x9e3779b97f4a7c15ULL) ^ word);
}

}  // namespace

StreamRng::StreamRng(uint64_t seed, uint64_t epoch, uint64_t sample_index)
    : ctr_(AbsorbWord(AbsorbWord(seed, epoch), sample_index)) {}

uint64_t StreamRng::NextU64() {
  // SplitMix64 sequence seeded at the key: draw t is a pure function of
  // (key, t), so any draw can be re-derived from the triple + counter.
  return SplitMix64::Mix(ctr_ += 0x9e3779b97f4a7c15ULL);
}

double StreamRng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t StreamRng::NextIndex(uint64_t n) {
  BSLREC_CHECK(n > 0);
  return rng_internal::LemireIndex(*this, n);
}

bool StreamRng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  BSLREC_CHECK(k <= n);
  // Floyd's algorithm: O(k) expected, exact uniform without-replacement.
  std::vector<uint32_t> result;
  result.reserve(k);
  for (uint32_t j = n - k; j < n; ++j) {
    const uint32_t t = static_cast<uint32_t>(NextIndex(j + 1));
    bool seen = false;
    for (uint32_t x : result) {
      if (x == t) {
        seen = true;
        break;
      }
    }
    result.push_back(seen ? j : t);
  }
  return result;
}

}  // namespace bslrec
