// Row-major dense float matrix.
//
// `Matrix` is the storage type for embedding tables, layer weights and
// their gradients. It is deliberately minimal: contiguous row-major
// storage, row views, and the few whole-matrix operations the training
// engine needs (zeroing, scaled accumulation, Xavier/Gaussian init).
#ifndef BSLREC_MATH_MATRIX_H_
#define BSLREC_MATH_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/check.h"
#include "math/rng.h"

namespace bslrec {

class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
    data_.assign(rows * cols, 0.0f);
  }

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) = default;
  Matrix& operator=(Matrix&&) = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* Row(size_t r) {
    BSLREC_CHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    BSLREC_CHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  float& At(size_t r, size_t c) {
    BSLREC_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float At(size_t r, size_t c) const {
    BSLREC_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Resets every entry to zero, keeping the shape.
  void SetZero();

  // this += alpha * other. Shapes must match.
  void AddScaled(const Matrix& other, float alpha);

  // Xavier/Glorot uniform init: U(-a, a), a = sqrt(6/(fan_in+fan_out)).
  // Matches the initializer the paper uses for all models.
  void InitXavierUniform(Rng& rng);

  // Gaussian initialization N(0, stddev^2).
  void InitGaussian(Rng& rng, float stddev);

  // Frobenius norm of the matrix.
  float FrobeniusNorm() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

// Dense products used by the NGCF backward pass. Shapes are checked.
// out = a * b            (a: m x k, b: k x n, out: m x n)
void MatMul(const Matrix& a, const Matrix& b, Matrix& out);
// out += a * b
void MatMulAccum(const Matrix& a, const Matrix& b, Matrix& out);
// out = a^T * b          (a: k x m, b: k x n, out: m x n)
void MatTMul(const Matrix& a, const Matrix& b, Matrix& out);
// out += a * b^T         (a: m x k, b: n x k, out: m x n)
void MatMulTAccum(const Matrix& a, const Matrix& b, Matrix& out);

// Row-range variants computing only output rows [row_begin, row_end).
// Output rows are independent in both products, so sharding the range
// across threads is bit-identical to the full serial product — these are
// the kernels graph::PropagationEngine fans across its pool. The
// full-matrix versions above delegate to them over [0, rows).
void MatMulAccumRowRange(const Matrix& a, const Matrix& b, Matrix& out,
                         size_t row_begin, size_t row_end);
void MatMulTAccumRowRange(const Matrix& a, const Matrix& b, Matrix& out,
                          size_t row_begin, size_t row_end);

}  // namespace bslrec

#endif  // BSLREC_MATH_MATRIX_H_
