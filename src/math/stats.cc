#include "math/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/check.h"

namespace bslrec {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  RunningStats s;
  for (double x : v) s.Add(x);
  return s.variance();
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  BSLREC_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Average ranks (1-based), ties get the mean of their rank range.
std::vector<double> AverageRanks(const std::vector<double>& v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) +
                                   static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  BSLREC_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  return PearsonCorrelation(AverageRanks(x), AverageRanks(y));
}

std::vector<size_t> Histogram(const std::vector<double>& v, double lo,
                              double hi, size_t bins) {
  BSLREC_CHECK(bins > 0 && hi > lo);
  std::vector<size_t> h(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : v) {
    double b = (x - lo) / width;
    long idx = static_cast<long>(std::floor(b));
    idx = std::clamp(idx, 0L, static_cast<long>(bins) - 1);
    ++h[static_cast<size_t>(idx)];
  }
  return h;
}

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  BSLREC_CHECK(p.size() == q.size());
  BSLREC_CHECK(!p.empty());
  const double sp = std::accumulate(p.begin(), p.end(), 0.0);
  const double sq = std::accumulate(q.begin(), q.end(), 0.0);
  BSLREC_CHECK(sp > 0.0 && sq > 0.0);
  constexpr double kEps = 1e-300;
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / sp;
    if (pi <= 0.0) continue;
    const double qi = std::max(q[i] / sq, kEps);
    kl += pi * std::log(pi / qi);
  }
  return kl;
}

}  // namespace bslrec
