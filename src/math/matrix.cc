#include "math/matrix.h"

#include <algorithm>
#include <cmath>

#include "math/vec.h"

namespace bslrec {

void Matrix::SetZero() {
  std::fill(data_.begin(), data_.end(), 0.0f);
}

void Matrix::AddScaled(const Matrix& other, float alpha) {
  BSLREC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t k = 0; k < data_.size(); ++k) data_[k] += alpha * other.data_[k];
}

void Matrix::InitXavierUniform(Rng& rng) {
  const double a = std::sqrt(6.0 / static_cast<double>(rows_ + cols_));
  for (auto& v : data_) {
    v = static_cast<float>((2.0 * rng.NextDouble() - 1.0) * a);
  }
}

void Matrix::InitGaussian(Rng& rng, float stddev) {
  for (auto& v : data_) {
    v = static_cast<float>(rng.NextGaussian() * stddev);
  }
}

float Matrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

void MatMul(const Matrix& a, const Matrix& b, Matrix& out) {
  out.SetZero();
  MatMulAccum(a, b, out);
}

void MatMulAccum(const Matrix& a, const Matrix& b, Matrix& out) {
  BSLREC_CHECK(a.cols() == b.rows() && out.rows() == a.rows() &&
               out.cols() == b.cols());
  MatMulAccumRowRange(a, b, out, 0, a.rows());
}

void MatMulAccumRowRange(const Matrix& a, const Matrix& b, Matrix& out,
                         size_t row_begin, size_t row_end) {
  const size_t k = a.cols(), n = b.cols();
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* ar = a.Row(i);
    float* or_ = out.Row(i);
    for (size_t p = 0; p < k; ++p) {
      const float av = ar[p];
      if (av == 0.0f) continue;
      vec::Axpy(av, b.Row(p), or_, n);
    }
  }
}

void MatTMul(const Matrix& a, const Matrix& b, Matrix& out) {
  BSLREC_CHECK(a.rows() == b.rows() && out.rows() == a.cols() &&
               out.cols() == b.cols());
  out.SetZero();
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  for (size_t p = 0; p < k; ++p) {
    const float* ar = a.Row(p);
    const float* br = b.Row(p);
    for (size_t i = 0; i < m; ++i) {
      const float av = ar[i];
      if (av == 0.0f) continue;
      float* or_ = out.Row(i);
      for (size_t j = 0; j < n; ++j) or_[j] += av * br[j];
    }
  }
}

void MatMulTAccum(const Matrix& a, const Matrix& b, Matrix& out) {
  BSLREC_CHECK(a.cols() == b.cols() && out.rows() == a.rows() &&
               out.cols() == b.rows());
  MatMulTAccumRowRange(a, b, out, 0, a.rows());
}

void MatMulTAccumRowRange(const Matrix& a, const Matrix& b, Matrix& out,
                          size_t row_begin, size_t row_end) {
  const size_t k = a.cols(), n = b.rows();
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* ar = a.Row(i);
    float* or_ = out.Row(i);
    for (size_t j = 0; j < n; ++j) {
      const float* br = b.Row(j);
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += static_cast<double>(ar[p]) * br[p];
      or_[j] += static_cast<float>(acc);
    }
  }
}

}  // namespace bslrec
