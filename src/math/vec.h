// Dense vector kernels used throughout the library.
//
// Embeddings are stored as contiguous rows of float; all heavy inner loops
// (dot products, AXPY updates, normalization) funnel through these free
// functions so they can be audited and benchmarked in one place. The span
// arguments are raw pointers + length to keep call sites allocation-free.
//
// ---- SIMD dispatch contract ----
//
// The hot kernels (`Dot`, `DotI8`, `DotBatchI8`, `QuantizeRow`) have
// explicitly vectorized implementations selected at compile time (AVX2
// when the build enables it — see the BSLREC_NATIVE CMake option — and
// SSE2 on any x86-64 build). The scalar forms are always compiled and
// exposed under `vec::ref`; every SIMD kernel is contractually
// *bit-identical* to its reference:
//
//   * integer kernels (`DotI8`, `DotBatchI8`) exactly — int32 arithmetic
//     is associative, so lane layout cannot change the result;
//   * `QuantizeRow` exactly — the max-abs reduction is order-invariant,
//     each code is a float multiply (identical IEEE rounding in scalar
//     and packed form) followed by round-to-nearest-even (the default
//     rounding mode of both std::nearbyintf and CVTPS2DQ);
//   * fp32 `Dot` via an *identical summation tree*: the SIMD form keeps
//     the reference's four double-precision accumulator lanes (lane j
//     sums elements k+j), combined in the same fixed ((0+1)+(2+3))
//     order. float*float products are exact in double (24+24 < 53
//     mantissa bits), so mul+add and fma agree bitwise, too.
//   * the fp16 kernels (`EncodeF16`, `GatherF16`, `DotF16`,
//     `DotBatchF16`) exactly — `F32ToF16` is IEEE round-to-nearest-even
//     (the rounding VCVTPS2PH performs with _MM_FROUND_TO_NEAREST_INT),
//     `F16ToF32` is exact (every binary16 value is a binary32 value),
//     and `DotF16` decodes then reuses Dot's four-double-lane summation
//     tree, so the F16C hardware forms agree with the scalar bit
//     twiddling bit-for-bit.
//
// tests/test_vec.cc enforces all of these contracts; SimdTier() reports
// which tier a binary was compiled with.
#ifndef BSLREC_MATH_VEC_H_
#define BSLREC_MATH_VEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bslrec::vec {

// Compile-time selected SIMD tier of the hot kernels: "avx2", "sse2" or
// "scalar". Diagnostic only (recorded into BENCH_*.json machine info).
const char* SimdTier();

// Always-compiled scalar reference forms of the SIMD-dispatched kernels.
// The public kernels below must match these bit-for-bit (see the header
// note); benches compare against them to quantify the SIMD win.
namespace ref {
float Dot(const float* a, const float* b, size_t n);
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);
void DotBatchI8(const int8_t* q, const int8_t* rows, size_t m, size_t d,
                int32_t* out);
float QuantizeRow(const float* x, size_t n, int8_t* out);
void EncodeF16(const float* x, size_t n, uint16_t* out);
void GatherF16(const uint16_t* in, size_t n, float* out);
float DotF16(const float* q, const uint16_t* row, size_t n);
void DotBatchF16(const float* q, const uint16_t* rows, size_t m, size_t d,
                 float* out);
}  // namespace ref

// Returns sum_i a[i] * b[i].
float Dot(const float* a, const float* b, size_t n);

// Integer dot product over int8 codes, accumulated in int32 (exact — no
// rounding anywhere, so SIMD and scalar agree trivially). Safe from
// overflow for n < 2^17: each product is at most 127*127 < 2^14, so the
// int32 accumulator holds at least 2^31 / 2^14 = 2^17 terms.
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);

// Batch form: out[r] = DotI8(q, rows + r*d, d) for r in [0, m). `rows`
// is a contiguous m x d int8 block (a quantized item shard). This is
// the phase-1 scan kernel of the quantized catalog scorer.
void DotBatchI8(const int8_t* q, const int8_t* rows, size_t m, size_t d,
                int32_t* out);

// Symmetric int8 quantization of one row: scale = max_i |x[i]| / 127,
// out[i] = round-to-nearest-even(x[i] / scale). Returns the scale (the
// dequantization multiplier: x[i] ≈ out[i] * scale, with per-element
// error |x[i] - out[i]*scale| <= scale * (0.5 + eps)). An all-zero row
// gets scale 0 and all-zero codes.
float QuantizeRow(const float* x, size_t n, int8_t* out);

// ---- fp16 (IEEE binary16) item-table kernels ----
//
// Half-precision values travel as raw uint16_t bit patterns; the
// scalar conversions below are bit-identical to the F16C hardware
// instructions (VCVTPS2PH with round-to-nearest-even / VCVTPH2PS), so
// fp16 tables encode and score identically on every SIMD tier.

// binary32 -> binary16, round-to-nearest-even (overflow to +-inf,
// subnormals handled exactly, NaN quieted with payload preserved).
uint16_t F32ToF16(float f);

// binary16 -> binary32, exact (signaling NaNs are quieted, matching
// VCVTPH2PS).
float F16ToF32(uint16_t h);

// Encodes n floats into fp16 codes: out[i] = F32ToF16(x[i]).
void EncodeF16(const float* x, size_t n, uint16_t* out);

// Decodes n fp16 codes into floats: out[i] = F16ToF32(in[i]).
void GatherF16(const uint16_t* in, size_t n, float* out);

// Mixed-precision dot: sum_i q[i] * F16ToF32(row[i]), accumulated with
// Dot's four-double-lane fixed summation tree — deterministic and
// bit-identical across SIMD tiers, but NOT equal to Dot over the fp32
// row (the fp16 encode rounds each element; relative error <= 2^-11
// per element for normal-range values).
float DotF16(const float* q, const uint16_t* row, size_t n);

// Batch form over a contiguous m x d fp16 block: out[r] == DotF16(q,
// row r, d) bitwise (the phase-1 kernel of the fp16 catalog scan).
void DotBatchF16(const float* q, const uint16_t* rows, size_t m, size_t d,
                 float* out);

// Returns sum_i |x[i]|, accumulated in double with the same four-lane
// fixed summation tree as Dot (deterministic, context-independent).
double L1Norm(const float* x, size_t n);

// y += alpha * x  (the classic AXPY update).
void Axpy(float alpha, const float* x, float* y, size_t n);

// x *= alpha.
void Scale(float* x, size_t n, float alpha);

// Returns the Euclidean norm ||x||_2.
float Norm(const float* x, size_t n);

// Writes x / max(||x||, eps) into `out` (out may alias x). Returns the
// original norm. `eps` guards against division by zero for all-zero rows.
float Normalize(const float* x, float* out, size_t n, float eps = 1e-12f);

// Returns the cosine similarity a·b / (||a||·||b||), with zero-norm guard.
float Cosine(const float* a, const float* b, size_t n);

// out = a - b.
void Sub(const float* a, const float* b, float* out, size_t n);

// out = a + b.
void Add(const float* a, const float* b, float* out, size_t n);

// Sets all n entries to v.
void Fill(float* x, size_t n, float v);

// Returns squared Euclidean distance ||a - b||^2.
float SquaredDistance(const float* a, const float* b, size_t n);

// Batch scoring: out[r] = Dot(q, rows + r*d) for r in [0, m). `rows` is a
// contiguous m x d block (gathered negatives). Short rows are register-
// blocked in pairs (query loads amortized across the pair); long rows
// take the autovectorizer-friendly per-row form. Each row's summation
// tree is identical to Dot's (four double lanes combined in fixed
// order), so out[r] == Dot(q, row r, d) bitwise — batch scoring never
// changes results, only speed.
void DotBatch(const float* q, const float* rows, size_t m, size_t d,
              float* out);

// Gathers rows ids[0..m) from `table` (row stride `stride` floats) into
// the contiguous m x d block `out_rows`, L2-normalizing each row;
// out_norms[r] receives the original norm. Per row this is exactly
// Normalize(table + ids[r]*stride, out_rows + r*d, d) — one call replaces
// the per-draw gather/normalize loop in training hot paths.
void GatherNormalize(const float* table, size_t stride, const uint32_t* ids,
                     size_t m, size_t d, float* out_rows, float* out_norms);

// Gradient of the cosine score f = cos(u, i) with respect to u:
//   d f / d u = (i_hat - f * u_hat) / ||u||
// where u_hat, i_hat are the normalized vectors. The caller passes the
// *normalized* vectors plus the original norm of u; the result is
// accumulated into `grad_u` scaled by `coeff` (the upstream gradient).
void AccumulateCosineGrad(const float* u_hat, const float* i_hat, float score,
                          float u_norm, float coeff, float* grad_u, size_t n);

// Numerically stable log(sum_j exp(x[j])) over n values.
double LogSumExp(const float* x, size_t n);

// Writes softmax(x) into out (out may alias x). Numerically stable.
void Softmax(const float* x, float* out, size_t n);

}  // namespace bslrec::vec

#endif  // BSLREC_MATH_VEC_H_
