// Dense vector kernels used throughout the library.
//
// Embeddings are stored as contiguous rows of float; all heavy inner loops
// (dot products, AXPY updates, normalization) funnel through these free
// functions so they can be audited and benchmarked in one place. The span
// arguments are raw pointers + length to keep call sites allocation-free.
#ifndef BSLREC_MATH_VEC_H_
#define BSLREC_MATH_VEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bslrec::vec {

// Returns sum_i a[i] * b[i].
float Dot(const float* a, const float* b, size_t n);

// y += alpha * x  (the classic AXPY update).
void Axpy(float alpha, const float* x, float* y, size_t n);

// x *= alpha.
void Scale(float* x, size_t n, float alpha);

// Returns the Euclidean norm ||x||_2.
float Norm(const float* x, size_t n);

// Writes x / max(||x||, eps) into `out` (out may alias x). Returns the
// original norm. `eps` guards against division by zero for all-zero rows.
float Normalize(const float* x, float* out, size_t n, float eps = 1e-12f);

// Returns the cosine similarity a·b / (||a||·||b||), with zero-norm guard.
float Cosine(const float* a, const float* b, size_t n);

// out = a - b.
void Sub(const float* a, const float* b, float* out, size_t n);

// out = a + b.
void Add(const float* a, const float* b, float* out, size_t n);

// Sets all n entries to v.
void Fill(float* x, size_t n, float v);

// Returns squared Euclidean distance ||a - b||^2.
float SquaredDistance(const float* a, const float* b, size_t n);

// Batch scoring: out[r] = Dot(q, rows + r*d) for r in [0, m). `rows` is a
// contiguous m x d block (gathered negatives). Short rows are register-
// blocked in pairs (query loads amortized across the pair); long rows
// take the autovectorizer-friendly per-row form. Each row's summation
// tree is identical to Dot's (four double lanes combined in fixed
// order), so out[r] == Dot(q, row r, d) bitwise — batch scoring never
// changes results, only speed.
void DotBatch(const float* q, const float* rows, size_t m, size_t d,
              float* out);

// Gathers rows ids[0..m) from `table` (row stride `stride` floats) into
// the contiguous m x d block `out_rows`, L2-normalizing each row;
// out_norms[r] receives the original norm. Per row this is exactly
// Normalize(table + ids[r]*stride, out_rows + r*d, d) — one call replaces
// the per-draw gather/normalize loop in training hot paths.
void GatherNormalize(const float* table, size_t stride, const uint32_t* ids,
                     size_t m, size_t d, float* out_rows, float* out_norms);

// Gradient of the cosine score f = cos(u, i) with respect to u:
//   d f / d u = (i_hat - f * u_hat) / ||u||
// where u_hat, i_hat are the normalized vectors. The caller passes the
// *normalized* vectors plus the original norm of u; the result is
// accumulated into `grad_u` scaled by `coeff` (the upstream gradient).
void AccumulateCosineGrad(const float* u_hat, const float* i_hat, float score,
                          float u_norm, float coeff, float* grad_u, size_t n);

// Numerically stable log(sum_j exp(x[j])) over n values.
double LogSumExp(const float* x, size_t n);

// Writes softmax(x) into out (out may alias x). Numerically stable.
void Softmax(const float* x, float* out, size_t n);

}  // namespace bslrec::vec

#endif  // BSLREC_MATH_VEC_H_
