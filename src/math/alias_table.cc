#include "math/alias_table.h"

#include <cmath>

#include "math/check.h"

namespace bslrec {

AliasTable::AliasTable(const std::vector<double>& weights) {
  const size_t n = weights.size();
  BSLREC_CHECK(n > 0);
  double total = 0.0;
  for (double w : weights) {
    BSLREC_CHECK_MSG(w >= 0.0, "negative weight");
    total += w;
  }
  BSLREC_CHECK_MSG(total > 0.0, "all weights are zero");

  normalized_.resize(n);
  for (size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; split into under- and over-full buckets.
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    if (scaled[i] < 1.0) {
      small.push_back(static_cast<uint32_t>(i));
    } else {
      large.push_back(static_cast<uint32_t>(i));
    }
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      small.push_back(l);
    } else {
      large.push_back(l);
    }
  }
  // Remaining buckets are (numerically) exactly full.
  for (uint32_t s : small) prob_[s] = 1.0;
  for (uint32_t l : large) prob_[l] = 1.0;
}

double AliasTable::Probability(uint32_t i) const {
  BSLREC_CHECK(i < normalized_.size());
  return normalized_[i];
}

std::vector<double> ZipfWeights(size_t n, double alpha) {
  BSLREC_CHECK(n > 0);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  }
  return w;
}

}  // namespace bslrec
