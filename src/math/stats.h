// Streaming and batch statistics helpers.
//
// Welford accumulation gives numerically robust mean/variance for the
// DRO diagnostics (Lemma 2 needs V[f(u,j)]); the correlation helpers back
// the property tests (e.g. "optimal tau grows with score variance").
#ifndef BSLREC_MATH_STATS_H_
#define BSLREC_MATH_STATS_H_

#include <cstddef>
#include <vector>

namespace bslrec {

// Online mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance (divide by n). Returns 0 for n < 1.
  double variance() const;
  // Sample variance (divide by n-1). Returns 0 for n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Batch mean of v. Returns 0 for empty input.
double Mean(const std::vector<double>& v);

// Batch population variance of v. Returns 0 for empty input.
double Variance(const std::vector<double>& v);

// Pearson linear correlation in [-1, 1]; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y);

// Equal-width histogram of v over [lo, hi] with `bins` buckets; values
// outside the range are clamped into the boundary buckets.
std::vector<size_t> Histogram(const std::vector<double>& v, double lo,
                              double hi, size_t bins);

// KL divergence KL(p || q) for two discrete distributions given as
// (non-negative, same-length) weight vectors; each side is normalized
// internally. Terms with p_i == 0 contribute zero; q_i == 0 with p_i > 0
// is guarded with a small epsilon.
double KlDivergence(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace bslrec

#endif  // BSLREC_MATH_STATS_H_
