// NGCF backbone (Wang et al., SIGIR 2019).
//
// Message passing with per-layer transforms and the bi-interaction term:
//
//   E^{l+1} = LeakyReLU( (E^l + A_hat E^l) W1_l + (A_hat E^l ⊙ E^l) W2_l )
//
// where ⊙ is element-wise. (The neighbor sum of e_i ⊙ e_u factors into
// (A_hat E)_u ⊙ e_u, so the bi-interaction costs one propagation plus a
// Hadamard product.) The final representation is the mean over layers
// 0..L — the paper's concatenation is replaced by a mean so every
// backbone shares one embedding width; this is the LightGCN-style readout
// and does not change which loss wins (DESIGN.md, substitutions).
// Message dropout is omitted for determinism.
//
// Unlike LightGCN the propagation is nonlinear, so Backward runs a true
// reverse pass over cached layer activations. The per-layer propagation,
// dense transforms, and element-wise maps all run through a
// graph::PropagationEngine (row-sharded, bit-identical for any worker
// count); layer caches and reverse-pass buffers are preallocated in the
// constructor so steady-state passes do not allocate. The d x d weight
// gradients (MatTMul reductions) stay serial to keep their summation
// tree fixed.
#ifndef BSLREC_MODELS_NGCF_H_
#define BSLREC_MODELS_NGCF_H_

#include <vector>

#include "graph/bipartite_graph.h"
#include "models/model.h"

namespace bslrec {

class NgcfModel : public EmbeddingModel {
 public:
  // `graph` must outlive the model.
  NgcfModel(const BipartiteGraph& graph, size_t dim, int num_layers,
            Rng& rng);

  std::string_view name() const override { return "NGCF"; }
  void SetRuntime(runtime::ThreadPool* pool) override;
  void Forward(Rng& rng) override;
  void Backward() override;
  std::vector<ParamGrad> Params() override;

  static constexpr float kLeakySlope = 0.2f;

 private:
  // Sizes the reverse-pass buffers on the first Backward (no-op after);
  // forward-only models never allocate them.
  void EnsureBackwardBuffers();

  const BipartiteGraph& graph_;
  int num_layers_;
  graph::PropagationEngine engine_;  // pool attached via SetRuntime
  Matrix base_;
  Matrix base_grad_;
  std::vector<Matrix> w1_, w1_grad_;  // per-layer d x d transforms
  std::vector<Matrix> w2_, w2_grad_;
  // Forward caches (valid between Forward and Backward), preallocated
  // in the constructor.
  std::vector<Matrix> e_;  // E^0..E^L
  std::vector<Matrix> s_;  // A_hat E^l per layer
  std::vector<Matrix> h_;  // pre-activation per layer
  Matrix combined_, x1_, x2_;
  bool forward_ran_ = false;
  // Reverse-pass buffers, sized by EnsureBackwardBuffers.
  std::vector<Matrix> d_e_;  // accumulated gradient at E^l
  Matrix grad_readout_, dh_, dx_, ds_, prop_;
  Matrix tmp_w_;  // d x d weight-gradient staging
};

}  // namespace bslrec

#endif  // BSLREC_MODELS_NGCF_H_
