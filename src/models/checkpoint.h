// Model parameter checkpointing.
//
// Binary format (little-endian host order):
//   magic "BSLRECK1" | uint64 param_count |
//   per parameter: uint64 rows | uint64 cols | rows*cols float32
//
// Loading requires the model's parameter shapes to match the file
// exactly (same backbone configuration); mismatches are reported as a
// recoverable failure, never a crash.
#ifndef BSLREC_MODELS_CHECKPOINT_H_
#define BSLREC_MODELS_CHECKPOINT_H_

#include <string>

#include "models/model.h"

namespace bslrec {

// Writes all parameter tensors of `model` to `path`. Returns false on
// I/O failure (with a diagnostic on stderr).
bool SaveModelParams(EmbeddingModel& model, const std::string& path);

// Restores parameters saved by SaveModelParams. Returns false when the
// file is missing/corrupt or the shapes do not match the model.
// On success the caller should re-run model.Forward() before scoring.
bool LoadModelParams(EmbeddingModel& model, const std::string& path);

}  // namespace bslrec

#endif  // BSLREC_MODELS_CHECKPOINT_H_
