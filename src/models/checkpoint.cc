#include "models/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

namespace bslrec {

namespace {

constexpr char kMagic[8] = {'B', 'S', 'L', 'R', 'E', 'C', 'K', '1'};

}  // namespace

bool SaveModelParams(EmbeddingModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bslrec: cannot write checkpoint '%s'\n",
                 path.c_str());
    return false;
  }
  const std::vector<ParamGrad> params = model.Params();
  out.write(kMagic, sizeof(kMagic));
  const uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const ParamGrad& pg : params) {
    const uint64_t rows = pg.value->rows();
    const uint64_t cols = pg.value->cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(pg.value->data()),
              static_cast<std::streamsize>(rows * cols * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool LoadModelParams(EmbeddingModel& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bslrec: cannot open checkpoint '%s'\n",
                 path.c_str());
    return false;
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fprintf(stderr, "bslrec: '%s' is not a bslrec checkpoint\n",
                 path.c_str());
    return false;
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  const std::vector<ParamGrad> params = model.Params();
  if (!in || count != params.size()) {
    std::fprintf(stderr,
                 "bslrec: checkpoint has %llu tensors, model expects %zu\n",
                 static_cast<unsigned long long>(count), params.size());
    return false;
  }
  for (const ParamGrad& pg : params) {
    uint64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (!in || rows != pg.value->rows() || cols != pg.value->cols()) {
      std::fprintf(stderr, "bslrec: checkpoint tensor shape mismatch\n");
      return false;
    }
    in.read(reinterpret_cast<char*>(pg.value->data()),
            static_cast<std::streamsize>(rows * cols * sizeof(float)));
    if (!in) {
      std::fprintf(stderr, "bslrec: checkpoint truncated\n");
      return false;
    }
  }
  return true;
}

}  // namespace bslrec
