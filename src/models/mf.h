// Matrix Factorization backbone (Koren et al., 2009).
//
// The simplest embedding model: the final representations *are* the
// parameters. Used throughout the paper as the primary backbone for the
// loss-function study.
#ifndef BSLREC_MODELS_MF_H_
#define BSLREC_MODELS_MF_H_

#include "models/model.h"

namespace bslrec {

class MfModel : public EmbeddingModel {
 public:
  // Xavier-uniform initialization (the paper's unified initializer).
  MfModel(uint32_t num_users, uint32_t num_items, size_t dim, Rng& rng);

  std::string_view name() const override { return "MF"; }
  void Forward(Rng& rng) override;
  void Backward() override;
  std::vector<ParamGrad> Params() override;

 private:
  Matrix user_param_;
  Matrix item_param_;
  Matrix user_param_grad_;
  Matrix item_param_grad_;
};

}  // namespace bslrec

#endif  // BSLREC_MODELS_MF_H_
