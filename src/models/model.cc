#include "models/model.h"

namespace bslrec {

EmbeddingModel::EmbeddingModel(uint32_t num_users, uint32_t num_items,
                               size_t dim)
    : num_users_(num_users),
      num_items_(num_items),
      dim_(dim),
      final_user_(num_users, dim),
      final_item_(num_items, dim),
      grad_user_(num_users, dim),
      grad_item_(num_items, dim) {}

void EmbeddingModel::ZeroGrad() {
  grad_user_.SetZero();
  grad_item_.SetZero();
  for (ParamGrad pg : Params()) pg.grad->SetZero();
}

double EmbeddingModel::AuxLossAndGrad(std::span<const uint32_t>,
                                      std::span<const uint32_t>, Rng&) {
  return 0.0;
}

void EmbeddingModel::SetRuntime(runtime::ThreadPool*) {
  // Default: nothing to parallelize (MF's Forward is a table copy).
}

}  // namespace bslrec
