#include "models/mf.h"

namespace bslrec {

MfModel::MfModel(uint32_t num_users, uint32_t num_items, size_t dim, Rng& rng)
    : EmbeddingModel(num_users, num_items, dim),
      user_param_(num_users, dim),
      item_param_(num_items, dim),
      user_param_grad_(num_users, dim),
      item_param_grad_(num_items, dim) {
  user_param_.InitXavierUniform(rng);
  item_param_.InitXavierUniform(rng);
}

void MfModel::Forward(Rng&) {
  final_user_ = user_param_;
  final_item_ = item_param_;
}

void MfModel::Backward() {
  user_param_grad_.AddScaled(grad_user_, 1.0f);
  item_param_grad_.AddScaled(grad_item_, 1.0f);
}

std::vector<ParamGrad> MfModel::Params() {
  return {{&user_param_, &user_param_grad_},
          {&item_param_, &item_param_grad_}};
}

}  // namespace bslrec
