#include "models/lightgcn.h"

#include <cstring>

#include "math/check.h"

namespace bslrec {

LightGcnModel::LightGcnModel(const BipartiteGraph& graph, size_t dim,
                             int num_layers, Rng& rng)
    : EmbeddingModel(graph.num_users(), graph.num_items(), dim),
      graph_(graph),
      num_layers_(num_layers),
      base_(graph.num_nodes(), dim),
      base_grad_(graph.num_nodes(), dim),
      combined_(graph.num_nodes(), dim) {
  BSLREC_CHECK(num_layers >= 0);
  base_.InitXavierUniform(rng);
}

void LightGcnModel::SetRuntime(runtime::ThreadPool* pool) {
  engine_.SetPool(pool);
}

void LightGcnModel::SplitFinal(const Matrix& combined) {
  const size_t d = dim_;
  for (uint32_t u = 0; u < num_users_; ++u) {
    std::memcpy(final_user_.Row(u), combined.Row(u), d * sizeof(float));
  }
  for (uint32_t i = 0; i < num_items_; ++i) {
    std::memcpy(final_item_.Row(i), combined.Row(num_users_ + i),
                d * sizeof(float));
  }
}

void LightGcnModel::GatherFinalGrad(Matrix& combined) const {
  const size_t d = dim_;
  for (uint32_t u = 0; u < num_users_; ++u) {
    std::memcpy(combined.Row(u), grad_user_.Row(u), d * sizeof(float));
  }
  for (uint32_t i = 0; i < num_items_; ++i) {
    std::memcpy(combined.Row(num_users_ + i), grad_item_.Row(i),
                d * sizeof(float));
  }
}

void LightGcnModel::Forward(Rng&) {
  engine_.MeanPropagate(graph_.Adjacency(), base_, num_layers_, combined_);
  SplitFinal(combined_);
}

void LightGcnModel::Backward() {
  // The propagation operator P = 1/(L+1) sum A^k is symmetric, so
  // dL/dBase = P (dL/dFinal). Both temporaries live in the engine's
  // persistent workspace — no per-call allocation.
  Matrix& grad_combined =
      engine_.Workspace(kGradCombinedSlot, graph_.num_nodes(), dim_);
  GatherFinalGrad(grad_combined);
  engine_.MeanPropagateAccum(graph_.Adjacency(), grad_combined, num_layers_,
                             base_grad_);
}

std::vector<ParamGrad> LightGcnModel::Params() {
  return {{&base_, &base_grad_}};
}

}  // namespace bslrec
