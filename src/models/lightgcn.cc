#include "models/lightgcn.h"

#include <cstring>

#include "math/check.h"

namespace bslrec {

void LightGcnPropagate(const SparseMatrix& adjacency, const Matrix& base,
                       int num_layers, Matrix& out, Matrix& scratch) {
  BSLREC_CHECK(num_layers >= 0);
  BSLREC_CHECK(adjacency.rows() == base.rows() &&
               adjacency.cols() == base.rows());
  out = base;  // layer-0 term
  Matrix current = base;
  for (int layer = 1; layer <= num_layers; ++layer) {
    if (scratch.rows() != base.rows() || scratch.cols() != base.cols()) {
      scratch = Matrix(base.rows(), base.cols());
    }
    adjacency.Multiply(current, scratch);
    std::swap(current, scratch);
    out.AddScaled(current, 1.0f);
  }
  const float inv = 1.0f / static_cast<float>(num_layers + 1);
  for (size_t k = 0; k < out.size(); ++k) out.data()[k] *= inv;
}

LightGcnModel::LightGcnModel(const BipartiteGraph& graph, size_t dim,
                             int num_layers, Rng& rng)
    : EmbeddingModel(graph.num_users(), graph.num_items(), dim),
      graph_(graph),
      num_layers_(num_layers),
      base_(graph.num_nodes(), dim),
      base_grad_(graph.num_nodes(), dim),
      combined_(graph.num_nodes(), dim) {
  base_.InitXavierUniform(rng);
}

void LightGcnModel::SplitFinal(const Matrix& combined) {
  const size_t d = dim_;
  for (uint32_t u = 0; u < num_users_; ++u) {
    std::memcpy(final_user_.Row(u), combined.Row(u), d * sizeof(float));
  }
  for (uint32_t i = 0; i < num_items_; ++i) {
    std::memcpy(final_item_.Row(i), combined.Row(num_users_ + i),
                d * sizeof(float));
  }
}

void LightGcnModel::GatherFinalGrad(Matrix& combined) const {
  const size_t d = dim_;
  for (uint32_t u = 0; u < num_users_; ++u) {
    std::memcpy(combined.Row(u), grad_user_.Row(u), d * sizeof(float));
  }
  for (uint32_t i = 0; i < num_items_; ++i) {
    std::memcpy(combined.Row(num_users_ + i), grad_item_.Row(i),
                d * sizeof(float));
  }
}

void LightGcnModel::Forward(Rng&) {
  LightGcnPropagate(graph_.Adjacency(), base_, num_layers_, combined_,
                    scratch_a_);
  SplitFinal(combined_);
}

void LightGcnModel::Backward() {
  // The propagation operator P = 1/(L+1) sum A^k is symmetric, so
  // dL/dBase = P (dL/dFinal).
  Matrix grad_combined(graph_.num_nodes(), dim_);
  GatherFinalGrad(grad_combined);
  Matrix back(graph_.num_nodes(), dim_);
  LightGcnPropagate(graph_.Adjacency(), grad_combined, num_layers_, back,
                    scratch_b_);
  base_grad_.AddScaled(back, 1.0f);
}

std::vector<ParamGrad> LightGcnModel::Params() {
  return {{&base_, &base_grad_}};
}

}  // namespace bslrec
