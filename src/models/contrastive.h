// Contrastive GCN backbones: SGL, SimGCL, LightGCL (paper Table III).
//
// All three share a LightGCN trunk for the recommendation pathway and add
// a node-level InfoNCE regularizer between two augmented propagation
// views; they differ only in how the views are produced:
//
//   SGL      (Wu et al., SIGIR'21)  : two independent edge-dropped graphs.
//   SimGCL   (Yu et al., SIGIR'22)  : clean propagation + scaled random
//                                     embedding noise per view ("graph
//                                     augmentations are unnecessary").
//   LightGCL (Cai et al., ICLR'23)  : main view vs. a rank-q SVD
//                                     reconstruction of the adjacency.
//
// Every view here is a *linear* operator applied to the base embedding
// table (noise is additive and detached), so the aux backward pass is the
// view operator applied to the InfoNCE gradients — no activation caches
// needed. The InfoNCE is computed over the distinct users and distinct
// items of the current batch (in-batch negatives), the standard protocol.
//
// All view propagation — clean, edge-dropped, and SVD — runs through the
// trunk's graph::PropagationEngine, so the trainer's thread budget
// governs the aux pass too and the view buffers live in the engine's
// persistent workspace (no per-batch matrix allocation beyond the
// edge-dropped adjacency itself, which is a fresh random topology by
// construction). Augmentation randomness (edge draws, noise) stays on
// the calling thread in serial draw order, keeping results bit-identical
// for any worker count.
#ifndef BSLREC_MODELS_CONTRASTIVE_H_
#define BSLREC_MODELS_CONTRASTIVE_H_

#include <optional>

#include "graph/svd.h"
#include "models/lightgcn.h"

namespace bslrec {

enum class AugmentationKind {
  kEdgeDropout,     // SGL
  kEmbeddingNoise,  // SimGCL
  kSvdView,         // LightGCL
};

struct ContrastiveConfig {
  AugmentationKind kind = AugmentationKind::kEdgeDropout;
  int num_layers = 2;
  // Aux weight / temperature. The published models use lambda ~0.1 with
  // tau ~0.2 over hundreds of epochs; in this library's short training
  // regime that combination overwhelms the recommendation gradient, so
  // the defaults are re-calibrated (EXPERIMENTS.md, deviations).
  double lambda = 0.02;        // aux loss weight
  double tau_contrast = 0.5;   // InfoNCE temperature
  double edge_drop_rate = 0.2; // SGL: per-edge drop probability
  double noise_magnitude = 0.1;  // SimGCL: epsilon
  size_t svd_rank = 8;           // LightGCL: reconstruction rank
  size_t svd_power_iters = 3;
  // Upper bound on the nodes entering the per-batch InfoNCE (the O(B^2)
  // term); larger batches are subsampled. 0 = no cap.
  size_t max_aux_nodes = 256;
};

class ContrastiveModel : public LightGcnModel {
 public:
  ContrastiveModel(const BipartiteGraph& graph, size_t dim,
                   const ContrastiveConfig& config, Rng& rng);

  std::string_view name() const override;

  // InfoNCE over the batch's users and items; returns lambda * loss and
  // accumulates the (lambda-scaled) gradients into the parameter grads.
  double AuxLossAndGrad(std::span<const uint32_t> batch_users,
                        std::span<const uint32_t> batch_items,
                        Rng& rng) override;

  const ContrastiveConfig& config() const { return config_; }

 private:
  // Engine workspace slots for the aux pass (see engine_.Workspace).
  enum ContrastiveSlot : size_t {
    kView1Slot = kFirstFreeSlot,
    kView2Slot,
    kGrad1Slot,
    kGrad2Slot,
    kSvdCurSlot,
    kSvdNextSlot,
    kSvdProjSlot,
    kSvdPartialSlot,
    kViewBackSlot,
  };

  // Applies this model's view operator: out = ViewProp(in), plus additive
  // noise for SimGCL (returned separately so backward skips it).
  void BuildView(const Matrix& in, Matrix& out, Rng& rng,
                 std::optional<SparseMatrix>& dropped_graph);
  // Backward through the view operator: base_grad_ += ViewProp(grad).
  void BackwardView(const Matrix& grad,
                    const std::optional<SparseMatrix>& dropped_graph);
  // Rank-q symmetric low-rank propagation (LightGCL view). `out` must
  // not be one of the engine's SVD workspace slots.
  void SvdPropagate(const Matrix& in, Matrix& out);
  // proj = diag(S) * factor^T * current[row_offset .. row_offset+count):
  // a full-row reduction, computed as fixed-grain per-shard partials
  // reduced serially in shard order (bit-identical for any pool size).
  void ProjectFactor(const Matrix& factor, const Matrix& current,
                     size_t row_offset, size_t count, Matrix& proj);
  // next[row_offset .. row_offset+count) = factor * proj — the gather's
  // mirror image, sharded over the disjoint output rows.
  void BroadcastFactor(const Matrix& factor, const Matrix& proj,
                       size_t row_offset, size_t count, Matrix& next);

  ContrastiveConfig config_;
  std::optional<SvdResult> svd_;  // present iff kind == kSvdView
};

}  // namespace bslrec

#endif  // BSLREC_MODELS_CONTRASTIVE_H_
