#include "models/ngcf.h"

#include <cstring>

#include "math/check.h"

namespace bslrec {

namespace {

inline float LeakyRelu(float x) {
  return x > 0.0f ? x : NgcfModel::kLeakySlope * x;
}

inline float LeakyReluGrad(float pre_activation) {
  return pre_activation > 0.0f ? 1.0f : NgcfModel::kLeakySlope;
}

}  // namespace

NgcfModel::NgcfModel(const BipartiteGraph& graph, size_t dim, int num_layers,
                     Rng& rng)
    : EmbeddingModel(graph.num_users(), graph.num_items(), dim),
      graph_(graph),
      num_layers_(num_layers),
      base_(graph.num_nodes(), dim),
      base_grad_(graph.num_nodes(), dim) {
  BSLREC_CHECK(num_layers >= 1);
  base_.InitXavierUniform(rng);
  w1_.reserve(num_layers);
  w2_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    w1_.emplace_back(dim, dim);
    w2_.emplace_back(dim, dim);
    w1_.back().InitXavierUniform(rng);
    w2_.back().InitXavierUniform(rng);
    w1_grad_.emplace_back(dim, dim);
    w2_grad_.emplace_back(dim, dim);
  }
}

void NgcfModel::Forward(Rng&) {
  const size_t n = graph_.num_nodes();
  const size_t d = dim_;
  e_.assign(1, base_);
  s_.clear();
  h_.clear();
  Matrix x1(n, d), x2(n, d);
  for (int l = 0; l < num_layers_; ++l) {
    const Matrix& e = e_.back();
    Matrix s(n, d);
    graph_.Adjacency().Multiply(e, s);
    // x1 = e + s; x2 = s ⊙ e.
    for (size_t k = 0; k < e.size(); ++k) {
      x1.data()[k] = e.data()[k] + s.data()[k];
      x2.data()[k] = s.data()[k] * e.data()[k];
    }
    Matrix h(n, d);
    MatMul(x1, w1_[l], h);
    MatMulAccum(x2, w2_[l], h);
    Matrix next(n, d);
    for (size_t k = 0; k < h.size(); ++k) {
      next.data()[k] = LeakyRelu(h.data()[k]);
    }
    s_.push_back(std::move(s));
    h_.push_back(std::move(h));
    e_.push_back(std::move(next));
  }
  // Readout: mean over layers 0..L.
  Matrix combined(n, d);
  for (const Matrix& e : e_) combined.AddScaled(e, 1.0f);
  const float inv = 1.0f / static_cast<float>(e_.size());
  for (size_t k = 0; k < combined.size(); ++k) combined.data()[k] *= inv;

  for (uint32_t u = 0; u < num_users_; ++u) {
    std::memcpy(final_user_.Row(u), combined.Row(u), d * sizeof(float));
  }
  for (uint32_t i = 0; i < num_items_; ++i) {
    std::memcpy(final_item_.Row(i), combined.Row(num_users_ + i),
                d * sizeof(float));
  }
}

void NgcfModel::Backward() {
  BSLREC_CHECK_MSG(!e_.empty(), "Backward called before Forward");
  const size_t n = graph_.num_nodes();
  const size_t d = dim_;
  const float inv = 1.0f / static_cast<float>(num_layers_ + 1);

  // Gradient w.r.t. the mean readout reaches every layer output equally.
  Matrix grad_readout(n, d);
  for (uint32_t u = 0; u < num_users_; ++u) {
    std::memcpy(grad_readout.Row(u), grad_user_.Row(u), d * sizeof(float));
  }
  for (uint32_t i = 0; i < num_items_; ++i) {
    std::memcpy(grad_readout.Row(num_users_ + i), grad_item_.Row(i),
                d * sizeof(float));
  }
  for (size_t k = 0; k < grad_readout.size(); ++k) {
    grad_readout.data()[k] *= inv;
  }

  // d_e[l]: accumulated gradient at E^l. Start with the readout share.
  std::vector<Matrix> d_e(e_.size());
  for (size_t l = 0; l < e_.size(); ++l) d_e[l] = grad_readout;

  Matrix dh(n, d), x1(n, d), x2(n, d), dx(n, d), ds(n, d);
  for (int l = num_layers_ - 1; l >= 0; --l) {
    const Matrix& e = e_[l];
    const Matrix& s = s_[l];
    const Matrix& h = h_[l];
    // dH = dE^{l+1} ⊙ LeakyReLU'(H).
    for (size_t k = 0; k < h.size(); ++k) {
      dh.data()[k] = d_e[l + 1].data()[k] * LeakyReluGrad(h.data()[k]);
    }
    // Recompute the cheap forward intermediates x1, x2.
    for (size_t k = 0; k < e.size(); ++k) {
      x1.data()[k] = e.data()[k] + s.data()[k];
      x2.data()[k] = s.data()[k] * e.data()[k];
    }
    // Weight grads: dW1 += x1^T dH, dW2 += x2^T dH.
    Matrix tmp_w(d, d);
    MatTMul(x1, dh, tmp_w);
    w1_grad_[l].AddScaled(tmp_w, 1.0f);
    MatTMul(x2, dh, tmp_w);
    w2_grad_[l].AddScaled(tmp_w, 1.0f);
    // dX1 = dH W1^T; dX2 = dH W2^T.
    dx.SetZero();
    MatMulTAccum(dh, w1_[l], dx);  // dx = dX1
    // Self path: dE^l += dX1; neighbor path seeds dS = dX1.
    d_e[l].AddScaled(dx, 1.0f);
    ds = dx;
    dx.SetZero();
    MatMulTAccum(dh, w2_[l], dx);  // dx = dX2
    for (size_t k = 0; k < dx.size(); ++k) {
      // x2 = s ⊙ e: dS += dX2 ⊙ e, dE += dX2 ⊙ s.
      ds.data()[k] += dx.data()[k] * e.data()[k];
      d_e[l].data()[k] += dx.data()[k] * s.data()[k];
    }
    // S = A_hat E^l, A_hat symmetric: dE^l += A_hat dS.
    Matrix prop(n, d);
    graph_.Adjacency().Multiply(ds, prop);
    d_e[l].AddScaled(prop, 1.0f);
  }
  base_grad_.AddScaled(d_e[0], 1.0f);
}

std::vector<ParamGrad> NgcfModel::Params() {
  std::vector<ParamGrad> params{{&base_, &base_grad_}};
  for (int l = 0; l < num_layers_; ++l) {
    params.push_back({&w1_[l], &w1_grad_[l]});
    params.push_back({&w2_[l], &w2_grad_[l]});
  }
  return params;
}

}  // namespace bslrec
