#include "models/ngcf.h"

#include <cstring>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

namespace {

inline float LeakyRelu(float x) {
  return x > 0.0f ? x : NgcfModel::kLeakySlope * x;
}

inline float LeakyReluGrad(float pre_activation) {
  return pre_activation > 0.0f ? 1.0f : NgcfModel::kLeakySlope;
}

}  // namespace

NgcfModel::NgcfModel(const BipartiteGraph& graph, size_t dim, int num_layers,
                     Rng& rng)
    : EmbeddingModel(graph.num_users(), graph.num_items(), dim),
      graph_(graph),
      num_layers_(num_layers),
      base_(graph.num_nodes(), dim),
      base_grad_(graph.num_nodes(), dim) {
  BSLREC_CHECK(num_layers >= 1);
  base_.InitXavierUniform(rng);
  w1_.reserve(num_layers);
  w2_.reserve(num_layers);
  for (int l = 0; l < num_layers; ++l) {
    w1_.emplace_back(dim, dim);
    w2_.emplace_back(dim, dim);
    w1_.back().InitXavierUniform(rng);
    w2_.back().InitXavierUniform(rng);
    w1_grad_.emplace_back(dim, dim);
    w2_grad_.emplace_back(dim, dim);
  }
  // Preallocate the forward caches so Forward never allocates. The
  // reverse-pass buffers are sized lazily on the first Backward — a
  // forward-only model (checkpoint-load-and-serve) never pays for them.
  const size_t n = graph.num_nodes();
  e_.assign(num_layers + 1, Matrix(n, dim));
  s_.assign(num_layers, Matrix(n, dim));
  h_.assign(num_layers, Matrix(n, dim));
  combined_ = Matrix(n, dim);
  x1_ = Matrix(n, dim);
  x2_ = Matrix(n, dim);
}

void NgcfModel::EnsureBackwardBuffers() {
  const size_t n = graph_.num_nodes();
  if (grad_readout_.rows() == n && grad_readout_.cols() == dim_) return;
  d_e_.assign(num_layers_ + 1, Matrix(n, dim_));
  grad_readout_ = Matrix(n, dim_);
  dh_ = Matrix(n, dim_);
  dx_ = Matrix(n, dim_);
  ds_ = Matrix(n, dim_);
  prop_ = Matrix(n, dim_);
  tmp_w_ = Matrix(dim_, dim_);
}

void NgcfModel::SetRuntime(runtime::ThreadPool* pool) {
  engine_.SetPool(pool);
}

void NgcfModel::Forward(Rng&) {
  const size_t n = graph_.num_nodes();
  const size_t d = dim_;
  const size_t grain = engine_.row_grain();
  e_[0] = base_;
  for (int l = 0; l < num_layers_; ++l) {
    const Matrix& e = e_[l];
    Matrix& s = s_[l];
    engine_.PropagateLayer(graph_.Adjacency(), e, s);
    // x1 = e + s; x2 = s ⊙ e (element-wise, row-disjoint shards).
    engine_.For(0, n, grain, [&](size_t lo, size_t hi, size_t, size_t) {
      for (size_t k = lo * d; k < hi * d; ++k) {
        x1_.data()[k] = e.data()[k] + s.data()[k];
        x2_.data()[k] = s.data()[k] * e.data()[k];
      }
    });
    Matrix& h = h_[l];
    engine_.DenseMatMul(x1_, w1_[l], h, /*accumulate=*/false);
    engine_.DenseMatMul(x2_, w2_[l], h, /*accumulate=*/true);
    Matrix& next = e_[l + 1];
    engine_.For(0, n, grain, [&](size_t lo, size_t hi, size_t, size_t) {
      for (size_t k = lo * d; k < hi * d; ++k) {
        next.data()[k] = LeakyRelu(h.data()[k]);
      }
    });
  }
  // Readout: mean over layers 0..L.
  const float inv = 1.0f / static_cast<float>(e_.size());
  engine_.For(0, n, grain, [&](size_t lo, size_t hi, size_t, size_t) {
    for (size_t k = lo * d; k < hi * d; ++k) {
      float acc = 0.0f;
      for (const Matrix& e : e_) acc += e.data()[k];
      combined_.data()[k] = acc * inv;
    }
  });

  for (uint32_t u = 0; u < num_users_; ++u) {
    std::memcpy(final_user_.Row(u), combined_.Row(u), d * sizeof(float));
  }
  for (uint32_t i = 0; i < num_items_; ++i) {
    std::memcpy(final_item_.Row(i), combined_.Row(num_users_ + i),
                d * sizeof(float));
  }
  forward_ran_ = true;
}

void NgcfModel::Backward() {
  BSLREC_CHECK_MSG(forward_ran_, "Backward called before Forward");
  EnsureBackwardBuffers();
  const size_t n = graph_.num_nodes();
  const size_t d = dim_;
  const size_t grain = engine_.row_grain();
  const float inv = 1.0f / static_cast<float>(num_layers_ + 1);

  // Gradient w.r.t. the mean readout reaches every layer output equally.
  for (uint32_t u = 0; u < num_users_; ++u) {
    std::memcpy(grad_readout_.Row(u), grad_user_.Row(u), d * sizeof(float));
  }
  for (uint32_t i = 0; i < num_items_; ++i) {
    std::memcpy(grad_readout_.Row(num_users_ + i), grad_item_.Row(i),
                d * sizeof(float));
  }
  for (size_t k = 0; k < grad_readout_.size(); ++k) {
    grad_readout_.data()[k] *= inv;
  }

  // d_e_[l]: accumulated gradient at E^l. Start with the readout share.
  for (size_t l = 0; l < e_.size(); ++l) d_e_[l] = grad_readout_;

  for (int l = num_layers_ - 1; l >= 0; --l) {
    const Matrix& e = e_[l];
    const Matrix& s = s_[l];
    const Matrix& h = h_[l];
    Matrix& d_e = d_e_[l];
    const Matrix& d_next = d_e_[l + 1];
    // dH = dE^{l+1} ⊙ LeakyReLU'(H); recompute the cheap forward
    // intermediates x1, x2 in the same row-disjoint pass.
    engine_.For(0, n, grain, [&](size_t lo, size_t hi, size_t, size_t) {
      for (size_t k = lo * d; k < hi * d; ++k) {
        dh_.data()[k] = d_next.data()[k] * LeakyReluGrad(h.data()[k]);
        x1_.data()[k] = e.data()[k] + s.data()[k];
        x2_.data()[k] = s.data()[k] * e.data()[k];
      }
    });
    // Weight grads: dW1 += x1^T dH, dW2 += x2^T dH. These are full-column
    // reductions over all n rows — kept serial so the summation tree is
    // fixed (d x d outputs; negligible next to the row-sharded products).
    MatTMul(x1_, dh_, tmp_w_);
    w1_grad_[l].AddScaled(tmp_w_, 1.0f);
    MatTMul(x2_, dh_, tmp_w_);
    w2_grad_[l].AddScaled(tmp_w_, 1.0f);
    // dX1 = dH W1^T; dX2 = dH W2^T.
    dx_.SetZero();
    engine_.DenseMatMulTAccum(dh_, w1_[l], dx_);  // dx = dX1
    // Self path: dE^l += dX1; neighbor path seeds dS = dX1.
    engine_.For(0, n, grain, [&](size_t lo, size_t hi, size_t, size_t) {
      for (size_t k = lo * d; k < hi * d; ++k) {
        d_e.data()[k] += dx_.data()[k];
        ds_.data()[k] = dx_.data()[k];
      }
    });
    dx_.SetZero();
    engine_.DenseMatMulTAccum(dh_, w2_[l], dx_);  // dx = dX2
    engine_.For(0, n, grain, [&](size_t lo, size_t hi, size_t, size_t) {
      for (size_t k = lo * d; k < hi * d; ++k) {
        // x2 = s ⊙ e: dS += dX2 ⊙ e, dE += dX2 ⊙ s.
        ds_.data()[k] += dx_.data()[k] * e.data()[k];
        d_e.data()[k] += dx_.data()[k] * s.data()[k];
      }
    });
    // S = A_hat E^l, A_hat symmetric: dE^l += A_hat dS.
    engine_.PropagateLayer(graph_.Adjacency(), ds_, prop_);
    engine_.For(0, n, grain, [&](size_t lo, size_t hi, size_t, size_t) {
      for (size_t r = lo; r < hi; ++r) {
        vec::Axpy(1.0f, prop_.Row(r), d_e.Row(r), d);
      }
    });
  }
  base_grad_.AddScaled(d_e_[0], 1.0f);
}

std::vector<ParamGrad> NgcfModel::Params() {
  std::vector<ParamGrad> params{{&base_, &base_grad_}};
  for (int l = 0; l < num_layers_; ++l) {
    params.push_back({&w1_[l], &w1_grad_[l]});
    params.push_back({&w2_[l], &w2_grad_[l]});
  }
  return params;
}

}  // namespace bslrec
