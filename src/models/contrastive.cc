#include "models/contrastive.h"

#include <cmath>
#include <vector>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

namespace {

// Nodes per shard for the SVD projection gather (a rank x d reduction
// over user/item rows). Fixed, so shard partials — and therefore the
// reduced projection — never depend on the worker count.
constexpr size_t kSvdGatherGrain = 256;

}  // namespace

ContrastiveModel::ContrastiveModel(const BipartiteGraph& graph, size_t dim,
                                   const ContrastiveConfig& config, Rng& rng)
    : LightGcnModel(graph, dim, config.num_layers, rng), config_(config) {
  if (config_.kind == AugmentationKind::kSvdView) {
    const size_t rank =
        std::min(config_.svd_rank,
                 std::min<size_t>(graph.num_users(), graph.num_items()));
    svd_ = TruncatedSvd(graph.NormalizedRatings(), rank,
                        config_.svd_power_iters, rng);
  }
}

std::string_view ContrastiveModel::name() const {
  switch (config_.kind) {
    case AugmentationKind::kEdgeDropout:
      return "SGL";
    case AugmentationKind::kEmbeddingNoise:
      return "SimGCL";
    case AugmentationKind::kSvdView:
      return "LightGCL";
  }
  return "Contrastive";
}

void ContrastiveModel::ProjectFactor(const Matrix& factor,
                                     const Matrix& current, size_t row_offset,
                                     size_t count, Matrix& proj) {
  const size_t d = current.cols();
  const size_t rank = factor.cols();
  const size_t num_shards = (count + kSvdGatherGrain - 1) / kSvdGatherGrain;
  // Sized for the larger of the user/item gathers so the alternating
  // calls reuse one buffer instead of reshaping (= reallocating) it.
  const size_t max_rows =
      std::max<size_t>(num_users_, num_items_) + kSvdGatherGrain - 1;
  const size_t max_shards = max_rows / kSvdGatherGrain;
  Matrix& partials =
      engine_.Workspace(kSvdPartialSlot, max_shards * rank, d);
  engine_.For(
      0, count, kSvdGatherGrain,
      [&](size_t lo, size_t hi, size_t shard, size_t /*worker*/) {
        float* block = partials.Row(shard * rank);
        vec::Fill(block, rank * d, 0.0f);
        for (size_t i = lo; i < hi; ++i) {
          const float* row = current.Row(row_offset + i);
          const float* f_row = factor.Row(i);
          for (size_t r = 0; r < rank; ++r) {
            vec::Axpy(f_row[r], row, block + r * d, d);
          }
        }
      });
  proj.SetZero();
  for (size_t shard = 0; shard < num_shards; ++shard) {
    for (size_t r = 0; r < rank; ++r) {
      vec::Axpy(1.0f, partials.Row(shard * rank + r), proj.Row(r), d);
    }
  }
  for (size_t r = 0; r < rank; ++r) {
    vec::Scale(proj.Row(r), d, svd_->singular[r]);
  }
}

void ContrastiveModel::BroadcastFactor(const Matrix& factor,
                                       const Matrix& proj, size_t row_offset,
                                       size_t count, Matrix& next) {
  const size_t d = proj.cols();
  const size_t rank = factor.cols();
  engine_.For(0, count, engine_.row_grain(),
              [&](size_t lo, size_t hi, size_t, size_t) {
                for (size_t i = lo; i < hi; ++i) {
                  float* row = next.Row(row_offset + i);
                  vec::Fill(row, d, 0.0f);
                  const float* f_row = factor.Row(i);
                  for (size_t r = 0; r < rank; ++r) {
                    vec::Axpy(f_row[r], proj.Row(r), row, d);
                  }
                }
              });
}

void ContrastiveModel::SvdPropagate(const Matrix& in, Matrix& out) {
  BSLREC_CHECK(svd_.has_value());
  const size_t d = in.cols();
  const size_t rank = svd_->singular.size();
  const uint32_t num_u = num_users_;
  const uint32_t num_i = num_items_;
  // out_users = U (S ⊙ (V^T in_items)); out_items = V (S ⊙ (U^T in_users)).
  // One application of the symmetric operator M = [[0, USV^T],[VSU^T, 0]];
  // the LightGCL view is the mean over propagation depths, mirroring the
  // LightGCN readout. The projection gathers reduce per-shard partials in
  // shard order; the broadcasts shard disjoint output rows.
  Matrix& current = engine_.Workspace(kSvdCurSlot, in.rows(), d);
  Matrix& next = engine_.Workspace(kSvdNextSlot, in.rows(), d);
  Matrix& proj = engine_.Workspace(kSvdProjSlot, rank, d);
  current = in;
  out = in;  // depth-0 term
  for (int layer = 1; layer <= num_layers_; ++layer) {
    // proj = S ⊙ (V^T current_items), then broadcast through U.
    ProjectFactor(svd_->v, current, num_u, num_i, proj);
    BroadcastFactor(svd_->u, proj, 0, num_u, next);
    // proj = S ⊙ (U^T current_users), then broadcast through V.
    ProjectFactor(svd_->u, current, 0, num_u, proj);
    BroadcastFactor(svd_->v, proj, num_u, num_i, next);
    std::swap(current, next);
    out.AddScaled(current, 1.0f);
  }
  const float inv = 1.0f / static_cast<float>(num_layers_ + 1);
  for (size_t k = 0; k < out.size(); ++k) out.data()[k] *= inv;
}

void ContrastiveModel::BuildView(const Matrix& in, Matrix& out, Rng& rng,
                                 std::optional<SparseMatrix>& dropped_graph) {
  switch (config_.kind) {
    case AugmentationKind::kEdgeDropout: {
      // The dropped adjacency is a fresh random topology per view (drawn
      // serially from rng); its propagation still runs through the
      // shared engine.
      dropped_graph = graph_.EdgeDropout(config_.edge_drop_rate, rng);
      engine_.MeanPropagate(*dropped_graph, in, num_layers_, out);
      return;
    }
    case AugmentationKind::kEmbeddingNoise: {
      dropped_graph.reset();
      engine_.MeanPropagate(graph_.Adjacency(), in, num_layers_, out);
      // Detached additive noise: row-wise random direction scaled to
      // `noise_magnitude`, sign-aligned with the embedding as in SimGCL.
      // Serial on the calling thread: one RNG stream, fixed draw order.
      const size_t d = in.cols();
      std::vector<float> noise(d);
      for (size_t r = 0; r < out.rows(); ++r) {
        float* row = out.Row(r);
        for (size_t c = 0; c < d; ++c) {
          noise[c] = static_cast<float>(rng.NextGaussian());
        }
        vec::Normalize(noise.data(), noise.data(), d);
        for (size_t c = 0; c < d; ++c) {
          const float sign = row[c] >= 0.0f ? 1.0f : -1.0f;
          row[c] += static_cast<float>(config_.noise_magnitude) * sign *
                    std::abs(noise[c]);
        }
      }
      return;
    }
    case AugmentationKind::kSvdView: {
      dropped_graph.reset();
      SvdPropagate(in, out);
      return;
    }
  }
}

void ContrastiveModel::BackwardView(
    const Matrix& grad, const std::optional<SparseMatrix>& dropped_graph) {
  switch (config_.kind) {
    case AugmentationKind::kEdgeDropout:
      BSLREC_CHECK(dropped_graph.has_value());
      engine_.MeanPropagateAccum(*dropped_graph, grad, num_layers_,
                                 base_grad_);
      break;
    case AugmentationKind::kEmbeddingNoise:
      // Additive noise is constant w.r.t. parameters.
      engine_.MeanPropagateAccum(graph_.Adjacency(), grad, num_layers_,
                                 base_grad_);
      break;
    case AugmentationKind::kSvdView: {
      Matrix& back =
          engine_.Workspace(kViewBackSlot, grad.rows(), grad.cols());
      SvdPropagate(grad, back);  // operator is symmetric
      base_grad_.AddScaled(back, 1.0f);
      break;
    }
  }
}

namespace {

// InfoNCE over one node set. z1/z2 hold the two views (full node space);
// `nodes` indexes the rows taking part. Gradients (w.r.t. the *raw* view
// rows, cosine chain rule included) are accumulated into g1/g2 scaled by
// `weight`. Returns the mean InfoNCE loss over the set.
double InfoNceSet(const Matrix& z1, const Matrix& z2,
                  std::span<const uint32_t> nodes, double tau, double weight,
                  Matrix& g1, Matrix& g2) {
  const size_t b = nodes.size();
  if (b < 2) return 0.0;
  const size_t d = z1.cols();

  // Normalized copies + norms for the cosine chain rule.
  Matrix n1(b, d), n2(b, d);
  std::vector<float> norm1(b), norm2(b);
  for (size_t k = 0; k < b; ++k) {
    norm1[k] = vec::Normalize(z1.Row(nodes[k]), n1.Row(k), d);
    norm2[k] = vec::Normalize(z2.Row(nodes[k]), n2.Row(k), d);
  }

  double total_loss = 0.0;
  std::vector<float> sims(b), probs(b);
  for (size_t v = 0; v < b; ++v) {
    for (size_t w = 0; w < b; ++w) {
      sims[w] = vec::Dot(n1.Row(v), n2.Row(w), d) / static_cast<float>(tau);
    }
    const double lse = vec::LogSumExp(sims.data(), b);
    total_loss += lse - sims[v];
    vec::Softmax(sims.data(), probs.data(), b);
    // dL/dsim_vw = probs[w] - 1{w==v}; chain through /tau and cosine.
    for (size_t w = 0; w < b; ++w) {
      double coeff = probs[w];
      if (w == v) coeff -= 1.0;
      coeff *= weight / (tau * static_cast<double>(b));
      if (coeff == 0.0) continue;
      const float score = sims[w] * static_cast<float>(tau);
      vec::AccumulateCosineGrad(n1.Row(v), n2.Row(w), score, norm1[v],
                                static_cast<float>(coeff), g1.Row(nodes[v]),
                                d);
      vec::AccumulateCosineGrad(n2.Row(w), n1.Row(v), score, norm2[w],
                                static_cast<float>(coeff), g2.Row(nodes[w]),
                                d);
    }
  }
  return total_loss / static_cast<double>(b);
}

}  // namespace

double ContrastiveModel::AuxLossAndGrad(std::span<const uint32_t> batch_users,
                                        std::span<const uint32_t> batch_items,
                                        Rng& rng) {
  const size_t n = graph_.num_nodes();
  Matrix& z1 = engine_.Workspace(kView1Slot, n, dim_);
  Matrix& z2 = engine_.Workspace(kView2Slot, n, dim_);
  std::optional<SparseMatrix> g1_graph, g2_graph;
  // LightGCL contrasts the main propagation with the SVD view; SGL and
  // SimGCL contrast two independent augmentations.
  if (config_.kind == AugmentationKind::kSvdView) {
    engine_.MeanPropagate(graph_.Adjacency(), base_, num_layers_, z1);
    SvdPropagate(base_, z2);
  } else {
    BuildView(base_, z1, rng, g1_graph);
    BuildView(base_, z2, rng, g2_graph);
  }

  // Cap the O(B^2) InfoNCE sets by uniform subsampling (keeps the
  // estimator unbiased while bounding per-batch cost).
  const auto cap = [&](std::span<const uint32_t> nodes) {
    std::vector<uint32_t> out(nodes.begin(), nodes.end());
    if (config_.max_aux_nodes > 0 && out.size() > config_.max_aux_nodes) {
      rng.Shuffle(out);
      out.resize(config_.max_aux_nodes);
    }
    return out;
  };
  const std::vector<uint32_t> user_nodes = cap(batch_users);
  // Map item ids into combined node space.
  std::vector<uint32_t> item_nodes = cap(batch_items);
  for (uint32_t& node : item_nodes) node += num_users_;

  Matrix& grad1 = engine_.Workspace(kGrad1Slot, n, dim_);
  Matrix& grad2 = engine_.Workspace(kGrad2Slot, n, dim_);
  grad1.SetZero();
  grad2.SetZero();
  double loss = 0.0;
  loss += InfoNceSet(z1, z2, user_nodes, config_.tau_contrast,
                     config_.lambda, grad1, grad2);
  loss += InfoNceSet(z1, z2, item_nodes, config_.tau_contrast,
                     config_.lambda, grad1, grad2);

  if (config_.kind == AugmentationKind::kSvdView) {
    // grad1 flows through the main propagation, grad2 through the SVD.
    engine_.MeanPropagateAccum(graph_.Adjacency(), grad1, num_layers_,
                               base_grad_);
    Matrix& back = engine_.Workspace(kViewBackSlot, n, dim_);
    SvdPropagate(grad2, back);
    base_grad_.AddScaled(back, 1.0f);
  } else {
    BackwardView(grad1, g1_graph);
    BackwardView(grad2, g2_graph);
  }
  return config_.lambda * loss;
}

}  // namespace bslrec
