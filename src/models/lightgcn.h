// LightGCN backbone (He et al., SIGIR 2020).
//
// Parameters: one base embedding table over users+items. Forward runs the
// linear propagation
//
//    E_final = 1/(L+1) * sum_{k=0..L} A_hat^k E_base
//
// over the symmetric normalized adjacency A_hat. Because the propagation
// is linear and A_hat is symmetric, the backward pass applies the *same*
// operator to the final-embedding gradients.
//
// All propagation runs through a graph::PropagationEngine: SetRuntime
// hands it the owner's thread pool (the trainer does this automatically)
// and the engine's persistent workspaces make steady-state Forward and
// Backward passes allocation-free. Results are bit-identical for any
// worker count (graph/propagation.h design notes).
#ifndef BSLREC_MODELS_LIGHTGCN_H_
#define BSLREC_MODELS_LIGHTGCN_H_

#include "graph/bipartite_graph.h"
#include "models/model.h"

namespace bslrec {

class LightGcnModel : public EmbeddingModel {
 public:
  // `graph` must outlive the model.
  LightGcnModel(const BipartiteGraph& graph, size_t dim, int num_layers,
                Rng& rng);

  std::string_view name() const override { return "LightGCN"; }
  void SetRuntime(runtime::ThreadPool* pool) override;
  void Forward(Rng& rng) override;
  void Backward() override;
  std::vector<ParamGrad> Params() override;

  int num_layers() const { return num_layers_; }

 protected:
  // Engine workspace slots shared across the LightGCN family. Subclasses
  // (ContrastiveModel) start their own slots at kFirstFreeSlot.
  enum WorkspaceSlot : size_t {
    kGradCombinedSlot = 0,
    kFirstFreeSlot,
  };

  // Shared helpers for subclasses / siblings with combined node storage.
  void SplitFinal(const Matrix& combined);
  void GatherFinalGrad(Matrix& combined) const;

  const BipartiteGraph& graph_;
  int num_layers_;
  graph::PropagationEngine engine_;  // pool attached via SetRuntime
  Matrix base_;        // (U+I) x d parameter table
  Matrix base_grad_;   // parameter gradients
  Matrix combined_;    // propagated (U+I) x d final embeddings
};

}  // namespace bslrec

#endif  // BSLREC_MODELS_LIGHTGCN_H_
