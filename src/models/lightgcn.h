// LightGCN backbone (He et al., SIGIR 2020).
//
// Parameters: one base embedding table over users+items. Forward runs the
// linear propagation
//
//    E_final = 1/(L+1) * sum_{k=0..L} A_hat^k E_base
//
// over the symmetric normalized adjacency A_hat. Because the propagation
// is linear and A_hat is symmetric, the backward pass applies the *same*
// operator to the final-embedding gradients.
#ifndef BSLREC_MODELS_LIGHTGCN_H_
#define BSLREC_MODELS_LIGHTGCN_H_

#include "graph/bipartite_graph.h"
#include "models/model.h"

namespace bslrec {

// Mean-of-powers propagation: out = 1/(L+1) sum_{k<=L} A^k base.
// Exposed for reuse by the contrastive backbones and by tests.
void LightGcnPropagate(const SparseMatrix& adjacency, const Matrix& base,
                       int num_layers, Matrix& out, Matrix& scratch);

class LightGcnModel : public EmbeddingModel {
 public:
  // `graph` must outlive the model.
  LightGcnModel(const BipartiteGraph& graph, size_t dim, int num_layers,
                Rng& rng);

  std::string_view name() const override { return "LightGCN"; }
  void Forward(Rng& rng) override;
  void Backward() override;
  std::vector<ParamGrad> Params() override;

  int num_layers() const { return num_layers_; }

 protected:
  // Shared helpers for subclasses / siblings with combined node storage.
  void SplitFinal(const Matrix& combined);
  void GatherFinalGrad(Matrix& combined) const;

  const BipartiteGraph& graph_;
  int num_layers_;
  Matrix base_;        // (U+I) x d parameter table
  Matrix base_grad_;   // parameter gradients
  Matrix combined_;    // propagated (U+I) x d final embeddings
  Matrix scratch_a_;   // propagation work buffers
  Matrix scratch_b_;
};

}  // namespace bslrec

#endif  // BSLREC_MODELS_LIGHTGCN_H_
