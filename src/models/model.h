// Backbone model interface.
//
// Every backbone (MF, NGCF, LightGCN, SGL, SimGCL, LightGCL) is an
// *embedding model*: parameters are (at least) user/item embedding
// tables; `Forward` produces the final user/item representations the
// scoring head consumes (for MF the parameters themselves; for graph
// models the propagated embeddings). The training loop is:
//
//   model.Forward(rng);                    // (re)propagate
//   model.ZeroGrad();
//   ... accumulate dL/d(final emb) via UserGrad()/ItemGrad() ...
//   aux += model.AuxLossAndGrad(...);      // contrastive regularizers
//   model.Backward();                      // chain into parameter grads
//   optimizer.Step(model.Params());
//
// Scores are cosine similarities of the final embeddings; the cosine
// chain rule lives in the trainer, not here.
#ifndef BSLREC_MODELS_MODEL_H_
#define BSLREC_MODELS_MODEL_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "math/matrix.h"
#include "math/rng.h"

namespace bslrec {

namespace runtime {
class ThreadPool;
}  // namespace runtime

// A parameter tensor paired with its gradient accumulator.
struct ParamGrad {
  Matrix* value;
  Matrix* grad;
};

class EmbeddingModel {
 public:
  EmbeddingModel(uint32_t num_users, uint32_t num_items, size_t dim);
  virtual ~EmbeddingModel() = default;

  EmbeddingModel(const EmbeddingModel&) = delete;
  EmbeddingModel& operator=(const EmbeddingModel&) = delete;

  virtual std::string_view name() const = 0;

  // Hands the model an execution runtime: backbones with heavy linear
  // algebra (graph propagation) route their Forward/Backward through
  // `pool`, so the owner's thread budget governs model compute too. The
  // trainer attaches its pool at construction and detaches (nullptr) on
  // destruction. nullptr means serial execution; either way results are
  // bit-identical (the sharded-rows contract in graph/propagation.h).
  // `pool` must outlive the model or be detached before it dies.
  virtual void SetRuntime(runtime::ThreadPool* pool);

  uint32_t num_users() const { return num_users_; }
  uint32_t num_items() const { return num_items_; }
  size_t dim() const { return dim_; }

  // Recomputes the final embeddings from the current parameters.
  // Stochastic backbones (SGL, SimGCL) draw their augmentations from rng.
  virtual void Forward(Rng& rng) = 0;

  // Final representations (valid after Forward).
  const float* UserEmb(uint32_t u) const { return final_user_.Row(u); }
  const float* ItemEmb(uint32_t i) const { return final_item_.Row(i); }
  const Matrix& FinalUserMatrix() const { return final_user_; }
  const Matrix& FinalItemMatrix() const { return final_item_; }

  // Gradient accumulators on the final representations.
  float* UserGrad(uint32_t u) { return grad_user_.Row(u); }
  float* ItemGrad(uint32_t i) { return grad_item_.Row(i); }

  // Zeroes final-embedding gradients and parameter gradients.
  void ZeroGrad();

  // Propagates the accumulated final-embedding gradients into parameter
  // gradients.
  virtual void Backward() = 0;

  // Contrastive auxiliary objective evaluated on the batch nodes; plain
  // backbones return 0. Implementations add the aux gradients directly
  // into their parameter-gradient path (they are picked up by Backward).
  virtual double AuxLossAndGrad(std::span<const uint32_t> batch_users,
                                std::span<const uint32_t> batch_items,
                                Rng& rng);

  // Parameters (with grads) for the optimizer, stable across calls.
  virtual std::vector<ParamGrad> Params() = 0;

 protected:
  uint32_t num_users_;
  uint32_t num_items_;
  size_t dim_;
  Matrix final_user_;
  Matrix final_item_;
  Matrix grad_user_;
  Matrix grad_item_;
};

}  // namespace bslrec

#endif  // BSLREC_MODELS_MODEL_H_
