#include "eval/async_evaluator.h"

#include <utility>

#include "math/check.h"

namespace bslrec {

AsyncEvaluator::AsyncEvaluator(const Dataset& data, uint32_t k,
                               runtime::RuntimeConfig runtime)
    : runner_(runtime::ResolveEvalThreads(runtime)),
      evaluator_(data, k, &runner_.pool()) {}

AsyncEvaluator::~AsyncEvaluator() {
  // Drain before members are destroyed: an in-flight task uses
  // evaluator_, which dies before runner_ would otherwise finish it.
  try {
    runner_.Drain();
  } catch (...) {
    // Uncollected background errors die with the evaluator; call
    // Join() before destruction to observe them.
  }
}

size_t AsyncEvaluator::num_workers() const {
  return runner_.pool().num_workers();
}

void AsyncEvaluator::Submit(
    int epoch, std::shared_ptr<const serve::ModelSnapshot> snapshot) {
  BSLREC_CHECK(snapshot != nullptr);
  runner_.Submit([this, epoch, snapshot = std::move(snapshot)] {
    Evaluator::Pass pass = evaluator_.BeginPassOn(snapshot);
    EvalRecord rec;
    rec.epoch = epoch;
    rec.metrics = pass.Evaluate();
    std::lock_guard<std::mutex> lk(mu_);
    done_.push_back(rec);
  });
}

std::vector<EvalRecord> AsyncEvaluator::Join() {
  runner_.Drain();  // rethrows background errors
  std::lock_guard<std::mutex> lk(mu_);
  return std::exchange(done_, {});
}

}  // namespace bslrec
