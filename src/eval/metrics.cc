#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/check.h"

namespace bslrec {

namespace {

inline bool InTestSet(std::span<const uint32_t> test_items, uint32_t item) {
  return std::binary_search(test_items.begin(), test_items.end(), item);
}

inline double RankDiscount(size_t rank_0based) {
  return 1.0 / std::log2(static_cast<double>(rank_0based) + 2.0);
}

}  // namespace

double RecallAtK(std::span<const uint32_t> ranking,
                 std::span<const uint32_t> test_items) {
  if (test_items.empty()) return 0.0;
  size_t hits = 0;
  for (uint32_t item : ranking) {
    if (InTestSet(test_items, item)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(test_items.size());
}

double DcgAtK(std::span<const uint32_t> ranking,
              std::span<const uint32_t> test_items) {
  double dcg = 0.0;
  for (size_t k = 0; k < ranking.size(); ++k) {
    if (InTestSet(test_items, ranking[k])) dcg += RankDiscount(k);
  }
  return dcg;
}

double IdealDcgAtK(size_t num_test_items, size_t k) {
  const size_t n = std::min(num_test_items, k);
  double idcg = 0.0;
  for (size_t r = 0; r < n; ++r) idcg += RankDiscount(r);
  return idcg;
}

double NdcgAtK(std::span<const uint32_t> ranking,
               std::span<const uint32_t> test_items, size_t k) {
  if (test_items.empty()) return 0.0;
  const double idcg = IdealDcgAtK(test_items.size(), k);
  if (idcg <= 0.0) return 0.0;
  return DcgAtK(ranking, test_items) / idcg;
}

double PrecisionAtK(std::span<const uint32_t> ranking,
                    std::span<const uint32_t> test_items, size_t k) {
  if (k == 0) return 0.0;
  size_t hits = 0;
  for (uint32_t item : ranking) {
    if (InTestSet(test_items, item)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double HitAtK(std::span<const uint32_t> ranking,
              std::span<const uint32_t> test_items) {
  for (uint32_t item : ranking) {
    if (InTestSet(test_items, item)) return 1.0;
  }
  return 0.0;
}

double MrrAtK(std::span<const uint32_t> ranking,
              std::span<const uint32_t> test_items) {
  for (size_t r = 0; r < ranking.size(); ++r) {
    if (InTestSet(test_items, ranking[r])) {
      return 1.0 / static_cast<double>(r + 1);
    }
  }
  return 0.0;
}

double AveragePrecisionAtK(std::span<const uint32_t> ranking,
                           std::span<const uint32_t> test_items, size_t k) {
  if (test_items.empty() || k == 0) return 0.0;
  size_t hits = 0;
  double sum_precision = 0.0;
  for (size_t r = 0; r < ranking.size() && r < k; ++r) {
    if (InTestSet(test_items, ranking[r])) {
      ++hits;
      sum_precision +=
          static_cast<double>(hits) / static_cast<double>(r + 1);
    }
  }
  const double denom =
      static_cast<double>(std::min(test_items.size(), k));
  return sum_precision / denom;
}

double GiniCoefficient(std::span<const double> values) {
  const size_t n = values.size();
  if (n == 0) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double cum_weighted = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    BSLREC_CHECK_MSG(sorted[i] >= 0.0, "Gini requires non-negative values");
    cum_weighted += static_cast<double>(i + 1) * sorted[i];
    total += sorted[i];
  }
  if (total <= 0.0) return 0.0;
  const double nn = static_cast<double>(n);
  return (2.0 * cum_weighted) / (nn * total) - (nn + 1.0) / nn;
}

void AccumulateGroupNdcg(std::span<const uint32_t> ranking,
                         std::span<const uint32_t> test_items, size_t k,
                         std::span<const uint32_t> item_group,
                         std::span<double> group_acc) {
  if (test_items.empty()) return;
  const double idcg = IdealDcgAtK(test_items.size(), k);
  if (idcg <= 0.0) return;
  for (size_t r = 0; r < ranking.size(); ++r) {
    const uint32_t item = ranking[r];
    if (!InTestSet(test_items, item)) continue;
    BSLREC_CHECK(item < item_group.size());
    const uint32_t g = item_group[item];
    BSLREC_CHECK(g < group_acc.size());
    group_acc[g] += RankDiscount(r) / idcg;
  }
}

}  // namespace bslrec
