// Full-ranking top-K evaluator.
//
// Implements the paper's protocol: for every user with test interactions,
// rank the *entire* catalog by cosine score, mask the user's training
// positives, and average Recall@K / NDCG@K / Precision@K / HitRate@K over
// users. Also provides the popularity-group NDCG decomposition behind the
// fairness figures and raw top-K lists for analysis.
#ifndef BSLREC_EVAL_EVALUATOR_H_
#define BSLREC_EVAL_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "models/model.h"

namespace bslrec {

class Evaluator {
 public:
  // `data` must outlive the evaluator.
  Evaluator(const Dataset& data, uint32_t k);

  uint32_t k() const { return k_; }

  // Aggregate metrics at cutoff k() over all users with test items.
  TopKMetrics Evaluate(const EmbeddingModel& model) const;

  // Metrics at an arbitrary cutoff (Fig 7 uses 5/10/15/20).
  TopKMetrics EvaluateAtK(const EmbeddingModel& model, uint32_t k) const;

  // Mean per-group NDCG contributions over test users; summing the vector
  // gives overall NDCG@k(). Larger group id = more popular items.
  std::vector<double> GroupNdcg(const EmbeddingModel& model,
                                uint32_t num_groups) const;

  // Top-k()-ranked items for a single user (train positives masked).
  std::vector<uint32_t> TopKForUser(const EmbeddingModel& model,
                                    uint32_t user) const;

  // How often each item appears in the top-k() lists across all test
  // users ("exposure"). Feed to GiniCoefficient for a concentration
  // summary of the recommendation policy.
  std::vector<double> ItemExposure(const EmbeddingModel& model) const;

 private:
  // Scores all items for `user` against the normalized item table.
  void ScoreUser(const EmbeddingModel& model, const Matrix& item_normed,
                 uint32_t user, std::vector<float>& scores) const;
  std::vector<uint32_t> RankTopK(const std::vector<float>& scores,
                                 uint32_t user, uint32_t k) const;
  // Normalizes all item embeddings into a reusable table.
  Matrix NormalizeItems(const EmbeddingModel& model) const;

  const Dataset& data_;
  uint32_t k_;
};

}  // namespace bslrec

#endif  // BSLREC_EVAL_EVALUATOR_H_
