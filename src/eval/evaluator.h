// Full-ranking top-K evaluator.
//
// Implements the paper's protocol: for every user with test interactions,
// rank the *entire* catalog by cosine score, mask the user's training
// positives, and average Recall@K / NDCG@K / Precision@K / HitRate@K over
// users. Also provides the popularity-group NDCG decomposition behind the
// fairness figures and raw top-K lists for analysis.
//
// Per-user scoring and ranking fan out across a runtime::ThreadPool.
// Users are assigned to fixed shards and every per-user result lands in
// its own output slot before a serial reduction, so all metrics are
// bit-identical for any worker count (see runtime/thread_pool.h).
//
// An evaluation *pass* (`BeginPass`) freezes the model's current final
// embeddings into a read-only `serve::ModelSnapshot` (the same snapshot
// type the inference service ships to production) and shares it, along
// with per-worker score buffers, across every query on the pass. The
// scoring and ranking kernels also come from `serve/` —
// `ScoreItemRange` and `SelectTopK` — so offline metrics and served
// responses agree bit-for-bit by construction. The single-shot
// `Evaluate`/`GroupNdcg`/... wrappers each open a one-query pass;
// callers issuing several queries against the same model state should
// hold a pass instead.
//
// `BeginPassOn(snapshot)` opens a pass over an *already frozen*
// snapshot instead of freezing one itself. That is the seam async
// evaluation rides: the trainer freezes the snapshot on its own pool,
// then a background AsyncEvaluator scores it on a different pool —
// and because ranking is thread-count invariant, the metrics are
// bit-identical to a synchronous pass over the same snapshot.
//
// The `scoring` options select the ranking kernel per pass:
//   * default — exact full-catalog scan;
//   * `quantize` — certified int8 two-phase scan, metrics bit-identical
//     to exact;
//   * `fp16` — certification-free fp16 two-phase scan (approximate
//     candidate sets);
//   * `exact = false` — ANN through the snapshot's IVF index at
//     `nprobe` probes: the *approximate evaluation pass*, measuring
//     exactly the lists ANN serving would return (with nprobe >= nlist
//     it degenerates to the exact metrics bitwise).
// Every branch runs serially per user inside the parallel user loop,
// so all metric variants are bit-identical for any worker count.
#ifndef BSLREC_EVAL_EVALUATOR_H_
#define BSLREC_EVAL_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "models/model.h"
#include "runtime/thread_pool.h"
#include "serve/model_snapshot.h"
#include "serve/topk_scorer.h"

namespace bslrec {

// One completed evaluation, tagged with the epoch whose model state it
// measured. The trainer records these in epoch order — identically for
// synchronous and asynchronous evaluation.
struct EvalRecord {
  int epoch = 0;
  TopKMetrics metrics;
};

class Evaluator {
 public:
  // `data` must outlive the evaluator. The evaluator owns a pool sized
  // from `runtime` (default: one worker per hardware thread).
  // `scoring` selects the ranking kernel: with `scoring.quantize` every
  // per-user catalog scan runs through the certified two-phase
  // quantized path (see topk_scorer.h) — metrics are bit-identical to
  // the exact scan, only the pass latency changes.
  Evaluator(const Dataset& data, uint32_t k,
            runtime::RuntimeConfig runtime = {},
            serve::ScorerOptions scoring = {});
  // Borrows an external pool (e.g. the trainer's) instead of owning
  // one; `pool` must be non-null and outlive the evaluator.
  Evaluator(const Dataset& data, uint32_t k, runtime::ThreadPool* pool,
            serve::ScorerOptions scoring = {});

  uint32_t k() const { return k_; }

  // One evaluation pass over a fixed model state. The pass copies the
  // final embeddings into its snapshot at construction, so the model
  // may keep training while the pass is queried.
  class Pass {
   public:
    // Aggregate metrics at cutoff evaluator k() / an arbitrary cutoff.
    TopKMetrics Evaluate();
    TopKMetrics EvaluateAtK(uint32_t k);

    // Mean per-group NDCG contributions over test users; summing the
    // vector gives overall NDCG@k(). Larger group id = more popular.
    std::vector<double> GroupNdcg(uint32_t num_groups);

    // Top-k()-ranked items for one user (train positives masked).
    std::vector<uint32_t> TopKForUser(uint32_t user);

    // How often each item appears in the top-k() lists across all test
    // users ("exposure"). Feed to GiniCoefficient for a concentration
    // summary of the recommendation policy.
    std::vector<double> ItemExposure();

    // The frozen embeddings this pass scores against — the same
    // snapshot type serve::InferenceService answers traffic from.
    const serve::ModelSnapshot& snapshot() const { return *snapshot_; }

   private:
    friend class Evaluator;
    Pass(const Evaluator& eval, const EmbeddingModel& model);
    Pass(const Evaluator& eval,
         std::shared_ptr<const serve::ModelSnapshot> snapshot);

    struct WorkerScratch {
      std::vector<float> scores;  // one score per catalog item (exact)
      serve::ShardScratch qscan;  // quantized / fp16 / ivf buffers
    };

    // Scores all items for `user` into ws.scores.
    void ScoreUser(uint32_t user, WorkerScratch& ws);
    // Top-k ids for one user (train positives masked), through the
    // evaluator's configured scoring path (exact or quantized).
    std::vector<uint32_t> RankUser(uint32_t user, uint32_t k,
                                   WorkerScratch& ws);
    // Parallel score+rank of every test user at cutoff k.
    std::vector<std::vector<uint32_t>> ComputeRankings(uint32_t k);
    // Cached ComputeRankings(k()): Evaluate/GroupNdcg/ItemExposure all
    // consume the same rankings, so the O(users x items x dim) scoring
    // runs once per pass no matter how many queries follow.
    const std::vector<std::vector<uint32_t>>& RankingsAtDefaultK();
    TopKMetrics MetricsOverRankings(
        const std::vector<std::vector<uint32_t>>& rankings, uint32_t k);

    const Evaluator& eval_;
    // Normalized tables, frozen once (shared so an in-flight async pass
    // keeps its snapshot alive however long the producer lives).
    std::shared_ptr<const serve::ModelSnapshot> snapshot_;
    std::vector<WorkerScratch> scratch_;  // one per pool worker
    std::vector<std::vector<uint32_t>> rankings_k_;  // per test user
    bool rankings_cached_ = false;
  };

  Pass BeginPass(const EmbeddingModel& model) const;
  // Opens a pass over a snapshot frozen elsewhere (possibly on another
  // pool). The snapshot's shape must match this evaluator's dataset.
  Pass BeginPassOn(
      std::shared_ptr<const serve::ModelSnapshot> snapshot) const;

  // Single-shot conveniences; each opens a fresh pass.
  TopKMetrics Evaluate(const EmbeddingModel& model) const;
  TopKMetrics EvaluateAtK(const EmbeddingModel& model, uint32_t k) const;
  std::vector<double> GroupNdcg(const EmbeddingModel& model,
                                uint32_t num_groups) const;
  std::vector<uint32_t> TopKForUser(const EmbeddingModel& model,
                                    uint32_t user) const;
  std::vector<double> ItemExposure(const EmbeddingModel& model) const;

 private:
  friend class Pass;

  std::vector<uint32_t> RankTopK(const std::vector<float>& scores,
                                 uint32_t user, uint32_t k) const;

  const Dataset& data_;
  uint32_t k_;
  serve::ScorerOptions scoring_;
  std::vector<uint32_t> test_users_;  // users with >= 1 test item
  std::unique_ptr<runtime::ThreadPool> owned_pool_;
  runtime::ThreadPool* pool_;  // owned_pool_.get() or the borrowed pool
};

}  // namespace bslrec

#endif  // BSLREC_EVAL_EVALUATOR_H_
