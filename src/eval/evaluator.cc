#include "eval/evaluator.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

Evaluator::Evaluator(const Dataset& data, uint32_t k) : data_(data), k_(k) {
  BSLREC_CHECK(k > 0);
}

Matrix Evaluator::NormalizeItems(const EmbeddingModel& model) const {
  const size_t d = model.dim();
  Matrix normed(data_.num_items(), d);
  for (uint32_t i = 0; i < data_.num_items(); ++i) {
    vec::Normalize(model.ItemEmb(i), normed.Row(i), d);
  }
  return normed;
}

void Evaluator::ScoreUser(const EmbeddingModel& model,
                          const Matrix& item_normed, uint32_t user,
                          std::vector<float>& scores) const {
  const size_t d = model.dim();
  std::vector<float> u_normed(d);
  vec::Normalize(model.UserEmb(user), u_normed.data(), d);
  scores.resize(data_.num_items());
  for (uint32_t i = 0; i < data_.num_items(); ++i) {
    scores[i] = vec::Dot(u_normed.data(), item_normed.Row(i), d);
  }
}

std::vector<uint32_t> Evaluator::RankTopK(const std::vector<float>& scores,
                                          uint32_t user, uint32_t k) const {
  // Candidates exclude the user's train positives entirely: a
  // recommendation list must never contain already-consumed items.
  const auto train_items = data_.TrainItems(user);
  std::vector<uint32_t> order;
  order.reserve(scores.size());
  size_t next_train = 0;
  for (uint32_t i = 0; i < scores.size(); ++i) {
    if (next_train < train_items.size() && train_items[next_train] == i) {
      ++next_train;
      continue;
    }
    order.push_back(i);
  }
  const uint32_t kk =
      std::min<uint32_t>(k, static_cast<uint32_t>(order.size()));
  std::partial_sort(order.begin(), order.begin() + kk, order.end(),
                    [&](uint32_t a, uint32_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // deterministic tie-break
                    });
  order.resize(kk);
  return order;
}

TopKMetrics Evaluator::Evaluate(const EmbeddingModel& model) const {
  return EvaluateAtK(model, k_);
}

TopKMetrics Evaluator::EvaluateAtK(const EmbeddingModel& model,
                                   uint32_t k) const {
  const Matrix item_normed = NormalizeItems(model);
  TopKMetrics agg;
  std::vector<float> scores;
  for (uint32_t u = 0; u < data_.num_users(); ++u) {
    const auto test_items = data_.TestItems(u);
    if (test_items.empty()) continue;
    ScoreUser(model, item_normed, u, scores);
    const std::vector<uint32_t> ranking = RankTopK(scores, u, k);
    agg.recall += RecallAtK(ranking, test_items);
    agg.ndcg += NdcgAtK(ranking, test_items, k);
    agg.precision += PrecisionAtK(ranking, test_items, k);
    agg.hit_rate += HitAtK(ranking, test_items);
    ++agg.num_users;
  }
  if (agg.num_users > 0) {
    const double n = static_cast<double>(agg.num_users);
    agg.recall /= n;
    agg.ndcg /= n;
    agg.precision /= n;
    agg.hit_rate /= n;
  }
  return agg;
}

std::vector<double> Evaluator::GroupNdcg(const EmbeddingModel& model,
                                         uint32_t num_groups) const {
  const std::vector<uint32_t> item_group = data_.PopularityGroups(num_groups);
  const Matrix item_normed = NormalizeItems(model);
  std::vector<double> acc(num_groups, 0.0);
  std::vector<float> scores;
  size_t users = 0;
  for (uint32_t u = 0; u < data_.num_users(); ++u) {
    const auto test_items = data_.TestItems(u);
    if (test_items.empty()) continue;
    ScoreUser(model, item_normed, u, scores);
    const std::vector<uint32_t> ranking = RankTopK(scores, u, k_);
    AccumulateGroupNdcg(ranking, test_items, k_, item_group, acc);
    ++users;
  }
  if (users > 0) {
    for (double& x : acc) x /= static_cast<double>(users);
  }
  return acc;
}

std::vector<uint32_t> Evaluator::TopKForUser(const EmbeddingModel& model,
                                             uint32_t user) const {
  const Matrix item_normed = NormalizeItems(model);
  std::vector<float> scores;
  ScoreUser(model, item_normed, user, scores);
  return RankTopK(scores, user, k_);
}

std::vector<double> Evaluator::ItemExposure(const EmbeddingModel& model) const {
  const Matrix item_normed = NormalizeItems(model);
  std::vector<double> exposure(data_.num_items(), 0.0);
  std::vector<float> scores;
  for (uint32_t u = 0; u < data_.num_users(); ++u) {
    if (data_.TestItems(u).empty()) continue;
    ScoreUser(model, item_normed, u, scores);
    for (uint32_t item : RankTopK(scores, u, k_)) exposure[item] += 1.0;
  }
  return exposure;
}

}  // namespace bslrec
