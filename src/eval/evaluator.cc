#include "eval/evaluator.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <span>

#include "math/check.h"
#include "serve/topk_scorer.h"

namespace bslrec {
namespace {

// Users per shard in the parallel per-user loops. Fixed (independent of
// the worker count) so per-shard outputs reduce deterministically; small
// enough that ranking-heavy shards still load-balance.
constexpr size_t kEvalGrain = 8;

}  // namespace

Evaluator::Evaluator(const Dataset& data, uint32_t k,
                     runtime::RuntimeConfig runtime,
                     serve::ScorerOptions scoring)
    : data_(data),
      k_(k),
      scoring_(scoring),
      test_users_(data.TestUsers()),
      owned_pool_(
          std::make_unique<runtime::ThreadPool>(runtime.num_threads)),
      pool_(owned_pool_.get()) {
  BSLREC_CHECK(k > 0);
}

Evaluator::Evaluator(const Dataset& data, uint32_t k,
                     runtime::ThreadPool* pool, serve::ScorerOptions scoring)
    : data_(data),
      k_(k),
      scoring_(scoring),
      test_users_(data.TestUsers()),
      pool_(pool) {
  BSLREC_CHECK(k > 0);
  BSLREC_CHECK(pool != nullptr);
}

namespace {

serve::SnapshotOptions SnapshotOptionsForScoring(
    const serve::ScorerOptions& scoring) {
  serve::SnapshotOptions so;
  so.quantize_items = scoring.quantize;
  so.fp16_items = scoring.fp16;
  so.ivf.build = !scoring.exact;
  return so;
}

}  // namespace

Evaluator::Pass::Pass(const Evaluator& eval, const EmbeddingModel& model)
    : Pass(eval, std::make_shared<const serve::ModelSnapshot>(
                     model, *eval.pool_,
                     SnapshotOptionsForScoring(eval.scoring_))) {}

Evaluator::Pass::Pass(const Evaluator& eval,
                      std::shared_ptr<const serve::ModelSnapshot> snapshot)
    : eval_(eval),
      snapshot_(std::move(snapshot)),
      scratch_(eval.pool_->num_workers()) {
  BSLREC_CHECK(snapshot_ != nullptr);
  BSLREC_CHECK_MSG(snapshot_->num_users() == eval_.data_.num_users() &&
                       snapshot_->num_items() == eval_.data_.num_items(),
                   "snapshot shape does not match the evaluator's dataset");
  BSLREC_CHECK_MSG(
      !eval_.scoring_.quantize || snapshot_->has_quantized_items(),
      "quantized evaluator pass needs a snapshot built with "
      "SnapshotOptions::quantize_items");
  BSLREC_CHECK_MSG(!eval_.scoring_.fp16 || snapshot_->has_fp16_items(),
                   "fp16 evaluator pass needs a snapshot built with "
                   "SnapshotOptions::fp16_items");
  BSLREC_CHECK_MSG(eval_.scoring_.exact || snapshot_->ivf() != nullptr,
                   "approximate (exact = false) evaluator pass needs a "
                   "snapshot built with SnapshotOptions::ivf.build");
  if (eval_.scoring_.exact && !eval_.scoring_.quantize &&
      !eval_.scoring_.fp16) {
    for (WorkerScratch& ws : scratch_) {
      ws.scores.resize(eval_.data_.num_items());
    }
  }
}

void Evaluator::Pass::ScoreUser(uint32_t user, WorkerScratch& ws) {
  serve::ScoreItemRange(*snapshot_, snapshot_->UserVec(user), 0,
                        snapshot_->num_items(), ws.scores.data());
}

namespace {

std::vector<uint32_t> ItemsOf(const std::vector<serve::ScoredItem>& top) {
  std::vector<uint32_t> items(top.size());
  for (size_t i = 0; i < top.size(); ++i) items[i] = top[i].item;
  return items;
}

}  // namespace

std::vector<uint32_t> Evaluator::Pass::RankUser(uint32_t user, uint32_t k,
                                                WorkerScratch& ws) {
  // All non-exact branches run serially per user (the surrounding user
  // loop is the parallel axis), so the approximate metrics are still
  // bit-identical for any worker count.
  if (!eval_.scoring_.exact) {
    // ANN through the snapshot's IVF index: approximate candidate set,
    // exact top-k over it. This is the *approximate evaluation pass* —
    // its metrics measure exactly what ANN serving would ship.
    return ItemsOf(serve::IvfCatalogTopK(
        *snapshot_, snapshot_->UserVec(user), k, eval_.data_.TrainItems(user),
        eval_.scoring_, ws.qscan));
  }
  if (eval_.scoring_.quantize) {
    // Certified two-phase scan — bit-identical to the exact branch.
    return ItemsOf(serve::QuantizedCatalogTopK(
        *snapshot_, snapshot_->UserVec(user), k, eval_.data_.TrainItems(user),
        eval_.scoring_, ws.qscan));
  }
  if (eval_.scoring_.fp16) {
    // Certification-free fp16 scan (approximate candidates, exact
    // scores for what it returns).
    return ItemsOf(serve::F16CatalogTopK(
        *snapshot_, snapshot_->UserVec(user), k, eval_.data_.TrainItems(user),
        eval_.scoring_, ws.qscan));
  }
  ScoreUser(user, ws);
  return eval_.RankTopK(ws.scores, user, k);
}

std::vector<std::vector<uint32_t>> Evaluator::Pass::ComputeRankings(
    uint32_t k) {
  std::vector<std::vector<uint32_t>> rankings(eval_.test_users_.size());
  runtime::ParallelFor(
      *eval_.pool_, 0, eval_.test_users_.size(), kEvalGrain,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t worker) {
        WorkerScratch& ws = scratch_[worker];
        for (size_t t = lo; t < hi; ++t) {
          rankings[t] = RankUser(eval_.test_users_[t], k, ws);
        }
      });
  return rankings;
}

const std::vector<std::vector<uint32_t>>&
Evaluator::Pass::RankingsAtDefaultK() {
  if (!rankings_cached_) {
    rankings_k_ = ComputeRankings(eval_.k_);
    rankings_cached_ = true;
  }
  return rankings_k_;
}

TopKMetrics Evaluator::Pass::MetricsOverRankings(
    const std::vector<std::vector<uint32_t>>& rankings, uint32_t k) {
  // Serial aggregation in test-user order: bit-identical for any worker
  // count (the parallelism lives in the ranking computation). Rankings
  // longer than k are truncated — the sorted lists have the prefix
  // property, so the first k entries of a top-k' list (k <= k') are
  // exactly the top-k ranking.
  TopKMetrics agg;
  for (size_t t = 0; t < rankings.size(); ++t) {
    const auto test_items = eval_.data_.TestItems(eval_.test_users_[t]);
    const std::span<const uint32_t> ranking(
        rankings[t].data(),
        std::min<size_t>(k, rankings[t].size()));
    agg.recall += RecallAtK(ranking, test_items);
    agg.ndcg += NdcgAtK(ranking, test_items, k);
    agg.precision += PrecisionAtK(ranking, test_items, k);
    agg.hit_rate += HitAtK(ranking, test_items);
    ++agg.num_users;
  }
  if (agg.num_users > 0) {
    const double n = static_cast<double>(agg.num_users);
    agg.recall /= n;
    agg.ndcg /= n;
    agg.precision /= n;
    agg.hit_rate /= n;
  }
  return agg;
}

TopKMetrics Evaluator::Pass::Evaluate() { return EvaluateAtK(eval_.k_); }

TopKMetrics Evaluator::Pass::EvaluateAtK(uint32_t k) {
  // Cutoffs <= k() are served from the cached top-k() rankings (prefix
  // property); only larger cutoffs need a fresh scoring pass.
  if (k <= eval_.k_) return MetricsOverRankings(RankingsAtDefaultK(), k);
  return MetricsOverRankings(ComputeRankings(k), k);
}

std::vector<double> Evaluator::Pass::GroupNdcg(uint32_t num_groups) {
  const std::vector<uint32_t> item_group =
      eval_.data_.PopularityGroups(num_groups);
  const std::vector<std::vector<uint32_t>>& rankings = RankingsAtDefaultK();
  std::vector<double> acc(num_groups, 0.0);
  for (size_t t = 0; t < rankings.size(); ++t) {
    const auto test_items = eval_.data_.TestItems(eval_.test_users_[t]);
    AccumulateGroupNdcg(rankings[t], test_items, eval_.k_, item_group, acc);
  }
  if (!rankings.empty()) {
    for (double& x : acc) x /= static_cast<double>(rankings.size());
  }
  return acc;
}

std::vector<uint32_t> Evaluator::Pass::TopKForUser(uint32_t user) {
  return RankUser(user, eval_.k_, scratch_[0]);
}

std::vector<double> Evaluator::Pass::ItemExposure() {
  const std::vector<std::vector<uint32_t>>& rankings = RankingsAtDefaultK();
  std::vector<double> exposure(eval_.data_.num_items(), 0.0);
  for (const std::vector<uint32_t>& ranking : rankings) {
    for (uint32_t item : ranking) exposure[item] += 1.0;
  }
  return exposure;
}

Evaluator::Pass Evaluator::BeginPass(const EmbeddingModel& model) const {
  return Pass(*this, model);
}

Evaluator::Pass Evaluator::BeginPassOn(
    std::shared_ptr<const serve::ModelSnapshot> snapshot) const {
  return Pass(*this, std::move(snapshot));
}

std::vector<uint32_t> Evaluator::RankTopK(const std::vector<float>& scores,
                                          uint32_t user, uint32_t k) const {
  // Candidates exclude the user's train positives entirely: a
  // recommendation list must never contain already-consumed items.
  // Selection and tie-breaking come from the serve core, so evaluator
  // rankings and served responses are the same lists by construction.
  const std::vector<serve::ScoredItem> top = serve::SelectTopK(
      scores.data(), 0, static_cast<uint32_t>(scores.size()), k,
      data_.TrainItems(user));
  std::vector<uint32_t> items(top.size());
  for (size_t i = 0; i < top.size(); ++i) items[i] = top[i].item;
  return items;
}

TopKMetrics Evaluator::Evaluate(const EmbeddingModel& model) const {
  return BeginPass(model).Evaluate();
}

TopKMetrics Evaluator::EvaluateAtK(const EmbeddingModel& model,
                                   uint32_t k) const {
  return BeginPass(model).EvaluateAtK(k);
}

std::vector<double> Evaluator::GroupNdcg(const EmbeddingModel& model,
                                         uint32_t num_groups) const {
  return BeginPass(model).GroupNdcg(num_groups);
}

std::vector<uint32_t> Evaluator::TopKForUser(const EmbeddingModel& model,
                                             uint32_t user) const {
  return BeginPass(model).TopKForUser(user);
}

std::vector<double> Evaluator::ItemExposure(const EmbeddingModel& model) const {
  return BeginPass(model).ItemExposure();
}

}  // namespace bslrec
