// Ranking metrics for top-K recommendation.
//
// All functions take the model's ranked recommendation list (best first,
// train items already excluded) and the user's ground-truth test items
// (sorted ascending). Definitions follow the paper's protocol
// (Recall@20 / NDCG@20 under full ranking):
//
//   Recall@K = |top-K ∩ test| / |test|
//   DCG@K    = sum_{k : item_k in test} 1 / log2(k + 2)        (k 0-based)
//   IDCG@K   = sum_{k < min(K, |test|)} 1 / log2(k + 2)
//   NDCG@K   = DCG@K / IDCG@K
#ifndef BSLREC_EVAL_METRICS_H_
#define BSLREC_EVAL_METRICS_H_

#include <cstdint>
#include <span>
#include <vector>

namespace bslrec {

// Aggregate metrics over a user population at a fixed cutoff K.
struct TopKMetrics {
  double recall = 0.0;
  double ndcg = 0.0;
  double precision = 0.0;
  double hit_rate = 0.0;
  size_t num_users = 0;  // users averaged over
};

// Per-user metric kernels. `ranking` is the top-K list (size <= K is
// allowed when the catalog is small); `test_items` must be sorted.
double RecallAtK(std::span<const uint32_t> ranking,
                 std::span<const uint32_t> test_items);
double DcgAtK(std::span<const uint32_t> ranking,
              std::span<const uint32_t> test_items);
double IdealDcgAtK(size_t num_test_items, size_t k);
double NdcgAtK(std::span<const uint32_t> ranking,
               std::span<const uint32_t> test_items, size_t k);
double PrecisionAtK(std::span<const uint32_t> ranking,
                    std::span<const uint32_t> test_items, size_t k);
double HitAtK(std::span<const uint32_t> ranking,
              std::span<const uint32_t> test_items);

// Mean reciprocal rank: 1/(rank+1) of the first hit, 0 when no hit.
double MrrAtK(std::span<const uint32_t> ranking,
              std::span<const uint32_t> test_items);

// Average precision truncated at K:
//   AP@K = (1/min(K,|test|)) * sum_{hits k} Precision@(k+1).
double AveragePrecisionAtK(std::span<const uint32_t> ranking,
                           std::span<const uint32_t> test_items, size_t k);

// Gini coefficient of a non-negative exposure histogram (0 = perfectly
// equal exposure across items, 1 = all exposure on one item). Used by
// the fairness audits to summarize recommendation concentration.
double GiniCoefficient(std::span<const double> values);

// Per-group DCG decomposition for the fairness analysis (Figs 4a, 5):
// adds 1/log2(rank+2) / IDCG_u to bucket group[item] for every hit, so
// summing the returned vector over groups reproduces the user's NDCG.
void AccumulateGroupNdcg(std::span<const uint32_t> ranking,
                         std::span<const uint32_t> test_items, size_t k,
                         std::span<const uint32_t> item_group,
                         std::span<double> group_acc);

}  // namespace bslrec

#endif  // BSLREC_EVAL_METRICS_H_
