// Overlapped (asynchronous) top-K evaluation.
//
// `AsyncEvaluator` runs full `Evaluator::Pass`es in the background: the
// caller freezes a `serve::ModelSnapshot` on its *own* pool (the cheap,
// parallel copy+normalize step) and hands it to `Submit`; the expensive
// full-catalog ranking then runs on a `runtime::TaskRunner` — a single
// dispatcher thread driving its own private pool — while the caller
// continues (e.g. the trainer starts the next epoch).
//
// Determinism: `Evaluator::Pass` scores through the immutable snapshot
// only, and ranking is thread-count invariant (runtime/thread_pool.h),
// so the metrics a background pass produces are bit-identical to a
// synchronous pass over the same snapshot — regardless of either
// pool's size. Asynchrony moves *when* the numbers are computed, never
// *what* they are.
//
// Ordering and completion: one dispatcher thread executes submissions
// FIFO, so `Join` returns the completed `EvalRecord`s in submission
// order. `Join` blocks for every pass submitted so far and rethrows the
// first background exception. Destruction drains in-flight passes
// ("join on destruction"); their results — and any uncollected errors —
// are discarded.
//
// Thread budget: the runner's pool is sized by
// `runtime::ResolveEvalThreads` (RuntimeConfig::eval_threads; 0 = half
// the training budget — the share/steal policy).
#ifndef BSLREC_EVAL_ASYNC_EVALUATOR_H_
#define BSLREC_EVAL_ASYNC_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "data/dataset.h"
#include "eval/evaluator.h"
#include "runtime/task_runner.h"
#include "serve/model_snapshot.h"

namespace bslrec {

class AsyncEvaluator {
 public:
  // `data` must outlive the evaluator. The background pool is sized
  // from `runtime` via ResolveEvalThreads.
  AsyncEvaluator(const Dataset& data, uint32_t k,
                 runtime::RuntimeConfig runtime = {});
  ~AsyncEvaluator();  // drains in-flight passes, discarding results

  AsyncEvaluator(const AsyncEvaluator&) = delete;
  AsyncEvaluator& operator=(const AsyncEvaluator&) = delete;

  uint32_t k() const { return evaluator_.k(); }
  // Background pool width (for logging/benches).
  size_t num_workers() const;

  // Queues a full evaluation pass over `snapshot`, tagged with `epoch`.
  // The snapshot must already be frozen; Submit never touches the live
  // model, so the caller may resume training immediately.
  void Submit(int epoch, std::shared_ptr<const serve::ModelSnapshot> snapshot);

  // Blocks until every submitted pass has finished; returns their
  // records in submission order (clearing the internal buffer) and
  // rethrows the first background exception.
  std::vector<EvalRecord> Join();

  // Passes submitted but not yet finished.
  size_t pending() const { return runner_.pending(); }

 private:
  // Declared before evaluator_: the evaluator borrows the runner's
  // pool. The destructor drains the runner before members die, so no
  // task can outlive the evaluator it uses.
  runtime::TaskRunner runner_;
  Evaluator evaluator_;

  std::mutex mu_;  // guards done_ (written by the dispatcher thread)
  std::vector<EvalRecord> done_;
};

}  // namespace bslrec

#endif  // BSLREC_EVAL_ASYNC_EVALUATOR_H_
