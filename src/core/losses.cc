#include "core/losses.h"

#include <cmath>

#include "math/check.h"
#include "math/stats.h"
#include "math/vec.h"

namespace bslrec {

namespace {

inline double Sigmoid(double x) {
  // Branch keeps exp() argument non-positive for numerical stability.
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

// log(1 + exp(x)) without overflow.
inline double Softplus(double x) {
  if (x > 0.0) return x + std::log1p(std::exp(-x));
  return std::log1p(std::exp(x));
}

// Shared kernel for the softmax family: computes
//   log sum_j exp(neg[j] / tau)   and   softmax_j(neg / tau)
// writing the softmax weights into `weights`.
double ScaledLogSumExp(std::span<const float> neg_scores, double tau,
                       std::span<float> weights) {
  const size_t n = neg_scores.size();
  BSLREC_CHECK(n > 0 && weights.size() == n);
  double max_s = neg_scores[0];
  for (float s : neg_scores) max_s = std::max(max_s, static_cast<double>(s));
  double sum = 0.0;
  for (size_t j = 0; j < n; ++j) {
    const double e = std::exp((neg_scores[j] - max_s) / tau);
    weights[j] = static_cast<float>(e);
    sum += e;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (size_t j = 0; j < n; ++j) weights[j] *= inv;
  return max_s / tau + std::log(sum);
}

}  // namespace

double MseLoss::Compute(float pos_score, std::span<const float> neg_scores,
                        float* d_pos, std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double n = static_cast<double>(neg_scores.size());
  const double pos_err = static_cast<double>(pos_score) - 1.0;
  double loss = pos_err * pos_err;
  *d_pos = static_cast<float>(2.0 * pos_err);
  for (size_t j = 0; j < neg_scores.size(); ++j) {
    const double s = neg_scores[j];
    loss += negative_weight_ * s * s / n;
    d_neg[j] = static_cast<float>(2.0 * negative_weight_ * s / n);
  }
  return loss;
}

double BceLoss::Compute(float pos_score, std::span<const float> neg_scores,
                        float* d_pos, std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double n = static_cast<double>(neg_scores.size());
  // -log sigma(f+) == softplus(-f+);  d/df+ = sigma(f+) - 1.
  double loss = Softplus(-pos_score);
  *d_pos = static_cast<float>(Sigmoid(pos_score) - 1.0);
  for (size_t j = 0; j < neg_scores.size(); ++j) {
    // -log(1 - sigma(f-)) == softplus(f-);  d/df- = sigma(f-).
    loss += negative_weight_ * Softplus(neg_scores[j]) / n;
    d_neg[j] =
        static_cast<float>(negative_weight_ * Sigmoid(neg_scores[j]) / n);
  }
  return loss;
}

double BprLoss::Compute(float pos_score, std::span<const float> neg_scores,
                        float* d_pos, std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double n = static_cast<double>(neg_scores.size());
  double loss = 0.0;
  double d_pos_acc = 0.0;
  for (size_t j = 0; j < neg_scores.size(); ++j) {
    const double x = static_cast<double>(pos_score) - neg_scores[j];
    loss += Softplus(-x) / n;  // -log sigma(x)
    const double g = (Sigmoid(x) - 1.0) / n;
    d_pos_acc += g;
    d_neg[j] = static_cast<float>(-g);
  }
  *d_pos = static_cast<float>(d_pos_acc);
  return loss;
}

SoftmaxLoss::SoftmaxLoss(double tau) : tau_(tau) {
  BSLREC_CHECK_MSG(tau > 0.0, "SL temperature must be positive");
}

double SoftmaxLoss::Compute(float pos_score,
                            std::span<const float> neg_scores, float* d_pos,
                            std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double lse = ScaledLogSumExp(neg_scores, tau_, d_neg);
  const double loss = -static_cast<double>(pos_score) / tau_ + lse;
  *d_pos = static_cast<float>(-1.0 / tau_);
  const float scale = static_cast<float>(1.0 / tau_);
  for (size_t j = 0; j < d_neg.size(); ++j) d_neg[j] *= scale;
  return loss;
}

FullSoftmaxLoss::FullSoftmaxLoss(double tau) : tau_(tau) {
  BSLREC_CHECK_MSG(tau > 0.0, "SL-full temperature must be positive");
}

double FullSoftmaxLoss::Compute(float pos_score,
                                std::span<const float> neg_scores,
                                float* d_pos, std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  // Stable softmax over {pos} ∪ negatives.
  double max_s = pos_score;
  for (float s : neg_scores) max_s = std::max(max_s, static_cast<double>(s));
  const double e_pos = std::exp((pos_score - max_s) / tau_);
  double z = e_pos;
  for (size_t j = 0; j < neg_scores.size(); ++j) {
    const double e = std::exp((neg_scores[j] - max_s) / tau_);
    d_neg[j] = static_cast<float>(e);
    z += e;
  }
  const double p_pos = e_pos / z;
  *d_pos = static_cast<float>((p_pos - 1.0) / tau_);
  const float scale = static_cast<float>(1.0 / (z * tau_));
  for (size_t j = 0; j < d_neg.size(); ++j) d_neg[j] *= scale;
  return -std::log(std::max(p_pos, 1e-300));
}

BilateralSoftmaxLoss::BilateralSoftmaxLoss(double tau1, double tau2)
    : tau1_(tau1), tau2_(tau2) {
  BSLREC_CHECK_MSG(tau1 > 0.0 && tau2 > 0.0,
                   "BSL temperatures must be positive");
}

double BilateralSoftmaxLoss::Compute(float pos_score,
                                     std::span<const float> neg_scores,
                                     float* d_pos,
                                     std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double ratio = tau1_ / tau2_;
  const double lse = ScaledLogSumExp(neg_scores, tau2_, d_neg);
  const double loss = -static_cast<double>(pos_score) / tau1_ + ratio * lse;
  *d_pos = static_cast<float>(-1.0 / tau1_);
  const float scale = static_cast<float>(ratio / tau2_);
  for (size_t j = 0; j < d_neg.size(); ++j) d_neg[j] *= scale;
  return loss;
}

GroupedBslLoss::GroupedBslLoss(double tau1, double tau2)
    : tau1_(tau1), tau2_(tau2) {
  BSLREC_CHECK(tau1 > 0.0 && tau2 > 0.0);
}

double GroupedBslLoss::Compute(std::span<const float> pos_scores,
                               std::span<const float> neg_scores,
                               std::span<float> d_pos,
                               std::span<float> d_neg) const {
  BSLREC_CHECK(d_pos.size() == pos_scores.size());
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  BSLREC_CHECK(!pos_scores.empty() && !neg_scores.empty());
  // Positive part: -tau1 * log mean_i exp(f+_i / tau1).
  const double pos_lse = ScaledLogSumExp(pos_scores, tau1_, d_pos);
  const double pos_part =
      -tau1_ * (pos_lse - std::log(static_cast<double>(pos_scores.size())));
  // d/df+_k = -softmax_k(f+/tau1)  (the log-mean offset has zero gradient).
  for (size_t k = 0; k < d_pos.size(); ++k) d_pos[k] = -d_pos[k];
  // Negative part: tau2 * log mean_j exp(f-_j / tau2).
  const double neg_lse = ScaledLogSumExp(neg_scores, tau2_, d_neg);
  const double neg_part =
      tau2_ * (neg_lse - std::log(static_cast<double>(neg_scores.size())));
  return pos_part + neg_part;
}

double CmlLoss::Compute(float pos_score, std::span<const float> neg_scores,
                        float* d_pos, std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double n = static_cast<double>(neg_scores.size());
  double loss = 0.0;
  double d_pos_acc = 0.0;
  for (size_t j = 0; j < neg_scores.size(); ++j) {
    const double h =
        margin_ - 2.0 * static_cast<double>(pos_score) + 2.0 * neg_scores[j];
    if (h > 0.0) {
      loss += h / n;
      d_pos_acc += -2.0 / n;
      d_neg[j] = static_cast<float>(2.0 / n);
    } else {
      d_neg[j] = 0.0f;
    }
  }
  *d_pos = static_cast<float>(d_pos_acc);
  return loss;
}

double CclLoss::Compute(float pos_score, std::span<const float> neg_scores,
                        float* d_pos, std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double n = static_cast<double>(neg_scores.size());
  double loss = 1.0 - static_cast<double>(pos_score);
  *d_pos = -1.0f;
  for (size_t j = 0; j < neg_scores.size(); ++j) {
    const double h = static_cast<double>(neg_scores[j]) - margin_;
    if (h > 0.0) {
      loss += negative_weight_ * h / n;
      d_neg[j] = static_cast<float>(negative_weight_ / n);
    } else {
      d_neg[j] = 0.0f;
    }
  }
  return loss;
}

SoftmaxNoVarianceLoss::SoftmaxNoVarianceLoss(double tau) : tau_(tau) {
  BSLREC_CHECK(tau > 0.0);
}

double SoftmaxNoVarianceLoss::Compute(float pos_score,
                                      std::span<const float> neg_scores,
                                      float* d_pos,
                                      std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double n = static_cast<double>(neg_scores.size());
  double mean_neg = 0.0;
  for (float s : neg_scores) mean_neg += s;
  mean_neg /= n;
  *d_pos = static_cast<float>(-1.0 / tau_);
  const float g = static_cast<float>(1.0 / (n * tau_));
  for (size_t j = 0; j < d_neg.size(); ++j) d_neg[j] = g;
  return (-static_cast<double>(pos_score) + mean_neg) / tau_;
}

VarianceAugmentedMeanLoss::VarianceAugmentedMeanLoss(double tau) : tau_(tau) {
  BSLREC_CHECK(tau > 0.0);
}

double VarianceAugmentedMeanLoss::Compute(float pos_score,
                                          std::span<const float> neg_scores,
                                          float* d_pos,
                                          std::span<float> d_neg) const {
  BSLREC_CHECK(d_neg.size() == neg_scores.size());
  const double n = static_cast<double>(neg_scores.size());
  double mean_neg = 0.0;
  for (float s : neg_scores) mean_neg += s;
  mean_neg /= n;
  double var = 0.0;
  for (float s : neg_scores) {
    const double d = s - mean_neg;
    var += d * d;
  }
  var /= n;
  const double loss =
      (-static_cast<double>(pos_score) + mean_neg + var / (2.0 * tau_)) / tau_;
  *d_pos = static_cast<float>(-1.0 / tau_);
  for (size_t j = 0; j < d_neg.size(); ++j) {
    // d/df_j of mean: 1/n; of var: 2 (f_j - mean)/n.
    const double g =
        (1.0 / n + (neg_scores[j] - mean_neg) / (n * tau_)) / tau_;
    d_neg[j] = static_cast<float>(g);
  }
  return loss;
}

std::unique_ptr<LossFunction> CreateLoss(LossKind kind,
                                         const LossParams& params) {
  switch (kind) {
    case LossKind::kMse:
      return std::make_unique<MseLoss>(params.negative_weight);
    case LossKind::kBce:
      return std::make_unique<BceLoss>(params.negative_weight);
    case LossKind::kBpr:
      return std::make_unique<BprLoss>();
    case LossKind::kSoftmax:
      return std::make_unique<SoftmaxLoss>(params.tau);
    case LossKind::kFullSoftmax:
      return std::make_unique<FullSoftmaxLoss>(params.tau);
    case LossKind::kBsl:
      return std::make_unique<BilateralSoftmaxLoss>(params.tau1, params.tau);
    case LossKind::kCml:
      return std::make_unique<CmlLoss>(params.margin);
    case LossKind::kCcl:
      return std::make_unique<CclLoss>(params.margin,
                                       params.negative_weight);
    case LossKind::kSoftmaxNoVariance:
      return std::make_unique<SoftmaxNoVarianceLoss>(params.tau);
    case LossKind::kVarianceAugmentedMean:
      return std::make_unique<VarianceAugmentedMeanLoss>(params.tau);
  }
  BSLREC_CHECK_MSG(false, "unknown LossKind");
  return nullptr;
}

std::string_view LossKindName(LossKind kind) {
  switch (kind) {
    case LossKind::kMse:
      return "MSE";
    case LossKind::kBce:
      return "BCE";
    case LossKind::kBpr:
      return "BPR";
    case LossKind::kSoftmax:
      return "SL";
    case LossKind::kFullSoftmax:
      return "SL-full";
    case LossKind::kBsl:
      return "BSL";
    case LossKind::kCml:
      return "CML";
    case LossKind::kCcl:
      return "CCL";
    case LossKind::kSoftmaxNoVariance:
      return "SL-noVar";
    case LossKind::kVarianceAugmentedMean:
      return "SL-meanVar";
  }
  return "?";
}

std::optional<LossKind> ParseLossKind(std::string_view name) {
  if (name == "MSE") return LossKind::kMse;
  if (name == "BCE") return LossKind::kBce;
  if (name == "BPR") return LossKind::kBpr;
  if (name == "SL") return LossKind::kSoftmax;
  if (name == "SL-full") return LossKind::kFullSoftmax;
  if (name == "BSL") return LossKind::kBsl;
  if (name == "CML") return LossKind::kCml;
  if (name == "CCL") return LossKind::kCcl;
  if (name == "SL-noVar") return LossKind::kSoftmaxNoVariance;
  if (name == "SL-meanVar") return LossKind::kVarianceAugmentedMean;
  return std::nullopt;
}

}  // namespace bslrec
