#include "core/dro.h"

#include <algorithm>
#include <cmath>

#include "math/check.h"

namespace bslrec::dro {

std::vector<double> WorstCaseWeights(std::span<const float> scores,
                                     double tau) {
  BSLREC_CHECK(!scores.empty() && tau > 0.0);
  double max_s = scores[0];
  for (float s : scores) max_s = std::max(max_s, static_cast<double>(s));
  std::vector<double> w(scores.size());
  double sum = 0.0;
  for (size_t j = 0; j < scores.size(); ++j) {
    w[j] = std::exp((scores[j] - max_s) / tau);
    sum += w[j];
  }
  for (double& x : w) x /= sum;
  return w;
}

double EmpiricalEta(std::span<const float> scores, double tau) {
  const std::vector<double> w = WorstCaseWeights(scores, tau);
  const double n = static_cast<double>(scores.size());
  // KL(P* || Uniform) = sum_j w_j log(w_j * n).
  double kl = 0.0;
  for (double x : w) {
    if (x > 0.0) kl += x * std::log(x * n);
  }
  return std::max(0.0, kl);
}

double NegativeObjective(std::span<const float> scores, double tau) {
  BSLREC_CHECK(!scores.empty() && tau > 0.0);
  double max_s = scores[0];
  for (float s : scores) max_s = std::max(max_s, static_cast<double>(s));
  double sum = 0.0;
  for (float s : scores) sum += std::exp((s - max_s) / tau);
  return max_s + tau * std::log(sum / static_cast<double>(scores.size()));
}

double TiltedExpectation(std::span<const float> scores,
                         std::span<const double> weights) {
  BSLREC_CHECK(scores.size() == weights.size());
  double e = 0.0;
  for (size_t j = 0; j < scores.size(); ++j) e += weights[j] * scores[j];
  return e;
}

double TaylorNegativeApprox(std::span<const float> scores, double tau) {
  BSLREC_CHECK(!scores.empty() && tau > 0.0);
  const double n = static_cast<double>(scores.size());
  double mean = 0.0;
  for (float s : scores) mean += s;
  mean /= n;
  double var = 0.0;
  for (float s : scores) {
    const double d = s - mean;
    var += d * d;
  }
  var /= n;
  return mean + var / (2.0 * tau);
}

double OptimalTau(double score_variance, double eta) {
  BSLREC_CHECK(score_variance >= 0.0 && eta > 0.0);
  return std::sqrt(score_variance / (2.0 * eta));
}

std::vector<double> SolveWorstCase(std::span<const float> scores, double eta,
                                   double* solved_tau) {
  BSLREC_CHECK(!scores.empty() && eta >= 0.0);
  // KL(tilt(tau)) is continuous and monotone non-increasing in tau:
  // tau -> infinity gives the uniform base (KL 0), tau -> 0 a point mass
  // (max KL = log n for distinct scores). Bisect for KL(tau) == eta.
  double lo = 1e-4, hi = 1e4;
  if (EmpiricalEta(scores, lo) <= eta) {
    // Even the sharpest probed tilt stays inside the ball.
    if (solved_tau != nullptr) *solved_tau = lo;
    return WorstCaseWeights(scores, lo);
  }
  if (EmpiricalEta(scores, hi) >= eta) {
    if (solved_tau != nullptr) *solved_tau = hi;
    return WorstCaseWeights(scores, hi);
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (EmpiricalEta(scores, mid) > eta) {
      lo = mid;  // too sharp, raise tau
    } else {
      hi = mid;
    }
  }
  const double tau = std::sqrt(lo * hi);
  if (solved_tau != nullptr) *solved_tau = tau;
  return WorstCaseWeights(scores, tau);
}

}  // namespace bslrec::dro
