// Distributionally Robust Optimization view of the softmax loss.
//
// The paper's theoretical contribution (Section III) is the equivalence
//
//   tau * log E_{j~P-}[ exp(f_j / tau) ]
//     ==  max_{P : KL(P || P-) <= eta}  E_{j~P}[ f_j ] - tau * eta*  (Lemma 1)
//
// with the inner maximum attained by the exponentially tilted ("worst
// case") distribution  P*(j) proportional to P-(j) * exp(f_j / tau), and
// eta* = KL(P* || P-). This module computes every quantity in that
// statement on an empirical sample of negative scores so the lemma, the
// Lemma-2 variance expansion and the Corollary III.1 temperature rule can
// be verified numerically and visualized (Figs 2, 3b, 4b).
#ifndef BSLREC_CORE_DRO_H_
#define BSLREC_CORE_DRO_H_

#include <span>
#include <vector>

namespace bslrec::dro {

// Worst-case (exponentially tilted) distribution over the sampled
// negatives: weights[j] proportional to exp(scores[j]/tau), normalized to
// sum 1 (uniform base distribution P- over the sample). This is the
// P*(j) plotted against scores in Figure 4b.
std::vector<double> WorstCaseWeights(std::span<const float> scores,
                                     double tau);

// Empirical robustness radius eta(tau) = KL(P* || Uniform) realized by the
// tilt at temperature tau (Figure 3b reports its distribution).
double EmpiricalEta(std::span<const float> scores, double tau);

// The negative-side SL objective  tau * log mean_j exp(scores[j]/tau)
// (log-mean form so the value is comparable across sample sizes).
double NegativeObjective(std::span<const float> scores, double tau);

// E_{j~P}[ f_j ] for an explicit distribution P over the sample.
double TiltedExpectation(std::span<const float> scores,
                         std::span<const double> weights);

// Lemma 2 second-order approximation of NegativeObjective:
//   mean(scores) + Var(scores) / (2 tau).
double TaylorNegativeApprox(std::span<const float> scores, double tau);

// Corollary III.1: tau* ~= sqrt( Var[f] / (2 eta) ).
double OptimalTau(double score_variance, double eta);

// Solves the primal DRO problem
//   max_P { E_P[f] : KL(P || Uniform) <= eta }
// by bisection on the tilt temperature (KL of the tilt is monotone
// decreasing in tau). Returns the maximizing distribution; *solved_tau
// (optional) receives the tau whose tilt realizes the radius. If every
// tilt's KL stays below eta (scores nearly constant), the point-mass
// limit is approached and the smallest probed tau is returned.
std::vector<double> SolveWorstCase(std::span<const float> scores, double eta,
                                   double* solved_tau = nullptr);

}  // namespace bslrec::dro

#endif  // BSLREC_CORE_DRO_H_
