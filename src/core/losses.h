// Loss functions for collaborative filtering with implicit feedback.
//
// This module is the paper's subject matter. Every loss maps per-sample
// model scores to a scalar loss plus analytic gradients with respect to
// those scores; the trainer chains them through the cosine-similarity
// scoring head into the embeddings. Scores are cosine similarities in
// [-1, 1] (paper Appendix, Table V).
//
// A sample is one (user, positive item, N- sampled negative items) tuple,
// matching the paper's "Negative Sampling" training mode (Algorithm 1).
//
// Implemented losses, with the paper's taxonomy (Section II-A):
//   Pointwise : MseLoss, BceLoss                         (Eq. 1-2)
//   Pairwise  : BprLoss                                  (Eq. 3)
//   Softmax   : SoftmaxLoss (SL)                         (Eq. 4-5)
//   Bilateral : BilateralSoftmaxLoss (BSL)               (Eq. 18, Alg. 1-2)
//   Baselines : CmlLoss (hinge metric), CclLoss (SimpleX cosine contrastive)
//   Ablations : SoftmaxNoVarianceLoss  ("w/o variance", Fig. 5)
//               VarianceAugmentedMeanLoss (explicit Lemma-2 second-order
//               surrogate; verifies the DRO variance story numerically)
//
// BSL per-sample form follows the paper's pseudocode exactly:
//     L = -f+/tau1 + (tau1/tau2) * log sum_j exp(f-_j / tau2)
// and reduces to SL when tau1 == tau2. The literal Eq. (18) grouped form
// (Log-Expectation-Exp over several positives of one user) is exposed as
// GroupedBslLoss for analysis and property tests.
#ifndef BSLREC_CORE_LOSSES_H_
#define BSLREC_CORE_LOSSES_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bslrec {

// Interface: per-sample loss over (one positive score, N- negative scores).
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  // Human-readable loss name, e.g. "SL" or "BSL".
  virtual std::string_view name() const = 0;

  // Computes the per-sample loss. Writes dL/df+ into *d_pos and dL/df-_j
  // into d_neg[j] (d_neg.size() must equal neg_scores.size(); it is
  // overwritten). Returns the loss value.
  virtual double Compute(float pos_score, std::span<const float> neg_scores,
                         float* d_pos, std::span<float> d_neg) const = 0;
};

// Pointwise MSE (Eq. 2): (f+ - 1)^2 + c * mean_j (f-_j)^2.
class MseLoss : public LossFunction {
 public:
  explicit MseLoss(double negative_weight = 1.0)
      : negative_weight_(negative_weight) {}
  std::string_view name() const override { return "MSE"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

 private:
  double negative_weight_;  // the paper's c balancing coefficient
};

// Pointwise binary cross-entropy (Eq. 2):
//   -log sigma(f+) - c * mean_j log(1 - sigma(f-_j)).
class BceLoss : public LossFunction {
 public:
  explicit BceLoss(double negative_weight = 1.0)
      : negative_weight_(negative_weight) {}
  std::string_view name() const override { return "BCE"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

 private:
  double negative_weight_;
};

// Pairwise BPR (Eq. 3): mean_j -log sigma(f+ - f-_j).
class BprLoss : public LossFunction {
 public:
  std::string_view name() const override { return "BPR"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;
};

// Softmax loss / sampled softmax (Eq. 4 with the positive term dropped
// from the denominator, as the paper does):
//   L = -f+/tau + log sum_j exp(f-_j / tau).
class SoftmaxLoss : public LossFunction {
 public:
  explicit SoftmaxLoss(double tau);
  std::string_view name() const override { return "SL"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

  double tau() const { return tau_; }

 private:
  double tau_;
};

// Footnote-1 variant: the positive term kept inside the denominator,
//   L = -log( exp(f+/tau) / (exp(f+/tau) + sum_j exp(f-_j/tau)) ).
// The paper drops it (following Decoupled Contrastive Learning) because
// it contributes negligibly for large N- and removing it slightly boosts
// embedding uniformity; this class exists so that choice is testable
// (ablation_decoupled_softmax bench).
class FullSoftmaxLoss : public LossFunction {
 public:
  explicit FullSoftmaxLoss(double tau);
  std::string_view name() const override { return "SL-full"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

  double tau() const { return tau_; }

 private:
  double tau_;
};

// Bilateral Softmax Loss (the paper's contribution; Algorithms 1-2):
//   L = -f+/tau1 + (tau1/tau2) * log sum_j exp(f-_j / tau2).
// tau1 == tau2 recovers SoftmaxLoss exactly.
class BilateralSoftmaxLoss : public LossFunction {
 public:
  BilateralSoftmaxLoss(double tau1, double tau2);
  std::string_view name() const override { return "BSL"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

  double tau1() const { return tau1_; }
  double tau2() const { return tau2_; }

 private:
  double tau1_;
  double tau2_;
};

// Literal Eq. (18): both sides carry the Log-Expectation-Exp structure
// over a *group* of positives and negatives of the same user:
//   L = -tau1 * log mean_i exp(f+_i/tau1) + tau2 * log mean_j exp(f-_j/tau2)
// The positive-side softmax down-weights low-scoring (likely noisy)
// positives — the bilateral robustness mechanism in its purest form.
class GroupedBslLoss {
 public:
  GroupedBslLoss(double tau1, double tau2);

  // d_pos / d_neg must match the score span sizes; both are overwritten.
  double Compute(std::span<const float> pos_scores,
                 std::span<const float> neg_scores, std::span<float> d_pos,
                 std::span<float> d_neg) const;

  double tau1() const { return tau1_; }
  double tau2() const { return tau2_; }

 private:
  double tau1_;
  double tau2_;
};

// Collaborative Metric Learning (Hsieh et al., WWW'17) hinge loss, written
// on cosine scores via d^2 = 2 - 2f for unit embeddings:
//   L = mean_j max(0, margin - 2 f+ + 2 f-_j).
class CmlLoss : public LossFunction {
 public:
  explicit CmlLoss(double margin = 0.5) : margin_(margin) {}
  std::string_view name() const override { return "CML"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

 private:
  double margin_;
};

// Cosine Contrastive Loss (SimpleX, CIKM'21):
//   L = (1 - f+) + (w / N-) * sum_j max(0, f-_j - margin).
class CclLoss : public LossFunction {
 public:
  CclLoss(double margin, double negative_weight)
      : margin_(margin), negative_weight_(negative_weight) {}
  std::string_view name() const override { return "CCL"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

 private:
  double margin_;
  double negative_weight_;
};

// Ablation for Fig. 5: SL with the (implicit) variance penalty removed.
// By Lemma 2,  tau * log E exp(f/tau) ~= E[f] + V[f]/(2 tau); dropping the
// variance term leaves the mean-field loss
//   L = ( -f+ + mean_j f-_j ) / tau.
class SoftmaxNoVarianceLoss : public LossFunction {
 public:
  explicit SoftmaxNoVarianceLoss(double tau);
  std::string_view name() const override { return "SL-noVar"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

 private:
  double tau_;
};

// Lemma-2 second-order surrogate with the variance term kept explicitly:
//   L = ( -f+ + mean_j f-_j + Var_j[f-]/(2 tau) ) / tau.
// Matches SoftmaxLoss up to O(1/tau^2) — verified by property tests.
class VarianceAugmentedMeanLoss : public LossFunction {
 public:
  explicit VarianceAugmentedMeanLoss(double tau);
  std::string_view name() const override { return "SL-meanVar"; }
  double Compute(float pos_score, std::span<const float> neg_scores,
                 float* d_pos, std::span<float> d_neg) const override;

 private:
  double tau_;
};

// Loss registry for experiment drivers.
enum class LossKind {
  kMse,
  kBce,
  kBpr,
  kSoftmax,
  kFullSoftmax,
  kBsl,
  kCml,
  kCcl,
  kSoftmaxNoVariance,
  kVarianceAugmentedMean,
};

struct LossParams {
  double tau = 0.10;              // SL temperature / BSL tau2
  double tau1 = 0.10;             // BSL positive temperature
  double negative_weight = 1.0;   // pointwise c / CCL w
  double margin = 0.5;            // CML / CCL margin
};

// Instantiates a loss by kind. Never returns null.
std::unique_ptr<LossFunction> CreateLoss(LossKind kind,
                                         const LossParams& params);

// Name <-> kind helpers for harness command lines and table headers.
std::string_view LossKindName(LossKind kind);
std::optional<LossKind> ParseLossKind(std::string_view name);

}  // namespace bslrec

#endif  // BSLREC_CORE_LOSSES_H_
