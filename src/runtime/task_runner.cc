#include "runtime/task_runner.h"

#include <utility>

#include "math/check.h"

namespace bslrec::runtime {

TaskRunner::TaskRunner(size_t num_threads)
    : pool_(num_threads), dispatcher_([this] { DispatchLoop(); }) {}

TaskRunner::~TaskRunner() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  dispatcher_.join();  // DispatchLoop exits only once the queue is empty
}

void TaskRunner::Submit(std::function<void()> task) {
  BSLREC_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    BSLREC_CHECK_MSG(!shutdown_, "Submit on a destroyed TaskRunner");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void TaskRunner::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

size_t TaskRunner::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return in_flight_;
}

void TaskRunner::DispatchLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      task_cv_.wait(lk, [&] { return shutdown_ || !queue_.empty(); });
      // Shutdown drains: keep executing while tasks remain.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace bslrec::runtime
