// Execution-runtime configuration.
//
// Every parallel section in the library (trainer batches, evaluator
// ranking, benches) is driven by a `ThreadPool` sized from this config.
// The contract — enforced by the deterministic sharding in
// runtime/thread_pool.h — is that *results never depend on the worker
// count*: `num_threads = 8` produces bit-identical training histories and
// metrics to `num_threads = 1`, only faster.
#ifndef BSLREC_RUNTIME_RUNTIME_CONFIG_H_
#define BSLREC_RUNTIME_RUNTIME_CONFIG_H_

#include <cstddef>

namespace bslrec::runtime {

struct RuntimeConfig {
  // Worker count for parallel sections, including the calling thread.
  // 0 = one worker per hardware thread (std::thread::hardware_concurrency);
  // 1 = fully serial execution on the calling thread (no threads spawned).
  size_t num_threads = 0;

  // Worker count for the *background* evaluation pool when asynchronous
  // evaluation is enabled (runtime::TaskRunner + AsyncEvaluator). The
  // overlapped pass runs on its own pool so the trainer keeps its full
  // `num_threads` budget; the two pools timeshare the machine through
  // the OS scheduler. 0 = share/steal policy: the eval pool is sized to
  // half the resolved training worker count (at least 1), so an
  // overlapped pass mostly soaks up the cycles the trainer's serial
  // sections (optimizer step, shard reduction) leave idle instead of
  // doubling the thread count. Results never depend on this value —
  // evaluation is thread-count invariant — so the knob is purely about
  // wall time.
  size_t eval_threads = 0;
};

// Hard ceiling on the worker count. Requests beyond it (including
// negative values laundered through size_t) are clamped; a pool this
// wide is never useful for our workloads and an unchecked request
// would try to spawn it.
inline constexpr size_t kMaxThreads = 1024;

// Resolves a requested worker count: returns `requested` clamped to
// [1, kMaxThreads], or the hardware concurrency (at least 1) when
// `requested` is 0.
size_t ResolveNumThreads(size_t requested);

// Resolves the background evaluation pool's worker count:
// `config.eval_threads` clamped to [1, kMaxThreads] when non-zero,
// otherwise half of ResolveNumThreads(config.num_threads), at least 1
// (the share/steal policy documented on RuntimeConfig::eval_threads).
size_t ResolveEvalThreads(const RuntimeConfig& config);

}  // namespace bslrec::runtime

#endif  // BSLREC_RUNTIME_RUNTIME_CONFIG_H_
