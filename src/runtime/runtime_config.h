// Execution-runtime configuration.
//
// Every parallel section in the library (trainer batches, evaluator
// ranking, benches) is driven by a `ThreadPool` sized from this config.
// The contract — enforced by the deterministic sharding in
// runtime/thread_pool.h — is that *results never depend on the worker
// count*: `num_threads = 8` produces bit-identical training histories and
// metrics to `num_threads = 1`, only faster.
#ifndef BSLREC_RUNTIME_RUNTIME_CONFIG_H_
#define BSLREC_RUNTIME_RUNTIME_CONFIG_H_

#include <cstddef>

namespace bslrec::runtime {

struct RuntimeConfig {
  // Worker count for parallel sections, including the calling thread.
  // 0 = one worker per hardware thread (std::thread::hardware_concurrency);
  // 1 = fully serial execution on the calling thread (no threads spawned).
  size_t num_threads = 0;
};

// Hard ceiling on the worker count. Requests beyond it (including
// negative values laundered through size_t) are clamped; a pool this
// wide is never useful for our workloads and an unchecked request
// would try to spawn it.
inline constexpr size_t kMaxThreads = 1024;

// Resolves a requested worker count: returns `requested` clamped to
// [1, kMaxThreads], or the hardware concurrency (at least 1) when
// `requested` is 0.
size_t ResolveNumThreads(size_t requested);

}  // namespace bslrec::runtime

#endif  // BSLREC_RUNTIME_RUNTIME_CONFIG_H_
