// Single background worker that owns its own ThreadPool.
//
// The pool contract (thread_pool.h) allows exactly one driver at a time
// and forbids nested Run — which rules out handing long-running work
// (like a full evaluation pass) to the *same* pool the caller is still
// driving. `TaskRunner` is the escape hatch for overlapping such work
// with the caller's own parallel sections: it owns a private pool plus
// one dispatcher thread, and runs submitted tasks on that thread, one
// at a time, in submission order (FIFO).
//
// Driver discipline
//   * The dispatcher thread is the *only* thread that ever drives
//     `pool()`: a task may call `ParallelFor(runner.pool(), ...)`
//     freely, because by construction no other task — and never the
//     submitting thread — is inside a `Run` on that pool at the same
//     time. Nothing outside a submitted task may touch `pool()`.
//   * Tasks on one runner never overlap each other, so they may share
//     state (e.g. an Evaluator's per-worker scratch) without locking;
//     only state shared with the *submitting* thread needs
//     synchronization. Submission and completion are synchronized
//     through the runner's internal mutex, so everything written before
//     `Submit` happens-before the task, and everything the task writes
//     happens-before `Drain` returning.
//
// Completion and errors
//   * `Drain()` blocks until every task submitted so far has finished
//     and rethrows the first exception any of them raised (the error is
//     cleared; later tasks still ran).
//   * The destructor drains the queue — every submitted task runs to
//     completion before the runner dies ("join on destruction").
//     Exceptions that nobody collected via `Drain` are swallowed there;
//     drain explicitly if you need to observe them.
#ifndef BSLREC_RUNTIME_TASK_RUNNER_H_
#define BSLREC_RUNTIME_TASK_RUNNER_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

#include "runtime/thread_pool.h"

namespace bslrec::runtime {

class TaskRunner {
 public:
  // `num_threads` sizes the runner's private pool (resolved like
  // ThreadPool: 0 = hardware concurrency, 1 = inline). The dispatcher
  // thread itself is extra — it participates in the pool as worker 0
  // while executing a task's parallel sections.
  explicit TaskRunner(size_t num_threads = 1);
  // Drains the queue (all submitted tasks run), then joins the
  // dispatcher. Uncollected task errors are swallowed.
  ~TaskRunner();

  TaskRunner(const TaskRunner&) = delete;
  TaskRunner& operator=(const TaskRunner&) = delete;

  // The runner's private pool. Must only be driven from inside a
  // submitted task (see the driver discipline above).
  ThreadPool& pool() { return pool_; }
  const ThreadPool& pool() const { return pool_; }

  // Enqueues `task` to run on the dispatcher thread after every
  // previously submitted task has finished.
  void Submit(std::function<void()> task);

  // Blocks until all tasks submitted so far have finished; rethrows the
  // first captured task exception, clearing it.
  void Drain();

  // Tasks submitted but not yet finished (queued + running).
  size_t pending() const;

 private:
  void DispatchLoop();

  ThreadPool pool_;  // constructed (and destroyed) around the dispatcher

  mutable std::mutex mu_;
  std::condition_variable task_cv_;  // signals dispatcher: work / shutdown
  std::condition_variable idle_cv_;  // signals Drain: queue fully drained
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  std::exception_ptr first_error_;
  bool shutdown_ = false;

  std::thread dispatcher_;  // last member: starts after state is ready
};

}  // namespace bslrec::runtime

#endif  // BSLREC_RUNTIME_TASK_RUNNER_H_
