// Reusable worker pool and deterministic parallel-for.
//
// ============================ Design notes ============================
//
// The pool is the library's single parallel-execution primitive. It is
// built for *deterministic* data parallelism: heavy loops are split into
// fixed-size shards and the shards — not the threads — are the unit of
// work, so the numeric result of a parallel section is a pure function
// of the input and the shard grain, never of the worker count or of OS
// scheduling.
//
// Threading contract
//   * A `ThreadPool(n)` owns `n - 1` background threads; the thread that
//     calls `Run` always participates as worker 0, so `n = 1` spawns no
//     threads at all and executes every task inline on the caller.
//   * `Run(num_tasks, fn)` invokes `fn(task, worker)` for every task
//     index in [0, num_tasks) exactly once and blocks until all calls
//     have returned. Tasks are claimed from a shared atomic counter, so
//     any worker may execute any task.
//   * A pool must be driven from one thread at a time: concurrent `Run`
//     calls on the same pool are not supported. Nested `Run` from inside
//     a task deadlocks — don't.
//   * If a task throws, the first exception is captured and rethrown
//     from `Run` on the calling thread; remaining unclaimed tasks may be
//     skipped. (Library code itself aborts on programmer error via
//     BSLREC_CHECK and never throws; this path exists so user-supplied
//     callbacks fail loudly instead of terminating a worker.)
//
// Determinism guarantee (how callers get bit-identical results)
//   * `ParallelFor(pool, begin, end, grain, fn)` splits [begin, end)
//     into ceil((end-begin)/grain) contiguous shards of `grain`
//     iterations each. The shard boundaries depend only on (begin, end,
//     grain) — never on the worker count.
//   * Callers keep *per-worker scratch* (indexed by the `worker` id) for
//     temporaries, but emit results into *per-shard* output slots
//     (indexed by the `shard` id). After the loop, the caller reduces
//     the shard outputs serially in shard order. Since every shard's
//     output is computed by identical floating-point operations in
//     iteration order, and the reduction order is fixed, the final
//     result is bit-identical for any `num_threads` — including 1.
//   * The trainer (sharded gradient buffers), the evaluator (per-user
//     metric slots) and the benches all follow this pattern; new
//     subsystems (sharding, batching, async pipelines) should too.
//
// How to pin the worker count
//   * `RuntimeConfig{.num_threads = N}` threads through `TrainConfig`,
//     the `Evaluator` constructor and `tools/bslrec_train --threads=N`.
//     0 means "one worker per hardware thread"; 1 means serial.
// ======================================================================
#ifndef BSLREC_RUNTIME_THREAD_POOL_H_
#define BSLREC_RUNTIME_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/runtime_config.h"

namespace bslrec::runtime {

class ThreadPool {
 public:
  // Creates a pool with `ResolveNumThreads(num_threads)` workers in
  // total (the calling thread counts as one).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total worker count, including the calling thread. Always >= 1.
  size_t num_workers() const { return workers_.size() + 1; }

  // Runs fn(task, worker) for every task in [0, num_tasks); blocks until
  // done. `worker` is in [0, num_workers()). See the header comment for
  // the full contract.
  void Run(size_t num_tasks, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop(size_t worker_id);
  // Claims and executes tasks of the current job until none remain.
  void DrainTasks(size_t worker_id);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: new job / shutdown
  std::condition_variable done_cv_;  // signals caller: job drained
  const std::function<void(size_t, size_t)>* job_ = nullptr;
  size_t job_tasks_ = 0;
  std::atomic<size_t> next_task_{0};
  size_t active_workers_ = 0;  // background workers still on current job
  uint64_t job_epoch_ = 0;
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

// Deterministic sharded loop over [begin, end): splits the range into
// fixed shards of `grain` iterations (the last may be shorter) and calls
//   fn(shard_begin, shard_end, shard_index, worker_id)
// once per shard. Shard boundaries depend only on (begin, end, grain),
// so per-shard outputs reduced in shard order are bit-identical for any
// pool size. Requires grain > 0.
void ParallelFor(
    ThreadPool& pool, size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t, size_t)>& fn);

}  // namespace bslrec::runtime

#endif  // BSLREC_RUNTIME_THREAD_POOL_H_
