#include "runtime/thread_pool.h"

#include <algorithm>

#include "math/check.h"

namespace bslrec::runtime {

size_t ResolveNumThreads(size_t requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

size_t ResolveEvalThreads(const RuntimeConfig& config) {
  if (config.eval_threads > 0) {
    return std::min(config.eval_threads, kMaxThreads);
  }
  return std::max<size_t>(1, ResolveNumThreads(config.num_threads) / 2);
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = ResolveNumThreads(num_threads);
  workers_.reserve(n - 1);
  for (size_t w = 1; w < n; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::DrainTasks(size_t worker_id) {
  for (;;) {
    const size_t t = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (t >= job_tasks_) return;
    try {
      (*job_)(t, worker_id);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Fast-forward the counter so workers stop claiming new tasks.
      next_task_.store(job_tasks_, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk,
                    [&] { return shutdown_ || job_epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
    }
    DrainTasks(worker_id);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t, size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty()) {
    // Serial pool: execute inline; exceptions propagate directly.
    for (size_t t = 0; t < num_tasks; ++t) fn(t, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_tasks_ = num_tasks;
    next_task_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = workers_.size();
    ++job_epoch_;
  }
  work_cv_.notify_all();
  DrainTasks(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_workers_ == 0; });
  job_ = nullptr;
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(e);
  }
}

void ParallelFor(
    ThreadPool& pool, size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t, size_t)>& fn) {
  BSLREC_CHECK(grain > 0);
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t num_shards = (n + grain - 1) / grain;
  pool.Run(num_shards, [&](size_t shard, size_t worker) {
    const size_t lo = begin + shard * grain;
    const size_t hi = std::min(end, lo + grain);
    fn(lo, hi, shard, worker);
  });
}

}  // namespace bslrec::runtime
