// Negative sampling strategies (P-_u in the paper).
//
// All samplers draw item ids to be treated as negatives for a given user.
// `UniformNegativeSampler` and `PopularityNegativeSampler` draw true
// negatives (rejecting the user's train positives). `NoisyNegativeSampler`
// implements the paper's controlled false-negative protocol (footnote 2,
// Figs 3 and 8): each *positive* item is given r_noise times the sampling
// weight of a negative item, so larger r_noise means more positives are
// mistakenly served as negatives.
//
// Samplers keep a reference to the dataset; the dataset must outlive them.
#ifndef BSLREC_SAMPLING_NEGATIVE_SAMPLER_H_
#define BSLREC_SAMPLING_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "math/alias_table.h"
#include "math/rng.h"

namespace bslrec {

class NegativeSampler {
 public:
  virtual ~NegativeSampler() = default;

  // Appends n sampled "negative" item ids for user u to `out` (which is
  // cleared first). Draws are i.i.d. with replacement, matching standard
  // recommender training loops.
  virtual void Sample(uint32_t u, size_t n, Rng& rng,
                      std::vector<uint32_t>& out) const = 0;
};

// Uniform over the user's true negatives S-_u.
class UniformNegativeSampler : public NegativeSampler {
 public:
  explicit UniformNegativeSampler(const Dataset& data) : data_(data) {}
  void Sample(uint32_t u, size_t n, Rng& rng,
              std::vector<uint32_t>& out) const override;

 private:
  const Dataset& data_;
};

// Popularity-weighted over true negatives: weight_i = popularity_i^beta
// (+1 smoothing so cold items stay reachable). Rejection on positives.
class PopularityNegativeSampler : public NegativeSampler {
 public:
  PopularityNegativeSampler(const Dataset& data, double beta);
  void Sample(uint32_t u, size_t n, Rng& rng,
              std::vector<uint32_t>& out) const override;

 private:
  const Dataset& data_;
  AliasTable table_;
};

// False-negative injector. With odds ratio r_noise, a draw lands on the
// user's positive set with probability
//     r_noise * |S+_u| / (r_noise * |S+_u| + |S-_u|),
// i.e. every positive item has r_noise times the weight of a negative
// item; within each side the draw is uniform. r_noise = 0 reduces to
// UniformNegativeSampler.
class NoisyNegativeSampler : public NegativeSampler {
 public:
  NoisyNegativeSampler(const Dataset& data, double r_noise);
  void Sample(uint32_t u, size_t n, Rng& rng,
              std::vector<uint32_t>& out) const override;

  double r_noise() const { return r_noise_; }

 private:
  const Dataset& data_;
  double r_noise_;
};

}  // namespace bslrec

#endif  // BSLREC_SAMPLING_NEGATIVE_SAMPLER_H_
