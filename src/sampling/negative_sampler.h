// Negative sampling strategies (P-_u in the paper).
//
// All samplers draw item ids to be treated as negatives for a given user.
// `UniformNegativeSampler` and `PopularityNegativeSampler` draw true
// negatives (rejecting the user's train positives). `NoisyNegativeSampler`
// implements the paper's controlled false-negative protocol (footnote 2,
// Figs 3 and 8): each *positive* item is given r_noise times the sampling
// weight of a negative item, so larger r_noise means more positives are
// mistakenly served as negatives.
//
// Two entry points share the same draw cores:
//
//  * `SampleStream(u, stream, out)` — the parallel path. The caller keys a
//    `StreamRng` per sample (seed, epoch, sample_index) and the sampler
//    fills the caller-provided span from that stream. Because the stream
//    is counter-based, any worker can draw any sample's negatives and get
//    identical items — the trainer draws inside its parallel shards and
//    stays bit-identical for every worker count. Hot loops bind
//    `Dispatch()` once per batch so the per-sample call is a plain
//    indirect call, not a virtual lookup.
//  * `Sample(u, n, rng, out)` — the legacy sequential API over a shared
//    `Rng`, kept for analysis/bench code that owns a single stream. It
//    routes through the same cores and only resizes `out` (never
//    shrinking capacity), so steady-state calls do not allocate.
//
// Samplers keep a reference to the dataset; the dataset must outlive them.
#ifndef BSLREC_SAMPLING_NEGATIVE_SAMPLER_H_
#define BSLREC_SAMPLING_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "math/alias_table.h"
#include "math/rng.h"

namespace bslrec {

class NegativeSampler;

// Devirtualized sampling handle: a (object, function-pointer) pair bound
// to the concrete sampler type. Virtual dispatch is hoisted to one
// `Dispatch()` call per batch; the per-sample draw inside the trainer's
// shard loop is then a direct indirect call the compiler can hoist
// across.
struct SamplerDispatch {
  using Fn = void (*)(const NegativeSampler* self, uint32_t u,
                      StreamRng& stream, uint32_t* out, size_t n);
  const NegativeSampler* self = nullptr;
  Fn fn = nullptr;

  void operator()(uint32_t u, StreamRng& stream,
                  std::span<uint32_t> out) const {
    fn(self, u, stream, out.data(), out.size());
  }
};

class NegativeSampler {
 public:
  virtual ~NegativeSampler() = default;

  // Legacy sequential API: resizes `out` to n (capacity never shrinks, so
  // repeated calls do not reallocate) and fills it with i.i.d. draws from
  // the shared `rng` stream, consumed in serial draw order.
  virtual void Sample(uint32_t u, size_t n, Rng& rng,
                      std::vector<uint32_t>& out) const = 0;

  // Stream API: fills the caller-provided span with out.size() i.i.d.
  // draws from the per-sample counter-based stream. Pure w.r.t. sampler
  // state — safe to call from any thread concurrently.
  void SampleStream(uint32_t u, StreamRng& stream,
                    std::span<uint32_t> out) const {
    Dispatch()(u, stream, out);
  }

  // Returns the devirtualized handle for hot loops; bind once per batch.
  virtual SamplerDispatch Dispatch() const = 0;
};

// Uniform over the user's true negatives S-_u.
class UniformNegativeSampler : public NegativeSampler {
 public:
  explicit UniformNegativeSampler(const Dataset& data) : data_(data) {}
  void Sample(uint32_t u, size_t n, Rng& rng,
              std::vector<uint32_t>& out) const override;
  SamplerDispatch Dispatch() const override;

  // Generator-templated draw core shared by both entry points; defined
  // in the .cc (instantiated there for Rng and StreamRng only).
  template <typename G>
  void SampleInto(uint32_t u, G& rng, uint32_t* out, size_t n) const;

 private:
  const Dataset& data_;
};

// Popularity-weighted over true negatives: weight_i = popularity_i^beta
// (+1 smoothing so cold items stay reachable). Rejection on positives.
class PopularityNegativeSampler : public NegativeSampler {
 public:
  PopularityNegativeSampler(const Dataset& data, double beta);
  void Sample(uint32_t u, size_t n, Rng& rng,
              std::vector<uint32_t>& out) const override;
  SamplerDispatch Dispatch() const override;

  // See UniformNegativeSampler::SampleInto.
  template <typename G>
  void SampleInto(uint32_t u, G& rng, uint32_t* out, size_t n) const;

 private:
  const Dataset& data_;
  AliasTable table_;
};

// False-negative injector. With odds ratio r_noise, a draw lands on the
// user's positive set with probability
//     r_noise * |S+_u| / (r_noise * |S+_u| + |S-_u|),
// i.e. every positive item has r_noise times the weight of a negative
// item; within each side the draw is uniform. r_noise = 0 reduces to
// UniformNegativeSampler.
class NoisyNegativeSampler : public NegativeSampler {
 public:
  NoisyNegativeSampler(const Dataset& data, double r_noise);
  void Sample(uint32_t u, size_t n, Rng& rng,
              std::vector<uint32_t>& out) const override;
  SamplerDispatch Dispatch() const override;

  double r_noise() const { return r_noise_; }

  // See UniformNegativeSampler::SampleInto.
  template <typename G>
  void SampleInto(uint32_t u, G& rng, uint32_t* out, size_t n) const;

 private:
  const Dataset& data_;
  double r_noise_;
};

}  // namespace bslrec

#endif  // BSLREC_SAMPLING_NEGATIVE_SAMPLER_H_
