#include "sampling/negative_sampler.h"

#include <cmath>

#include "math/check.h"

namespace bslrec {

namespace {

// Draws one uniform true negative for user u by rejection. The retry
// bound only trips when a user interacted with nearly the whole catalog,
// which the dataset builders prevent. Templated over the generator so the
// sequential (Rng) and counter-based (StreamRng) paths share one core.
template <typename G>
uint32_t DrawUniformNegative(const Dataset& data, uint32_t u, G& rng) {
  constexpr int kMaxTries = 1000;
  for (int t = 0; t < kMaxTries; ++t) {
    const uint32_t i = static_cast<uint32_t>(rng.NextIndex(data.num_items()));
    if (!data.IsTrainPositive(u, i)) return i;
  }
  BSLREC_CHECK_MSG(false, "user %u has (almost) no negatives", u);
  return 0;  // unreachable
}

// Builds the devirtualized handle for a concrete sampler type: the thunk
// recovers the concrete type and calls its (non-virtual) stream core, so
// the per-sample call in hot loops never goes through the vtable.
template <typename S>
SamplerDispatch MakeDispatch(const S* self) {
  return {self, [](const NegativeSampler* base, uint32_t u, StreamRng& stream,
                   uint32_t* out, size_t n) {
            static_cast<const S*>(base)->SampleInto(u, stream, out, n);
          }};
}

}  // namespace

// ---- uniform ----

template <typename G>
void UniformNegativeSampler::SampleInto(uint32_t u, G& rng, uint32_t* out,
                                        size_t n) const {
  for (size_t k = 0; k < n; ++k) {
    out[k] = DrawUniformNegative(data_, u, rng);
  }
}

void UniformNegativeSampler::Sample(uint32_t u, size_t n, Rng& rng,
                                    std::vector<uint32_t>& out) const {
  out.resize(n);
  SampleInto(u, rng, out.data(), n);
}

SamplerDispatch UniformNegativeSampler::Dispatch() const {
  return MakeDispatch(this);
}

// ---- popularity ----

PopularityNegativeSampler::PopularityNegativeSampler(const Dataset& data,
                                                     double beta)
    : data_(data),
      table_([&] {
        std::vector<double> w(data.num_items());
        for (uint32_t i = 0; i < data.num_items(); ++i) {
          w[i] = std::pow(static_cast<double>(data.item_popularity()[i]) + 1.0,
                          beta);
        }
        return AliasTable(w);
      }()) {}

template <typename G>
void PopularityNegativeSampler::SampleInto(uint32_t u, G& rng, uint32_t* out,
                                           size_t n) const {
  constexpr int kMaxTries = 1000;
  for (size_t k = 0; k < n; ++k) {
    uint32_t i = 0;
    bool found = false;
    for (int t = 0; t < kMaxTries; ++t) {
      i = table_.Sample(rng);
      if (!data_.IsTrainPositive(u, i)) {
        found = true;
        break;
      }
    }
    BSLREC_CHECK_MSG(found, "popularity sampler starved for user %u", u);
    out[k] = i;
  }
}

void PopularityNegativeSampler::Sample(uint32_t u, size_t n, Rng& rng,
                                       std::vector<uint32_t>& out) const {
  out.resize(n);
  SampleInto(u, rng, out.data(), n);
}

SamplerDispatch PopularityNegativeSampler::Dispatch() const {
  return MakeDispatch(this);
}

// ---- noisy ----

NoisyNegativeSampler::NoisyNegativeSampler(const Dataset& data, double r_noise)
    : data_(data), r_noise_(r_noise) {
  BSLREC_CHECK(r_noise >= 0.0);
}

template <typename G>
void NoisyNegativeSampler::SampleInto(uint32_t u, G& rng, uint32_t* out,
                                      size_t n) const {
  const auto pos = data_.TrainItems(u);
  const double n_pos = static_cast<double>(pos.size());
  const double n_neg = static_cast<double>(data_.num_items()) - n_pos;
  const double pos_mass = r_noise_ * n_pos;
  const double p_pos = pos_mass > 0.0 ? pos_mass / (pos_mass + n_neg) : 0.0;
  for (size_t k = 0; k < n; ++k) {
    if (!pos.empty() && rng.NextBernoulli(p_pos)) {
      out[k] = pos[rng.NextIndex(pos.size())];
    } else {
      out[k] = DrawUniformNegative(data_, u, rng);
    }
  }
}

void NoisyNegativeSampler::Sample(uint32_t u, size_t n, Rng& rng,
                                  std::vector<uint32_t>& out) const {
  out.resize(n);
  SampleInto(u, rng, out.data(), n);
}

SamplerDispatch NoisyNegativeSampler::Dispatch() const {
  return MakeDispatch(this);
}

}  // namespace bslrec
