#include "train/enmf.h"

#include <vector>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

EnmfTrainer::EnmfTrainer(const Dataset& data, MfModel& model,
                         const EnmfConfig& config)
    : data_(data),
      model_(model),
      config_(config),
      evaluator_(data, config.metric_k),
      optimizer_(config.lr, config.weight_decay),
      rng_(config.seed) {
  BSLREC_CHECK(config.epochs >= 0);
  BSLREC_CHECK(config.negative_weight >= 0.0);
}

double EnmfTrainer::RunEpoch() {
  const size_t d = model_.dim();
  model_.Forward(rng_);
  model_.ZeroGrad();

  // Normalize all item embeddings once per epoch (full-batch pass).
  Matrix item_hat(data_.num_items(), d);
  std::vector<float> item_norm(data_.num_items());
  for (uint32_t i = 0; i < data_.num_items(); ++i) {
    item_norm[i] = vec::Normalize(model_.ItemEmb(i), item_hat.Row(i), d);
  }

  std::vector<float> u_hat(d);
  double total_loss = 0.0;
  const float inv_users = 1.0f / static_cast<float>(data_.num_users());
  for (uint32_t u = 0; u < data_.num_users(); ++u) {
    const float u_norm = vec::Normalize(model_.UserEmb(u), u_hat.data(), d);
    const auto pos = data_.TrainItems(u);
    size_t pos_idx = 0;
    for (uint32_t i = 0; i < data_.num_items(); ++i) {
      const bool is_pos = pos_idx < pos.size() && pos[pos_idx] == i;
      if (is_pos) ++pos_idx;
      const float score = vec::Dot(u_hat.data(), item_hat.Row(i), d);
      // Residual and weight per ENMF's objective.
      const double target = is_pos ? 1.0 : 0.0;
      const double weight = is_pos ? 1.0 : config_.negative_weight;
      const double residual = score - target;
      total_loss += weight * residual * residual;
      const float g = static_cast<float>(2.0 * weight * residual) * inv_users;
      if (g == 0.0f) continue;
      vec::AccumulateCosineGrad(u_hat.data(), item_hat.Row(i), score, u_norm,
                                g, model_.UserGrad(u), d);
      vec::AccumulateCosineGrad(item_hat.Row(i), u_hat.data(), score,
                                item_norm[i], g, model_.ItemGrad(i), d);
    }
  }
  model_.Backward();
  optimizer_.Step(model_.Params());
  return total_loss / static_cast<double>(data_.num_users());
}

TrainResult EnmfTrainer::Train() {
  TrainResult result;
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    EpochStats stats;
    stats.epoch = epoch;
    stats.avg_loss = RunEpoch();
    result.history.push_back(stats);
    if (epoch % config_.eval_every == 0 || epoch == config_.epochs) {
      model_.Forward(rng_);
      const TopKMetrics m = evaluator_.Evaluate(model_);
      result.final_metrics = m;
      if (m.ndcg > result.best.ndcg) {
        result.best = m;
        result.best_epoch = epoch;
      }
    }
  }
  if (result.best.num_users == 0) {
    model_.Forward(rng_);
    result.best = evaluator_.Evaluate(model_);
    result.final_metrics = result.best;
  }
  return result;
}

}  // namespace bslrec
