// ENMF-style non-sampling trainer (Chen et al., TOIS 2020).
//
// ENMF ("Efficient Neural Matrix Factorization without sampling") fits MF
// with a whole-data weighted square loss instead of negative sampling:
//
//   L = sum_u [ sum_{i in S+_u} (f(u,i) - 1)^2
//             + w0 * sum_{i not in S+_u} f(u,i)^2 ]
//
// The paper uses ENMF as a sampling-free baseline row in Table II. At the
// catalog sizes of the synthetic presets the dense form is affordable, so
// this implementation evaluates the loss exactly (no algebraic caching),
// scoring with the same cosine head as the rest of the library.
#ifndef BSLREC_TRAIN_ENMF_H_
#define BSLREC_TRAIN_ENMF_H_

#include "data/dataset.h"
#include "eval/evaluator.h"
#include "models/mf.h"
#include "train/optimizer.h"
#include "train/trainer.h"

namespace bslrec {

struct EnmfConfig {
  int epochs = 30;
  double lr = 0.05;
  double weight_decay = 1e-6;
  double negative_weight = 0.05;  // ENMF's w0 for unobserved entries
  int eval_every = 5;
  uint32_t metric_k = 20;
  uint64_t seed = 123;
};

class EnmfTrainer {
 public:
  // `data` and `model` must outlive the trainer.
  EnmfTrainer(const Dataset& data, MfModel& model, const EnmfConfig& config);

  TrainResult Train();

  // One full-data gradient pass; returns the mean per-user loss.
  double RunEpoch();

 private:
  const Dataset& data_;
  MfModel& model_;
  EnmfConfig config_;
  Evaluator evaluator_;
  AdamOptimizer optimizer_;
  Rng rng_;
};

}  // namespace bslrec

#endif  // BSLREC_TRAIN_ENMF_H_
