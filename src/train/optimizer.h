// First-order optimizers over ParamGrad lists.
//
// Adam follows Kingma & Ba with bias correction; weight decay is applied
// decoupled (AdamW-style), which matches how the paper's L2 coefficient
// acts on embedding tables. Optimizer state is keyed by the parameter
// matrix address, so the same optimizer instance can drive any model as
// long as its parameter set is stable across steps.
#ifndef BSLREC_TRAIN_OPTIMIZER_H_
#define BSLREC_TRAIN_OPTIMIZER_H_

#include <map>
#include <vector>

#include "math/matrix.h"
#include "models/model.h"

namespace bslrec {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  // Applies one update using the gradients currently stored in `params`.
  virtual void Step(const std::vector<ParamGrad>& params) = 0;
};

class SgdOptimizer : public Optimizer {
 public:
  explicit SgdOptimizer(double lr, double weight_decay = 0.0)
      : lr_(lr), weight_decay_(weight_decay) {}
  void Step(const std::vector<ParamGrad>& params) override;

 private:
  double lr_;
  double weight_decay_;
};

class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(double lr, double weight_decay = 0.0, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8)
      : lr_(lr),
        weight_decay_(weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {}
  void Step(const std::vector<ParamGrad>& params) override;

 private:
  struct Slot {
    Matrix m;  // first-moment estimate
    Matrix v;  // second-moment estimate
  };
  double lr_;
  double weight_decay_;
  double beta1_;
  double beta2_;
  double eps_;
  long step_ = 0;
  std::map<const Matrix*, Slot> slots_;
};

}  // namespace bslrec

#endif  // BSLREC_TRAIN_OPTIMIZER_H_
