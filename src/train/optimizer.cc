#include "train/optimizer.h"

#include <cmath>

#include "math/check.h"

namespace bslrec {

void SgdOptimizer::Step(const std::vector<ParamGrad>& params) {
  for (const ParamGrad& pg : params) {
    BSLREC_CHECK(pg.value != nullptr && pg.grad != nullptr);
    BSLREC_CHECK(pg.value->size() == pg.grad->size());
    float* w = pg.value->data();
    const float* g = pg.grad->data();
    const float lr = static_cast<float>(lr_);
    const float wd = static_cast<float>(weight_decay_);
    for (size_t k = 0; k < pg.value->size(); ++k) {
      w[k] -= lr * (g[k] + wd * w[k]);
    }
  }
}

void AdamOptimizer::Step(const std::vector<ParamGrad>& params) {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  for (const ParamGrad& pg : params) {
    BSLREC_CHECK(pg.value != nullptr && pg.grad != nullptr);
    BSLREC_CHECK(pg.value->size() == pg.grad->size());
    Slot& slot = slots_[pg.value];
    if (slot.m.size() != pg.value->size()) {
      slot.m = Matrix(pg.value->rows(), pg.value->cols());
      slot.v = Matrix(pg.value->rows(), pg.value->cols());
    }
    float* w = pg.value->data();
    const float* g = pg.grad->data();
    float* m = slot.m.data();
    float* v = slot.v.data();
    for (size_t k = 0; k < pg.value->size(); ++k) {
      m[k] = static_cast<float>(beta1_ * m[k] + (1.0 - beta1_) * g[k]);
      v[k] = static_cast<float>(beta2_ * v[k] +
                                (1.0 - beta2_) * static_cast<double>(g[k]) *
                                    g[k]);
      const double m_hat = m[k] / bc1;
      const double v_hat = v[k] / bc2;
      w[k] -= static_cast<float>(
          lr_ * (m_hat / (std::sqrt(v_hat) + eps_) + weight_decay_ * w[k]));
    }
  }
}

}  // namespace bslrec
