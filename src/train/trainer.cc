#include "train/trainer.h"

#include <algorithm>
#include <cmath>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec {

namespace {

// Decouples the negative-draw streams from every other consumer of
// TrainConfig::seed (init, shuffling, augmentations) when the user
// leaves sampling_stream_seed = 0.
constexpr uint64_t kSamplingStreamSalt = 0x4E45474154495645ULL;  // "NEGATIVE"

}  // namespace

float* Trainer::GradSlot(SlotMap& map, uint64_t shard_tag,
                         std::vector<uint32_t>& rows,
                         std::vector<float>& vals, uint32_t row, size_t d) {
  if (map.tag[row] != shard_tag) {
    map.tag[row] = shard_tag;
    map.slot[row] = static_cast<uint32_t>(rows.size());
    rows.push_back(row);
    vals.resize(vals.size() + d, 0.0f);
  }
  return vals.data() + static_cast<size_t>(map.slot[row]) * d;
}

void Trainer::BeginShard(WorkerScratch& ws, ShardGrad& out) {
  ++ws.shard_tag;
  out.user_rows.clear();
  out.item_rows.clear();
  out.user_vals.clear();
  out.item_vals.clear();
  out.loss_sum = 0.0;
}

Trainer::Trainer(const Dataset& data, EmbeddingModel& model,
                 const LossFunction& loss, const NegativeSampler& sampler,
                 const TrainConfig& config)
    : data_(data),
      model_(model),
      loss_(loss),
      sampler_(sampler),
      config_(config),
      pool_(std::make_unique<runtime::ThreadPool>(
          config.runtime.num_threads)),
      scratch_(pool_->num_workers()),
      evaluator_(data, config.metric_k, pool_.get()),
      rng_(config.seed),
      stream_seed_(config.sampling_stream_seed != 0
                       ? config.sampling_stream_seed
                       : config.seed ^ kSamplingStreamSalt) {
  BSLREC_CHECK(config.epochs >= 0);
  BSLREC_CHECK(config.batch_size > 0 && config.num_negatives > 0);
  BSLREC_CHECK(config.eval_every >= 1);
  if (config.use_adam) {
    optimizer_ =
        std::make_unique<AdamOptimizer>(config.lr, config.weight_decay);
  } else {
    optimizer_ =
        std::make_unique<SgdOptimizer>(config.lr, config.weight_decay);
  }
  if (config.async_eval) {
    async_eval_ = std::make_unique<AsyncEvaluator>(data, config.metric_k,
                                                   config.runtime);
  }
  // Route the model's own heavy compute (graph propagation, contrastive
  // views) through the trainer's pool as well.
  model_.SetRuntime(pool_.get());
  const size_t d = model.dim();
  const size_t n_neg = config.num_negatives;
  for (WorkerScratch& ws : scratch_) {
    ws.users.tag.assign(data.num_users(), 0);
    ws.users.slot.assign(data.num_users(), 0);
    ws.items.tag.assign(data.num_items(), 0);
    ws.items.slot.assign(data.num_items(), 0);
    ws.u_hat.resize(d);
    ws.i_hat.resize(d);
    ws.negs.resize(n_neg);
    ws.j_hat = Matrix(n_neg, d);
    ws.j_norm.resize(n_neg);
    ws.neg_scores.resize(n_neg);
    ws.d_neg.resize(n_neg);
  }
}

Trainer::~Trainer() { model_.SetRuntime(nullptr); }

double Trainer::ReduceShards(size_t num_shards) {
  const size_t d = model_.dim();
  double loss_sum = 0.0;
  for (size_t sh = 0; sh < num_shards; ++sh) {
    const ShardGrad& g = shards_[sh];
    for (size_t r = 0; r < g.user_rows.size(); ++r) {
      vec::Axpy(1.0f, g.user_vals.data() + r * d,
                model_.UserGrad(g.user_rows[r]), d);
    }
    for (size_t r = 0; r < g.item_rows.size(); ++r) {
      vec::Axpy(1.0f, g.item_vals.data() + r * d,
                model_.ItemGrad(g.item_rows[r]), d);
    }
    loss_sum += g.loss_sum;
  }
  return loss_sum;
}

double Trainer::AccumulateSampledLoss(const std::vector<Edge>& edges,
                                      size_t begin, size_t end,
                                      uint64_t epoch) {
  const size_t d = model_.dim();
  const size_t n_neg = config_.num_negatives;
  const size_t b = end - begin;
  const float inv_batch = 1.0f / static_cast<float>(b);

  // Negatives are drawn inside the shards: sample s reads the
  // counter-based stream keyed (stream_seed_, epoch, begin + s), a pure
  // function of the sample's epoch-global index, so the drawn items —
  // and therefore the whole training run — do not depend on the worker
  // count. The virtual sampler lookup is hoisted out of the loop here.
  const SamplerDispatch sample = sampler_.Dispatch();
  const Matrix& item_table = model_.FinalItemMatrix();

  const size_t num_shards = (b + kSampledGrain - 1) / kSampledGrain;
  if (shards_.size() < num_shards) shards_.resize(num_shards);
  runtime::ParallelFor(
      *pool_, 0, b, kSampledGrain,
      [&](size_t lo, size_t hi, size_t shard, size_t worker) {
        WorkerScratch& ws = scratch_[worker];
        ShardGrad& out = shards_[shard];
        BeginShard(ws, out);
        for (size_t s = lo; s < hi; ++s) {
          const uint32_t u = edges[begin + s].user;
          const uint32_t i = edges[begin + s].item;
          StreamRng stream(stream_seed_, epoch, begin + s);
          sample(u, stream, {ws.negs.data(), n_neg});
          const uint32_t* negs = ws.negs.data();

          const float u_norm =
              vec::Normalize(model_.UserEmb(u), ws.u_hat.data(), d);
          const float i_norm =
              vec::Normalize(model_.ItemEmb(i), ws.i_hat.data(), d);
          const float pos_score =
              vec::Dot(ws.u_hat.data(), ws.i_hat.data(), d);
          // Fused scoring: one gather+normalize over the negative block,
          // one blocked batch dot against it.
          vec::GatherNormalize(item_table.data(), item_table.cols(), negs,
                               n_neg, d, ws.j_hat.data(), ws.j_norm.data());
          vec::DotBatch(ws.u_hat.data(), ws.j_hat.data(), n_neg, d,
                        ws.neg_scores.data());

          float d_pos = 0.0f;
          out.loss_sum +=
              loss_.Compute(pos_score, {ws.neg_scores.data(), n_neg}, &d_pos,
                            {ws.d_neg.data(), n_neg});

          // Chain rule through the cosine head (mean batch reduction).
          const float d_pos_scaled = d_pos * inv_batch;
          vec::AccumulateCosineGrad(
              ws.u_hat.data(), ws.i_hat.data(), pos_score, u_norm,
              d_pos_scaled,
              GradSlot(ws.users, ws.shard_tag, out.user_rows, out.user_vals,
                       u, d),
              d);
          vec::AccumulateCosineGrad(
              ws.i_hat.data(), ws.u_hat.data(), pos_score, i_norm,
              d_pos_scaled,
              GradSlot(ws.items, ws.shard_tag, out.item_rows, out.item_vals,
                       i, d),
              d);
          for (size_t j = 0; j < n_neg; ++j) {
            const float g = ws.d_neg[j] * inv_batch;
            if (g == 0.0f) continue;
            vec::AccumulateCosineGrad(
                ws.u_hat.data(), ws.j_hat.Row(j), ws.neg_scores[j], u_norm,
                g,
                GradSlot(ws.users, ws.shard_tag, out.user_rows,
                         out.user_vals, u, d),
                d);
            vec::AccumulateCosineGrad(
                ws.j_hat.Row(j), ws.u_hat.data(), ws.neg_scores[j],
                ws.j_norm[j], g,
                GradSlot(ws.items, ws.shard_tag, out.item_rows,
                         out.item_vals, negs[j], d),
                d);
          }
        }
      });
  return ReduceShards(num_shards);
}

double Trainer::AccumulateInBatchLoss(const std::vector<Edge>& edges,
                                      size_t begin, size_t end) {
  const size_t d = model_.dim();
  const size_t b = end - begin;
  if (b < 2) return 0.0;  // no in-batch negatives available
  const float inv_batch = 1.0f / static_cast<float>(b);

  // Normalize every sample's user and item embedding once (Algorithm 2
  // computes the full pairwise similarity matrix). Rows are independent,
  // so the parallel fill is bit-identical for any worker count.
  Matrix u_hat(b, d), i_hat(b, d);
  std::vector<float> u_norm(b), i_norm(b);
  runtime::ParallelFor(
      *pool_, 0, b, 128,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t /*worker*/) {
        for (size_t s = lo; s < hi; ++s) {
          u_norm[s] = vec::Normalize(model_.UserEmb(edges[begin + s].user),
                                     u_hat.Row(s), d);
          i_norm[s] = vec::Normalize(model_.ItemEmb(edges[begin + s].item),
                                     i_hat.Row(s), d);
        }
      });

  // Optional sampled-softmax logQ correction: in-batch negatives appear
  // with probability proportional to popularity; subtracting
  // tau*log q(item) from their scores de-biases the softmax. The shift
  // is a data constant, so the gradient chain is unchanged.
  std::vector<float> logq_shift(b, 0.0f);
  if (config_.inbatch_logq_tau > 0.0) {
    const double total =
        static_cast<double>(data_.num_train()) + data_.num_items();
    for (size_t t = 0; t < b; ++t) {
      const double q =
          (static_cast<double>(
               data_.item_popularity()[edges[begin + t].item]) +
           1.0) /
          total;
      logq_shift[t] =
          static_cast<float>(config_.inbatch_logq_tau * std::log(q));
    }
  }

  const size_t num_shards = (b + kInBatchGrain - 1) / kInBatchGrain;
  if (shards_.size() < num_shards) shards_.resize(num_shards);
  runtime::ParallelFor(
      *pool_, 0, b, kInBatchGrain,
      [&](size_t lo, size_t hi, size_t shard, size_t worker) {
        WorkerScratch& ws = scratch_[worker];
        ShardGrad& out = shards_[shard];
        BeginShard(ws, out);
        if (ws.neg_scores.size() < b - 1) {
          ws.neg_scores.resize(b - 1);
          ws.d_neg.resize(b - 1);
        }
        for (size_t s = lo; s < hi; ++s) {
          const uint32_t u = edges[begin + s].user;
          const uint32_t i = edges[begin + s].item;
          const float pos_score = vec::Dot(u_hat.Row(s), i_hat.Row(s), d);
          // Other samples' positives are this sample's negatives
          // (diagonal masked, duplicates kept — see SamplingMode docs).
          size_t idx = 0;
          for (size_t t = 0; t < b; ++t) {
            if (t == s) continue;
            ws.neg_scores[idx++] =
                vec::Dot(u_hat.Row(s), i_hat.Row(t), d) - logq_shift[t];
          }
          float d_pos = 0.0f;
          out.loss_sum +=
              loss_.Compute(pos_score, {ws.neg_scores.data(), b - 1},
                            &d_pos, {ws.d_neg.data(), b - 1});

          const float d_pos_scaled = d_pos * inv_batch;
          vec::AccumulateCosineGrad(
              u_hat.Row(s), i_hat.Row(s), pos_score, u_norm[s],
              d_pos_scaled,
              GradSlot(ws.users, ws.shard_tag, out.user_rows, out.user_vals,
                       u, d),
              d);
          vec::AccumulateCosineGrad(
              i_hat.Row(s), u_hat.Row(s), pos_score, i_norm[s],
              d_pos_scaled,
              GradSlot(ws.items, ws.shard_tag, out.item_rows, out.item_vals,
                       i, d),
              d);
          idx = 0;
          for (size_t t = 0; t < b; ++t) {
            if (t == s) continue;
            const float g = ws.d_neg[idx] * inv_batch;
            // Undo the logQ shift: the chain rule needs the raw score.
            const float score = ws.neg_scores[idx] + logq_shift[t];
            ++idx;
            if (g == 0.0f) continue;
            vec::AccumulateCosineGrad(
                u_hat.Row(s), i_hat.Row(t), score, u_norm[s], g,
                GradSlot(ws.users, ws.shard_tag, out.user_rows,
                         out.user_vals, u, d),
                d);
            vec::AccumulateCosineGrad(
                i_hat.Row(t), u_hat.Row(s), score, i_norm[t], g,
                GradSlot(ws.items, ws.shard_tag, out.item_rows,
                         out.item_vals, edges[begin + t].item, d),
                d);
          }
        }
      });
  return ReduceShards(num_shards);
}

std::pair<double, double> Trainer::RunBatch(const std::vector<Edge>& edges,
                                            size_t begin, size_t end,
                                            uint64_t epoch) {
  model_.Forward(rng_);
  model_.ZeroGrad();

  const double loss_sum =
      config_.sampling_mode == SamplingMode::kInBatch
          ? AccumulateInBatchLoss(edges, begin, end)
          : AccumulateSampledLoss(edges, begin, end, epoch);

  // Contrastive regularizer on the batch's distinct nodes.
  std::vector<uint32_t> batch_users, batch_items;
  batch_users.reserve(end - begin);
  batch_items.reserve(end - begin);
  for (size_t s = begin; s < end; ++s) {
    batch_users.push_back(edges[s].user);
    batch_items.push_back(edges[s].item);
  }
  std::sort(batch_users.begin(), batch_users.end());
  batch_users.erase(std::unique(batch_users.begin(), batch_users.end()),
                    batch_users.end());
  std::sort(batch_items.begin(), batch_items.end());
  batch_items.erase(std::unique(batch_items.begin(), batch_items.end()),
                    batch_items.end());
  const double aux = model_.AuxLossAndGrad(batch_users, batch_items, rng_);

  model_.Backward();
  optimizer_->Step(model_.Params());
  ++step_count_;  // invalidates any snapshot frozen before this batch
  return {loss_sum, aux};
}

EpochStats Trainer::RunEpoch(int epoch_index) {
  std::vector<Edge> edges = data_.train_edges();
  BSLREC_CHECK_MSG(!edges.empty(), "empty training split");
  rng_.Shuffle(edges);

  EpochStats stats;
  stats.epoch = epoch_index;
  double loss_sum = 0.0;
  double aux_sum = 0.0;
  size_t num_batches = 0;
  for (size_t begin = 0; begin < edges.size();
       begin += config_.batch_size) {
    const size_t end = std::min(edges.size(), begin + config_.batch_size);
    const auto [loss, aux] =
        RunBatch(edges, begin, end, static_cast<uint64_t>(epoch_index));
    loss_sum += loss;
    aux_sum += aux;
    ++num_batches;
  }
  stats.avg_loss = loss_sum / static_cast<double>(edges.size());
  stats.avg_aux_loss =
      num_batches > 0 ? aux_sum / static_cast<double>(num_batches) : 0.0;
  return stats;
}

std::shared_ptr<const serve::ModelSnapshot> Trainer::FreezeSnapshot() const {
  if (frozen_snapshot_ != nullptr && frozen_snapshot_step_ == step_count_) {
    return frozen_snapshot_;  // tables have not stepped since the freeze
  }
  // Refresh the final embeddings from the current parameters. The main
  // propagation path is deterministic for every backbone, so the const
  // cast only re-runs a pure function of the parameters.
  Rng eval_rng(config_.seed ^ 0xE7A15A17ULL);
  const_cast<EmbeddingModel&>(static_cast<const EmbeddingModel&>(model_))
      .Forward(eval_rng);
  frozen_snapshot_ =
      std::make_shared<const serve::ModelSnapshot>(model_, *pool_);
  frozen_snapshot_step_ = step_count_;
  ++snapshots_frozen_;
  return frozen_snapshot_;
}

TopKMetrics Trainer::Evaluate() const {
  return evaluator_.BeginPassOn(FreezeSnapshot()).Evaluate();
}

bool Trainer::ApplyEvalRecord(TrainResult& result, const EvalRecord& rec,
                              int* evals_without_improvement) {
  result.final_metrics = rec.metrics;
  result.evals.push_back(rec);
  if (rec.metrics.ndcg > result.best.ndcg) {
    result.best = rec.metrics;
    result.best_epoch = rec.epoch;
    *evals_without_improvement = 0;
    return false;
  }
  ++*evals_without_improvement;
  return config_.early_stop_patience > 0 &&
         *evals_without_improvement >= config_.early_stop_patience;
}

bool Trainer::JoinAsyncEvals(TrainResult& result,
                             int* evals_without_improvement) {
  bool stop = false;
  for (const EvalRecord& rec : async_eval_->Join()) {
    stop = ApplyEvalRecord(result, rec, evals_without_improvement) || stop;
  }
  return stop;
}

TrainResult Trainer::Train() {
  TrainResult result;
  int evals_without_improvement = 0;
  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    result.history.push_back(RunEpoch(epoch));
    const bool last_epoch = epoch == config_.epochs;
    if (epoch % config_.eval_every != 0 && !last_epoch) continue;
    if (async_eval_ != nullptr) {
      // Pipeline depth 1: finish the previous overlapped pass (and let
      // it veto further training) before freezing the next snapshot.
      if (JoinAsyncEvals(result, &evals_without_improvement)) break;
      async_eval_->Submit(epoch, FreezeSnapshot());
      // Early stopping decides after *every* eval; deferring the
      // decision to the next join would change the epoch trajectory
      // relative to sync, so an early-stop config joins immediately.
      if (config_.early_stop_patience > 0 &&
          JoinAsyncEvals(result, &evals_without_improvement)) {
        break;
      }
    } else {
      const EvalRecord rec{epoch, Evaluate()};
      if (ApplyEvalRecord(result, rec, &evals_without_improvement)) break;
    }
  }
  if (async_eval_ != nullptr) {
    // Join the final epoch's pass (a post-loop stop verdict is moot).
    JoinAsyncEvals(result, &evals_without_improvement);
  }
  if (result.evals.empty()) {
    // epochs == 0, so no eval ran: report the untrained model. (Keyed
    // on the recorded evals, not on best.num_users — an empty test
    // split legitimately yields zero-user metrics from real evals.)
    result.best = Evaluate();
    result.final_metrics = result.best;
    result.evals.push_back({0, result.best});
  }
  return result;
}

}  // namespace bslrec
