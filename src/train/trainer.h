// Mini-batch training loop.
//
// One training sample is one observed edge (u, i+) plus N- negatives from
// the configured sampler (paper Algorithm 1). Per batch the trainer:
//   1. re-propagates the model (Forward),
//   2. scores samples with cosine similarity of the final embeddings,
//   3. applies the loss to get dL/dscore,
//   4. chain-rules through the cosine into final-embedding gradients,
//   5. adds contrastive aux gradients (SGL/SimGCL/LightGCL),
//   6. backpropagates into parameters and steps the optimizer.
//
// Steps 2-4 — the per-sample sampling/score/gradient work that dominates
// the epoch — fan out across a runtime::ThreadPool: the batch is split
// into fixed-size sample shards, every worker accumulates gradients into
// per-shard sparse buffers, and the shards are reduced into the model's
// gradient tables serially in shard order. Negative sampling runs
// *inside* the shards from counter-based per-sample streams: sample s of
// epoch e draws from StreamRng(stream_seed, e, s), a pure function of
// the sample's epoch-global index, so the drawn items do not depend on
// which worker processes the shard or when. Training results are
// therefore bit-identical for any `TrainConfig::runtime.num_threads`
// with no serial pre-draw stage at all (see runtime/thread_pool.h for
// the sharding contract and math/rng.h for the stream discipline).
// Negative scoring is fused: the shard gathers + normalizes a sample's
// negatives as one block (vec::GatherNormalize) and scores it with one
// blocked batch kernel (vec::DotBatch) instead of N- strided dots.
//
// The trainer also hands its pool to the model (`SetRuntime`), so graph
// backbones run steps 1 and 6 — propagation in Forward/Backward and the
// contrastive aux pass — through the same worker budget (the sharded
// kernels in graph/propagation.h keep those bit-identical too). The
// pool is detached again when the trainer is destroyed.
//
// Evaluation runs every `eval_every` epochs on the held-out test split;
// the best checkpoint metrics (by NDCG) are reported, emulating the
// paper's early-stopping/grid protocol without storing weights.
//
// With `TrainConfig::async_eval` the trainer stops stopping the world
// for those evaluations: at an eval epoch it freezes a
// `serve::ModelSnapshot` on its own pool (the cheap step) and submits
// the full ranking pass to a background `AsyncEvaluator`, then
// immediately starts the next epoch. Pending passes are joined at the
// next eval epoch (pipeline depth 1) and at the end of Train. Because
// passes score only their frozen snapshot and ranking is thread-count
// invariant, the recorded `TrainResult::evals` history is bit-identical
// to synchronous evaluation — asynchrony changes wall time, never
// numbers. The one control-flow coupling is early stopping: the stop
// decision consumes each eval's metrics, so when
// `early_stop_patience > 0` the trainer joins each pass right after
// submitting it (the pass still runs on the background pool, but
// without overlap) to keep the epoch trajectory identical to sync.
#ifndef BSLREC_TRAIN_TRAINER_H_
#define BSLREC_TRAIN_TRAINER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/losses.h"
#include "data/dataset.h"
#include "eval/async_evaluator.h"
#include "eval/evaluator.h"
#include "models/model.h"
#include "runtime/thread_pool.h"
#include "sampling/negative_sampler.h"
#include "train/optimizer.h"

namespace bslrec {

// How negatives are obtained for each (user, positive) sample:
//  * kSampledNegatives — N- draws from the configured sampler
//    (paper Algorithm 1, used for MF).
//  * kInBatch — the other samples' positive items in the mini-batch act
//    as negatives with only the diagonal masked (paper Algorithm 2,
//    used for NGCF/LightGCN). Duplicate items inside a batch therefore
//    occasionally serve as false negatives, exactly as in the paper —
//    the robustness the softmax family provides covers this.
enum class SamplingMode { kSampledNegatives, kInBatch };

struct TrainConfig {
  int epochs = 30;
  size_t batch_size = 1024;
  SamplingMode sampling_mode = SamplingMode::kSampledNegatives;
  size_t num_negatives = 64;  // ignored in kInBatch mode
  // In-batch negatives are drawn proportionally to item popularity, which
  // biases the sampled softmax (Bengio & Senecal, 2003 — the paper's
  // reference [12]). Setting this to the softmax temperature applies the
  // standard logQ correction, subtracting tau*log q(item) from each
  // in-batch negative score before the loss sees it. 0 disables the
  // correction; leave 0 for non-softmax losses.
  double inbatch_logq_tau = 0.0;
  double lr = 0.05;
  double weight_decay = 1e-6;
  bool use_adam = true;
  int eval_every = 5;           // epochs between evaluations (>=1)
  uint32_t metric_k = 20;       // Recall@K / NDCG@K cutoff
  int early_stop_patience = 0;  // consecutive non-improving evals; 0 = off
  uint64_t seed = 123;
  // Seed of the counter-based negative-sampling streams (kSampledNegatives
  // mode). 0 derives it from `seed`, which is what experiments want: one
  // knob reproduces the whole run. Set it explicitly to hold the sampled
  // negatives fixed while varying `seed` (init/shuffle), or vice versa —
  // the stream family is keyed (stream_seed, epoch, sample_index), fully
  // decoupled from the trainer's sequential Rng.
  uint64_t sampling_stream_seed = 0;
  // Overlap evaluation with the next training epoch (see the header
  // comment). Metrics and histories are bit-identical either way; the
  // background pool is sized by `runtime.eval_threads`.
  bool async_eval = false;
  // Worker count for batch processing and evaluation. Results are
  // bit-identical for any value; 1 runs fully serial.
  runtime::RuntimeConfig runtime;
};

struct EpochStats {
  int epoch = 0;
  double avg_loss = 0.0;      // mean recommendation loss per sample
  double avg_aux_loss = 0.0;  // mean contrastive aux loss per batch
};

struct TrainResult {
  TopKMetrics best;    // best eval by NDCG
  int best_epoch = 0;
  TopKMetrics final_metrics;  // metrics at the last executed eval
  std::vector<EpochStats> history;
  // Every evaluation in epoch order — the same sequence whether
  // evaluation ran synchronously or overlapped (async_eval).
  std::vector<EvalRecord> evals;
};

class Trainer {
 public:
  // All referenced objects must outlive the trainer.
  Trainer(const Dataset& data, EmbeddingModel& model,
          const LossFunction& loss, const NegativeSampler& sampler,
          const TrainConfig& config);
  // Detaches the trainer's pool from the model (the pool dies with the
  // trainer; the model may outlive it).
  ~Trainer();

  // Runs the configured number of epochs with periodic evaluation.
  TrainResult Train();

  // Runs a single epoch; returns its stats. Exposed for custom loops
  // (benches that need per-epoch probes).
  EpochStats RunEpoch(int epoch_index);

  // Evaluates the current model on the test split. Reuses the snapshot
  // frozen for the current optimizer step when one exists (e.g. the one
  // the last eval epoch just froze), instead of rebuilding it; external
  // parameter mutation between calls is not detected.
  TopKMetrics Evaluate() const;

  // How many ModelSnapshots this trainer has frozen — observability for
  // the snapshot-reuse contract (tests and benches assert on it).
  size_t snapshots_frozen() const { return snapshots_frozen_; }

  Rng& rng() { return rng_; }

 private:
  // Fixed samples-per-shard grains for the parallel batch loops. Shard
  // boundaries must depend only on the batch size — never on the worker
  // count — or results would change with num_threads.
  static constexpr size_t kSampledGrain = 32;
  static constexpr size_t kInBatchGrain = 16;

  // Sparse partial gradients produced by one shard: the embedding rows
  // its samples touched, in first-touch order, each with a d-wide
  // accumulated gradient. Reduced into the model serially in shard
  // order, which is what makes training thread-count invariant.
  struct ShardGrad {
    std::vector<uint32_t> user_rows, item_rows;
    std::vector<float> user_vals, item_vals;  // rows.size() x dim, packed
    double loss_sum = 0.0;
  };

  // Epoch-tagged row -> shard-slot map (no O(rows) clearing per shard).
  struct SlotMap {
    std::vector<uint64_t> tag;
    std::vector<uint32_t> slot;
  };

  // Per-worker temporaries, reused across shards and batches.
  struct WorkerScratch {
    SlotMap users, items;
    uint64_t shard_tag = 0;
    std::vector<float> u_hat, i_hat;
    std::vector<uint32_t> negs;  // this sample's drawn negatives, N- wide
    Matrix j_hat;                // gathered normalized negatives, N- x d
    std::vector<float> j_norm, neg_scores, d_neg;
  };

  // Returns the shard-local accumulator row for `row`, creating (and
  // zero-filling) it on first touch. Rows register in first-touch order,
  // which is deterministic because samples inside a shard run in order.
  // Must be re-called per use: growing `vals` may reallocate.
  static float* GradSlot(SlotMap& map, uint64_t shard_tag,
                         std::vector<uint32_t>& rows,
                         std::vector<float>& vals, uint32_t row, size_t d);
  static void BeginShard(WorkerScratch& ws, ShardGrad& out);

  // Processes one batch of edges [begin, end); returns (sum loss, aux).
  // `epoch` keys the batch's negative-sampling streams.
  std::pair<double, double> RunBatch(const std::vector<Edge>& edges,
                                     size_t begin, size_t end,
                                     uint64_t epoch);
  // Sampled-negatives (Algorithm 1) and in-batch (Algorithm 2) loss
  // accumulation over the final embeddings; both only write into the
  // model's final-embedding gradient buffers (via the shard reduction).
  // Sample s of the batch draws negatives from the counter-based stream
  // keyed (stream_seed_, epoch, begin + s) — `begin` doubles as the
  // batch's epoch-global sample offset.
  double AccumulateSampledLoss(const std::vector<Edge>& edges, size_t begin,
                               size_t end, uint64_t epoch);
  double AccumulateInBatchLoss(const std::vector<Edge>& edges, size_t begin,
                               size_t end);
  // Adds every shard's partial gradients into the model's gradient
  // tables in shard order; returns the summed loss.
  double ReduceShards(size_t num_shards);

  // Freezes (or reuses — see Evaluate) a snapshot of the model's
  // current state: re-runs Forward exactly as a synchronous eval would,
  // then copies+normalizes the final tables on the trainer's pool.
  std::shared_ptr<const serve::ModelSnapshot> FreezeSnapshot() const;
  // Folds one completed evaluation into `result` (best/final/evals) and
  // the early-stop counter; returns true when training should stop.
  bool ApplyEvalRecord(TrainResult& result, const EvalRecord& rec,
                       int* evals_without_improvement);
  // Joins every pending background pass, applying each record in epoch
  // order; returns true when any of them tripped early stopping.
  bool JoinAsyncEvals(TrainResult& result, int* evals_without_improvement);

  const Dataset& data_;
  EmbeddingModel& model_;
  const LossFunction& loss_;
  const NegativeSampler& sampler_;
  TrainConfig config_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::vector<WorkerScratch> scratch_;   // one per pool worker
  std::vector<ShardGrad> shards_;        // one per shard, reused per batch
  Evaluator evaluator_;
  std::unique_ptr<AsyncEvaluator> async_eval_;  // null unless async_eval
  std::unique_ptr<Optimizer> optimizer_;
  Rng rng_;
  uint64_t stream_seed_;  // keys the per-sample negative-draw streams

  // Snapshot-reuse bookkeeping: the optimizer-step counter, the last
  // frozen snapshot and the step it captured. Evaluate() and the async
  // submit path share a freeze when no step happened in between.
  uint64_t step_count_ = 0;
  mutable std::shared_ptr<const serve::ModelSnapshot> frozen_snapshot_;
  mutable uint64_t frozen_snapshot_step_ = 0;
  mutable size_t snapshots_frozen_ = 0;
};

}  // namespace bslrec

#endif  // BSLREC_TRAIN_TRAINER_H_
