// Read-only model snapshot for scoring.
//
// A `ModelSnapshot` freezes the state an inference request needs: the
// L2-normalized final user and item tables copied out of an
// `EmbeddingModel` at a single point in time. Once built, the snapshot
// is immutable and fully self-contained — the source model may keep
// training, be checkpointed, or be destroyed without invalidating
// outstanding readers.
//
// Both the `InferenceService` (serving traffic) and the `Evaluator`
// (offline metrics) consume the same snapshot type, so "what the
// evaluator measured" and "what the service returns" are the same
// numbers by construction: cosine scores are Dot(user_row, item_row)
// over rows normalized by the identical `vec::Normalize` kernel.
//
// Construction normalizes both tables in parallel over a
// `runtime::ThreadPool`; rows are independent, so the fill is
// bit-identical for any worker count.
#ifndef BSLREC_SERVE_MODEL_SNAPSHOT_H_
#define BSLREC_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>

#include "math/matrix.h"
#include "models/model.h"
#include "runtime/thread_pool.h"

namespace bslrec::serve {

class ModelSnapshot {
 public:
  // Copies and normalizes `model`'s final embeddings (the model must
  // have run Forward). `pool` is only used during construction.
  ModelSnapshot(const EmbeddingModel& model, runtime::ThreadPool& pool);

  uint32_t num_users() const { return num_users_; }
  uint32_t num_items() const { return num_items_; }
  size_t dim() const { return dim_; }

  // Unit-norm embedding rows (zero vectors stay zero).
  const float* UserVec(uint32_t u) const { return user_normed_.Row(u); }
  const float* ItemVec(uint32_t i) const { return item_normed_.Row(i); }

 private:
  uint32_t num_users_;
  uint32_t num_items_;
  size_t dim_;
  Matrix user_normed_;
  Matrix item_normed_;
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_MODEL_SNAPSHOT_H_
