// Read-only model snapshot for scoring.
//
// A `ModelSnapshot` freezes the state an inference request needs: the
// L2-normalized final user and item tables copied out of an
// `EmbeddingModel` at a single point in time. Once built, the snapshot
// is immutable and fully self-contained — the source model may keep
// training, be checkpointed, or be destroyed without invalidating
// outstanding readers.
//
// Both the `InferenceService` (serving traffic) and the `Evaluator`
// (offline metrics) consume the same snapshot type, so "what the
// evaluator measured" and "what the service returns" are the same
// numbers by construction: cosine scores are Dot(user_row, item_row)
// over rows normalized by the identical `vec::Normalize` kernel.
//
// Construction normalizes both tables in parallel over a
// `runtime::ThreadPool`; rows are independent, so the fill is
// bit-identical for any worker count.
//
// With `SnapshotOptions::quantize_items` the snapshot additionally
// carries a symmetric int8-quantized copy of the item table (per-item
// scale, built in the same parallel freeze) plus the per-item scalars
// the quantized scorer's certification bound needs. The quantized table
// is an *acceleration structure*, not an approximation of the snapshot:
// every served score is still computed from the fp32 rows (see
// topk_scorer.h), so a quantized snapshot answers identically to an
// unquantized one.
//
// Two further opt-in tables trade exactness for speed (topk_scorer.h
// documents both scan modes and their determinism guarantees):
//
//   * `fp16_items` — an IEEE-half copy of the item table (half the scan
//     traffic of fp32) driving the certification-free fp16 two-phase
//     scan (`ScorerOptions::fp16`);
//   * `ivf` — an IVF coarse index (ivf_index.h) built over the
//     normalized item table at freeze time, driving true ANN retrieval
//     (`ScorerOptions::exact = false`).
#ifndef BSLREC_SERVE_MODEL_SNAPSHOT_H_
#define BSLREC_SERVE_MODEL_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "math/matrix.h"
#include "models/model.h"
#include "runtime/thread_pool.h"
#include "serve/ivf_index.h"

namespace bslrec::serve {

struct SnapshotOptions {
  // Also build the int8 item table (enables ScorerOptions::quantize).
  bool quantize_items = false;
  // Also build the fp16 item table (enables ScorerOptions::fp16).
  bool fp16_items = false;
  // With ivf.build, also build the IVF coarse index over the item table
  // (enables ScorerOptions::exact = false). See ivf_index.h.
  IvfBuildOptions ivf;
};

class ModelSnapshot {
 public:
  // Copies and normalizes `model`'s final embeddings (the model must
  // have run Forward). `pool` is only used during construction.
  ModelSnapshot(const EmbeddingModel& model, runtime::ThreadPool& pool,
                SnapshotOptions options = {});

  uint32_t num_users() const { return num_users_; }
  uint32_t num_items() const { return num_items_; }
  size_t dim() const { return dim_; }

  // Unit-norm embedding rows (zero vectors stay zero).
  const float* UserVec(uint32_t u) const { return user_normed_.Row(u); }
  const float* ItemVec(uint32_t i) const { return item_normed_.Row(i); }

  // Quantized item table (present iff built with quantize_items).
  bool has_quantized_items() const { return !item_scale_.empty(); }
  // int8 codes of item row i: ItemVec(i)[j] ~= ItemCodes(i)[j]*ItemScale(i).
  const int8_t* ItemCodes(uint32_t i) const {
    return item_codes_.data() + static_cast<size_t>(i) * dim_;
  }
  float ItemScale(uint32_t i) const { return item_scale_[i]; }
  // ItemScale(i) * sum_j |ItemCodes(i)[j]| — the per-item factor of the
  // quantized scorer's error bound, precomputed at freeze time.
  float ItemScaleL1(uint32_t i) const { return item_scale_l1_[i]; }

  // fp16 item table (present iff built with fp16_items): row i holds
  // dim() IEEE-half codes of ItemVec(i), encoded by vec::EncodeF16.
  bool has_fp16_items() const { return !item_f16_.empty(); }
  const uint16_t* ItemF16(uint32_t i) const {
    return item_f16_.data() + static_cast<size_t>(i) * dim_;
  }

  // IVF coarse index (non-null iff built with ivf.build).
  const IvfIndex* ivf() const { return ivf_.get(); }

 private:
  uint32_t num_users_;
  uint32_t num_items_;
  size_t dim_;
  Matrix user_normed_;
  Matrix item_normed_;
  std::vector<int8_t> item_codes_;     // num_items x dim, row-major
  std::vector<float> item_scale_;      // per item
  std::vector<float> item_scale_l1_;   // per item
  std::vector<uint16_t> item_f16_;     // num_items x dim, row-major
  std::unique_ptr<const IvfIndex> ivf_;
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_MODEL_SNAPSHOT_H_
