// Non-blocking epoll TCP transport for the serving front door.
//
// `NetServer` puts the concurrent front door (serving_frontend.h) on a
// socket: it accepts connections, splits the byte stream into
// newline-delimited request lines, parses them with the shared wire
// grammar (wire.h — the same grammar the bslrec_serve CLI speaks), and
// turns every parsed request into a `ServingFrontEnd::Submit`.
// Connection handlers never score anything: all of the front door's
// machinery (micro-batching, admission control, deadlines, lanes,
// brownout, hot-swap) is what serves the request; the server is just a
// producer pool plus response plumbing.
//
// Threading model
//   * `io_threads` event-loop threads, each owning a private epoll
//     instance. Thread 0 additionally owns the listen socket; accepted
//     connections are assigned round-robin across the loops. A
//     connection's reads and line splitting happen only on its owning
//     loop, so per-connection input needs no locking.
//   * One completion pump thread consumes a global FIFO of
//     (connection, future) pairs in submission order, blocks on each
//     future, formats the response (or maps the future's typed error
//     through `StatusFromException`), and appends it to the owning
//     connection's output buffer — flushing inline and arming EPOLLOUT
//     on short writes. Because the FIFO preserves submission order and
//     a connection's lines are submitted sequentially by one loop,
//     responses go out in request order per connection (parse errors
//     are routed through the same FIFO so ERR lines keep their place).
//   * Under `OverflowPolicy::kBlock` a full front-door queue blocks
//     `Submit`, which blocks the owning io loop: backpressure
//     propagates to every connection on that loop — the socket-level
//     analogue of the CLI producer stalling. Shedding policies never
//     block; sheds surface as `ERR _ OVERLOAD retry_after_us=<n>`.
//
// Protocol
//   * Requests/responses per the grammar documented atop wire.h; both
//     the wire form (`TOPK ...`) and the legacy CLI form
//     (`<user> [<k>] [all]`) are accepted. Blank lines and
//     '#'-comments are ignored (no response). A connection that
//     accumulates more than `max_line_bytes` without a newline gets
//     one `ERR - BAD_REQUEST` line and is hung up (bounded input
//     memory); a *complete* over-long or malformed line gets its ERR
//     response and the connection stays usable.
//
// Shutdown
//   * `Stop()` drains: stop accepting and reading, answer every
//     request already submitted, flush every connection's pending
//     bytes (bounded by `drain_flush_ms` per poll), then close. The
//     destructor calls Stop().
#ifndef BSLREC_SERVE_NET_SERVER_H_
#define BSLREC_SERVE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/serving_frontend.h"
#include "serve/wire.h"

namespace bslrec::serve {

struct NetServerConfig {
  // Listen address. Tests and the bench bind loopback.
  std::string bind_address = "127.0.0.1";
  // 0 = ephemeral; the bound port is reported by port() after Start.
  uint16_t port = 0;
  int backlog = 128;
  // Event-loop threads (>= 1). Thread 0 also accepts.
  size_t io_threads = 1;
  // Longest accepted request line; a connection exceeding it without
  // a newline is answered with BAD_REQUEST and hung up.
  size_t max_line_bytes = 4096;
  // Cutoff for request lines that name no k (the CLI's --k).
  uint32_t default_k = 10;
  // Per-poll wait while flushing remaining output during Stop().
  int drain_flush_ms = 100;
};

class NetServer {
 public:
  // Serves `frontend`, which must outlive the server (destroy the
  // server first). Construction opens nothing; call Start().
  NetServer(ServingFrontEnd& frontend, NetServerConfig config = {});
  // Stop()s if still running.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Opens the listen socket and starts the io + pump threads. False
  // (with the reason in last_error()) when the socket setup fails —
  // the library reports recoverable I/O errors by value, not throw.
  bool Start();
  // See the shutdown note above. Idempotent; safe from any thread
  // (not from io/pump callbacks).
  void Stop();

  // The bound port (resolves port 0), valid after Start.
  uint16_t port() const { return bound_port_; }
  const std::string& last_error() const { return last_error_; }

  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t connections_closed = 0;
    uint64_t lines = 0;          // request lines parsed (incl. bad)
    uint64_t requests = 0;       // submitted to the front door
    uint64_t bad_requests = 0;   // BAD_REQUEST responses
    uint64_t responses_ok = 0;   // OK lines written
    uint64_t responses_err = 0;  // ERR lines from failed futures
  };
  Stats stats() const;

 private:
  // One accepted socket. `inbuf` is touched only by the owning io
  // loop; everything else is guarded by `mu` (the io loop and the
  // pump both write/flush).
  struct Connection {
    Connection(int fd, int epoll_fd, size_t owner)
        : fd(fd), epoll_fd(epoll_fd), owner(owner) {}
    const int fd;
    const int epoll_fd;  // the owning io loop's epoll instance
    const size_t owner;  // index of the owning io loop
    std::string inbuf;   // owning io loop only
    std::mutex mu;
    std::string outbuf;
    size_t pending = 0;        // responses queued but not yet appended
    bool want_write = false;   // EPOLLOUT armed
    bool peer_closed = false;  // read side saw EOF / error
    bool close_after_flush = false;  // protocol violation: hang up
    bool broken = false;       // write side failed: close now
    bool closed = false;       // fd closed and deregistered
  };

  // One pump entry: either a future to await or a pre-formatted line
  // (parse errors keep their submission-order slot this way).
  struct PumpItem {
    std::shared_ptr<Connection> conn;
    std::string id;
    bool has_future = false;
    std::future<ServedResponse> future;
    std::string immediate;  // formatted ERR line when !has_future
  };

  void IoLoop(size_t index);
  void PumpLoop();
  void AcceptPending();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  // Splits complete lines out of conn->inbuf and handles each.
  void ProcessInput(const std::shared_ptr<Connection>& conn);
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line);
  void EnqueuePump(PumpItem item);
  // Appends one framed response line and flushes.
  void Deliver(const std::shared_ptr<Connection>& conn, std::string line);
  // Writes as much of outbuf as the socket accepts; arms/disarms
  // EPOLLOUT. Caller holds conn->mu.
  void FlushLocked(Connection& conn);
  bool ShouldCloseLocked(const Connection& conn) const;
  // Marks the connection closed and deregisters it; idempotent,
  // callable from any thread. The actual ::close(fd) is deferred to
  // the owning io loop (DrainDeadFds) so it can never race that
  // loop's in-flight ::read — and the fd number cannot be recycled
  // while a stale epoll event for it may still be pending. Once the
  // io threads have been joined, Stop() closes leftovers directly.
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  // Closes fds deferred by CloseConnection for io loop `index`. Only
  // that loop calls it (between epoll_wait rounds).
  void DrainDeadFds(size_t index);
  // Closes every still-deferred fd; only valid with io + pump joined.
  void CloseRemainingDeadFds();
  std::shared_ptr<Connection> LookupConnection(int fd);
  void WakeIoThreads();
  void FinalFlushAndCloseAll();

  ServingFrontEnd& frontend_;
  const NetServerConfig config_;
  wire::ParseOptions parse_options_;

  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::string last_error_;
  std::vector<int> epoll_fds_;
  std::vector<int> wake_fds_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> io_shutdown_{false};

  std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  std::atomic<size_t> next_io_{0};  // round-robin loop assignment

  // Per-io-loop lists of fds whose connections are closed but whose
  // ::close is pending on the owner loop (see CloseConnection).
  std::mutex dead_mu_;
  std::vector<std::vector<int>> dead_fds_;

  std::mutex pump_mu_;
  std::condition_variable pump_cv_;        // wakes the pump
  std::condition_variable pump_drain_cv_;  // wakes Stop()
  std::deque<PumpItem> pump_queue_;
  bool pump_busy_ = false;
  bool pump_shutdown_ = false;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> lines_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> bad_requests_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> responses_err_{0};

  std::vector<std::thread> io_threads_;
  std::thread pump_thread_;
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_NET_SERVER_H_
