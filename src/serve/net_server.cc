#include "serve/net_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "math/check.h"

namespace bslrec::serve {
namespace {

// epoll_ctl wrapper; registration failures on live fds are programmer
// errors (bad fd lifecycle), except the benign ones a raced close can
// produce (ENOENT/EBADF — the connection is already deregistered).
void EpollCtl(int epoll_fd, int op, int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (epoll_ctl(epoll_fd, op, fd, &ev) != 0) {
    BSLREC_CHECK(errno == ENOENT || errno == EBADF || errno == EEXIST);
  }
}

}  // namespace

NetServer::NetServer(ServingFrontEnd& frontend, NetServerConfig config)
    : frontend_(frontend), config_(std::move(config)) {
  BSLREC_CHECK(config_.io_threads >= 1);
  BSLREC_CHECK(config_.max_line_bytes > 0);
  parse_options_.num_users = frontend_.current_snapshot()->num_users();
  parse_options_.default_k = config_.default_k;
  parse_options_.max_line_bytes = config_.max_line_bytes;
}

NetServer::~NetServer() { Stop(); }

bool NetServer::Start() {
  BSLREC_CHECK(!started_.load());
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    last_error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    last_error_ = "invalid bind address '" + config_.bind_address + "'";
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    last_error_ = std::string("bind/listen ") + config_.bind_address + ":" +
                  std::to_string(config_.port) + ": " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  epoll_fds_.resize(config_.io_threads, -1);
  wake_fds_.resize(config_.io_threads, -1);
  dead_fds_.assign(config_.io_threads, {});
  for (size_t i = 0; i < config_.io_threads; ++i) {
    epoll_fds_[i] = ::epoll_create1(EPOLL_CLOEXEC);
    wake_fds_[i] = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    BSLREC_CHECK(epoll_fds_[i] >= 0 && wake_fds_[i] >= 0);
    EpollCtl(epoll_fds_[i], EPOLL_CTL_ADD, wake_fds_[i], EPOLLIN);
  }
  EpollCtl(epoll_fds_[0], EPOLL_CTL_ADD, listen_fd_, EPOLLIN);

  started_.store(true);
  pump_thread_ = std::thread([this] { PumpLoop(); });
  io_threads_.reserve(config_.io_threads);
  for (size_t i = 0; i < config_.io_threads; ++i) {
    io_threads_.emplace_back([this, i] { IoLoop(i); });
  }
  return true;
}

void NetServer::Stop() {
  if (!started_.load()) return;
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;

  // 1. Halt the event loops: no more accepts, reads, or submissions.
  //    Requests already handed to the front door stay in flight.
  io_shutdown_.store(true);
  WakeIoThreads();
  for (std::thread& t : io_threads_) t.join();
  io_threads_.clear();
  if (listen_fd_ >= 0) {
    EpollCtl(epoll_fds_[0], EPOLL_CTL_DEL, listen_fd_, 0);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain the pump: every submitted request is answered and its
  //    response appended (and opportunistically written).
  {
    std::unique_lock<std::mutex> lock(pump_mu_);
    pump_drain_cv_.wait(lock,
                        [this] { return pump_queue_.empty() && !pump_busy_; });
    pump_shutdown_ = true;
  }
  pump_cv_.notify_all();
  pump_thread_.join();

  // 3. Flush what the sockets would not take inline, then close. With
  //    io + pump joined, deferred fds have no racing reader left.
  FinalFlushAndCloseAll();
  CloseRemainingDeadFds();
  for (int fd : wake_fds_) ::close(fd);
  for (int fd : epoll_fds_) ::close(fd);
  wake_fds_.clear();
  epoll_fds_.clear();
}

NetServer::Stats NetServer::stats() const {
  Stats s;
  s.connections_accepted = accepted_.load();
  s.connections_closed = closed_.load();
  s.lines = lines_.load();
  s.requests = requests_.load();
  s.bad_requests = bad_requests_.load();
  s.responses_ok = responses_ok_.load();
  s.responses_err = responses_err_.load();
  return s;
}

void NetServer::WakeIoThreads() {
  for (int fd : wake_fds_) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
  }
}

std::shared_ptr<NetServer::Connection> NetServer::LookupConnection(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  const auto it = conns_.find(fd);
  return it == conns_.end() ? nullptr : it->second;
}

void NetServer::IoLoop(size_t index) {
  epoll_event events[64];
  while (!io_shutdown_.load()) {
    const int n = ::epoll_wait(epoll_fds_[index], events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    // Close fds the pump retired since the last round. Doing it here —
    // on the owning loop, between event rounds — is what makes a close
    // unable to race this loop's reads.
    DrainDeadFds(index);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[index]) {
        uint64_t drained;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fds_[index], &drained, sizeof(drained));
        continue;
      }
      if (index == 0 && fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      const std::shared_ptr<Connection> conn = LookupConnection(fd);
      if (conn == nullptr) continue;
      // A raced close can recycle an fd onto another loop between the
      // epoll_wait and the lookup; only the owning loop may touch it.
      if (conn->epoll_fd != epoll_fds_[index]) continue;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        HandleReadable(conn);
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
    }
  }
}

void NetServer::AcceptPending() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN / transient accept errors
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const size_t target =
        next_io_.fetch_add(1) % config_.io_threads;
    auto conn = std::make_shared<Connection>(fd, epoll_fds_[target], target);
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_[fd] = std::move(conn);
    }
    EpollCtl(epoll_fds_[target], EPOLL_CTL_ADD, fd, EPOLLIN);
    accepted_.fetch_add(1);
  }
}

void NetServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  if (io_shutdown_.load()) return;
  bool eof = false;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      // Bound input memory: a client may not stream an unbounded line.
      if (conn->inbuf.find('\n') == std::string::npos &&
          conn->inbuf.size() > config_.max_line_bytes) {
        break;
      }
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    eof = true;  // hard read error: treat as peer close
    break;
  }
  ProcessInput(conn);
  if (eof) {
    bool close_now;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->peer_closed = true;
      close_now = ShouldCloseLocked(*conn);
    }
    if (close_now) CloseConnection(conn);
  }
}

void NetServer::ProcessInput(const std::shared_ptr<Connection>& conn) {
  size_t start = 0;
  for (;;) {
    const size_t nl = conn->inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->inbuf.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    start = nl + 1;
    HandleLine(conn, line);
  }
  conn->inbuf.erase(0, start);
  if (conn->inbuf.size() > config_.max_line_bytes) {
    // Unterminated over-long line: answer once, then hang up.
    conn->inbuf.clear();
    ::shutdown(conn->fd, SHUT_RD);
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_flush = true;
      ++conn->pending;
    }
    bad_requests_.fetch_add(1);
    ServeStatus status;
    status.code = ErrorCode::kBadRequest;
    status.detail = "line exceeds " + std::to_string(config_.max_line_bytes) +
                    " bytes";
    PumpItem item;
    item.conn = conn;
    item.immediate = wire::FormatError("-", status);
    EnqueuePump(std::move(item));
  }
}

void NetServer::HandleLine(const std::shared_ptr<Connection>& conn,
                           const std::string& line) {
  if (io_shutdown_.load()) return;
  if (wire::IsIgnorableLine(line)) return;
  lines_.fetch_add(1);
  wire::ParsedRequest request;
  const ServeStatus status =
      wire::ParseRequest(line, parse_options_, &request);
  PumpItem item;
  item.conn = conn;
  item.id = request.id;
  if (status.ok()) {
    // Submit may block (kBlock backpressure) — that is the point:
    // the loop, and every connection it owns, waits with it.
    item.has_future = true;
    item.future = frontend_.Submit(request.topk);
    requests_.fetch_add(1);
  } else {
    bad_requests_.fetch_add(1);
    item.immediate = wire::FormatError(request.id, status);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    ++conn->pending;
  }
  EnqueuePump(std::move(item));
}

void NetServer::EnqueuePump(PumpItem item) {
  {
    std::lock_guard<std::mutex> lock(pump_mu_);
    pump_queue_.push_back(std::move(item));
  }
  pump_cv_.notify_one();
}

void NetServer::PumpLoop() {
  for (;;) {
    PumpItem item;
    {
      std::unique_lock<std::mutex> lock(pump_mu_);
      pump_cv_.wait(lock, [this] {
        return !pump_queue_.empty() || pump_shutdown_;
      });
      if (pump_queue_.empty()) return;  // shutdown after drain
      item = std::move(pump_queue_.front());
      pump_queue_.pop_front();
      pump_busy_ = true;
    }
    std::string line;
    if (item.has_future) {
      try {
        const ServedResponse response = item.future.get();
        line = wire::FormatResponse(item.id, response.degrade_mode,
                                    response.snapshot_seq, response.topk);
        responses_ok_.fetch_add(1);
      } catch (...) {
        line = wire::FormatError(
            item.id, StatusFromException(std::current_exception()));
        responses_err_.fetch_add(1);
      }
    } else {
      line = std::move(item.immediate);
    }
    line.push_back('\n');
    Deliver(item.conn, std::move(line));
    {
      std::lock_guard<std::mutex> lock(pump_mu_);
      pump_busy_ = false;
      if (pump_queue_.empty()) pump_drain_cv_.notify_all();
    }
  }
}

void NetServer::Deliver(const std::shared_ptr<Connection>& conn,
                        std::string line) {
  bool close_now;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    BSLREC_CHECK(conn->pending > 0);
    --conn->pending;
    if (!conn->closed) {
      conn->outbuf.append(line);
      FlushLocked(*conn);
    }
    close_now = ShouldCloseLocked(*conn);
  }
  if (close_now) CloseConnection(conn);
}

void NetServer::FlushLocked(Connection& conn) {
  while (!conn.outbuf.empty()) {
    const ssize_t n = ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {  // not expected from TCP send; treat as broken
      conn.broken = true;
      conn.outbuf.clear();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!conn.want_write) {
        EpollCtl(conn.epoll_fd, EPOLL_CTL_MOD, conn.fd,
                 EPOLLIN | EPOLLOUT);
        conn.want_write = true;
      }
      return;
    }
    // Hard write error (peer went away): nothing more can be sent.
    conn.broken = true;
    conn.outbuf.clear();
    return;
  }
  if (conn.want_write) {
    EpollCtl(conn.epoll_fd, EPOLL_CTL_MOD, conn.fd, EPOLLIN);
    conn.want_write = false;
  }
}

bool NetServer::ShouldCloseLocked(const Connection& conn) const {
  if (conn.closed) return false;
  if (conn.broken) return true;
  return (conn.peer_closed || conn.close_after_flush) && conn.pending == 0 &&
         conn.outbuf.empty();
}

void NetServer::HandleWritable(const std::shared_ptr<Connection>& conn) {
  bool close_now;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    FlushLocked(*conn);
    close_now = ShouldCloseLocked(*conn);
  }
  if (close_now) CloseConnection(conn);
}

void NetServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.erase(conn->fd);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    EpollCtl(conn->epoll_fd, EPOLL_CTL_DEL, conn->fd, 0);
  }
  {
    std::lock_guard<std::mutex> lock(dead_mu_);
    dead_fds_[conn->owner].push_back(conn->fd);
  }
  closed_.fetch_add(1);
  // Nudge the owner so the deferred close happens promptly. Harmless
  // when the owner loop has already exited (Stop closes leftovers).
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fds_[conn->owner], &one, sizeof(one));
}

void NetServer::DrainDeadFds(size_t index) {
  std::vector<int> dead;
  {
    std::lock_guard<std::mutex> lock(dead_mu_);
    dead.swap(dead_fds_[index]);
  }
  for (int fd : dead) ::close(fd);
}

void NetServer::CloseRemainingDeadFds() {
  std::lock_guard<std::mutex> lock(dead_mu_);
  for (std::vector<int>& list : dead_fds_) {
    for (int fd : list) ::close(fd);
    list.clear();
  }
}

void NetServer::FinalFlushAndCloseAll() {
  std::vector<std::shared_ptr<Connection>> remaining;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    remaining.reserve(conns_.size());
    for (const auto& [fd, conn] : conns_) remaining.push_back(conn);
  }
  for (const std::shared_ptr<Connection>& conn : remaining) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      // Bounded flush: give a slow client a few polls, not forever.
      for (int attempts = 0;
           !conn->closed && !conn->broken && !conn->outbuf.empty() &&
           attempts < 50;
           ++attempts) {
        FlushLocked(*conn);
        if (conn->outbuf.empty() || conn->broken) break;
        pollfd pfd{conn->fd, POLLOUT, 0};
        ::poll(&pfd, 1, config_.drain_flush_ms);
      }
    }
    CloseConnection(conn);
  }
}

}  // namespace bslrec::serve
