// Wire protocol + typed error surface for the serving stack.
//
// One grammar, two transports: `serve::wire` owns request parsing,
// response formatting, and the error-code mapping used by every entry
// point — the `bslrec_serve` stdin/file CLI and the `serve::NetServer`
// socket transport (net_server.h) parse and format through the same
// functions, so a request line means exactly the same thing on stdin
// and on a socket, and a response renders identically.
//
// Request grammar (newline-delimited; one request per line; blank
// lines and lines whose first non-blank character is '#' are ignored):
//
//   wire form:
//     TOPK <user> <k> [FILTER=seen|none] [LANE=interactive|bulk]
//          [DEADLINE_US=<n>] [ID=<token>]
//   legacy CLI form (bslrec_serve stdin compatibility; also accepted
//   on the socket):
//     <user> [<k>] [all]
//
// Fields:
//   <user>        user id in [0, num_users)
//   <k>           ranking cutoff in [1, 2^32-1]
//   FILTER=seen   mask the user's train positives (default)
//   FILTER=none   no seen-item filtering (legacy token: "all")
//   LANE=         admission lane (default interactive)
//   DEADLINE_US=  relative SLO in microseconds (0 = front-door default)
//   ID=           opaque client token (<= 64 bytes, no whitespace)
//                 echoed on the response line; defaults to "-"
//
// Response grammar (one line per request, in request order per
// connection / input stream):
//
//   OK <id> <degrade_mode> seq=<snapshot_seq> <item>:<score> ...
//   ERR <id> OVERLOAD retry_after_us=<n>
//   ERR <id> DEADLINE stage=<admission|queue|batch>
//   ERR <id> BAD_REQUEST <detail>
//   ERR <id> INTERNAL <detail>
//
// where <degrade_mode> is none|ivf|fp16|quantized (DegradeModeName)
// naming
// the brownout tier that served the response, <snapshot_seq> the
// publication that produced it, and scores print with six decimals
// ("%.6f" — the CLI's historical precision).
//
// Error-code table (ErrorCode <-> wire <-> exception):
//
//   code                wire rendering                    thrown as
//   kOk                 OK ...                            —
//   kOverload           ERR _ OVERLOAD retry_after_us=n   OverloadError
//   kDeadlineAdmission  ERR _ DEADLINE stage=admission    DeadlineExceededError
//   kDeadlineQueue      ERR _ DEADLINE stage=queue        DeadlineExceededError
//   kDeadlineBatch      ERR _ DEADLINE stage=batch        DeadlineExceededError
//   kBadRequest         ERR _ BAD_REQUEST detail          std::invalid_argument
//   kInternal           ERR _ INTERNAL detail             std::runtime_error
//
// `ServeError` (below) is the common base of the front door's typed
// exceptions (OverloadError, DeadlineExceededError —
// serving_frontend.h); `StatusFromException` collapses any exception a
// serving future can carry into a `ServeStatus`, so transports and the
// CLI switch on one enum instead of catch cascades.
#ifndef BSLREC_SERVE_WIRE_H_
#define BSLREC_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <string_view>

#include "serve/ranking_engine.h"

namespace bslrec::serve {

// One value per way a served request can resolve. The three deadline
// codes mirror DeadlineStage so a wire client can tell *where* the SLO
// was missed without a second field.
enum class ErrorCode : uint8_t {
  kOk = 0,
  kOverload,            // shed by admission control (retriable)
  kDeadlineAdmission,   // SLO passed while blocked for queue space
  kDeadlineQueue,       // SLO passed waiting in the queue
  kDeadlineBatch,       // SLO passed while the batch was scored
  kBadRequest,          // malformed request line or invalid field
  kInternal,            // scoring failure or unexpected error
};
const char* ErrorCodeName(ErrorCode code);

// Which enforcement point caught an expired request.
enum class DeadlineStage : uint8_t {
  kAdmission = 0,  // waited for queue space past the deadline (kBlock)
  kQueue,          // already expired when dequeued
  kBatch,          // expired while its batch was being scored
};
const char* DeadlineStageName(DeadlineStage stage);
ErrorCode ErrorCodeForStage(DeadlineStage stage);
// True iff `code` is one of the three deadline codes; fills `stage`.
bool DeadlineStageForCode(ErrorCode code, DeadlineStage* stage);

// The approximate tier brownout switched a response to.
enum class DegradeMode : uint8_t {
  kNone = 0,   // served at the configured tier
  kIvf,        // IVF ANN at brownout.nprobe probes
  kFp16,       // fp16 two-phase scan
  kQuantized,  // int8 certified scan (exact results, cheaper scan)
};
const char* DegradeModeName(DegradeMode mode);
// Inverse of DegradeModeName; false when `name` matches no mode.
bool DegradeModeFromName(std::string_view name, DegradeMode* mode);

// Common base of the serving stack's typed exceptions: every error a
// front-door future can fail with that has a wire representation
// derives from this and names its ErrorCode.
class ServeError : public std::runtime_error {
 public:
  ServeError(const std::string& what, ErrorCode code)
      : std::runtime_error(what), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

// Exception-free view of how a request resolved: the code plus the
// payload the wire rendering needs.
struct ServeStatus {
  ErrorCode code = ErrorCode::kOk;
  std::string detail;           // human detail (BAD_REQUEST / INTERNAL)
  uint32_t retry_after_us = 0;  // kOverload: server-suggested backoff
  bool ok() const { return code == ErrorCode::kOk; }
};

// Collapses any exception a serving future can carry into a status:
// ServeError -> its code (+ retry_after_us for OverloadError),
// std::invalid_argument -> kBadRequest, anything else -> kInternal.
// `error` must be non-null.
ServeStatus StatusFromException(std::exception_ptr error);

namespace wire {

// Longest accepted ID= token.
inline constexpr size_t kMaxIdBytes = 64;

struct ParseOptions {
  // User ids must be in [0, num_users).
  uint32_t num_users = 0;
  // Cutoff when the request names none.
  uint32_t default_k = 10;
  // Lane when the request names none.
  RequestLane default_lane = RequestLane::kInteractive;
  // Longest accepted request line; longer lines are kBadRequest
  // (transports additionally hang up — net_server.h). 0 = unlimited.
  size_t max_line_bytes = 4096;
};

// One parsed request line. `topk.extra_seen` is always empty: the
// wire carries no exclusion lists.
struct ParsedRequest {
  TopKRequest topk;
  std::string id = "-";  // ID= token, or "-" when absent
};

// True when the line is skipped entirely (blank / '#'-comment) rather
// than parsed — the caller emits no response for it.
bool IsIgnorableLine(std::string_view line);

// Parses one request line (either grammar form; the first token
// decides). Returns kOk and fills `out`, or kBadRequest with a detail
// message. On failure `out->id` still carries any ID= token parsed
// before the error, so the ERR line can be correlated.
ServeStatus ParseRequest(std::string_view line, const ParseOptions& options,
                         ParsedRequest* out);

// "OK <id> <mode> seq=<n> <item>:<score> ..." (no trailing newline —
// transports append their own framing).
std::string FormatResponse(std::string_view id, DegradeMode mode,
                           uint64_t snapshot_seq, const TopKResponse& topk);
// "ERR <id> ..." per the response grammar. `status.code` must not be
// kOk. Newlines in the detail are flattened to spaces to keep the
// line protocol intact.
std::string FormatError(std::string_view id, const ServeStatus& status);

// The CLI rendering bslrec_serve has always printed:
// "user=<u> k=<k> items=<item>:<score>,..." — byte-identical to the
// historical printf path.
std::string FormatCliResponse(const TopKRequest& request,
                              const TopKResponse& topk);
// Verbose CLI rendering: the same line plus
// " degraded=<mode> seq=<n>" so degraded responses are attributable.
std::string FormatCliResponse(const TopKRequest& request,
                              const TopKResponse& topk, DegradeMode mode,
                              uint64_t snapshot_seq);
// The CLI error token ("overload", "deadline-<stage>", "bad-request",
// "internal") printed as "user=<u> k=<k> error=<token>".
const char* CliErrorToken(ErrorCode code);

// A response line parsed back (tests, client tooling, bench probes).
struct ParsedResponse {
  bool ok = false;  // OK line vs ERR line
  std::string id;
  // OK payload:
  DegradeMode degrade_mode = DegradeMode::kNone;
  uint64_t snapshot_seq = 0;
  TopKResponse topk;
  // ERR payload:
  ServeStatus status;
};

// Parses one response line of either kind; false when the line is not
// a well-formed response.
bool ParseResponse(std::string_view line, ParsedResponse* out);

}  // namespace wire
}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_WIRE_H_
