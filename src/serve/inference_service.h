// Batched top-k inference service.
//
// `InferenceService` is the online counterpart of the offline
// `Evaluator`: it freezes a model into a read-only `ModelSnapshot` at
// construction and then answers single or batched top-k requests by
// sharded full-catalog scoring over a `runtime::ThreadPool` (see
// topk_scorer.h). Because the snapshot is an immutable copy, the
// source model may keep training while the service answers traffic.
//
// Request semantics
//   * `filter_seen` (default on) masks the user's training positives —
//     a recommendation list must never contain already-consumed items.
//     `extra_seen` masks additional per-request ids (sorted ascending),
//     e.g. items the user saw since the snapshot was taken.
//   * Responses are ordered by (score descending, item id ascending),
//     a strict total order, so every answer is unique and
//     bit-identical for any worker count and any batch packing:
//     HandleBatch(reqs)[i] == Handle(reqs[i]), always.
//
// Cutoff prefix reuse
//   * Default-filtered requests with k <= `ServeConfig::max_k` are
//     served from a per-user cached top-max_k ranking (computed on
//     first touch); smaller cutoffs are prefixes of it (the total
//     order gives rankings the prefix property). Custom-filtered or
//     deeper requests bypass the cache and are scored directly.
//
// Threading: the service drives its pool from the calling thread — use
// it from one thread at a time (put a queue in front for concurrent
// producers). One service handles one batch at a time.
#ifndef BSLREC_SERVE_INFERENCE_SERVICE_H_
#define BSLREC_SERVE_INFERENCE_SERVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "runtime/thread_pool.h"
#include "serve/model_snapshot.h"
#include "serve/topk_scorer.h"

namespace bslrec::serve {

struct ServeConfig {
  // Depth of the per-user cached ranking; requests with k <= max_k and
  // default filtering share one cached computation per user.
  uint32_t max_k = 100;
  // Catalog items per scoring shard (per-worker buffer size).
  uint32_t items_per_shard = CatalogScorer::kDefaultItemsPerShard;
  // Disable to score every request from scratch (benchmarks).
  bool cache_rankings = true;
  // Build an int8 item table at snapshot time and serve through the
  // certified two-phase quantized scan (see topk_scorer.h). Responses
  // are bit-identical to the exact scorer; only latency changes.
  bool quantize = false;
  // Extra phase-1 candidates per shard beyond each request's k.
  uint32_t candidate_margin = kDefaultCandidateMargin;
  runtime::RuntimeConfig runtime;
};

struct TopKRequest {
  uint32_t user = 0;
  uint32_t k = 10;
  bool filter_seen = true;            // mask the user's train positives
  std::span<const uint32_t> extra_seen;  // sorted extra ids to mask
};

struct TopKResponse {
  std::vector<uint32_t> items;  // best first, at most k
  std::vector<float> scores;    // cosine scores, parallel to items
};

class InferenceService {
 public:
  // Snapshots `model` (Forward must have run); `data` provides the
  // seen-item (train positive) lists and must outlive the service.
  InferenceService(const Dataset& data, const EmbeddingModel& model,
                   ServeConfig config = {});

  const ModelSnapshot& snapshot() const { return snapshot_; }
  const ServeConfig& config() const { return config_; }
  // Scan statistics (quantized mode: shards scanned / fallbacks).
  const CatalogScorer& scorer() const { return scorer_; }

  TopKResponse Handle(const TopKRequest& request);
  // Answers every request; responses[i] answers requests[i] and is
  // identical to Handle(requests[i]).
  std::vector<TopKResponse> HandleBatch(
      std::span<const TopKRequest> requests);

 private:
  const Dataset& data_;
  ServeConfig config_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  ModelSnapshot snapshot_;
  CatalogScorer scorer_;
  std::vector<uint8_t> cache_valid_;           // per user
  std::vector<std::vector<ScoredItem>> cache_;  // per user, top-max_k
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_INFERENCE_SERVICE_H_
