// Batched top-k inference service (synchronous, single-driver).
//
// `InferenceService` is the online counterpart of the offline
// `Evaluator`: it freezes a model into a read-only `ModelSnapshot` at
// construction and then answers single or batched top-k requests
// through a `RankingEngine` (ranking_engine.h — request semantics,
// cutoff-prefix reuse, and the bit-identity contracts live there).
// Because the snapshot is an immutable copy, the source model may keep
// training while the service answers traffic.
//
// Threading: the service drives its pool from the calling thread and is
// strictly *single-driver* — one thread, one Handle/HandleBatch at a
// time. Driving it from two threads used to race silently; it now
// aborts with a diagnostic. For concurrent producers use
// `serve::ServingFrontEnd` (serving_frontend.h), the documented
// concurrent entry point: a request queue + adaptive micro-batcher in
// front of this same engine, with live snapshot hot-swap.
#ifndef BSLREC_SERVE_INFERENCE_SERVICE_H_
#define BSLREC_SERVE_INFERENCE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "runtime/thread_pool.h"
#include "serve/model_snapshot.h"
#include "serve/ranking_engine.h"
#include "serve/topk_scorer.h"

namespace bslrec::serve {

class InferenceService {
 public:
  // Snapshots `model` (Forward must have run); `data` provides the
  // seen-item (train positive) lists and must outlive the service.
  InferenceService(const Dataset& data, const EmbeddingModel& model,
                   ServeConfig config = {});

  const ModelSnapshot& snapshot() const { return snapshot_; }
  const ServeConfig& config() const { return config_; }
  // Scan statistics (quantized mode: shards scanned / fallbacks).
  const CatalogScorer& scorer() const { return engine_->scorer(); }

  TopKResponse Handle(const TopKRequest& request);
  // Answers every request; responses[i] answers requests[i] and is
  // identical to Handle(requests[i]).
  std::vector<TopKResponse> HandleBatch(
      std::span<const TopKRequest> requests);

 private:
  ServeConfig config_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  ModelSnapshot snapshot_;
  std::unique_ptr<RankingEngine> engine_;
  // Catches a second thread entering Handle/HandleBatch while a call is
  // in flight (the single-driver contract above): aborts loudly instead
  // of racing the scorer scratch and the ranking cache.
  std::atomic<bool> busy_{false};
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_INFERENCE_SERVICE_H_
