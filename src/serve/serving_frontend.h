// Concurrent serving front door: bounded admission control, request
// queue, priority lanes, adaptive micro-batching, deadline
// enforcement, brownout degradation, and live snapshot hot-swap.
//
// `ServingFrontEnd` is the documented *concurrent* entry point to the
// serving stack — the queue the `InferenceService` docs always told
// callers to put in front. Any number of producer threads `Submit`
// requests; each submission returns a `std::future<ServedResponse>`
// that completes when the request has been scored — or fails with a
// typed error when admission control decided the request should not
// be scored at all (the overload state machine below).
//
// Pipeline
//   producers --> admission --> 2-lane MPMC queue --> micro-batcher
//                 control       (interactive/bulk)       |
//                                                        v
//                                     dispatcher-owned pool +
//                                     RankingEngine (exact or brownout)
//
//   * Admission control. With `max_queue_depth > 0` the queue is
//     bounded and `overflow` picks what happens at capacity:
//       - kBlock: the producer waits inside Submit until space frees
//         (classic backpressure; a request with a deadline stops
//         waiting at its deadline and fails with
//         DeadlineExceededError{kAdmission}).
//       - kShedNewest: the incoming request is refused — its future
//         fails with OverloadError (retriable; carries a
//         server-suggested backoff).
//       - kShedOldest: the oldest queued request is evicted to make
//         room (bulk lane first, then interactive — bulk is always the
//         first victim), its future failing with OverloadError, and
//         the incoming request is admitted.
//     `max_queue_depth == 0` keeps the historical unbounded queue.
//   * Priority lanes. Every request names a `RequestLane`
//     (TopKRequest::lane): interactive (default) or bulk. The
//     dispatcher drains the lanes weighted-fair —
//     `interactive_weight` requests from the interactive lane, then
//     `bulk_weight` from bulk, cycling until the batch fills — so a
//     bulk replay can never starve interactive traffic, and a busy
//     interactive lane still cannot fully starve bulk.
//   * Deadlines. A request's SLO is `TopKRequest::deadline_us`
//     (relative to Submit; 0 = `FrontEndConfig::default_deadline_us`,
//     which may itself be 0 = none). Deadlines are enforced at three
//     stages, each failing the future with DeadlineExceededError and
//     counting its own stat:
//       - admission (kBlock only): waited for queue space past the
//         deadline;
//       - queue: already expired when the dispatcher dequeued it — the
//         request fails fast instead of burning scorer cycles;
//       - batch: expired while its batch was being scored — the
//         ranking is discarded for that request only; the rest of the
//         batch is delivered normally. A deadline-missed request is
//         NEVER fulfilled with a ranking.
//   * Adaptive micro-batcher. The dispatcher opens a batch at the
//     oldest queued request (across both lanes) and flushes when
//     either `max_batch` requests are pending (size flush) or
//     `flush_deadline_us` has elapsed since that oldest request
//     arrived (deadline flush) — whichever fires first. Shutdown/drain
//     flushes immediately.
//   * Worker ownership (the TaskRunner pattern, task_runner.h). The
//     front end owns a *private* `runtime::ThreadPool`, and the single
//     dispatcher thread is its sole driver. Producers never touch the
//     pool; they only enqueue.
//
// Brownout degradation
//   * With `FrontEndConfig::brownout.enable`, the dispatcher watches
//     queue depth (and optionally observed batch latency) and trades
//     ranking exactness for bounded latency when the front door falls
//     behind: past the high-water mark it switches scoring to the
//     snapshot's cheapest *approximate* tier — the IVF index at
//     `brownout.nprobe` probes when the snapshot has one, else the
//     fp16 table, else the int8 quantized scan (which is exact in
//     results, cheaper in memory traffic) — and recovers to the
//     configured tier once depth falls to the low-water mark
//     (hysteresis, so the mode cannot flap batch-to-batch). Every
//     response scored in brownout is marked `degraded` with the
//     `DegradeMode` used. `BrownoutModeFor` / `BrownoutServeConfigFor`
//     expose the exact tier selection so callers can construct the
//     bit-identical reference service for any response.
//   * Determinism contract under brownout: admission and brownout
//     decide *whether and at what tier* a request is served — never
//     the bits of a served ranking at a given tier. A response served
//     exact is bit-identical to `InferenceService::Handle` under the
//     configured `ServeConfig`; a degraded response is bit-identical
//     to `InferenceService::Handle` under
//     `BrownoutServeConfigFor(config, mode)` against the same
//     snapshot.
//
// Fault injection
//   * `FrontEndConfig::fault_injector` (fault_injector.h) is a
//     deterministic seam on the dispatcher: before each batch the
//     injector may stall the dispatcher (queue grows — drives
//     admission control), delay the batch (slow scorer — drives
//     deadline expiry and latency brownout), or fail the batch (drives
//     error propagation). Faults flow through the exact production
//     code paths; tests and the bench use this to prove shedding,
//     deadlines, and brownout engage and recover.
//
// Snapshot hot-swap
//   * The front end serves whatever `ModelSnapshot` was most recently
//     published. `PublishSnapshot` wraps an immutable snapshot in
//     fresh `RankingEngine`s (exact + brownout tier when available;
//     caches are engine-local, so they are keyed per snapshot and can
//     never mix generations) and publishes them through a single
//     `std::atomic<std::shared_ptr>` store. Publication never blocks
//     serving and serving never blocks publication: batches in flight
//     finish on the shared_ptr they loaded, the next batch loads the
//     new one. Publications are serialized internally; `snapshot_seq`
//     in every response names the publication that served it
//     (monotone from 1).
//
// Errors
//   * Malformed requests (user out of range, k == 0, unsorted
//     extra_seen) fail their own future with std::invalid_argument;
//     the rest of the batch is served normally. Shed requests fail
//     with OverloadError (retriable — honor `retry_after_us`).
//     Deadline-missed requests fail with DeadlineExceededError naming
//     the stage that caught them. A scoring error fails every future
//     of the affected batch with a std::runtime_error carrying the
//     snapshot seq and lane context (so a CLI user sees which
//     generation failed); later batches proceed. The library's
//     no-exceptions rule stops at the future boundary: errors travel
//     through promises, never across the public API as throws —
//     except `HandleSync`/`HandleBatchSync`, which by definition
//     rethrow their future's error (HandleBatchSync rethrows the
//     first failing request's error, in request order).
//   * The destructor drains: every submitted request is served (or
//     failed) before the front end dies.
//
// Stats accounting invariant (tested; the bench's overload probe):
//   once the front end is idle (Drain() returned, no Submit running),
//     submitted == requests + shed_newest + shed_oldest
//                + expired_admission
//   where `requests` counts everything finalized by the dispatcher
//   (served, rejected-invalid, failed-by-scoring-error, expired at
//   queue or batch stage) and the other three count requests
//   finalized at admission, which never reach the dispatcher. With a
//   bounded queue, queue_depth_high_water <= max_queue_depth always.
#ifndef BSLREC_SERVE_SERVING_FRONTEND_H_
#define BSLREC_SERVE_SERVING_FRONTEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "runtime/thread_pool.h"
#include "serve/fault_injector.h"
#include "serve/model_snapshot.h"
#include "serve/ranking_engine.h"
#include "serve/wire.h"

namespace bslrec::serve {

// What a full bounded queue does to the overflowing request.
enum class OverflowPolicy : uint8_t {
  kBlock = 0,      // producer waits for space (backpressure)
  kShedNewest,     // refuse the incoming request
  kShedOldest,     // evict the oldest queued request (bulk lane first)
};

// Retriable load-shed failure: the server refused (or evicted) the
// request because the queue was full. `retry_after_us` is the
// server-suggested backoff before retrying. Derives from ServeError
// (wire.h) with code kOverload so transports switch on one enum.
class OverloadError : public ServeError {
 public:
  OverloadError(const std::string& what, uint32_t retry_after_us)
      : ServeError(what, ErrorCode::kOverload),
        retry_after_us_(retry_after_us) {}
  uint32_t retry_after_us() const { return retry_after_us_; }

 private:
  uint32_t retry_after_us_;
};

// The request's SLO passed before a ranking could be delivered. The
// request was not (or no longer) worth scoring; retrying is valid but
// the caller should reconsider its deadline. `code()` names the stage
// (kDeadlineAdmission / kDeadlineQueue / kDeadlineBatch — wire.h);
// `stage()` is the same fact as the DeadlineStage enum.
class DeadlineExceededError : public ServeError {
 public:
  DeadlineExceededError(const std::string& what, DeadlineStage stage)
      : ServeError(what, ErrorCodeForStage(stage)), stage_(stage) {}
  DeadlineStage stage() const { return stage_; }

 private:
  DeadlineStage stage_;
};

// The degraded tier a brownout would serve `snapshot` at under `serve`
// (kNone = no cheaper tier available: brownout cannot engage).
// Preference order: IVF index > fp16 table > int8 table.
DegradeMode BrownoutModeFor(const ModelSnapshot& snapshot,
                            const ServeConfig& serve);
// The ServeConfig of the brownout tier — build an InferenceService /
// RankingEngine from this to reproduce a degraded response bitwise.
ServeConfig BrownoutServeConfigFor(const ServeConfig& serve, DegradeMode mode,
                                   uint32_t brownout_nprobe);

struct BrownoutConfig {
  // Master switch. When off the front end never degrades.
  bool enable = false;
  // Enter brownout when total queued depth reaches this...
  size_t high_watermark = 64;
  // ...and recover only once it falls back to this (hysteresis; must
  // be < high_watermark).
  size_t low_watermark = 16;
  // Also enter brownout when the last batch took at least this long to
  // serve (microseconds; 0 = depth-only triggering).
  uint32_t latency_high_us = 0;
  // IVF probes while degraded (when the snapshot has an index).
  uint32_t nprobe = 2;
};

struct FrontEndConfig {
  // Flush a batch as soon as this many requests are pending.
  size_t max_batch = 64;
  // ... or when the oldest pending request has waited this long.
  uint32_t flush_deadline_us = 200;
  // Bounded admission: maximum queued (not yet dispatched) requests
  // across both lanes. 0 = unbounded (no admission control).
  size_t max_queue_depth = 0;
  // What happens to the overflowing request at capacity.
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  // Backoff carried by OverloadError on shed (server-suggested).
  uint32_t shed_retry_us = 1000;
  // Default relative deadline for requests with deadline_us == 0
  // (microseconds from Submit; 0 = no deadline).
  uint32_t default_deadline_us = 0;
  // Weighted-fair lane drain: per batch-fill cycle, take up to
  // `interactive_weight` interactive requests, then up to
  // `bulk_weight` bulk requests. Both must be >= 1.
  uint32_t interactive_weight = 7;
  uint32_t bulk_weight = 1;
  // Brownout degradation (see the header note).
  BrownoutConfig brownout;
  // Deterministic fault-injection seam (fault_injector.h); null = no
  // faults. Called only from the dispatcher thread.
  std::shared_ptr<FaultInjector> fault_injector;
  // Scoring configuration (ServeConfig::runtime sizes the private
  // pool; quantize requires published snapshots built with
  // SnapshotOptions::quantize_items).
  ServeConfig serve;
};

// One served request: the ranking, which snapshot publication produced
// it, and how admission treated it.
struct ServedResponse {
  TopKResponse topk;
  uint64_t snapshot_seq = 0;
  std::shared_ptr<const ModelSnapshot> snapshot;
  // True iff this response was scored at the brownout tier;
  // `degrade_mode` names it. The ranking is bit-identical to
  // InferenceService::Handle under BrownoutServeConfigFor(...) on
  // `snapshot`.
  bool degraded = false;
  DegradeMode degrade_mode = DegradeMode::kNone;
  // Time this request waited in the queue before its batch formed
  // (microseconds) — the bench's queue-wait percentile source.
  uint64_t queue_us = 0;
};

// Cumulative front-end counters (monotone; see stats() and the
// accounting invariant in the header note).
struct FrontEndStats {
  uint64_t requests = 0;          // finalized by the dispatcher
  uint64_t rejected = 0;          // failed validation (invalid_argument)
  uint64_t batches = 0;
  uint64_t size_flushes = 0;      // batch closed by max_batch
  uint64_t deadline_flushes = 0;  // batch closed by flush_deadline_us
  uint64_t drain_flushes = 0;     // batch closed by shutdown/drain
  uint64_t max_batch_served = 0;  // largest batch observed
  uint64_t snapshots_published = 0;  // including the initial snapshot
  // ---- admission control / overload ----
  uint64_t submitted = 0;         // every request entering Submit*
  uint64_t queue_depth_high_water = 0;  // max queued depth observed
  uint64_t blocked_submits = 0;   // producers that waited for space
  uint64_t shed_newest = 0;       // refused incoming (kShedNewest)
  uint64_t shed_oldest = 0;       // evicted queued (kShedOldest)
  uint64_t expired_admission = 0;  // deadline passed while blocked
  uint64_t expired_queue = 0;      // expired at dequeue — never scored
  uint64_t expired_batch = 0;      // expired during scoring — discarded
  uint64_t lane_submitted[kNumLanes] = {};  // by RequestLane
  uint64_t lane_served[kNumLanes] = {};     // fulfilled with rankings
  // ---- brownout ----
  uint64_t degraded_served = 0;   // responses scored at a degraded tier
  uint64_t brownout_entries = 0;
  uint64_t brownout_exits = 0;
  // Total time spent in brownout (microseconds). Accumulated at each
  // exit and at shutdown; a currently-active brownout span is not yet
  // included.
  uint64_t brownout_us = 0;
};

class ServingFrontEnd {
 public:
  // Serves `snapshot` (seq 1) until the next PublishSnapshot. `data`
  // provides seen-item lists and must outlive the front end.
  ServingFrontEnd(const Dataset& data,
                  std::shared_ptr<const ModelSnapshot> snapshot,
                  FrontEndConfig config = {});
  // Convenience: freezes `model` into the initial snapshot on the
  // front end's own pool (safe — the dispatcher has not started yet).
  // With brownout enabled the snapshot is additionally built with an
  // IVF index so the best degraded tier exists.
  ServingFrontEnd(const Dataset& data, const EmbeddingModel& model,
                  FrontEndConfig config = {});
  // Drains the queue (every request served or failed), then joins the
  // dispatcher.
  ~ServingFrontEnd();

  ServingFrontEnd(const ServingFrontEnd&) = delete;
  ServingFrontEnd& operator=(const ServingFrontEnd&) = delete;

  // Enqueues one request; thread-safe from any number of producers.
  // Copies `request.extra_seen` — the caller's span may be freed
  // immediately. The future completes with the served response or
  // fails with:
  //   std::invalid_argument   — malformed request
  //   OverloadError           — shed by the overflow policy
  //   DeadlineExceededError   — SLO passed before a ranking could be
  //                             delivered (any stage)
  //   std::runtime_error      — scoring failed (carries snapshot seq
  //                             and lane context)
  // Under OverflowPolicy::kBlock and a full queue, Submit *blocks*
  // until space frees, the request's deadline passes, or shutdown.
  std::future<ServedResponse> Submit(const TopKRequest& request);
  // Enqueues every request in order (admission applies per request);
  // result i belongs to requests[i].
  std::vector<std::future<ServedResponse>> SubmitBatch(
      std::span<const TopKRequest> requests);

  // Submit + wait. From N threads this *is* the closed-loop load the
  // bench generates; the micro-batcher coalesces concurrent callers.
  // Rethrows the future's typed error (see Submit).
  ServedResponse HandleSync(const TopKRequest& request);
  std::vector<ServedResponse> HandleBatchSync(
      std::span<const TopKRequest> requests);

  // Atomically swaps the served snapshot (zero serving stalls; see the
  // header note). Returns the publication's snapshot_seq. Thread-safe;
  // concurrent publications are serialized, last one wins.
  uint64_t PublishSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  // The currently served publication.
  std::shared_ptr<const ModelSnapshot> current_snapshot() const;
  uint64_t current_seq() const;
  // The degraded tier brownout would use for the current publication
  // (kNone = brownout disabled or no cheaper tier on this snapshot).
  DegradeMode current_brownout_mode() const;

  // Blocks until the front end is quiescent: both lanes empty and no
  // batch in flight. Post-condition: every future obtained from a
  // Submit/SubmitBatch call that *returned* before Drain() was entered
  // is ready (value or exception) — promises are fulfilled before the
  // dispatcher clears its in-flight count, and both are observed under
  // the same mutex (see the dispatcher note in serving_frontend.cc).
  // A producer still blocked inside Submit (kBlock backpressure) has
  // not returned a future yet, so it is NOT covered; concurrent
  // submitters can also re-fill the queue and extend the wait.
  void Drain();

  const FrontEndConfig& config() const { return config_; }
  FrontEndStats stats() const;

 private:
  // One publication: the snapshot plus the engine(s) bound to it. Only
  // the dispatcher calls HandleBatch (and thereby drives the pool /
  // mutates the caches); publishers only construct.
  struct State {
    State(const Dataset& data, std::shared_ptr<const ModelSnapshot> snap,
          runtime::ThreadPool& pool, const FrontEndConfig& config,
          uint64_t sequence);
    std::shared_ptr<const ModelSnapshot> snapshot;
    uint64_t seq;
    RankingEngine engine;  // the configured (primary) tier
    // Brownout tier for this snapshot; null when brownout is off or
    // the snapshot has no cheaper representation.
    DegradeMode brownout_mode = DegradeMode::kNone;
    std::unique_ptr<RankingEngine> brownout_engine;
  };

  // A queued request owning its exclusion list and its promise.
  struct Pending {
    TopKRequest req;
    std::vector<uint32_t> extra;  // backing store for req.extra_seen
    std::promise<ServedResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    // Absolute SLO (time_point::max() = none).
    std::chrono::steady_clock::time_point deadline;
    uint64_t queue_us = 0;  // filled at dequeue
  };

  // Shared tail of both constructors: validates config, publishes the
  // initial state, starts the dispatcher.
  void Init(std::shared_ptr<const ModelSnapshot> snapshot);
  void DispatchLoop();
  // Bounded-queue admission for one pending request; returns true to
  // enqueue, false when the request was finalized (shed / expired).
  // May release `lock` while blocking for space (kBlock).
  bool AdmitLocked(std::unique_lock<std::mutex>& lock, Pending& p);
  // Builds one pending from a request (deadline resolved, extra_seen
  // copied, submitted stats counted).
  Pending MakePending(const TopKRequest& request);
  // Enqueues one pending through admission; shared by Submit paths.
  void Enqueue(Pending&& p);
  // Pops up to max_batch live requests weighted-fair across the lanes,
  // finalizing expired ones (DeadlineExceededError{kQueue}) inline.
  void FormBatchLocked(std::vector<Pending>& batch);
  // Enter/exit brownout from queue depth + last batch latency.
  void UpdateBrownoutLocked();
  size_t DepthLocked() const { return lanes_[0].size() + lanes_[1].size(); }
  // Scores one batch on the current state (at the degraded tier when
  // `degraded`) and fulfills its promises; `fault` is the injected
  // action for this batch (kDelay / kFail honored here).
  void ServeBatch(std::vector<Pending>& batch, bool degraded,
                  const FaultAction& fault);

  const Dataset& data_;
  FrontEndConfig config_;
  runtime::ThreadPool pool_;  // driven only by the dispatcher (+ Init)

  // Hot-swap publication point. Producers/publishers store, the
  // dispatcher loads once per batch. Non-const because the dispatcher
  // mutates the engines (cache, scorer scratch) — publishers only ever
  // construct and store.
  std::atomic<std::shared_ptr<State>> state_;
  std::mutex publish_mu_;  // serializes seq assignment + store
  uint64_t next_seq_ = 1;  // guarded by publish_mu_

  mutable std::mutex mu_;            // queue + stats + lifecycle
  std::condition_variable queue_cv_;  // wakes the dispatcher
  std::condition_variable space_cv_;  // wakes producers blocked on space
  std::condition_variable idle_cv_;   // wakes Drain
  std::deque<Pending> lanes_[kNumLanes];  // indexed by RequestLane
  size_t in_flight_ = 0;  // requests taken but not yet fulfilled
  bool shutdown_ = false;
  FrontEndStats stats_;
  // Brownout state machine (dispatcher-only mutation, under mu_).
  bool brownout_active_ = false;
  std::chrono::steady_clock::time_point brownout_entered_;
  uint64_t last_batch_us_ = 0;  // service time of the previous batch
  uint64_t injector_tick_ = 0;  // dispatcher decision counter

  std::thread dispatcher_;  // last member: starts after state is ready
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_SERVING_FRONTEND_H_
