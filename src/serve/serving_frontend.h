// Concurrent serving front door: request queue, adaptive
// micro-batching, and live snapshot hot-swap.
//
// `ServingFrontEnd` is the documented *concurrent* entry point to the
// serving stack — the queue the `InferenceService` docs always told
// callers to put in front. Any number of producer threads `Submit`
// requests; each submission returns a `std::future<ServedResponse>`
// that completes when the request has been scored.
//
// Pipeline
//   producers --> MPMC queue --> micro-batcher --> dispatcher-owned
//                                                  pool + RankingEngine
//
//   * Queue. A mutex+condvar MPMC deque. Each entry owns a copy of the
//     request (including `extra_seen`, so the caller's span may die the
//     moment Submit returns) plus the promise that fulfills its future.
//   * Adaptive micro-batcher. The dispatcher opens a batch at the
//     oldest queued request and flushes when either `max_batch`
//     requests are pending (size flush) or `flush_deadline_us` has
//     elapsed since that oldest request arrived (deadline flush) —
//     whichever fires first. Under load batches fill to `max_batch`
//     and throughput dominates; at low load a lone request waits at
//     most one deadline. Shutdown/drain flushes immediately.
//   * Worker ownership (the TaskRunner pattern, task_runner.h). The
//     front end owns a *private* `runtime::ThreadPool`, and the single
//     dispatcher thread is its sole driver: only batch scoring —
//     running on the dispatcher — ever calls into the pool, so the
//     pool's one-driver/no-nested-Run contract holds by construction.
//     Producers never touch the pool; they only enqueue.
//
// Snapshot hot-swap
//   * The front end serves whatever `ModelSnapshot` was most recently
//     published. `PublishSnapshot` wraps an immutable snapshot in a
//     fresh `RankingEngine` (scorer + per-user ranking cache — caches
//     are engine-local, so they are keyed per snapshot and can never
//     mix generations) and publishes it through a single
//     `std::atomic<std::shared_ptr>` store. Publication never blocks
//     serving and serving never blocks publication: batches in flight
//     finish on the shared_ptr they loaded (the old snapshot stays
//     alive until its last batch drops it), the next batch loads the
//     new one. A live trainer freezes snapshots on its *own* pool
//     (engine construction does not drive the front end's pool) and
//     publishes mid-traffic with zero serving stalls.
//   * Publications are serialized internally; `snapshot_seq` in every
//     response names the publication that served it (monotone from 1).
//
// Equivalence contract
//   * Batching and queueing move *latency*, never results: every
//     response is bit-identical to `InferenceService::Handle` against
//     the snapshot that served it (`ServedResponse::snapshot`). This
//     holds because batches are packing-invariant
//     (HandleBatch(reqs)[i] == Handle(reqs[i]), ranking_engine.h) and
//     thread-count-invariant (the PR 1 sharding contract) — enforced
//     by tests/test_serving_frontend.cc and the bench_serve probe.
//
// Errors
//   * Malformed requests (user out of range, k == 0, unsorted
//     extra_seen) fail their own future with std::invalid_argument;
//     the rest of the batch is served normally. Scoring errors fail
//     every future of the affected batch. The library's no-exceptions
//     rule stops at the future boundary: errors travel through
//     promises, never across the public API as throws.
//   * The destructor drains: every submitted request is served (or
//     failed) before the front end dies.
#ifndef BSLREC_SERVE_SERVING_FRONTEND_H_
#define BSLREC_SERVE_SERVING_FRONTEND_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "runtime/thread_pool.h"
#include "serve/model_snapshot.h"
#include "serve/ranking_engine.h"

namespace bslrec::serve {

struct FrontEndConfig {
  // Flush a batch as soon as this many requests are pending.
  size_t max_batch = 64;
  // ... or when the oldest pending request has waited this long.
  uint32_t flush_deadline_us = 200;
  // Scoring configuration (ServeConfig::runtime sizes the private
  // pool; quantize requires published snapshots built with
  // SnapshotOptions::quantize_items).
  ServeConfig serve;
};

// One served request: the ranking plus which snapshot publication
// produced it (responses across a hot-swap are attributable).
struct ServedResponse {
  TopKResponse topk;
  uint64_t snapshot_seq = 0;
  std::shared_ptr<const ModelSnapshot> snapshot;
};

// Cumulative front-end counters (monotone; see stats()).
struct FrontEndStats {
  uint64_t requests = 0;          // served or failed, excludes queued
  uint64_t rejected = 0;          // failed validation (invalid_argument)
  uint64_t batches = 0;
  uint64_t size_flushes = 0;      // batch closed by max_batch
  uint64_t deadline_flushes = 0;  // batch closed by flush_deadline_us
  uint64_t drain_flushes = 0;     // batch closed by shutdown/drain
  uint64_t max_batch_served = 0;  // largest batch observed
  uint64_t snapshots_published = 0;  // including the initial snapshot
};

class ServingFrontEnd {
 public:
  // Serves `snapshot` (seq 1) until the next PublishSnapshot. `data`
  // provides seen-item lists and must outlive the front end.
  ServingFrontEnd(const Dataset& data,
                  std::shared_ptr<const ModelSnapshot> snapshot,
                  FrontEndConfig config = {});
  // Convenience: freezes `model` into the initial snapshot on the
  // front end's own pool (safe — the dispatcher has not started yet).
  ServingFrontEnd(const Dataset& data, const EmbeddingModel& model,
                  FrontEndConfig config = {});
  // Drains the queue (every request served or failed), then joins the
  // dispatcher.
  ~ServingFrontEnd();

  ServingFrontEnd(const ServingFrontEnd&) = delete;
  ServingFrontEnd& operator=(const ServingFrontEnd&) = delete;

  // Enqueues one request; thread-safe from any number of producers.
  // Copies `request.extra_seen` — the caller's span may be freed
  // immediately. The future completes with the served response or
  // with std::invalid_argument for a malformed request.
  std::future<ServedResponse> Submit(const TopKRequest& request);
  // Enqueues every request in order (one queue operation); result i
  // belongs to requests[i].
  std::vector<std::future<ServedResponse>> SubmitBatch(
      std::span<const TopKRequest> requests);

  // Submit + wait. From N threads this *is* the closed-loop load the
  // bench generates; the micro-batcher coalesces concurrent callers.
  ServedResponse HandleSync(const TopKRequest& request);
  std::vector<ServedResponse> HandleBatchSync(
      std::span<const TopKRequest> requests);

  // Atomically swaps the served snapshot (zero serving stalls; see the
  // header note). Returns the publication's snapshot_seq. Thread-safe;
  // concurrent publications are serialized, last one wins.
  uint64_t PublishSnapshot(std::shared_ptr<const ModelSnapshot> snapshot);

  // The currently served publication.
  std::shared_ptr<const ModelSnapshot> current_snapshot() const;
  uint64_t current_seq() const;

  // Blocks until every request submitted so far has been served.
  void Drain();

  const FrontEndConfig& config() const { return config_; }
  FrontEndStats stats() const;

 private:
  // One publication: the snapshot plus the engine bound to it. Only
  // the dispatcher calls engine.HandleBatch (and thereby drives the
  // pool / mutates the cache); publishers only construct.
  struct State {
    State(const Dataset& data, std::shared_ptr<const ModelSnapshot> snap,
          runtime::ThreadPool& pool, const ServeConfig& config,
          uint64_t sequence)
        : snapshot(std::move(snap)),
          seq(sequence),
          engine(data, *snapshot, pool, config) {}
    std::shared_ptr<const ModelSnapshot> snapshot;
    uint64_t seq;
    RankingEngine engine;
  };

  // A queued request owning its exclusion list and its promise.
  struct Pending {
    TopKRequest req;
    std::vector<uint32_t> extra;  // backing store for req.extra_seen
    std::promise<ServedResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Shared tail of both constructors: validates config, publishes the
  // initial state, starts the dispatcher.
  void Init(std::shared_ptr<const ModelSnapshot> snapshot);
  void DispatchLoop();
  // Scores one batch on the current state and fulfills its promises.
  void ServeBatch(std::vector<Pending>& batch);

  const Dataset& data_;
  FrontEndConfig config_;
  runtime::ThreadPool pool_;  // driven only by the dispatcher (+ Init)

  // Hot-swap publication point. Producers/publishers store, the
  // dispatcher loads once per batch. Non-const because the dispatcher
  // mutates the engine (cache, scorer scratch) — publishers only ever
  // construct and store.
  std::atomic<std::shared_ptr<State>> state_;
  std::mutex publish_mu_;  // serializes seq assignment + store
  uint64_t next_seq_ = 1;  // guarded by publish_mu_

  mutable std::mutex mu_;            // queue + stats + lifecycle
  std::condition_variable queue_cv_;  // wakes the dispatcher
  std::condition_variable idle_cv_;   // wakes Drain
  std::deque<Pending> queue_;
  size_t in_flight_ = 0;  // requests taken but not yet fulfilled
  bool shutdown_ = false;
  FrontEndStats stats_;

  std::thread dispatcher_;  // last member: starts after state is ready
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_SERVING_FRONTEND_H_
