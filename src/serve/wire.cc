#include "serve/wire.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <sstream>
#include <vector>

#include "serve/serving_frontend.h"

namespace bslrec::serve {
namespace {

// snprintf into a std::string (all wire strings are short).
template <typename... Args>
std::string Format(const char* fmt, Args... args) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return std::string(buf);
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kOverload:
      return "OVERLOAD";
    case ErrorCode::kDeadlineAdmission:
      return "DEADLINE_ADMISSION";
    case ErrorCode::kDeadlineQueue:
      return "DEADLINE_QUEUE";
    case ErrorCode::kDeadlineBatch:
      return "DEADLINE_BATCH";
    case ErrorCode::kBadRequest:
      return "BAD_REQUEST";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

const char* DeadlineStageName(DeadlineStage stage) {
  switch (stage) {
    case DeadlineStage::kAdmission:
      return "admission";
    case DeadlineStage::kQueue:
      return "queue";
    case DeadlineStage::kBatch:
      return "batch";
  }
  return "unknown";
}

ErrorCode ErrorCodeForStage(DeadlineStage stage) {
  switch (stage) {
    case DeadlineStage::kAdmission:
      return ErrorCode::kDeadlineAdmission;
    case DeadlineStage::kQueue:
      return ErrorCode::kDeadlineQueue;
    case DeadlineStage::kBatch:
      return ErrorCode::kDeadlineBatch;
  }
  return ErrorCode::kInternal;
}

bool DeadlineStageForCode(ErrorCode code, DeadlineStage* stage) {
  switch (code) {
    case ErrorCode::kDeadlineAdmission:
      *stage = DeadlineStage::kAdmission;
      return true;
    case ErrorCode::kDeadlineQueue:
      *stage = DeadlineStage::kQueue;
      return true;
    case ErrorCode::kDeadlineBatch:
      *stage = DeadlineStage::kBatch;
      return true;
    default:
      return false;
  }
}

const char* DegradeModeName(DegradeMode mode) {
  switch (mode) {
    case DegradeMode::kNone:
      return "none";
    case DegradeMode::kIvf:
      return "ivf";
    case DegradeMode::kFp16:
      return "fp16";
    case DegradeMode::kQuantized:
      return "quantized";
  }
  return "unknown";
}

bool DegradeModeFromName(std::string_view name, DegradeMode* mode) {
  if (name == "none") {
    *mode = DegradeMode::kNone;
  } else if (name == "ivf") {
    *mode = DegradeMode::kIvf;
  } else if (name == "fp16") {
    *mode = DegradeMode::kFp16;
  } else if (name == "quantized") {
    *mode = DegradeMode::kQuantized;
  } else {
    return false;
  }
  return true;
}

ServeStatus StatusFromException(std::exception_ptr error) {
  ServeStatus status;
  try {
    std::rethrow_exception(error);
  } catch (const OverloadError& e) {
    status.code = ErrorCode::kOverload;
    status.detail = e.what();
    status.retry_after_us = e.retry_after_us();
  } catch (const ServeError& e) {
    status.code = e.code();
    status.detail = e.what();
  } catch (const std::invalid_argument& e) {
    status.code = ErrorCode::kBadRequest;
    status.detail = e.what();
  } catch (const std::exception& e) {
    status.code = ErrorCode::kInternal;
    status.detail = e.what();
  } catch (...) {
    status.code = ErrorCode::kInternal;
    status.detail = "unknown error";
  }
  return status;
}

namespace wire {
namespace {

// Splits on spaces/tabs (the only separators either grammar allows).
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) tokens.push_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

// Strict all-digits unsigned parse (wire form only — the legacy form
// keeps its historical atoll semantics).
bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

ServeStatus BadRequest(std::string detail) {
  ServeStatus status;
  status.code = ErrorCode::kBadRequest;
  status.detail = std::move(detail);
  return status;
}

// The historical bslrec_serve grammar, token for token: `>>` for the
// user id, atoll for k tokens (partial parses accepted, last k wins),
// the literal "all" disabling seen-item filtering. The detail strings
// are the exact messages the CLI has always printed after the
// "bad request '<line>': " prefix.
ServeStatus ParseLegacyRequest(std::string_view line,
                               const ParseOptions& options,
                               ParsedRequest* out) {
  std::istringstream in{std::string(line)};
  long long user = -1;
  in >> user;
  if (!in || user < 0 || static_cast<uint64_t>(user) >= options.num_users) {
    return BadRequest(Format("user must be in [0, %u)", options.num_users));
  }
  out->topk.user = static_cast<uint32_t>(user);
  std::string tok;
  while (in >> tok) {
    if (tok == "all") {
      out->topk.filter_seen = false;
    } else {
      const long long k = std::atoll(tok.c_str());
      if (k <= 0 || k > static_cast<long long>(UINT32_MAX)) {
        return BadRequest(Format("k must be in [1, %u]", UINT32_MAX));
      }
      out->topk.k = static_cast<uint32_t>(k);
    }
  }
  return ServeStatus{};
}

// The strict wire grammar: TOPK <user> <k> then named options.
ServeStatus ParseWireRequest(std::span<const std::string_view> tokens,
                             const ParseOptions& options, ParsedRequest* out) {
  if (tokens.size() < 3) {
    return BadRequest("usage: TOPK <user> <k> [FILTER=seen|none] "
                      "[LANE=interactive|bulk] [DEADLINE_US=n] [ID=token]");
  }
  uint64_t user = 0;
  if (!ParseUint(tokens[1], &user) || user >= options.num_users) {
    return BadRequest(Format("user must be in [0, %u)", options.num_users));
  }
  out->topk.user = static_cast<uint32_t>(user);
  uint64_t k = 0;
  if (!ParseUint(tokens[2], &k) || k == 0 || k > UINT32_MAX) {
    return BadRequest(Format("k must be in [1, %u]", UINT32_MAX));
  }
  out->topk.k = static_cast<uint32_t>(k);
  for (size_t i = 3; i < tokens.size(); ++i) {
    const std::string_view tok = tokens[i];
    const size_t eq = tok.find('=');
    const std::string_view key =
        eq == std::string_view::npos ? tok : tok.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view() : tok.substr(eq + 1);
    if (key == "FILTER") {
      if (value == "seen") {
        out->topk.filter_seen = true;
      } else if (value == "none") {
        out->topk.filter_seen = false;
      } else {
        return BadRequest("FILTER must be seen or none");
      }
    } else if (key == "LANE") {
      if (value == "interactive") {
        out->topk.lane = RequestLane::kInteractive;
      } else if (value == "bulk") {
        out->topk.lane = RequestLane::kBulk;
      } else {
        return BadRequest("LANE must be interactive or bulk");
      }
    } else if (key == "DEADLINE_US") {
      uint64_t deadline = 0;
      if (!ParseUint(value, &deadline) || deadline > UINT32_MAX) {
        return BadRequest(
            Format("DEADLINE_US must be an integer in [0, %u]", UINT32_MAX));
      }
      out->topk.deadline_us = static_cast<uint32_t>(deadline);
    } else if (key == "ID") {
      if (value.empty() || value.size() > kMaxIdBytes) {
        return BadRequest(
            Format("ID must be 1..%zu bytes", kMaxIdBytes));
      }
      out->id = std::string(value);
    } else {
      return BadRequest("unknown option '" + std::string(tok) + "'");
    }
  }
  return ServeStatus{};
}

void AppendScoredItems(const TopKResponse& topk, const char* separator,
                       std::string* out) {
  for (size_t i = 0; i < topk.items.size(); ++i) {
    if (i > 0) out->append(separator);
    out->append(Format("%u:%.6f", topk.items[i], topk.scores[i]));
  }
}

std::string Sanitize(std::string_view detail) {
  std::string clean(detail);
  for (char& c : clean) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return clean;
}

}  // namespace

bool IsIgnorableLine(std::string_view line) {
  const size_t first = line.find_first_not_of(" \t\r");
  return first == std::string_view::npos || line[first] == '#';
}

ServeStatus ParseRequest(std::string_view line, const ParseOptions& options,
                         ParsedRequest* out) {
  *out = ParsedRequest{};
  out->topk.k = options.default_k;
  out->topk.lane = options.default_lane;
  if (options.max_line_bytes > 0 && line.size() > options.max_line_bytes) {
    return BadRequest(
        Format("line exceeds %zu bytes", options.max_line_bytes));
  }
  // Pull any ID= token out first so even a failed parse can name the
  // request it answers.
  const std::vector<std::string_view> tokens = Tokenize(line);
  for (const std::string_view tok : tokens) {
    if (tok.size() > 3 && tok.rfind("ID=", 0) == 0 &&
        tok.size() - 3 <= kMaxIdBytes) {
      out->id = std::string(tok.substr(3));
    }
  }
  if (tokens.empty()) return BadRequest("empty request");
  if (tokens[0] == "TOPK") return ParseWireRequest(tokens, options, out);
  return ParseLegacyRequest(line, options, out);
}

std::string FormatResponse(std::string_view id, DegradeMode mode,
                           uint64_t snapshot_seq, const TopKResponse& topk) {
  std::string out = "OK ";
  out.append(id);
  out.append(" ");
  out.append(DegradeModeName(mode));
  out.append(Format(" seq=%" PRIu64, snapshot_seq));
  if (!topk.items.empty()) out.append(" ");
  AppendScoredItems(topk, " ", &out);
  return out;
}

std::string FormatError(std::string_view id, const ServeStatus& status) {
  std::string out = "ERR ";
  out.append(id);
  out.append(" ");
  DeadlineStage stage;
  if (status.code == ErrorCode::kOverload) {
    out.append(Format("OVERLOAD retry_after_us=%u", status.retry_after_us));
  } else if (DeadlineStageForCode(status.code, &stage)) {
    out.append("DEADLINE stage=");
    out.append(DeadlineStageName(stage));
  } else if (status.code == ErrorCode::kBadRequest) {
    out.append("BAD_REQUEST ");
    out.append(Sanitize(status.detail));
  } else {
    out.append("INTERNAL ");
    out.append(Sanitize(status.detail));
  }
  return out;
}

std::string FormatCliResponse(const TopKRequest& request,
                              const TopKResponse& topk) {
  std::string out = Format("user=%u k=%u items=", request.user, request.k);
  AppendScoredItems(topk, ",", &out);
  return out;
}

std::string FormatCliResponse(const TopKRequest& request,
                              const TopKResponse& topk, DegradeMode mode,
                              uint64_t snapshot_seq) {
  std::string out = FormatCliResponse(request, topk);
  out.append(Format(" degraded=%s seq=%" PRIu64, DegradeModeName(mode),
                    snapshot_seq));
  return out;
}

const char* CliErrorToken(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kOverload:
      return "overload";
    case ErrorCode::kDeadlineAdmission:
      return "deadline-admission";
    case ErrorCode::kDeadlineQueue:
      return "deadline-queue";
    case ErrorCode::kDeadlineBatch:
      return "deadline-batch";
    case ErrorCode::kBadRequest:
      return "bad-request";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

bool ParseResponse(std::string_view line, ParsedResponse* out) {
  *out = ParsedResponse{};
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.size() < 3) return false;
  out->id = std::string(tokens[1]);
  if (tokens[0] == "OK") {
    out->ok = true;
    if (!DegradeModeFromName(tokens[2], &out->degrade_mode)) return false;
    size_t i = 3;
    if (i < tokens.size() && tokens[i].rfind("seq=", 0) == 0) {
      uint64_t seq = 0;
      if (!ParseUint(tokens[i].substr(4), &seq)) return false;
      out->snapshot_seq = seq;
      ++i;
    }
    for (; i < tokens.size(); ++i) {
      const size_t colon = tokens[i].find(':');
      if (colon == std::string_view::npos) return false;
      uint64_t item = 0;
      if (!ParseUint(tokens[i].substr(0, colon), &item) || item > UINT32_MAX) {
        return false;
      }
      const std::string score_text(tokens[i].substr(colon + 1));
      char* end = nullptr;
      const float score = std::strtof(score_text.c_str(), &end);
      if (end == score_text.c_str() || *end != '\0') return false;
      out->topk.items.push_back(static_cast<uint32_t>(item));
      out->topk.scores.push_back(score);
    }
    return true;
  }
  if (tokens[0] != "ERR") return false;
  const std::string_view kind = tokens[2];
  const auto rest_detail = [&](size_t from) {
    std::string detail;
    for (size_t i = from; i < tokens.size(); ++i) {
      if (!detail.empty()) detail.append(" ");
      detail.append(tokens[i]);
    }
    return detail;
  };
  if (kind == "OVERLOAD") {
    out->status.code = ErrorCode::kOverload;
    if (tokens.size() < 4 ||
        tokens[3].rfind("retry_after_us=", 0) != 0) {
      return false;
    }
    uint64_t retry = 0;
    if (!ParseUint(tokens[3].substr(15), &retry) || retry > UINT32_MAX) {
      return false;
    }
    out->status.retry_after_us = static_cast<uint32_t>(retry);
    return true;
  }
  if (kind == "DEADLINE") {
    if (tokens.size() < 4 || tokens[3].rfind("stage=", 0) != 0) return false;
    const std::string_view stage = tokens[3].substr(6);
    if (stage == "admission") {
      out->status.code = ErrorCode::kDeadlineAdmission;
    } else if (stage == "queue") {
      out->status.code = ErrorCode::kDeadlineQueue;
    } else if (stage == "batch") {
      out->status.code = ErrorCode::kDeadlineBatch;
    } else {
      return false;
    }
    return true;
  }
  if (kind == "BAD_REQUEST") {
    out->status.code = ErrorCode::kBadRequest;
    out->status.detail = rest_detail(3);
    return true;
  }
  if (kind == "INTERNAL") {
    out->status.code = ErrorCode::kInternal;
    out->status.detail = rest_detail(3);
    return true;
  }
  return false;
}

}  // namespace wire
}  // namespace bslrec::serve
