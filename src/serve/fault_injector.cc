#include "serve/fault_injector.h"

#include "math/check.h"
#include "math/rng.h"

namespace bslrec::serve {

ScheduledFaultInjector::ScheduledFaultInjector(std::vector<FaultRule> rules,
                                               uint64_t seed) {
  rules_.reserve(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) {
    FaultRule rule = rules[i];
    BSLREC_CHECK(rule.period >= 1);
    if (seed != 0) {
      // Deterministic per-rule phase jitter: shift the rule's first
      // firing by a seeded offset within one period. Same seed, same
      // schedule — different seeds, different interleavings.
      rule.first += SplitMix64::Mix(seed + 0x9e3779b97f4a7c15ULL * (i + 1)) %
                    rule.period;
    }
    rules_.push_back({rule, 0});
  }
}

FaultAction ScheduledFaultInjector::OnTick(uint64_t tick) {
  for (RuleState& rs : rules_) {
    const FaultRule& r = rs.rule;
    if (r.kind == FaultAction::Kind::kNone) continue;
    if (tick < r.first) continue;
    if ((tick - r.first) % r.period != 0) continue;
    if (r.count != 0 && rs.fired >= r.count) continue;
    ++rs.fired;
    fired_by_kind_[static_cast<size_t>(r.kind)].fetch_add(
        1, std::memory_order_relaxed);
    return FaultAction{r.kind, r.micros};
  }
  return FaultAction{};
}

uint64_t ScheduledFaultInjector::fired(FaultAction::Kind kind) const {
  return fired_by_kind_[static_cast<size_t>(kind)].load(
      std::memory_order_relaxed);
}

}  // namespace bslrec::serve
