#include "serve/inference_service.h"

#include <utility>

#include "math/check.h"

namespace bslrec::serve {

InferenceService::InferenceService(const Dataset& data,
                                   const EmbeddingModel& model,
                                   ServeConfig config)
    : config_(config),
      pool_(std::make_unique<runtime::ThreadPool>(
          config.runtime.num_threads)),
      snapshot_(model, *pool_, SnapshotOptionsFor(config)),
      engine_(std::make_unique<RankingEngine>(data, snapshot_, *pool_,
                                              config)) {
  BSLREC_CHECK(data.num_users() == model.num_users());
  BSLREC_CHECK(data.num_items() == model.num_items());
}

TopKResponse InferenceService::Handle(const TopKRequest& request) {
  std::vector<TopKResponse> responses = HandleBatch({&request, 1});
  return std::move(responses[0]);
}

std::vector<TopKResponse> InferenceService::HandleBatch(
    std::span<const TopKRequest> requests) {
  BSLREC_CHECK_MSG(
      !busy_.exchange(true, std::memory_order_acquire),
      "InferenceService is single-driver: a second thread entered "
      "Handle/HandleBatch while a call was in flight. Use "
      "serve::ServingFrontEnd for concurrent producers.");
  std::vector<TopKResponse> out = engine_->HandleBatch(requests);
  busy_.store(false, std::memory_order_release);
  return out;
}

}  // namespace bslrec::serve
