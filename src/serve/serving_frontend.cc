#include "serve/serving_frontend.h"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "math/check.h"

namespace bslrec::serve {

ServingFrontEnd::ServingFrontEnd(const Dataset& data,
                                 std::shared_ptr<const ModelSnapshot> snapshot,
                                 FrontEndConfig config)
    : data_(data),
      config_(config),
      pool_(config.serve.runtime.num_threads) {
  Init(std::move(snapshot));
}

ServingFrontEnd::ServingFrontEnd(const Dataset& data,
                                 const EmbeddingModel& model,
                                 FrontEndConfig config)
    : data_(data),
      config_(config),
      pool_(config.serve.runtime.num_threads) {
  // The dispatcher has not started, so the constructing thread is the
  // pool's sole driver here — the one place besides the dispatcher
  // allowed to use it.
  Init(std::make_shared<const ModelSnapshot>(model, pool_,
                                             SnapshotOptionsFor(config.serve)));
}

void ServingFrontEnd::Init(std::shared_ptr<const ModelSnapshot> snapshot) {
  BSLREC_CHECK(config_.max_batch > 0);
  BSLREC_CHECK(config_.serve.max_k > 0);
  PublishSnapshot(std::move(snapshot));
  dispatcher_ = std::thread(&ServingFrontEnd::DispatchLoop, this);
}

ServingFrontEnd::~ServingFrontEnd() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  dispatcher_.join();  // the dispatcher flushes the queue before exiting
}

std::future<ServedResponse> ServingFrontEnd::Submit(
    const TopKRequest& request) {
  Pending p;
  p.req = request;
  p.extra.assign(request.extra_seen.begin(), request.extra_seen.end());
  p.req.extra_seen = p.extra;
  p.enqueued = std::chrono::steady_clock::now();
  std::future<ServedResponse> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    BSLREC_CHECK_MSG(!shutdown_,
                     "Submit on a ServingFrontEnd being destroyed");
    queue_.push_back(std::move(p));
  }
  queue_cv_.notify_one();
  return fut;
}

std::vector<std::future<ServedResponse>> ServingFrontEnd::SubmitBatch(
    std::span<const TopKRequest> requests) {
  std::vector<std::future<ServedResponse>> futures;
  futures.reserve(requests.size());
  if (requests.empty()) return futures;
  std::vector<Pending> pendings(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Pending& p = pendings[i];
    p.req = requests[i];
    p.extra.assign(requests[i].extra_seen.begin(),
                   requests[i].extra_seen.end());
    p.req.extra_seen = p.extra;
    p.enqueued = std::chrono::steady_clock::now();
    futures.push_back(p.promise.get_future());
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    BSLREC_CHECK_MSG(!shutdown_,
                     "SubmitBatch on a ServingFrontEnd being destroyed");
    for (Pending& p : pendings) queue_.push_back(std::move(p));
  }
  queue_cv_.notify_one();
  return futures;
}

ServedResponse ServingFrontEnd::HandleSync(const TopKRequest& request) {
  return Submit(request).get();
}

std::vector<ServedResponse> ServingFrontEnd::HandleBatchSync(
    std::span<const TopKRequest> requests) {
  std::vector<std::future<ServedResponse>> futures = SubmitBatch(requests);
  std::vector<ServedResponse> out;
  out.reserve(futures.size());
  for (std::future<ServedResponse>& fut : futures) {
    out.push_back(fut.get());
  }
  return out;
}

uint64_t ServingFrontEnd::PublishSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  BSLREC_CHECK(snapshot != nullptr);
  BSLREC_CHECK(snapshot->num_users() == data_.num_users());
  BSLREC_CHECK(snapshot->num_items() == data_.num_items());
  BSLREC_CHECK_MSG(
      !config_.serve.quantize || snapshot->has_quantized_items(),
      "FrontEndConfig::serve.quantize requires snapshots built with "
      "SnapshotOptions::quantize_items");
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const uint64_t seq = next_seq_++;
  // Engine construction never drives the pool (ranking_engine.h), so
  // building the new state races nothing the dispatcher is doing.
  state_.store(std::make_shared<State>(data_, std::move(snapshot), pool_,
                                       config_.serve, seq));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.snapshots_published;
  }
  return seq;
}

std::shared_ptr<const ModelSnapshot> ServingFrontEnd::current_snapshot()
    const {
  return state_.load()->snapshot;
}

uint64_t ServingFrontEnd::current_seq() const { return state_.load()->seq; }

void ServingFrontEnd::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

FrontEndStats ServingFrontEnd::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ServingFrontEnd::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // The batch opened when the oldest pending request arrived; wait
    // for it to fill, but never past that request's deadline. A full
    // queue (or shutdown) skips the wait entirely.
    const auto deadline =
        queue_.front().enqueued +
        std::chrono::microseconds(config_.flush_deadline_us);
    const bool filled = queue_cv_.wait_until(lock, deadline, [&] {
      return shutdown_ || queue_.size() >= config_.max_batch;
    });

    const size_t n = std::min<size_t>(queue_.size(), config_.max_batch);
    std::vector<Pending> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    in_flight_ = n;
    ++stats_.batches;
    if (n == config_.max_batch) {
      ++stats_.size_flushes;
    } else if (filled && shutdown_) {
      ++stats_.drain_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    stats_.max_batch_served = std::max<uint64_t>(stats_.max_batch_served, n);

    lock.unlock();
    ServeBatch(batch);
    lock.lock();

    stats_.requests += n;
    in_flight_ = 0;
    idle_cv_.notify_all();
  }
}

void ServingFrontEnd::ServeBatch(std::vector<Pending>& batch) {
  const std::shared_ptr<State> state = state_.load();
  const ModelSnapshot& snapshot = *state->snapshot;

  // Validate up front so malformed requests fail their own future with
  // a diagnostic instead of tripping the engine's process-wide checks.
  std::vector<TopKRequest> valid;
  std::vector<size_t> valid_idx;
  valid.reserve(batch.size());
  valid_idx.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const TopKRequest& req = batch[i].req;
    std::string error;
    if (req.user >= snapshot.num_users()) {
      error = "user " + std::to_string(req.user) + " out of range [0, " +
              std::to_string(snapshot.num_users()) + ")";
    } else if (req.k == 0) {
      error = "k must be > 0";
    } else if (!std::is_sorted(req.extra_seen.begin(),
                               req.extra_seen.end())) {
      error = "extra_seen must be sorted ascending";
    }
    if (error.empty()) {
      valid.push_back(req);
      valid_idx.push_back(i);
    } else {
      batch[i].promise.set_exception(std::make_exception_ptr(
          std::invalid_argument("ServingFrontEnd: " + error)));
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
    }
  }
  if (valid.empty()) return;

  try {
    std::vector<TopKResponse> responses = state->engine.HandleBatch(valid);
    for (size_t v = 0; v < valid_idx.size(); ++v) {
      ServedResponse served;
      served.topk = std::move(responses[v]);
      served.snapshot_seq = state->seq;
      served.snapshot = state->snapshot;
      batch[valid_idx[v]].promise.set_value(std::move(served));
    }
  } catch (...) {
    // Scoring failed (e.g. a user callback threw through the pool):
    // fail every future of this batch; later batches proceed.
    const std::exception_ptr error = std::current_exception();
    for (size_t v = 0; v < valid_idx.size(); ++v) {
      batch[valid_idx[v]].promise.set_exception(error);
    }
  }
}

}  // namespace bslrec::serve
