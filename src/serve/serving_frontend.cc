#include "serve/serving_frontend.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "math/check.h"

namespace bslrec::serve {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point from, Clock::time_point to) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

// Lane index that is safe even for an out-of-range enum value smuggled
// in via a cast: anything that is not kBulk is interactive.
size_t LaneIndex(RequestLane lane) {
  return lane == RequestLane::kBulk ? 1 : 0;
}

std::exception_ptr MakeOverloadError(const std::string& what,
                                     uint32_t retry_after_us) {
  return std::make_exception_ptr(OverloadError(
      "ServingFrontEnd: " + what + "; retry after " +
          std::to_string(retry_after_us) + "us",
      retry_after_us));
}

std::exception_ptr MakeDeadlineError(const std::string& what,
                                     DeadlineStage stage) {
  return std::make_exception_ptr(DeadlineExceededError(
      "ServingFrontEnd: deadline exceeded " + what + " (" +
          std::string(DeadlineStageName(stage)) + " stage)",
      stage));
}

// set_exception on a promise that might already hold a value (e.g. a
// bad_alloc thrown mid-delivery loop lands in the catch-all after some
// promises were fulfilled). Losing the redundant error beats dying.
void FailPromise(std::promise<ServedResponse>& promise,
                 const std::exception_ptr& error) {
  try {
    promise.set_exception(error);
  } catch (const std::future_error&) {
  }
}

}  // namespace

DegradeMode BrownoutModeFor(const ModelSnapshot& snapshot,
                            const ServeConfig& serve) {
  if (snapshot.ivf() != nullptr) return DegradeMode::kIvf;
  if (snapshot.has_fp16_items() && !serve.fp16) return DegradeMode::kFp16;
  if (snapshot.has_quantized_items() && !serve.quantize) {
    return DegradeMode::kQuantized;
  }
  return DegradeMode::kNone;
}

ServeConfig BrownoutServeConfigFor(const ServeConfig& serve, DegradeMode mode,
                                   uint32_t brownout_nprobe) {
  ServeConfig out = serve;
  switch (mode) {
    case DegradeMode::kNone:
      break;
    case DegradeMode::kIvf:
      // Pure IVF probe + exact fp32 re-rank: the degraded tier's cost
      // is governed by nprobe alone, independent of the primary tier's
      // scan representation.
      out.exact = false;
      out.nprobe = brownout_nprobe;
      out.quantize = false;
      out.fp16 = false;
      break;
    case DegradeMode::kFp16:
      out.exact = true;
      out.fp16 = true;
      out.quantize = false;
      break;
    case DegradeMode::kQuantized:
      out.exact = true;
      out.quantize = true;
      out.fp16 = false;
      break;
  }
  return out;
}

ServingFrontEnd::State::State(const Dataset& data,
                              std::shared_ptr<const ModelSnapshot> snap,
                              runtime::ThreadPool& pool,
                              const FrontEndConfig& config, uint64_t sequence)
    : snapshot(std::move(snap)),
      seq(sequence),
      engine(data, *snapshot, pool, config.serve) {
  if (config.brownout.enable) {
    brownout_mode = BrownoutModeFor(*snapshot, config.serve);
    if (brownout_mode != DegradeMode::kNone) {
      brownout_engine = std::make_unique<RankingEngine>(
          data, *snapshot, pool,
          BrownoutServeConfigFor(config.serve, brownout_mode,
                                 config.brownout.nprobe));
    }
  }
}

ServingFrontEnd::ServingFrontEnd(const Dataset& data,
                                 std::shared_ptr<const ModelSnapshot> snapshot,
                                 FrontEndConfig config)
    : data_(data),
      config_(config),
      pool_(config.serve.runtime.num_threads) {
  Init(std::move(snapshot));
}

ServingFrontEnd::ServingFrontEnd(const Dataset& data,
                                 const EmbeddingModel& model,
                                 FrontEndConfig config)
    : data_(data),
      config_(config),
      pool_(config.serve.runtime.num_threads) {
  // The dispatcher has not started, so the constructing thread is the
  // pool's sole driver here — the one place besides the dispatcher
  // allowed to use it.
  SnapshotOptions options = SnapshotOptionsFor(config_.serve);
  // With brownout enabled, build the IVF index too so the best
  // degraded tier exists on the initial snapshot.
  if (config_.brownout.enable) options.ivf.build = true;
  Init(std::make_shared<const ModelSnapshot>(model, pool_, options));
}

void ServingFrontEnd::Init(std::shared_ptr<const ModelSnapshot> snapshot) {
  BSLREC_CHECK(config_.max_batch > 0);
  BSLREC_CHECK(config_.serve.max_k > 0);
  BSLREC_CHECK_MSG(config_.interactive_weight >= 1 && config_.bulk_weight >= 1,
                   "lane weights must be >= 1 (a zero weight starves a lane)");
  if (config_.brownout.enable) {
    BSLREC_CHECK_MSG(
        config_.brownout.low_watermark < config_.brownout.high_watermark,
        "BrownoutConfig::low_watermark must be < high_watermark");
  }
  PublishSnapshot(std::move(snapshot));
  dispatcher_ = std::thread(&ServingFrontEnd::DispatchLoop, this);
}

ServingFrontEnd::~ServingFrontEnd() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  dispatcher_.join();  // the dispatcher flushes the queue before exiting
  // A producer that was blocked for queue space when shutdown began can
  // slip its request in after the dispatcher's final drain check. Fail
  // any such straggler with the typed retriable error instead of
  // letting its promise die unfulfilled (std::future_errc::broken_promise).
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& lane : lanes_) {
    for (Pending& p : lane) {
      ++stats_.shed_newest;
      FailPromise(p.promise,
                  MakeOverloadError("front end shut down before the request "
                                    "could be scheduled; request shed",
                                    config_.shed_retry_us));
    }
    lane.clear();
  }
}

ServingFrontEnd::Pending ServingFrontEnd::MakePending(
    const TopKRequest& request) {
  Pending p;
  p.req = request;
  p.extra.assign(request.extra_seen.begin(), request.extra_seen.end());
  p.req.extra_seen = p.extra;
  p.enqueued = Clock::now();
  const uint32_t deadline_us =
      request.deadline_us != 0 ? request.deadline_us
                               : config_.default_deadline_us;
  p.deadline = deadline_us != 0
                   ? p.enqueued + std::chrono::microseconds(deadline_us)
                   : Clock::time_point::max();
  return p;
}

bool ServingFrontEnd::AdmitLocked(std::unique_lock<std::mutex>& lock,
                                  Pending& p) {
  if (config_.max_queue_depth == 0) return true;
  bool counted_block = false;
  while (DepthLocked() >= config_.max_queue_depth) {
    if (shutdown_) {
      // Shutdown raced the wait for space: shed instead of enqueueing
      // into a server that may already have drained.
      ++stats_.shed_newest;
      FailPromise(p.promise,
                  MakeOverloadError("front end shutting down while the queue "
                                    "was full; request shed",
                                    config_.shed_retry_us));
      return false;
    }
    switch (config_.overflow) {
      case OverflowPolicy::kShedNewest: {
        ++stats_.shed_newest;
        FailPromise(p.promise,
                    MakeOverloadError(
                        "queue full (depth " + std::to_string(DepthLocked()) +
                            " >= max " +
                            std::to_string(config_.max_queue_depth) +
                            "), request shed",
                        config_.shed_retry_us));
        return false;
      }
      case OverflowPolicy::kShedOldest: {
        // Victim: the oldest bulk request if any, else the oldest
        // interactive one — bulk work is always the first casualty.
        const size_t victim_lane = lanes_[1].empty() ? 0 : 1;
        Pending victim = std::move(lanes_[victim_lane].front());
        lanes_[victim_lane].pop_front();
        ++stats_.shed_oldest;
        FailPromise(victim.promise,
                    MakeOverloadError(
                        "evicted from the " +
                            std::string(victim_lane == 1 ? "bulk"
                                                         : "interactive") +
                            " lane by a newer request (kShedOldest)",
                        config_.shed_retry_us));
        break;  // depth dropped below max; the loop re-checks
      }
      case OverflowPolicy::kBlock: {
        if (!counted_block) {
          ++stats_.blocked_submits;
          counted_block = true;
        }
        const auto space = [&] {
          return shutdown_ || DepthLocked() < config_.max_queue_depth;
        };
        if (p.deadline == Clock::time_point::max()) {
          space_cv_.wait(lock, space);
        } else if (!space_cv_.wait_until(lock, p.deadline, space)) {
          ++stats_.expired_admission;
          FailPromise(p.promise,
                      MakeDeadlineError("while waiting for queue space",
                                        DeadlineStage::kAdmission));
          return false;
        }
        break;
      }
    }
  }
  return true;
}

void ServingFrontEnd::Enqueue(Pending&& p) {
  const size_t lane = LaneIndex(p.req.lane);
  bool enqueued = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    BSLREC_CHECK_MSG(!shutdown_,
                     "Submit on a ServingFrontEnd being destroyed");
    ++stats_.submitted;
    ++stats_.lane_submitted[lane];
    if (AdmitLocked(lock, p)) {
      lanes_[lane].push_back(std::move(p));
      stats_.queue_depth_high_water =
          std::max<uint64_t>(stats_.queue_depth_high_water, DepthLocked());
      enqueued = true;
    }
  }
  if (enqueued) queue_cv_.notify_one();
}

std::future<ServedResponse> ServingFrontEnd::Submit(
    const TopKRequest& request) {
  Pending p = MakePending(request);
  std::future<ServedResponse> fut = p.promise.get_future();
  Enqueue(std::move(p));
  return fut;
}

std::vector<std::future<ServedResponse>> ServingFrontEnd::SubmitBatch(
    std::span<const TopKRequest> requests) {
  std::vector<std::future<ServedResponse>> futures;
  futures.reserve(requests.size());
  // Admission applies per request (a kBlock wait can interleave other
  // producers), so the batch enqueues one at a time, in order.
  for (const TopKRequest& request : requests) {
    futures.push_back(Submit(request));
  }
  return futures;
}

ServedResponse ServingFrontEnd::HandleSync(const TopKRequest& request) {
  return Submit(request).get();
}

std::vector<ServedResponse> ServingFrontEnd::HandleBatchSync(
    std::span<const TopKRequest> requests) {
  std::vector<std::future<ServedResponse>> futures = SubmitBatch(requests);
  std::vector<ServedResponse> out;
  out.reserve(futures.size());
  for (std::future<ServedResponse>& fut : futures) {
    out.push_back(fut.get());
  }
  return out;
}

uint64_t ServingFrontEnd::PublishSnapshot(
    std::shared_ptr<const ModelSnapshot> snapshot) {
  BSLREC_CHECK(snapshot != nullptr);
  BSLREC_CHECK(snapshot->num_users() == data_.num_users());
  BSLREC_CHECK(snapshot->num_items() == data_.num_items());
  BSLREC_CHECK_MSG(
      !config_.serve.quantize || snapshot->has_quantized_items(),
      "FrontEndConfig::serve.quantize requires snapshots built with "
      "SnapshotOptions::quantize_items");
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const uint64_t seq = next_seq_++;
  // Engine construction never drives the pool (ranking_engine.h), so
  // building the new state races nothing the dispatcher is doing.
  state_.store(std::make_shared<State>(data_, std::move(snapshot), pool_,
                                       config_, seq));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.snapshots_published;
  }
  return seq;
}

std::shared_ptr<const ModelSnapshot> ServingFrontEnd::current_snapshot()
    const {
  return state_.load()->snapshot;
}

uint64_t ServingFrontEnd::current_seq() const { return state_.load()->seq; }

DegradeMode ServingFrontEnd::current_brownout_mode() const {
  return state_.load()->brownout_mode;
}

void ServingFrontEnd::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return DepthLocked() == 0 && in_flight_ == 0; });
}

FrontEndStats ServingFrontEnd::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ServingFrontEnd::FormBatchLocked(std::vector<Pending>& batch) {
  const Clock::time_point now = Clock::now();
  const uint32_t weights[kNumLanes] = {config_.interactive_weight,
                                       config_.bulk_weight};
  while (batch.size() < config_.max_batch && DepthLocked() > 0) {
    for (size_t lane = 0; lane < kNumLanes; ++lane) {
      uint32_t credit = weights[lane];
      while (credit > 0 && !lanes_[lane].empty() &&
             batch.size() < config_.max_batch) {
        Pending p = std::move(lanes_[lane].front());
        lanes_[lane].pop_front();
        if (now >= p.deadline) {
          // Expired in the queue: fail fast, never score. Finalized by
          // the dispatcher, so it counts toward `requests` (but costs
          // no lane credit — a lane of corpses still gets its turn).
          ++stats_.expired_queue;
          ++stats_.requests;
          FailPromise(p.promise,
                      MakeDeadlineError(
                          "after " + std::to_string(ElapsedUs(p.enqueued,
                                                              now)) +
                              "us in the queue",
                          DeadlineStage::kQueue));
          continue;
        }
        p.queue_us = ElapsedUs(p.enqueued, now);
        batch.push_back(std::move(p));
        --credit;
      }
    }
  }
}

void ServingFrontEnd::UpdateBrownoutLocked() {
  const BrownoutConfig& b = config_.brownout;
  if (!b.enable) return;
  const bool latency_hot =
      b.latency_high_us != 0 && last_batch_us_ >= b.latency_high_us;
  if (!brownout_active_) {
    if (DepthLocked() >= b.high_watermark || latency_hot) {
      brownout_active_ = true;
      brownout_entered_ = Clock::now();
      ++stats_.brownout_entries;
    }
  } else if (DepthLocked() <= b.low_watermark && !latency_hot) {
    brownout_active_ = false;
    stats_.brownout_us += ElapsedUs(brownout_entered_, Clock::now());
    ++stats_.brownout_exits;
  }
}

void ServingFrontEnd::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    queue_cv_.wait(lock, [&] { return shutdown_ || DepthLocked() > 0; });
    if (DepthLocked() == 0) {
      if (shutdown_) break;
      continue;
    }

    // One fault-injection decision point per wakeup with work pending.
    FaultAction fault;
    if (config_.fault_injector != nullptr) {
      fault = config_.fault_injector->OnTick(injector_tick_++);
      if (fault.kind == FaultAction::Kind::kStall) {
        // Wedged dispatcher: sleep with the lock released so producers
        // keep enqueueing against a stalled server (this is how tests
        // drive queue growth into the admission machinery).
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::microseconds(fault.micros));
        lock.lock();
        continue;  // re-evaluate the queue after the stall
      }
    }

    // The batch opened when the oldest pending request arrived (either
    // lane); wait for it to fill, but never past that request's flush
    // deadline. A full queue (or shutdown) skips the wait entirely.
    Clock::time_point oldest = Clock::time_point::max();
    for (const auto& lane : lanes_) {
      if (!lane.empty()) oldest = std::min(oldest, lane.front().enqueued);
    }
    queue_cv_.wait_until(
        lock, oldest + std::chrono::microseconds(config_.flush_deadline_us),
        [&] { return shutdown_ || DepthLocked() >= config_.max_batch; });

    // Brownout decision at maximal observed depth, just before the
    // batch forms; the whole batch serves at one tier.
    UpdateBrownoutLocked();
    const bool degraded = brownout_active_;

    std::vector<Pending> batch;
    batch.reserve(std::min(DepthLocked(), config_.max_batch));
    FormBatchLocked(batch);
    // FormBatchLocked always pops at least one request (into the batch
    // or finalized as expired), so space just freed under kBlock.
    if (config_.max_queue_depth != 0) space_cv_.notify_all();
    if (batch.empty()) {
      // Everything dequeued had already expired; nothing to score.
      if (DepthLocked() == 0 && in_flight_ == 0) idle_cv_.notify_all();
      continue;
    }

    in_flight_ = batch.size();
    ++stats_.batches;
    if (batch.size() == config_.max_batch) {
      ++stats_.size_flushes;
    } else if (shutdown_) {
      ++stats_.drain_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    stats_.max_batch_served =
        std::max<uint64_t>(stats_.max_batch_served, batch.size());

    lock.unlock();
    const Clock::time_point start = Clock::now();
    ServeBatch(batch, degraded, fault);
    const uint64_t batch_us = ElapsedUs(start, Clock::now());
    lock.lock();

    last_batch_us_ = batch_us;
    stats_.requests += batch.size();
    in_flight_ = 0;
    idle_cv_.notify_all();
  }
  // Close an active brownout span so brownout_us is complete at exit.
  if (brownout_active_) {
    brownout_active_ = false;
    stats_.brownout_us += ElapsedUs(brownout_entered_, Clock::now());
    ++stats_.brownout_exits;
  }
}

void ServingFrontEnd::ServeBatch(std::vector<Pending>& batch, bool degraded,
                                 const FaultAction& fault) {
  const std::shared_ptr<State> state = state_.load();
  const ModelSnapshot& snapshot = *state->snapshot;

  // Validate up front so malformed requests fail their own future with
  // a diagnostic instead of tripping the engine's process-wide checks.
  std::vector<TopKRequest> valid;
  std::vector<size_t> valid_idx;
  valid.reserve(batch.size());
  valid_idx.reserve(batch.size());
  uint64_t rejected = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const TopKRequest& req = batch[i].req;
    std::string error;
    if (req.user >= snapshot.num_users()) {
      error = "user " + std::to_string(req.user) + " out of range [0, " +
              std::to_string(snapshot.num_users()) + ")";
    } else if (req.k == 0) {
      error = "k must be > 0";
    } else if (!std::is_sorted(req.extra_seen.begin(),
                               req.extra_seen.end())) {
      error = "extra_seen must be sorted ascending";
    }
    if (error.empty()) {
      valid.push_back(req);
      valid_idx.push_back(i);
    } else {
      FailPromise(batch[i].promise,
                  std::make_exception_ptr(
                      std::invalid_argument("ServingFrontEnd: " + error)));
      ++rejected;
    }
  }

  // Tier selection was made by the dispatcher (UpdateBrownoutLocked);
  // here it only picks which engine scores the batch.
  RankingEngine* engine = &state->engine;
  DegradeMode mode = DegradeMode::kNone;
  if (degraded && state->brownout_engine != nullptr) {
    engine = state->brownout_engine.get();
    mode = state->brownout_mode;
  }

  uint64_t lane_served[kNumLanes] = {};
  uint64_t degraded_served = 0;
  uint64_t expired_batch = 0;
  if (!valid.empty()) {
    if (fault.kind == FaultAction::Kind::kDelay) {
      // Injected slow scorer: the batch is already formed, so this
      // drives mid-batch deadline expiry and latency brownout.
      std::this_thread::sleep_for(std::chrono::microseconds(fault.micros));
    }
    try {
      if (fault.kind == FaultAction::Kind::kFail) {
        throw std::runtime_error("injected batch fault (FaultInjector)");
      }
      std::vector<TopKResponse> responses = engine->HandleBatch(valid);
      const Clock::time_point now = Clock::now();
      for (size_t v = 0; v < valid_idx.size(); ++v) {
        Pending& p = batch[valid_idx[v]];
        if (now >= p.deadline) {
          // Expired while the batch was being scored: discard the
          // ranking for this request only — a deadline-missed request
          // is never fulfilled with a ranking.
          ++expired_batch;
          FailPromise(p.promise, MakeDeadlineError("during batch scoring",
                                                   DeadlineStage::kBatch));
          continue;
        }
        ServedResponse served;
        served.topk = std::move(responses[v]);
        served.snapshot_seq = state->seq;
        served.snapshot = state->snapshot;
        served.degraded = mode != DegradeMode::kNone;
        served.degrade_mode = mode;
        served.queue_us = p.queue_us;
        ++lane_served[LaneIndex(p.req.lane)];
        if (served.degraded) ++degraded_served;
        p.promise.set_value(std::move(served));
      }
    } catch (const std::exception& e) {
      // Scoring failed: fail every future of this batch with the
      // generation + lane context a caller needs to diagnose which
      // publication broke; later batches proceed.
      for (size_t v = 0; v < valid_idx.size(); ++v) {
        Pending& p = batch[valid_idx[v]];
        FailPromise(p.promise,
                    std::make_exception_ptr(std::runtime_error(
                        "ServingFrontEnd: scoring failed on snapshot seq " +
                        std::to_string(state->seq) + " (lane " +
                        std::string(LaneName(p.req.lane)) + "): " +
                        e.what())));
      }
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (size_t v = 0; v < valid_idx.size(); ++v) {
        FailPromise(batch[valid_idx[v]].promise, error);
      }
    }
  }

  std::lock_guard<std::mutex> stats_lock(mu_);
  stats_.rejected += rejected;
  stats_.expired_batch += expired_batch;
  stats_.degraded_served += degraded_served;
  for (size_t lane = 0; lane < kNumLanes; ++lane) {
    stats_.lane_served[lane] += lane_served[lane];
  }
}

}  // namespace bslrec::serve
