#include "serve/ivf_index.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "math/rng.h"
#include "math/vec.h"

namespace bslrec::serve {

namespace {

// Rows per shard in the parallel assignment and copy loops. Outputs are
// per-row slots, so any fixed grain is deterministic.
constexpr size_t kIvfGrain = 256;

// Best centroid of one row under (dot score descending, centroid id
// ascending): one fused scan of the contiguous centroid block, then a
// first-max argmax (ascending scan keeps the lowest id on ties).
uint32_t AssignRow(const float* row, const float* centroids, uint32_t nlist,
                   size_t d, std::vector<float>& cscores) {
  cscores.resize(nlist);
  vec::DotBatch(row, centroids, nlist, d, cscores.data());
  uint32_t best = 0;
  for (uint32_t l = 1; l < nlist; ++l) {
    if (cscores[l] > cscores[best]) best = l;
  }
  return best;
}

}  // namespace

IvfIndex::IvfIndex(const Matrix& items, const int8_t* codes,
                   const float* scales, const uint16_t* f16,
                   runtime::ThreadPool& pool,
                   const IvfBuildOptions& options) {
  num_items_ = static_cast<uint32_t>(items.rows());
  dim_ = items.cols();
  if (num_items_ == 0) {
    list_offsets_.assign(1, 0);
    return;
  }
  uint32_t nlist = options.nlist;
  if (nlist == 0) {
    nlist = static_cast<uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(num_items_))));
  }
  nlist_ = std::min(std::max<uint32_t>(nlist, 1), num_items_);

  // Serial seeded init: nlist distinct item rows become the starting
  // centroids (identical embeddings may still coincide, which just
  // leaves some lists empty — a legal, tested shape).
  Rng rng(options.seed);
  std::vector<uint32_t> seeds =
      rng.SampleWithoutReplacement(num_items_, nlist_);
  std::sort(seeds.begin(), seeds.end());
  centroids_.resize(static_cast<size_t>(nlist_) * dim_);
  for (uint32_t l = 0; l < nlist_; ++l) {
    std::memcpy(centroids_.data() + static_cast<size_t>(l) * dim_,
                items.Row(seeds[l]), dim_ * sizeof(float));
  }

  // Deterministic training subsample (ascending ids) bounding the Lloyd
  // cost on huge catalogs; the final assignment below still covers every
  // item.
  const uint64_t cap =
      std::max<uint64_t>(static_cast<uint64_t>(nlist_) *
                             std::max<uint32_t>(options.sample_per_list, 1),
                         nlist_);
  std::vector<uint32_t> train;
  if (cap < num_items_) {
    train =
        rng.SampleWithoutReplacement(num_items_, static_cast<uint32_t>(cap));
    std::sort(train.begin(), train.end());
  } else {
    train.resize(num_items_);
    for (uint32_t i = 0; i < num_items_; ++i) train[i] = i;
  }

  std::vector<std::vector<float>> cscores(pool.num_workers());
  std::vector<std::vector<double>> accs(pool.num_workers());
  std::vector<uint32_t> assign(train.size());
  std::vector<uint32_t> member_offsets(nlist_ + 1);
  std::vector<uint32_t> members(train.size());
  for (uint32_t iter = 0; iter < options.iters; ++iter) {
    // (a) Assignment: per-row slots over fixed-grain shards.
    runtime::ParallelFor(
        pool, 0, train.size(), kIvfGrain,
        [&](size_t lo, size_t hi, size_t /*shard*/, size_t worker) {
          for (size_t t = lo; t < hi; ++t) {
            assign[t] = AssignRow(items.Row(train[t]), centroids_.data(),
                                  nlist_, dim_, cscores[worker]);
          }
        });
    // (b) Serial counting sort: each centroid's members in ascending
    // row order (the fixed order the update below sums in).
    std::fill(member_offsets.begin(), member_offsets.end(), 0u);
    for (uint32_t a : assign) ++member_offsets[a + 1];
    for (uint32_t l = 0; l < nlist_; ++l) {
      member_offsets[l + 1] += member_offsets[l];
    }
    std::vector<uint32_t> cursor(member_offsets.begin(),
                                 member_offsets.end() - 1);
    for (size_t t = 0; t < assign.size(); ++t) {
      members[cursor[assign[t]]++] = train[t];
    }
    // (c) Update: each centroid serially sums its members in that fixed
    // order into its own slot (double accumulation), then renormalizes
    // to a unit vector. Empty or fully-cancelling lists keep their
    // previous centroid.
    runtime::ParallelFor(
        pool, 0, nlist_, 8,
        [&](size_t lo, size_t hi, size_t /*shard*/, size_t worker) {
          std::vector<double>& acc = accs[worker];
          for (size_t l = lo; l < hi; ++l) {
            const uint32_t begin = member_offsets[l];
            const uint32_t end = member_offsets[l + 1];
            if (begin == end) continue;
            acc.assign(dim_, 0.0);
            for (uint32_t j = begin; j < end; ++j) {
              const float* row = items.Row(members[j]);
              for (size_t k = 0; k < dim_; ++k) acc[k] += row[k];
            }
            double norm2 = 0.0;
            for (const double v : acc) norm2 += v * v;
            const double norm = std::sqrt(norm2);
            if (!(norm > 0.0)) continue;
            float* c = centroids_.data() + l * dim_;
            for (size_t k = 0; k < dim_; ++k) {
              c[k] = static_cast<float>(acc[k] / norm);
            }
          }
        });
  }

  // Final assignment over every item, then CSR postings by a serial
  // counting sort in ascending item order (so ids ascend within lists).
  std::vector<uint32_t> assign_all(num_items_);
  runtime::ParallelFor(
      pool, 0, num_items_, kIvfGrain,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t worker) {
        for (size_t i = lo; i < hi; ++i) {
          assign_all[i] = AssignRow(items.Row(i), centroids_.data(), nlist_,
                                    dim_, cscores[worker]);
        }
      });
  list_offsets_.assign(nlist_ + 1, 0);
  for (uint32_t a : assign_all) ++list_offsets_[a + 1];
  for (uint32_t l = 0; l < nlist_; ++l) {
    list_offsets_[l + 1] += list_offsets_[l];
  }
  list_items_.resize(num_items_);
  std::vector<uint32_t> cursor(list_offsets_.begin(), list_offsets_.end() - 1);
  for (uint32_t i = 0; i < num_items_; ++i) {
    list_items_[cursor[assign_all[i]]++] = i;
  }

  // Grouped representation tables in posting order: list visits become
  // contiguous fused scans. Per-position fills — deterministic.
  grouped_f32_.resize(static_cast<size_t>(num_items_) * dim_);
  if (codes != nullptr) {
    grouped_codes_.resize(static_cast<size_t>(num_items_) * dim_);
    grouped_scale_.resize(num_items_);
  }
  if (f16 != nullptr) {
    grouped_f16_.resize(static_cast<size_t>(num_items_) * dim_);
  }
  runtime::ParallelFor(
      pool, 0, num_items_, kIvfGrain,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t /*worker*/) {
        for (size_t p = lo; p < hi; ++p) {
          const size_t id = list_items_[p];
          std::memcpy(grouped_f32_.data() + p * dim_, items.Row(id),
                      dim_ * sizeof(float));
          if (codes != nullptr) {
            std::memcpy(grouped_codes_.data() + p * dim_, codes + id * dim_,
                        dim_ * sizeof(int8_t));
            grouped_scale_[p] = scales[id];
          }
          if (f16 != nullptr) {
            std::memcpy(grouped_f16_.data() + p * dim_, f16 + id * dim_,
                        dim_ * sizeof(uint16_t));
          }
        }
      });
}

}  // namespace bslrec::serve
