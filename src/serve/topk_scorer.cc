#include "serve/topk_scorer.h"

#include <algorithm>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec::serve {

void ScoreItemRange(const ModelSnapshot& snapshot, const float* q_hat,
                    uint32_t lo, uint32_t hi, float* out) {
  const size_t d = snapshot.dim();
  for (uint32_t i = lo; i < hi; ++i) {
    out[i - lo] = vec::Dot(q_hat, snapshot.ItemVec(i), d);
  }
}

namespace {

// Fills `cand` with the non-excluded items of the scored block and
// partially sorts its top-min(k, size) prefix; returns the prefix size.
size_t SortTopCandidates(const float* scores, uint32_t lo, uint32_t hi,
                         uint32_t k, std::span<const uint32_t> exclude,
                         std::vector<ScoredItem>& cand) {
  cand.clear();
  cand.reserve(hi - lo);
  auto ex = exclude.begin();
  for (uint32_t i = lo; i < hi; ++i) {
    while (ex != exclude.end() && *ex < i) ++ex;
    if (ex != exclude.end() && *ex == i) continue;
    cand.push_back({i, scores[i - lo]});
  }
  const size_t kk = std::min<size_t>(k, cand.size());
  std::partial_sort(cand.begin(), cand.begin() + kk, cand.end(),
                    ScoredBefore);
  return kk;
}

}  // namespace

std::vector<ScoredItem> SelectTopK(const float* scores, uint32_t lo,
                                   uint32_t hi, uint32_t k,
                                   std::span<const uint32_t> exclude) {
  std::vector<ScoredItem> cand;
  cand.resize(SortTopCandidates(scores, lo, hi, k, exclude, cand));
  return cand;
}

std::vector<ScoredItem> SelectTopKWithScratch(
    const float* scores, uint32_t lo, uint32_t hi, uint32_t k,
    std::span<const uint32_t> exclude, std::vector<ScoredItem>& scratch) {
  const size_t kk = SortTopCandidates(scores, lo, hi, k, exclude, scratch);
  return std::vector<ScoredItem>(scratch.begin(),
                                 scratch.begin() + static_cast<long>(kk));
}

std::vector<ScoredItem> MergeTopK(
    std::span<const std::vector<ScoredItem>> shard_tops, uint32_t k) {
  size_t total = 0;
  for (const std::vector<ScoredItem>& st : shard_tops) total += st.size();
  std::vector<ScoredItem> all;
  all.reserve(total);
  for (const std::vector<ScoredItem>& st : shard_tops) {
    all.insert(all.end(), st.begin(), st.end());
  }
  const size_t kk = std::min<size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + kk, all.end(), ScoredBefore);
  all.resize(kk);
  return all;
}

CatalogScorer::CatalogScorer(const ModelSnapshot& snapshot,
                             runtime::ThreadPool& pool,
                             uint32_t items_per_shard)
    : snapshot_(snapshot), pool_(pool), items_per_shard_(items_per_shard) {
  BSLREC_CHECK(items_per_shard > 0);
}

std::vector<ScoredItem> CatalogScorer::TopK(const ScoreQuery& query) const {
  return BatchTopK({&query, 1})[0];
}

std::vector<std::vector<ScoredItem>> CatalogScorer::BatchTopK(
    std::span<const ScoreQuery> queries) const {
  const uint32_t n = snapshot_.num_items();
  const size_t num_shards =
      (static_cast<size_t>(n) + items_per_shard_ - 1) / items_per_shard_;
  std::vector<std::vector<ScoredItem>> out(queries.size());
  if (queries.empty() || num_shards == 0) return out;

  // Flat (query, item-shard) task grid with one per-shard output slot
  // per task and shard-sized score/candidate buffers per worker. Each
  // slot is written by exactly one task, so no synchronization is
  // needed and the serial per-query merge below is deterministic.
  std::vector<std::vector<ScoredItem>> shard_tops(queries.size() *
                                                  num_shards);
  std::vector<std::vector<float>> scores(pool_.num_workers());
  std::vector<std::vector<ScoredItem>> cand(pool_.num_workers());
  runtime::ParallelFor(
      pool_, 0, shard_tops.size(), 1,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t worker) {
        std::vector<float>& buf = scores[worker];
        buf.resize(items_per_shard_);
        for (size_t t = lo; t < hi; ++t) {
          const ScoreQuery& q = queries[t / num_shards];
          const uint32_t item_lo = static_cast<uint32_t>(
              (t % num_shards) * items_per_shard_);
          const uint32_t item_hi =
              std::min<uint32_t>(n, item_lo + items_per_shard_);
          ScoreItemRange(snapshot_, q.q_hat, item_lo, item_hi, buf.data());
          shard_tops[t] = SelectTopKWithScratch(
              buf.data(), item_lo, item_hi, q.k, q.exclude, cand[worker]);
        }
      });
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    out[qi] = MergeTopK(
        std::span<const std::vector<ScoredItem>>(
            shard_tops.data() + qi * num_shards, num_shards),
        queries[qi].k);
  }
  return out;
}

}  // namespace bslrec::serve
