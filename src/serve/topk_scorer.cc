#include "serve/topk_scorer.h"

#include <algorithm>

#include "math/check.h"
#include "math/vec.h"

namespace bslrec::serve {

void ScoreItemRange(const ModelSnapshot& snapshot, const float* q_hat,
                    uint32_t lo, uint32_t hi, float* out) {
  const size_t d = snapshot.dim();
  for (uint32_t i = lo; i < hi; ++i) {
    out[i - lo] = vec::Dot(q_hat, snapshot.ItemVec(i), d);
  }
}

namespace {

// Fills `cand` with the non-excluded items of the scored block and
// partially sorts its top-min(k, size) prefix; returns the prefix size.
size_t SortTopCandidates(const float* scores, uint32_t lo, uint32_t hi,
                         uint32_t k, std::span<const uint32_t> exclude,
                         std::vector<ScoredItem>& cand) {
  cand.clear();
  cand.reserve(hi - lo);
  auto ex = exclude.begin();
  for (uint32_t i = lo; i < hi; ++i) {
    while (ex != exclude.end() && *ex < i) ++ex;
    if (ex != exclude.end() && *ex == i) continue;
    cand.push_back({i, scores[i - lo]});
  }
  const size_t kk = std::min<size_t>(k, cand.size());
  std::partial_sort(cand.begin(), cand.begin() + kk, cand.end(),
                    ScoredBefore);
  return kk;
}

}  // namespace

std::vector<ScoredItem> SelectTopK(const float* scores, uint32_t lo,
                                   uint32_t hi, uint32_t k,
                                   std::span<const uint32_t> exclude) {
  std::vector<ScoredItem> cand;
  cand.resize(SortTopCandidates(scores, lo, hi, k, exclude, cand));
  return cand;
}

std::vector<ScoredItem> SelectTopKWithScratch(
    const float* scores, uint32_t lo, uint32_t hi, uint32_t k,
    std::span<const uint32_t> exclude, std::vector<ScoredItem>& scratch) {
  const size_t kk = SortTopCandidates(scores, lo, hi, k, exclude, scratch);
  return std::vector<ScoredItem>(scratch.begin(),
                                 scratch.begin() + static_cast<long>(kk));
}

void SelectTopKInto(const float* scores, uint32_t lo, uint32_t hi, uint32_t k,
                    std::span<const uint32_t> exclude,
                    std::vector<ScoredItem>& scratch,
                    std::vector<ScoredItem>& out) {
  const size_t kk = SortTopCandidates(scores, lo, hi, k, exclude, scratch);
  out.assign(scratch.begin(), scratch.begin() + static_cast<long>(kk));
}

void QuantizedShardTopK(const ModelSnapshot& snapshot,
                        const QuantizedQuery& query, uint32_t lo, uint32_t hi,
                        uint32_t k, uint32_t candidate_margin,
                        std::span<const uint32_t> exclude, ShardScratch& ws,
                        std::vector<ScoredItem>& out) {
  const size_t d = snapshot.dim();
  const uint32_t m = hi - lo;
  ++ws.shards_scanned;

  // Phase 1: integer scan of the shard's int8 codes.
  ws.idot.resize(m);
  vec::DotBatchI8(query.codes, snapshot.ItemCodes(lo), m, d, ws.idot.data());

  // Dequantize into approximate scores for the eligible (non-excluded)
  // items, tracking the shard-wide certification-bound ingredients.
  ws.approx.clear();
  ws.approx.reserve(m);
  float max_iscale = 0.0f;
  float max_scale_l1 = 0.0f;
  auto ex = exclude.begin();
  for (uint32_t i = lo; i < hi; ++i) {
    while (ex != exclude.end() && *ex < i) ++ex;
    if (ex != exclude.end() && *ex == i) continue;
    const float iscale = snapshot.ItemScale(i);
    max_iscale = std::max(max_iscale, iscale);
    max_scale_l1 = std::max(max_scale_l1, snapshot.ItemScaleL1(i));
    const float approx =
        static_cast<float>(ws.idot[i - lo]) * (query.scale * iscale);
    ws.approx.push_back({i, approx});
  }

  // c = k + margin candidates (saturating).
  const uint32_t c = k > UINT32_MAX - candidate_margin
                         ? UINT32_MAX
                         : k + candidate_margin;
  if (ws.approx.size() <= c) {
    // Degenerate shard (not enough items to prune): exact-score every
    // eligible item — identical to the full fp32 path by construction.
    for (ScoredItem& e : ws.approx) {
      e.score = vec::Dot(query.q_hat, snapshot.ItemVec(e.item), d);
    }
    const size_t kk = std::min<size_t>(k, ws.approx.size());
    std::partial_sort(ws.approx.begin(),
                      ws.approx.begin() + static_cast<long>(kk),
                      ws.approx.end(), ScoredBefore);
    out.assign(ws.approx.begin(), ws.approx.begin() + static_cast<long>(kk));
    return;
  }

  // Top-c eligible items by approximate score. Every unselected item's
  // approximate score is <= the c-th candidate's.
  std::partial_sort(ws.approx.begin(), ws.approx.begin() + c, ws.approx.end(),
                    ScoredBefore);
  const float approx_cutoff = ws.approx[c - 1].score;

  // Phase 2: exact fp32 re-score of the candidates — the same vec::Dot
  // ScoreItemRange uses, so certified results match the exact scan
  // bitwise.
  for (uint32_t j = 0; j < c; ++j) {
    ws.approx[j].score =
        vec::Dot(query.q_hat, snapshot.ItemVec(ws.approx[j].item), d);
  }
  std::partial_sort(ws.approx.begin(), ws.approx.begin() + k,
                    ws.approx.begin() + c, ScoredBefore);
  const float kth_exact = ws.approx[k - 1].score;

  // Certification: an unselected item's true score is at most its
  // approximate score plus the quantization bound
  //   B = 0.5*(max_iscale*||q^||_1 + q_scale*max(iscale_i*||codes_i||_1))
  // over eligible shard items. The bound is computed in double and
  // inflated (x1.001 + 1e-6) to absorb the fp rounding of the bound
  // arithmetic, of the dequantized approximations, and of the exact
  // scores themselves — strictly below the k-th exact score means no
  // unselected item can reach the top-k.
  const double bound = 0.5 * (static_cast<double>(max_iscale) * query.l1 +
                              static_cast<double>(query.scale) *
                                  static_cast<double>(max_scale_l1));
  const bool certified = static_cast<double>(approx_cutoff) +
                             bound * 1.001 + 1e-6 <
                         static_cast<double>(kth_exact);
  if (certified) {
    out.assign(ws.approx.begin(), ws.approx.begin() + k);
    return;
  }

  // The margin could not separate the top-k boundary (near-tie score
  // distribution): fall back to the full exact shard scan. Same output
  // either way — the fallback costs latency, never correctness.
  ++ws.shards_fallback;
  ws.scores.resize(m);
  ScoreItemRange(snapshot, query.q_hat, lo, hi, ws.scores.data());
  SelectTopKInto(ws.scores.data(), lo, hi, k, exclude, ws.cand, out);
}

void F16ShardTopK(const ModelSnapshot& snapshot, const float* q_hat,
                  uint32_t lo, uint32_t hi, uint32_t k,
                  uint32_t candidate_margin, std::span<const uint32_t> exclude,
                  ShardScratch& ws, std::vector<ScoredItem>& out) {
  const size_t d = snapshot.dim();
  const uint32_t m = hi - lo;
  ++ws.fp16_shards;

  // Phase 1: fp16 scan of the shard (half the fp32 memory traffic),
  // then the top c = k + margin eligible items by fp16 score.
  ws.scores.resize(m);
  vec::DotBatchF16(q_hat, snapshot.ItemF16(lo), m, d, ws.scores.data());
  const uint32_t c = k > UINT32_MAX - candidate_margin ? UINT32_MAX
                                                       : k + candidate_margin;
  const size_t cc = SortTopCandidates(ws.scores.data(), lo, hi, c, exclude,
                                      ws.cand);
  // Phase 2: exact fp32 re-rank of just those candidates. No
  // certification — items below the fp16 cutoff stay invisible (see the
  // header note); every returned score is still the exact cosine.
  for (size_t j = 0; j < cc; ++j) {
    ws.cand[j].score = vec::Dot(q_hat, snapshot.ItemVec(ws.cand[j].item), d);
  }
  const size_t kk = std::min<size_t>(k, cc);
  std::partial_sort(ws.cand.begin(), ws.cand.begin() + static_cast<long>(kk),
                    ws.cand.begin() + static_cast<long>(cc), ScoredBefore);
  out.assign(ws.cand.begin(), ws.cand.begin() + static_cast<long>(kk));
}

std::vector<ScoredItem> F16CatalogTopK(const ModelSnapshot& snapshot,
                                       const float* q_hat, uint32_t k,
                                       std::span<const uint32_t> exclude,
                                       const ScorerOptions& options,
                                       ShardScratch& ws) {
  const uint32_t n = snapshot.num_items();
  ws.merge.clear();
  for (uint32_t lo = 0; lo < n; lo += options.items_per_shard) {
    const uint32_t hi = std::min<uint32_t>(n, lo + options.items_per_shard);
    F16ShardTopK(snapshot, q_hat, lo, hi, k, options.candidate_margin,
                 exclude, ws, ws.shard_out);
    ws.merge.insert(ws.merge.end(), ws.shard_out.begin(), ws.shard_out.end());
  }
  const size_t kk = std::min<size_t>(k, ws.merge.size());
  std::partial_sort(ws.merge.begin(),
                    ws.merge.begin() + static_cast<long>(kk), ws.merge.end(),
                    ScoredBefore);
  return std::vector<ScoredItem>(ws.merge.begin(),
                                 ws.merge.begin() + static_cast<long>(kk));
}

void IvfTopKInto(const ModelSnapshot& snapshot, const float* q_hat,
                 uint32_t k, std::span<const uint32_t> exclude,
                 const ScorerOptions& options, ShardScratch& ws,
                 std::vector<ScoredItem>& out) {
  const IvfIndex* ivf = snapshot.ivf();
  BSLREC_CHECK_MSG(ivf != nullptr,
                   "ANN scoring needs a snapshot built with "
                   "SnapshotOptions::ivf.build");
  const size_t d = snapshot.dim();
  const uint32_t nlist = ivf->nlist();
  ++ws.ivf_queries;
  out.clear();
  if (nlist == 0 || k == 0) return;

  // 1. Score every centroid with one fused scan, then pick the
  // top-nprobe lists under (score desc, centroid id asc).
  const uint32_t nprobe =
      std::min<uint32_t>(std::max<uint32_t>(options.nprobe, 1), nlist);
  ws.scores.resize(nlist);
  vec::DotBatch(q_hat, ivf->Centroids(), nlist, d, ws.scores.data());
  SelectTopKInto(ws.scores.data(), 0, nlist, nprobe, {}, ws.cand, ws.probes);

  // 2. Gather eligible candidates from the probed lists. Candidates
  // carry their grouped *position* in `item` until the final sort so
  // phase 2 can read the index's contiguous rows.
  const bool two_phase = options.quantize || options.fp16;
  float q_scale = 0.0f;
  if (options.quantize) {
    ws.q_codes.resize(d);
    q_scale = vec::QuantizeRow(q_hat, d, ws.q_codes.data());
  }
  ws.approx.clear();
  for (const ScoredItem& probe : ws.probes) {
    ++ws.ivf_lists;
    const uint32_t begin = ivf->ListOffset(probe.item);
    const uint32_t end = ivf->ListOffset(probe.item + 1);
    if (begin == end) continue;  // empty list
    const uint32_t m = end - begin;
    ws.scores.resize(m);
    if (options.quantize) {
      ws.idot.resize(m);
      vec::DotBatchI8(ws.q_codes.data(), ivf->Codes(begin), m, d,
                      ws.idot.data());
      for (uint32_t j = 0; j < m; ++j) {
        ws.scores[j] = static_cast<float>(ws.idot[j]) *
                       (q_scale * ivf->Scale(begin + j));
      }
    } else if (options.fp16) {
      vec::DotBatchF16(q_hat, ivf->F16(begin), m, d, ws.scores.data());
    } else {
      vec::DotBatch(q_hat, ivf->Row(begin), m, d, ws.scores.data());
    }
    // Exclusion merge: list ids and the exclude span are both sorted
    // ascending, so one forward walk per list suffices.
    const uint32_t* ids = ivf->ItemIds(begin);
    auto ex = std::lower_bound(exclude.begin(), exclude.end(), ids[0]);
    for (uint32_t j = 0; j < m; ++j) {
      const uint32_t id = ids[j];
      while (ex != exclude.end() && *ex < id) ++ex;
      if (ex != exclude.end() && *ex == id) continue;
      ws.approx.push_back({begin + j, ws.scores[j]});
    }
  }
  ws.ivf_candidates += ws.approx.size();

  // 3. Two-phase modes: keep the top c = k + margin of the whole
  // candidate pool by approximate score (position tie-break — a fixed
  // property of the index, so still deterministic), then exact fp32
  // re-rank the survivors. fp32 mode scored exactly already.
  size_t cc = ws.approx.size();
  if (two_phase) {
    const uint32_t c = k > UINT32_MAX - options.candidate_margin
                           ? UINT32_MAX
                           : k + options.candidate_margin;
    cc = std::min<size_t>(c, ws.approx.size());
    std::partial_sort(ws.approx.begin(),
                      ws.approx.begin() + static_cast<long>(cc),
                      ws.approx.end(), ScoredBefore);
    for (size_t j = 0; j < cc; ++j) {
      ws.approx[j].score = vec::Dot(q_hat, ivf->Row(ws.approx[j].item), d);
    }
    ws.ivf_reranked += cc;
  }

  // 4. Map positions back to item ids, then the final top-k under the
  // strict (score desc, id asc) total order.
  for (size_t j = 0; j < cc; ++j) {
    ws.approx[j].item = ivf->ItemIdAt(ws.approx[j].item);
  }
  const size_t kk = std::min<size_t>(k, cc);
  std::partial_sort(ws.approx.begin(),
                    ws.approx.begin() + static_cast<long>(kk),
                    ws.approx.begin() + static_cast<long>(cc), ScoredBefore);
  out.assign(ws.approx.begin(), ws.approx.begin() + static_cast<long>(kk));
}

std::vector<ScoredItem> IvfCatalogTopK(const ModelSnapshot& snapshot,
                                       const float* q_hat, uint32_t k,
                                       std::span<const uint32_t> exclude,
                                       const ScorerOptions& options,
                                       ShardScratch& ws) {
  std::vector<ScoredItem> out;
  IvfTopKInto(snapshot, q_hat, k, exclude, options, ws, out);
  return out;
}

std::vector<ScoredItem> QuantizedCatalogTopK(const ModelSnapshot& snapshot,
                                             const float* q_hat, uint32_t k,
                                             std::span<const uint32_t> exclude,
                                             const ScorerOptions& options,
                                             ShardScratch& ws) {
  const size_t d = snapshot.dim();
  const uint32_t n = snapshot.num_items();
  ws.q_codes.resize(d);
  QuantizedQuery query;
  query.q_hat = q_hat;
  query.codes = ws.q_codes.data();
  query.scale = vec::QuantizeRow(q_hat, d, ws.q_codes.data());
  query.l1 = vec::L1Norm(q_hat, d);

  // Per-shard certified top-k, accumulated and reduced exactly like
  // MergeTopK (concatenate, then one partial_sort under the strict
  // total order), so the result is independent of the shard grain.
  ws.merge.clear();
  for (uint32_t lo = 0; lo < n; lo += options.items_per_shard) {
    const uint32_t hi = std::min<uint32_t>(n, lo + options.items_per_shard);
    QuantizedShardTopK(snapshot, query, lo, hi, k, options.candidate_margin,
                       exclude, ws, ws.shard_out);
    ws.merge.insert(ws.merge.end(), ws.shard_out.begin(), ws.shard_out.end());
  }
  const size_t kk = std::min<size_t>(k, ws.merge.size());
  std::partial_sort(ws.merge.begin(), ws.merge.begin() + static_cast<long>(kk),
                    ws.merge.end(), ScoredBefore);
  return std::vector<ScoredItem>(ws.merge.begin(),
                                 ws.merge.begin() + static_cast<long>(kk));
}

std::vector<ScoredItem> MergeTopK(
    std::span<const std::vector<ScoredItem>> shard_tops, uint32_t k) {
  size_t total = 0;
  for (const std::vector<ScoredItem>& st : shard_tops) total += st.size();
  std::vector<ScoredItem> all;
  all.reserve(total);
  for (const std::vector<ScoredItem>& st : shard_tops) {
    all.insert(all.end(), st.begin(), st.end());
  }
  const size_t kk = std::min<size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + kk, all.end(), ScoredBefore);
  all.resize(kk);
  return all;
}

CatalogScorer::CatalogScorer(const ModelSnapshot& snapshot,
                             runtime::ThreadPool& pool,
                             uint32_t items_per_shard)
    : CatalogScorer(snapshot, pool,
                    ScorerOptions{.items_per_shard = items_per_shard}) {}

CatalogScorer::CatalogScorer(const ModelSnapshot& snapshot,
                             runtime::ThreadPool& pool,
                             const ScorerOptions& options)
    : snapshot_(snapshot),
      pool_(pool),
      options_(options),
      scratch_(pool.num_workers()) {
  BSLREC_CHECK(options.items_per_shard > 0);
  BSLREC_CHECK_MSG(!options.quantize || snapshot.has_quantized_items(),
                   "ScorerOptions::quantize requires a snapshot built with "
                   "SnapshotOptions::quantize_items");
  BSLREC_CHECK_MSG(!options.fp16 || snapshot.has_fp16_items(),
                   "ScorerOptions::fp16 requires a snapshot built with "
                   "SnapshotOptions::fp16_items");
  BSLREC_CHECK_MSG(!(options.quantize && options.fp16),
                   "ScorerOptions::quantize and fp16 are mutually exclusive "
                   "phase-1 representations");
  BSLREC_CHECK_MSG(options.exact || snapshot.ivf() != nullptr,
                   "ScorerOptions::exact = false requires a snapshot built "
                   "with SnapshotOptions::ivf.build");
}

CatalogScorer::Stats CatalogScorer::stats() const {
  Stats s;
  for (const ShardScratch& ws : scratch_) {
    s.exact_shards += ws.exact_shards;
    s.shards_scanned += ws.shards_scanned;
    s.shards_fallback += ws.shards_fallback;
    s.fp16_shards += ws.fp16_shards;
    s.ivf_queries += ws.ivf_queries;
    s.ivf_lists += ws.ivf_lists;
    s.ivf_candidates += ws.ivf_candidates;
    s.ivf_reranked += ws.ivf_reranked;
  }
  return s;
}

void CatalogScorer::ResetStats() const {
  for (ShardScratch& ws : scratch_) {
    ws.exact_shards = 0;
    ws.shards_scanned = 0;
    ws.shards_fallback = 0;
    ws.fp16_shards = 0;
    ws.ivf_queries = 0;
    ws.ivf_lists = 0;
    ws.ivf_candidates = 0;
    ws.ivf_reranked = 0;
  }
}

std::vector<ScoredItem> CatalogScorer::TopK(const ScoreQuery& query) const {
  return BatchTopK({&query, 1})[0];
}

std::vector<std::vector<ScoredItem>> CatalogScorer::BatchTopK(
    std::span<const ScoreQuery> queries) const {
  const uint32_t n = snapshot_.num_items();
  const uint32_t items_per_shard = options_.items_per_shard;
  const size_t num_shards =
      (static_cast<size_t>(n) + items_per_shard - 1) / items_per_shard;
  std::vector<std::vector<ScoredItem>> out(queries.size());
  if (queries.empty()) return out;

  if (!options_.exact) {
    // ANN: each query is one serial probe/scan/re-rank unit writing its
    // own output slot; the pool only fans out *across* queries, so the
    // responses are bit-identical for any thread count, shard grain
    // (unused here), or batch packing.
    runtime::ParallelFor(
        pool_, 0, queries.size(), 1,
        [&](size_t lo, size_t hi, size_t /*shard*/, size_t worker) {
          ShardScratch& ws = scratch_[worker];
          for (size_t qi = lo; qi < hi; ++qi) {
            IvfTopKInto(snapshot_, queries[qi].q_hat, queries[qi].k,
                        queries[qi].exclude, options_, ws, out[qi]);
          }
        });
    return out;
  }
  if (num_shards == 0) return out;

  const size_t d = snapshot_.dim();
  if (options_.quantize) {
    // Quantize every query once up front (rows are independent, so the
    // parallel fill is deterministic); the task grid below reads them.
    q_codes_.resize(queries.size() * d);
    q_scale_.resize(queries.size());
    q_l1_.resize(queries.size());
    runtime::ParallelFor(
        pool_, 0, queries.size(), 8,
        [&](size_t lo, size_t hi, size_t /*shard*/, size_t /*worker*/) {
          for (size_t qi = lo; qi < hi; ++qi) {
            q_scale_[qi] =
                vec::QuantizeRow(queries[qi].q_hat, d, &q_codes_[qi * d]);
            q_l1_[qi] = vec::L1Norm(queries[qi].q_hat, d);
          }
        });
  }

  // Flat (query, item-shard) task grid with one per-shard output slot
  // per task and shard-sized buffers per worker (hoisted into scorer
  // scratch — steady-state scanning allocates nothing). Each slot is
  // written by exactly one task, so no synchronization is needed and
  // the serial per-query merge below is deterministic.
  shard_tops_.resize(queries.size() * num_shards);
  runtime::ParallelFor(
      pool_, 0, shard_tops_.size(), 1,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t worker) {
        ShardScratch& ws = scratch_[worker];
        for (size_t t = lo; t < hi; ++t) {
          const size_t qi = t / num_shards;
          const ScoreQuery& q = queries[qi];
          const uint32_t item_lo =
              static_cast<uint32_t>((t % num_shards) * items_per_shard);
          const uint32_t item_hi =
              std::min<uint32_t>(n, item_lo + items_per_shard);
          if (options_.quantize) {
            const QuantizedQuery qq{q.q_hat, q_codes_.data() + qi * d,
                                    q_scale_[qi], q_l1_[qi]};
            QuantizedShardTopK(snapshot_, qq, item_lo, item_hi, q.k,
                               options_.candidate_margin, q.exclude, ws,
                               shard_tops_[t]);
          } else if (options_.fp16) {
            F16ShardTopK(snapshot_, q.q_hat, item_lo, item_hi, q.k,
                         options_.candidate_margin, q.exclude, ws,
                         shard_tops_[t]);
          } else {
            ++ws.exact_shards;
            ws.scores.resize(items_per_shard);
            ScoreItemRange(snapshot_, q.q_hat, item_lo, item_hi,
                           ws.scores.data());
            SelectTopKInto(ws.scores.data(), item_lo, item_hi, q.k, q.exclude,
                           ws.cand, shard_tops_[t]);
          }
        }
      });
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    out[qi] = MergeTopK(
        std::span<const std::vector<ScoredItem>>(
            shard_tops_.data() + qi * num_shards, num_shards),
        queries[qi].k);
  }
  return out;
}

}  // namespace bslrec::serve
