#include "serve/ranking_engine.h"

#include <algorithm>

#include "math/check.h"

namespace bslrec::serve {

namespace {

// Marks a user whose cached ranking is being computed by the current
// batch (so duplicate users in one batch score only once).
constexpr uint8_t kCacheAbsent = 0;
constexpr uint8_t kCacheValid = 1;
constexpr uint8_t kCachePending = 2;

TopKResponse ToResponse(std::span<const ScoredItem> ranking, uint32_t k) {
  const size_t kk = std::min<size_t>(k, ranking.size());
  TopKResponse resp;
  resp.items.reserve(kk);
  resp.scores.reserve(kk);
  for (size_t i = 0; i < kk; ++i) {
    resp.items.push_back(ranking[i].item);
    resp.scores.push_back(ranking[i].score);
  }
  return resp;
}

}  // namespace

SnapshotOptions SnapshotOptionsFor(const ServeConfig& config) {
  SnapshotOptions so;
  so.quantize_items = config.quantize;
  so.fp16_items = config.fp16;
  so.ivf = config.ivf;
  if (!config.exact) so.ivf.build = true;
  return so;
}

ScorerOptions ScorerOptionsFor(const ServeConfig& config) {
  return ScorerOptions{.items_per_shard = config.items_per_shard,
                       .quantize = config.quantize,
                       .candidate_margin = config.candidate_margin,
                       .fp16 = config.fp16,
                       .exact = config.exact,
                       .nprobe = config.nprobe};
}

RankingEngine::RankingEngine(const Dataset& data,
                             const ModelSnapshot& snapshot,
                             runtime::ThreadPool& pool,
                             const ServeConfig& config)
    : data_(data),
      config_(config),
      snapshot_(snapshot),
      scorer_(snapshot, pool, ScorerOptionsFor(config)),
      cache_valid_(config.cache_rankings ? data.num_users() : 0,
                   kCacheAbsent),
      cache_(config.cache_rankings ? data.num_users() : 0) {
  BSLREC_CHECK(config.max_k > 0);
  BSLREC_CHECK(data.num_users() == snapshot.num_users());
  BSLREC_CHECK(data.num_items() == snapshot.num_items());
}

TopKResponse RankingEngine::Handle(const TopKRequest& request) {
  std::vector<TopKResponse> responses = HandleBatch({&request, 1});
  return std::move(responses[0]);
}

std::vector<TopKResponse> RankingEngine::HandleBatch(
    std::span<const TopKRequest> requests) {
  std::vector<TopKResponse> out(requests.size());
  if (requests.empty()) return out;

  // Split the batch: cache-eligible requests (default filtering,
  // k <= max_k) share one top-max_k scoring per user; everything else
  // is scored directly at its own cutoff with its own exclusion list.
  std::vector<uint32_t> miss_users;  // unique, first-appearance order
  std::vector<size_t> direct_reqs;
  std::vector<bool> from_cache(requests.size(), false);
  for (size_t r = 0; r < requests.size(); ++r) {
    const TopKRequest& req = requests[r];
    BSLREC_CHECK(req.user < snapshot_.num_users());
    BSLREC_CHECK(req.k > 0);
    BSLREC_CHECK(
        std::is_sorted(req.extra_seen.begin(), req.extra_seen.end()));
    const bool cacheable = config_.cache_rankings && req.filter_seen &&
                           req.extra_seen.empty() && req.k <= config_.max_k;
    if (cacheable) {
      from_cache[r] = true;
      if (cache_valid_[req.user] == kCacheAbsent) {
        cache_valid_[req.user] = kCachePending;
        miss_users.push_back(req.user);
      }
    } else {
      direct_reqs.push_back(r);
    }
  }

  // One flat scoring batch: cache misses first, then direct requests.
  // Merged per-request exclusion lists live in `merged_seen` so the
  // query spans stay valid until BatchTopK returns.
  std::vector<ScoreQuery> queries;
  queries.reserve(miss_users.size() + direct_reqs.size());
  std::vector<std::vector<uint32_t>> merged_seen;
  merged_seen.reserve(direct_reqs.size());
  for (uint32_t u : miss_users) {
    queries.push_back(
        {snapshot_.UserVec(u), config_.max_k, data_.TrainItems(u)});
  }
  for (size_t r : direct_reqs) {
    const TopKRequest& req = requests[r];
    std::span<const uint32_t> exclude;
    if (req.filter_seen && req.extra_seen.empty()) {
      exclude = data_.TrainItems(req.user);
    } else if (!req.filter_seen) {
      exclude = req.extra_seen;
    } else {
      const auto train = data_.TrainItems(req.user);
      std::vector<uint32_t>& merged = merged_seen.emplace_back();
      merged.reserve(train.size() + req.extra_seen.size());
      std::set_union(train.begin(), train.end(), req.extra_seen.begin(),
                     req.extra_seen.end(), std::back_inserter(merged));
      exclude = merged;
    }
    queries.push_back({snapshot_.UserVec(req.user), req.k, exclude});
  }

  std::vector<std::vector<ScoredItem>> results = scorer_.BatchTopK(queries);
  for (size_t m = 0; m < miss_users.size(); ++m) {
    cache_[miss_users[m]] = std::move(results[m]);
    cache_valid_[miss_users[m]] = kCacheValid;
  }
  for (size_t d = 0; d < direct_reqs.size(); ++d) {
    const size_t r = direct_reqs[d];
    out[r] = ToResponse(results[miss_users.size() + d], requests[r].k);
  }
  for (size_t r = 0; r < requests.size(); ++r) {
    if (from_cache[r]) {
      out[r] = ToResponse(cache_[requests[r].user], requests[r].k);
    }
  }
  return out;
}

}  // namespace bslrec::serve
