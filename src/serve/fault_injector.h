// Deterministic fault injection for the serving front door.
//
// `FaultInjector` is a seam on the `ServingFrontEnd` dispatcher
// (serving_frontend.h): once per dispatcher decision point the front
// end asks the injector what — if anything — should go wrong, and
// applies the returned action itself. The injector never touches the
// queue or the promises; it only *decides*, so every fault path runs
// through the same production code the fault is meant to exercise.
//
// Three fault kinds cover the overload state machine:
//
//   * kStall  — the dispatcher sleeps *before forming a batch*, with
//     the queue lock released, so producers keep enqueueing into a
//     wedged server. This is how tests drive queue growth: bounded
//     admission (shed / block), queue-deadline expiry, and
//     depth-triggered brownout all engage against a stalled scorer.
//   * kDelay  — the dispatcher forms the batch, then sleeps before
//     scoring it. Models a slow scorer: per-batch latency rises, which
//     exercises mid-batch deadline expiry and the latency-triggered
//     brownout watermark.
//   * kFail   — the batch is formed and every request in it fails with
//     an injected scoring error (wrapped with the same snapshot-seq /
//     lane context a real scoring error gets). Exercises the
//     error-propagation contract without needing a model that throws.
//
// Determinism contract: the dispatcher calls `OnTick` with a monotone
// 0-based tick counter (one tick per decision point — a stalled tick
// forms no batch but still consumed a tick). `ScheduledFaultInjector`
// resolves actions purely from (tick, rules, seed) — no wall-clock
// reads, no global RNG — so a test's fault sequence is a pure function
// of its schedule and replays identically under TSan, ASan, or load.
#ifndef BSLREC_SERVE_FAULT_INJECTOR_H_
#define BSLREC_SERVE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace bslrec::serve {

// What the dispatcher should do at one decision point.
struct FaultAction {
  enum class Kind : uint8_t {
    kNone = 0,  // proceed normally
    kStall,     // sleep micros before forming a batch (queue grows)
    kDelay,     // form the batch, sleep micros, then score it
    kFail,      // form the batch and fail it with an injected error
  };
  Kind kind = Kind::kNone;
  uint32_t micros = 0;  // sleep duration for kStall / kDelay
};

// Dispatcher-side seam. Implementations must be cheap and must not
// block: the dispatcher performs any requested sleep itself, outside
// the queue lock. Called only from the dispatcher thread.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;
  // `tick` is the 0-based dispatcher decision counter (monotone; one
  // per wakeup with a non-empty queue, whether or not a batch forms).
  virtual FaultAction OnTick(uint64_t tick) = 0;
};

// One deterministic fault rule: fire `count` times at ticks
// `first, first + period, first + 2*period, ...`.
struct FaultRule {
  FaultAction::Kind kind = FaultAction::Kind::kNone;
  uint64_t first = 0;    // first tick the rule fires on
  uint64_t period = 1;   // tick spacing between firings (>= 1)
  uint64_t count = 1;    // total firings (0 = unlimited)
  uint32_t micros = 0;   // sleep duration for kStall / kDelay
};

// Pure-function schedule over the tick counter. When several rules
// match one tick the earliest rule in the list wins — keep schedules
// disjoint if that matters. `seed` optionally jitters each rule's
// phase deterministically (SplitMix64 of (seed, rule index) modulo the
// rule's period) so stress tests can vary the interleaving between
// seeds while any single seed replays exactly.
class ScheduledFaultInjector : public FaultInjector {
 public:
  explicit ScheduledFaultInjector(std::vector<FaultRule> rules,
                                  uint64_t seed = 0);

  FaultAction OnTick(uint64_t tick) override;

  // Total actions handed out so far, by kind (kNone excluded).
  // Safe to read from any thread (the counters are atomic).
  uint64_t fired(FaultAction::Kind kind) const;

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t fired = 0;  // dispatcher-only
  };
  std::vector<RuleState> rules_;
  std::atomic<uint64_t> fired_by_kind_[4] = {};
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_FAULT_INJECTOR_H_
