// IVF (inverted-file) coarse index over a snapshot's item table.
//
// Built once at snapshot freeze time (opt-in via `SnapshotOptions::ivf`,
// see model_snapshot.h): a deterministic seeded spherical k-means over
// the L2-normalized item rows produces `nlist` unit centroids, and every
// item is assigned to its best centroid under (dot score descending,
// centroid id ascending). The index stores:
//
//   * the centroids as one contiguous nlist x dim block (so a query
//     scores all of them with one fused vec::DotBatch), and
//   * CSR postings: `ListOffset(l)..ListOffset(l+1)` index into a
//     catalog-length array of item ids, ascending within each list, and
//   * *grouped* copies of the item representations in posting order —
//     always the fp32 rows (bitwise equal to the snapshot's ItemVec
//     rows, so the exact re-rank reads only the index), plus the int8
//     codes/scales and/or fp16 codes when the snapshot carries those
//     tables — so visiting a list is a contiguous fused scan, never a
//     gather.
//
// Determinism: the k-means is a fixed-iteration Lloyd loop with a
// serial seeded init (math/rng.h), parallelized per the PR 1 contract
// (runtime/thread_pool.h) — assignments are computed into per-item
// slots over fixed-grain shards, postings are rebuilt by a serial
// counting sort in ascending item order, and each centroid re-sums its
// members serially in that fixed order into its own slot. Every step is
// therefore bit-identical for any worker count, and the whole index is
// a pure function of (item table, options). Query-time determinism —
// same index => same probed lists => same candidates => same total
// order — is argued in topk_scorer.h, where the query path lives.
//
// Quality: an IVF probe is approximate — items whose list is not probed
// are invisible to the query — so, unlike the certified int8 scan, ANN
// results may diverge from the exact ranking. bench_serve measures the
// divergence as recall@k-vs-exact across an (nlist, nprobe) sweep.
#ifndef BSLREC_SERVE_IVF_INDEX_H_
#define BSLREC_SERVE_IVF_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/matrix.h"
#include "runtime/thread_pool.h"

namespace bslrec::serve {

struct IvfBuildOptions {
  // Master switch (SnapshotOptions::ivf.build): off by default, so
  // plain snapshots pay nothing.
  bool build = false;
  // Coarse list count; 0 = ceil(sqrt(num_items)), always clamped to
  // [1, num_items].
  uint32_t nlist = 0;
  // Fixed Lloyd iteration count (never early-exits: the build cost and
  // the result depend only on the inputs).
  uint32_t iters = 5;
  // Seed of the serial centroid init (distinct item rows) and of the
  // training subsample; same seed + same table => same index, bitwise.
  uint64_t seed = 0x5eed1fULL;
  // k-means trains on at most nlist * sample_per_list deterministically
  // sampled rows (the whole table when it is smaller); the final
  // assignment always covers every item.
  uint32_t sample_per_list = 128;
};

class IvfIndex {
 public:
  // Builds the index over `items` (L2-normalized rows — the snapshot's
  // item table). `codes`/`scales` point at the snapshot's int8 table
  // (row-major codes, per-row scale) or are null; `f16` likewise for
  // the fp16 table. Grouped copies are built for whichever tables are
  // present. `pool` is only used during construction.
  IvfIndex(const Matrix& items, const int8_t* codes, const float* scales,
           const uint16_t* f16, runtime::ThreadPool& pool,
           const IvfBuildOptions& options);

  uint32_t nlist() const { return nlist_; }
  size_t dim() const { return dim_; }
  uint32_t num_items() const { return num_items_; }

  // Contiguous nlist x dim unit centroid block.
  const float* Centroids() const { return centroids_.data(); }

  // CSR postings: items of list l occupy grouped positions
  // [ListOffset(l), ListOffset(l+1)), ids ascending within the list.
  uint32_t ListOffset(uint32_t l) const { return list_offsets_[l]; }
  // Item id at grouped position p (p in [0, num_items)).
  uint32_t ItemIdAt(uint32_t p) const { return list_items_[p]; }
  const uint32_t* ItemIds(uint32_t p) const { return list_items_.data() + p; }

  // Grouped fp32 row at position p — bitwise equal to the snapshot's
  // ItemVec(ItemIdAt(p)), so exact re-ranking stays inside the index.
  const float* Row(uint32_t p) const {
    return grouped_f32_.data() + static_cast<size_t>(p) * dim_;
  }

  bool has_codes() const { return !grouped_scale_.empty(); }
  const int8_t* Codes(uint32_t p) const {
    return grouped_codes_.data() + static_cast<size_t>(p) * dim_;
  }
  float Scale(uint32_t p) const { return grouped_scale_[p]; }

  bool has_f16() const { return !grouped_f16_.empty(); }
  const uint16_t* F16(uint32_t p) const {
    return grouped_f16_.data() + static_cast<size_t>(p) * dim_;
  }

 private:
  uint32_t nlist_ = 0;
  uint32_t num_items_ = 0;
  size_t dim_ = 0;
  std::vector<float> centroids_;       // nlist x dim, unit rows
  std::vector<uint32_t> list_offsets_; // nlist + 1
  std::vector<uint32_t> list_items_;   // num_items, grouped by list
  std::vector<float> grouped_f32_;     // num_items x dim, posting order
  std::vector<int8_t> grouped_codes_;  // iff codes given
  std::vector<float> grouped_scale_;   // iff codes given
  std::vector<uint16_t> grouped_f16_;  // iff f16 given
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_IVF_INDEX_H_
