// Sharded full-catalog top-k scoring.
//
// The scoring core behind both the inference service and the offline
// evaluator: cosine-score every catalog item of a `ModelSnapshot`
// against a unit query vector and select the k best under the strict
// total order (score descending, item id ascending), optionally
// skipping an excluded (already seen) item set.
//
// `CatalogScorer` parallelizes one or many queries over a
// `runtime::ThreadPool` by splitting the catalog into *fixed-grain item
// shards*: each (query, shard) pair scores only `items_per_shard`
// items into a per-worker buffer and emits its local top-k into a
// per-shard output slot; the shards of a query are then reduced
// serially in shard order. Shard boundaries depend only on the catalog
// size and the grain — never on the worker count — so results are
// bit-identical for any `num_threads` (the PR 1 determinism contract,
// see runtime/thread_pool.h), and a worker never needs a score buffer
// larger than one shard, so catalogs bigger than any single buffer
// still serve fine.
//
// Because (score, id) is a strict total order over the catalog, the
// global top-k is unique and has the *prefix property*: the top-k list
// is exactly the first k entries of any top-k' list with k' >= k. The
// inference service's cutoff-prefix reuse and the evaluator's cached
// rankings both lean on this.
#ifndef BSLREC_SERVE_TOPK_SCORER_H_
#define BSLREC_SERVE_TOPK_SCORER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/thread_pool.h"
#include "serve/model_snapshot.h"

namespace bslrec::serve {

// One catalog item with its cosine score for some query.
struct ScoredItem {
  uint32_t item;
  float score;
};

// Strict total order used everywhere: higher score first, ties broken
// by ascending item id (deterministic).
inline bool ScoredBefore(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

// Serial scoring kernel: out[i - lo] = cos(q_hat, item i) for every
// item in [lo, hi). `q_hat` must be unit-norm with snapshot dim.
void ScoreItemRange(const ModelSnapshot& snapshot, const float* q_hat,
                    uint32_t lo, uint32_t hi, float* out);

// Selects the top-k of a scored block: `scores[i - lo]` is item i's
// score for i in [lo, hi). Ids listed in `exclude` (sorted ascending;
// entries outside the block are ignored) are skipped. Returns at most
// k items ordered by ScoredBefore.
std::vector<ScoredItem> SelectTopK(const float* scores, uint32_t lo,
                                   uint32_t hi, uint32_t k,
                                   std::span<const uint32_t> exclude);

// As SelectTopK, but builds candidates in caller-owned scratch
// (cleared on entry, capacity reused) so hot loops avoid a
// block-sized allocation per call; only the k returned entries are
// freshly allocated.
std::vector<ScoredItem> SelectTopKWithScratch(
    const float* scores, uint32_t lo, uint32_t hi, uint32_t k,
    std::span<const uint32_t> exclude, std::vector<ScoredItem>& scratch);

// Serial reduction of per-shard top-k candidate lists into the global
// top-k. The result is the unique ScoredBefore-minimal k-set, so it is
// independent of how candidates were partitioned into shards.
std::vector<ScoredItem> MergeTopK(
    std::span<const std::vector<ScoredItem>> shard_tops, uint32_t k);

// One full-catalog top-k query against a snapshot.
struct ScoreQuery {
  const float* q_hat;  // unit query vector, snapshot dim
  uint32_t k;
  std::span<const uint32_t> exclude;  // sorted ascending ids to skip
};

class CatalogScorer {
 public:
  // Items per scoring shard; the per-worker score buffer is this big.
  static constexpr uint32_t kDefaultItemsPerShard = 2048;

  // `snapshot` and `pool` must outlive the scorer. The pool is driven
  // from the calling thread — one TopK/BatchTopK at a time.
  CatalogScorer(const ModelSnapshot& snapshot, runtime::ThreadPool& pool,
                uint32_t items_per_shard = kDefaultItemsPerShard);

  // Full-catalog top-k for one query.
  std::vector<ScoredItem> TopK(const ScoreQuery& query) const;

  // Batched queries: parallelizes over the flat (query x item-shard)
  // task grid, so a single large query and many small ones saturate
  // the pool equally well. Result i answers queries[i].
  std::vector<std::vector<ScoredItem>> BatchTopK(
      std::span<const ScoreQuery> queries) const;

 private:
  const ModelSnapshot& snapshot_;
  runtime::ThreadPool& pool_;
  uint32_t items_per_shard_;
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_TOPK_SCORER_H_
