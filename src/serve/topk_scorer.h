// Sharded full-catalog top-k scoring.
//
// The scoring core behind both the inference service and the offline
// evaluator: cosine-score every catalog item of a `ModelSnapshot`
// against a unit query vector and select the k best under the strict
// total order (score descending, item id ascending), optionally
// skipping an excluded (already seen) item set.
//
// `CatalogScorer` parallelizes one or many queries over a
// `runtime::ThreadPool` by splitting the catalog into *fixed-grain item
// shards*: each (query, shard) pair scores only `items_per_shard`
// items into a per-worker buffer and emits its local top-k into a
// per-shard output slot; the shards of a query are then reduced
// serially in shard order. Shard boundaries depend only on the catalog
// size and the grain — never on the worker count — so results are
// bit-identical for any `num_threads` (the PR 1 determinism contract,
// see runtime/thread_pool.h), and a worker never needs a score buffer
// larger than one shard, so catalogs bigger than any single buffer
// still serve fine.
//
// Because (score, id) is a strict total order over the catalog, the
// global top-k is unique and has the *prefix property*: the top-k list
// is exactly the first k entries of any top-k' list with k' >= k. The
// inference service's cutoff-prefix reuse and the evaluator's cached
// rankings both lean on this.
//
// ---- Quantized two-phase scan (ScorerOptions::quantize) ----
//
// With a quantized snapshot, each (query, shard) task replaces the fp32
// scan with a certified two-phase pass:
//
//   Phase 1  scans the shard's int8 item codes with vec::DotBatchI8 and
//            dequantizes each integer dot into an approximate score
//            s~_i = idot * (q_scale * item_scale_i)  (~4x less memory
//            traffic than the fp32 scan), then picks the top
//            c = k + candidate_margin eligible items by approximate
//            score.
//   Phase 2  re-scores exactly those c candidates with the *same* fp32
//            vec::Dot the exact scorer uses, and takes their top-k.
//
// Certification argument (why the result is bit-identical, not merely
// close): symmetric quantization bounds each true score by
//   |s_i - s~_i| <= 0.5*(item_scale_i*||q^||_1
//                        + q_scale*item_scale_i*||codes_i||_1)
// (each factor is one round-to-nearest of at most half a quantization
// step, weighted by the other vector's magnitude). The scan tracks the
// shard-wide maximum B of this bound over eligible items. Every
// unselected item has approximate score <= the c-th candidate's, so its
// true score is < cutoff~ + B (inflated by a small factor to absorb
// fp rounding in the bound arithmetic itself). If cutoff~ + B is
// strictly below the k-th candidate's *exact* score, no unselected item
// can enter the top-k, and the candidates' exact top-k IS the shard's
// exact top-k — same fp32 score values, same (score desc, id asc)
// order, bitwise. When the margin cannot certify the boundary (near-tie
// score distributions), the task falls back to the full fp32 shard
// scan, which is exact by definition. Both paths emit the identical
// shard top-k, so the fallback rate — and therefore the quantized mode
// itself — can never change a served ranking, only its latency. All
// existing contracts (any thread count, any shard grain, batch ==
// single, evaluator == service) carry over unchanged.
//
// ---- fp16 two-phase scan (ScorerOptions::fp16) ----
//
// With an fp16 snapshot table, each (query, shard) task scans the
// shard's IEEE-half codes with vec::DotBatchF16 (half the fp32 memory
// traffic), keeps the top c = k + candidate_margin eligible items by
// fp16 score, and exact fp32 re-ranks just those. Unlike the quantized
// scan there is NO certification and NO fallback — this is the
// certification-free intermediate the ROADMAP names: every *returned*
// score is still the exact fp32 cosine (phase 2), but an item whose
// fp16 score fell below the margin cutoff can be missed, so results may
// diverge from the exact ranking (bench_serve reports the divergence as
// recall@k). Determinism still holds: fp16 scores are bit-identical on
// every SIMD tier (vec.h contract) and selection uses the same strict
// total order, so responses are bit-identical across thread counts and
// batch packings at a fixed shard grain. (Changing items_per_shard
// changes which candidates clear the per-shard margin — grain is part
// of the approximation's shape, like nprobe for ANN.)
//
// ---- IVF approximate retrieval (ScorerOptions::exact = false) ----
//
// With a snapshot built with SnapshotOptions::ivf, BatchTopK routes
// each query through the snapshot's IvfIndex (ivf_index.h) instead of
// the sharded full scan:
//
//   1. score all nlist centroids with one fused vec::DotBatch;
//   2. visit the top-nprobe lists under (score desc, centroid id asc);
//   3. scan each list's grouped rows contiguously — fp32 by default,
//      int8 codes (vec::DotBatchI8) under ScorerOptions::quantize, or
//      fp16 codes (vec::DotBatchF16) under ScorerOptions::fp16, in
//      which case the top k + candidate_margin of the gathered pool by
//      approximate score are kept;
//   4. exact fp32 re-rank the surviving candidates and emit the top-k
//      under the same (score desc, item id asc) total order.
//
// Items outside the probed lists are invisible, so ANN responses may
// diverge from the exact ranking — recall@k-vs-exact is the quality
// metric (bench_serve sweeps (nlist, nprobe)). Determinism, however,
// stays absolute: the index is frozen at snapshot time, each query's
// probe/scan/re-rank runs serially into its own output slot, and the
// pool only parallelizes *across* queries — so ANN responses are
// bit-identical across thread counts, shard grains (items_per_shard is
// not used at all), and batch packings: same index => same lists =>
// same candidates => same total order. With nprobe >= nlist and fp32
// phase-1, every item is visible and the response equals the exact
// scan's bitwise.
#ifndef BSLREC_SERVE_TOPK_SCORER_H_
#define BSLREC_SERVE_TOPK_SCORER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/thread_pool.h"
#include "serve/model_snapshot.h"

namespace bslrec::serve {

// One catalog item with its cosine score for some query.
struct ScoredItem {
  uint32_t item;
  float score;
};

// Strict total order used everywhere: higher score first, ties broken
// by ascending item id (deterministic).
inline bool ScoredBefore(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

// Serial scoring kernel: out[i - lo] = cos(q_hat, item i) for every
// item in [lo, hi). `q_hat` must be unit-norm with snapshot dim.
void ScoreItemRange(const ModelSnapshot& snapshot, const float* q_hat,
                    uint32_t lo, uint32_t hi, float* out);

// Selects the top-k of a scored block: `scores[i - lo]` is item i's
// score for i in [lo, hi). Ids listed in `exclude` (sorted ascending;
// entries outside the block are ignored) are skipped. Returns at most
// k items ordered by ScoredBefore.
std::vector<ScoredItem> SelectTopK(const float* scores, uint32_t lo,
                                   uint32_t hi, uint32_t k,
                                   std::span<const uint32_t> exclude);

// As SelectTopK, but builds candidates in caller-owned scratch
// (cleared on entry, capacity reused) so hot loops avoid a
// block-sized allocation per call; only the k returned entries are
// freshly allocated.
std::vector<ScoredItem> SelectTopKWithScratch(
    const float* scores, uint32_t lo, uint32_t hi, uint32_t k,
    std::span<const uint32_t> exclude, std::vector<ScoredItem>& scratch);

// Fully allocation-free form: the result lands in `out` (cleared on
// entry, capacity reused) instead of a fresh vector.
void SelectTopKInto(const float* scores, uint32_t lo, uint32_t hi, uint32_t k,
                    std::span<const uint32_t> exclude,
                    std::vector<ScoredItem>& scratch,
                    std::vector<ScoredItem>& out);

// Serial reduction of per-shard top-k candidate lists into the global
// top-k. The result is the unique ScoredBefore-minimal k-set, so it is
// independent of how candidates were partitioned into shards.
std::vector<ScoredItem> MergeTopK(
    std::span<const std::vector<ScoredItem>> shard_tops, uint32_t k);

// One full-catalog top-k query against a snapshot.
struct ScoreQuery {
  const float* q_hat;  // unit query vector, snapshot dim
  uint32_t k;
  std::span<const uint32_t> exclude;  // sorted ascending ids to skip
};

// Extra phase-1 candidates per shard beyond k. Larger margins certify
// more shards (fewer exact fallbacks) at the cost of more phase-2 fp32
// re-scores; the result never changes either way.
inline constexpr uint32_t kDefaultCandidateMargin = 64;

// Default coarse lists visited per ANN query.
inline constexpr uint32_t kDefaultNprobe = 8;

struct ScorerOptions {
  // Catalog items per scoring shard (per-worker buffer size).
  uint32_t items_per_shard = 2048;
  // Use the snapshot's int8 table for phase 1 (the snapshot must have
  // been built with SnapshotOptions::quantize_items). Mutually
  // exclusive with fp16.
  bool quantize = false;
  uint32_t candidate_margin = kDefaultCandidateMargin;
  // Use the snapshot's fp16 table for phase 1 (the snapshot must have
  // been built with SnapshotOptions::fp16_items). Certification-free:
  // returned scores are exact fp32, but near-margin items can be
  // missed (see the header note).
  bool fp16 = false;
  // false = ANN: retrieve through the snapshot's IVF index (the
  // snapshot must have been built with SnapshotOptions::ivf.build)
  // instead of scanning the full catalog. Composes with quantize/fp16,
  // which then pick the list-scan representation.
  bool exact = true;
  // Coarse lists visited per ANN query (clamped to [1, nlist]);
  // ignored when exact.
  uint32_t nprobe = kDefaultNprobe;
};

// Reusable per-worker buffers for one shard-scan task stream; also
// accumulates the owner's scan statistics. All buffers keep their
// capacity across calls, so steady-state scanning allocates nothing.
struct ShardScratch {
  std::vector<float> scores;       // fp32 scores (shard / centroid / list)
  std::vector<int32_t> idot;       // one integer dot per shard item
  std::vector<ScoredItem> approx;  // eligible items by approximate score
  std::vector<ScoredItem> cand;    // SelectTopK candidate scratch
  std::vector<ScoredItem> merge;   // serial whole-catalog accumulation
  std::vector<ScoredItem> shard_out;
  std::vector<ScoredItem> probes;  // top-nprobe centroids (ivf)
  std::vector<int8_t> q_codes;     // serial-path query quantization
  // Per-mode counters (summed into CatalogScorer::Stats):
  uint64_t exact_shards = 0;       // exact fp32 shard tasks executed
  uint64_t shards_scanned = 0;     // quantized shard tasks executed
  uint64_t shards_fallback = 0;    // ... that failed certification
  uint64_t fp16_shards = 0;        // fp16 two-phase shard tasks executed
  uint64_t ivf_queries = 0;        // ANN queries answered
  uint64_t ivf_lists = 0;          // coarse lists probed (incl. empty)
  uint64_t ivf_candidates = 0;     // eligible candidates gathered
  uint64_t ivf_reranked = 0;       // candidates exact fp32 re-ranked
};

// A query prepared for the quantized scan: the fp32 unit vector plus
// its int8 codes, quantization scale, and fp32 L1 norm.
struct QuantizedQuery {
  const float* q_hat;
  const int8_t* codes;
  float scale;
  double l1;
};

// One certified (query, shard) task: writes the *exact* top-k of items
// [lo, hi) under ScoredBefore into `out` — bit-identical to
// ScoreItemRange + SelectTopK over the same range — using the two-phase
// quantized scan described in the header note.
void QuantizedShardTopK(const ModelSnapshot& snapshot,
                        const QuantizedQuery& query, uint32_t lo, uint32_t hi,
                        uint32_t k, uint32_t candidate_margin,
                        std::span<const uint32_t> exclude, ShardScratch& ws,
                        std::vector<ScoredItem>& out);

// Serial whole-catalog form (quantizes the query itself): the exact
// top-k over every item, bit-identical to an exact full scan. This is
// the evaluator's per-user kernel — its user loop is already parallel,
// so each user's catalog scan stays on one worker.
std::vector<ScoredItem> QuantizedCatalogTopK(const ModelSnapshot& snapshot,
                                             const float* q_hat, uint32_t k,
                                             std::span<const uint32_t> exclude,
                                             const ScorerOptions& options,
                                             ShardScratch& ws);

// One fp16 (query, shard) task: phase-1 vec::DotBatchF16 over the
// snapshot's fp16 codes of items [lo, hi), top k + candidate_margin
// eligible by fp16 score, exact fp32 re-rank of those. Returned scores
// are exact; the candidate *set* is approximate (no certification — see
// the header note). Deterministic for a fixed range.
void F16ShardTopK(const ModelSnapshot& snapshot, const float* q_hat,
                  uint32_t lo, uint32_t hi, uint32_t k,
                  uint32_t candidate_margin, std::span<const uint32_t> exclude,
                  ShardScratch& ws, std::vector<ScoredItem>& out);

// Serial whole-catalog fp16 form (the evaluator's per-user kernel for
// ScorerOptions::fp16); shard layout follows options.items_per_shard.
std::vector<ScoredItem> F16CatalogTopK(const ModelSnapshot& snapshot,
                                       const float* q_hat, uint32_t k,
                                       std::span<const uint32_t> exclude,
                                       const ScorerOptions& options,
                                       ShardScratch& ws);

// One serial ANN query through the snapshot's IVF index (the snapshot
// must have been built with SnapshotOptions::ivf.build): probes the
// top-nprobe lists, scans them with the representation options selects
// (fp32 / int8 / fp16), exact fp32 re-ranks the candidates, and writes
// the top-k into `out`. This is both the per-query kernel of the
// parallel ANN BatchTopK and the evaluator's approximate per-user path.
void IvfTopKInto(const ModelSnapshot& snapshot, const float* q_hat,
                 uint32_t k, std::span<const uint32_t> exclude,
                 const ScorerOptions& options, ShardScratch& ws,
                 std::vector<ScoredItem>& out);

// Convenience wrapper returning a fresh vector.
std::vector<ScoredItem> IvfCatalogTopK(const ModelSnapshot& snapshot,
                                       const float* q_hat, uint32_t k,
                                       std::span<const uint32_t> exclude,
                                       const ScorerOptions& options,
                                       ShardScratch& ws);

class CatalogScorer {
 public:
  // Items per scoring shard; the per-worker score buffer is this big.
  static constexpr uint32_t kDefaultItemsPerShard = 2048;

  // Per-mode scan counters, cumulative since construction (or the last
  // ResetStats). Each scoring mode ticks only its own counters, so a
  // scorer's stats identify the path it actually ran.
  struct Stats {
    uint64_t exact_shards = 0;     // exact fp32 shard tasks
    uint64_t shards_scanned = 0;   // quantized shard tasks
    uint64_t shards_fallback = 0;  // ... that failed certification
    uint64_t fp16_shards = 0;      // fp16 two-phase shard tasks
    uint64_t ivf_queries = 0;      // ANN queries answered
    uint64_t ivf_lists = 0;        // coarse lists probed (incl. empty)
    uint64_t ivf_candidates = 0;   // eligible list candidates gathered
    // Phase-2 exact re-scores of ANN candidates. Zero in fp32 ANN mode,
    // where the list scan itself already produced exact scores.
    uint64_t ivf_reranked = 0;
  };

  // `snapshot` and `pool` must outlive the scorer. The pool is driven
  // from the calling thread — one TopK/BatchTopK at a time (they are
  // const but share mutable per-worker scratch).
  CatalogScorer(const ModelSnapshot& snapshot, runtime::ThreadPool& pool,
                uint32_t items_per_shard = kDefaultItemsPerShard);
  CatalogScorer(const ModelSnapshot& snapshot, runtime::ThreadPool& pool,
                const ScorerOptions& options);

  const ScorerOptions& options() const { return options_; }
  // Sums the per-worker counters. Reset semantics: counters accumulate
  // across calls until ResetStats() zeroes them; both must be called
  // from the scorer's single driving thread *between* scoring calls
  // (they read/write the same per-worker scratch the scans use).
  Stats stats() const;
  // const like the scoring calls: it touches only the mutable
  // per-worker scratch, under the same one-driver contract.
  void ResetStats() const;

  // Full-catalog top-k for one query.
  std::vector<ScoredItem> TopK(const ScoreQuery& query) const;

  // Batched queries: parallelizes over the flat (query x item-shard)
  // task grid, so a single large query and many small ones saturate
  // the pool equally well. Result i answers queries[i].
  std::vector<std::vector<ScoredItem>> BatchTopK(
      std::span<const ScoreQuery> queries) const;

 private:
  const ModelSnapshot& snapshot_;
  runtime::ThreadPool& pool_;
  ScorerOptions options_;
  // Per-worker buffers and per-call structures, hoisted out of
  // BatchTopK so steady-state scanning performs no allocation (slots
  // and scratch keep their capacity across calls). Mutable because
  // scoring is logically const; guarded by the one-call-at-a-time
  // contract above.
  mutable std::vector<ShardScratch> scratch_;        // one per worker
  mutable std::vector<std::vector<ScoredItem>> shard_tops_;
  mutable std::vector<int8_t> q_codes_;              // per-call queries
  mutable std::vector<float> q_scale_;
  mutable std::vector<double> q_l1_;
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_TOPK_SCORER_H_
