// Snapshot-bound batched ranking core.
//
// `RankingEngine` is the request-to-ranking machinery shared by every
// serving entry point: it binds one immutable `ModelSnapshot` to a
// `CatalogScorer` plus a per-user cached-ranking table and answers
// single or batched `TopKRequest`s. The two front ends layer ownership
// and threading policy on top:
//
//   * `InferenceService` (inference_service.h) — synchronous: owns a
//     pool + snapshot + one engine, driven by one calling thread.
//   * `ServingFrontEnd` (serving_frontend.h) — concurrent: many
//     producers feed a queue; a dispatcher thread owns the pool and
//     drives one engine *per published snapshot* (the cache is part of
//     the engine, so cached rankings can never mix snapshots).
//
// Request semantics
//   * `filter_seen` (default on) masks the user's training positives —
//     a recommendation list must never contain already-consumed items.
//     `extra_seen` masks additional per-request ids (sorted ascending),
//     e.g. items the user saw since the snapshot was taken.
//   * Responses are ordered by (score descending, item id ascending),
//     a strict total order, so every answer is unique and
//     bit-identical for any worker count and any batch packing:
//     HandleBatch(reqs)[i] == Handle(reqs[i]), always.
//
// Cutoff prefix reuse
//   * Default-filtered requests with k <= `ServeConfig::max_k` are
//     served from a per-user cached top-max_k ranking (computed on
//     first touch); smaller cutoffs are prefixes of it (the total
//     order gives rankings the prefix property). Custom-filtered or
//     deeper requests bypass the cache and are scored directly.
//
// Threading: `Handle`/`HandleBatch` drive the engine's pool from the
// calling thread and mutate the cache — one call at a time, from
// whichever single thread owns the engine (the pool's own one-driver
// contract, see runtime/thread_pool.h).
#ifndef BSLREC_SERVE_RANKING_ENGINE_H_
#define BSLREC_SERVE_RANKING_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "runtime/thread_pool.h"
#include "serve/model_snapshot.h"
#include "serve/topk_scorer.h"

namespace bslrec::serve {

struct ServeConfig {
  // Depth of the per-user cached ranking; requests with k <= max_k and
  // default filtering share one cached computation per user.
  uint32_t max_k = 100;
  // Catalog items per scoring shard (per-worker buffer size).
  uint32_t items_per_shard = CatalogScorer::kDefaultItemsPerShard;
  // Disable to score every request from scratch (benchmarks).
  bool cache_rankings = true;
  // Build an int8 item table at snapshot time and serve through the
  // certified two-phase quantized scan (see topk_scorer.h). Responses
  // are bit-identical to the exact scorer; only latency changes.
  bool quantize = false;
  // Extra phase-1 candidates per shard beyond each request's k.
  uint32_t candidate_margin = kDefaultCandidateMargin;
  // Build an fp16 item table at snapshot time and serve through the
  // certification-free fp16 two-phase scan (mutually exclusive with
  // quantize). Candidate sets are approximate; returned scores exact.
  bool fp16 = false;
  // With exact = false, serve through the snapshot's IVF index (built
  // automatically): probe the top-nprobe coarse lists and exact fp32
  // re-rank the gathered candidates. See topk_scorer.h.
  bool exact = true;
  uint32_t nprobe = kDefaultNprobe;
  // Index shape for ANN serving (ivf.build is forced on when !exact;
  // set it directly to build the index without serving through it).
  IvfBuildOptions ivf;
  runtime::RuntimeConfig runtime;
};

// The snapshot/scorer option sets a ServeConfig implies — shared by
// every serving entry point (InferenceService, ServingFrontEnd, tools,
// benches) so they all freeze and score identically.
SnapshotOptions SnapshotOptionsFor(const ServeConfig& config);
ScorerOptions ScorerOptionsFor(const ServeConfig& config);

// Admission-control priority lane (serving_frontend.h). Interactive
// traffic is drained ahead of bulk under the front door's weighted-fair
// policy; the direct engine paths ignore the lane entirely.
enum class RequestLane : uint8_t { kInteractive = 0, kBulk = 1 };
inline constexpr size_t kNumLanes = 2;
inline const char* LaneName(RequestLane lane) {
  return lane == RequestLane::kBulk ? "bulk" : "interactive";
}

struct TopKRequest {
  uint32_t user = 0;
  uint32_t k = 10;
  bool filter_seen = true;               // mask the user's train positives
  std::span<const uint32_t> extra_seen;  // sorted extra ids to mask
  // ---- front-door admission fields (serving_frontend.h) ----
  // Ignored by RankingEngine / InferenceService, which score
  // unconditionally: deadlines and lanes are queueing policy, and only
  // the queue (ServingFrontEnd) enforces them.
  // Relative SLO in microseconds, measured from Submit time; 0 = use
  // FrontEndConfig::default_deadline_us (which may itself be 0 = none).
  // A request past its deadline fails with DeadlineExceededError
  // instead of being scored.
  uint32_t deadline_us = 0;
  RequestLane lane = RequestLane::kInteractive;
};

struct TopKResponse {
  std::vector<uint32_t> items;  // best first, at most k
  std::vector<float> scores;    // cosine scores, parallel to items
};

class RankingEngine {
 public:
  // Binds `snapshot` to a scorer + cache. `data` provides the
  // seen-item (train positive) lists; `data`, `snapshot`, and `pool`
  // must outlive the engine. Construction never drives `pool` — it is
  // safe while another thread is inside a Run (the front end publishes
  // fresh engines from the trainer thread mid-traffic).
  RankingEngine(const Dataset& data, const ModelSnapshot& snapshot,
                runtime::ThreadPool& pool, const ServeConfig& config);

  const ModelSnapshot& snapshot() const { return snapshot_; }
  const ServeConfig& config() const { return config_; }
  // Scan statistics (quantized mode: shards scanned / fallbacks).
  const CatalogScorer& scorer() const { return scorer_; }

  TopKResponse Handle(const TopKRequest& request);
  // Answers every request; responses[i] answers requests[i] and is
  // identical to Handle(requests[i]).
  std::vector<TopKResponse> HandleBatch(
      std::span<const TopKRequest> requests);

 private:
  const Dataset& data_;
  ServeConfig config_;
  const ModelSnapshot& snapshot_;
  CatalogScorer scorer_;
  std::vector<uint8_t> cache_valid_;            // per user
  std::vector<std::vector<ScoredItem>> cache_;  // per user, top-max_k
};

}  // namespace bslrec::serve

#endif  // BSLREC_SERVE_RANKING_ENGINE_H_
