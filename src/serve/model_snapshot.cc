#include "serve/model_snapshot.h"

#include "math/vec.h"

namespace bslrec::serve {

namespace {

// Rows per shard when normalizing a table. Rows are written
// independently, so any fixed grain is deterministic; 256 keeps shards
// coarse enough to amortize dispatch on large catalogs.
constexpr size_t kNormalizeGrain = 256;

void NormalizeRows(const Matrix& src, Matrix& dst,
                   runtime::ThreadPool& pool) {
  const size_t d = src.cols();
  runtime::ParallelFor(
      pool, 0, src.rows(), kNormalizeGrain,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t /*worker*/) {
        for (size_t r = lo; r < hi; ++r) {
          vec::Normalize(src.Row(r), dst.Row(r), d);
        }
      });
}

}  // namespace

ModelSnapshot::ModelSnapshot(const EmbeddingModel& model,
                             runtime::ThreadPool& pool,
                             SnapshotOptions options)
    : num_users_(model.num_users()),
      num_items_(model.num_items()),
      dim_(model.dim()),
      user_normed_(model.num_users(), model.dim()),
      item_normed_(model.num_items(), model.dim()) {
  NormalizeRows(model.FinalUserMatrix(), user_normed_, pool);
  NormalizeRows(model.FinalItemMatrix(), item_normed_, pool);

  if (options.quantize_items) {
    // Quantize the *normalized* item rows (the rows scoring reads).
    // Rows are independent, so the parallel fill is bit-identical for
    // any worker count, like the normalization above.
    item_codes_.resize(static_cast<size_t>(num_items_) * dim_);
    item_scale_.resize(num_items_);
    item_scale_l1_.resize(num_items_);
    runtime::ParallelFor(
        pool, 0, num_items_, kNormalizeGrain,
        [&](size_t lo, size_t hi, size_t /*shard*/, size_t /*worker*/) {
          for (size_t r = lo; r < hi; ++r) {
            int8_t* codes = item_codes_.data() + r * dim_;
            const float scale =
                vec::QuantizeRow(item_normed_.Row(r), dim_, codes);
            int32_t l1 = 0;
            for (size_t j = 0; j < dim_; ++j) {
              l1 += codes[j] < 0 ? -codes[j] : codes[j];
            }
            item_scale_[r] = scale;
            item_scale_l1_[r] = scale * static_cast<float>(l1);
          }
        });
  }

  if (options.fp16_items) {
    // fp16 copy of the normalized item rows (same independent-row
    // parallel fill).
    item_f16_.resize(static_cast<size_t>(num_items_) * dim_);
    runtime::ParallelFor(
        pool, 0, num_items_, kNormalizeGrain,
        [&](size_t lo, size_t hi, size_t /*shard*/, size_t /*worker*/) {
          for (size_t r = lo; r < hi; ++r) {
            vec::EncodeF16(item_normed_.Row(r), dim_,
                           item_f16_.data() + r * dim_);
          }
        });
  }

  if (options.ivf.build) {
    // The index groups copies of whichever tables exist, so int8 / fp16
    // phase-1 scans compose with ANN probing. Built last: it snapshots
    // the tables above.
    ivf_ = std::make_unique<const IvfIndex>(
        item_normed_, item_codes_.empty() ? nullptr : item_codes_.data(),
        item_scale_.empty() ? nullptr : item_scale_.data(),
        item_f16_.empty() ? nullptr : item_f16_.data(), pool, options.ivf);
  }
}

}  // namespace bslrec::serve
