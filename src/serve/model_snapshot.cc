#include "serve/model_snapshot.h"

#include "math/vec.h"

namespace bslrec::serve {

namespace {

// Rows per shard when normalizing a table. Rows are written
// independently, so any fixed grain is deterministic; 256 keeps shards
// coarse enough to amortize dispatch on large catalogs.
constexpr size_t kNormalizeGrain = 256;

void NormalizeRows(const Matrix& src, Matrix& dst,
                   runtime::ThreadPool& pool) {
  const size_t d = src.cols();
  runtime::ParallelFor(
      pool, 0, src.rows(), kNormalizeGrain,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t /*worker*/) {
        for (size_t r = lo; r < hi; ++r) {
          vec::Normalize(src.Row(r), dst.Row(r), d);
        }
      });
}

}  // namespace

ModelSnapshot::ModelSnapshot(const EmbeddingModel& model,
                             runtime::ThreadPool& pool)
    : num_users_(model.num_users()),
      num_items_(model.num_items()),
      dim_(model.dim()),
      user_normed_(model.num_users(), model.dim()),
      item_normed_(model.num_items(), model.dim()) {
  NormalizeRows(model.FinalUserMatrix(), user_normed_, pool);
  NormalizeRows(model.FinalItemMatrix(), item_normed_, pool);
}

}  // namespace bslrec::serve
