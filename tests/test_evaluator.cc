#include "eval/evaluator.h"

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "models/mf.h"
#include "test_util.h"

namespace bslrec {
namespace {

// Plants embeddings so each user's *test* item is its nearest neighbor
// (after the user's train items, which the evaluator must mask).
void PlantOracleEmbeddings(MfModel& model, const Dataset& data) {
  const size_t d = model.dim();
  auto params = model.Params();
  Matrix& users = *params[0].value;
  Matrix& items = *params[1].value;
  users.SetZero();
  items.SetZero();
  // Give each item a one-hot-ish unique direction.
  for (uint32_t i = 0; i < data.num_items(); ++i) {
    items.At(i, i % d) = 1.0f;
    items.At(i, (i + 1) % d) = 0.1f * static_cast<float>(i + 1);
  }
  // Point each user at its first test item's direction.
  for (uint32_t u = 0; u < data.num_users(); ++u) {
    const auto test = data.TestItems(u);
    if (test.empty()) continue;
    for (size_t k = 0; k < d; ++k) {
      users.At(u, k) = items.At(test[0], k);
    }
  }
}

TEST(Evaluator, OracleEmbeddingsScoreHighly) {
  const Dataset d = testing::TinyDataset();
  Rng rng(1);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  PlantOracleEmbeddings(model, d);
  model.Forward(rng);
  const Evaluator eval(d, 1);  // K = 1: the top item must be the test item
  const TopKMetrics m = eval.Evaluate(model);
  EXPECT_EQ(m.num_users, 4u);
  EXPECT_NEAR(m.recall, 1.0, 1e-9);
  EXPECT_NEAR(m.ndcg, 1.0, 1e-9);
  EXPECT_NEAR(m.hit_rate, 1.0, 1e-9);
}

TEST(Evaluator, MasksTrainItems) {
  const Dataset d = testing::TinyDataset();
  Rng rng(2);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const Evaluator eval(d, 20);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    const auto ranking = eval.TopKForUser(model, u);
    for (uint32_t item : ranking) {
      EXPECT_FALSE(d.IsTrainPositive(u, item))
          << "train item " << item << " recommended to user " << u;
    }
  }
}

TEST(Evaluator, TopKSizeRespectsCatalog) {
  const Dataset d = testing::TinyDataset();
  Rng rng(3);
  MfModel model(d.num_users(), d.num_items(), 4, rng);
  model.Forward(rng);
  const Evaluator eval(d, 100);  // K > catalog size
  const auto ranking = eval.TopKForUser(model, 0);
  // Full catalog minus the user's masked train positives.
  EXPECT_EQ(ranking.size(), d.num_items() - d.TrainItems(0).size());
  // No duplicates.
  auto sorted = ranking;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(Evaluator, MetricsAreBoundedInUnitInterval) {
  const Dataset d = testing::TinyDataset();
  Rng rng(4);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const Evaluator eval(d, 3);
  const TopKMetrics m = eval.Evaluate(model);
  EXPECT_GE(m.recall, 0.0);
  EXPECT_LE(m.recall, 1.0);
  EXPECT_GE(m.ndcg, 0.0);
  EXPECT_LE(m.ndcg, 1.0);
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 1.0);
}

TEST(Evaluator, RecallGrowsWithK) {
  const Dataset d = testing::TinyDataset();
  Rng rng(5);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const Evaluator eval(d, 20);
  const double r1 = eval.EvaluateAtK(model, 1).recall;
  const double r3 = eval.EvaluateAtK(model, 3).recall;
  const double r6 = eval.EvaluateAtK(model, 6).recall;
  EXPECT_LE(r1, r3 + 1e-12);
  EXPECT_LE(r3, r6 + 1e-12);
  // With K = catalog size every test item is retrieved.
  EXPECT_NEAR(r6, 1.0, 1e-9);
}

TEST(Evaluator, GroupNdcgSumsToOverallNdcg) {
  const Dataset d = testing::TinyDataset();
  Rng rng(6);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const Evaluator eval(d, 4);
  const auto groups = eval.GroupNdcg(model, 3);
  ASSERT_EQ(groups.size(), 3u);
  double total = 0.0;
  for (double g : groups) total += g;
  EXPECT_NEAR(total, eval.Evaluate(model).ndcg, 1e-9);
}

TEST(Evaluator, SkipsUsersWithoutTestItems) {
  std::vector<Edge> train = {{0, 0}, {1, 1}};
  std::vector<Edge> test = {{0, 1}};
  const Dataset d(2, 2, std::move(train), std::move(test));
  Rng rng(7);
  MfModel model(2, 2, 4, rng);
  model.Forward(rng);
  const Evaluator eval(d, 1);
  EXPECT_EQ(eval.Evaluate(model).num_users, 1u);
}

}  // namespace
}  // namespace bslrec
