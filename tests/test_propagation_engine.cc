// Locks the graph::PropagationEngine determinism contract
// (graph/propagation.h design notes): the sharded kernels are bit
// identical to the serial ones for any worker count, and every graph
// backbone's forward, backward, and training history are invariant to
// the thread budget.
#include "graph/propagation.h"

#include <cstring>
#include <memory>
#include <vector>

#include "core/losses.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "gtest/gtest.h"
#include "models/contrastive.h"
#include "models/lightgcn.h"
#include "models/ngcf.h"
#include "sampling/negative_sampler.h"
#include "test_util.h"
#include "train/trainer.h"

namespace bslrec {
namespace {

SparseMatrix RandomSparse(size_t rows, size_t cols, size_t nnz, Rng& rng) {
  std::vector<uint32_t> r, c;
  std::vector<float> v;
  for (size_t k = 0; k < nnz; ++k) {
    r.push_back(static_cast<uint32_t>(rng.NextIndex(rows)));
    c.push_back(static_cast<uint32_t>(rng.NextIndex(cols)));
    v.push_back(static_cast<float>(rng.NextGaussian()));
  }
  return SparseMatrix(rows, cols, r, c, v);
}

void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0);
}

TEST(SparseMatrixParallel, MultiplyMatchesSerialBitwise) {
  Rng rng(1);
  const SparseMatrix a = RandomSparse(300, 211, 2500, rng);
  Matrix x(211, 7);
  x.InitGaussian(rng, 1.0f);
  Matrix serial(300, 7);
  a.Multiply(x, serial);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    runtime::ThreadPool pool(threads);
    for (size_t grain : {size_t{17}, size_t{128}}) {
      Matrix out(300, 7);
      a.Multiply(x, out, pool, grain);
      ExpectBitIdentical(serial, out);
    }
  }
}

TEST(SparseMatrixParallel, TransposeMultiplyMatchesSerialBitwise) {
  Rng rng(2);
  const SparseMatrix a = RandomSparse(180, 260, 2000, rng);
  Matrix x(180, 5);
  x.InitGaussian(rng, 1.0f);
  Matrix serial(260, 5);
  a.TransposeMultiply(x, serial);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    runtime::ThreadPool pool(threads);
    Matrix out(260, 5);
    a.TransposeMultiply(x, out, pool, 31);
    ExpectBitIdentical(serial, out);
  }
}

TEST(SparseMatrixParallel, TransposeGatherMatchesDenseReference) {
  // The CSC gather must compute the same product as an explicit dense
  // transpose — protects the transpose-index construction.
  Rng rng(3);
  const SparseMatrix a = RandomSparse(40, 30, 300, rng);
  Matrix x(40, 3);
  x.InitGaussian(rng, 1.0f);
  Matrix out(30, 3);
  a.TransposeMultiply(x, out);
  // Dense reference in double precision.
  std::vector<double> dense(30 * 3, 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t k = a.row_offsets()[r]; k < a.row_offsets()[r + 1]; ++k) {
      const size_t c = a.col_indices()[k];
      for (size_t j = 0; j < 3; ++j) {
        dense[c * 3 + j] +=
            static_cast<double>(a.values()[k]) * x.At(r, j);
      }
    }
  }
  for (size_t k = 0; k < dense.size(); ++k) {
    EXPECT_NEAR(out.data()[k], dense[k], 1e-4) << "entry " << k;
  }
}

TEST(PropagationEngine, InlineMatchesPooledBitwise) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(4);
  Matrix base(g.num_nodes(), 6);
  base.InitGaussian(rng, 1.0f);
  graph::PropagationEngine inline_engine;  // no pool: serial shards
  Matrix ref(g.num_nodes(), 6);
  inline_engine.MeanPropagate(g.Adjacency(), base, 3, ref);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    runtime::ThreadPool pool(threads);
    graph::PropagationEngine engine(&pool);
    Matrix out(g.num_nodes(), 6);
    engine.MeanPropagate(g.Adjacency(), base, 3, out);
    ExpectBitIdentical(ref, out);
  }
}

TEST(PropagationEngine, MeanPropagateMatchesReferenceBitwise) {
  // Hand-rolled mean-of-powers with the serial SpMM must reproduce the
  // engine's fused kernel exactly.
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(5);
  const int kLayers = 3;
  Matrix base(g.num_nodes(), 4);
  base.InitGaussian(rng, 1.0f);
  Matrix ref = base;
  Matrix cur = base, next(g.num_nodes(), 4);
  for (int l = 1; l <= kLayers; ++l) {
    g.Adjacency().Multiply(cur, next);
    std::swap(cur, next);
    ref.AddScaled(cur, 1.0f);
  }
  const float inv = 1.0f / static_cast<float>(kLayers + 1);
  for (size_t k = 0; k < ref.size(); ++k) ref.data()[k] *= inv;

  graph::PropagationEngine engine;
  Matrix out(g.num_nodes(), 4);
  engine.MeanPropagate(g.Adjacency(), base, kLayers, out);
  ExpectBitIdentical(ref, out);
}

TEST(PropagationEngine, MeanPropagateAccumAddsOperatorResult) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(6);
  Matrix grad(g.num_nodes(), 3), accum(g.num_nodes(), 3);
  grad.InitGaussian(rng, 1.0f);
  accum.InitGaussian(rng, 1.0f);
  const Matrix before = accum;
  graph::PropagationEngine engine;
  Matrix op(g.num_nodes(), 3);
  engine.MeanPropagate(g.Adjacency(), grad, 2, op);
  engine.MeanPropagateAccum(g.Adjacency(), grad, 2, accum);
  for (size_t k = 0; k < accum.size(); ++k) {
    EXPECT_FLOAT_EQ(accum.data()[k], before.data()[k] + op.data()[k]);
  }
}

TEST(PropagationEngine, WorkspaceIsPersistentAcrossCalls) {
  graph::PropagationEngine engine;
  Matrix& a = engine.Workspace(0, 10, 4);
  a.At(3, 2) = 7.0f;
  const float* data = a.data();
  // Registering a later slot must not move earlier ones.
  engine.Workspace(5, 6, 6);
  Matrix& again = engine.Workspace(0, 10, 4);
  EXPECT_EQ(again.data(), data);           // same buffer: no reallocation
  EXPECT_FLOAT_EQ(again.At(3, 2), 7.0f);   // contents preserved
  Matrix& reshaped = engine.Workspace(0, 4, 4);
  EXPECT_FLOAT_EQ(reshaped.At(3, 2), 0.0f);  // reshaping zero-fills
}

TEST(PropagationEngine, DenseMatMulMatchesSerialBitwise) {
  Rng rng(7);
  Matrix a(97, 12), b(12, 12), bt(12, 12);
  a.InitGaussian(rng, 1.0f);
  b.InitGaussian(rng, 1.0f);
  bt.InitGaussian(rng, 1.0f);
  Matrix ref(97, 12);
  MatMul(a, b, ref);
  MatMulTAccum(a, bt, ref);
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    runtime::ThreadPool pool(threads);
    graph::PropagationEngine engine(&pool, /*row_grain=*/16);
    Matrix out(97, 12);
    engine.DenseMatMul(a, b, out, /*accumulate=*/false);
    engine.DenseMatMulTAccum(a, bt, out);
    ExpectBitIdentical(ref, out);
  }
}

// ---- backbone-level invariance -------------------------------------------

enum class Backbone { kLightGcn, kNgcf, kSgl, kSimGcl, kLightGcl };

const Backbone kAllBackbones[] = {Backbone::kLightGcn, Backbone::kNgcf,
                                  Backbone::kSgl, Backbone::kSimGcl,
                                  Backbone::kLightGcl};

const char* BackboneName(Backbone b) {
  switch (b) {
    case Backbone::kLightGcn:
      return "LightGCN";
    case Backbone::kNgcf:
      return "NGCF";
    case Backbone::kSgl:
      return "SGL";
    case Backbone::kSimGcl:
      return "SimGCL";
    case Backbone::kLightGcl:
      return "LightGCL";
  }
  return "?";
}

Dataset SmallDataset() {
  SyntheticConfig c;
  c.num_users = 30;
  c.num_items = 24;
  c.avg_items_per_user = 6.0;
  c.seed = 11;
  return GenerateSynthetic(c).dataset;
}

std::unique_ptr<EmbeddingModel> MakeBackbone(Backbone b,
                                             const BipartiteGraph& g,
                                             Rng& rng) {
  const size_t dim = 8;
  const int layers = 2;
  ContrastiveConfig cc;
  cc.num_layers = layers;
  cc.svd_rank = 4;
  switch (b) {
    case Backbone::kLightGcn:
      return std::make_unique<LightGcnModel>(g, dim, layers, rng);
    case Backbone::kNgcf:
      return std::make_unique<NgcfModel>(g, dim, layers, rng);
    case Backbone::kSgl:
      cc.kind = AugmentationKind::kEdgeDropout;
      return std::make_unique<ContrastiveModel>(g, dim, cc, rng);
    case Backbone::kSimGcl:
      cc.kind = AugmentationKind::kEmbeddingNoise;
      return std::make_unique<ContrastiveModel>(g, dim, cc, rng);
    case Backbone::kLightGcl:
      cc.kind = AugmentationKind::kSvdView;
      return std::make_unique<ContrastiveModel>(g, dim, cc, rng);
  }
  return nullptr;
}

// One forward + aux + backward pass at the given worker count; returns
// the concatenated final embeddings and parameter gradients.
std::vector<float> RunPass(Backbone b, const Dataset& data, size_t threads) {
  const BipartiteGraph g(data);
  Rng init_rng(21);
  std::unique_ptr<EmbeddingModel> model = MakeBackbone(b, g, init_rng);
  runtime::ThreadPool pool(threads);
  model->SetRuntime(&pool);

  Rng pass_rng(22);
  model->Forward(pass_rng);
  model->ZeroGrad();
  // Deterministic synthetic upstream gradients on the final embeddings.
  for (uint32_t u = 0; u < model->num_users(); ++u) {
    for (size_t k = 0; k < model->dim(); ++k) {
      model->UserGrad(u)[k] =
          0.01f * static_cast<float>((u * 31 + k) % 17) - 0.08f;
    }
  }
  for (uint32_t i = 0; i < model->num_items(); ++i) {
    for (size_t k = 0; k < model->dim(); ++k) {
      model->ItemGrad(i)[k] =
          0.01f * static_cast<float>((i * 13 + k) % 19) - 0.09f;
    }
  }
  const std::vector<uint32_t> users = {0, 1, 2, 3, 4, 5};
  const std::vector<uint32_t> items = {0, 1, 2, 3, 4};
  model->AuxLossAndGrad(users, items, pass_rng);
  model->Backward();

  std::vector<float> out;
  const Matrix& fu = model->FinalUserMatrix();
  const Matrix& fi = model->FinalItemMatrix();
  out.insert(out.end(), fu.data(), fu.data() + fu.size());
  out.insert(out.end(), fi.data(), fi.data() + fi.size());
  for (const ParamGrad& pg : model->Params()) {
    out.insert(out.end(), pg.grad->data(), pg.grad->data() + pg.grad->size());
  }
  model->SetRuntime(nullptr);
  return out;
}

TEST(BackboneThreadInvariance, ForwardAndBackwardBitIdentical) {
  const Dataset data = SmallDataset();
  for (Backbone b : kAllBackbones) {
    SCOPED_TRACE(BackboneName(b));
    const std::vector<float> ref = RunPass(b, data, 1);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      const std::vector<float> got = RunPass(b, data, threads);
      ASSERT_EQ(ref.size(), got.size());
      EXPECT_EQ(std::memcmp(ref.data(), got.data(),
                            ref.size() * sizeof(float)),
                0)
          << "threads=" << threads;
    }
  }
}

// Full training histories must also be thread-count invariant: the
// trainer attaches its pool to the model, so this covers propagation,
// aux views, the sharded batch loss, and the optimizer end to end.
std::vector<double> TrainHistory(Backbone b, const Dataset& data,
                                 size_t threads, std::vector<float>& finals) {
  const BipartiteGraph g(data);
  Rng init_rng(33);
  std::unique_ptr<EmbeddingModel> model = MakeBackbone(b, g, init_rng);
  BilateralSoftmaxLoss loss(0.2, 0.25);
  UniformNegativeSampler sampler(data);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 64;
  cfg.num_negatives = 8;
  cfg.eval_every = 2;
  cfg.seed = 44;
  cfg.runtime.num_threads = threads;
  Trainer trainer(data, *model, loss, sampler, cfg);
  std::vector<double> history;
  for (const EpochStats& e : trainer.Train().history) {
    history.push_back(e.avg_loss);
    history.push_back(e.avg_aux_loss);
  }
  finals.clear();
  const Matrix& fu = model->FinalUserMatrix();
  finals.insert(finals.end(), fu.data(), fu.data() + fu.size());
  return history;
}

TEST(BackboneThreadInvariance, TrainingHistoryBitIdentical) {
  const Dataset data = SmallDataset();
  for (Backbone b : kAllBackbones) {
    SCOPED_TRACE(BackboneName(b));
    std::vector<float> ref_finals;
    const std::vector<double> ref = TrainHistory(b, data, 1, ref_finals);
    for (size_t threads : {size_t{2}, size_t{8}}) {
      std::vector<float> finals;
      const std::vector<double> got = TrainHistory(b, data, threads, finals);
      ASSERT_EQ(ref.size(), got.size());
      for (size_t k = 0; k < ref.size(); ++k) {
        EXPECT_EQ(ref[k], got[k]) << "threads=" << threads << " entry " << k;
      }
      ASSERT_EQ(ref_finals.size(), finals.size());
      EXPECT_EQ(std::memcmp(ref_finals.data(), finals.data(),
                            finals.size() * sizeof(float)),
                0)
          << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace bslrec
