// Tests for IVF approximate retrieval and the fp16 scan path: seeded
// k-means reproducibility, index layout invariants, ANN response
// determinism across thread counts / shard grains / batch packings, the
// nprobe >= nlist exactness degeneration, int8/fp16 list-scan
// composition, empty-list edge cases, scorer stats, the approximate
// evaluator pass, and the concurrent front door on an ANN config.
#include "serve/ivf_index.h"

#include <algorithm>
#include <future>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "math/vec.h"
#include "models/mf.h"
#include "serve/inference_service.h"
#include "serve/model_snapshot.h"
#include "serve/serving_frontend.h"
#include "serve/topk_scorer.h"

namespace bslrec {
namespace {

using serve::InferenceService;
using serve::IvfIndex;
using serve::ModelSnapshot;
using serve::ServeConfig;
using serve::TopKRequest;
using serve::TopKResponse;

Dataset MediumDataset(uint64_t seed = 11) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 90;
  cfg.num_clusters = 5;
  cfg.avg_items_per_user = 10.0;
  cfg.seed = seed;
  return GenerateSynthetic(cfg).dataset;
}

serve::SnapshotOptions SnapOpts(bool quantize, bool fp16, uint32_t nlist) {
  serve::SnapshotOptions so;
  so.quantize_items = quantize;
  so.fp16_items = fp16;
  so.ivf.build = true;
  so.ivf.nlist = nlist;
  return so;
}

// ANN serving config: exact = false routes the scorer through the
// snapshot's IVF index.
ServeConfig AnnConfig(size_t threads, uint32_t nlist, uint32_t nprobe,
                      uint32_t items_per_shard = 16) {
  ServeConfig cfg;
  cfg.max_k = 20;
  cfg.items_per_shard = items_per_shard;
  cfg.runtime.num_threads = threads;
  cfg.exact = false;
  cfg.nprobe = nprobe;
  cfg.ivf.nlist = nlist;
  return cfg;
}

TopKRequest Req(uint32_t user, uint32_t k) {
  TopKRequest req;
  req.user = user;
  req.k = k;
  return req;
}

void ExpectSameResponse(const TopKResponse& a, const TopKResponse& b,
                        const std::string& what) {
  ASSERT_EQ(a.items.size(), b.items.size()) << what;
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i], b.items[i]) << what << " rank " << i;
    // Bit-identical, not approximately equal: the determinism contract.
    EXPECT_EQ(a.scores[i], b.scores[i]) << what << " rank " << i;
  }
}

std::vector<TopKRequest> AllUserRequests(const Dataset& d) {
  std::vector<TopKRequest> reqs;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    reqs.push_back(Req(u, 1 + u % 19));
  }
  return reqs;
}

TEST(IvfIndex, KMeansIsSeedReproducibleForAnyPoolSize) {
  const Dataset d = MediumDataset();
  Rng rng(40);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  runtime::ThreadPool pool1(1);
  const ModelSnapshot base(model, pool1, SnapOpts(false, false, 8));
  ASSERT_NE(base.ivf(), nullptr);
  for (const size_t threads : {2u, 8u}) {
    runtime::ThreadPool pool(threads);
    const ModelSnapshot snap(model, pool, SnapOpts(false, false, 8));
    const IvfIndex& a = *base.ivf();
    const IvfIndex& b = *snap.ivf();
    ASSERT_EQ(a.nlist(), b.nlist()) << threads << " threads";
    for (uint32_t l = 0; l <= a.nlist(); ++l) {
      EXPECT_EQ(a.ListOffset(l), b.ListOffset(l))
          << threads << " threads, list " << l;
    }
    for (uint32_t p = 0; p < a.num_items(); ++p) {
      EXPECT_EQ(a.ItemIdAt(p), b.ItemIdAt(p))
          << threads << " threads, pos " << p;
    }
    for (size_t c = 0; c < static_cast<size_t>(a.nlist()) * a.dim(); ++c) {
      EXPECT_EQ(a.Centroids()[c], b.Centroids()[c])
          << threads << " threads, coord " << c;
    }
  }
}

TEST(IvfIndex, LayoutPartitionsTheCatalogWithAscendingIds) {
  const Dataset d = MediumDataset();
  Rng rng(41);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  runtime::ThreadPool pool(4);
  const ModelSnapshot snap(model, pool, SnapOpts(true, true, 8));
  const IvfIndex& ivf = *snap.ivf();
  ASSERT_EQ(ivf.num_items(), snap.num_items());
  EXPECT_EQ(ivf.ListOffset(0), 0u);
  EXPECT_EQ(ivf.ListOffset(ivf.nlist()), snap.num_items());
  std::vector<bool> seen(snap.num_items(), false);
  for (uint32_t l = 0; l < ivf.nlist(); ++l) {
    for (uint32_t p = ivf.ListOffset(l); p < ivf.ListOffset(l + 1); ++p) {
      const uint32_t id = ivf.ItemIdAt(p);
      ASSERT_LT(id, snap.num_items());
      EXPECT_FALSE(seen[id]) << "item " << id << " posted twice";
      seen[id] = true;
      if (p > ivf.ListOffset(l)) {
        EXPECT_LT(ivf.ItemIdAt(p - 1), id) << "list " << l;
      }
    }
  }
  for (uint32_t i = 0; i < snap.num_items(); ++i) {
    EXPECT_TRUE(seen[i]) << "item " << i << " missing from every list";
  }
  // Grouped tables are bitwise copies of the snapshot rows in posting
  // order (the bit-identity of ANN scores rests on this).
  ASSERT_TRUE(ivf.has_codes());
  ASSERT_TRUE(ivf.has_f16());
  for (uint32_t p = 0; p < ivf.num_items(); ++p) {
    const uint32_t id = ivf.ItemIdAt(p);
    EXPECT_EQ(ivf.Scale(p), snap.ItemScale(id)) << "pos " << p;
    for (size_t c = 0; c < snap.dim(); ++c) {
      EXPECT_EQ(ivf.Row(p)[c], snap.ItemVec(id)[c]) << "pos " << p;
      EXPECT_EQ(ivf.Codes(p)[c], snap.ItemCodes(id)[c]) << "pos " << p;
      EXPECT_EQ(ivf.F16(p)[c], snap.ItemF16(id)[c]) << "pos " << p;
    }
  }
}

TEST(AnnService, BitIdenticalAcrossThreadsGrainsAndBatchSizes) {
  const Dataset d = MediumDataset();
  Rng rng(42);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const std::vector<TopKRequest> reqs = AllUserRequests(d);
  InferenceService baseline(d, model, AnnConfig(1, 8, 3, 7));
  const std::vector<TopKResponse> want = baseline.HandleBatch(reqs);
  for (const size_t threads : {2u, 8u}) {
    for (const uint32_t grain : {7u, 64u}) {
      InferenceService service(d, model, AnnConfig(threads, 8, 3, grain));
      // Whole batch, then the same requests one at a time and in
      // five-request slices: every packing must answer identically.
      const std::vector<TopKResponse> got = service.HandleBatch(reqs);
      ASSERT_EQ(got.size(), want.size());
      for (size_t r = 0; r < want.size(); ++r) {
        ExpectSameResponse(got[r], want[r],
                           std::to_string(threads) + " threads, grain " +
                               std::to_string(grain) + ", request " +
                               std::to_string(r));
      }
      InferenceService single(d, model, AnnConfig(threads, 8, 3, grain));
      for (size_t r = 0; r < reqs.size(); r += 5) {
        const size_t n = std::min<size_t>(5, reqs.size() - r);
        const std::vector<TopKResponse> slice =
            single.HandleBatch({reqs.data() + r, n});
        for (size_t j = 0; j < n; ++j) {
          ExpectSameResponse(slice[j], want[r + j],
                             "slice at " + std::to_string(r + j));
        }
      }
    }
  }
}

TEST(AnnService, FullProbeFp32MatchesExactServiceBitwise) {
  const Dataset d = MediumDataset();
  Rng rng(43);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const std::vector<TopKRequest> reqs = AllUserRequests(d);
  ServeConfig exact_cfg;
  exact_cfg.max_k = 20;
  exact_cfg.items_per_shard = 16;
  exact_cfg.runtime.num_threads = 2;
  InferenceService exact(d, model, exact_cfg);
  // nprobe far above nlist: every list is visited, every item visible,
  // fp32 phase-1 is already exact — the ANN response degenerates to the
  // exact scan bitwise.
  InferenceService ann(d, model, AnnConfig(2, 8, 1000));
  const std::vector<TopKResponse> want = exact.HandleBatch(reqs);
  const std::vector<TopKResponse> got = ann.HandleBatch(reqs);
  ASSERT_EQ(got.size(), want.size());
  for (size_t r = 0; r < want.size(); ++r) {
    ExpectSameResponse(got[r], want[r], "request " + std::to_string(r));
  }
}

TEST(AnnService, Int8AndF16ListScansStayDeterministicWithExactScores) {
  const Dataset d = MediumDataset();
  Rng rng(44);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const std::vector<TopKRequest> reqs = AllUserRequests(d);
  for (const bool use_fp16 : {false, true}) {
    ServeConfig base_cfg = AnnConfig(1, 8, 3);
    base_cfg.quantize = !use_fp16;
    base_cfg.fp16 = use_fp16;
    InferenceService baseline(d, model, base_cfg);
    const std::vector<TopKResponse> want = baseline.HandleBatch(reqs);
    const ModelSnapshot& snap = baseline.snapshot();
    // Phase 2 re-ranks every ANN candidate in fp32, so each returned
    // score must equal the exact cosine recomputed from the fp32 rows.
    for (size_t r = 0; r < want.size(); ++r) {
      for (size_t i = 0; i < want[r].items.size(); ++i) {
        EXPECT_EQ(want[r].scores[i],
                  vec::Dot(snap.UserVec(reqs[r].user),
                           snap.ItemVec(want[r].items[i]), snap.dim()))
            << (use_fp16 ? "fp16" : "int8") << " request " << r;
      }
    }
    for (const size_t threads : {2u, 8u}) {
      ServeConfig cfg = base_cfg;
      cfg.runtime.num_threads = threads;
      InferenceService service(d, model, cfg);
      const std::vector<TopKResponse> got = service.HandleBatch(reqs);
      ASSERT_EQ(got.size(), want.size());
      for (size_t r = 0; r < want.size(); ++r) {
        ExpectSameResponse(got[r], want[r],
                           std::string(use_fp16 ? "fp16" : "int8") + ", " +
                               std::to_string(threads) + " threads, request " +
                               std::to_string(r));
      }
    }
  }
}

TEST(AnnService, DegenerateEmbeddingsAndEmptyListsAreSafe) {
  const Dataset d = MediumDataset();
  Rng rng(45);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  // All-zero embeddings collapse every item onto centroid 0, leaving
  // nlist - 1 lists empty; scores are all zero so the top-k is the
  // lowest non-excluded ids, deterministically.
  for (ParamGrad& pg : model.Params()) pg.value->SetZero();
  model.Forward(rng);
  for (const uint32_t nprobe : {1u, 4u, 1000u}) {
    InferenceService service(
        d, model, AnnConfig(2, d.num_items() /* mostly empty */, nprobe));
    for (const uint32_t user : {0u, 17u}) {
      const TopKResponse resp = service.Handle(Req(user, 10));
      const auto seen = d.TrainItems(user);
      ASSERT_LE(resp.items.size(), 10u);
      for (size_t i = 0; i < resp.items.size(); ++i) {
        EXPECT_FALSE(std::binary_search(seen.begin(), seen.end(),
                                        resp.items[i]))
            << "excluded item served, nprobe " << nprobe;
        EXPECT_EQ(resp.scores[i], 0.0f);
        if (i > 0) {
          EXPECT_LT(resp.items[i - 1], resp.items[i])
              << "zero-score ties must order by ascending id";
        }
      }
    }
  }
}

TEST(AnnService, StatsCountProbesAndResetZeroes) {
  const Dataset d = MediumDataset();
  Rng rng(46);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const std::vector<TopKRequest> reqs = AllUserRequests(d);
  // fp32 ANN: lists are scanned exactly, so nothing is re-ranked.
  InferenceService fp32(d, model, AnnConfig(2, 8, 3));
  fp32.HandleBatch(reqs);
  serve::CatalogScorer::Stats st = fp32.scorer().stats();
  EXPECT_EQ(st.ivf_queries, reqs.size());
  EXPECT_EQ(st.ivf_lists, 3 * reqs.size());
  EXPECT_GT(st.ivf_candidates, 0u);
  EXPECT_EQ(st.ivf_reranked, 0u);
  EXPECT_EQ(st.exact_shards, 0u);
  EXPECT_EQ(st.fp16_shards, 0u);
  EXPECT_EQ(st.shards_scanned, 0u);
  fp32.scorer().ResetStats();
  st = fp32.scorer().stats();
  EXPECT_EQ(st.ivf_queries, 0u);
  EXPECT_EQ(st.ivf_lists, 0u);
  EXPECT_EQ(st.ivf_candidates, 0u);
  // int8 list scans re-rank their surviving candidates in fp32.
  ServeConfig qcfg = AnnConfig(2, 8, 3);
  qcfg.quantize = true;
  InferenceService quant(d, model, qcfg);
  quant.HandleBatch(reqs);
  st = quant.scorer().stats();
  EXPECT_EQ(st.ivf_queries, reqs.size());
  EXPECT_GT(st.ivf_reranked, 0u);
  EXPECT_LE(st.ivf_reranked, st.ivf_candidates);
}

TEST(F16Service, DeterministicAcrossThreadsAndBatchesWithExactScores) {
  const Dataset d = MediumDataset();
  Rng rng(47);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const std::vector<TopKRequest> reqs = AllUserRequests(d);
  // Fixed shard grain: the fp16 candidate sets depend on it (the mode
  // is certification-free), but at a fixed grain responses must be
  // bit-identical for any thread count and batch packing.
  ServeConfig base_cfg;
  base_cfg.max_k = 20;
  base_cfg.items_per_shard = 16;
  base_cfg.fp16 = true;
  base_cfg.runtime.num_threads = 1;
  InferenceService baseline(d, model, base_cfg);
  const std::vector<TopKResponse> want = baseline.HandleBatch(reqs);
  const ModelSnapshot& snap = baseline.snapshot();
  for (size_t r = 0; r < want.size(); ++r) {
    for (size_t i = 0; i < want[r].items.size(); ++i) {
      EXPECT_EQ(want[r].scores[i],
                vec::Dot(snap.UserVec(reqs[r].user),
                         snap.ItemVec(want[r].items[i]), snap.dim()))
          << "request " << r << " rank " << i;
    }
  }
  for (const size_t threads : {2u, 8u}) {
    ServeConfig cfg = base_cfg;
    cfg.runtime.num_threads = threads;
    InferenceService service(d, model, cfg);
    const std::vector<TopKResponse> got = service.HandleBatch(reqs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t r = 0; r < want.size(); ++r) {
      ExpectSameResponse(got[r], want[r],
                         std::to_string(threads) + " threads, request " +
                             std::to_string(r));
    }
    InferenceService single(d, model, cfg);
    for (size_t r = 0; r < reqs.size(); r += 7) {
      const size_t n = std::min<size_t>(7, reqs.size() - r);
      const std::vector<TopKResponse> slice =
          single.HandleBatch({reqs.data() + r, n});
      for (size_t j = 0; j < n; ++j) {
        ExpectSameResponse(slice[j], want[r + j],
                           "slice at " + std::to_string(r + j));
      }
    }
  }
}

TEST(AnnEvaluator, FullProbePassMatchesExactMetricsBitwise) {
  const Dataset d = MediumDataset();
  Rng rng(48);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const Evaluator exact(d, 10, runtime::RuntimeConfig{2});
  serve::ScorerOptions ann_scoring;
  ann_scoring.exact = false;
  ann_scoring.nprobe = 1000;  // >= nlist: every item visible
  const Evaluator ann(d, 10, runtime::RuntimeConfig{2}, ann_scoring);
  const TopKMetrics want = exact.Evaluate(model);
  const TopKMetrics got = ann.Evaluate(model);
  EXPECT_EQ(got.num_users, want.num_users);
  EXPECT_EQ(got.recall, want.recall);
  EXPECT_EQ(got.ndcg, want.ndcg);
  EXPECT_EQ(got.precision, want.precision);
  EXPECT_EQ(got.hit_rate, want.hit_rate);
  // A narrow probe is a genuine approximation: it may rank test items
  // higher OR lower than the exact pass (missed items can be strong
  // distractors), so only well-formedness is asserted.
  serve::ScorerOptions narrow = ann_scoring;
  narrow.nprobe = 2;
  const Evaluator approx(d, 10, runtime::RuntimeConfig{2}, narrow);
  const TopKMetrics m = approx.Evaluate(model);
  EXPECT_EQ(m.num_users, want.num_users);
  EXPECT_GE(m.recall, 0.0);
  EXPECT_LE(m.recall, 1.0);
  EXPECT_GE(m.ndcg, 0.0);
  EXPECT_LE(m.ndcg, 1.0);
}

TEST(AnnFrontEnd, ConcurrentFrontDoorMatchesSynchronousAnnService) {
  const Dataset d = MediumDataset();
  Rng rng(49);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const std::vector<TopKRequest> reqs = AllUserRequests(d);
  InferenceService service(d, model, AnnConfig(2, 8, 3));
  const std::vector<TopKResponse> want = service.HandleBatch(reqs);
  serve::FrontEndConfig fe;
  fe.max_batch = 8;
  fe.serve = AnnConfig(2, 8, 3);
  serve::ServingFrontEnd frontend(d, model, fe);
  std::vector<std::future<serve::ServedResponse>> futures;
  futures.reserve(reqs.size());
  for (const TopKRequest& req : reqs) futures.push_back(frontend.Submit(req));
  for (size_t r = 0; r < reqs.size(); ++r) {
    ExpectSameResponse(futures[r].get().topk, want[r],
                       "request " + std::to_string(r));
  }
}

}  // namespace
}  // namespace bslrec
