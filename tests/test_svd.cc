#include "graph/svd.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace bslrec {
namespace {

// Dense reconstruction U diag(S) V^T evaluated at (r, c).
double Reconstruct(const SvdResult& svd, size_t r, size_t c) {
  double acc = 0.0;
  for (size_t k = 0; k < svd.singular.size(); ++k) {
    acc += static_cast<double>(svd.u.At(r, k)) * svd.singular[k] *
           svd.v.At(c, k);
  }
  return acc;
}

TEST(OrthonormalizeColumnsTest, ProducesOrthonormalColumns) {
  Rng rng(1);
  Matrix m(20, 5);
  m.InitGaussian(rng, 1.0f);
  OrthonormalizeColumns(m, rng);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i; j < 5; ++j) {
      double dot = 0.0;
      for (size_t r = 0; r < 20; ++r) {
        dot += static_cast<double>(m.At(r, i)) * m.At(r, j);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-4) << i << "," << j;
    }
  }
}

TEST(OrthonormalizeColumnsTest, RecoversFromDependentColumns) {
  Rng rng(2);
  Matrix m(10, 3);
  for (size_t r = 0; r < 10; ++r) {
    const float v = static_cast<float>(rng.NextGaussian());
    m.At(r, 0) = v;
    m.At(r, 1) = 2.0f * v;  // linearly dependent
    m.At(r, 2) = static_cast<float>(rng.NextGaussian());
  }
  OrthonormalizeColumns(m, rng);
  for (size_t i = 0; i < 3; ++i) {
    double norm = 0.0;
    for (size_t r = 0; r < 10; ++r) {
      norm += static_cast<double>(m.At(r, i)) * m.At(r, i);
    }
    EXPECT_NEAR(norm, 1.0, 1e-4);
  }
}

TEST(TruncatedSvdTest, ExactlyRecoversLowRankMatrix) {
  // Build a rank-2 matrix from two outer products and verify a rank-2 SVD
  // reconstructs it (up to float tolerance).
  const size_t rows = 12, cols = 9;
  Rng rng(3);
  std::vector<float> u1(rows), u2(rows), v1(cols), v2(cols);
  for (auto& x : u1) x = static_cast<float>(rng.NextGaussian());
  for (auto& x : u2) x = static_cast<float>(rng.NextGaussian());
  for (auto& x : v1) x = static_cast<float>(rng.NextGaussian());
  for (auto& x : v2) x = static_cast<float>(rng.NextGaussian());

  std::vector<uint32_t> rr, cc;
  std::vector<float> vals;
  std::vector<std::vector<double>> dense(rows, std::vector<double>(cols));
  for (uint32_t r = 0; r < rows; ++r) {
    for (uint32_t c = 0; c < cols; ++c) {
      const double value = 3.0 * u1[r] * v1[c] + 1.5 * u2[r] * v2[c];
      dense[r][c] = value;
      rr.push_back(r);
      cc.push_back(c);
      vals.push_back(static_cast<float>(value));
    }
  }
  const SparseMatrix a(rows, cols, rr, cc, vals);
  Rng svd_rng(4);
  const SvdResult svd = TruncatedSvd(a, 2, 4, svd_rng);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_NEAR(Reconstruct(svd, r, c), dense[r][c], 5e-3)
          << "(" << r << "," << c << ")";
    }
  }
}

TEST(TruncatedSvdTest, SingularValuesDescending) {
  Rng rng(5);
  std::vector<uint32_t> rr, cc;
  std::vector<float> vals;
  for (int k = 0; k < 200; ++k) {
    rr.push_back(static_cast<uint32_t>(rng.NextIndex(30)));
    cc.push_back(static_cast<uint32_t>(rng.NextIndex(25)));
    vals.push_back(static_cast<float>(rng.NextGaussian()));
  }
  const SparseMatrix a(30, 25, rr, cc, vals);
  const SvdResult svd = TruncatedSvd(a, 6, 3, rng);
  ASSERT_EQ(svd.singular.size(), 6u);
  for (size_t k = 1; k < svd.singular.size(); ++k) {
    EXPECT_GE(svd.singular[k - 1], svd.singular[k] - 1e-5f);
  }
  for (float s : svd.singular) EXPECT_GE(s, 0.0f);
}

TEST(TruncatedSvdTest, FactorsAreOrthonormal) {
  Rng rng(6);
  std::vector<uint32_t> rr, cc;
  std::vector<float> vals;
  for (int k = 0; k < 150; ++k) {
    rr.push_back(static_cast<uint32_t>(rng.NextIndex(20)));
    cc.push_back(static_cast<uint32_t>(rng.NextIndex(20)));
    vals.push_back(static_cast<float>(rng.NextGaussian()));
  }
  const SparseMatrix a(20, 20, rr, cc, vals);
  const SvdResult svd = TruncatedSvd(a, 4, 4, rng);
  const auto check_orthonormal = [](const Matrix& m) {
    for (size_t i = 0; i < m.cols(); ++i) {
      for (size_t j = i; j < m.cols(); ++j) {
        double dot = 0.0;
        for (size_t r = 0; r < m.rows(); ++r) {
          dot += static_cast<double>(m.At(r, i)) * m.At(r, j);
        }
        EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 5e-3);
      }
    }
  };
  check_orthonormal(svd.u);
  check_orthonormal(svd.v);
}

}  // namespace
}  // namespace bslrec
