#include "data/loaders.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "gtest/gtest.h"
#include "test_util.h"

namespace bslrec {
namespace {

class LoadersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    train_path_ = ::testing::TempDir() + "/bslrec_train.txt";
    test_path_ = ::testing::TempDir() + "/bslrec_test.txt";
  }
  void TearDown() override {
    std::remove(train_path_.c_str());
    std::remove(test_path_.c_str());
  }
  std::string train_path_;
  std::string test_path_;
};

TEST_F(LoadersTest, RoundTripPreservesDataset) {
  const Dataset original = testing::TinyDataset();
  ASSERT_TRUE(SaveInteractions(original, train_path_, test_path_));
  const auto loaded = LoadInteractions(train_path_, test_path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_users(), original.num_users());
  EXPECT_EQ(loaded->num_items(), original.num_items());
  EXPECT_EQ(loaded->num_train(), original.num_train());
  EXPECT_EQ(loaded->num_test(), original.num_test());
  for (const Edge& e : original.train_edges()) {
    EXPECT_TRUE(loaded->IsTrainPositive(e.user, e.item));
  }
}

TEST_F(LoadersTest, SkipsCommentsAndBlankLines) {
  {
    std::ofstream out(train_path_);
    out << "# header comment\n\n0 1\n# another\n1 0\n\n";
    std::ofstream t(test_path_);
    t << "0 0\n";
  }
  const auto loaded = LoadInteractions(train_path_, test_path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_train(), 2u);
  EXPECT_EQ(loaded->num_test(), 1u);
}

TEST_F(LoadersTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(
      LoadInteractions("/nonexistent/train.txt", "/nonexistent/test.txt")
          .has_value());
}

TEST_F(LoadersTest, MalformedLineReturnsNullopt) {
  {
    std::ofstream out(train_path_);
    out << "0 1\nnot numbers\n";
    std::ofstream t(test_path_);
    t << "0 0\n";
  }
  EXPECT_FALSE(LoadInteractions(train_path_, test_path_).has_value());
}

TEST_F(LoadersTest, NegativeIdsRejected) {
  {
    std::ofstream out(train_path_);
    out << "0 -1\n";
    std::ofstream t(test_path_);
    t << "0 0\n";
  }
  EXPECT_FALSE(LoadInteractions(train_path_, test_path_).has_value());
}

TEST_F(LoadersTest, EmptyTrainReturnsNullopt) {
  {
    std::ofstream out(train_path_);
    out << "# only comments\n";
    std::ofstream t(test_path_);
    t << "0 0\n";
  }
  EXPECT_FALSE(LoadInteractions(train_path_, test_path_).has_value());
}

TEST_F(LoadersTest, DimensionsSpanBothSplits) {
  {
    std::ofstream out(train_path_);
    out << "0 0\n";
    std::ofstream t(test_path_);
    t << "5 9\n";  // larger ids only in test
  }
  const auto loaded = LoadInteractions(train_path_, test_path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_users(), 6u);
  EXPECT_EQ(loaded->num_items(), 10u);
}

}  // namespace
}  // namespace bslrec
