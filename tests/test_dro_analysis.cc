#include "analysis/dro_analysis.h"

#include <cmath>

#include "core/dro.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "models/mf.h"

namespace bslrec {
namespace {

SyntheticData ProbeData() {
  SyntheticConfig c;
  c.num_users = 80;
  c.num_items = 70;
  c.avg_items_per_user = 12.0;
  c.seed = 1;
  return GenerateSynthetic(c);
}

TEST(CollectNegativeScores, ScoresAreCosines) {
  const SyntheticData data = ProbeData();
  Rng rng(2);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  model.Forward(rng);
  UniformNegativeSampler sampler(data.dataset);
  Rng probe_rng(3);
  const NegativeScoreProbe probe = CollectNegativeScores(
      model, data.dataset, sampler, 30, 50, probe_rng);
  EXPECT_FALSE(probe.scores.empty());
  for (float s : probe.scores) {
    EXPECT_GE(s, -1.0f - 1e-4f);
    EXPECT_LE(s, 1.0f + 1e-4f);
  }
  EXPECT_TRUE(std::isfinite(probe.mean));
  EXPECT_GE(probe.variance, 0.0);
}

TEST(CollectNegativeScores, CleanSamplerHasZeroFalseNegativeRate) {
  const SyntheticData data = ProbeData();
  Rng rng(4);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  model.Forward(rng);
  UniformNegativeSampler sampler(data.dataset);
  Rng probe_rng(5);
  const NegativeScoreProbe probe = CollectNegativeScores(
      model, data.dataset, sampler, 40, 40, probe_rng);
  EXPECT_DOUBLE_EQ(probe.false_negative_rate, 0.0);
}

TEST(CollectNegativeScores, NoisySamplerRateScalesWithOdds) {
  const SyntheticData data = ProbeData();
  Rng rng(6);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  model.Forward(rng);
  NoisyNegativeSampler low(data.dataset, 1.0);
  NoisyNegativeSampler high(data.dataset, 10.0);
  Rng r1(7), r2(7);
  const auto p_low =
      CollectNegativeScores(model, data.dataset, low, 60, 100, r1);
  const auto p_high =
      CollectNegativeScores(model, data.dataset, high, 60, 100, r2);
  EXPECT_GT(p_high.false_negative_rate, p_low.false_negative_rate);
  EXPECT_GT(p_low.false_negative_rate, 0.0);
}

TEST(CollectNegativeScores, VarianceFeedsOptimalTau) {
  // End-to-end plumbing of Corollary III.1 inputs: the probe variance and
  // a chosen eta produce a finite positive tau*.
  const SyntheticData data = ProbeData();
  Rng rng(8);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  model.Forward(rng);
  UniformNegativeSampler sampler(data.dataset);
  Rng probe_rng(9);
  const auto probe =
      CollectNegativeScores(model, data.dataset, sampler, 40, 60, probe_rng);
  const double tau_star = dro::OptimalTau(probe.variance, 0.5);
  EXPECT_GT(tau_star, 0.0);
  EXPECT_TRUE(std::isfinite(tau_star));
}

TEST(MeanItemScoresTest, ShapeAndRange) {
  const SyntheticData data = ProbeData();
  Rng rng(10);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  model.Forward(rng);
  Rng probe_rng(11);
  const auto scores = MeanItemScores(model, data.dataset, 25, probe_rng);
  ASSERT_EQ(scores.size(), data.dataset.num_items());
  for (double s : scores) {
    EXPECT_GE(s, -1.0 - 1e-4);
    EXPECT_LE(s, 1.0 + 1e-4);
  }
}

}  // namespace
}  // namespace bslrec
