// End-to-end statistical reproductions of the paper's headline claims on
// small synthetic data. These are the "does the system reproduce the
// science" tests; the bench/ harnesses regenerate the full tables.
#include <cmath>
#include <memory>

#include "core/losses.h"
#include "data/noise.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "gtest/gtest.h"
#include "models/lightgcn.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace bslrec {
namespace {

// Catalog large enough that hardness-aware negative weighting matters
// (the regime where the paper's loss ordering emerges).
SyntheticConfig BenchData(uint64_t seed) {
  SyntheticConfig c;
  c.num_users = 600;
  c.num_items = 900;
  c.num_clusters = 16;
  c.avg_items_per_user = 20.0;
  c.zipf_alpha = 1.0;
  c.positive_noise_rate = 0.03;
  c.seed = seed;
  return c;
}

TrainConfig RunConfig() {
  TrainConfig cfg;
  cfg.epochs = 16;
  cfg.batch_size = 1024;
  cfg.num_negatives = 64;
  cfg.lr = 0.05;
  cfg.eval_every = 4;
  cfg.seed = 7;
  return cfg;
}

// Temperature in the optimum basin for the synthetic presets (the paper's
// 0.05-0.15 range maps to ~0.6 here because the synthetic cosine-score
// variance is larger; Corollary III.1 predicts exactly this shift).
constexpr double kTau = 0.6;

// Trains MF with the given loss on `data` and returns best NDCG@20.
double TrainMf(const Dataset& data, const LossFunction& loss,
               const NegativeSampler& sampler,
               const TrainConfig& cfg = RunConfig()) {
  Rng rng(11);
  MfModel model(data.num_users(), data.num_items(), 16, rng);
  Trainer trainer(data, model, loss, sampler, cfg);
  return trainer.Train().best.ndcg;
}

TEST(PaperClaims, SoftmaxLossBeatsClassicLossesOnCleanData) {
  // Figure 1 / Table II: SL > BPR, BCE, MSE by a clear margin (MF).
  const Dataset data = GenerateSynthetic(BenchData(21)).dataset;
  UniformNegativeSampler sampler(data);
  const double sl = TrainMf(data, SoftmaxLoss(kTau), sampler);
  const double bpr = TrainMf(data, BprLoss(), sampler);
  const double bce = TrainMf(data, BceLoss(), sampler);
  const double mse = TrainMf(data, MseLoss(), sampler);
  EXPECT_GT(sl, bpr);
  EXPECT_GT(sl, bce);
  EXPECT_GT(sl, mse);
}

TEST(PaperClaims, BslMatchesSlOnCleanData) {
  // On (nearly) clean positives BSL should be on par with SL (Table II:
  // BSL >= SL everywhere; equality at tau1 == tau2 is exact).
  const Dataset data = GenerateSynthetic(BenchData(22)).dataset;
  UniformNegativeSampler sampler(data);
  const double sl = TrainMf(data, SoftmaxLoss(kTau), sampler);
  const double bsl = TrainMf(data, BilateralSoftmaxLoss(kTau, kTau), sampler);
  EXPECT_NEAR(sl, bsl, 1e-12);  // identical loss -> identical run
}

TEST(PaperClaims, BslBeatsSlUnderPositiveNoise) {
  // Table IV / RQ3: contaminate train positives, keep the test set clean;
  // BSL's bilateral structure (tuned tau1/tau2 ratio) must beat SL.
  const Dataset clean = GenerateSynthetic(BenchData(23)).dataset;
  Rng noise_rng(31);
  const Dataset noisy = InjectFalsePositives(clean, 0.4, noise_rng);
  UniformNegativeSampler sampler(noisy);
  const double sl = TrainMf(noisy, SoftmaxLoss(kTau), sampler);
  // Grid over the tau1/tau2 ratio exactly as the paper tunes it.
  double best_bsl = 0.0;
  for (const double ratio : {0.8, 1.2, 1.6, 2.0}) {
    best_bsl = std::max(
        best_bsl,
        TrainMf(noisy, BilateralSoftmaxLoss(kTau * ratio, kTau), sampler));
  }
  EXPECT_GT(best_bsl, sl);
}

TEST(PaperClaims, SoftmaxFamilyWinsUnderFalseNegatives) {
  // RQ2 / Figure 8: with a heavily false-negative-injecting sampler
  // (r_noise = 10), the softmax family stays on top. The paper tunes tau
  // per noise level (Corollary III.1: more noise -> larger tau), emulated
  // here with a small grid. BSL must beat every other loss outright; SL
  // must beat BPR and MSE. (The paper itself observes the BCE anomaly —
  // pointwise BCE can *improve* with negative noise on Yelp2018 — so no
  // SL > BCE assertion is made at this noise level.)
  const Dataset data = GenerateSynthetic(BenchData(24)).dataset;
  NoisyNegativeSampler noisy_sampler(data, /*r_noise=*/10.0);
  double sl = 0.0, bsl = 0.0;
  for (const double tau : {kTau, kTau * 1.5}) {
    sl = std::max(sl, TrainMf(data, SoftmaxLoss(tau), noisy_sampler));
    bsl = std::max(
        bsl, TrainMf(data, BilateralSoftmaxLoss(1.3 * tau, tau),
                     noisy_sampler));
  }
  const double bpr = TrainMf(data, BprLoss(), noisy_sampler);
  const double bce = TrainMf(data, BceLoss(), noisy_sampler);
  const double mse = TrainMf(data, MseLoss(), noisy_sampler);
  EXPECT_GT(bsl, bpr);
  EXPECT_GT(bsl, bce);
  EXPECT_GT(bsl, mse);
  EXPECT_GT(bsl, sl);
  EXPECT_GT(sl, bpr);
  EXPECT_GT(sl, mse);
}

TEST(PaperClaims, LightGcnWithSlTrainsEndToEnd) {
  // Table II's LGN rows: the graph backbone must train to a sane NDCG.
  const Dataset data = GenerateSynthetic(BenchData(25)).dataset;
  const BipartiteGraph graph(data);
  Rng rng(12);
  LightGcnModel model(graph, 16, 2, rng);
  SoftmaxLoss loss(kTau);
  UniformNegativeSampler sampler(data);
  TrainConfig cfg = RunConfig();
  cfg.epochs = 10;
  Trainer trainer(data, model, loss, sampler, cfg);
  const TopKMetrics before = trainer.Evaluate();
  const TrainResult result = trainer.Train();
  EXPECT_GT(result.best.ndcg, before.ndcg);
  EXPECT_GT(result.best.ndcg, 0.05);
}

TEST(PaperClaims, FairnessSlSpreadsNdcgToUnpopularGroups) {
  // Figure 4a: SL earns more absolute NDCG on the unpopular item groups
  // than the pointwise losses do (the variance-penalty fairness story of
  // Lemma 2). Uses a milder-skew catalog so the unpopular groups carry
  // measurable test mass at all. (Our BPR baseline averages over 64
  // negatives, which already makes it far fairer than the paper's classic
  // one-negative BPR, so the assertion targets the pointwise losses —
  // see EXPERIMENTS.md for the protocol note.)
  SyntheticConfig fair_cfg = BenchData(26);
  fair_cfg.zipf_alpha = 0.7;
  fair_cfg.popularity_gamma = 0.35;
  const Dataset data = GenerateSynthetic(fair_cfg).dataset;
  UniformNegativeSampler sampler(data);
  const auto tail_ndcg = [&](const LossFunction& loss) {
    Rng rng(13);
    MfModel model(data.num_users(), data.num_items(), 16, rng);
    Trainer trainer(data, model, loss, sampler, RunConfig());
    trainer.Train();
    const Evaluator eval(data, 20);
    const auto groups = eval.GroupNdcg(model, 10);
    double tail = 0.0;
    for (size_t g = 0; g < 7; ++g) tail += groups[g];  // unpopular 70%
    return tail;
  };
  const SoftmaxLoss sl(kTau);
  const BceLoss bce;
  const MseLoss mse;
  const double sl_tail = tail_ndcg(sl);
  EXPECT_GT(sl_tail, tail_ndcg(bce));
  EXPECT_GT(sl_tail, tail_ndcg(mse));
}

}  // namespace
}  // namespace bslrec
