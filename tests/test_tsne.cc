#include "analysis/tsne.h"

#include <cmath>

#include "analysis/embedding_analysis.h"
#include "gtest/gtest.h"
#include "math/rng.h"

namespace bslrec {
namespace {

// Two well-separated Gaussian blobs in 10-D.
Matrix TwoBlobs(size_t per_blob, std::vector<uint32_t>& labels, uint64_t seed) {
  Rng rng(seed);
  Matrix points(2 * per_blob, 10);
  labels.assign(2 * per_blob, 0);
  for (size_t i = 0; i < 2 * per_blob; ++i) {
    const bool second = i >= per_blob;
    labels[i] = second ? 1 : 0;
    for (size_t k = 0; k < 10; ++k) {
      const double center = (k == 0) ? (second ? 6.0 : -6.0) : 0.0;
      points.At(i, k) = static_cast<float>(center + rng.NextGaussian() * 0.5);
    }
  }
  return points;
}

TEST(Tsne, OutputShape) {
  std::vector<uint32_t> labels;
  const Matrix points = TwoBlobs(20, labels, 1);
  TsneConfig cfg;
  cfg.iterations = 120;
  const Matrix y = RunTsne(points, cfg);
  EXPECT_EQ(y.rows(), points.rows());
  EXPECT_EQ(y.cols(), 2u);
  for (size_t k = 0; k < y.size(); ++k) {
    EXPECT_TRUE(std::isfinite(y.data()[k]));
  }
}

TEST(Tsne, DeterministicGivenSeed) {
  std::vector<uint32_t> labels;
  const Matrix points = TwoBlobs(15, labels, 2);
  TsneConfig cfg;
  cfg.iterations = 60;
  const Matrix a = RunTsne(points, cfg);
  const Matrix b = RunTsne(points, cfg);
  for (size_t k = 0; k < a.size(); ++k) {
    EXPECT_FLOAT_EQ(a.data()[k], b.data()[k]);
  }
}

TEST(Tsne, SeparatedBlobsStaySeparated) {
  std::vector<uint32_t> labels;
  const Matrix points = TwoBlobs(30, labels, 3);
  TsneConfig cfg;
  cfg.perplexity = 10.0;  // local structure: blobs of 30
  cfg.iterations = 400;
  const Matrix y = RunTsne(points, cfg);
  // The 2-D embedding of two far-apart blobs must keep a clearly positive
  // silhouette (t-SNE stretches clusters, so 1.0 is not expected).
  EXPECT_GT(SilhouetteScore(y, labels), 0.4);
}

TEST(Tsne, MapIsCentered) {
  std::vector<uint32_t> labels;
  const Matrix points = TwoBlobs(20, labels, 4);
  TsneConfig cfg;
  cfg.iterations = 100;
  const Matrix y = RunTsne(points, cfg);
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < y.rows(); ++i) {
    mx += y.At(i, 0);
    my += y.At(i, 1);
  }
  EXPECT_NEAR(mx / y.rows(), 0.0, 1e-3);
  EXPECT_NEAR(my / y.rows(), 0.0, 1e-3);
}

TEST(Tsne, PerplexityClampedForTinyInputs) {
  // 6 points with default perplexity 30 must not crash or NaN.
  Rng rng(5);
  Matrix points(6, 4);
  points.InitGaussian(rng, 1.0f);
  TsneConfig cfg;
  cfg.iterations = 50;
  const Matrix y = RunTsne(points, cfg);
  for (size_t k = 0; k < y.size(); ++k) {
    EXPECT_TRUE(std::isfinite(y.data()[k]));
  }
}

}  // namespace
}  // namespace bslrec
