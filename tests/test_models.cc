#include "models/mf.h"

#include <cmath>
#include <vector>

#include "graph/bipartite_graph.h"
#include "gtest/gtest.h"
#include "math/vec.h"
#include "models/lightgcn.h"
#include "models/ngcf.h"
#include "test_util.h"

namespace bslrec {
namespace {

// Scalar probe objective J = sum_k cos(final_user[u_k], final_item[i_k]).
// Used to finite-difference-check every model's Forward/Backward pair.
double ProbeObjective(EmbeddingModel& model, Rng& rng,
                      const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  model.Forward(rng);
  double j = 0.0;
  for (const auto& [u, i] : pairs) {
    j += vec::Cosine(model.UserEmb(u), model.ItemEmb(i), model.dim());
  }
  return j;
}

// Accumulates the analytic parameter gradients of ProbeObjective.
void ProbeBackward(EmbeddingModel& model, Rng& rng,
                   const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  model.Forward(rng);
  model.ZeroGrad();
  const size_t d = model.dim();
  std::vector<float> u_hat(d), i_hat(d);
  for (const auto& [u, i] : pairs) {
    const float u_norm = vec::Normalize(model.UserEmb(u), u_hat.data(), d);
    const float i_norm = vec::Normalize(model.ItemEmb(i), i_hat.data(), d);
    const float score = vec::Dot(u_hat.data(), i_hat.data(), d);
    vec::AccumulateCosineGrad(u_hat.data(), i_hat.data(), score, u_norm, 1.0f,
                              model.UserGrad(u), d);
    vec::AccumulateCosineGrad(i_hat.data(), u_hat.data(), score, i_norm, 1.0f,
                              model.ItemGrad(i), d);
  }
  model.Backward();
}

// Central-difference check of every parameter entry (subsampled).
void CheckModelGradients(EmbeddingModel& model, uint64_t rng_seed,
                         double tol) {
  const std::vector<std::pair<uint32_t, uint32_t>> pairs = {
      {0, 0}, {1, 2}, {2, 1}, {3, 3}};
  Rng rng(rng_seed);
  ProbeBackward(model, rng, pairs);

  // Snapshot analytic grads (Params() pointers stay valid).
  std::vector<Matrix> analytic;
  for (const ParamGrad& pg : model.Params()) analytic.push_back(*pg.grad);

  const float eps = 2e-3f;
  size_t param_idx = 0;
  for (const ParamGrad& pg : model.Params()) {
    Matrix& w = *pg.value;
    // Probe a deterministic subsample of entries to keep runtime sane.
    const size_t stride = std::max<size_t>(1, w.size() / 24);
    for (size_t k = 0; k < w.size(); k += stride) {
      const float original = w.data()[k];
      w.data()[k] = original + eps;
      Rng r1(rng_seed);
      const double jp = ProbeObjective(model, r1, pairs);
      w.data()[k] = original - eps;
      Rng r2(rng_seed);
      const double jm = ProbeObjective(model, r2, pairs);
      w.data()[k] = original;
      const double fd = (jp - jm) / (2.0 * eps);
      EXPECT_NEAR(fd, analytic[param_idx].data()[k], tol)
          << "param " << param_idx << " entry " << k;
    }
    ++param_idx;
  }
}

TEST(MfModel, ForwardExposesParameters) {
  Rng rng(1);
  MfModel mf(4, 6, 8, rng);
  mf.Forward(rng);
  EXPECT_EQ(mf.num_users(), 4u);
  EXPECT_EQ(mf.num_items(), 6u);
  EXPECT_EQ(mf.dim(), 8u);
  const auto params = mf.Params();
  ASSERT_EQ(params.size(), 2u);
  for (uint32_t u = 0; u < 4; ++u) {
    for (size_t k = 0; k < 8; ++k) {
      EXPECT_FLOAT_EQ(mf.UserEmb(u)[k], params[0].value->At(u, k));
    }
  }
}

TEST(MfModel, BackwardCopiesFinalGradients) {
  Rng rng(2);
  MfModel mf(2, 2, 4, rng);
  mf.Forward(rng);
  mf.ZeroGrad();
  mf.UserGrad(1)[2] = 3.5f;
  mf.ItemGrad(0)[1] = -1.25f;
  mf.Backward();
  const auto params = mf.Params();
  EXPECT_FLOAT_EQ(params[0].grad->At(1, 2), 3.5f);
  EXPECT_FLOAT_EQ(params[1].grad->At(0, 1), -1.25f);
  EXPECT_FLOAT_EQ(params[0].grad->At(0, 0), 0.0f);
}

TEST(MfModel, GradientCheck) {
  Rng rng(3);
  MfModel mf(4, 6, 6, rng);
  CheckModelGradients(mf, 17, 2e-2);
}

TEST(LightGcnPropagateTest, ZeroLayersIsIdentity) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(4);
  Matrix base(g.num_nodes(), 3);
  base.InitGaussian(rng, 1.0f);
  Matrix out(g.num_nodes(), 3);
  graph::PropagationEngine engine;
  engine.MeanPropagate(g.Adjacency(), base, 0, out);
  for (size_t k = 0; k < base.size(); ++k) {
    EXPECT_FLOAT_EQ(out.data()[k], base.data()[k]);
  }
}

TEST(LightGcnPropagateTest, IsLinear) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(5);
  Matrix x(g.num_nodes(), 2), y(g.num_nodes(), 2);
  x.InitGaussian(rng, 1.0f);
  y.InitGaussian(rng, 1.0f);
  Matrix px(g.num_nodes(), 2), py(g.num_nodes(), 2), pxy(g.num_nodes(), 2);
  graph::PropagationEngine engine;
  engine.MeanPropagate(g.Adjacency(), x, 3, px);
  engine.MeanPropagate(g.Adjacency(), y, 3, py);
  Matrix sum(g.num_nodes(), 2);
  sum.AddScaled(x, 2.0f);
  sum.AddScaled(y, -1.0f);
  engine.MeanPropagate(g.Adjacency(), sum, 3, pxy);
  for (size_t k = 0; k < pxy.size(); ++k) {
    EXPECT_NEAR(pxy.data()[k], 2.0f * px.data()[k] - py.data()[k], 1e-4f);
  }
}

TEST(LightGcnPropagateTest, OperatorIsSelfAdjoint) {
  // <P x, y> == <x, P y>: justifies using the same propagation in
  // LightGcnModel::Backward.
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(6);
  Matrix x(g.num_nodes(), 2), y(g.num_nodes(), 2);
  x.InitGaussian(rng, 1.0f);
  y.InitGaussian(rng, 1.0f);
  Matrix px(g.num_nodes(), 2), py(g.num_nodes(), 2);
  graph::PropagationEngine engine;
  engine.MeanPropagate(g.Adjacency(), x, 2, px);
  engine.MeanPropagate(g.Adjacency(), y, 2, py);
  double lhs = 0.0, rhs = 0.0;
  for (size_t k = 0; k < px.size(); ++k) {
    lhs += static_cast<double>(px.data()[k]) * y.data()[k];
    rhs += static_cast<double>(x.data()[k]) * py.data()[k];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(LightGcnModel, FinalEmbeddingsMixNeighborhood) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(7);
  LightGcnModel model(g, 4, 2, rng);
  model.Forward(rng);
  // The propagated user embedding must differ from the raw parameter.
  const auto params = model.Params();
  bool any_diff = false;
  for (size_t k = 0; k < 4; ++k) {
    if (std::abs(model.UserEmb(0)[k] - params[0].value->At(0, k)) > 1e-6f) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(LightGcnModel, GradientCheck) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(8);
  LightGcnModel model(g, 6, 2, rng);
  CheckModelGradients(model, 19, 2e-2);
}

TEST(NgcfModel, ForwardShapes) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(9);
  NgcfModel model(g, 5, 2, rng);
  model.Forward(rng);
  EXPECT_EQ(model.Params().size(), 1u + 2u * 2u);  // base + (W1,W2) x layers
  // Finals are finite.
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    for (size_t k = 0; k < 5; ++k) {
      EXPECT_TRUE(std::isfinite(model.UserEmb(u)[k]));
    }
  }
}

TEST(NgcfModel, GradientCheckAllParams) {
  // Covers base embeddings AND the per-layer W1/W2 transforms through the
  // LeakyReLU nonlinearity.
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(10);
  NgcfModel model(g, 5, 2, rng);
  CheckModelGradients(model, 23, 3e-2);
}

TEST(NgcfModel, DeterministicForward) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(11);
  NgcfModel model(g, 4, 2, rng);
  Rng r1(1), r2(2);
  model.Forward(r1);
  std::vector<float> snap(model.UserEmb(0), model.UserEmb(0) + 4);
  model.Forward(r2);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_FLOAT_EQ(model.UserEmb(0)[k], snap[k]);
  }
}

}  // namespace
}  // namespace bslrec
