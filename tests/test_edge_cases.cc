// Failure-injection and degenerate-input coverage across the stack:
// cold users/items, single-interaction catalogs, dimension-1 embeddings,
// oversized batches, and precondition aborts.
#include <cmath>
#include <vector>

#include "core/losses.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"
#include "gtest/gtest.h"
#include "models/lightgcn.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace bslrec {
namespace {

// Users 2 and 3 are cold (no train interactions); item 3 is cold.
Dataset ColdStartDataset() {
  std::vector<Edge> train = {{0, 0}, {0, 1}, {1, 0}, {1, 2}};
  std::vector<Edge> test = {{0, 2}, {2, 1}};  // user 2 has test but no train
  return Dataset(4, 4, std::move(train), std::move(test));
}

TEST(EdgeCases, ColdUsersAndItemsTrainAndEvaluate) {
  const Dataset d = ColdStartDataset();
  Rng rng(1);
  MfModel model(d.num_users(), d.num_items(), 4, rng);
  SoftmaxLoss loss(0.5);
  UniformNegativeSampler sampler(d);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.num_negatives = 2;
  Trainer trainer(d, model, loss, sampler, cfg);
  const TrainResult result = trainer.Train();
  EXPECT_TRUE(std::isfinite(result.best.ndcg));
  // The cold user with test items is included in evaluation.
  EXPECT_EQ(result.best.num_users, 2u);
}

TEST(EdgeCases, ColdNodesInGraphPropagationStayFinite) {
  const Dataset d = ColdStartDataset();
  const BipartiteGraph g(d);
  EXPECT_EQ(g.UserDegree(2), 0u);
  EXPECT_EQ(g.ItemDegree(3), 0u);
  Rng rng(2);
  LightGcnModel model(g, 4, 3, rng);
  model.Forward(rng);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    for (size_t k = 0; k < 4; ++k) {
      EXPECT_TRUE(std::isfinite(model.UserEmb(u)[k]));
    }
  }
}

TEST(EdgeCases, DimensionOneEmbeddingsWork) {
  SyntheticConfig c;
  c.num_users = 30;
  c.num_items = 25;
  c.avg_items_per_user = 6.0;
  c.seed = 3;
  const Dataset d = GenerateSynthetic(c).dataset;
  Rng rng(4);
  MfModel model(d.num_users(), d.num_items(), 1, rng);
  BprLoss loss;
  UniformNegativeSampler sampler(d);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.num_negatives = 4;
  Trainer trainer(d, model, loss, sampler, cfg);
  EXPECT_TRUE(std::isfinite(trainer.Train().best.ndcg));
}

TEST(EdgeCases, BatchLargerThanDataset) {
  const Dataset d = ColdStartDataset();
  Rng rng(5);
  MfModel model(d.num_users(), d.num_items(), 4, rng);
  MseLoss loss;
  UniformNegativeSampler sampler(d);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 100000;  // far larger than 4 edges
  cfg.num_negatives = 2;
  Trainer trainer(d, model, loss, sampler, cfg);
  const TrainResult result = trainer.Train();
  EXPECT_EQ(result.history.size(), 2u);
}

TEST(EdgeCases, MoreNegativesThanCatalog) {
  // Sampling is with replacement, so N- > |I| must simply repeat items.
  const Dataset d = ColdStartDataset();
  UniformNegativeSampler sampler(d);
  Rng rng(6);
  std::vector<uint32_t> out;
  sampler.Sample(0, 50, rng, out);
  EXPECT_EQ(out.size(), 50u);
  for (uint32_t j : out) EXPECT_FALSE(d.IsTrainPositive(0, j));
}

TEST(EdgeCases, LossWithSingleNegative) {
  // Smallest legal negative set for every softmax-family loss.
  for (LossKind kind : {LossKind::kSoftmax, LossKind::kBsl,
                        LossKind::kFullSoftmax}) {
    const auto loss = CreateLoss(kind, LossParams{});
    std::vector<float> d_neg(1);
    float d_pos = 0.0f;
    const std::vector<float> negs = {0.2f};
    const double l = loss->Compute(0.5f, negs, &d_pos, d_neg);
    EXPECT_TRUE(std::isfinite(l)) << LossKindName(kind);
    EXPECT_TRUE(std::isfinite(d_neg[0]));
  }
}

TEST(EdgeCases, ExtremeTemperaturesStayFinite) {
  Rng rng(7);
  std::vector<float> negs(32);
  for (auto& x : negs) {
    x = 2.0f * static_cast<float>(rng.NextDouble()) - 1.0f;
  }
  std::vector<float> d_neg(32);
  float d_pos = 0.0f;
  for (double tau : {1e-3, 1e3}) {
    SoftmaxLoss sl(tau);
    const double l = sl.Compute(0.1f, negs, &d_pos, d_neg);
    EXPECT_TRUE(std::isfinite(l)) << "tau=" << tau;
    for (float g : d_neg) EXPECT_TRUE(std::isfinite(g));
  }
}

TEST(EdgeCasesDeathTest, InvalidTemperatureAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(SoftmaxLoss(-0.1), "temperature");
  EXPECT_DEATH(SoftmaxLoss(0.0), "temperature");
  EXPECT_DEATH(BilateralSoftmaxLoss(0.0, 0.1), "positive");
}

TEST(EdgeCasesDeathTest, MismatchedGradientBufferAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SoftmaxLoss sl(0.5);
  const std::vector<float> negs = {0.1f, 0.2f};
  std::vector<float> wrong_size(1);
  float d_pos = 0.0f;
  EXPECT_DEATH(sl.Compute(0.0f, negs, &d_pos, wrong_size), "d_neg");
}

TEST(EdgeCasesDeathTest, SamplerStarvationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A user that interacted with the entire catalog has no negatives.
  std::vector<Edge> train = {{0, 0}, {0, 1}};
  const Dataset d(1, 2, std::move(train), {});
  UniformNegativeSampler sampler(d);
  Rng rng(8);
  std::vector<uint32_t> out;
  EXPECT_DEATH(sampler.Sample(0, 1, rng, out), "negatives");
}

}  // namespace
}  // namespace bslrec
