#include "math/vec.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "math/rng.h"

namespace bslrec {
namespace {

TEST(Vec, DotBasic) {
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(vec::Dot(a, b, 3), 4.0f - 10.0f + 18.0f);
  EXPECT_FLOAT_EQ(vec::Dot(a, b, 0), 0.0f);
}

TEST(Vec, AxpyAccumulates) {
  const float x[] = {1.0f, -1.0f};
  float y[] = {10.0f, 20.0f};
  vec::Axpy(2.0f, x, y, 2);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 18.0f);
}

TEST(Vec, ScaleAndFill) {
  float x[] = {1.0f, 2.0f, 3.0f};
  vec::Scale(x, 3, -2.0f);
  EXPECT_FLOAT_EQ(x[1], -4.0f);
  vec::Fill(x, 3, 7.0f);
  for (float v : x) EXPECT_FLOAT_EQ(v, 7.0f);
}

TEST(Vec, NormAndNormalize) {
  const float x[] = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(vec::Norm(x, 2), 5.0f);
  float out[2];
  const float n = vec::Normalize(x, out, 2);
  EXPECT_FLOAT_EQ(n, 5.0f);
  EXPECT_FLOAT_EQ(out[0], 0.6f);
  EXPECT_FLOAT_EQ(out[1], 0.8f);
}

TEST(Vec, NormalizeZeroVectorIsSafe) {
  const float x[] = {0.0f, 0.0f, 0.0f};
  float out[3];
  const float n = vec::Normalize(x, out, 3);
  EXPECT_FLOAT_EQ(n, 0.0f);
  for (float v : out) EXPECT_FALSE(std::isnan(v));
}

TEST(Vec, NormalizeInPlaceAliasing) {
  float x[] = {0.0f, 2.0f};
  vec::Normalize(x, x, 2);
  EXPECT_FLOAT_EQ(x[1], 1.0f);
}

TEST(Vec, CosineProperties) {
  const float a[] = {1.0f, 0.0f};
  const float b[] = {0.0f, 2.0f};
  const float c[] = {-3.0f, 0.0f};
  EXPECT_NEAR(vec::Cosine(a, b, 2), 0.0, 1e-6);
  EXPECT_NEAR(vec::Cosine(a, c, 2), -1.0, 1e-6);
  EXPECT_NEAR(vec::Cosine(a, a, 2), 1.0, 1e-6);
  const float zero[] = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(vec::Cosine(a, zero, 2), 0.0f);
}

TEST(Vec, AddSubSquaredDistance) {
  const float a[] = {1.0f, 2.0f};
  const float b[] = {4.0f, 6.0f};
  float out[2];
  vec::Sub(a, b, out, 2);
  EXPECT_FLOAT_EQ(out[0], -3.0f);
  vec::Add(a, b, out, 2);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
  EXPECT_FLOAT_EQ(vec::SquaredDistance(a, b, 2), 9.0f + 16.0f);
}

TEST(Vec, LogSumExpMatchesNaiveOnSmallValues) {
  const float x[] = {0.1f, -0.5f, 0.7f};
  double naive = std::log(std::exp(0.1) + std::exp(-0.5) + std::exp(0.7));
  EXPECT_NEAR(vec::LogSumExp(x, 3), naive, 1e-6);
}

TEST(Vec, LogSumExpStableForLargeValues) {
  const float x[] = {1000.0f, 1000.0f};
  const double r = vec::LogSumExp(x, 2);
  EXPECT_NEAR(r, 1000.0 + std::log(2.0), 1e-3);
  EXPECT_FALSE(std::isinf(r));
}

TEST(Vec, SoftmaxSumsToOneAndOrders) {
  const float x[] = {1.0f, 2.0f, 3.0f};
  float out[3];
  vec::Softmax(x, out, 3);
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0, 1e-6);
  EXPECT_LT(out[0], out[1]);
  EXPECT_LT(out[1], out[2]);
  // Ratio property: out[2]/out[1] == e^{1}.
  EXPECT_NEAR(out[2] / out[1], std::exp(1.0), 1e-4);
}

TEST(Vec, SoftmaxStableForExtremeValues) {
  const float x[] = {-2000.0f, 0.0f, 2000.0f};
  float out[3];
  vec::Softmax(x, out, 3);
  EXPECT_NEAR(out[2], 1.0, 1e-6);
  EXPECT_FALSE(std::isnan(out[0]));
}

// Finite-difference check of the cosine gradient helper: f(u) = cos(u, i).
TEST(Vec, AccumulateCosineGradMatchesFiniteDifference) {
  Rng rng(99);
  const size_t d = 8;
  std::vector<float> u(d), i(d);
  for (auto& v : u) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : i) v = static_cast<float>(rng.NextGaussian());

  std::vector<float> u_hat(d), i_hat(d);
  const float u_norm = vec::Normalize(u.data(), u_hat.data(), d);
  vec::Normalize(i.data(), i_hat.data(), d);
  const float score = vec::Dot(u_hat.data(), i_hat.data(), d);

  std::vector<float> grad(d, 0.0f);
  vec::AccumulateCosineGrad(u_hat.data(), i_hat.data(), score, u_norm, 1.0f,
                            grad.data(), d);

  const float eps = 1e-3f;
  for (size_t k = 0; k < d; ++k) {
    std::vector<float> up = u, um = u;
    up[k] += eps;
    um[k] -= eps;
    const float fp = vec::Cosine(up.data(), i.data(), d);
    const float fm = vec::Cosine(um.data(), i.data(), d);
    EXPECT_NEAR((fp - fm) / (2.0f * eps), grad[k], 2e-3f) << "dim " << k;
  }
}

TEST(Vec, DotBatchBitwiseMatchesPerRowDot) {
  // The batch kernel's contract is bit-equality with the single-row
  // kernel (callers mix the two), across even/odd row counts and
  // remainder dims that exercise both the paired and tail paths.
  Rng rng(7);
  for (const size_t m : {0u, 1u, 2u, 3u, 7u, 16u}) {
    for (const size_t d : {1u, 3u, 4u, 17u, 48u, 64u}) {
      std::vector<float> q(d), rows(m * d), out(m, -1.0f);
      for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
      for (auto& v : rows) v = static_cast<float>(rng.NextGaussian());
      vec::DotBatch(q.data(), rows.data(), m, d, out.data());
      for (size_t r = 0; r < m; ++r) {
        EXPECT_EQ(out[r], vec::Dot(q.data(), rows.data() + r * d, d))
            << "m=" << m << " d=" << d << " row " << r;
      }
    }
  }
}

TEST(Vec, GatherNormalizeBitwiseMatchesPerRowNormalize) {
  Rng rng(9);
  const size_t stride = 11, d = 8, table_rows = 20;
  std::vector<float> table(table_rows * stride);
  for (auto& v : table) v = static_cast<float>(rng.NextGaussian());
  const std::vector<uint32_t> ids = {3, 0, 19, 3, 7};  // repeats allowed
  std::vector<float> out(ids.size() * d), norms(ids.size());
  vec::GatherNormalize(table.data(), stride, ids.data(), ids.size(), d,
                       out.data(), norms.data());
  for (size_t r = 0; r < ids.size(); ++r) {
    std::vector<float> expect(d);
    const float n =
        vec::Normalize(table.data() + ids[r] * stride, expect.data(), d);
    EXPECT_EQ(norms[r], n) << "row " << r;
    for (size_t k = 0; k < d; ++k) {
      EXPECT_EQ(out[r * d + k], expect[k]) << "row " << r << " dim " << k;
    }
  }
}

TEST(Vec, GatherNormalizeZeroRowIsSafe) {
  const size_t d = 4;
  std::vector<float> table(d, 0.0f);
  const uint32_t id = 0;
  std::vector<float> out(d, 1.0f);
  float norm = -1.0f;
  vec::GatherNormalize(table.data(), d, &id, 1, d, out.data(), &norm);
  EXPECT_FLOAT_EQ(norm, 0.0f);
  for (float v : out) EXPECT_FALSE(std::isnan(v));
}

TEST(Vec, AccumulateCosineGradScalesWithCoeff) {
  const size_t d = 4;
  std::vector<float> u = {1.0f, 0.0f, 0.0f, 0.0f};
  std::vector<float> i = {0.0f, 1.0f, 0.0f, 0.0f};
  std::vector<float> g1(d, 0.0f), g2(d, 0.0f);
  vec::AccumulateCosineGrad(u.data(), i.data(), 0.0f, 1.0f, 1.0f, g1.data(),
                            d);
  vec::AccumulateCosineGrad(u.data(), i.data(), 0.0f, 1.0f, -2.5f, g2.data(),
                            d);
  for (size_t k = 0; k < d; ++k) EXPECT_FLOAT_EQ(g2[k], -2.5f * g1[k]);
}

}  // namespace
}  // namespace bslrec
