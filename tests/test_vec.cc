#include "math/vec.h"

#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "math/rng.h"

namespace bslrec {
namespace {

TEST(Vec, DotBasic) {
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(vec::Dot(a, b, 3), 4.0f - 10.0f + 18.0f);
  EXPECT_FLOAT_EQ(vec::Dot(a, b, 0), 0.0f);
}

TEST(Vec, AxpyAccumulates) {
  const float x[] = {1.0f, -1.0f};
  float y[] = {10.0f, 20.0f};
  vec::Axpy(2.0f, x, y, 2);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 18.0f);
}

TEST(Vec, ScaleAndFill) {
  float x[] = {1.0f, 2.0f, 3.0f};
  vec::Scale(x, 3, -2.0f);
  EXPECT_FLOAT_EQ(x[1], -4.0f);
  vec::Fill(x, 3, 7.0f);
  for (float v : x) EXPECT_FLOAT_EQ(v, 7.0f);
}

TEST(Vec, NormAndNormalize) {
  const float x[] = {3.0f, 4.0f};
  EXPECT_FLOAT_EQ(vec::Norm(x, 2), 5.0f);
  float out[2];
  const float n = vec::Normalize(x, out, 2);
  EXPECT_FLOAT_EQ(n, 5.0f);
  EXPECT_FLOAT_EQ(out[0], 0.6f);
  EXPECT_FLOAT_EQ(out[1], 0.8f);
}

TEST(Vec, NormalizeZeroVectorIsSafe) {
  const float x[] = {0.0f, 0.0f, 0.0f};
  float out[3];
  const float n = vec::Normalize(x, out, 3);
  EXPECT_FLOAT_EQ(n, 0.0f);
  for (float v : out) EXPECT_FALSE(std::isnan(v));
}

TEST(Vec, NormalizeInPlaceAliasing) {
  float x[] = {0.0f, 2.0f};
  vec::Normalize(x, x, 2);
  EXPECT_FLOAT_EQ(x[1], 1.0f);
}

TEST(Vec, CosineProperties) {
  const float a[] = {1.0f, 0.0f};
  const float b[] = {0.0f, 2.0f};
  const float c[] = {-3.0f, 0.0f};
  EXPECT_NEAR(vec::Cosine(a, b, 2), 0.0, 1e-6);
  EXPECT_NEAR(vec::Cosine(a, c, 2), -1.0, 1e-6);
  EXPECT_NEAR(vec::Cosine(a, a, 2), 1.0, 1e-6);
  const float zero[] = {0.0f, 0.0f};
  EXPECT_FLOAT_EQ(vec::Cosine(a, zero, 2), 0.0f);
}

TEST(Vec, AddSubSquaredDistance) {
  const float a[] = {1.0f, 2.0f};
  const float b[] = {4.0f, 6.0f};
  float out[2];
  vec::Sub(a, b, out, 2);
  EXPECT_FLOAT_EQ(out[0], -3.0f);
  vec::Add(a, b, out, 2);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
  EXPECT_FLOAT_EQ(vec::SquaredDistance(a, b, 2), 9.0f + 16.0f);
}

TEST(Vec, LogSumExpMatchesNaiveOnSmallValues) {
  const float x[] = {0.1f, -0.5f, 0.7f};
  double naive = std::log(std::exp(0.1) + std::exp(-0.5) + std::exp(0.7));
  EXPECT_NEAR(vec::LogSumExp(x, 3), naive, 1e-6);
}

TEST(Vec, LogSumExpStableForLargeValues) {
  const float x[] = {1000.0f, 1000.0f};
  const double r = vec::LogSumExp(x, 2);
  EXPECT_NEAR(r, 1000.0 + std::log(2.0), 1e-3);
  EXPECT_FALSE(std::isinf(r));
}

TEST(Vec, SoftmaxSumsToOneAndOrders) {
  const float x[] = {1.0f, 2.0f, 3.0f};
  float out[3];
  vec::Softmax(x, out, 3);
  EXPECT_NEAR(out[0] + out[1] + out[2], 1.0, 1e-6);
  EXPECT_LT(out[0], out[1]);
  EXPECT_LT(out[1], out[2]);
  // Ratio property: out[2]/out[1] == e^{1}.
  EXPECT_NEAR(out[2] / out[1], std::exp(1.0), 1e-4);
}

TEST(Vec, SoftmaxStableForExtremeValues) {
  const float x[] = {-2000.0f, 0.0f, 2000.0f};
  float out[3];
  vec::Softmax(x, out, 3);
  EXPECT_NEAR(out[2], 1.0, 1e-6);
  EXPECT_FALSE(std::isnan(out[0]));
}

// Finite-difference check of the cosine gradient helper: f(u) = cos(u, i).
TEST(Vec, AccumulateCosineGradMatchesFiniteDifference) {
  Rng rng(99);
  const size_t d = 8;
  std::vector<float> u(d), i(d);
  for (auto& v : u) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : i) v = static_cast<float>(rng.NextGaussian());

  std::vector<float> u_hat(d), i_hat(d);
  const float u_norm = vec::Normalize(u.data(), u_hat.data(), d);
  vec::Normalize(i.data(), i_hat.data(), d);
  const float score = vec::Dot(u_hat.data(), i_hat.data(), d);

  std::vector<float> grad(d, 0.0f);
  vec::AccumulateCosineGrad(u_hat.data(), i_hat.data(), score, u_norm, 1.0f,
                            grad.data(), d);

  const float eps = 1e-3f;
  for (size_t k = 0; k < d; ++k) {
    std::vector<float> up = u, um = u;
    up[k] += eps;
    um[k] -= eps;
    const float fp = vec::Cosine(up.data(), i.data(), d);
    const float fm = vec::Cosine(um.data(), i.data(), d);
    EXPECT_NEAR((fp - fm) / (2.0f * eps), grad[k], 2e-3f) << "dim " << k;
  }
}

TEST(Vec, DotBatchBitwiseMatchesPerRowDot) {
  // The batch kernel's contract is bit-equality with the single-row
  // kernel (callers mix the two), across even/odd row counts and
  // remainder dims that exercise both the paired and tail paths.
  Rng rng(7);
  for (const size_t m : {0u, 1u, 2u, 3u, 7u, 16u}) {
    for (const size_t d : {1u, 3u, 4u, 17u, 48u, 64u}) {
      std::vector<float> q(d), rows(m * d), out(m, -1.0f);
      for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
      for (auto& v : rows) v = static_cast<float>(rng.NextGaussian());
      vec::DotBatch(q.data(), rows.data(), m, d, out.data());
      for (size_t r = 0; r < m; ++r) {
        EXPECT_EQ(out[r], vec::Dot(q.data(), rows.data() + r * d, d))
            << "m=" << m << " d=" << d << " row " << r;
      }
    }
  }
}

TEST(Vec, GatherNormalizeBitwiseMatchesPerRowNormalize) {
  Rng rng(9);
  const size_t stride = 11, d = 8, table_rows = 20;
  std::vector<float> table(table_rows * stride);
  for (auto& v : table) v = static_cast<float>(rng.NextGaussian());
  const std::vector<uint32_t> ids = {3, 0, 19, 3, 7};  // repeats allowed
  std::vector<float> out(ids.size() * d), norms(ids.size());
  vec::GatherNormalize(table.data(), stride, ids.data(), ids.size(), d,
                       out.data(), norms.data());
  for (size_t r = 0; r < ids.size(); ++r) {
    std::vector<float> expect(d);
    const float n =
        vec::Normalize(table.data() + ids[r] * stride, expect.data(), d);
    EXPECT_EQ(norms[r], n) << "row " << r;
    for (size_t k = 0; k < d; ++k) {
      EXPECT_EQ(out[r * d + k], expect[k]) << "row " << r << " dim " << k;
    }
  }
}

TEST(Vec, GatherNormalizeZeroRowIsSafe) {
  const size_t d = 4;
  std::vector<float> table(d, 0.0f);
  const uint32_t id = 0;
  std::vector<float> out(d, 1.0f);
  float norm = -1.0f;
  vec::GatherNormalize(table.data(), d, &id, 1, d, out.data(), &norm);
  EXPECT_FLOAT_EQ(norm, 0.0f);
  for (float v : out) EXPECT_FALSE(std::isnan(v));
}

TEST(Vec, SimdTierIsKnown) {
  const std::string tier = vec::SimdTier();
  EXPECT_TRUE(tier == "avx2" || tier == "sse2" || tier == "scalar") << tier;
}

// Length sweep crossing every SIMD block boundary (4-wide fp32 lanes,
// 8-wide quantize blocks, 16-wide int8 blocks) plus odd tails.
const size_t kKernelLens[] = {0,  1,  2,  3,  4,   5,   7,   8,   9,  15, 16,
                              17, 24, 31, 32, 33,  48,  63,  64,  65, 100,
                              127, 128, 129, 200, 255, 256, 257, 333};

TEST(Vec, DotBitwiseMatchesScalarReference) {
  // The SIMD fp32 dot must reproduce the scalar reference's summation
  // tree exactly (vec.h contract) — EXPECT_EQ, not NEAR.
  Rng rng(21);
  for (const size_t n : kKernelLens) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<float> a(n), b(n);
      for (auto& v : a) v = static_cast<float>(rng.NextGaussian());
      for (auto& v : b) v = static_cast<float>(rng.NextGaussian());
      EXPECT_EQ(vec::Dot(a.data(), b.data(), n),
                vec::ref::Dot(a.data(), b.data(), n))
          << "n=" << n;
    }
  }
}

TEST(Vec, DotI8MatchesScalarReferenceExactly) {
  Rng rng(22);
  for (const size_t n : kKernelLens) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<int8_t> a(n), b(n);
      for (auto& v : a) v = static_cast<int8_t>(rng.NextInt(-127, 127));
      for (auto& v : b) v = static_cast<int8_t>(rng.NextInt(-127, 127));
      EXPECT_EQ(vec::DotI8(a.data(), b.data(), n),
                vec::ref::DotI8(a.data(), b.data(), n))
          << "n=" << n;
    }
  }
  // Extremes: the maximum-magnitude products must accumulate exactly.
  const size_t n = 256;
  std::vector<int8_t> lo(n, -127), hi(n, 127);
  EXPECT_EQ(vec::DotI8(lo.data(), hi.data(), n),
            -127 * 127 * static_cast<int32_t>(n));
  EXPECT_EQ(vec::DotI8(lo.data(), lo.data(), n),
            127 * 127 * static_cast<int32_t>(n));
}

TEST(Vec, DotBatchI8MatchesPerRowAndReference) {
  Rng rng(23);
  for (const size_t m : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 9u, 16u, 17u}) {
    for (const size_t d : {1u, 8u, 15u, 16u, 17u, 32u, 128u}) {
      std::vector<int8_t> q(d), rows(m * d);
      for (auto& v : q) v = static_cast<int8_t>(rng.NextInt(-127, 127));
      for (auto& v : rows) v = static_cast<int8_t>(rng.NextInt(-127, 127));
      std::vector<int32_t> got(m, -1), want(m, -2);
      vec::DotBatchI8(q.data(), rows.data(), m, d, got.data());
      vec::ref::DotBatchI8(q.data(), rows.data(), m, d, want.data());
      for (size_t r = 0; r < m; ++r) {
        EXPECT_EQ(got[r], want[r]) << "m=" << m << " d=" << d << " row " << r;
        EXPECT_EQ(got[r], vec::DotI8(q.data(), rows.data() + r * d, d))
            << "m=" << m << " d=" << d << " row " << r;
      }
    }
  }
}

TEST(Vec, QuantizeRowMatchesScalarReference) {
  Rng rng(24);
  for (const size_t n : kKernelLens) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<float> x(n);
      for (auto& v : x) v = static_cast<float>(rng.NextGaussian());
      std::vector<int8_t> got(n, 99), want(n, -99);
      const float sg = vec::QuantizeRow(x.data(), n, got.data());
      const float sw = vec::ref::QuantizeRow(x.data(), n, want.data());
      EXPECT_EQ(sg, sw) << "n=" << n;
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Vec, QuantizeRowRoundTripBound) {
  // Symmetric quantization error: |x - code*scale| <= scale*(0.5+eps),
  // codes within [-127, 127], and the max-magnitude entry maps to +-127.
  Rng rng(25);
  for (int rep = 0; rep < 100; ++rep) {
    const size_t n = 1 + rng.NextIndex(200);
    std::vector<float> x(n);
    for (auto& v : x) v = static_cast<float>(rng.NextGaussian());
    std::vector<int8_t> codes(n);
    const float scale = vec::QuantizeRow(x.data(), n, codes.data());
    ASSERT_GT(scale, 0.0f);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_GE(codes[i], -127);
      EXPECT_LE(codes[i], 127);
      const double err = std::fabs(static_cast<double>(x[i]) -
                                   static_cast<double>(codes[i]) *
                                       static_cast<double>(scale));
      EXPECT_LE(err, 0.5001 * static_cast<double>(scale) + 1e-12)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Vec, QuantizeRowDegenerateRows) {
  // All-zero rows: zero scale, zero codes (and no NaN anywhere).
  std::vector<float> zero(13, 0.0f);
  std::vector<int8_t> codes(13, 5);
  EXPECT_EQ(vec::QuantizeRow(zero.data(), zero.size(), codes.data()), 0.0f);
  for (int8_t c : codes) EXPECT_EQ(c, 0);
  // Constant rows quantize to exactly +-127 with scale |v|/127.
  std::vector<float> flat(9, -0.25f);
  codes.assign(9, 0);
  const float scale = vec::QuantizeRow(flat.data(), flat.size(), codes.data());
  EXPECT_FLOAT_EQ(scale, 0.25f / 127.0f);
  for (int8_t c : codes) EXPECT_EQ(c, -127);
  // Empty row.
  EXPECT_EQ(vec::QuantizeRow(flat.data(), 0, codes.data()), 0.0f);
}

TEST(Vec, F16RoundTripIsExhaustivelyStable) {
  // Every fp16 code decodes exactly, and re-encoding the decoded value
  // returns the original bits (decode is exact, so the nearest half to
  // it is itself). NaN payloads get the quiet bit forced (matching the
  // hardware converter), so compare those by NaN-ness instead.
  for (uint32_t code = 0; code < 0x10000; ++code) {
    const uint16_t h = static_cast<uint16_t>(code);
    const float f = vec::F16ToF32(h);
    if ((h & 0x7fff) > 0x7c00) {
      EXPECT_TRUE(std::isnan(f)) << "code " << code;
      EXPECT_TRUE((vec::F32ToF16(f) & 0x7fff) > 0x7c00) << "code " << code;
      continue;
    }
    EXPECT_EQ(vec::F32ToF16(f), h) << "code " << code;
  }
}

TEST(Vec, F32ToF16KnownValues) {
  EXPECT_EQ(vec::F32ToF16(0.0f), 0x0000);
  EXPECT_EQ(vec::F32ToF16(-0.0f), 0x8000);
  EXPECT_EQ(vec::F32ToF16(1.0f), 0x3c00);
  EXPECT_EQ(vec::F32ToF16(-2.0f), 0xc000);
  EXPECT_EQ(vec::F32ToF16(65504.0f), 0x7bff);   // max finite half
  EXPECT_EQ(vec::F32ToF16(65520.0f), 0x7c00);   // ties to even -> inf
  EXPECT_EQ(vec::F32ToF16(100000.0f), 0x7c00);  // overflow -> inf
  EXPECT_EQ(vec::F32ToF16(-100000.0f), 0xfc00);
  EXPECT_EQ(vec::F32ToF16(5.9604645e-8f), 0x0001);  // min subnormal
  EXPECT_EQ(vec::F32ToF16(1e-10f), 0x0000);         // underflow -> +0
  EXPECT_EQ(vec::F32ToF16(-1e-10f), 0x8000);        // underflow -> -0
  EXPECT_EQ(vec::F32ToF16(0.5f), 0x3800);
  EXPECT_EQ(vec::F32ToF16(0.099975586f), 0x2e66);
}

TEST(Vec, EncodeGatherF16MatchSubnormalAndOverflowRanges) {
  // Magnitude sweep from deep-subnormal (rounds to signed zero) through
  // half subnormals up to overflow: the SIMD encode/decode paths must
  // match the scalar references bitwise on every range.
  Rng rng(26);
  for (const size_t n : kKernelLens) {
    std::vector<float> x(n);
    for (size_t i = 0; i < n; ++i) {
      const double mag = std::pow(10.0, -41.0 + 46.0 * rng.NextDouble());
      x[i] = static_cast<float>(mag * (rng.NextIndex(2) == 0 ? 1.0 : -1.0));
    }
    std::vector<uint16_t> got(n, 0xeeee), want(n, 0x1111);
    vec::EncodeF16(x.data(), n, got.data());
    vec::ref::EncodeF16(x.data(), n, want.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i], want[i]) << "n=" << n << " i=" << i << " x=" << x[i];
    }
    std::vector<float> back(n, -1.0f), back_want(n, -2.0f);
    vec::GatherF16(got.data(), n, back.data());
    vec::ref::GatherF16(want.data(), n, back_want.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(back[i], back_want[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Vec, EncodeF16RoundTripErrorBound) {
  // Relative error of one round trip <= 2^-11 per element (half a ulp
  // of the 11-bit significand), plus the subnormal absolute floor.
  Rng rng(27);
  for (int rep = 0; rep < 100; ++rep) {
    const size_t n = 1 + rng.NextIndex(64);
    std::vector<float> x(n);
    for (auto& v : x) v = static_cast<float>(rng.NextGaussian());
    std::vector<uint16_t> h(n);
    vec::EncodeF16(x.data(), n, h.data());
    std::vector<float> back(n);
    vec::GatherF16(h.data(), n, back.data());
    for (size_t i = 0; i < n; ++i) {
      const double err =
          std::fabs(static_cast<double>(back[i]) - static_cast<double>(x[i]));
      EXPECT_LE(err, std::ldexp(std::fabs(x[i]), -11) + std::ldexp(1.0, -24))
          << "i=" << i << " x=" << x[i];
    }
  }
}

TEST(Vec, DotF16BitwiseMatchesScalarReference) {
  // Same exactness contract as the fp32 dot: the F16C kernel must
  // reproduce ref::DotF16's summation tree bitwise.
  Rng rng(28);
  for (const size_t n : kKernelLens) {
    for (int rep = 0; rep < 8; ++rep) {
      std::vector<float> q(n), x(n);
      for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
      for (auto& v : x) v = static_cast<float>(rng.NextGaussian());
      std::vector<uint16_t> row(n);
      vec::EncodeF16(x.data(), n, row.data());
      EXPECT_EQ(vec::DotF16(q.data(), row.data(), n),
                vec::ref::DotF16(q.data(), row.data(), n))
          << "n=" << n;
    }
  }
}

TEST(Vec, DotF16ApproximatesFp32Dot) {
  // Sanity on the quality side: on unit-ish vectors the fp16 dot stays
  // within the elementwise relative-error budget of the fp32 dot.
  Rng rng(29);
  const size_t n = 64;
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<float> q(n), x(n), x_hat(n);
    for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
    for (auto& v : x) v = static_cast<float>(rng.NextGaussian());
    vec::Normalize(q.data(), q.data(), n);
    vec::Normalize(x.data(), x_hat.data(), n);
    std::vector<uint16_t> row(n);
    vec::EncodeF16(x_hat.data(), n, row.data());
    const double budget = std::ldexp(vec::L1Norm(q.data(), n), -11) + 1e-5;
    EXPECT_NEAR(vec::DotF16(q.data(), row.data(), n),
                vec::Dot(q.data(), x_hat.data(), n), budget)
        << "rep " << rep;
  }
}

TEST(Vec, DotBatchF16MatchesPerRowAndReference) {
  Rng rng(30);
  for (const size_t m : {0u, 1u, 2u, 3u, 5u, 9u, 16u, 17u}) {
    for (const size_t d : {1u, 4u, 8u, 15u, 16u, 17u, 48u, 128u}) {
      std::vector<float> q(d), x(m * d);
      for (auto& v : q) v = static_cast<float>(rng.NextGaussian());
      for (auto& v : x) v = static_cast<float>(rng.NextGaussian());
      std::vector<uint16_t> rows(m * d);
      vec::EncodeF16(x.data(), m * d, rows.data());
      std::vector<float> got(m, -1.0f), want(m, -2.0f);
      vec::DotBatchF16(q.data(), rows.data(), m, d, got.data());
      vec::ref::DotBatchF16(q.data(), rows.data(), m, d, want.data());
      for (size_t r = 0; r < m; ++r) {
        EXPECT_EQ(got[r], want[r]) << "m=" << m << " d=" << d << " row " << r;
        EXPECT_EQ(got[r], vec::DotF16(q.data(), rows.data() + r * d, d))
            << "m=" << m << " d=" << d << " row " << r;
      }
    }
  }
}

TEST(Vec, L1NormMatchesNaiveSum) {
  const float x[] = {1.0f, -2.0f, 3.0f, -4.0f, 0.5f};
  EXPECT_DOUBLE_EQ(vec::L1Norm(x, 5), 10.5);
  EXPECT_DOUBLE_EQ(vec::L1Norm(x, 0), 0.0);
}

TEST(Vec, AccumulateCosineGradScalesWithCoeff) {
  const size_t d = 4;
  std::vector<float> u = {1.0f, 0.0f, 0.0f, 0.0f};
  std::vector<float> i = {0.0f, 1.0f, 0.0f, 0.0f};
  std::vector<float> g1(d, 0.0f), g2(d, 0.0f);
  vec::AccumulateCosineGrad(u.data(), i.data(), 0.0f, 1.0f, 1.0f, g1.data(),
                            d);
  vec::AccumulateCosineGrad(u.data(), i.data(), 0.0f, 1.0f, -2.5f, g2.data(),
                            d);
  for (size_t k = 0; k < d; ++k) EXPECT_FLOAT_EQ(g2[k], -2.5f * g1[k]);
}

}  // namespace
}  // namespace bslrec
