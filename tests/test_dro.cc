// Numerical verification of the paper's theory (Section III):
//   Lemma 1       : SL negative part == KL-constrained DRO optimum.
//   Lemma 2       : second-order variance expansion of the objective.
//   Corollary III.1: tau* ~= sqrt(V / 2 eta).
#include "core/dro.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "math/rng.h"
#include "math/stats.h"
#include "test_util.h"

namespace bslrec {
namespace {

using ::bslrec::testing::RandomScores;

TEST(WorstCaseWeights, IsValidDistribution) {
  Rng rng(1);
  const auto scores = RandomScores(50, rng);
  const auto w = dro::WorstCaseWeights(scores, 0.1);
  ASSERT_EQ(w.size(), scores.size());
  double sum = 0.0;
  for (double x : w) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(WorstCaseWeights, MonotoneInScore) {
  const std::vector<float> scores = {-0.5f, 0.0f, 0.5f, 0.9f};
  const auto w = dro::WorstCaseWeights(scores, 0.2);
  for (size_t j = 1; j < w.size(); ++j) EXPECT_GT(w[j], w[j - 1]);
}

TEST(WorstCaseWeights, LargeTauApproachesUniform) {
  Rng rng(2);
  const auto scores = RandomScores(20, rng);
  const auto w = dro::WorstCaseWeights(scores, 1e6);
  for (double x : w) EXPECT_NEAR(x, 1.0 / 20.0, 1e-5);
}

TEST(WorstCaseWeights, SmallTauConcentratesOnHardest) {
  const std::vector<float> scores = {0.1f, 0.9f, -0.3f};
  const auto w = dro::WorstCaseWeights(scores, 0.01);
  EXPECT_GT(w[1], 0.999);
}

TEST(EmpiricalEta, ZeroForConstantScores) {
  const std::vector<float> scores(10, 0.3f);
  EXPECT_NEAR(dro::EmpiricalEta(scores, 0.1), 0.0, 1e-9);
}

TEST(EmpiricalEta, DecreasesInTau) {
  Rng rng(3);
  const auto scores = RandomScores(100, rng);
  double prev = dro::EmpiricalEta(scores, 0.02);
  for (double tau : {0.05, 0.1, 0.2, 0.5, 1.0}) {
    const double eta = dro::EmpiricalEta(scores, tau);
    EXPECT_LT(eta, prev);
    prev = eta;
  }
}

TEST(EmpiricalEta, BoundedByLogN) {
  Rng rng(4);
  const auto scores = RandomScores(64, rng);
  EXPECT_LE(dro::EmpiricalEta(scores, 1e-4), std::log(64.0) + 1e-6);
}

// --------------------------------------------------------------------------
// Lemma 1: tau * log E exp(f/tau) == E_{P*}[f] - tau * KL(P* || P-), with
// P* the exponential tilt — the exact duality identity behind the
// SL <-> DRO equivalence.
// --------------------------------------------------------------------------
class Lemma1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Lemma1Sweep, DualityIdentityHolds) {
  const double tau = GetParam();
  Rng rng(5);
  const auto scores = RandomScores(200, rng);
  const auto p_star = dro::WorstCaseWeights(scores, tau);
  const double objective = dro::NegativeObjective(scores, tau);
  const double expectation = dro::TiltedExpectation(scores, p_star);
  const double eta = dro::EmpiricalEta(scores, tau);
  EXPECT_NEAR(objective, expectation - tau * eta, 1e-6) << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(Taus, Lemma1Sweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.5, 1.0, 5.0));

TEST(Lemma1, TiltMaximizesOverRandomKlConstrainedRivals) {
  // No distribution within the same KL ball achieves a higher tilted
  // objective E_P[f] - tau*KL(P||U) than the exponential tilt.
  Rng rng(6);
  const auto scores = RandomScores(30, rng);
  const double tau = 0.15;
  const auto p_star = dro::WorstCaseWeights(scores, tau);
  const double eta_star = dro::EmpiricalEta(scores, tau);
  const double best = dro::TiltedExpectation(scores, p_star) - tau * eta_star;

  const std::vector<double> uniform(scores.size(), 1.0 / scores.size());
  for (int trial = 0; trial < 300; ++trial) {
    // Random perturbed distribution.
    std::vector<double> q(scores.size());
    double sum = 0.0;
    for (double& x : q) {
      x = std::exp(2.0 * rng.NextGaussian() * rng.NextDouble());
      sum += x;
    }
    for (double& x : q) x /= sum;
    const double kl = KlDivergence(q, uniform);
    const double value = dro::TiltedExpectation(scores, q) - tau * kl;
    EXPECT_LE(value, best + 1e-6);
  }
}

TEST(SolveWorstCase, RecoversTiltTemperature) {
  // eta -> tau round trip: solving the primal with eta(tau0) must give
  // back tau0 (the Lagrange-multiplier interpretation of temperature).
  Rng rng(7);
  const auto scores = RandomScores(80, rng);
  for (const double tau0 : {0.08, 0.15, 0.4}) {
    const double eta = dro::EmpiricalEta(scores, tau0);
    double solved = 0.0;
    const auto w = dro::SolveWorstCase(scores, eta, &solved);
    EXPECT_NEAR(solved, tau0, 0.01 * tau0) << "tau0=" << tau0;
    const auto expected = dro::WorstCaseWeights(scores, tau0);
    for (size_t j = 0; j < w.size(); ++j) {
      EXPECT_NEAR(w[j], expected[j], 1e-4);
    }
  }
}

TEST(SolveWorstCase, ZeroRadiusGivesUniform) {
  Rng rng(8);
  const auto scores = RandomScores(20, rng);
  const auto w = dro::SolveWorstCase(scores, 0.0);
  for (double x : w) EXPECT_NEAR(x, 1.0 / 20.0, 1e-3);
}

// --------------------------------------------------------------------------
// Lemma 2: tau log E exp(f/tau) = E[f] + V[f]/(2 tau) + o(1/tau).
// --------------------------------------------------------------------------
TEST(Lemma2, TaylorApproximationErrorShrinksWithTau) {
  Rng rng(9);
  const auto scores = RandomScores(500, rng);
  double prev_err = 1e9;
  for (double tau : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double exact = dro::NegativeObjective(scores, tau);
    const double approx = dro::TaylorNegativeApprox(scores, tau);
    const double err = std::abs(exact - approx);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-4);  // essentially exact at tau = 8
}

TEST(Lemma2, VarianceTermIsTheLeadingCorrection) {
  // For scores with mean 0, objective - mean ~= V/(2 tau).
  Rng rng(10);
  auto scores = RandomScores(2000, rng);
  // Center the sample.
  double mean = 0.0;
  for (float s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  for (float& s : scores) s -= static_cast<float>(mean);
  double var = 0.0;
  for (float s : scores) var += static_cast<double>(s) * s;
  var /= static_cast<double>(scores.size());

  const double tau = 4.0;
  const double objective = dro::NegativeObjective(scores, tau);
  EXPECT_NEAR(objective, var / (2.0 * tau), 0.05 * var / (2.0 * tau));
}

// --------------------------------------------------------------------------
// Corollary III.1.
// --------------------------------------------------------------------------
TEST(OptimalTau, FormulaAndMonotonicity) {
  EXPECT_NEAR(dro::OptimalTau(0.08, 1.0), std::sqrt(0.04), 1e-12);
  // Grows with variance, shrinks with radius.
  EXPECT_LT(dro::OptimalTau(0.01, 1.0), dro::OptimalTau(0.04, 1.0));
  EXPECT_GT(dro::OptimalTau(0.04, 0.5), dro::OptimalTau(0.04, 2.0));
}

TEST(OptimalTau, ConsistentWithEmpiricalEta) {
  // Round trip through the empirical quantities: for Gaussian-ish scores
  // and moderate tau, tau ~= sqrt(V / (2 eta(tau))) approximately (the
  // corollary is a second-order approximation).
  Rng rng(11);
  std::vector<float> scores(4000);
  for (auto& s : scores) {
    s = static_cast<float>(0.15 * rng.NextGaussian());
  }
  double var = 0.0, mean = 0.0;
  for (float s : scores) mean += s;
  mean /= scores.size();
  for (float s : scores) var += (s - mean) * (s - mean);
  var /= scores.size();

  const double tau = 0.4;  // large vs score scale -> expansion regime
  const double eta = dro::EmpiricalEta(scores, tau);
  const double tau_estimate = dro::OptimalTau(var, eta);
  EXPECT_NEAR(tau_estimate, tau, 0.15 * tau);
}

}  // namespace
}  // namespace bslrec
