#include "train/trainer.h"

#include <cmath>

#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "models/mf.h"
#include "test_util.h"

namespace bslrec {
namespace {

SyntheticData TrainData(uint64_t seed = 1) {
  SyntheticConfig c;
  c.num_users = 120;
  c.num_items = 90;
  c.num_clusters = 6;
  c.avg_items_per_user = 14.0;
  c.seed = seed;
  return GenerateSynthetic(c);
}

TrainConfig FastConfig() {
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 512;
  cfg.num_negatives = 16;
  cfg.lr = 0.05;
  cfg.eval_every = 4;
  cfg.seed = 99;
  return cfg;
}

TEST(Trainer, TrainingImprovesOverInitialization) {
  const SyntheticData data = TrainData();
  Rng rng(2);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  SoftmaxLoss loss(0.15);
  UniformNegativeSampler sampler(data.dataset);
  Trainer trainer(data.dataset, model, loss, sampler, FastConfig());
  const TopKMetrics before = trainer.Evaluate();
  const TrainResult result = trainer.Train();
  EXPECT_GT(result.best.ndcg, before.ndcg + 0.02);
  EXPECT_GT(result.best.recall, before.recall);
}

TEST(Trainer, LossDecreasesAcrossEpochs) {
  const SyntheticData data = TrainData(3);
  Rng rng(4);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  SoftmaxLoss loss(0.15);
  UniformNegativeSampler sampler(data.dataset);
  Trainer trainer(data.dataset, model, loss, sampler, FastConfig());
  const TrainResult result = trainer.Train();
  ASSERT_GE(result.history.size(), 4u);
  EXPECT_LT(result.history.back().avg_loss, result.history.front().avg_loss);
}

TEST(Trainer, DeterministicGivenSeeds) {
  const SyntheticData data = TrainData(5);
  const auto run = [&]() {
    Rng rng(6);
    MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
    SoftmaxLoss loss(0.2);
    UniformNegativeSampler sampler(data.dataset);
    TrainConfig cfg = FastConfig();
    cfg.epochs = 3;
    Trainer trainer(data.dataset, model, loss, sampler, cfg);
    return trainer.Train();
  };
  const TrainResult a = run();
  const TrainResult b = run();
  EXPECT_DOUBLE_EQ(a.best.ndcg, b.best.ndcg);
  EXPECT_DOUBLE_EQ(a.best.recall, b.best.recall);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t k = 0; k < a.history.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.history[k].avg_loss, b.history[k].avg_loss);
  }
}

TEST(Trainer, HistoryHasOneEntryPerEpoch) {
  const SyntheticData data = TrainData(7);
  Rng rng(8);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  BprLoss loss;
  UniformNegativeSampler sampler(data.dataset);
  TrainConfig cfg = FastConfig();
  cfg.epochs = 5;
  Trainer trainer(data.dataset, model, loss, sampler, cfg);
  const TrainResult result = trainer.Train();
  EXPECT_EQ(result.history.size(), 5u);
  for (size_t k = 0; k < result.history.size(); ++k) {
    EXPECT_EQ(result.history[k].epoch, static_cast<int>(k) + 1);
    EXPECT_TRUE(std::isfinite(result.history[k].avg_loss));
  }
}

TEST(Trainer, EarlyStoppingCutsRunShort) {
  const SyntheticData data = TrainData(9);
  Rng rng(10);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  SoftmaxLoss loss(0.15);
  UniformNegativeSampler sampler(data.dataset);
  TrainConfig cfg = FastConfig();
  cfg.epochs = 60;
  cfg.eval_every = 1;
  cfg.early_stop_patience = 2;
  Trainer trainer(data.dataset, model, loss, sampler, cfg);
  const TrainResult result = trainer.Train();
  EXPECT_LT(result.history.size(), 60u);
  EXPECT_GE(result.best_epoch, 1);
}

TEST(Trainer, ZeroEpochsStillReportsMetrics) {
  const SyntheticData data = TrainData(11);
  Rng rng(12);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  MseLoss loss;
  UniformNegativeSampler sampler(data.dataset);
  TrainConfig cfg = FastConfig();
  cfg.epochs = 0;
  Trainer trainer(data.dataset, model, loss, sampler, cfg);
  const TrainResult result = trainer.Train();
  EXPECT_GT(result.best.num_users, 0u);
  EXPECT_TRUE(result.history.empty());
}

TEST(Trainer, InBatchModeTrainsAndImproves) {
  // Algorithm 2: other batch positives act as negatives. Must train to a
  // comparable quality as sampled negatives on the same data.
  const SyntheticData data = TrainData(15);
  Rng rng(16);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  SoftmaxLoss loss(0.4);
  UniformNegativeSampler sampler(data.dataset);  // unused in this mode
  TrainConfig cfg = FastConfig();
  cfg.sampling_mode = SamplingMode::kInBatch;
  cfg.batch_size = 256;
  Trainer trainer(data.dataset, model, loss, sampler, cfg);
  const TopKMetrics before = trainer.Evaluate();
  const TrainResult result = trainer.Train();
  EXPECT_GT(result.best.ndcg, before.ndcg + 0.02);
}

TEST(Trainer, InBatchLogQCorrectionHelpsOnSkewedData) {
  // In-batch negatives are popularity-biased; the logQ correction must
  // not hurt, and on skewed data it should help.
  SyntheticConfig c;
  c.num_users = 300;
  c.num_items = 400;
  c.num_clusters = 12;
  c.avg_items_per_user = 15.0;
  c.zipf_alpha = 1.1;
  c.seed = 21;
  const Dataset data = GenerateSynthetic(c).dataset;
  const auto run = [&](double logq_tau) {
    Rng rng(22);
    MfModel model(data.num_users(), data.num_items(), 16, rng);
    SoftmaxLoss loss(0.6);
    UniformNegativeSampler sampler(data);
    TrainConfig cfg = FastConfig();
    cfg.sampling_mode = SamplingMode::kInBatch;
    cfg.batch_size = 256;
    cfg.epochs = 10;
    cfg.inbatch_logq_tau = logq_tau;
    Trainer trainer(data, model, loss, sampler, cfg);
    return trainer.Train().best.ndcg;
  };
  EXPECT_GT(run(0.6), run(0.0));
}

TEST(Trainer, InBatchDeterministicAndLossFinite) {
  const SyntheticData data = TrainData(17);
  const auto run = [&]() {
    Rng rng(18);
    MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8,
                  rng);
    SoftmaxLoss loss(0.4);
    UniformNegativeSampler sampler(data.dataset);
    TrainConfig cfg = FastConfig();
    cfg.sampling_mode = SamplingMode::kInBatch;
    cfg.batch_size = 128;
    cfg.epochs = 3;
    Trainer trainer(data.dataset, model, loss, sampler, cfg);
    return trainer.Train();
  };
  const TrainResult a = run();
  const TrainResult b = run();
  EXPECT_DOUBLE_EQ(a.best.ndcg, b.best.ndcg);
  for (const EpochStats& e : a.history) {
    EXPECT_TRUE(std::isfinite(e.avg_loss));
  }
}

TEST(Trainer, RunEpochReturnsFiniteStats) {
  const SyntheticData data = TrainData(13);
  Rng rng(14);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  BceLoss loss;
  UniformNegativeSampler sampler(data.dataset);
  Trainer trainer(data.dataset, model, loss, sampler, FastConfig());
  const EpochStats stats = trainer.RunEpoch(1);
  EXPECT_EQ(stats.epoch, 1);
  EXPECT_TRUE(std::isfinite(stats.avg_loss));
  EXPECT_DOUBLE_EQ(stats.avg_aux_loss, 0.0);  // MF has no aux objective
}

}  // namespace
}  // namespace bslrec
