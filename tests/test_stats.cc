#include "math/stats.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "math/rng.h"

namespace bslrec {
namespace {

TEST(RunningStats, MatchesBatchFormulas) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 10.0};
  RunningStats s;
  for (double x : v) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  // Population variance: mean of squared deviations.
  double var = 0.0;
  for (double x : v) var += (x - 4.0) * (x - 4.0);
  var /= 5.0;
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.sample_variance(), var * 5.0 / 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.Add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStats, NumericallyStableOnShiftedData) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(BatchStats, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(Variance({5.0, 5.0, 5.0}), 0.0);
  EXPECT_NEAR(Variance({1.0, -1.0}), 1.0, 1e-12);
}

TEST(Correlation, PearsonPerfectAndInverse) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> z = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(PearsonCorrelation(x, z), -1.0, 1e-12);
}

TEST(Correlation, PearsonConstantSideIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  // y = x^3 is perfectly rank-correlated but not linearly.
  std::vector<double> x, y;
  for (int i = -5; i <= 5; ++i) {
    x.push_back(i);
    y.push_back(i * i * i);
  }
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(x, y), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x = {1.0, 2.0, 2.0, 3.0};
  const std::vector<double> y = {10.0, 20.0, 20.0, 30.0};
  EXPECT_NEAR(SpearmanCorrelation(x, y), 1.0, 1e-12);
}

TEST(HistogramTest, CountsAndClamping) {
  const std::vector<double> v = {-10.0, 0.05, 0.15, 0.15, 0.95, 10.0};
  const auto h = Histogram(v, 0.0, 1.0, 10);
  ASSERT_EQ(h.size(), 10u);
  EXPECT_EQ(h[0], 2u);  // -10 clamped + 0.05
  EXPECT_EQ(h[1], 2u);  // two 0.15s
  EXPECT_EQ(h[9], 2u);  // 0.95 + 10 clamped
  size_t total = 0;
  for (size_t c : h) total += c;
  EXPECT_EQ(total, v.size());
}

TEST(KlDivergenceTest, ZeroForIdenticalDistributions) {
  EXPECT_NEAR(KlDivergence({0.2, 0.3, 0.5}, {0.2, 0.3, 0.5}), 0.0, 1e-12);
}

TEST(KlDivergenceTest, NonNegativeAndAsymmetric) {
  const std::vector<double> p = {0.9, 0.1};
  const std::vector<double> q = {0.5, 0.5};
  const double pq = KlDivergence(p, q);
  const double qp = KlDivergence(q, p);
  EXPECT_GT(pq, 0.0);
  EXPECT_GT(qp, 0.0);
  EXPECT_NE(pq, qp);
  // Known value: 0.9 log 1.8 + 0.1 log 0.2.
  EXPECT_NEAR(pq, 0.9 * std::log(1.8) + 0.1 * std::log(0.2), 1e-12);
}

TEST(KlDivergenceTest, NormalizesUnnormalizedInput) {
  EXPECT_NEAR(KlDivergence({2.0, 3.0, 5.0}, {0.2, 0.3, 0.5}), 0.0, 1e-12);
}

TEST(KlDivergenceTest, ZeroInPHandled) {
  EXPECT_NEAR(KlDivergence({0.0, 1.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

}  // namespace
}  // namespace bslrec
