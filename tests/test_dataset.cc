#include "data/dataset.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace bslrec {
namespace {

TEST(Dataset, BasicShape) {
  const Dataset d = testing::TinyDataset();
  EXPECT_EQ(d.num_users(), 4u);
  EXPECT_EQ(d.num_items(), 6u);
  EXPECT_EQ(d.num_train(), 8u);
  EXPECT_EQ(d.num_test(), 4u);
  EXPECT_NEAR(d.TrainDensity(), 8.0 / 24.0, 1e-12);
}

TEST(Dataset, TrainItemsSortedPerUser) {
  const Dataset d = testing::TinyDataset();
  const auto items = d.TrainItems(3);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], 0u);
  EXPECT_EQ(items[1], 5u);
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
}

TEST(Dataset, TestItemsPerUser) {
  const Dataset d = testing::TinyDataset();
  ASSERT_EQ(d.TestItems(1).size(), 1u);
  EXPECT_EQ(d.TestItems(1)[0], 4u);
}

TEST(Dataset, IsTrainPositive) {
  const Dataset d = testing::TinyDataset();
  EXPECT_TRUE(d.IsTrainPositive(0, 0));
  EXPECT_TRUE(d.IsTrainPositive(0, 1));
  EXPECT_FALSE(d.IsTrainPositive(0, 2));  // test item, not train
  EXPECT_FALSE(d.IsTrainPositive(1, 0));
}

TEST(Dataset, DeduplicatesEdges) {
  std::vector<Edge> train = {{0, 1}, {0, 1}, {0, 1}, {1, 0}};
  const Dataset d(2, 2, std::move(train), {});
  EXPECT_EQ(d.num_train(), 2u);
  EXPECT_EQ(d.TrainItems(0).size(), 1u);
}

TEST(Dataset, ItemPopularityCountsTrainOnly) {
  const Dataset d = testing::TinyDataset();
  const auto& pop = d.item_popularity();
  ASSERT_EQ(pop.size(), 6u);
  EXPECT_EQ(pop[0], 2u);  // u0 and u3
  EXPECT_EQ(pop[5], 2u);  // u2 and u3
  EXPECT_EQ(pop[1], 1u);
  uint32_t total = 0;
  for (uint32_t p : pop) total += p;
  EXPECT_EQ(total, d.num_train());
}

TEST(Dataset, PopularityGroupsOrderedByPopularity) {
  // Items with popularity 0 must land in lower group ids than popular ones.
  std::vector<Edge> train;
  for (uint32_t u = 0; u < 10; ++u) train.push_back({u, 9});  // item 9 hot
  for (uint32_t u = 0; u < 5; ++u) train.push_back({u, 8});
  train.push_back({0, 7});
  const Dataset d(10, 10, std::move(train), {});
  const auto groups = d.PopularityGroups(5);
  ASSERT_EQ(groups.size(), 10u);
  EXPECT_EQ(groups[9], 4u);                 // most popular -> top group
  EXPECT_GT(groups[8], groups[7]);          // 5 interactions > 1
  EXPECT_LT(groups[0], groups[7]);          // zero-interaction items lowest
  for (uint32_t g : groups) EXPECT_LT(g, 5u);
}

TEST(Dataset, PopularityGroupsBalancedSizes) {
  std::vector<Edge> train;
  for (uint32_t i = 0; i < 100; ++i) {
    for (uint32_t u = 0; u <= i % 7; ++u) train.push_back({u, i});
  }
  const Dataset d(7, 100, std::move(train), {});
  const auto groups = d.PopularityGroups(10);
  std::vector<int> sizes(10, 0);
  for (uint32_t g : groups) ++sizes[g];
  for (int s : sizes) EXPECT_EQ(s, 10);
}

TEST(Dataset, TestUsersOnlyThoseWithTestItems) {
  std::vector<Edge> train = {{0, 0}, {1, 0}, {2, 0}};
  std::vector<Edge> test = {{0, 1}, {2, 1}};
  const Dataset d(3, 2, std::move(train), std::move(test));
  const auto users = d.TestUsers();
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], 0u);
  EXPECT_EQ(users[1], 2u);
}

TEST(Dataset, TrainEdgesMatchCsr) {
  const Dataset d = testing::TinyDataset();
  size_t csr_total = 0;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    csr_total += d.TrainItems(u).size();
  }
  EXPECT_EQ(csr_total, d.train_edges().size());
  for (const Edge& e : d.train_edges()) {
    EXPECT_TRUE(d.IsTrainPositive(e.user, e.item));
  }
}

TEST(Dataset, EmptyTestSplitAllowed) {
  const Dataset d(2, 2, {{0, 0}}, {});
  EXPECT_EQ(d.num_test(), 0u);
  EXPECT_TRUE(d.TestUsers().empty());
  EXPECT_TRUE(d.TestItems(0).empty());
}

}  // namespace
}  // namespace bslrec
