#include "math/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace bslrec {
namespace {

TEST(SplitMix64, DeterministicStream) {
  SplitMix64 a(1), b(1), c(2);
  const uint64_t a1 = a.Next();
  EXPECT_EQ(a1, b.Next());
  EXPECT_NE(a1, c.Next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextIndexInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextIndex(17), 17u);
  }
  EXPECT_EQ(rng.NextIndex(1), 0u);
}

TEST(Rng, NextIndexApproximatelyUniform) {
  Rng rng(5);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextIndex(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, 500.0);
  }
}

TEST(Rng, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliEdgeCasesAndRate) {
  Rng rng(17);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-0.5));
  EXPECT_TRUE(rng.NextBernoulli(1.5));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleUniformFirstPosition) {
  // Each element should land in position 0 roughly 1/4 of the time.
  Rng rng(23);
  std::vector<int> counts(4, 0);
  for (int trial = 0; trial < 40000; ++trial) {
    std::vector<int> v = {0, 1, 2, 3};
    rng.Shuffle(v);
    ++counts[v[0]];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = rng.SampleWithoutReplacement(50, 10);
    ASSERT_EQ(s.size(), 10u);
    std::set<uint32_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (uint32_t x : s) EXPECT_LT(x, 50u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(31);
  const auto s = rng.SampleWithoutReplacement(8, 8);
  std::set<uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(Rng, SampleWithoutReplacementUnbiased) {
  // Every element of [0,5) should appear in a 2-subset with prob 2/5.
  Rng rng(37);
  std::vector<int> counts(5, 0);
  const int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    for (uint32_t x : rng.SampleWithoutReplacement(5, 2)) ++counts[x];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kTrials), 0.4, 0.01);
  }
}

// ---- Lemire multiply-shift NextIndex regression ----
// NextIndex switched from divide-based rejection to Lemire's multiply-
// shift reduction; these lock the distribution properties the samplers
// rely on (range, unbiasedness for awkward bounds, large-bound safety).

TEST(Rng, NextIndexUniformForNonPowerOfTwoBound) {
  // 17 does not divide 2^64, so a biased reduction would visibly skew
  // the low buckets; the exact-threshold rejection must not.
  Rng rng(41);
  constexpr uint64_t kBuckets = 17;
  constexpr int kDraws = 170000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextIndex(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 17.0, 600.0);
  }
}

TEST(Rng, NextIndexChiSquareAcrossAwkwardBounds) {
  // Chi-square goodness-of-fit at a handful of bounds that stress the
  // reduction (odd, prime, just-below-power-of-two). 99.9th percentile
  // cutoffs, so a correct implementation fails with p < 0.001.
  Rng rng(43);
  for (uint64_t n : {3ULL, 7ULL, 10ULL, 31ULL, 63ULL}) {
    const int draws = 60000;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < draws; ++i) ++counts[rng.NextIndex(n)];
    const double expected = static_cast<double>(draws) / static_cast<double>(n);
    double chi2 = 0.0;
    for (int c : counts) {
      const double diff = c - expected;
      chi2 += diff * diff / expected;
    }
    // chi2(df) 99.9th percentiles for df = n-1 in {2,6,9,30,62}.
    const double cutoff = n == 3 ? 13.8 : n == 7 ? 22.5 : n == 10 ? 27.9
                          : n == 31 ? 59.7 : 103.4;
    EXPECT_LT(chi2, cutoff) << "bound " << n;
  }
}

TEST(Rng, NextIndexHandlesHugeBounds) {
  // Bounds near 2^63 exercise the rejection threshold path; results must
  // stay in range and not loop forever.
  Rng rng(47);
  const uint64_t n = (1ULL << 63) + 12345;
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextIndex(n), n);
}

// ---- counter-based StreamRng ----

TEST(StreamRng, SameTripleSameStream) {
  StreamRng a(1, 2, 3), b(1, 2, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(StreamRng, AnyKeyComponentChangesTheStream) {
  StreamRng base(1, 2, 3), seed(2, 2, 3), epoch(1, 3, 3), index(1, 2, 4);
  int eq_seed = 0, eq_epoch = 0, eq_index = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t v = base.NextU64();
    eq_seed += v == seed.NextU64() ? 1 : 0;
    eq_epoch += v == epoch.NextU64() ? 1 : 0;
    eq_index += v == index.NextU64() ? 1 : 0;
  }
  EXPECT_LT(eq_seed, 3);
  EXPECT_LT(eq_epoch, 3);
  EXPECT_LT(eq_index, 3);
}

TEST(StreamRng, DrawsAreCounterAddressable) {
  // Re-constructing the stream and skipping ahead reproduces any draw:
  // the stream is a pure function of (triple, draw index).
  StreamRng full(9, 1, 7);
  std::vector<uint64_t> vals(20);
  for (auto& v : vals) v = full.NextU64();
  for (size_t t = 0; t < vals.size(); ++t) {
    StreamRng replay(9, 1, 7);
    for (size_t skip = 0; skip < t; ++skip) replay.NextU64();
    EXPECT_EQ(replay.NextU64(), vals[t]) << "draw " << t;
  }
}

TEST(StreamRng, NextDoubleInUnitIntervalWithMeanHalf) {
  StreamRng rng(5, 0, 11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(StreamRng, NextIndexApproximatelyUniform) {
  StreamRng rng(7, 0, 13);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextIndex(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, 500.0);
  }
}

TEST(StreamRng, BernoulliEdgeCasesAndRate) {
  StreamRng rng(17, 0, 1);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-0.5));
  EXPECT_TRUE(rng.NextBernoulli(1.5));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(StreamRng, AdjacentSampleIndicesAreDecorrelated) {
  // First draws across consecutive sample indices — the exact pattern
  // the trainer uses (one stream per sample) — must look uniform.
  constexpr uint64_t kBuckets = 10;
  constexpr int kStreams = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int s = 0; s < kStreams; ++s) {
    StreamRng rng(123, 4, static_cast<uint64_t>(s));
    ++counts[rng.NextIndex(kBuckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kStreams / 10.0, 500.0);
  }
}

class RngSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedSweep, CopyForksStream) {
  Rng a(GetParam());
  a.NextU64();
  Rng b = a;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace bslrec
