#include "analysis/embedding_analysis.h"

#include <cmath>

#include "gtest/gtest.h"
#include "math/rng.h"

namespace bslrec {
namespace {

Matrix Blobs(size_t per_blob, size_t num_blobs, double spread,
             std::vector<uint32_t>& labels, uint64_t seed) {
  Rng rng(seed);
  Matrix points(per_blob * num_blobs, 8);
  labels.assign(points.rows(), 0);
  for (size_t b = 0; b < num_blobs; ++b) {
    std::vector<double> center(8);
    for (auto& c : center) c = rng.NextGaussian() * 5.0;
    for (size_t i = 0; i < per_blob; ++i) {
      const size_t row = b * per_blob + i;
      labels[row] = static_cast<uint32_t>(b);
      for (size_t k = 0; k < 8; ++k) {
        points.At(row, k) =
            static_cast<float>(center[k] + rng.NextGaussian() * spread);
      }
    }
  }
  return points;
}

TEST(Silhouette, TightClustersScoreHigh) {
  std::vector<uint32_t> labels;
  const Matrix points = Blobs(20, 3, 0.2, labels, 1);
  EXPECT_GT(SilhouetteScore(points, labels), 0.7);
}

TEST(Silhouette, RandomLabelsScoreNearZero) {
  std::vector<uint32_t> labels;
  Matrix points = Blobs(30, 2, 0.3, labels, 2);
  Rng rng(3);
  for (auto& l : labels) l = static_cast<uint32_t>(rng.NextIndex(2));
  EXPECT_LT(std::abs(SilhouetteScore(points, labels)), 0.25);
}

TEST(Silhouette, LooserClustersScoreLower) {
  std::vector<uint32_t> l1, l2;
  const Matrix tight = Blobs(15, 3, 0.2, l1, 4);
  const Matrix loose = Blobs(15, 3, 3.0, l2, 4);
  EXPECT_GT(SilhouetteScore(tight, l1), SilhouetteScore(loose, l2));
}

TEST(Alignment, ZeroForIdenticalEmbeddings) {
  Matrix points(4, 3);
  for (size_t r = 0; r < 4; ++r) points.At(r, 0) = 1.0f;
  const std::vector<uint32_t> labels = {0, 0, 0, 0};
  EXPECT_NEAR(AlignmentLoss(points, labels), 0.0, 1e-9);
}

TEST(Alignment, GrowsWithIntraClusterSpread) {
  std::vector<uint32_t> l1, l2;
  const Matrix tight = Blobs(15, 2, 0.1, l1, 5);
  const Matrix loose = Blobs(15, 2, 2.0, l2, 5);
  EXPECT_LT(AlignmentLoss(tight, l1), AlignmentLoss(loose, l2));
}

TEST(Uniformity, UniformSphereMoreNegativeThanCollapsed) {
  Rng rng(6);
  Matrix spread(100, 8);
  spread.InitGaussian(rng, 1.0f);
  Matrix collapsed(100, 8);
  for (size_t r = 0; r < 100; ++r) {
    collapsed.At(r, 0) = 1.0f + 0.001f * static_cast<float>(rng.NextDouble());
  }
  EXPECT_LT(UniformityLoss(spread), UniformityLoss(collapsed));
}

TEST(IntraInter, PerfectClustersHaveLowRatio) {
  std::vector<uint32_t> labels;
  const Matrix points = Blobs(15, 3, 0.1, labels, 7);
  EXPECT_LT(IntraInterRatio(points, labels), 0.5);
}

TEST(IntraInter, ShuffledLabelsApproachOne) {
  std::vector<uint32_t> labels;
  Matrix points = Blobs(25, 2, 0.2, labels, 8);
  Rng rng(9);
  for (auto& l : labels) l = static_cast<uint32_t>(rng.NextIndex(2));
  EXPECT_NEAR(IntraInterRatio(points, labels), 1.0, 0.15);
}

}  // namespace
}  // namespace bslrec
