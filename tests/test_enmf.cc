#include "train/enmf.h"

#include <cmath>

#include "data/synthetic.h"
#include "gtest/gtest.h"

namespace bslrec {
namespace {

SyntheticData EnmfData(uint64_t seed = 1) {
  SyntheticConfig c;
  c.num_users = 150;
  c.num_items = 120;
  c.num_clusters = 6;
  c.avg_items_per_user = 15.0;
  c.seed = seed;
  return GenerateSynthetic(c);
}

EnmfConfig FastConfig() {
  EnmfConfig cfg;
  cfg.epochs = 12;
  cfg.lr = 0.05;
  cfg.negative_weight = 0.05;
  cfg.eval_every = 4;
  cfg.seed = 3;
  return cfg;
}

TEST(EnmfTrainer, LossDecreasesOverEpochs) {
  const SyntheticData data = EnmfData();
  Rng rng(2);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  EnmfTrainer trainer(data.dataset, model, FastConfig());
  const double first = trainer.RunEpoch();
  double last = first;
  for (int e = 0; e < 10; ++e) last = trainer.RunEpoch();
  EXPECT_LT(last, first);
}

TEST(EnmfTrainer, TrainingImprovesRanking) {
  const SyntheticData data = EnmfData(5);
  Rng rng(4);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  const Evaluator eval(data.dataset, 20);
  model.Forward(rng);
  const double before = eval.Evaluate(model).ndcg;
  EnmfTrainer trainer(data.dataset, model, FastConfig());
  const TrainResult result = trainer.Train();
  EXPECT_GT(result.best.ndcg, before);
  EXPECT_EQ(result.history.size(), 12u);
}

TEST(EnmfTrainer, DeterministicGivenSeeds) {
  const SyntheticData data = EnmfData(7);
  const auto run = [&]() {
    Rng rng(6);
    MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8,
                  rng);
    EnmfConfig cfg = FastConfig();
    cfg.epochs = 4;
    EnmfTrainer trainer(data.dataset, model, cfg);
    return trainer.Train().best.ndcg;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(EnmfTrainer, NegativeWeightZeroCollapses) {
  // With w0 = 0 only positives matter: every score is pushed to 1 and the
  // epoch loss still decreases (sanity of the weighting path).
  const SyntheticData data = EnmfData(9);
  Rng rng(8);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  EnmfConfig cfg = FastConfig();
  cfg.negative_weight = 0.0;
  EnmfTrainer trainer(data.dataset, model, cfg);
  const double first = trainer.RunEpoch();
  double last = first;
  for (int e = 0; e < 6; ++e) last = trainer.RunEpoch();
  EXPECT_LT(last, first);
  EXPECT_TRUE(std::isfinite(last));
}

TEST(EnmfTrainer, ZeroEpochsReportsUntrainedMetrics) {
  const SyntheticData data = EnmfData(11);
  Rng rng(10);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  EnmfConfig cfg = FastConfig();
  cfg.epochs = 0;
  EnmfTrainer trainer(data.dataset, model, cfg);
  const TrainResult result = trainer.Train();
  EXPECT_GT(result.best.num_users, 0u);
  EXPECT_TRUE(result.history.empty());
}

}  // namespace
}  // namespace bslrec
