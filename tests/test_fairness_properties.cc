// Cross-module properties tying the DRO theory to measurable fairness:
// prediction-score concentration, exposure Gini, and the popularity
// correlation that SL's variance penalty is supposed to dampen.
#include <cmath>

#include "core/losses.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "math/stats.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace bslrec {
namespace {

struct TrainedModel {
  std::unique_ptr<MfModel> model;
  TopKMetrics metrics;
};

TrainedModel TrainWith(const Dataset& data, const LossFunction& loss) {
  Rng rng(31);
  auto model =
      std::make_unique<MfModel>(data.num_users(), data.num_items(), 16, rng);
  UniformNegativeSampler sampler(data);
  TrainConfig cfg;
  cfg.epochs = 12;
  cfg.num_negatives = 64;
  cfg.eval_every = 4;
  cfg.seed = 5;
  Trainer trainer(data, *model, loss, sampler, cfg);
  TrainedModel out;
  out.metrics = trainer.Train().best;
  Rng fwd(6);
  model->Forward(fwd);
  out.model = std::move(model);
  return out;
}

Dataset FairnessData() {
  SyntheticConfig c;
  c.num_users = 400;
  c.num_items = 500;
  c.num_clusters = 12;
  c.avg_items_per_user = 16.0;
  c.zipf_alpha = 0.8;
  c.popularity_gamma = 0.4;
  c.seed = 77;
  return GenerateSynthetic(c).dataset;
}

TEST(FairnessProperties, ExposureGiniIsWellDefinedAndNontrivial) {
  const Dataset data = FairnessData();
  const SoftmaxLoss sl(0.6);
  const TrainedModel tm = TrainWith(data, sl);
  const Evaluator eval(data, 20);
  const auto exposure = eval.ItemExposure(*tm.model);
  ASSERT_EQ(exposure.size(), data.num_items());
  const double gini = GiniCoefficient(exposure);
  // Recommendations concentrate (gini > 0) but not on a single item.
  EXPECT_GT(gini, 0.05);
  EXPECT_LT(gini, 0.999);
}

TEST(FairnessProperties, BceConcentratesExposureMoreThanSl) {
  // The pointwise loss without the variance penalty should spread its
  // recommendations less evenly across the catalog.
  const Dataset data = FairnessData();
  const SoftmaxLoss sl(0.6);
  const BceLoss bce;
  const Evaluator eval(data, 20);
  const double gini_sl =
      GiniCoefficient(eval.ItemExposure(*TrainWith(data, sl).model));
  const double gini_bce =
      GiniCoefficient(eval.ItemExposure(*TrainWith(data, bce).model));
  EXPECT_LT(gini_sl, gini_bce);
}

TEST(FairnessProperties, ScoresCorrelateWithPopularity) {
  // Sanity of the bias being studied at all: mean predicted score should
  // correlate positively with item popularity after training.
  const Dataset data = FairnessData();
  const SoftmaxLoss sl(0.6);
  const TrainedModel tm = TrainWith(data, sl);
  Rng rng(8);
  std::vector<double> mean_scores(data.num_items(), 0.0);
  // Average cosine over a user sample via the evaluator's scoring path.
  const Evaluator eval(data, 20);
  const auto exposure = eval.ItemExposure(*tm.model);
  std::vector<double> popularity(data.num_items());
  for (uint32_t i = 0; i < data.num_items(); ++i) {
    popularity[i] = data.item_popularity()[i];
  }
  EXPECT_GT(SpearmanCorrelation(exposure, popularity), 0.15);
}

}  // namespace
}  // namespace bslrec
