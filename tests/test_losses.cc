#include "core/losses.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "math/rng.h"
#include "test_util.h"

namespace bslrec {
namespace {

using ::bslrec::testing::CheckLossGradients;
using ::bslrec::testing::RandomScores;

// ---------------------------------------------------------------------------
// Gradient property sweep: every loss must match finite differences at
// random score configurations (the trainer relies on these gradients).
// ---------------------------------------------------------------------------

struct GradCase {
  LossKind kind;
  uint64_t seed;
  size_t num_negatives;
};

class LossGradientSweep : public ::testing::TestWithParam<GradCase> {};

TEST_P(LossGradientSweep, MatchesFiniteDifference) {
  const GradCase& c = GetParam();
  LossParams params;
  params.tau = 0.25;   // moderate tau keeps FD stable in float
  params.tau1 = 0.35;
  params.margin = 0.4;
  params.negative_weight = 1.5;
  const auto loss = CreateLoss(c.kind, params);
  Rng rng(c.seed);
  const float pos = 2.0f * static_cast<float>(rng.NextDouble()) - 1.0f;
  // Margin losses (CML/CCL) have kinks; nudge scores away from them.
  std::vector<float> negs = RandomScores(c.num_negatives, rng);
  CheckLossGradients(*loss, pos, negs, 5e-3);
}

std::vector<GradCase> MakeGradCases() {
  std::vector<GradCase> cases;
  const LossKind kinds[] = {
      LossKind::kMse,     LossKind::kBce,
      LossKind::kBpr,     LossKind::kSoftmax,
      LossKind::kFullSoftmax,
      LossKind::kBsl,     LossKind::kCml,
      LossKind::kCcl,     LossKind::kSoftmaxNoVariance,
      LossKind::kVarianceAugmentedMean,
  };
  for (LossKind k : kinds) {
    for (uint64_t seed : {11ULL, 22ULL, 33ULL}) {
      for (size_t n : {1UL, 8UL, 32UL}) {
        cases.push_back({k, seed, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradientSweep,
                         ::testing::ValuesIn(MakeGradCases()));

// ---------------------------------------------------------------------------
// Structural identities.
// ---------------------------------------------------------------------------

TEST(SoftmaxLossTest, EqualsBslWithEqualTemperatures) {
  const double tau = 0.12;
  SoftmaxLoss sl(tau);
  BilateralSoftmaxLoss bsl(tau, tau);
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const float pos = 2.0f * static_cast<float>(rng.NextDouble()) - 1.0f;
    const auto negs = RandomScores(16, rng);
    std::vector<float> g1(16), g2(16);
    float dp1 = 0.0f, dp2 = 0.0f;
    const double l1 = sl.Compute(pos, negs, &dp1, g1);
    const double l2 = bsl.Compute(pos, negs, &dp2, g2);
    EXPECT_NEAR(l1, l2, 1e-9);
    EXPECT_NEAR(dp1, dp2, 1e-9);
    for (size_t j = 0; j < 16; ++j) EXPECT_NEAR(g1[j], g2[j], 1e-7);
  }
}

TEST(SoftmaxLossTest, DecreasesInPositiveScore) {
  SoftmaxLoss sl(0.1);
  const std::vector<float> negs = {0.1f, -0.2f, 0.3f};
  std::vector<float> g(3);
  float dp = 0.0f;
  const double hi = sl.Compute(0.9f, negs, &dp, g);
  const double lo = sl.Compute(0.1f, negs, &dp, g);
  EXPECT_LT(hi, lo);
  EXPECT_LT(dp, 0.0f);  // pushing the positive up always helps
}

TEST(SoftmaxLossTest, NegativeGradientsAreSoftmaxWeights) {
  // d L / d f-_j = softmax_j(f-/tau) / tau: positive, sum to 1/tau, and
  // concentrated on the hardest (highest-scoring) negative.
  const double tau = 0.1;
  SoftmaxLoss sl(tau);
  const std::vector<float> negs = {0.5f, -0.5f, 0.0f, 0.45f};
  std::vector<float> g(negs.size());
  float dp = 0.0f;
  sl.Compute(0.2f, negs, &dp, g);
  double sum = 0.0;
  for (float x : g) {
    EXPECT_GT(x, 0.0f);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0 / tau, 1e-4);
  EXPECT_GT(g[0], g[3]);  // 0.5 harder than 0.45
  EXPECT_GT(g[3], g[2]);
  EXPECT_GT(g[2], g[1]);
}

TEST(SoftmaxLossTest, SmallerTauSharpensHardNegativeFocus) {
  const std::vector<float> negs = {0.5f, 0.0f, -0.5f};
  std::vector<float> g_small(3), g_large(3);
  float dp = 0.0f;
  SoftmaxLoss(0.05).Compute(0.0f, negs, &dp, g_small);
  SoftmaxLoss(0.5).Compute(0.0f, negs, &dp, g_large);
  // Normalized weight mass on the hardest negative.
  const auto top_mass = [](const std::vector<float>& g) {
    double sum = 0.0;
    for (float x : g) sum += x;
    return g[0] / sum;
  };
  EXPECT_GT(top_mass(g_small), top_mass(g_large));
}

TEST(FullSoftmaxTest, IsSoftplusOfDecoupledLoss) {
  // With the positive kept in the denominator:
  //   L_full = log(1 + exp(L_SL))  where  L_SL = -f+/tau + lse(f-/tau).
  // Exact identity — footnote 1's two variants differ by a softplus.
  const double tau = 0.3;
  SoftmaxLoss sl(tau);
  FullSoftmaxLoss full(tau);
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const float pos = 2.0f * static_cast<float>(rng.NextDouble()) - 1.0f;
    const auto negs = RandomScores(12, rng);
    std::vector<float> g(12);
    float dp = 0.0f;
    const double l_sl = sl.Compute(pos, negs, &dp, g);
    const double l_full = full.Compute(pos, negs, &dp, g);
    EXPECT_NEAR(l_full, std::log1p(std::exp(l_sl)), 1e-6);
  }
}

TEST(FullSoftmaxTest, PositiveGradientBoundedByDecoupled) {
  // p_pos in (0,1) means |dL_full/df+| = (1-p_pos)/tau < 1/tau = |dL_SL/df+|.
  const double tau = 0.2;
  SoftmaxLoss sl(tau);
  FullSoftmaxLoss full(tau);
  const std::vector<float> negs = {0.1f, -0.4f, 0.3f};
  std::vector<float> g(3);
  float dp_sl = 0.0f, dp_full = 0.0f;
  sl.Compute(0.5f, negs, &dp_sl, g);
  full.Compute(0.5f, negs, &dp_full, g);
  EXPECT_LT(dp_full, 0.0f);
  EXPECT_GT(dp_full, dp_sl);  // both negative; full is weaker pull
}

TEST(BslLossTest, RatioScalesNegativePart) {
  // L_BSL = -f+/tau1 + (tau1/tau2) * logsumexp(f-/tau2): doubling tau1
  // halves the positive pull and doubles the negative coefficient.
  const std::vector<float> negs = {0.2f, -0.1f};
  std::vector<float> g(2);
  float dp1 = 0.0f, dp2 = 0.0f;
  BilateralSoftmaxLoss(0.1, 0.2).Compute(0.3f, negs, &dp1, g);
  BilateralSoftmaxLoss(0.2, 0.2).Compute(0.3f, negs, &dp2, g);
  EXPECT_NEAR(dp1, 2.0 * dp2, 1e-5);
}

TEST(BslLossTest, AccessorsReturnConfiguredTemperatures) {
  BilateralSoftmaxLoss bsl(0.15, 0.25);
  EXPECT_DOUBLE_EQ(bsl.tau1(), 0.15);
  EXPECT_DOUBLE_EQ(bsl.tau2(), 0.25);
  SoftmaxLoss sl(0.3);
  EXPECT_DOUBLE_EQ(sl.tau(), 0.3);
}

TEST(GroupedBslTest, GradientsMatchFiniteDifference) {
  GroupedBslLoss loss(0.3, 0.2);
  Rng rng(5);
  const auto pos = RandomScores(5, rng);
  const auto neg = RandomScores(12, rng);
  std::vector<float> d_pos(5), d_neg(12);
  loss.Compute(pos, neg, d_pos, d_neg);

  const float eps = 1e-3f;
  std::vector<float> dp(5), dn(12);
  for (size_t k = 0; k < pos.size(); ++k) {
    auto p = pos;
    p[k] += eps;
    const double lp = loss.Compute(p, neg, dp, dn);
    p[k] -= 2 * eps;
    const double lm = loss.Compute(p, neg, dp, dn);
    EXPECT_NEAR((lp - lm) / (2 * eps), d_pos[k], 5e-3) << "pos " << k;
  }
  for (size_t k = 0; k < neg.size(); ++k) {
    auto n = neg;
    n[k] += eps;
    const double lp = loss.Compute(pos, n, dp, dn);
    n[k] -= 2 * eps;
    const double lm = loss.Compute(pos, n, dp, dn);
    EXPECT_NEAR((lp - lm) / (2 * eps), d_neg[k], 5e-3) << "neg " << k;
  }
}

TEST(GroupedBslTest, DownweightsLowScoringPositives) {
  // The Log-Expectation-Exp positive part concentrates gradient on
  // high-scoring (confident) positives, i.e. suspected-noisy positives
  // with low scores receive less pull — the bilateral denoising story.
  GroupedBslLoss loss(0.1, 0.1);
  const std::vector<float> pos = {0.8f, -0.4f};  // confident vs suspicious
  const std::vector<float> neg = {0.0f, 0.1f};
  std::vector<float> d_pos(2), d_neg(2);
  loss.Compute(pos, neg, d_pos, d_neg);
  EXPECT_LT(d_pos[0], 0.0f);
  EXPECT_LT(d_pos[1], 0.0f);
  EXPECT_GT(std::abs(d_pos[0]), 10.0f * std::abs(d_pos[1]));
}

TEST(BprLossTest, SymmetricScoresGiveLogTwo) {
  BprLoss bpr;
  const std::vector<float> negs = {0.3f};
  std::vector<float> g(1);
  float dp = 0.0f;
  const double l = bpr.Compute(0.3f, negs, &dp, g);
  EXPECT_NEAR(l, std::log(2.0), 1e-6);
}

TEST(BprLossTest, PositiveAndNegativeGradientsMirror) {
  BprLoss bpr;
  const std::vector<float> negs = {0.1f, -0.6f};
  std::vector<float> g(2);
  float dp = 0.0f;
  bpr.Compute(0.4f, negs, &dp, g);
  EXPECT_NEAR(dp, -(g[0] + g[1]), 1e-6);
}

TEST(MseLossTest, PerfectScoresGiveZeroLoss) {
  MseLoss mse(1.0);
  const std::vector<float> negs = {0.0f, 0.0f};
  std::vector<float> g(2);
  float dp = 0.0f;
  EXPECT_NEAR(mse.Compute(1.0f, negs, &dp, g), 0.0, 1e-9);
  EXPECT_NEAR(dp, 0.0, 1e-6);
}

TEST(BceLossTest, LossIsPositiveAndFiniteAtExtremes) {
  BceLoss bce(1.0);
  const std::vector<float> negs = {1.0f, -1.0f};
  std::vector<float> g(2);
  float dp = 0.0f;
  const double l = bce.Compute(-1.0f, negs, &dp, g);
  EXPECT_GT(l, 0.0);
  EXPECT_TRUE(std::isfinite(l));
}

TEST(CmlLossTest, InactiveHingeHasZeroGradient) {
  CmlLoss cml(0.5);
  // margin - 2*pos + 2*neg = 0.5 - 1.8 + 0.2 < 0 -> inactive.
  const std::vector<float> negs = {0.1f};
  std::vector<float> g(1);
  float dp = 0.0f;
  const double l = cml.Compute(0.9f, negs, &dp, g);
  EXPECT_DOUBLE_EQ(l, 0.0);
  EXPECT_FLOAT_EQ(dp, 0.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(CclLossTest, OnlyHardNegativesContribute) {
  CclLoss ccl(/*margin=*/0.3, /*negative_weight=*/2.0);
  const std::vector<float> negs = {0.5f, 0.1f};  // only first above margin
  std::vector<float> g(2);
  float dp = 0.0f;
  const double l = ccl.Compute(0.7f, negs, &dp, g);
  EXPECT_GT(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 0.0f);
  EXPECT_NEAR(l, (1.0 - 0.7) + 2.0 * (0.5 - 0.3) / 2.0, 1e-6);
}

TEST(VarianceLossTest, NoVarianceLossIgnoresSpread) {
  // Mean-field loss must be identical for two negative sets with equal
  // mean but different variance; SL must not be.
  SoftmaxNoVarianceLoss mean_field(0.1);
  SoftmaxLoss sl(0.1);
  const std::vector<float> tight = {0.1f, 0.1f, 0.1f, 0.1f};
  const std::vector<float> spread = {0.4f, -0.2f, 0.3f, -0.1f};  // mean 0.1
  std::vector<float> g(4);
  float dp = 0.0f;
  EXPECT_NEAR(mean_field.Compute(0.5f, tight, &dp, g),
              mean_field.Compute(0.5f, spread, &dp, g), 1e-6);
  EXPECT_LT(sl.Compute(0.5f, tight, &dp, g),
            sl.Compute(0.5f, spread, &dp, g));
}

TEST(VarianceLossTest, ExplicitVariancePenaltyApproximatesSl) {
  // Lemma 2: SL == mean + Var/(2 tau) + O(1/tau^2); at large tau the
  // explicit surrogate converges to SL.
  Rng rng(6);
  const auto negs = RandomScores(64, rng);
  std::vector<float> g(64);
  float dp = 0.0f;
  for (double tau : {1.0, 2.0, 4.0}) {
    SoftmaxLoss sl(tau);
    VarianceAugmentedMeanLoss approx(tau);
    const double l_sl = sl.Compute(0.0f, negs, &dp, g);
    const double l_ap = approx.Compute(0.0f, negs, &dp, g);
    // SL carries a constant log-N offset (sum vs mean inside the log);
    // after removing it the residual shrinks like tau^-2.
    const double offset = std::log(static_cast<double>(negs.size()));
    EXPECT_NEAR(l_sl - offset, l_ap, 0.6 / (tau * tau)) << "tau=" << tau;
  }
}

TEST(LossRegistry, CreateParsesAndNamesRoundTrip) {
  const LossKind kinds[] = {
      LossKind::kMse,     LossKind::kBce,
      LossKind::kBpr,     LossKind::kSoftmax,
      LossKind::kBsl,     LossKind::kCml,
      LossKind::kCcl,     LossKind::kSoftmaxNoVariance,
      LossKind::kVarianceAugmentedMean,
  };
  for (LossKind k : kinds) {
    const auto loss = CreateLoss(k, LossParams{});
    ASSERT_NE(loss, nullptr);
    EXPECT_EQ(loss->name(), LossKindName(k));
    const auto parsed = ParseLossKind(LossKindName(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  // Kinds added after the original set.
  const auto full = CreateLoss(LossKind::kFullSoftmax, LossParams{});
  EXPECT_EQ(full->name(), "SL-full");
  EXPECT_EQ(ParseLossKind("SL-full"), LossKind::kFullSoftmax);
  EXPECT_FALSE(ParseLossKind("nope").has_value());
}

TEST(LossRegistry, BslUsesTau1AndTau2) {
  LossParams p;
  p.tau = 0.2;   // tau2
  p.tau1 = 0.1;
  const auto loss = CreateLoss(LossKind::kBsl, p);
  const auto* bsl = dynamic_cast<const BilateralSoftmaxLoss*>(loss.get());
  ASSERT_NE(bsl, nullptr);
  EXPECT_DOUBLE_EQ(bsl->tau1(), 0.1);
  EXPECT_DOUBLE_EQ(bsl->tau2(), 0.2);
}

}  // namespace
}  // namespace bslrec
