// Loopback tests for the epoll transport (net_server.h): bytewise
// response identity against the synchronous path across concurrent
// clients, pipelined per-connection ordering, malformed-line handling,
// overload shedding reconciled against FrontEndStats, bounded input
// memory, and drain-on-Stop.
#include "serve/net_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "math/rng.h"
#include "models/mf.h"
#include "serve/fault_injector.h"
#include "serve/inference_service.h"
#include "serve/wire.h"
#include "test_util.h"

namespace bslrec {
namespace {

using serve::DegradeMode;
using serve::ErrorCode;
using serve::FaultAction;
using serve::FaultRule;
using serve::FrontEndConfig;
using serve::InferenceService;
using serve::NetServer;
using serve::NetServerConfig;
using serve::OverflowPolicy;
using serve::ScheduledFaultInjector;
using serve::ServingFrontEnd;
using serve::TopKRequest;

Dataset MediumDataset(uint64_t seed = 11) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 90;
  cfg.num_clusters = 5;
  cfg.avg_items_per_user = 10.0;
  cfg.seed = seed;
  return GenerateSynthetic(cfg).dataset;
}

std::unique_ptr<MfModel> MakeModel(const Dataset& d, uint64_t seed,
                                   size_t dim = 8) {
  Rng rng(seed);
  auto model = std::make_unique<MfModel>(d.num_users(), d.num_items(), dim,
                                         rng);
  model->Forward(rng);
  return model;
}

FrontEndConfig Config(size_t max_batch = 8, uint32_t flush_us = 200,
                      size_t threads = 2) {
  FrontEndConfig cfg;
  cfg.max_batch = max_batch;
  cfg.flush_deadline_us = flush_us;
  cfg.serve.max_k = 20;
  cfg.serve.items_per_shard = 16;
  cfg.serve.runtime.num_threads = threads;
  return cfg;
}

// A blocking loopback client. Reads are line-buffered with a poll()
// timeout so a wedged server fails the test instead of hanging it.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& text) {
    size_t off = 0;
    while (off < text.size()) {
      const ssize_t n =
          ::send(fd_, text.data() + off, text.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads one '\n'-terminated line (newline stripped). False on EOF,
  // error, or timeout.
  bool ReadLine(std::string* line, int timeout_ms = 10000) {
    for (;;) {
      const size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr <= 0) return false;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  // True when the server has closed the connection (EOF with no
  // further bytes beyond what ReadLine already consumed).
  bool ReadEof(int timeout_ms = 10000) {
    if (!buf_.empty()) return false;
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
    char chunk[64];
    return ::recv(fd_, chunk, sizeof(chunk), 0) == 0;
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string WireLine(uint32_t user, uint32_t k, const std::string& id) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "TOPK %u %u ID=%s\n", user, k, id.c_str());
  return buf;
}

TopKRequest Req(uint32_t user, uint32_t k, bool filter_seen = true) {
  TopKRequest req;
  req.user = user;
  req.k = k;
  req.filter_seen = filter_seen;
  return req;
}

// The sync reference for a request served off the initial snapshot:
// seq=1, no brownout.
std::string ExpectedOk(InferenceService& sync, const TopKRequest& req,
                       const std::string& id) {
  return serve::wire::FormatResponse(id, DegradeMode::kNone, /*seq=*/1,
                                     sync.Handle(req));
}

// N clients, each pipelining a deterministic request stream; every
// response must be bytewise identical to the synchronous service and
// arrive in request order (the per-connection ordering contract).
TEST(NetServer, ResponsesBitIdenticalToSyncAcrossClients) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 3);
  const FrontEndConfig cfg = Config(/*max_batch=*/4, /*flush_us=*/100);
  InferenceService sync(d, *model, cfg.serve);
  ServingFrontEnd frontend(d, *model, cfg);

  NetServerConfig net;
  net.io_threads = 2;
  NetServer server(frontend, net);
  ASSERT_TRUE(server.Start()) << server.last_error();

  constexpr size_t kClients = 4;
  constexpr size_t kRequests = 25;
  // The sync reference is computed up front on this thread — the
  // client threads only do socket I/O and string compares.
  std::vector<std::string> batches(kClients);
  std::vector<std::vector<std::string>> expected(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    Rng rng(100 + c);
    for (size_t i = 0; i < kRequests; ++i) {
      const auto user = static_cast<uint32_t>(rng.NextIndex(d.num_users()));
      const auto k = 1 + static_cast<uint32_t>(rng.NextIndex(20));
      char id[32];
      std::snprintf(id, sizeof(id), "c%zur%zu", c, i);
      batches[c] += WireLine(user, k, id);
      expected[c].push_back(ExpectedOk(sync, Req(user, k), id));
    }
  }
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server.port());
      ASSERT_TRUE(client.connected());
      ASSERT_TRUE(client.Send(batches[c]));
      std::string line;
      for (size_t i = 0; i < kRequests; ++i) {
        ASSERT_TRUE(client.ReadLine(&line)) << "client " << c << " line " << i;
        EXPECT_EQ(line, expected[c][i]) << "client " << c << " line " << i;
      }
    });
  }
  for (auto& t : threads) t.join();

  server.Stop();
  const NetServer::Stats st = server.stats();
  EXPECT_EQ(st.requests, kClients * kRequests);
  EXPECT_EQ(st.responses_ok, kClients * kRequests);
  EXPECT_EQ(st.responses_err, 0u);
  EXPECT_EQ(st.bad_requests, 0u);
}

// The socket accepts the legacy CLI grammar too — one grammar, two
// transports. Legacy lines carry no ID, so responses echo "-", and a
// missing k falls back to NetServerConfig::default_k.
TEST(NetServer, LegacyCliFormSpeaksTheSameGrammar) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 5);
  const FrontEndConfig cfg = Config();
  InferenceService sync(d, *model, cfg.serve);
  ServingFrontEnd frontend(d, *model, cfg);

  NetServerConfig net;
  net.default_k = 7;
  NetServer server(frontend, net);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("3\n12 5\n9 4 all\n# comment\n\n8 2\n"));

  const std::vector<std::string> expected = {
      ExpectedOk(sync, Req(3, 7), "-"),
      ExpectedOk(sync, Req(12, 5), "-"),
      ExpectedOk(sync, Req(9, 4, /*filter_seen=*/false), "-"),
      ExpectedOk(sync, Req(8, 2), "-"),
  };
  std::string line;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(client.ReadLine(&line)) << "line " << i;
    EXPECT_EQ(line, expected[i]) << "line " << i;
  }
  server.Stop();
  // Comments and blank lines produce no response and are not counted
  // as request lines.
  EXPECT_EQ(server.stats().lines, 4u);
}

// A complete malformed line gets its ERR BAD_REQUEST response in
// order and the connection stays usable.
TEST(NetServer, MalformedLinesAnswerBadRequestAndConnectionSurvives) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 7);
  const FrontEndConfig cfg = Config();
  InferenceService sync(d, *model, cfg.serve);
  ServingFrontEnd frontend(d, *model, cfg);
  NetServer server(frontend);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("banana\nTOPK 9999 5 ID=z\nTOPK 2 3 ID=good\n"));

  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_TRUE(line.starts_with("ERR - BAD_REQUEST ")) << line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_TRUE(line.starts_with("ERR z BAD_REQUEST ")) << line;
  serve::wire::ParsedResponse parsed;
  ASSERT_TRUE(serve::wire::ParseResponse(line, &parsed));
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.status.code, ErrorCode::kBadRequest);
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, ExpectedOk(sync, Req(2, 3), "good"));

  server.Stop();
  const NetServer::Stats st = server.stats();
  EXPECT_EQ(st.bad_requests, 2u);
  EXPECT_EQ(st.requests, 1u);
}

// A connection that exceeds max_line_bytes without a newline gets one
// BAD_REQUEST line and is hung up (bounded input memory).
TEST(NetServer, OversizedUnterminatedLineIsAnsweredAndHungUp) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 9);
  ServingFrontEnd frontend(d, *model, Config());
  NetServerConfig net;
  net.max_line_bytes = 64;
  NetServer server(frontend, net);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(std::string(200, 'a')));  // no newline

  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_TRUE(line.starts_with("ERR - BAD_REQUEST ")) << line;
  EXPECT_TRUE(client.ReadEof());
  server.Stop();
}

// Overload: a stalled dispatcher in front of a tiny bounded queue
// forces kShedNewest sheds. Every shed arrives as a well-formed
// `ERR _ OVERLOAD retry_after_us=<n>` with the configured backoff, and
// the wire-level OK/OVERLOAD counts reconcile exactly with the front
// door's admission accounting identity.
TEST(NetServer, OverloadShedsReconcileWithFrontEndStats) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 13);
  FrontEndConfig cfg = Config(/*max_batch=*/2, /*flush_us=*/100);
  cfg.max_queue_depth = 2;
  cfg.overflow = OverflowPolicy::kShedNewest;
  cfg.shed_retry_us = 750;
  // Wedge the dispatcher on its first wakeup: the queue fills to
  // max_queue_depth while every further submit sheds.
  cfg.fault_injector = std::make_shared<ScheduledFaultInjector>(
      std::vector<FaultRule>{{FaultAction::Kind::kStall, /*first=*/0,
                              /*period=*/1, /*count=*/1,
                              /*micros=*/150000}});
  ServingFrontEnd frontend(d, *model, cfg);
  NetServer server(frontend);
  ASSERT_TRUE(server.Start()) << server.last_error();

  constexpr size_t kClients = 3;
  constexpr size_t kRequests = 40;
  std::atomic<uint64_t> ok_seen{0};
  std::atomic<uint64_t> overload_seen{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(server.port());
      ASSERT_TRUE(client.connected());
      std::string batch;
      for (size_t i = 0; i < kRequests; ++i) {
        char id[32];
        std::snprintf(id, sizeof(id), "s%zu", i);
        batch += WireLine(static_cast<uint32_t>((c * 17 + i) % d.num_users()),
                          5, id);
      }
      ASSERT_TRUE(client.Send(batch));
      std::string line;
      for (size_t i = 0; i < kRequests; ++i) {
        ASSERT_TRUE(client.ReadLine(&line)) << "client " << c << " line " << i;
        serve::wire::ParsedResponse parsed;
        ASSERT_TRUE(serve::wire::ParseResponse(line, &parsed)) << line;
        if (parsed.ok) {
          ok_seen.fetch_add(1);
        } else {
          ASSERT_EQ(parsed.status.code, ErrorCode::kOverload) << line;
          EXPECT_EQ(parsed.status.retry_after_us, 750u) << line;
          overload_seen.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  server.Stop();

  const serve::FrontEndStats st = frontend.stats();
  EXPECT_EQ(ok_seen + overload_seen, kClients * kRequests);
  EXPECT_GT(overload_seen.load(), 0u) << "no sheds — queue never filled";
  EXPECT_EQ(st.submitted, kClients * kRequests);
  EXPECT_EQ(overload_seen.load(), st.shed_newest + st.shed_oldest);
  // The admission accounting identity (serving_frontend.h).
  EXPECT_EQ(st.submitted, st.requests + st.shed_newest + st.shed_oldest +
                              st.expired_admission);
  EXPECT_EQ(server.stats().responses_err, overload_seen.load());
}

// Stop() drains: every request already submitted is answered and
// flushed before the connection closes.
TEST(NetServer, StopDrainsSubmittedRequests) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 21);
  // A wide batch and a lazy flush deadline keep requests queued so
  // Stop() has something real to drain.
  const FrontEndConfig cfg = Config(/*max_batch=*/64, /*flush_us=*/100000);
  InferenceService sync(d, *model, cfg.serve);
  ServingFrontEnd frontend(d, *model, cfg);
  NetServer server(frontend);
  ASSERT_TRUE(server.Start()) << server.last_error();

  Client client(server.port());
  ASSERT_TRUE(client.connected());
  constexpr size_t kRequests = 12;
  std::string batch;
  std::vector<std::string> expected;
  for (size_t i = 0; i < kRequests; ++i) {
    const auto user = static_cast<uint32_t>(i % d.num_users());
    char buf[32];
    std::snprintf(buf, sizeof(buf), "d%zu", i);
    const std::string id = buf;
    batch += WireLine(user, 6, id);
    expected.push_back(ExpectedOk(sync, Req(user, 6), id));
  }
  ASSERT_TRUE(client.Send(batch));
  // Wait until the io loop has submitted everything, then stop.
  while (frontend.stats().submitted < kRequests) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();

  std::string line;
  for (size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.ReadLine(&line)) << "line " << i;
    EXPECT_EQ(line, expected[i]) << "line " << i;
  }
  EXPECT_TRUE(client.ReadEof());
  EXPECT_EQ(server.stats().responses_ok, kRequests);
}

// Start() reports socket failures by value: binding a port that is
// already taken fails with last_error() set, and the failed server
// tears down cleanly.
TEST(NetServer, StartReportsBindFailureByValue) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 23);
  ServingFrontEnd frontend(d, *model, Config());

  NetServer first(frontend);
  ASSERT_TRUE(first.Start()) << first.last_error();

  NetServerConfig taken;
  taken.port = first.port();
  NetServer second(frontend, taken);
  EXPECT_FALSE(second.Start());
  EXPECT_FALSE(second.last_error().empty());
  first.Stop();
}

}  // namespace
}  // namespace bslrec
