// Tests for the shared wire grammar (serve/wire.h): request parsing
// (both the TOPK wire form and the legacy CLI form), response
// formatting and round-tripping, the ErrorCode surface, and a
// deterministic fuzz sweep over malformed / partial / oversized lines.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "math/rng.h"
#include "serve/serving_frontend.h"
#include "serve/wire.h"

namespace bslrec::serve {
namespace {

wire::ParseOptions Options(uint32_t num_users = 100,
                           uint32_t default_k = 10) {
  wire::ParseOptions opts;
  opts.num_users = num_users;
  opts.default_k = default_k;
  return opts;
}

// ---- legacy CLI form --------------------------------------------------

TEST(WireLegacyParse, DefaultsApply) {
  wire::ParsedRequest req;
  ASSERT_TRUE(wire::ParseRequest("7", Options(), &req).ok());
  EXPECT_EQ(req.topk.user, 7u);
  EXPECT_EQ(req.topk.k, 10u);
  EXPECT_TRUE(req.topk.filter_seen);
  EXPECT_EQ(req.topk.lane, RequestLane::kInteractive);
  EXPECT_EQ(req.topk.deadline_us, 0u);
  EXPECT_EQ(req.id, "-");
}

TEST(WireLegacyParse, ExplicitKAndAll) {
  wire::ParsedRequest req;
  ASSERT_TRUE(wire::ParseRequest("3 25 all", Options(), &req).ok());
  EXPECT_EQ(req.topk.user, 3u);
  EXPECT_EQ(req.topk.k, 25u);
  EXPECT_FALSE(req.topk.filter_seen);
}

TEST(WireLegacyParse, LastKWins) {
  // Historical semantics: every numeric token overrides k.
  wire::ParsedRequest req;
  ASSERT_TRUE(wire::ParseRequest("3 25 7", Options(), &req).ok());
  EXPECT_EQ(req.topk.k, 7u);
}

TEST(WireLegacyParse, AtollPartialParseAccepted) {
  // atoll("12abc") == 12 — the historical parser accepted it; the
  // shared grammar must not change stdin-mode behavior.
  wire::ParsedRequest req;
  ASSERT_TRUE(wire::ParseRequest("3 12abc", Options(), &req).ok());
  EXPECT_EQ(req.topk.k, 12u);
}

TEST(WireLegacyParse, LeadingWhitespaceOk) {
  wire::ParsedRequest req;
  ASSERT_TRUE(wire::ParseRequest("  \t5 3", Options(), &req).ok());
  EXPECT_EQ(req.topk.user, 5u);
  EXPECT_EQ(req.topk.k, 3u);
}

TEST(WireLegacyParse, BadUserDetailMatchesHistoricalMessage) {
  wire::ParsedRequest req;
  const ServeStatus st = wire::ParseRequest("100", Options(100), &req);
  EXPECT_EQ(st.code, ErrorCode::kBadRequest);
  EXPECT_EQ(st.detail, "user must be in [0, 100)");
  EXPECT_EQ(wire::ParseRequest("-1", Options(), &req).code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(wire::ParseRequest("banana", Options(), &req).code,
            ErrorCode::kBadRequest);
}

TEST(WireLegacyParse, BadKDetailMatchesHistoricalMessage) {
  wire::ParsedRequest req;
  const ServeStatus st = wire::ParseRequest("3 0", Options(), &req);
  EXPECT_EQ(st.code, ErrorCode::kBadRequest);
  EXPECT_EQ(st.detail, "k must be in [1, 4294967295]");
  EXPECT_EQ(wire::ParseRequest("3 xyz", Options(), &req).code,
            ErrorCode::kBadRequest);
  EXPECT_EQ(wire::ParseRequest("3 -4", Options(), &req).code,
            ErrorCode::kBadRequest);
}

// ---- wire form --------------------------------------------------------

TEST(WireParse, FullOptionSet) {
  wire::ParsedRequest req;
  ASSERT_TRUE(wire::ParseRequest(
                  "TOPK 12 20 FILTER=none LANE=bulk DEADLINE_US=5000 ID=a-1",
                  Options(), &req)
                  .ok());
  EXPECT_EQ(req.topk.user, 12u);
  EXPECT_EQ(req.topk.k, 20u);
  EXPECT_FALSE(req.topk.filter_seen);
  EXPECT_EQ(req.topk.lane, RequestLane::kBulk);
  EXPECT_EQ(req.topk.deadline_us, 5000u);
  EXPECT_EQ(req.id, "a-1");
}

TEST(WireParse, MinimalForm) {
  wire::ParsedRequest req;
  ASSERT_TRUE(wire::ParseRequest("TOPK 1 5", Options(), &req).ok());
  EXPECT_EQ(req.topk.user, 1u);
  EXPECT_EQ(req.topk.k, 5u);
  EXPECT_TRUE(req.topk.filter_seen);
  EXPECT_EQ(req.id, "-");
}

TEST(WireParse, EveryMalformedFieldIsBadRequest) {
  wire::ParsedRequest req;
  const auto code = [&](const std::string& line) {
    return wire::ParseRequest(line, Options(), &req).code;
  };
  EXPECT_EQ(code("TOPK"), ErrorCode::kBadRequest);
  EXPECT_EQ(code("TOPK 1"), ErrorCode::kBadRequest);
  EXPECT_EQ(code("TOPK 100 5"), ErrorCode::kBadRequest);  // user range
  EXPECT_EQ(code("TOPK x 5"), ErrorCode::kBadRequest);
  EXPECT_EQ(code("TOPK 1 0"), ErrorCode::kBadRequest);
  EXPECT_EQ(code("TOPK 1 5x"), ErrorCode::kBadRequest);  // strict, not atoll
  EXPECT_EQ(code("TOPK 1 5 FILTER=maybe"), ErrorCode::kBadRequest);
  EXPECT_EQ(code("TOPK 1 5 LANE=fast"), ErrorCode::kBadRequest);
  EXPECT_EQ(code("TOPK 1 5 DEADLINE_US=soon"), ErrorCode::kBadRequest);
  EXPECT_EQ(code("TOPK 1 5 ID="), ErrorCode::kBadRequest);
  EXPECT_EQ(code("TOPK 1 5 COLOR=red"), ErrorCode::kBadRequest);
}

TEST(WireParse, FailedParseStillCarriesId) {
  wire::ParsedRequest req;
  const ServeStatus st =
      wire::ParseRequest("TOPK 999 5 ID=req7", Options(100), &req);
  EXPECT_EQ(st.code, ErrorCode::kBadRequest);
  EXPECT_EQ(req.id, "req7");
}

TEST(WireParse, OversizedLineIsBadRequest) {
  wire::ParseOptions opts = Options();
  opts.max_line_bytes = 32;
  wire::ParsedRequest req;
  const std::string line = "TOPK 1 5 ID=" + std::string(64, 'x');
  EXPECT_EQ(wire::ParseRequest(line, opts, &req).code,
            ErrorCode::kBadRequest);
}

TEST(WireParse, IgnorableLines) {
  EXPECT_TRUE(wire::IsIgnorableLine(""));
  EXPECT_TRUE(wire::IsIgnorableLine("   \t"));
  EXPECT_TRUE(wire::IsIgnorableLine("# comment"));
  EXPECT_TRUE(wire::IsIgnorableLine("  # indented comment"));
  EXPECT_FALSE(wire::IsIgnorableLine("3 10"));
  EXPECT_FALSE(wire::IsIgnorableLine("TOPK 3 10"));
}

// ---- response formatting / round trip ---------------------------------

TEST(WireFormat, OkLineRoundTrips) {
  TopKResponse topk;
  topk.items = {17, 4, 99};
  topk.scores = {0.812345f, 0.5f, -0.25f};
  const std::string line =
      wire::FormatResponse("a1", DegradeMode::kIvf, 7, topk);
  EXPECT_EQ(line, "OK a1 ivf seq=7 17:0.812345 4:0.500000 99:-0.250000");
  wire::ParsedResponse parsed;
  ASSERT_TRUE(wire::ParseResponse(line, &parsed));
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.id, "a1");
  EXPECT_EQ(parsed.degrade_mode, DegradeMode::kIvf);
  EXPECT_EQ(parsed.snapshot_seq, 7u);
  EXPECT_EQ(parsed.topk.items, topk.items);
  // Scores survive the %.6f text round trip re-rendered identically.
  EXPECT_EQ(wire::FormatResponse("a1", DegradeMode::kIvf, 7, parsed.topk),
            line);
}

TEST(WireFormat, EmptyRankingOkLine) {
  const std::string line =
      wire::FormatResponse("-", DegradeMode::kNone, 1, TopKResponse{});
  EXPECT_EQ(line, "OK - none seq=1");
  wire::ParsedResponse parsed;
  ASSERT_TRUE(wire::ParseResponse(line, &parsed));
  EXPECT_TRUE(parsed.ok);
  EXPECT_TRUE(parsed.topk.items.empty());
}

TEST(WireFormat, EveryErrorCodeRoundTrips) {
  for (const ErrorCode code :
       {ErrorCode::kOverload, ErrorCode::kDeadlineAdmission,
        ErrorCode::kDeadlineQueue, ErrorCode::kDeadlineBatch,
        ErrorCode::kBadRequest, ErrorCode::kInternal}) {
    ServeStatus status;
    status.code = code;
    status.detail = "some detail text";
    status.retry_after_us = 1234;
    const std::string line = wire::FormatError("id9", status);
    wire::ParsedResponse parsed;
    ASSERT_TRUE(wire::ParseResponse(line, &parsed)) << line;
    EXPECT_FALSE(parsed.ok);
    EXPECT_EQ(parsed.id, "id9");
    EXPECT_EQ(parsed.status.code, code) << line;
    if (code == ErrorCode::kOverload) {
      EXPECT_EQ(parsed.status.retry_after_us, 1234u);
    }
    if (code == ErrorCode::kBadRequest || code == ErrorCode::kInternal) {
      EXPECT_EQ(parsed.status.detail, status.detail);
    }
  }
}

TEST(WireFormat, ErrorLineShapes) {
  ServeStatus status;
  status.code = ErrorCode::kOverload;
  status.retry_after_us = 1000;
  EXPECT_EQ(wire::FormatError("-", status),
            "ERR - OVERLOAD retry_after_us=1000");
  status = ServeStatus{};
  status.code = ErrorCode::kDeadlineQueue;
  EXPECT_EQ(wire::FormatError("q", status), "ERR q DEADLINE stage=queue");
  status = ServeStatus{};
  status.code = ErrorCode::kBadRequest;
  status.detail = "multi\nline\rdetail";
  // Newlines must never leak into the line protocol.
  EXPECT_EQ(wire::FormatError("-", status),
            "ERR - BAD_REQUEST multi line detail");
}

TEST(WireFormat, CliResponseMatchesHistoricalPrintf) {
  TopKRequest req;
  req.user = 3;
  req.k = 2;
  TopKResponse topk;
  topk.items = {1, 2};
  topk.scores = {0.5f, 0.25f};
  EXPECT_EQ(wire::FormatCliResponse(req, topk),
            "user=3 k=2 items=1:0.500000,2:0.250000");
  EXPECT_EQ(wire::FormatCliResponse(req, TopKResponse{}),
            "user=3 k=2 items=");
  EXPECT_EQ(wire::FormatCliResponse(req, topk, DegradeMode::kFp16, 4),
            "user=3 k=2 items=1:0.500000,2:0.250000 degraded=fp16 seq=4");
}

TEST(WireFormat, CliErrorTokensMatchHistoricalStrings) {
  EXPECT_STREQ(wire::CliErrorToken(ErrorCode::kOverload), "overload");
  EXPECT_STREQ(wire::CliErrorToken(ErrorCode::kDeadlineAdmission),
               "deadline-admission");
  EXPECT_STREQ(wire::CliErrorToken(ErrorCode::kDeadlineQueue),
               "deadline-queue");
  EXPECT_STREQ(wire::CliErrorToken(ErrorCode::kDeadlineBatch),
               "deadline-batch");
  EXPECT_STREQ(wire::CliErrorToken(ErrorCode::kBadRequest), "bad-request");
  EXPECT_STREQ(wire::CliErrorToken(ErrorCode::kInternal), "internal");
}

// ---- ErrorCode surface ------------------------------------------------

TEST(WireErrors, StageMappingIsABijection) {
  for (const DeadlineStage stage :
       {DeadlineStage::kAdmission, DeadlineStage::kQueue,
        DeadlineStage::kBatch}) {
    DeadlineStage back;
    ASSERT_TRUE(DeadlineStageForCode(ErrorCodeForStage(stage), &back));
    EXPECT_EQ(back, stage);
  }
  DeadlineStage unused;
  EXPECT_FALSE(DeadlineStageForCode(ErrorCode::kOk, &unused));
  EXPECT_FALSE(DeadlineStageForCode(ErrorCode::kOverload, &unused));
  EXPECT_FALSE(DeadlineStageForCode(ErrorCode::kBadRequest, &unused));
}

TEST(WireErrors, DegradeModeNamesRoundTrip) {
  for (const DegradeMode mode :
       {DegradeMode::kNone, DegradeMode::kIvf, DegradeMode::kFp16,
        DegradeMode::kQuantized}) {
    DegradeMode back;
    ASSERT_TRUE(DegradeModeFromName(DegradeModeName(mode), &back));
    EXPECT_EQ(back, mode);
  }
  DegradeMode unused;
  EXPECT_FALSE(DegradeModeFromName("turbo", &unused));
}

TEST(WireErrors, ExceptionsCarryTheirCode) {
  // The front door's typed exceptions share the ServeError base — one
  // switch on code() replaces the historical catch cascades.
  const OverloadError overload("full", 500);
  EXPECT_EQ(overload.code(), ErrorCode::kOverload);
  EXPECT_EQ(overload.retry_after_us(), 500u);
  const DeadlineExceededError queue_expiry("late", DeadlineStage::kQueue);
  EXPECT_EQ(queue_expiry.code(), ErrorCode::kDeadlineQueue);
  const ServeError* base = &queue_expiry;
  EXPECT_EQ(base->code(), ErrorCode::kDeadlineQueue);
}

TEST(WireErrors, StatusFromExceptionMapsEveryKind) {
  const auto status_of = [](std::exception_ptr e) {
    return StatusFromException(e);
  };
  ServeStatus st = status_of(
      std::make_exception_ptr(OverloadError("queue full", 750)));
  EXPECT_EQ(st.code, ErrorCode::kOverload);
  EXPECT_EQ(st.retry_after_us, 750u);
  EXPECT_EQ(st.detail, "queue full");

  for (const DeadlineStage stage :
       {DeadlineStage::kAdmission, DeadlineStage::kQueue,
        DeadlineStage::kBatch}) {
    st = status_of(
        std::make_exception_ptr(DeadlineExceededError("late", stage)));
    EXPECT_EQ(st.code, ErrorCodeForStage(stage));
  }

  st = status_of(std::make_exception_ptr(std::invalid_argument("bad k")));
  EXPECT_EQ(st.code, ErrorCode::kBadRequest);
  EXPECT_EQ(st.detail, "bad k");

  st = status_of(std::make_exception_ptr(std::runtime_error("scorer died")));
  EXPECT_EQ(st.code, ErrorCode::kInternal);
  EXPECT_EQ(st.detail, "scorer died");
}

// ---- fuzz -------------------------------------------------------------

TEST(WireFuzz, RandomLinesNeverCrashAndAlwaysResolve) {
  // Deterministic byte soup: every line must either parse or come back
  // kBadRequest — never crash, never return a half-written request.
  Rng rng(20240808);
  const std::string charset =
      "TOPKFILERANDUSID=0123456789 abcdefghijk\t#-:.";
  const wire::ParseOptions opts = Options(50, 10);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t len = rng.NextIndex(120);
    std::string line;
    line.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      line.push_back(charset[rng.NextIndex(charset.size())]);
    }
    if (wire::IsIgnorableLine(line)) continue;
    wire::ParsedRequest req;
    const ServeStatus st = wire::ParseRequest(line, opts, &req);
    if (st.ok()) {
      EXPECT_LT(req.topk.user, 50u) << line;
      EXPECT_GE(req.topk.k, 1u) << line;
    } else {
      EXPECT_EQ(st.code, ErrorCode::kBadRequest) << line;
      EXPECT_FALSE(st.detail.empty()) << line;
    }
  }
}

TEST(WireFuzz, PartialPrefixesOfValidLines) {
  // Every prefix of a valid wire line must parse or fail cleanly —
  // the transport can hand the parser a truncated line at any byte.
  const std::string full =
      "TOPK 12 20 FILTER=none LANE=bulk DEADLINE_US=5000 ID=a-1";
  const wire::ParseOptions opts = Options();
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    if (wire::IsIgnorableLine(prefix)) continue;
    wire::ParsedRequest req;
    const ServeStatus st = wire::ParseRequest(prefix, opts, &req);
    if (!st.ok()) {
      EXPECT_EQ(st.code, ErrorCode::kBadRequest) << prefix;
    }
  }
}

TEST(WireFuzz, ResponseParserRejectsGarbage) {
  wire::ParsedResponse parsed;
  EXPECT_FALSE(wire::ParseResponse("", &parsed));
  EXPECT_FALSE(wire::ParseResponse("HELLO a b", &parsed));
  EXPECT_FALSE(wire::ParseResponse("OK a", &parsed));
  EXPECT_FALSE(wire::ParseResponse("OK a turbo seq=1", &parsed));
  EXPECT_FALSE(wire::ParseResponse("OK a none seq=x", &parsed));
  EXPECT_FALSE(wire::ParseResponse("OK a none seq=1 noscore", &parsed));
  EXPECT_FALSE(wire::ParseResponse("ERR a OVERLOAD", &parsed));
  EXPECT_FALSE(wire::ParseResponse("ERR a DEADLINE stage=later", &parsed));
  EXPECT_FALSE(wire::ParseResponse("ERR a WHAT detail", &parsed));
}

}  // namespace
}  // namespace bslrec::serve
