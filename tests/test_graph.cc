#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "graph/propagation.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace bslrec {
namespace {

TEST(SparseMatrix, MultiplyMatchesDense) {
  // 2x3 matrix [[1,0,2],[0,3,0]].
  SparseMatrix m(2, 3, {0, 0, 1}, {0, 2, 1}, {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(m.nnz(), 3u);
  Matrix x(3, 2);
  x.At(0, 0) = 1.0f;
  x.At(1, 0) = 2.0f;
  x.At(2, 0) = 3.0f;
  x.At(0, 1) = -1.0f;
  x.At(1, 1) = -2.0f;
  x.At(2, 1) = -3.0f;
  Matrix out(2, 2);
  m.Multiply(x, out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 1.0f + 6.0f);   // 1*1 + 2*3
  EXPECT_FLOAT_EQ(out.At(1, 0), 6.0f);          // 3*2
  EXPECT_FLOAT_EQ(out.At(0, 1), -1.0f - 6.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), -6.0f);
}

TEST(SparseMatrix, DuplicateEntriesSummed) {
  SparseMatrix m(1, 1, {0, 0, 0}, {0, 0, 0}, {1.0f, 2.0f, 3.0f});
  EXPECT_EQ(m.nnz(), 1u);
  Matrix x(1, 1);
  x.At(0, 0) = 1.0f;
  Matrix out(1, 1);
  m.Multiply(x, out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 6.0f);
}

TEST(SparseMatrix, TransposeMultiplyIsAdjoint) {
  // <A x, y> == <x, A^T y> for random data.
  Rng rng(1);
  std::vector<uint32_t> rows, cols;
  std::vector<float> vals;
  for (int k = 0; k < 40; ++k) {
    rows.push_back(static_cast<uint32_t>(rng.NextIndex(6)));
    cols.push_back(static_cast<uint32_t>(rng.NextIndex(9)));
    vals.push_back(static_cast<float>(rng.NextGaussian()));
  }
  SparseMatrix a(6, 9, rows, cols, vals);
  Matrix x(9, 3), y(6, 3);
  x.InitGaussian(rng, 1.0f);
  y.InitGaussian(rng, 1.0f);
  Matrix ax(6, 3), aty(9, 3);
  a.Multiply(x, ax);
  a.TransposeMultiply(y, aty);
  double lhs = 0.0, rhs = 0.0;
  for (size_t k = 0; k < ax.size(); ++k) {
    lhs += static_cast<double>(ax.data()[k]) * y.data()[k];
  }
  for (size_t k = 0; k < x.size(); ++k) {
    rhs += static_cast<double>(x.data()[k]) * aty.data()[k];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(BipartiteGraph, DegreesMatchDataset) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  EXPECT_EQ(g.num_users(), 4u);
  EXPECT_EQ(g.num_items(), 6u);
  EXPECT_EQ(g.num_nodes(), 10u);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    EXPECT_EQ(g.UserDegree(u), d.TrainItems(u).size());
  }
  for (uint32_t i = 0; i < d.num_items(); ++i) {
    EXPECT_EQ(g.ItemDegree(i), d.item_popularity()[i]);
  }
}

TEST(BipartiteGraph, AdjacencyIsSymmetricNormalized) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  const SparseMatrix& a = g.Adjacency();
  EXPECT_EQ(a.rows(), g.num_nodes());
  EXPECT_EQ(a.nnz(), 2 * d.num_train());
  // Check one weight: edge (u0, i0). deg(u0)=2, deg(i0)=2 -> 1/2.
  Matrix x(g.num_nodes(), 1);
  x.At(g.num_users() + 0, 0) = 1.0f;  // one-hot on item 0
  Matrix out(g.num_nodes(), 1);
  a.Multiply(x, out);
  EXPECT_NEAR(out.At(0, 0), 1.0 / std::sqrt(2.0 * 2.0), 1e-6);
  // Symmetry: A x (one-hot u0) puts the same weight on item 0.
  Matrix xu(g.num_nodes(), 1);
  xu.At(0, 0) = 1.0f;
  Matrix out2(g.num_nodes(), 1);
  a.Multiply(xu, out2);
  EXPECT_NEAR(out2.At(g.num_users() + 0, 0), out.At(0, 0), 1e-6);
}

TEST(BipartiteGraph, SpectralRadiusAtMostOne) {
  // D^-1/2 A D^-1/2 of a bipartite graph has eigenvalues in [-1, 1]:
  // repeated propagation of any vector must not blow up.
  SyntheticConfig c;
  c.num_users = 50;
  c.num_items = 40;
  c.seed = 3;
  const Dataset d = GenerateSynthetic(c).dataset;
  const BipartiteGraph g(d);
  Rng rng(4);
  Matrix x(g.num_nodes(), 1);
  x.InitGaussian(rng, 1.0f);
  Matrix y(g.num_nodes(), 1);
  float prev_norm = x.FrobeniusNorm();
  for (int it = 0; it < 20; ++it) {
    g.Adjacency().Multiply(x, y);
    std::swap(x, y);
    const float norm = x.FrobeniusNorm();
    EXPECT_LE(norm, prev_norm * 1.0001f);
    prev_norm = norm;
  }
}

TEST(BipartiteGraph, NormalizedRatingsShape) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  EXPECT_EQ(g.NormalizedRatings().rows(), d.num_users());
  EXPECT_EQ(g.NormalizedRatings().cols(), d.num_items());
  EXPECT_EQ(g.NormalizedRatings().nnz(), d.num_train());
}

TEST(BipartiteGraph, EdgeDropoutDropsAboutP) {
  SyntheticConfig c;
  c.num_users = 100;
  c.num_items = 80;
  c.avg_items_per_user = 20.0;
  c.seed = 5;
  const Dataset d = GenerateSynthetic(c).dataset;
  const BipartiteGraph g(d);
  Rng rng(6);
  const SparseMatrix dropped = g.EdgeDropout(0.3, rng);
  const double kept = static_cast<double>(dropped.nnz()) /
                      static_cast<double>(g.Adjacency().nnz());
  EXPECT_NEAR(kept, 0.7, 0.03);
}

TEST(BipartiteGraph, EdgeDropoutZeroKeepsEverything) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(7);
  const SparseMatrix dropped = g.EdgeDropout(0.0, rng);
  EXPECT_EQ(dropped.nnz(), g.Adjacency().nnz());
}

TEST(BipartiteGraph, EdgeDropoutZeroReproducesBaseAdjacencyExactly) {
  // p = 0 keeps every edge and rescales by 1/(1-0) = 1: the dropped
  // adjacency must be structurally and numerically identical.
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(17);
  const SparseMatrix dropped = g.EdgeDropout(0.0, rng);
  const SparseMatrix& base = g.Adjacency();
  EXPECT_EQ(dropped.row_offsets(), base.row_offsets());
  EXPECT_EQ(dropped.col_indices(), base.col_indices());
  ASSERT_EQ(dropped.values().size(), base.values().size());
  for (size_t k = 0; k < base.values().size(); ++k) {
    EXPECT_EQ(dropped.values()[k], base.values()[k]) << "nnz " << k;
  }
}

TEST(BipartiteGraph, EdgeDropoutRenormalizesSurvivors) {
  // Surviving edges keep the *original* degree normalization scaled by
  // 1/(1-p) (inverted dropout). With p = 0.5 every surviving weight is
  // exactly twice its clean-graph counterpart.
  SyntheticConfig c;
  c.num_users = 60;
  c.num_items = 50;
  c.avg_items_per_user = 10.0;
  c.seed = 18;
  const Dataset d = GenerateSynthetic(c).dataset;
  const BipartiteGraph g(d);
  Rng rng(19);
  const SparseMatrix dropped = g.EdgeDropout(0.5, rng);
  const SparseMatrix& base = g.Adjacency();
  ASSERT_LT(dropped.nnz(), base.nnz());  // something actually dropped
  ASSERT_GT(dropped.nnz(), 0u);
  for (size_t r = 0; r < dropped.rows(); ++r) {
    for (size_t k = dropped.row_offsets()[r]; k < dropped.row_offsets()[r + 1];
         ++k) {
      const uint32_t col = dropped.col_indices()[k];
      // Locate (r, col) in the base adjacency (CSR columns are sorted).
      const auto begin = base.col_indices().begin() + base.row_offsets()[r];
      const auto end = base.col_indices().begin() + base.row_offsets()[r + 1];
      const auto it = std::lower_bound(begin, end, col);
      ASSERT_TRUE(it != end && *it == col) << "surviving edge not in base";
      const size_t base_k =
          static_cast<size_t>(it - base.col_indices().begin());
      EXPECT_FLOAT_EQ(dropped.values()[k], 2.0f * base.values()[base_k])
          << "row " << r << " col " << col;
    }
  }
}

TEST(BipartiteGraph, EdgeDropoutDeterministicUnderSeededRng) {
  SyntheticConfig c;
  c.num_users = 40;
  c.num_items = 30;
  c.seed = 20;
  const Dataset d = GenerateSynthetic(c).dataset;
  const BipartiteGraph g(d);
  Rng a(99), b(99);
  const SparseMatrix d1 = g.EdgeDropout(0.3, a);
  const SparseMatrix d2 = g.EdgeDropout(0.3, b);
  EXPECT_EQ(d1.row_offsets(), d2.row_offsets());
  EXPECT_EQ(d1.col_indices(), d2.col_indices());
  EXPECT_EQ(d1.values(), d2.values());
  // A different seed draws a different graph (overwhelmingly likely).
  Rng other(100);
  const SparseMatrix d3 = g.EdgeDropout(0.3, other);
  EXPECT_NE(d1.col_indices(), d3.col_indices());
}

TEST(BipartiteGraph, EdgeDropoutRescalePreservesExpectation) {
  // E[dropped propagation] == clean propagation (inverted dropout).
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(8);
  Matrix x(g.num_nodes(), 2);
  x.InitGaussian(rng, 1.0f);
  Matrix clean(g.num_nodes(), 2);
  g.Adjacency().Multiply(x, clean);
  Matrix acc(g.num_nodes(), 2);
  const int kTrials = 3000;
  Matrix out(g.num_nodes(), 2);
  for (int t = 0; t < kTrials; ++t) {
    const SparseMatrix dropped = g.EdgeDropout(0.4, rng);
    dropped.Multiply(x, out);
    acc.AddScaled(out, 1.0f / kTrials);
  }
  for (size_t k = 0; k < acc.size(); ++k) {
    EXPECT_NEAR(acc.data()[k], clean.data()[k], 0.08) << "entry " << k;
  }
}

}  // namespace
}  // namespace bslrec
