// Async evaluation pipeline contracts:
//   * TaskRunner runs tasks FIFO on one dispatcher, drains on
//     destruction, and propagates background exceptions through Drain.
//   * AsyncEvaluator metrics are bit-identical to a synchronous
//     Evaluator pass over the same snapshot, for any background pool
//     size, and records land in submission order.
//   * Trainer with async_eval reproduces the synchronous metric history
//     (evals, best, final, per-epoch losses) bitwise — for sampled MF
//     and in-batch LightGCN, with and without early stopping, at any
//     (num_threads, eval_threads) combination.
//   * Checkpoints saved while a pass is in flight see the live tables;
//     the pass sees the frozen ones (snapshot isolation).
//   * Trainer::Evaluate() reuses the snapshot frozen for the current
//     optimizer step instead of rebuilding it.
#include "eval/async_evaluator.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "gtest/gtest.h"
#include "models/checkpoint.h"
#include "models/lightgcn.h"
#include "models/mf.h"
#include "runtime/task_runner.h"
#include "runtime/thread_pool.h"
#include "sampling/negative_sampler.h"
#include "test_util.h"
#include "train/trainer.h"

namespace bslrec {
namespace {

SyntheticData EvalData(uint64_t seed = 11) {
  SyntheticConfig c;
  c.num_users = 90;
  c.num_items = 70;
  c.num_clusters = 5;
  c.avg_items_per_user = 12.0;
  c.seed = seed;
  return GenerateSynthetic(c);
}

TrainConfig BaseConfig() {
  TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 256;
  cfg.num_negatives = 8;
  cfg.lr = 0.05;
  cfg.eval_every = 2;
  cfg.seed = 77;
  cfg.runtime.num_threads = 1;
  return cfg;
}

void ExpectSameMetrics(const TopKMetrics& a, const TopKMetrics& b) {
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.ndcg, b.ndcg);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.hit_rate, b.hit_rate);
  EXPECT_EQ(a.num_users, b.num_users);
}

// Bitwise equality of everything a TrainResult records.
void ExpectSameResult(const TrainResult& a, const TrainResult& b) {
  ExpectSameMetrics(a.best, b.best);
  EXPECT_EQ(a.best_epoch, b.best_epoch);
  ExpectSameMetrics(a.final_metrics, b.final_metrics);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t e = 0; e < a.history.size(); ++e) {
    EXPECT_EQ(a.history[e].epoch, b.history[e].epoch);
    EXPECT_EQ(a.history[e].avg_loss, b.history[e].avg_loss);
    EXPECT_EQ(a.history[e].avg_aux_loss, b.history[e].avg_aux_loss);
  }
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (size_t e = 0; e < a.evals.size(); ++e) {
    EXPECT_EQ(a.evals[e].epoch, b.evals[e].epoch);
    ExpectSameMetrics(a.evals[e].metrics, b.evals[e].metrics);
  }
}

TrainResult TrainMf(const Dataset& data, const TrainConfig& cfg) {
  Rng rng(5);
  MfModel model(data.num_users(), data.num_items(), 16, rng);
  SoftmaxLoss loss(0.2);
  UniformNegativeSampler sampler(data);
  Trainer trainer(data, model, loss, sampler, cfg);
  return trainer.Train();
}

TrainResult TrainLightGcnInBatch(const Dataset& data, TrainConfig cfg) {
  const BipartiteGraph graph(data);
  Rng rng(6);
  LightGcnModel model(graph, 16, 2, rng);
  SoftmaxLoss loss(0.2);
  UniformNegativeSampler sampler(data);  // unused in kInBatch mode
  cfg.sampling_mode = SamplingMode::kInBatch;
  Trainer trainer(data, model, loss, sampler, cfg);
  return trainer.Train();
}

// ---- TaskRunner --------------------------------------------------------

TEST(TaskRunner, RunsTasksInSubmissionOrder) {
  runtime::TaskRunner runner(2);
  std::vector<int> order;  // dispatcher-only writes; read after Drain
  for (int t = 0; t < 8; ++t) {
    runner.Submit([&order, t] { order.push_back(t); });
  }
  runner.Drain();
  ASSERT_EQ(order.size(), 8u);
  for (int t = 0; t < 8; ++t) EXPECT_EQ(order[t], t);
  EXPECT_EQ(runner.pending(), 0u);
}

TEST(TaskRunner, TasksMayDriveTheRunnersOwnPool) {
  runtime::TaskRunner runner(3);
  // A task is the pool's sole driver, so ParallelFor from inside it is
  // legal — this is exactly how a background evaluation pass runs.
  std::vector<uint64_t> shard_sums;
  runner.Submit([&] {
    constexpr size_t kN = 1000, kGrain = 64;
    shard_sums.assign((kN + kGrain - 1) / kGrain, 0);
    runtime::ParallelFor(runner.pool(), 0, kN, kGrain,
                         [&](size_t lo, size_t hi, size_t shard, size_t) {
                           for (size_t i = lo; i < hi; ++i) {
                             shard_sums[shard] += i;
                           }
                         });
  });
  runner.Drain();
  uint64_t total = 0;
  for (uint64_t s : shard_sums) total += s;
  EXPECT_EQ(total, 999u * 1000u / 2);
}

TEST(TaskRunner, DrainRethrowsTheFirstTaskException) {
  runtime::TaskRunner runner(1);
  std::atomic<int> ran{0};
  runner.Submit([&] { ++ran; });
  runner.Submit([] { throw std::runtime_error("pass failed"); });
  runner.Submit([&] { ++ran; });  // later tasks still run
  EXPECT_THROW(runner.Drain(), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);
  // The error was consumed; the runner stays usable.
  runner.Submit([&] { ++ran; });
  runner.Drain();
  EXPECT_EQ(ran.load(), 3);
}

TEST(TaskRunner, ExceptionInsidePoolSectionReachesDrain) {
  runtime::TaskRunner runner(2);
  runner.Submit([&] {
    runtime::ParallelFor(runner.pool(), 0, 16, 1,
                         [](size_t lo, size_t, size_t, size_t) {
                           if (lo == 7) throw std::runtime_error("shard 7");
                         });
  });
  EXPECT_THROW(runner.Drain(), std::runtime_error);
}

TEST(TaskRunner, DestructionDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    runtime::TaskRunner runner(1);
    for (int t = 0; t < 5; ++t) {
      runner.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
    // No Drain: the destructor must finish all five ("join on
    // destruction"), not abandon the queue.
  }
  EXPECT_EQ(ran.load(), 5);
}

// ---- AsyncEvaluator ----------------------------------------------------

TEST(AsyncEvaluator, MatchesSynchronousPassOverTheSameSnapshot) {
  const SyntheticData data = EvalData();
  Rng rng(3);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  model.Forward(rng);

  runtime::ThreadPool freeze_pool(2);
  const auto snapshot =
      std::make_shared<const serve::ModelSnapshot>(model, freeze_pool);

  const Evaluator sync_eval(data.dataset, 10, runtime::RuntimeConfig{1});
  const TopKMetrics expected = sync_eval.BeginPassOn(snapshot).Evaluate();

  runtime::RuntimeConfig rt;
  rt.eval_threads = 2;
  AsyncEvaluator async_eval(data.dataset, 10, rt);
  async_eval.Submit(42, snapshot);
  const std::vector<EvalRecord> records = async_eval.Join();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].epoch, 42);
  ExpectSameMetrics(records[0].metrics, expected);
}

TEST(AsyncEvaluator, BackgroundPoolSizeNeverChangesMetrics) {
  const SyntheticData data = EvalData(13);
  Rng rng(4);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  model.Forward(rng);
  runtime::ThreadPool freeze_pool(1);
  const auto snapshot =
      std::make_shared<const serve::ModelSnapshot>(model, freeze_pool);

  std::vector<EvalRecord> baseline;
  for (size_t eval_threads : {1u, 2u, 8u}) {
    runtime::RuntimeConfig rt;
    rt.eval_threads = eval_threads;
    AsyncEvaluator async_eval(data.dataset, 10, rt);
    EXPECT_EQ(async_eval.num_workers(), eval_threads);
    async_eval.Submit(1, snapshot);
    async_eval.Submit(2, snapshot);  // FIFO: same pass twice, in order
    const std::vector<EvalRecord> records = async_eval.Join();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].epoch, 1);
    EXPECT_EQ(records[1].epoch, 2);
    ExpectSameMetrics(records[0].metrics, records[1].metrics);
    if (baseline.empty()) {
      baseline = records;
    } else {
      ExpectSameMetrics(records[0].metrics, baseline[0].metrics);
    }
  }
}

TEST(AsyncEvaluator, DestructionJoinsInFlightPasses) {
  const SyntheticData data = EvalData(17);
  Rng rng(9);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  model.Forward(rng);
  runtime::ThreadPool freeze_pool(1);
  auto snapshot =
      std::make_shared<const serve::ModelSnapshot>(model, freeze_pool);
  {
    AsyncEvaluator async_eval(data.dataset, 10, runtime::RuntimeConfig{});
    async_eval.Submit(1, snapshot);
    // No Join: destruction must complete the pass, not abandon it.
  }
  // The background task held the only other reference to the snapshot;
  // it ran to completion and released it.
  EXPECT_EQ(snapshot.use_count(), 1);
}

// ---- Trainer integration ----------------------------------------------

TEST(AsyncTrainer, MfHistoryBitIdenticalToSync) {
  const SyntheticData data = EvalData(21);
  TrainConfig sync_cfg = BaseConfig();
  TrainConfig async_cfg = sync_cfg;
  async_cfg.async_eval = true;
  const TrainResult sync_result = TrainMf(data.dataset, sync_cfg);
  const TrainResult async_result = TrainMf(data.dataset, async_cfg);
  ASSERT_GE(sync_result.evals.size(), 3u);
  ExpectSameResult(sync_result, async_result);
}

TEST(AsyncTrainer, LightGcnInBatchHistoryBitIdenticalToSync) {
  const SyntheticData data = EvalData(23);
  TrainConfig sync_cfg = BaseConfig();
  sync_cfg.epochs = 4;
  TrainConfig async_cfg = sync_cfg;
  async_cfg.async_eval = true;
  const TrainResult sync_result = TrainLightGcnInBatch(data.dataset, sync_cfg);
  const TrainResult async_result =
      TrainLightGcnInBatch(data.dataset, async_cfg);
  ASSERT_GE(sync_result.evals.size(), 2u);
  ExpectSameResult(sync_result, async_result);
}

TEST(AsyncTrainer, ThreadCountInvarianceAcrossBothPools) {
  const SyntheticData data = EvalData(29);
  TrainConfig cfg = BaseConfig();
  const TrainResult baseline = TrainMf(data.dataset, cfg);  // sync, serial
  for (size_t num_threads : {1u, 2u, 8u}) {
    for (size_t eval_threads : {1u, 3u}) {
      TrainConfig async_cfg = cfg;
      async_cfg.async_eval = true;
      async_cfg.runtime.num_threads = num_threads;
      async_cfg.runtime.eval_threads = eval_threads;
      const TrainResult result = TrainMf(data.dataset, async_cfg);
      ExpectSameResult(baseline, result);
    }
  }
}

TEST(AsyncTrainer, EarlyStoppingTrajectoryMatchesSync) {
  const SyntheticData data = EvalData(31);
  TrainConfig sync_cfg = BaseConfig();
  sync_cfg.epochs = 40;  // long enough that patience trips
  sync_cfg.eval_every = 1;
  sync_cfg.early_stop_patience = 2;
  TrainConfig async_cfg = sync_cfg;
  async_cfg.async_eval = true;
  async_cfg.runtime.num_threads = 2;
  const TrainResult sync_result = TrainMf(data.dataset, sync_cfg);
  const TrainResult async_result = TrainMf(data.dataset, async_cfg);
  // The whole point: the stop must fire after the same epoch.
  EXPECT_LT(sync_result.history.size(), 40u);
  ExpectSameResult(sync_result, async_result);
}

// Snapshot isolation (satellite): a checkpoint saved while a background
// pass is provably in flight reflects the *live* tables; the joined
// pass reflects the *frozen* ones.
TEST(AsyncEvalCheckpoint, SaveDuringInFlightPassSeesLiveTables) {
  const SyntheticData data = EvalData(37);
  const std::string path =
      ::testing::TempDir() + "/bslrec_async_ckpt.bin";
  Rng rng(8);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 8, rng);
  model.Forward(rng);

  runtime::TaskRunner runner(2);
  const Evaluator background_eval(data.dataset, 10, &runner.pool());
  runtime::ThreadPool freeze_pool(1);
  const auto snapshot =
      std::make_shared<const serve::ModelSnapshot>(model, freeze_pool);
  const Evaluator reference_eval(data.dataset, 10,
                                 runtime::RuntimeConfig{1});
  const TopKMetrics frozen_metrics =
      reference_eval.BeginPassOn(snapshot).Evaluate();

  // Gate the queue so the pass is still pending while we mutate + save.
  std::atomic<bool> go{false};
  runner.Submit([&go] {
    while (!go.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  TopKMetrics in_flight_metrics;
  runner.Submit([&] {
    in_flight_metrics = background_eval.BeginPassOn(snapshot).Evaluate();
  });

  // "Training steps" while the pass is queued: mutate the live params.
  for (ParamGrad pg : model.Params()) {
    for (size_t k = 0; k < pg.value->size(); ++k) {
      pg.value->data()[k] += 0.25f * static_cast<float>(k % 3);
    }
  }
  Rng fwd_rng(12);
  model.Forward(fwd_rng);
  ASSERT_TRUE(SaveModelParams(model, path));
  go.store(true);
  runner.Drain();

  // The pass scored the frozen snapshot, untouched by the mutation.
  ExpectSameMetrics(in_flight_metrics, frozen_metrics);

  // The checkpoint captured the mutated live tables.
  Rng rng2(999);
  MfModel restored(data.dataset.num_users(), data.dataset.num_items(), 8,
                   rng2);
  ASSERT_TRUE(LoadModelParams(restored, path));
  const auto live = model.Params();
  const auto loaded = restored.Params();
  ASSERT_EQ(live.size(), loaded.size());
  for (size_t p = 0; p < live.size(); ++p) {
    ASSERT_EQ(live[p].value->size(), loaded[p].value->size());
    for (size_t k = 0; k < live[p].value->size(); ++k) {
      ASSERT_EQ(live[p].value->data()[k], loaded[p].value->data()[k]);
    }
  }
  std::remove(path.c_str());
}

// Snapshot reuse (satellite fix): Evaluate() right after training ended
// must reuse the snapshot the last eval epoch froze — not rebuild one —
// and must rebuild once the tables step again.
TEST(AsyncTrainer, EvaluateReusesTheSnapshotFrozenForTheLastEval) {
  const SyntheticData data = EvalData(41);
  TrainConfig cfg = BaseConfig();
  cfg.async_eval = true;
  Rng rng(5);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  SoftmaxLoss loss(0.2);
  UniformNegativeSampler sampler(data.dataset);
  Trainer trainer(data.dataset, model, loss, sampler, cfg);
  const TrainResult result = trainer.Train();
  const size_t frozen_after_train = trainer.snapshots_frozen();
  EXPECT_EQ(frozen_after_train, result.evals.size());

  // No optimizer step since the last freeze: reuse, bit-identical.
  const TopKMetrics reused = trainer.Evaluate();
  EXPECT_EQ(trainer.snapshots_frozen(), frozen_after_train);
  ExpectSameMetrics(reused, result.final_metrics);

  // A fresh epoch steps the tables: the next Evaluate must re-freeze.
  trainer.RunEpoch(cfg.epochs + 1);
  trainer.Evaluate();
  EXPECT_EQ(trainer.snapshots_frozen(), frozen_after_train + 1);
}

}  // namespace
}  // namespace bslrec
