#include "models/contrastive.h"

#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "train/trainer.h"

namespace bslrec {
namespace {

Dataset SmallDataset() {
  SyntheticConfig c;
  c.num_users = 40;
  c.num_items = 30;
  c.avg_items_per_user = 8.0;
  c.seed = 1;
  return GenerateSynthetic(c).dataset;
}

ContrastiveConfig ConfigFor(AugmentationKind kind) {
  ContrastiveConfig c;
  c.kind = kind;
  c.num_layers = 2;
  c.lambda = 0.5;
  c.tau_contrast = 0.2;
  c.svd_rank = 4;
  return c;
}

class ContrastiveKindSweep
    : public ::testing::TestWithParam<AugmentationKind> {};

TEST_P(ContrastiveKindSweep, AuxLossIsFiniteAndPositive) {
  const Dataset d = SmallDataset();
  const BipartiteGraph g(d);
  Rng rng(2);
  ContrastiveModel model(g, 8, ConfigFor(GetParam()), rng);
  model.Forward(rng);
  model.ZeroGrad();
  const std::vector<uint32_t> users = {0, 1, 2, 3, 4, 5};
  const std::vector<uint32_t> items = {0, 1, 2, 3, 4};
  const double aux = model.AuxLossAndGrad(users, items, rng);
  EXPECT_TRUE(std::isfinite(aux));
  EXPECT_GT(aux, 0.0);  // InfoNCE over random embeddings is > 0
}

TEST_P(ContrastiveKindSweep, AuxProducesParameterGradients) {
  const Dataset d = SmallDataset();
  const BipartiteGraph g(d);
  Rng rng(3);
  ContrastiveModel model(g, 8, ConfigFor(GetParam()), rng);
  model.Forward(rng);
  model.ZeroGrad();
  const std::vector<uint32_t> users = {0, 1, 2, 3};
  const std::vector<uint32_t> items = {0, 1, 2};
  model.AuxLossAndGrad(users, items, rng);
  // Base gradient accumulates without needing Backward (aux path writes
  // directly into parameter grads).
  const auto params = model.Params();
  EXPECT_GT(params[0].grad->FrobeniusNorm(), 0.0f);
  for (size_t k = 0; k < params[0].grad->size(); ++k) {
    EXPECT_TRUE(std::isfinite(params[0].grad->data()[k]));
  }
}

TEST_P(ContrastiveKindSweep, TinyBatchesAreSafe) {
  const Dataset d = SmallDataset();
  const BipartiteGraph g(d);
  Rng rng(4);
  ContrastiveModel model(g, 8, ConfigFor(GetParam()), rng);
  model.Forward(rng);
  model.ZeroGrad();
  // Batches with < 2 nodes have no in-batch negatives: aux must be 0.
  const std::vector<uint32_t> one_user = {0};
  const std::vector<uint32_t> no_items = {};
  EXPECT_DOUBLE_EQ(model.AuxLossAndGrad(one_user, no_items, rng), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ContrastiveKindSweep,
                         ::testing::Values(AugmentationKind::kEdgeDropout,
                                           AugmentationKind::kEmbeddingNoise,
                                           AugmentationKind::kSvdView));

TEST(ContrastiveModel, NamesMatchKinds) {
  const Dataset d = SmallDataset();
  const BipartiteGraph g(d);
  Rng rng(5);
  ContrastiveModel sgl(g, 4, ConfigFor(AugmentationKind::kEdgeDropout), rng);
  ContrastiveModel simgcl(g, 4, ConfigFor(AugmentationKind::kEmbeddingNoise),
                          rng);
  ContrastiveModel lightgcl(g, 4, ConfigFor(AugmentationKind::kSvdView), rng);
  EXPECT_EQ(sgl.name(), "SGL");
  EXPECT_EQ(simgcl.name(), "SimGCL");
  EXPECT_EQ(lightgcl.name(), "LightGCL");
}

TEST(ContrastiveModel, SvdAuxGradMatchesFiniteDifference) {
  // The LightGCL aux path is fully deterministic (no augmentation
  // randomness), so the aux gradient can be checked by finite differences
  // on the base embedding table.
  const Dataset d = SmallDataset();
  const BipartiteGraph g(d);
  Rng rng(6);
  ContrastiveConfig cfg = ConfigFor(AugmentationKind::kSvdView);
  cfg.lambda = 1.0;
  ContrastiveModel model(g, 6, cfg, rng);
  const std::vector<uint32_t> users = {0, 1, 2};
  const std::vector<uint32_t> items = {0, 1, 2, 3};

  model.Forward(rng);
  model.ZeroGrad();
  Rng aux_rng(7);
  model.AuxLossAndGrad(users, items, aux_rng);
  const Matrix analytic = *model.Params()[0].grad;

  Matrix& base = *model.Params()[0].value;
  const float eps = 2e-3f;
  const size_t stride = std::max<size_t>(1, base.size() / 16);
  for (size_t k = 0; k < base.size(); k += stride) {
    const float orig = base.data()[k];
    base.data()[k] = orig + eps;
    model.Forward(rng);
    model.ZeroGrad();
    Rng r1(7);
    const double lp = model.AuxLossAndGrad(users, items, r1);
    base.data()[k] = orig - eps;
    model.Forward(rng);
    model.ZeroGrad();
    Rng r2(7);
    const double lm = model.AuxLossAndGrad(users, items, r2);
    base.data()[k] = orig;
    EXPECT_NEAR((lp - lm) / (2.0 * eps), analytic.data()[k], 3e-2)
        << "entry " << k;
  }
}

TEST(ContrastiveModel, AuxLossDropsAsViewsAlign) {
  // Training signal sanity: a few SGD steps on the aux objective alone
  // should reduce it (views of the same node get pulled together).
  const Dataset d = SmallDataset();
  const BipartiteGraph g(d);
  Rng rng(8);
  ContrastiveConfig cfg = ConfigFor(AugmentationKind::kSvdView);
  cfg.lambda = 1.0;
  ContrastiveModel model(g, 8, cfg, rng);
  const std::vector<uint32_t> users = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<uint32_t> items = {0, 1, 2, 3, 4, 5};

  double first = 0.0, last = 0.0;
  for (int step = 0; step < 30; ++step) {
    model.Forward(rng);
    model.ZeroGrad();
    Rng aux_rng(9);
    const double aux = model.AuxLossAndGrad(users, items, aux_rng);
    if (step == 0) first = aux;
    last = aux;
    const auto params = model.Params();
    for (const ParamGrad& pg : params) {
      for (size_t k = 0; k < pg.value->size(); ++k) {
        pg.value->data()[k] -= 0.5f * pg.grad->data()[k];
      }
    }
  }
  EXPECT_LT(last, first);
}

TEST(ContrastiveModel, EndToEndTrainingImprovesRanking) {
  // Full Trainer loop with the recommendation loss + InfoNCE aux: the
  // Table III pathway. One backbone suffices here (the kind sweep above
  // covers the per-kind mechanics); the bench exercises all three.
  const Dataset d = SmallDataset();
  const BipartiteGraph g(d);
  Rng rng(10);
  ContrastiveConfig cfg = ConfigFor(AugmentationKind::kEmbeddingNoise);
  cfg.lambda = 0.1;
  ContrastiveModel model(g, 16, cfg, rng);
  SoftmaxLoss loss(0.6);
  UniformNegativeSampler sampler(d);
  TrainConfig tcfg;
  tcfg.epochs = 12;
  tcfg.batch_size = 128;
  tcfg.num_negatives = 16;
  tcfg.eval_every = 4;
  tcfg.seed = 5;
  Trainer trainer(d, model, loss, sampler, tcfg);
  const TopKMetrics before = trainer.Evaluate();
  const TrainResult result = trainer.Train();
  EXPECT_GT(result.best.ndcg, before.ndcg);
  // Aux loss is reported in the epoch stats.
  EXPECT_GT(result.history.front().avg_aux_loss, 0.0);
}

}  // namespace
}  // namespace bslrec
