#include "data/noise.h"

#include <cmath>

#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace bslrec {
namespace {

TEST(InjectFalsePositives, ZeroRatioIsIdentity) {
  const Dataset d = testing::TinyDataset();
  Rng rng(1);
  const Dataset noisy = InjectFalsePositives(d, 0.0, rng);
  EXPECT_EQ(noisy.num_train(), d.num_train());
  EXPECT_EQ(noisy.num_test(), d.num_test());
}

TEST(InjectFalsePositives, AddsExpectedCount) {
  SyntheticConfig c;
  c.num_users = 100;
  c.num_items = 120;
  c.avg_items_per_user = 15.0;
  c.seed = 2;
  const Dataset d = GenerateSynthetic(c).dataset;
  Rng rng(3);
  const Dataset noisy = InjectFalsePositives(d, 0.2, rng);
  const double added =
      static_cast<double>(noisy.num_train() - d.num_train());
  EXPECT_NEAR(added / static_cast<double>(d.num_train()), 0.2, 0.03);
}

TEST(InjectFalsePositives, TestSplitUntouched) {
  const Dataset d = testing::TinyDataset();
  Rng rng(4);
  const Dataset noisy = InjectFalsePositives(d, 1.0, rng);
  ASSERT_EQ(noisy.num_test(), d.num_test());
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    const auto a = d.TestItems(u);
    const auto b = noisy.TestItems(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(InjectFalsePositives, OriginalPositivesPreserved) {
  const Dataset d = testing::TinyDataset();
  Rng rng(5);
  const Dataset noisy = InjectFalsePositives(d, 0.5, rng);
  for (const Edge& e : d.train_edges()) {
    EXPECT_TRUE(noisy.IsTrainPositive(e.user, e.item));
  }
}

TEST(InjectFalsePositives, NeverAddsTestItemsAsTrain) {
  // The injected items must come from the never-interacted pool, so the
  // evaluation stays uncontaminated.
  SyntheticConfig c;
  c.num_users = 60;
  c.num_items = 80;
  c.seed = 6;
  const Dataset d = GenerateSynthetic(c).dataset;
  Rng rng(7);
  const Dataset noisy = InjectFalsePositives(d, 0.3, rng);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    for (uint32_t i : d.TestItems(u)) {
      EXPECT_FALSE(noisy.IsTrainPositive(u, i))
          << "test item leaked into train for user " << u;
    }
  }
}

TEST(DropTrainPositives, DropsExpectedFraction) {
  SyntheticConfig c;
  c.num_users = 100;
  c.num_items = 100;
  c.avg_items_per_user = 20.0;
  c.seed = 8;
  const Dataset d = GenerateSynthetic(c).dataset;
  Rng rng(9);
  const Dataset dropped = DropTrainPositives(d, 0.25, rng);
  const double kept = static_cast<double>(dropped.num_train()) /
                      static_cast<double>(d.num_train());
  EXPECT_NEAR(kept, 0.75, 0.03);
}

TEST(DropTrainPositives, KeepsAtLeastOnePerUser) {
  const Dataset d = testing::TinyDataset();
  Rng rng(10);
  const Dataset dropped = DropTrainPositives(d, 1.0, rng);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    EXPECT_GE(dropped.TrainItems(u).size(), 1u);
  }
}

TEST(DropTrainPositives, DroppedAreSubsetOfOriginal) {
  const Dataset d = testing::TinyDataset();
  Rng rng(11);
  const Dataset dropped = DropTrainPositives(d, 0.5, rng);
  for (const Edge& e : dropped.train_edges()) {
    EXPECT_TRUE(d.IsTrainPositive(e.user, e.item));
  }
}

TEST(LeaveOneOut, ExactlyOneTestItemPerEligibleUser) {
  const Dataset d = testing::TinyDataset();  // every user has 3 items total
  Rng rng(12);
  const Dataset loo = ResplitLeaveOneOut(d, rng);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    EXPECT_EQ(loo.TestItems(u).size(), 1u) << "user " << u;
    EXPECT_EQ(loo.TrainItems(u).size(), 2u) << "user " << u;
  }
}

TEST(LeaveOneOut, PreservesInteractionUnion) {
  const Dataset d = testing::TinyDataset();
  Rng rng(13);
  const Dataset loo = ResplitLeaveOneOut(d, rng);
  EXPECT_EQ(loo.num_train() + loo.num_test(), d.num_train() + d.num_test());
  // Every re-split interaction existed in the original union.
  for (const Edge& e : loo.train_edges()) {
    const auto te = d.TestItems(e.user);
    EXPECT_TRUE(d.IsTrainPositive(e.user, e.item) ||
                std::binary_search(te.begin(), te.end(), e.item));
  }
}

TEST(LeaveOneOut, SingleInteractionUsersStayInTrain) {
  std::vector<Edge> train = {{0, 0}};
  const Dataset d(1, 2, std::move(train), {});
  Rng rng(14);
  const Dataset loo = ResplitLeaveOneOut(d, rng);
  EXPECT_EQ(loo.TrainItems(0).size(), 1u);
  EXPECT_TRUE(loo.TestItems(0).empty());
}

TEST(LeaveOneOut, DeterministicGivenSeed) {
  const Dataset d = testing::TinyDataset();
  Rng r1(15), r2(15);
  const Dataset a = ResplitLeaveOneOut(d, r1);
  const Dataset b = ResplitLeaveOneOut(d, r2);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    ASSERT_EQ(a.TestItems(u).size(), b.TestItems(u).size());
    for (size_t k = 0; k < a.TestItems(u).size(); ++k) {
      EXPECT_EQ(a.TestItems(u)[k], b.TestItems(u)[k]);
    }
  }
}

}  // namespace
}  // namespace bslrec
