#include "math/alias_table.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "math/rng.h"

namespace bslrec {
namespace {

TEST(AliasTable, NormalizedProbabilities) {
  AliasTable t(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(t.size(), 4u);
  EXPECT_NEAR(t.Probability(0), 0.1, 1e-12);
  EXPECT_NEAR(t.Probability(3), 0.4, 1e-12);
  double sum = 0.0;
  for (uint32_t i = 0; i < 4; ++i) sum += t.Probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(AliasTable, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> w = {5.0, 1.0, 0.0, 4.0};
  AliasTable t(w);
  Rng rng(123);
  std::vector<int> counts(4, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[t.Sample(rng)];
  EXPECT_EQ(counts[2], 0);  // zero-weight bucket never drawn
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(kDraws), 0.4, 0.01);
}

TEST(AliasTable, SingleBucket) {
  AliasTable t(std::vector<double>{3.0});
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.Sample(rng), 0u);
}

TEST(AliasTable, UniformWeights) {
  AliasTable t(std::vector<double>(8, 1.0));
  Rng rng(2);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 80000; ++i) ++counts[t.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 450);
}

TEST(AliasTable, HighlySkewedWeights) {
  std::vector<double> w(100, 1e-6);
  w[42] = 1.0;
  AliasTable t(w);
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += t.Sample(rng) == 42 ? 1 : 0;
  EXPECT_GT(hits, 9900);
}

TEST(ZipfWeights, ShapeAndMonotonicity) {
  const auto w = ZipfWeights(10, 1.0);
  ASSERT_EQ(w.size(), 10u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
  for (size_t i = 1; i < w.size(); ++i) EXPECT_LT(w[i], w[i - 1]);
}

TEST(ZipfWeights, AlphaZeroIsUniform) {
  const auto w = ZipfWeights(5, 0.0);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(ZipfWeights, LargerAlphaIsMoreSkewed) {
  const auto w1 = ZipfWeights(100, 0.8);
  const auto w2 = ZipfWeights(100, 1.5);
  // Head mass fraction grows with alpha.
  const auto head_fraction = [](const std::vector<double>& w) {
    double head = 0.0, total = 0.0;
    for (size_t i = 0; i < w.size(); ++i) {
      total += w[i];
      if (i < 10) head += w[i];
    }
    return head / total;
  };
  EXPECT_LT(head_fraction(w1), head_fraction(w2));
}

}  // namespace
}  // namespace bslrec
