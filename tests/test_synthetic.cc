#include "data/synthetic.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "math/vec.h"

namespace bslrec {
namespace {

SyntheticConfig SmallConfig(uint64_t seed = 1) {
  SyntheticConfig c;
  c.num_users = 80;
  c.num_items = 60;
  c.num_clusters = 4;
  c.avg_items_per_user = 12.0;
  c.seed = seed;
  return c;
}

TEST(Synthetic, DeterministicGivenSeed) {
  const SyntheticData a = GenerateSynthetic(SmallConfig(7));
  const SyntheticData b = GenerateSynthetic(SmallConfig(7));
  ASSERT_EQ(a.dataset.num_train(), b.dataset.num_train());
  for (size_t k = 0; k < a.dataset.train_edges().size(); ++k) {
    EXPECT_EQ(a.dataset.train_edges()[k].user,
              b.dataset.train_edges()[k].user);
    EXPECT_EQ(a.dataset.train_edges()[k].item,
              b.dataset.train_edges()[k].item);
  }
}

TEST(Synthetic, DifferentSeedsDiffer) {
  const SyntheticData a = GenerateSynthetic(SmallConfig(1));
  const SyntheticData b = GenerateSynthetic(SmallConfig(2));
  bool any_diff = a.dataset.num_train() != b.dataset.num_train();
  if (!any_diff) {
    for (size_t k = 0; k < a.dataset.train_edges().size(); ++k) {
      if (a.dataset.train_edges()[k].item != b.dataset.train_edges()[k].item) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Synthetic, ShapesAndSplit) {
  const SyntheticConfig c = SmallConfig();
  const SyntheticData d = GenerateSynthetic(c);
  EXPECT_EQ(d.dataset.num_users(), c.num_users);
  EXPECT_EQ(d.dataset.num_items(), c.num_items);
  EXPECT_EQ(d.item_cluster.size(), c.num_items);
  EXPECT_EQ(d.user_latent.rows(), c.num_users);
  EXPECT_EQ(d.item_latent.rows(), c.num_items);
  // Roughly 20% of interactions are held out.
  const double test_frac =
      static_cast<double>(d.dataset.num_test()) /
      static_cast<double>(d.dataset.num_test() + d.dataset.num_train());
  EXPECT_NEAR(test_frac, c.test_fraction, 0.05);
}

TEST(Synthetic, EveryUserHasTrainItems) {
  const SyntheticData d = GenerateSynthetic(SmallConfig());
  for (uint32_t u = 0; u < d.dataset.num_users(); ++u) {
    EXPECT_FALSE(d.dataset.TrainItems(u).empty()) << "user " << u;
  }
}

TEST(Synthetic, LatentsAreUnitNorm) {
  const SyntheticData d = GenerateSynthetic(SmallConfig());
  for (uint32_t u = 0; u < d.dataset.num_users(); ++u) {
    EXPECT_NEAR(vec::Norm(d.user_latent.Row(u), d.user_latent.cols()), 1.0f,
                1e-4f);
  }
  for (uint32_t i = 0; i < d.dataset.num_items(); ++i) {
    EXPECT_NEAR(vec::Norm(d.item_latent.Row(i), d.item_latent.cols()), 1.0f,
                1e-4f);
  }
}

TEST(Synthetic, PopularityIsLongTailed) {
  SyntheticConfig c = SmallConfig();
  c.num_users = 300;
  c.num_items = 200;
  c.zipf_alpha = 1.1;
  const SyntheticData d = GenerateSynthetic(c);
  std::vector<uint32_t> pop = d.dataset.item_popularity();
  std::sort(pop.begin(), pop.end(), std::greater<>());
  const uint64_t total = std::accumulate(pop.begin(), pop.end(), 0ULL);
  uint64_t head = 0;
  for (size_t i = 0; i < pop.size() / 5; ++i) head += pop[i];
  // Top 20% of items should hold well over a proportional share.
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.35);
}

TEST(Synthetic, InteractionsFollowPreference) {
  // Mean latent affinity of observed pairs should clearly exceed the
  // affinity of random pairs.
  const SyntheticData d = GenerateSynthetic(SmallConfig(3));
  const size_t dim = d.user_latent.cols();
  double observed = 0.0;
  for (const Edge& e : d.dataset.train_edges()) {
    observed += vec::Dot(d.user_latent.Row(e.user),
                         d.item_latent.Row(e.item), dim);
  }
  observed /= static_cast<double>(d.dataset.num_train());

  Rng rng(4);
  double random_mean = 0.0;
  const int kPairs = 5000;
  for (int k = 0; k < kPairs; ++k) {
    const uint32_t u =
        static_cast<uint32_t>(rng.NextIndex(d.dataset.num_users()));
    const uint32_t i =
        static_cast<uint32_t>(rng.NextIndex(d.dataset.num_items()));
    random_mean +=
        vec::Dot(d.user_latent.Row(u), d.item_latent.Row(i), dim);
  }
  random_mean /= kPairs;
  EXPECT_GT(observed, random_mean + 0.1);
}

TEST(Synthetic, PositiveNoiseRateAddsOffPreferenceItems) {
  SyntheticConfig clean = SmallConfig(5);
  clean.positive_noise_rate = 0.0;
  SyntheticConfig noisy = clean;
  noisy.positive_noise_rate = 0.4;
  const SyntheticData a = GenerateSynthetic(clean);
  const SyntheticData b = GenerateSynthetic(noisy);
  const size_t dim = a.user_latent.cols();
  const auto mean_affinity = [dim](const SyntheticData& d) {
    double acc = 0.0;
    for (const Edge& e : d.dataset.train_edges()) {
      acc += vec::Dot(d.user_latent.Row(e.user), d.item_latent.Row(e.item),
                      dim);
    }
    return acc / static_cast<double>(d.dataset.num_train());
  };
  EXPECT_GT(mean_affinity(a), mean_affinity(b));
}

TEST(SyntheticPresets, DensityOrderingMatchesPaper) {
  // Table I: MovieLens is by far the densest, Amazon the sparsest.
  const SyntheticData ml = GenerateSynthetic(Movielens1MSynth());
  const SyntheticData yelp = GenerateSynthetic(Yelp18Synth());
  const SyntheticData gowalla = GenerateSynthetic(GowallaSynth());
  const SyntheticData amazon = GenerateSynthetic(AmazonSynth());
  EXPECT_GT(ml.dataset.TrainDensity(), yelp.dataset.TrainDensity());
  EXPECT_GT(yelp.dataset.TrainDensity(), amazon.dataset.TrainDensity());
  EXPECT_GT(gowalla.dataset.TrainDensity(), amazon.dataset.TrainDensity());
}

TEST(SyntheticPresets, AllPresetsGenerate) {
  for (const SyntheticConfig& c : AllPresets(11)) {
    const SyntheticData d = GenerateSynthetic(c);
    EXPECT_GT(d.dataset.num_train(), 1000u) << c.name;
    EXPECT_GT(d.dataset.num_test(), 200u) << c.name;
  }
}

}  // namespace
}  // namespace bslrec
