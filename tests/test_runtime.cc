// Tests for the parallel execution runtime: thread-pool lifecycle,
// ParallelFor coverage, exception propagation, and the bit-identical
// results guarantee of the multi-threaded trainer and evaluator.
#include "runtime/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/losses.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"
#include "test_util.h"
#include "train/trainer.h"

namespace bslrec {
namespace {

using runtime::ParallelFor;
using runtime::ResolveNumThreads;
using runtime::ThreadPool;

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
  EXPECT_GE(ResolveNumThreads(0), 1u);  // hardware concurrency, >= 1
  // Absurd requests (e.g. -1 laundered through size_t) are clamped, not
  // handed to vector::reserve.
  EXPECT_EQ(ResolveNumThreads(SIZE_MAX), runtime::kMaxThreads);
}

TEST(ThreadPool, StartupAndShutdownWithoutWork) {
  for (size_t n : {1u, 2u, 8u}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_workers(), n);
  }
}

TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce) {
  for (size_t n : {1u, 2u, 8u}) {
    ThreadPool pool(n);
    constexpr size_t kTasks = 1000;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    pool.Run(kTasks, [&](size_t task, size_t worker) {
      ASSERT_LT(task, kTasks);
      ASSERT_LT(worker, pool.num_workers());
      hits[task].fetch_add(1);
    });
    for (size_t t = 0; t < kTasks; ++t) {
      EXPECT_EQ(hits[t].load(), 1) << "task " << t << " @ " << n << " workers";
    }
  }
}

TEST(ThreadPool, RunWithZeroTasksIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.Run(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PoolIsReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.Run(20, [&](size_t, size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  for (size_t n : {1u, 4u}) {
    ThreadPool pool(n);
    EXPECT_THROW(
        pool.Run(64,
                 [&](size_t task, size_t) {
                   if (task == 13) throw std::runtime_error("boom");
                 }),
        std::runtime_error)
        << n << " workers";
    // The pool must stay usable after an exception.
    std::atomic<size_t> ok{0};
    pool.Run(8, [&](size_t, size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 8u);
  }
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (size_t n : {1u, 2u, 8u}) {
    for (size_t grain : {1u, 3u, 16u, 1000u}) {
      ThreadPool pool(n);
      constexpr size_t kBegin = 5, kEnd = 357;
      std::vector<std::atomic<int>> hits(kEnd);
      for (auto& h : hits) h.store(0);
      ParallelFor(pool, kBegin, kEnd, grain,
                  [&](size_t lo, size_t hi, size_t, size_t) {
                    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
                  });
      for (size_t i = 0; i < kEnd; ++i) {
        EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0)
            << "index " << i << " grain " << grain << " workers " << n;
      }
    }
  }
}

TEST(ParallelFor, ShardBoundariesAreIndependentOfWorkerCount) {
  const auto shards_at = [](size_t workers) {
    ThreadPool pool(workers);
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> shards;
    std::vector<size_t> shard_of_lo(100, SIZE_MAX);
    ParallelFor(pool, 10, 100, 7,
                [&](size_t lo, size_t hi, size_t shard, size_t) {
                  std::lock_guard<std::mutex> lk(mu);
                  shards.insert({lo, hi});
                  shard_of_lo[lo] = shard;
                });
    return std::make_pair(shards, shard_of_lo);
  };
  const auto [s1, ids1] = shards_at(1);
  const auto [s4, ids4] = shards_at(4);
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(ids1, ids4);
  // Fixed grain 7 over [10, 100): 13 shards, last one short.
  EXPECT_EQ(s1.size(), 13u);
  EXPECT_TRUE(s1.count({10, 17}) == 1);
  EXPECT_TRUE(s1.count({94, 100}) == 1);
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(pool, 5, 5, 4, [&](size_t, size_t, size_t, size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

// ---- bit-identical equivalence across thread counts ----

SyntheticData EquivData(uint64_t seed = 31) {
  SyntheticConfig c;
  c.num_users = 150;
  c.num_items = 120;
  c.num_clusters = 6;
  c.avg_items_per_user = 12.0;
  c.seed = seed;
  return GenerateSynthetic(c);
}

TrainResult TrainAtThreads(const Dataset& data, size_t num_threads,
                           SamplingMode mode) {
  Rng rng(7);
  MfModel model(data.num_users(), data.num_items(), 16, rng);
  BilateralSoftmaxLoss loss(0.2, 0.25);
  UniformNegativeSampler sampler(data);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch_size = 128;
  cfg.num_negatives = 16;
  cfg.eval_every = 1;
  cfg.seed = 99;
  cfg.sampling_mode = mode;
  cfg.runtime.num_threads = num_threads;
  Trainer trainer(data, model, loss, sampler, cfg);
  return trainer.Train();
}

void ExpectBitIdentical(const TrainResult& a, const TrainResult& b) {
  // Exact equality on purpose: the runtime's contract is bit-identical
  // results for any worker count, not merely close ones.
  EXPECT_EQ(a.best.recall, b.best.recall);
  EXPECT_EQ(a.best.ndcg, b.best.ndcg);
  EXPECT_EQ(a.best.precision, b.best.precision);
  EXPECT_EQ(a.best.hit_rate, b.best.hit_rate);
  EXPECT_EQ(a.best_epoch, b.best_epoch);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t k = 0; k < a.history.size(); ++k) {
    EXPECT_EQ(a.history[k].avg_loss, b.history[k].avg_loss) << "epoch " << k;
    EXPECT_EQ(a.history[k].avg_aux_loss, b.history[k].avg_aux_loss);
  }
}

TEST(RuntimeEquivalence, SampledTrainingIsThreadCountInvariant) {
  const SyntheticData data = EquivData();
  const TrainResult t1 =
      TrainAtThreads(data.dataset, 1, SamplingMode::kSampledNegatives);
  const TrainResult t2 =
      TrainAtThreads(data.dataset, 2, SamplingMode::kSampledNegatives);
  const TrainResult t8 =
      TrainAtThreads(data.dataset, 8, SamplingMode::kSampledNegatives);
  ExpectBitIdentical(t1, t2);
  ExpectBitIdentical(t1, t8);
}

TEST(RuntimeEquivalence, InBatchTrainingIsThreadCountInvariant) {
  const SyntheticData data = EquivData(33);
  const TrainResult t1 =
      TrainAtThreads(data.dataset, 1, SamplingMode::kInBatch);
  const TrainResult t2 =
      TrainAtThreads(data.dataset, 2, SamplingMode::kInBatch);
  const TrainResult t8 =
      TrainAtThreads(data.dataset, 8, SamplingMode::kInBatch);
  ExpectBitIdentical(t1, t2);
  ExpectBitIdentical(t1, t8);
}

TEST(RuntimeEquivalence, EvaluatorIsThreadCountInvariant) {
  const SyntheticData data = EquivData(35);
  Rng rng(9);
  MfModel model(data.dataset.num_users(), data.dataset.num_items(), 16, rng);
  model.Forward(rng);

  const Evaluator e1(data.dataset, 20, runtime::RuntimeConfig{1});
  const Evaluator e2(data.dataset, 20, runtime::RuntimeConfig{2});
  const Evaluator e8(data.dataset, 20, runtime::RuntimeConfig{8});

  const TopKMetrics m1 = e1.Evaluate(model);
  const TopKMetrics m2 = e2.Evaluate(model);
  const TopKMetrics m8 = e8.Evaluate(model);
  EXPECT_EQ(m1.recall, m2.recall);
  EXPECT_EQ(m1.ndcg, m2.ndcg);
  EXPECT_EQ(m1.precision, m2.precision);
  EXPECT_EQ(m1.hit_rate, m2.hit_rate);
  EXPECT_EQ(m1.num_users, m2.num_users);
  EXPECT_EQ(m1.recall, m8.recall);
  EXPECT_EQ(m1.ndcg, m8.ndcg);

  EXPECT_EQ(e1.GroupNdcg(model, 5), e2.GroupNdcg(model, 5));
  EXPECT_EQ(e1.GroupNdcg(model, 5), e8.GroupNdcg(model, 5));
  EXPECT_EQ(e1.ItemExposure(model), e2.ItemExposure(model));
  EXPECT_EQ(e1.ItemExposure(model), e8.ItemExposure(model));
}

TEST(RuntimeEquivalence, PassSharesItemTableAcrossQueries) {
  // A pass must agree with the single-shot wrappers (same item table,
  // same buffers) — and its GroupNdcg decomposition must still sum to
  // the overall NDCG.
  const Dataset d = testing::TinyDataset();
  Rng rng(11);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const Evaluator eval(d, 4, runtime::RuntimeConfig{2});
  Evaluator::Pass pass = eval.BeginPass(model);
  const TopKMetrics via_pass = pass.Evaluate();
  const TopKMetrics via_wrapper = eval.Evaluate(model);
  EXPECT_EQ(via_pass.ndcg, via_wrapper.ndcg);
  EXPECT_EQ(via_pass.recall, via_wrapper.recall);
  const auto groups = pass.GroupNdcg(3);
  double total = 0.0;
  for (double g : groups) total += g;
  EXPECT_NEAR(total, via_pass.ndcg, 1e-9);
  EXPECT_EQ(pass.ItemExposure(), eval.ItemExposure(model));
  EXPECT_EQ(pass.TopKForUser(0), eval.TopKForUser(model, 0));
}

}  // namespace
}  // namespace bslrec
