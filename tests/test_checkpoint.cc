#include "models/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "gtest/gtest.h"
#include "models/lightgcn.h"
#include "models/mf.h"
#include "test_util.h"

namespace bslrec {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/bslrec_ckpt.bin";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CheckpointTest, RoundTripRestoresMfParameters) {
  Rng rng(1);
  MfModel original(5, 7, 4, rng);
  ASSERT_TRUE(SaveModelParams(original, path_));

  Rng rng2(999);  // different init
  MfModel restored(5, 7, 4, rng2);
  ASSERT_TRUE(LoadModelParams(restored, path_));
  const auto a = original.Params();
  const auto b = restored.Params();
  ASSERT_EQ(a.size(), b.size());
  for (size_t p = 0; p < a.size(); ++p) {
    for (size_t k = 0; k < a[p].value->size(); ++k) {
      EXPECT_FLOAT_EQ(a[p].value->data()[k], b[p].value->data()[k]);
    }
  }
}

TEST_F(CheckpointTest, RoundTripRestoresScores) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(2);
  LightGcnModel original(g, 6, 2, rng);
  original.Forward(rng);
  ASSERT_TRUE(SaveModelParams(original, path_));

  Rng rng2(3);
  LightGcnModel restored(g, 6, 2, rng2);
  ASSERT_TRUE(LoadModelParams(restored, path_));
  restored.Forward(rng2);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    for (size_t k = 0; k < 6; ++k) {
      EXPECT_FLOAT_EQ(original.UserEmb(u)[k], restored.UserEmb(u)[k]);
    }
  }
}

TEST_F(CheckpointTest, ShapeMismatchRejected) {
  Rng rng(4);
  MfModel small(3, 3, 4, rng);
  ASSERT_TRUE(SaveModelParams(small, path_));
  MfModel bigger(3, 3, 8, rng);
  EXPECT_FALSE(LoadModelParams(bigger, path_));
}

TEST_F(CheckpointTest, ParamCountMismatchRejected) {
  const Dataset d = testing::TinyDataset();
  const BipartiteGraph g(d);
  Rng rng(5);
  MfModel mf(d.num_users(), d.num_items(), 4, rng);  // 2 tensors
  ASSERT_TRUE(SaveModelParams(mf, path_));
  LightGcnModel lgn(g, 4, 2, rng);  // 1 tensor
  EXPECT_FALSE(LoadModelParams(lgn, path_));
}

TEST_F(CheckpointTest, MissingFileRejected) {
  Rng rng(6);
  MfModel mf(2, 2, 2, rng);
  EXPECT_FALSE(LoadModelParams(mf, "/nonexistent/ckpt.bin"));
}

TEST_F(CheckpointTest, CorruptMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOTACKPT garbage";
  }
  Rng rng(7);
  MfModel mf(2, 2, 2, rng);
  EXPECT_FALSE(LoadModelParams(mf, path_));
}

TEST_F(CheckpointTest, TruncatedFileRejected) {
  Rng rng(8);
  MfModel mf(20, 20, 8, rng);
  ASSERT_TRUE(SaveModelParams(mf, path_));
  // Truncate to half.
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size() / 2));
  out.close();
  EXPECT_FALSE(LoadModelParams(mf, path_));
}

}  // namespace
}  // namespace bslrec
