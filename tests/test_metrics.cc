#include "eval/metrics.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace bslrec {
namespace {

TEST(Recall, HandComputed) {
  const std::vector<uint32_t> ranking = {5, 3, 9, 1};
  const std::vector<uint32_t> test = {1, 3, 7};  // sorted
  EXPECT_NEAR(RecallAtK(ranking, test), 2.0 / 3.0, 1e-12);
}

TEST(Recall, EmptyTestSetIsZero) {
  const std::vector<uint32_t> ranking = {1, 2};
  EXPECT_DOUBLE_EQ(RecallAtK(ranking, {}), 0.0);
}

TEST(Recall, PerfectRanking) {
  const std::vector<uint32_t> ranking = {2, 4};
  const std::vector<uint32_t> test = {2, 4};
  EXPECT_DOUBLE_EQ(RecallAtK(ranking, test), 1.0);
}

TEST(Dcg, PositionDiscounting) {
  const std::vector<uint32_t> test = {7};
  // Hit at rank 0: 1/log2(2) = 1. Hit at rank 1: 1/log2(3).
  EXPECT_NEAR(DcgAtK({{7, 1, 2}}, test), 1.0, 1e-12);
  EXPECT_NEAR(DcgAtK({{1, 7, 2}}, test), 1.0 / std::log2(3.0), 1e-12);
}

TEST(IdealDcg, CapsAtK) {
  EXPECT_NEAR(IdealDcgAtK(1, 20), 1.0, 1e-12);
  const double two = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(IdealDcgAtK(2, 20), two, 1e-12);
  // More test items than K: only K terms.
  EXPECT_NEAR(IdealDcgAtK(100, 2), two, 1e-12);
}

TEST(Ndcg, PerfectAndWorstCases) {
  const std::vector<uint32_t> test = {3, 8};
  EXPECT_NEAR(NdcgAtK({{3, 8, 1, 2}}, test, 4), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(NdcgAtK({{1, 2, 4, 5}}, test, 4), 0.0);
}

TEST(Ndcg, MiddleRankHandComputed) {
  const std::vector<uint32_t> test = {9};
  // Hit at rank 2 of 20: (1/log2(4)) / 1.
  EXPECT_NEAR(NdcgAtK({{1, 2, 9}}, test, 20), 0.5, 1e-12);
}

TEST(PrecisionTest, DividesByK) {
  const std::vector<uint32_t> test = {1, 2, 3};
  EXPECT_NEAR(PrecisionAtK({{1, 2, 7, 8}}, test, 4), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(PrecisionAtK({{1}}, test, 0), 0.0);
}

TEST(HitTest, AnyOverlapCounts) {
  const std::vector<uint32_t> test = {5};
  EXPECT_DOUBLE_EQ(HitAtK({{1, 2, 5}}, test), 1.0);
  EXPECT_DOUBLE_EQ(HitAtK({{1, 2, 3}}, test), 0.0);
}

TEST(GroupNdcg, DecompositionSumsToNdcg) {
  const std::vector<uint32_t> ranking = {4, 0, 7, 2};
  const std::vector<uint32_t> test = {0, 2, 9};
  const std::vector<uint32_t> group = {0, 0, 1, 1, 2, 2, 0, 1, 2, 0};
  std::vector<double> acc(3, 0.0);
  AccumulateGroupNdcg(ranking, test, 4, group, acc);
  const double total = acc[0] + acc[1] + acc[2];
  EXPECT_NEAR(total, NdcgAtK(ranking, test, 4), 1e-12);
  // Item 0 (group 0) hit at rank 1; item 2 (group 1) hit at rank 3.
  EXPECT_GT(acc[0], 0.0);
  EXPECT_GT(acc[1], 0.0);
  EXPECT_DOUBLE_EQ(acc[2], 0.0);
}

TEST(GroupNdcg, EmptyTestContributesNothing) {
  const std::vector<uint32_t> group = {0, 0};
  std::vector<double> acc(1, 0.0);
  AccumulateGroupNdcg({{0, 1}}, {}, 2, group, acc);
  EXPECT_DOUBLE_EQ(acc[0], 0.0);
}

TEST(Mrr, FirstHitPositionOnly) {
  const std::vector<uint32_t> test = {4, 9};
  EXPECT_DOUBLE_EQ(MrrAtK({{4, 9, 1}}, test), 1.0);
  EXPECT_DOUBLE_EQ(MrrAtK({{1, 2, 9}}, test), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(MrrAtK({{1, 2, 3}}, test), 0.0);
  EXPECT_DOUBLE_EQ(MrrAtK({}, test), 0.0);
}

TEST(AveragePrecision, HandComputed) {
  // Hits at ranks 1 and 3 (1-based) with 2 test items, K=4:
  // AP = (1/2) * (1/1 + 2/3).
  const std::vector<uint32_t> test = {2, 6};
  EXPECT_NEAR(AveragePrecisionAtK({{2, 1, 6, 3}}, test, 4),
              0.5 * (1.0 + 2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({{1, 3, 4, 5}}, test, 4), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionAtK({{2}}, {}, 4), 0.0);
}

TEST(AveragePrecision, PerfectRankingIsOne) {
  const std::vector<uint32_t> test = {1, 2, 3};
  EXPECT_NEAR(AveragePrecisionAtK({{1, 2, 3}}, test, 3), 1.0, 1e-12);
}

TEST(Gini, EqualExposureIsZero) {
  const std::vector<double> equal(10, 3.0);
  EXPECT_NEAR(GiniCoefficient(equal), 0.0, 1e-12);
}

TEST(Gini, FullConcentrationApproachesOne) {
  std::vector<double> concentrated(100, 0.0);
  concentrated[7] = 42.0;
  EXPECT_NEAR(GiniCoefficient(concentrated), 0.99, 1e-12);
}

TEST(Gini, KnownTwoValueCase) {
  // {0, 1}: Gini = 0.5 for n = 2.
  EXPECT_NEAR(GiniCoefficient(std::vector<double>{0.0, 1.0}), 0.5, 1e-12);
}

TEST(Gini, EmptyAndZeroSafe) {
  EXPECT_DOUBLE_EQ(GiniCoefficient(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient(std::vector<double>{0.0, 0.0}), 0.0);
}

TEST(Gini, MoreSkewMoreGini) {
  const std::vector<double> mild = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> skewed = {0.1, 0.1, 0.1, 9.7};
  EXPECT_LT(GiniCoefficient(mild), GiniCoefficient(skewed));
}

}  // namespace
}  // namespace bslrec
