// Tests for the concurrent serving front door: request queue +
// micro-batcher equivalence against the synchronous path, flush
// policy, snapshot hot-swap under load, drain-on-destruction, and
// error propagation through futures.
#include "serve/serving_frontend.h"

#include <algorithm>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "math/rng.h"
#include "models/mf.h"
#include "serve/inference_service.h"
#include "serve/ranking_engine.h"
#include "test_util.h"

namespace bslrec {
namespace {

using serve::FrontEndConfig;
using serve::InferenceService;
using serve::ModelSnapshot;
using serve::RankingEngine;
using serve::ServedResponse;
using serve::ServeConfig;
using serve::ServingFrontEnd;
using serve::TopKRequest;
using serve::TopKResponse;

Dataset MediumDataset(uint64_t seed = 11) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 90;
  cfg.num_clusters = 5;
  cfg.avg_items_per_user = 10.0;
  cfg.seed = seed;
  return GenerateSynthetic(cfg).dataset;
}

std::unique_ptr<MfModel> MakeModel(const Dataset& d, uint64_t seed,
                                   size_t dim = 8) {
  Rng rng(seed);
  auto model = std::make_unique<MfModel>(d.num_users(), d.num_items(), dim,
                                         rng);
  model->Forward(rng);
  return model;
}

FrontEndConfig Config(size_t max_batch = 8, uint32_t flush_us = 200,
                      size_t threads = 2, bool cache = true) {
  FrontEndConfig cfg;
  cfg.max_batch = max_batch;
  cfg.flush_deadline_us = flush_us;
  cfg.serve.max_k = 20;
  cfg.serve.items_per_shard = 16;  // several shards per scan
  cfg.serve.cache_rankings = cache;
  cfg.serve.runtime.num_threads = threads;
  return cfg;
}

TopKRequest Req(uint32_t user, uint32_t k, bool filter_seen = true,
                std::span<const uint32_t> extra_seen = {}) {
  TopKRequest req;
  req.user = user;
  req.k = k;
  req.filter_seen = filter_seen;
  req.extra_seen = extra_seen;
  return req;
}

void ExpectSameResponse(const TopKResponse& a, const TopKResponse& b,
                        const std::string& what) {
  ASSERT_EQ(a.items.size(), b.items.size()) << what;
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i], b.items[i]) << what << " rank " << i;
    // Bit-identical, not approximately equal: the equivalence contract.
    EXPECT_EQ(a.scores[i], b.scores[i]) << what << " rank " << i;
  }
}

// A deterministic per-producer request mix covering every request
// shape: varying k, unfiltered, and extra_seen requests.
std::vector<TopKRequest> FuzzStream(const Dataset& d, uint64_t seed,
                                    size_t count,
                                    std::vector<std::vector<uint32_t>>& extra) {
  Rng rng(seed);
  std::vector<TopKRequest> reqs;
  reqs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    TopKRequest req;
    req.user = static_cast<uint32_t>(rng.NextIndex(d.num_users()));
    req.k = 1 + static_cast<uint32_t>(rng.NextIndex(25));
    const uint64_t shape = rng.NextIndex(4);
    if (shape == 1) {
      req.filter_seen = false;
    } else if (shape == 2) {
      std::vector<uint32_t>& ids = extra.emplace_back();
      ids.push_back(static_cast<uint32_t>(rng.NextIndex(d.num_items() / 2)));
      ids.push_back(static_cast<uint32_t>(ids[0] + 1 +
                                          rng.NextIndex(d.num_items() / 3)));
      req.extra_seen = ids;
    }
    reqs.push_back(req);
  }
  return reqs;
}

TEST(ServingFrontEnd, SingleProducerMatchesSynchronousService) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 3);
  InferenceService sync(d, *model, Config().serve);
  ServingFrontEnd frontend(d, *model, Config());

  std::vector<std::vector<uint32_t>> extra;
  const std::vector<TopKRequest> reqs = FuzzStream(d, 77, 40, extra);
  for (size_t i = 0; i < reqs.size(); ++i) {
    const ServedResponse got = frontend.HandleSync(reqs[i]);
    EXPECT_EQ(got.snapshot_seq, 1u);
    ExpectSameResponse(got.topk, sync.Handle(reqs[i]),
                       "request " + std::to_string(i));
  }
  frontend.Drain();
  EXPECT_EQ(frontend.stats().requests, reqs.size());
}

TEST(ServingFrontEnd, NProducerFuzzMatchesSynchronousHandle) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 4);
  // Small batches + tight deadline so real micro-batches form across
  // producers (mixed users, shapes, and cutoffs in one batch).
  ServingFrontEnd frontend(d, *model, Config(/*max_batch=*/4,
                                            /*flush_us=*/100));

  constexpr size_t kProducers = 4;
  constexpr size_t kRequests = 60;
  std::vector<std::vector<std::vector<uint32_t>>> extra(kProducers);
  std::vector<std::vector<TopKRequest>> streams(kProducers);
  std::vector<std::vector<ServedResponse>> got(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    streams[p] = FuzzStream(d, 100 + p, kRequests, extra[p]);
    got[p].reserve(kRequests);
  }

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const TopKRequest& req : streams[p]) {
        got[p].push_back(frontend.HandleSync(req));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  // Every response matches the synchronous single-driver path.
  InferenceService sync(d, *model, Config().serve);
  for (size_t p = 0; p < kProducers; ++p) {
    for (size_t r = 0; r < streams[p].size(); ++r) {
      ExpectSameResponse(got[p][r].topk, sync.Handle(streams[p][r]),
                         "producer " + std::to_string(p) + " request " +
                             std::to_string(r));
    }
  }
  frontend.Drain();  // stats are settled once the queue is idle
  const serve::FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.requests, kProducers * kRequests);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_GE(st.batches, (kProducers * kRequests + 3) / 4);
}

TEST(ServingFrontEnd, QuantizedFrontDoorMatchesExactSynchronous) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 5);
  FrontEndConfig cfg = Config();
  cfg.serve.quantize = true;
  ServingFrontEnd frontend(d, *model, cfg);
  InferenceService sync(d, *model, Config().serve);  // exact scan
  std::vector<std::vector<uint32_t>> extra;
  for (const TopKRequest& req : FuzzStream(d, 9, 25, extra)) {
    ExpectSameResponse(frontend.HandleSync(req).topk, sync.Handle(req),
                       "quantized front door");
  }
}

TEST(ServingFrontEnd, SizeFlushFillsBatches) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 6);
  // Deadline far away: only max_batch can close a batch promptly.
  ServingFrontEnd frontend(d, *model,
                           Config(/*max_batch=*/4, /*flush_us=*/200000));
  std::vector<TopKRequest> reqs(8, Req(1, 5));
  for (size_t i = 0; i < reqs.size(); ++i) reqs[i].user = i;
  const std::vector<ServedResponse> got = frontend.HandleBatchSync(reqs);
  ASSERT_EQ(got.size(), reqs.size());
  frontend.Drain();  // stats are settled once the queue is idle
  const serve::FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.requests, reqs.size());
  EXPECT_GE(st.size_flushes, 2u);  // two full batches of 4
  EXPECT_EQ(st.deadline_flushes, 0u);
  EXPECT_EQ(st.max_batch_served, 4u);
}

TEST(ServingFrontEnd, DeadlineFlushServesLoneRequest) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 6);
  // Batch can never fill (max_batch huge): only the deadline fires.
  ServingFrontEnd frontend(d, *model,
                           Config(/*max_batch=*/1024, /*flush_us=*/2000));
  const ServedResponse got = frontend.HandleSync(Req(7, 10));
  EXPECT_EQ(got.topk.items.size(), 10u);
  frontend.Drain();  // stats are settled once the queue is idle
  const serve::FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.requests, 1u);
  EXPECT_EQ(st.size_flushes, 0u);
  EXPECT_GE(st.deadline_flushes, 1u);
}

TEST(ServingFrontEnd, HotSwapUnderLoadAttributesEveryResponse) {
  const Dataset d = MediumDataset();
  // Three model generations — distinct embeddings, same shapes.
  std::vector<std::shared_ptr<const ModelSnapshot>> snaps;
  runtime::ThreadPool freeze_pool(2);
  for (uint64_t g = 0; g < 3; ++g) {
    const std::unique_ptr<MfModel> gen = MakeModel(d, 40 + g);
    snaps.push_back(std::make_shared<const ModelSnapshot>(*gen, freeze_pool));
  }

  FrontEndConfig cfg = Config(/*max_batch=*/4, /*flush_us=*/100);
  ServingFrontEnd frontend(d, snaps[0], cfg);
  EXPECT_EQ(frontend.current_snapshot(), snaps[0]);
  EXPECT_EQ(frontend.current_seq(), 1u);

  constexpr size_t kProducers = 3;
  constexpr size_t kRequests = 80;
  std::vector<std::vector<std::vector<uint32_t>>> extra(kProducers);
  std::vector<std::vector<TopKRequest>> streams(kProducers);
  std::vector<std::vector<ServedResponse>> got(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    streams[p] = FuzzStream(d, 200 + p, kRequests, extra[p]);
    got[p].reserve(kRequests);
  }
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (const TopKRequest& req : streams[p]) {
        got[p].push_back(frontend.HandleSync(req));
      }
    });
  }
  // Publish the remaining generations while traffic is in flight.
  std::vector<uint64_t> seqs = {1};
  for (size_t g = 1; g < snaps.size(); ++g) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    seqs.push_back(frontend.PublishSnapshot(snaps[g]));
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(seqs, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(frontend.current_seq(), 3u);
  EXPECT_EQ(frontend.current_snapshot(), snaps[2]);

  // Every response names exactly one published snapshot (no torn
  // reads: seq and snapshot pointer must agree) and is bit-identical
  // to the synchronous ranking on that snapshot.
  runtime::ThreadPool ref_pool(1);
  std::vector<std::unique_ptr<RankingEngine>> refs(snaps.size());
  for (size_t p = 0; p < kProducers; ++p) {
    for (size_t r = 0; r < streams[p].size(); ++r) {
      const ServedResponse& resp = got[p][r];
      ASSERT_GE(resp.snapshot_seq, 1u);
      ASSERT_LE(resp.snapshot_seq, snaps.size());
      const size_t g = resp.snapshot_seq - 1;
      EXPECT_EQ(resp.snapshot, snaps[g]) << "seq/snapshot mismatch";
      if (refs[g] == nullptr) {
        refs[g] = std::make_unique<RankingEngine>(d, *snaps[g], ref_pool,
                                                  cfg.serve);
      }
      ExpectSameResponse(resp.topk, refs[g]->Handle(streams[p][r]),
                         "hot-swap producer " + std::to_string(p) +
                             " request " + std::to_string(r));
    }
  }
  // A request after the last publish is served by the last snapshot.
  EXPECT_EQ(frontend.HandleSync(Req(0, 5)).snapshot_seq, 3u);
  EXPECT_EQ(frontend.stats().snapshots_published, 3u);
}

TEST(ServingFrontEnd, DestructorDrainsEverySubmittedRequest) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 7);
  std::vector<std::future<ServedResponse>> futures;
  {
    // Slow flush policy: requests are still queued when the
    // destructor runs — it must serve them all, not drop them.
    ServingFrontEnd frontend(d, *model,
                             Config(/*max_batch=*/1024, /*flush_us=*/50000));
    for (uint32_t u = 0; u < 20; ++u) {
      futures.push_back(frontend.Submit(Req(u, 5)));
    }
  }
  InferenceService sync(d, *model, Config().serve);
  for (uint32_t u = 0; u < 20; ++u) {
    ASSERT_TRUE(futures[u].valid());
    ExpectSameResponse(futures[u].get().topk, sync.Handle(Req(u, 5)),
                       "drained request " + std::to_string(u));
  }
}

TEST(ServingFrontEnd, InvalidRequestsFailTheirOwnFuture) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 8);
  ServingFrontEnd frontend(d, *model, Config(/*max_batch=*/4));

  const std::vector<uint32_t> unsorted = {5, 3};
  std::vector<TopKRequest> reqs = {
      Req(1, 5),                          // valid
      Req(d.num_users() + 7, 5),          // user out of range
      Req(2, 0),                          // k == 0
      Req(3, 5, true, unsorted),          // unsorted extra_seen
  };
  std::vector<std::future<ServedResponse>> futures =
      frontend.SubmitBatch(reqs);
  // The valid request in the same batch is served normally...
  InferenceService sync(d, *model, Config().serve);
  ExpectSameResponse(futures[0].get().topk, sync.Handle(reqs[0]),
                     "valid request beside invalid ones");
  // ...while each malformed one fails its own future.
  for (size_t i = 1; i < futures.size(); ++i) {
    EXPECT_THROW(futures[i].get(), std::invalid_argument)
        << "request " << i;
  }
  frontend.Drain();  // stats are settled once the queue is idle
  const serve::FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.rejected, 3u);
  EXPECT_EQ(st.requests, reqs.size());
}

TEST(ServingFrontEnd, ExtraSeenIsCopiedAtSubmit) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 9);
  ServingFrontEnd frontend(d, *model, Config());
  InferenceService sync(d, *model, Config().serve);

  std::vector<uint32_t> extra = {2, 4, 9};
  std::future<ServedResponse> fut = frontend.Submit(Req(5, 8, true, extra));
  const TopKResponse want = sync.Handle(Req(5, 8, true, extra));
  // Clobber the caller's buffer before the future resolves — the
  // front end owns its copy.
  extra.assign({88, 89, 90});
  ExpectSameResponse(fut.get().topk, want, "extra_seen lifetime");
}

TEST(ServingFrontEnd, DrainBlocksUntilQueueIsServed) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 10);
  ServingFrontEnd frontend(d, *model, Config(/*max_batch=*/8));
  std::vector<std::future<ServedResponse>> futures;
  for (uint32_t u = 0; u < 30; ++u) {
    futures.push_back(frontend.Submit(Req(u % d.num_users(), 5)));
  }
  frontend.Drain();
  EXPECT_EQ(frontend.stats().requests, futures.size());
  for (std::future<ServedResponse>& fut : futures) {
    EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  }
}

}  // namespace
}  // namespace bslrec
