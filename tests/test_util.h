// Shared helpers for the bslrec test suite.
#ifndef BSLREC_TESTS_TEST_UTIL_H_
#define BSLREC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <span>
#include <vector>

#include "core/losses.h"
#include "data/dataset.h"
#include "gtest/gtest.h"
#include "math/rng.h"

namespace bslrec::testing {

// Finite-difference gradient check of a LossFunction against its analytic
// gradients at the given score point. Verifies both dL/df+ and dL/df-_j
// with central differences.
inline void CheckLossGradients(const LossFunction& loss, float pos_score,
                               std::vector<float> neg_scores,
                               double abs_tol = 2e-4) {
  const size_t n = neg_scores.size();
  std::vector<float> d_neg(n, 0.0f);
  float d_pos = 0.0f;
  loss.Compute(pos_score, neg_scores, &d_pos, d_neg);

  const float eps = 1e-3f;
  std::vector<float> scratch(n, 0.0f);
  float unused = 0.0f;

  const double lp =
      loss.Compute(pos_score + eps, neg_scores, &unused, scratch);
  const double lm =
      loss.Compute(pos_score - eps, neg_scores, &unused, scratch);
  EXPECT_NEAR((lp - lm) / (2.0 * eps), d_pos, abs_tol)
      << loss.name() << ": dL/df+ mismatch";

  for (size_t j = 0; j < n; ++j) {
    std::vector<float> bumped = neg_scores;
    bumped[j] += eps;
    const double ljp = loss.Compute(pos_score, bumped, &unused, scratch);
    bumped[j] -= 2.0f * eps;
    const double ljm = loss.Compute(pos_score, bumped, &unused, scratch);
    EXPECT_NEAR((ljp - ljm) / (2.0 * eps), d_neg[j], abs_tol)
        << loss.name() << ": dL/df-[" << j << "] mismatch";
  }
}

// Tiny deterministic dataset: 4 users x 6 items.
//   u0: train {0,1}, test {2}
//   u1: train {2,3}, test {4}
//   u2: train {4,5}, test {0}
//   u3: train {0,5}, test {3}
inline Dataset TinyDataset() {
  std::vector<Edge> train = {{0, 0}, {0, 1}, {1, 2}, {1, 3},
                             {2, 4}, {2, 5}, {3, 0}, {3, 5}};
  std::vector<Edge> test = {{0, 2}, {1, 4}, {2, 0}, {3, 3}};
  return Dataset(4, 6, std::move(train), std::move(test));
}

// Random score vectors for property sweeps.
inline std::vector<float> RandomScores(size_t n, Rng& rng, float lo = -1.0f,
                                       float hi = 1.0f) {
  std::vector<float> s(n);
  for (auto& x : s) {
    x = lo + (hi - lo) * static_cast<float>(rng.NextDouble());
  }
  return s;
}

}  // namespace bslrec::testing

#endif  // BSLREC_TESTS_TEST_UTIL_H_
