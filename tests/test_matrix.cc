#include "math/matrix.h"

#include <cmath>
#include <tuple>

#include "gtest/gtest.h"
#include "math/rng.h"

namespace bslrec {
namespace {

// Naive reference product for validating the optimized kernels.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) {
        acc += static_cast<double>(a.At(i, k)) * b.At(k, j);
      }
      out.At(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

Matrix RandomMatrix(size_t r, size_t c, Rng& rng) {
  Matrix m(r, c);
  m.InitGaussian(rng, 1.0f);
  return m;
}

void ExpectMatrixNear(const Matrix& a, const Matrix& b, float tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(a.At(i, j), b.At(i, j), tol) << "(" << i << "," << j << ")";
    }
  }
}

TEST(Matrix, ShapeAndAccessors) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FALSE(m.empty());
  m.At(2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(m.Row(2)[3], 5.0f);
  Matrix empty;
  EXPECT_TRUE(empty.empty());
}

TEST(Matrix, StartsZeroedAndSetZero) {
  Matrix m(2, 2);
  for (size_t k = 0; k < m.size(); ++k) EXPECT_FLOAT_EQ(m.data()[k], 0.0f);
  m.At(0, 0) = 3.0f;
  m.SetZero();
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(Matrix, AddScaled) {
  Matrix a(2, 2), b(2, 2);
  a.At(0, 0) = 1.0f;
  b.At(0, 0) = 2.0f;
  b.At(1, 1) = 4.0f;
  a.AddScaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(a.At(1, 1), 2.0f);
}

TEST(Matrix, XavierUniformWithinBound) {
  Rng rng(1);
  Matrix m(30, 20);
  m.InitXavierUniform(rng);
  const float bound = std::sqrt(6.0f / (30 + 20));
  float max_abs = 0.0f;
  for (size_t k = 0; k < m.size(); ++k) {
    max_abs = std::max(max_abs, std::abs(m.data()[k]));
  }
  EXPECT_LE(max_abs, bound);
  EXPECT_GT(max_abs, bound * 0.5f);  // actually fills the range
}

TEST(Matrix, GaussianInitStats) {
  Rng rng(2);
  Matrix m(100, 100);
  m.InitGaussian(rng, 2.0f);
  double sum = 0.0, sum_sq = 0.0;
  for (size_t k = 0; k < m.size(); ++k) {
    sum += m.data()[k];
    sum_sq += static_cast<double>(m.data()[k]) * m.data()[k];
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 4.0, 0.15);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(1, 2);
  m.At(0, 0) = 3.0f;
  m.At(0, 1) = 4.0f;
  EXPECT_FLOAT_EQ(m.FrobeniusNorm(), 5.0f);
}

class MatMulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, MatMulMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(5);
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix b = RandomMatrix(k, n, rng);
  Matrix out(m, n);
  MatMul(a, b, out);
  ExpectMatrixNear(out, NaiveMatMul(a, b), 1e-4f);
}

TEST_P(MatMulShapes, MatMulAccumAddsOnTop) {
  const auto [m, k, n] = GetParam();
  Rng rng(6);
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix b = RandomMatrix(k, n, rng);
  Matrix out(m, n);
  for (size_t x = 0; x < out.size(); ++x) out.data()[x] = 1.0f;
  MatMulAccum(a, b, out);
  Matrix expected = NaiveMatMul(a, b);
  for (size_t x = 0; x < expected.size(); ++x) expected.data()[x] += 1.0f;
  ExpectMatrixNear(out, expected, 1e-4f);
}

TEST_P(MatMulShapes, MatTMulMatchesNaiveTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(7);
  const Matrix a = RandomMatrix(k, m, rng);  // a^T is m x k
  const Matrix b = RandomMatrix(k, n, rng);
  Matrix out(m, n);
  MatTMul(a, b, out);
  // Reference: transpose a explicitly.
  Matrix at(m, k);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) at.At(j, i) = a.At(i, j);
  }
  ExpectMatrixNear(out, NaiveMatMul(at, b), 1e-4f);
}

TEST_P(MatMulShapes, MatMulTAccumMatchesNaive) {
  const auto [m, k, n] = GetParam();
  Rng rng(8);
  const Matrix a = RandomMatrix(m, k, rng);
  const Matrix b = RandomMatrix(n, k, rng);  // b^T is k x n
  Matrix out(m, n);
  MatMulTAccum(a, b, out);
  Matrix bt(k, n);
  for (size_t i = 0; i < b.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) bt.At(j, i) = b.At(i, j);
  }
  ExpectMatrixNear(out, NaiveMatMul(a, bt), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 5, 5), std::make_tuple(7, 2, 9),
                      std::make_tuple(16, 16, 16)));

}  // namespace
}  // namespace bslrec
