#include "sampling/negative_sampler.h"

#include <memory>
#include <vector>

#include "core/losses.h"
#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "models/mf.h"
#include "runtime/thread_pool.h"
#include "test_util.h"
#include "train/trainer.h"

namespace bslrec {
namespace {

Dataset MediumDataset(uint64_t seed = 1) {
  SyntheticConfig c;
  c.num_users = 60;
  c.num_items = 100;
  c.avg_items_per_user = 15.0;
  c.seed = seed;
  return GenerateSynthetic(c).dataset;
}

TEST(UniformSampler, NeverReturnsTrainPositives) {
  const Dataset d = MediumDataset();
  UniformNegativeSampler sampler(d);
  Rng rng(2);
  std::vector<uint32_t> out;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    sampler.Sample(u, 50, rng, out);
    ASSERT_EQ(out.size(), 50u);
    for (uint32_t j : out) {
      EXPECT_LT(j, d.num_items());
      EXPECT_FALSE(d.IsTrainPositive(u, j));
    }
  }
}

TEST(UniformSampler, ClearsOutputVector) {
  const Dataset d = MediumDataset();
  UniformNegativeSampler sampler(d);
  Rng rng(3);
  std::vector<uint32_t> out = {999, 999};
  sampler.Sample(0, 5, rng, out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(UniformSampler, CoversNegativeSpace) {
  const Dataset d = testing::TinyDataset();
  UniformNegativeSampler sampler(d);
  Rng rng(4);
  std::vector<uint32_t> out;
  std::vector<int> seen(d.num_items(), 0);
  sampler.Sample(0, 2000, rng, out);
  for (uint32_t j : out) ++seen[j];
  // User 0's train positives are {0, 1}; all other items should appear.
  EXPECT_EQ(seen[0], 0);
  EXPECT_EQ(seen[1], 0);
  for (uint32_t i = 2; i < 6; ++i) EXPECT_GT(seen[i], 0) << "item " << i;
}

TEST(PopularitySampler, PrefersPopularItems) {
  // Build a dataset where item 0 is hugely popular.
  std::vector<Edge> train;
  for (uint32_t u = 1; u < 50; ++u) train.push_back({u, 0});
  for (uint32_t u = 0; u < 50; ++u) train.push_back({u, 1 + u % 9});
  const Dataset d(50, 10, std::move(train), {});
  PopularityNegativeSampler sampler(d, /*beta=*/1.0);
  Rng rng(5);
  std::vector<uint32_t> out;
  std::vector<int> counts(10, 0);
  // User 0 never interacted with item 0, so it is a valid negative.
  for (int r = 0; r < 200; ++r) {
    sampler.Sample(0, 10, rng, out);
    for (uint32_t j : out) ++counts[j];
  }
  int max_other = 0;
  for (uint32_t i = 2; i < 10; ++i) max_other = std::max(max_other, counts[i]);
  EXPECT_GT(counts[0], 3 * max_other);
}

TEST(PopularitySampler, StillExcludesPositives) {
  const Dataset d = MediumDataset();
  PopularityNegativeSampler sampler(d, 0.75);
  Rng rng(6);
  std::vector<uint32_t> out;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    sampler.Sample(u, 30, rng, out);
    for (uint32_t j : out) EXPECT_FALSE(d.IsTrainPositive(u, j));
  }
}

TEST(NoisySampler, ZeroNoiseMatchesUniformBehavior) {
  const Dataset d = MediumDataset();
  NoisyNegativeSampler sampler(d, 0.0);
  Rng rng(7);
  std::vector<uint32_t> out;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    sampler.Sample(u, 40, rng, out);
    for (uint32_t j : out) EXPECT_FALSE(d.IsTrainPositive(u, j));
  }
}

class NoisySamplerRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoisySamplerRateSweep, FalseNegativeRateMatchesOdds) {
  const double r_noise = GetParam();
  const Dataset d = MediumDataset(9);
  NoisyNegativeSampler sampler(d, r_noise);
  Rng rng(8);
  std::vector<uint32_t> out;
  size_t positives = 0, total = 0;
  double expected_rate_sum = 0.0;
  size_t users = 0;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    const double n_pos = static_cast<double>(d.TrainItems(u).size());
    const double n_neg = static_cast<double>(d.num_items()) - n_pos;
    expected_rate_sum += r_noise * n_pos / (r_noise * n_pos + n_neg);
    ++users;
    sampler.Sample(u, 400, rng, out);
    for (uint32_t j : out) {
      ++total;
      if (d.IsTrainPositive(u, j)) ++positives;
    }
  }
  const double observed = static_cast<double>(positives) / total;
  const double expected = expected_rate_sum / users;
  EXPECT_NEAR(observed, expected, 0.02) << "r_noise=" << r_noise;
}

INSTANTIATE_TEST_SUITE_P(Rates, NoisySamplerRateSweep,
                         ::testing::Values(0.5, 1.0, 3.0, 5.0, 10.0));

TEST(NoisySampler, HigherOddsMoreFalseNegatives) {
  const Dataset d = MediumDataset(10);
  Rng rng(11);
  std::vector<uint32_t> out;
  const auto rate = [&](double r) {
    NoisyNegativeSampler sampler(d, r);
    Rng local(12);
    size_t pos = 0, total = 0;
    for (uint32_t u = 0; u < d.num_users(); ++u) {
      sampler.Sample(u, 200, local, out);
      for (uint32_t j : out) {
        ++total;
        if (d.IsTrainPositive(u, j)) ++pos;
      }
    }
    return static_cast<double>(pos) / total;
  };
  EXPECT_LT(rate(0.5), rate(3.0));
  EXPECT_LT(rate(3.0), rate(10.0));
}

// ---- counter-based stream sampling ----

// Draws n_neg negatives for every sample index in [0, num_samples) over
// `threads` workers, the exact pattern the trainer uses: one StreamRng
// per sample keyed by its index, drawn inside fixed-grain shards.
std::vector<uint32_t> DrawAllStream(const NegativeSampler& sampler,
                                    const Dataset& d, size_t num_samples,
                                    size_t n_neg, size_t threads,
                                    uint64_t seed = 77, uint64_t epoch = 3) {
  runtime::ThreadPool pool(threads);
  const SamplerDispatch sample = sampler.Dispatch();
  std::vector<uint32_t> all(num_samples * n_neg);
  runtime::ParallelFor(
      pool, 0, num_samples, 16,
      [&](size_t lo, size_t hi, size_t /*shard*/, size_t /*worker*/) {
        for (size_t s = lo; s < hi; ++s) {
          StreamRng stream(seed, epoch, s);
          sample(static_cast<uint32_t>(s % d.num_users()), stream,
                 {all.data() + s * n_neg, n_neg});
        }
      });
  return all;
}

std::vector<std::unique_ptr<NegativeSampler>> AllSamplers(const Dataset& d) {
  std::vector<std::unique_ptr<NegativeSampler>> samplers;
  samplers.push_back(std::make_unique<UniformNegativeSampler>(d));
  samplers.push_back(std::make_unique<PopularityNegativeSampler>(d, 0.75));
  samplers.push_back(std::make_unique<NoisyNegativeSampler>(d, 2.0));
  return samplers;
}

TEST(StreamSampling, BitIdenticalAcrossWorkerCounts) {
  const Dataset d = MediumDataset(21);
  for (const auto& sampler : AllSamplers(d)) {
    const auto at1 = DrawAllStream(*sampler, d, 300, 24, 1);
    const auto at2 = DrawAllStream(*sampler, d, 300, 24, 2);
    const auto at8 = DrawAllStream(*sampler, d, 300, 24, 8);
    EXPECT_EQ(at1, at2);
    EXPECT_EQ(at1, at8);
  }
}

TEST(StreamSampling, SampleStreamMatchesDispatch) {
  // The virtual convenience entry point and the devirtualized handle
  // must be the same function.
  const Dataset d = MediumDataset(22);
  for (const auto& sampler : AllSamplers(d)) {
    std::vector<uint32_t> via_virtual(16), via_dispatch(16);
    StreamRng s1(5, 1, 9), s2(5, 1, 9);
    sampler->SampleStream(3, s1, via_virtual);
    sampler->Dispatch()(3, s2, {via_dispatch.data(), via_dispatch.size()});
    EXPECT_EQ(via_virtual, via_dispatch);
  }
}

TEST(StreamSampling, TrueNegativeSamplersStillExcludePositives) {
  const Dataset d = MediumDataset(23);
  const UniformNegativeSampler uniform(d);
  const PopularityNegativeSampler popularity(d, 1.0);
  for (const NegativeSampler* sampler :
       {static_cast<const NegativeSampler*>(&uniform),
        static_cast<const NegativeSampler*>(&popularity)}) {
    const auto all = DrawAllStream(*sampler, d, 240, 32, 4);
    for (size_t s = 0; s < 240; ++s) {
      const uint32_t u = static_cast<uint32_t>(s % d.num_users());
      for (size_t j = 0; j < 32; ++j) {
        const uint32_t i = all[s * 32 + j];
        EXPECT_LT(i, d.num_items());
        EXPECT_FALSE(d.IsTrainPositive(u, i));
      }
    }
  }
}

TEST(StreamSampling, DrawsUniformAcrossSampleIndices) {
  // Chi-square-style uniformity over a small catalog, pooling draws from
  // many *distinct* per-sample streams for one user: if streams for
  // adjacent sample indices were correlated, bucket counts would skew.
  const Dataset d = testing::TinyDataset();  // user 0 positives: {0, 1}
  const UniformNegativeSampler sampler(d);
  const SamplerDispatch sample = sampler.Dispatch();
  std::vector<int> counts(d.num_items(), 0);
  constexpr size_t kStreams = 30000;
  constexpr size_t kPerStream = 2;
  std::vector<uint32_t> buf(kPerStream);
  for (size_t s = 0; s < kStreams; ++s) {
    StreamRng stream(99, 0, s);
    sample(0, stream, {buf.data(), buf.size()});
    for (uint32_t i : buf) ++counts[i];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
  const double draws = static_cast<double>(kStreams * kPerStream);
  const double expected = draws / 4.0;  // 4 allowed items
  double chi2 = 0.0;
  for (uint32_t i = 2; i < d.num_items(); ++i) {
    const double diff = counts[i] - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 16.3);  // chi2(3) 99.9th percentile
}

TEST(StreamSampling, LegacyApiDoesNotReallocateSteadyState) {
  const Dataset d = MediumDataset(24);
  Rng rng(9);
  for (const auto& sampler : AllSamplers(d)) {
    std::vector<uint32_t> out;
    sampler->Sample(0, 40, rng, out);  // first call sizes the buffer
    const uint32_t* data = out.data();
    const size_t cap = out.capacity();
    for (uint32_t u = 0; u < d.num_users(); ++u) {
      sampler->Sample(u, 40, rng, out);
      EXPECT_EQ(out.size(), 40u);
      EXPECT_EQ(out.data(), data);
      EXPECT_EQ(out.capacity(), cap);
    }
    // Smaller requests shrink the size but keep the capacity.
    sampler->Sample(0, 10, rng, out);
    EXPECT_EQ(out.size(), 10u);
    EXPECT_EQ(out.data(), data);
    EXPECT_EQ(out.capacity(), cap);
  }
}

TEST(StreamSampling, TrainingRunReproducesWhenOnlyThreadCountChanges) {
  // End-to-end: the whole training history must be bit-identical when
  // nothing but runtime.num_threads changes, for every sampler kind —
  // the invariance the counter-based streams guarantee by construction.
  const Dataset d = MediumDataset(25);
  const auto run = [&](const NegativeSampler& sampler, size_t threads) {
    Rng rng(6);
    MfModel model(d.num_users(), d.num_items(), 8, rng);
    SoftmaxLoss loss(0.2);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 128;
    cfg.num_negatives = 8;
    cfg.eval_every = 1;
    cfg.seed = 31;
    cfg.runtime.num_threads = threads;
    Trainer trainer(d, model, loss, sampler, cfg);
    return trainer.Train();
  };
  for (const auto& sampler : AllSamplers(d)) {
    const TrainResult t1 = run(*sampler, 1);
    const TrainResult t4 = run(*sampler, 4);
    ASSERT_EQ(t1.history.size(), t4.history.size());
    for (size_t k = 0; k < t1.history.size(); ++k) {
      EXPECT_EQ(t1.history[k].avg_loss, t4.history[k].avg_loss);
    }
    EXPECT_EQ(t1.best.ndcg, t4.best.ndcg);
    EXPECT_EQ(t1.best.recall, t4.best.recall);
  }
}

}  // namespace
}  // namespace bslrec
