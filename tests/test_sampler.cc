#include "sampling/negative_sampler.h"

#include <vector>

#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace bslrec {
namespace {

Dataset MediumDataset(uint64_t seed = 1) {
  SyntheticConfig c;
  c.num_users = 60;
  c.num_items = 100;
  c.avg_items_per_user = 15.0;
  c.seed = seed;
  return GenerateSynthetic(c).dataset;
}

TEST(UniformSampler, NeverReturnsTrainPositives) {
  const Dataset d = MediumDataset();
  UniformNegativeSampler sampler(d);
  Rng rng(2);
  std::vector<uint32_t> out;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    sampler.Sample(u, 50, rng, out);
    ASSERT_EQ(out.size(), 50u);
    for (uint32_t j : out) {
      EXPECT_LT(j, d.num_items());
      EXPECT_FALSE(d.IsTrainPositive(u, j));
    }
  }
}

TEST(UniformSampler, ClearsOutputVector) {
  const Dataset d = MediumDataset();
  UniformNegativeSampler sampler(d);
  Rng rng(3);
  std::vector<uint32_t> out = {999, 999};
  sampler.Sample(0, 5, rng, out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(UniformSampler, CoversNegativeSpace) {
  const Dataset d = testing::TinyDataset();
  UniformNegativeSampler sampler(d);
  Rng rng(4);
  std::vector<uint32_t> out;
  std::vector<int> seen(d.num_items(), 0);
  sampler.Sample(0, 2000, rng, out);
  for (uint32_t j : out) ++seen[j];
  // User 0's train positives are {0, 1}; all other items should appear.
  EXPECT_EQ(seen[0], 0);
  EXPECT_EQ(seen[1], 0);
  for (uint32_t i = 2; i < 6; ++i) EXPECT_GT(seen[i], 0) << "item " << i;
}

TEST(PopularitySampler, PrefersPopularItems) {
  // Build a dataset where item 0 is hugely popular.
  std::vector<Edge> train;
  for (uint32_t u = 1; u < 50; ++u) train.push_back({u, 0});
  for (uint32_t u = 0; u < 50; ++u) train.push_back({u, 1 + u % 9});
  const Dataset d(50, 10, std::move(train), {});
  PopularityNegativeSampler sampler(d, /*beta=*/1.0);
  Rng rng(5);
  std::vector<uint32_t> out;
  std::vector<int> counts(10, 0);
  // User 0 never interacted with item 0, so it is a valid negative.
  for (int r = 0; r < 200; ++r) {
    sampler.Sample(0, 10, rng, out);
    for (uint32_t j : out) ++counts[j];
  }
  int max_other = 0;
  for (uint32_t i = 2; i < 10; ++i) max_other = std::max(max_other, counts[i]);
  EXPECT_GT(counts[0], 3 * max_other);
}

TEST(PopularitySampler, StillExcludesPositives) {
  const Dataset d = MediumDataset();
  PopularityNegativeSampler sampler(d, 0.75);
  Rng rng(6);
  std::vector<uint32_t> out;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    sampler.Sample(u, 30, rng, out);
    for (uint32_t j : out) EXPECT_FALSE(d.IsTrainPositive(u, j));
  }
}

TEST(NoisySampler, ZeroNoiseMatchesUniformBehavior) {
  const Dataset d = MediumDataset();
  NoisyNegativeSampler sampler(d, 0.0);
  Rng rng(7);
  std::vector<uint32_t> out;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    sampler.Sample(u, 40, rng, out);
    for (uint32_t j : out) EXPECT_FALSE(d.IsTrainPositive(u, j));
  }
}

class NoisySamplerRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoisySamplerRateSweep, FalseNegativeRateMatchesOdds) {
  const double r_noise = GetParam();
  const Dataset d = MediumDataset(9);
  NoisyNegativeSampler sampler(d, r_noise);
  Rng rng(8);
  std::vector<uint32_t> out;
  size_t positives = 0, total = 0;
  double expected_rate_sum = 0.0;
  size_t users = 0;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    const double n_pos = static_cast<double>(d.TrainItems(u).size());
    const double n_neg = static_cast<double>(d.num_items()) - n_pos;
    expected_rate_sum += r_noise * n_pos / (r_noise * n_pos + n_neg);
    ++users;
    sampler.Sample(u, 400, rng, out);
    for (uint32_t j : out) {
      ++total;
      if (d.IsTrainPositive(u, j)) ++positives;
    }
  }
  const double observed = static_cast<double>(positives) / total;
  const double expected = expected_rate_sum / users;
  EXPECT_NEAR(observed, expected, 0.02) << "r_noise=" << r_noise;
}

INSTANTIATE_TEST_SUITE_P(Rates, NoisySamplerRateSweep,
                         ::testing::Values(0.5, 1.0, 3.0, 5.0, 10.0));

TEST(NoisySampler, HigherOddsMoreFalseNegatives) {
  const Dataset d = MediumDataset(10);
  Rng rng(11);
  std::vector<uint32_t> out;
  const auto rate = [&](double r) {
    NoisyNegativeSampler sampler(d, r);
    Rng local(12);
    size_t pos = 0, total = 0;
    for (uint32_t u = 0; u < d.num_users(); ++u) {
      sampler.Sample(u, 200, local, out);
      for (uint32_t j : out) {
        ++total;
        if (d.IsTrainPositive(u, j)) ++pos;
      }
    }
    return static_cast<double>(pos) / total;
  };
  EXPECT_LT(rate(0.5), rate(3.0));
  EXPECT_LT(rate(3.0), rate(10.0));
}

}  // namespace
}  // namespace bslrec
