// Tests for the serving layer: snapshot construction, the sharded
// top-k scoring core, and the inference service's batching, seen-item
// filtering, cutoff-prefix reuse, and thread-count determinism.
#include "serve/inference_service.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "math/vec.h"
#include "models/mf.h"
#include "serve/model_snapshot.h"
#include "serve/topk_scorer.h"
#include "test_util.h"

namespace bslrec {
namespace {

using serve::CatalogScorer;
using serve::InferenceService;
using serve::ModelSnapshot;
using serve::ScoredItem;
using serve::ServeConfig;
using serve::TopKRequest;
using serve::TopKResponse;

// A dataset big enough that item shards and thread counts both matter.
Dataset MediumDataset(uint64_t seed = 11) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 90;
  cfg.num_clusters = 5;
  cfg.avg_items_per_user = 10.0;
  cfg.seed = seed;
  return GenerateSynthetic(cfg).dataset;
}

ServeConfig Config(size_t threads, uint32_t items_per_shard = 16,
                   uint32_t max_k = 20, bool cache = true) {
  ServeConfig cfg;
  cfg.max_k = max_k;
  cfg.items_per_shard = items_per_shard;
  cfg.cache_rankings = cache;
  cfg.runtime.num_threads = threads;
  return cfg;
}

TopKRequest Req(uint32_t user, uint32_t k, bool filter_seen = true,
                std::span<const uint32_t> extra_seen = {}) {
  TopKRequest req;
  req.user = user;
  req.k = k;
  req.filter_seen = filter_seen;
  req.extra_seen = extra_seen;
  return req;
}

void ExpectSameResponse(const TopKResponse& a, const TopKResponse& b,
                        const std::string& what) {
  ASSERT_EQ(a.items.size(), b.items.size()) << what;
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i], b.items[i]) << what << " rank " << i;
    // Bit-identical, not approximately equal: the determinism contract.
    EXPECT_EQ(a.scores[i], b.scores[i]) << what << " rank " << i;
  }
}

TEST(ModelSnapshot, RowsAreUnitNorm) {
  const Dataset d = MediumDataset();
  Rng rng(1);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  runtime::ThreadPool pool(2);
  const ModelSnapshot snap(model, pool);
  EXPECT_EQ(snap.num_users(), d.num_users());
  EXPECT_EQ(snap.num_items(), d.num_items());
  EXPECT_EQ(snap.dim(), 8u);
  for (uint32_t u = 0; u < snap.num_users(); ++u) {
    const float n = vec::Dot(snap.UserVec(u), snap.UserVec(u), snap.dim());
    EXPECT_NEAR(n, 1.0f, 1e-5f) << "user " << u;
  }
  for (uint32_t i = 0; i < snap.num_items(); ++i) {
    const float n = vec::Dot(snap.ItemVec(i), snap.ItemVec(i), snap.dim());
    EXPECT_NEAR(n, 1.0f, 1e-5f) << "item " << i;
  }
}

TEST(ModelSnapshot, IsImmutableCopyOfTheModel) {
  const Dataset d = testing::TinyDataset();
  Rng rng(2);
  MfModel model(d.num_users(), d.num_items(), 4, rng);
  model.Forward(rng);
  runtime::ThreadPool pool(1);
  const ModelSnapshot snap(model, pool);
  const std::vector<float> before(snap.ItemVec(0), snap.ItemVec(0) + 4);
  // Clobber the model; the snapshot must not move.
  for (ParamGrad& pg : model.Params()) pg.value->SetZero();
  model.Forward(rng);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(snap.ItemVec(0)[c], before[c]);
  }
}

TEST(TopKScorer, SelectTopKOrdersAndExcludes) {
  const float scores[] = {0.1f, 0.9f, 0.9f, 0.5f, -0.2f};
  const std::vector<uint32_t> exclude = {1};
  const std::vector<ScoredItem> top =
      serve::SelectTopK(scores, 0, 5, 3, exclude);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 2u);  // 0.9, id 1 excluded
  EXPECT_EQ(top[1].item, 3u);  // 0.5
  EXPECT_EQ(top[2].item, 0u);  // 0.1
}

TEST(TopKScorer, ShardSizeNeverChangesTheResult) {
  const Dataset d = MediumDataset();
  Rng rng(3);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  runtime::ThreadPool pool(2);
  const ModelSnapshot snap(model, pool);
  const std::vector<uint32_t> exclude = d.TestUsers();  // arbitrary ids
  const serve::ScoreQuery query{snap.UserVec(7), 12, exclude};
  const CatalogScorer reference(snap, pool, d.num_items() + 1);
  const std::vector<ScoredItem> want = reference.TopK(query);
  ASSERT_EQ(want.size(), 12u);
  for (uint32_t shard : {1u, 7u, 16u, 64u}) {
    const CatalogScorer scorer(snap, pool, shard);
    const std::vector<ScoredItem> got = scorer.TopK(query);
    ASSERT_EQ(got.size(), want.size()) << "shard " << shard;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].item, want[i].item) << "shard " << shard;
      EXPECT_EQ(got[i].score, want[i].score) << "shard " << shard;
    }
  }
}

TEST(InferenceService, MatchesEvaluatorRankingsOnTheSameSnapshot) {
  const Dataset d = MediumDataset();
  Rng rng(4);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const uint32_t k = 15;
  const Evaluator eval(d, k, runtime::RuntimeConfig{2});
  Evaluator::Pass pass = eval.BeginPass(model);
  InferenceService service(d, model, Config(2));
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    const std::vector<uint32_t> want = pass.TopKForUser(u);
    const TopKResponse got = service.Handle(Req(u, k));
    ASSERT_EQ(got.items.size(), want.size()) << "user " << u;
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got.items[i], want[i]) << "user " << u << " rank " << i;
    }
  }
}

TEST(InferenceService, BatchedMatchesSingleRequests) {
  const Dataset d = MediumDataset();
  Rng rng(5);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  // Mixed batch: repeats, different cutoffs, a custom-filtered request.
  const std::vector<uint32_t> extra = {3, 40, 41};
  std::vector<TopKRequest> reqs;
  reqs.push_back(Req(5, 10));
  reqs.push_back(Req(9, 4));
  reqs.push_back(Req(5, 4));              // same user, smaller cutoff
  reqs.push_back(Req(12, 8, false));      // unfiltered
  reqs.push_back(Req(17, 6, true, extra));  // extra seen ids
  reqs.push_back(Req(5, 10));             // exact repeat

  InferenceService batched(d, model, Config(2));
  InferenceService single(d, model, Config(2));
  const std::vector<TopKResponse> got = batched.HandleBatch(reqs);
  ASSERT_EQ(got.size(), reqs.size());
  for (size_t r = 0; r < reqs.size(); ++r) {
    ExpectSameResponse(got[r], single.Handle(reqs[r]),
                       "request " + std::to_string(r));
  }
}

TEST(InferenceService, BitIdenticalAcrossThreadCounts) {
  const Dataset d = MediumDataset();
  Rng rng(6);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  std::vector<TopKRequest> reqs;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    reqs.push_back(Req(u, 1 + u % 19));
  }
  InferenceService baseline(d, model, Config(1));
  const std::vector<TopKResponse> want = baseline.HandleBatch(reqs);
  for (size_t threads : {2u, 8u}) {
    InferenceService service(d, model, Config(threads));
    const std::vector<TopKResponse> got = service.HandleBatch(reqs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t r = 0; r < want.size(); ++r) {
      ExpectSameResponse(got[r], want[r],
                         std::to_string(threads) + " threads, request " +
                             std::to_string(r));
    }
  }
}

TEST(InferenceService, FiltersSeenItemsPerRequest) {
  const Dataset d = MediumDataset();
  Rng rng(7);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  InferenceService service(d, model, Config(2));
  const uint32_t full_k = d.num_items();
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    // Default: no train positive may appear, and everything else does.
    const TopKResponse filtered = service.Handle(Req(u, full_k));
    EXPECT_EQ(filtered.items.size(),
              d.num_items() - d.TrainItems(u).size());
    for (uint32_t item : filtered.items) {
      EXPECT_FALSE(d.IsTrainPositive(u, item)) << "user " << u;
    }
    // Unfiltered: the whole catalog comes back.
    const TopKResponse all = service.Handle(Req(u, full_k, false));
    EXPECT_EQ(all.items.size(), d.num_items());
  }
  // extra_seen masks on top of the train positives.
  const TopKResponse base = service.Handle(Req(0, 5));
  const std::vector<uint32_t> extra = {base.items[0]};
  const TopKResponse masked = service.Handle(Req(0, 5, true, extra));
  for (uint32_t item : masked.items) {
    EXPECT_NE(item, extra[0]);
  }
  // With the top item masked, the rest of the list shifts up by one.
  ASSERT_GE(masked.items.size(), 4u);
  for (size_t i = 0; i + 1 < base.items.size() && i < masked.items.size();
       ++i) {
    EXPECT_EQ(masked.items[i], base.items[i + 1]);
  }
}

TEST(InferenceService, SmallerCutoffsArePrefixesAndReuseTheCache) {
  const Dataset d = MediumDataset();
  Rng rng(8);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  InferenceService warm(d, model, Config(2, 16, 20));
  const TopKResponse deep = warm.Handle(Req(4, 20));
  ASSERT_EQ(deep.items.size(), 20u);
  for (uint32_t k : {1u, 3u, 12u}) {
    const TopKResponse prefix = warm.Handle(Req(4, k));
    ASSERT_EQ(prefix.items.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(prefix.items[i], deep.items[i]) << "k " << k;
      EXPECT_EQ(prefix.scores[i], deep.scores[i]) << "k " << k;
    }
  }
  // A cold service answering the small cutoff directly must agree with
  // the warm cache-served prefix, and so must a cache-disabled one.
  InferenceService cold(d, model, Config(2, 16, 20));
  ExpectSameResponse(cold.Handle(Req(4, 12)), warm.Handle(Req(4, 12)), "cold");
  InferenceService uncached(d, model, Config(2, 16, 20, false));
  ExpectSameResponse(uncached.Handle(Req(4, 12)), warm.Handle(Req(4, 12)),
                     "uncached");
  // Cutoffs beyond max_k bypass the cache but stay consistent prefixes.
  const TopKResponse deeper = warm.Handle(Req(4, 30));
  ASSERT_EQ(deeper.items.size(), 30u);
  for (size_t i = 0; i < deep.items.size(); ++i) {
    EXPECT_EQ(deeper.items[i], deep.items[i]);
  }
}

TEST(InferenceService, CutoffLargerThanCatalogIsClamped) {
  const Dataset d = testing::TinyDataset();
  Rng rng(9);
  MfModel model(d.num_users(), d.num_items(), 4, rng);
  model.Forward(rng);
  InferenceService service(d, model, Config(2, 4, 100));
  const TopKResponse resp = service.Handle(Req(0, 1000));
  EXPECT_EQ(resp.items.size(), d.num_items() - d.TrainItems(0).size());
  std::vector<uint32_t> sorted = resp.items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
}

TEST(InferenceService, ServesWhileTheModelKeepsChanging) {
  const Dataset d = testing::TinyDataset();
  Rng rng(10);
  MfModel model(d.num_users(), d.num_items(), 4, rng);
  model.Forward(rng);
  InferenceService service(d, model, Config(2, 4));
  const TopKResponse before = service.Handle(Req(1, 3));
  for (ParamGrad& pg : model.Params()) pg.value->SetZero();
  model.Forward(rng);
  ExpectSameResponse(service.Handle(Req(1, 3)), before, "after model change");
}

TEST(InferenceService, EmptyBatchIsANoOp) {
  const Dataset d = testing::TinyDataset();
  Rng rng(11);
  MfModel model(d.num_users(), d.num_items(), 4, rng);
  model.Forward(rng);
  InferenceService service(d, model, Config(1, 4));
  EXPECT_TRUE(service.HandleBatch({}).empty());
}

// ---- Quantized two-phase scan (see topk_scorer.h) ----

ServeConfig QuantConfig(size_t threads, uint32_t items_per_shard = 16,
                        uint32_t margin = serve::kDefaultCandidateMargin) {
  ServeConfig cfg = Config(threads, items_per_shard);
  cfg.quantize = true;
  cfg.candidate_margin = margin;
  return cfg;
}

serve::SnapshotOptions QuantSnapshotOptions() {
  serve::SnapshotOptions so;
  so.quantize_items = true;
  return so;
}

TEST(QuantizedSnapshot, Int8TableRoundTripsWithinHalfAStep) {
  const Dataset d = MediumDataset();
  Rng rng(30);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  runtime::ThreadPool pool(2);
  const ModelSnapshot snap(model, pool,
                           QuantSnapshotOptions());
  ASSERT_TRUE(snap.has_quantized_items());
  for (uint32_t i = 0; i < snap.num_items(); ++i) {
    const float scale = snap.ItemScale(i);
    const int8_t* codes = snap.ItemCodes(i);
    double l1 = 0.0;
    for (size_t j = 0; j < snap.dim(); ++j) {
      const double err =
          std::fabs(static_cast<double>(snap.ItemVec(i)[j]) -
                    static_cast<double>(codes[j]) * static_cast<double>(scale));
      EXPECT_LE(err, 0.5001 * scale + 1e-12) << "item " << i << " dim " << j;
      l1 += std::abs(static_cast<int>(codes[j]));
    }
    EXPECT_FLOAT_EQ(snap.ItemScaleL1(i),
                    scale * static_cast<float>(l1));
  }
}

TEST(QuantizedSnapshot, TableIsBitIdenticalForAnyWorkerCount) {
  const Dataset d = MediumDataset();
  Rng rng(31);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  runtime::ThreadPool pool1(1);
  const ModelSnapshot base(model, pool1,
                           QuantSnapshotOptions());
  for (const size_t threads : {2u, 8u}) {
    runtime::ThreadPool pool(threads);
    const ModelSnapshot snap(model, pool,
                             QuantSnapshotOptions());
    for (uint32_t i = 0; i < base.num_items(); ++i) {
      EXPECT_EQ(snap.ItemScale(i), base.ItemScale(i)) << "item " << i;
      for (size_t j = 0; j < base.dim(); ++j) {
        EXPECT_EQ(snap.ItemCodes(i)[j], base.ItemCodes(i)[j])
            << "item " << i << " dim " << j;
      }
    }
  }
}

TEST(QuantizedScorer, BitIdenticalToExactAcrossShardGrainsAndMargins) {
  const Dataset d = MediumDataset();
  Rng rng(32);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  runtime::ThreadPool pool(2);
  const ModelSnapshot snap(model, pool,
                           QuantSnapshotOptions());
  const std::vector<uint32_t> exclude = d.TestUsers();  // arbitrary ids
  const serve::ScoreQuery query{snap.UserVec(7), 12, exclude};
  const CatalogScorer reference(snap, pool, d.num_items() + 1);
  const std::vector<ScoredItem> want = reference.TopK(query);
  ASSERT_EQ(want.size(), 12u);
  for (const uint32_t shard : {1u, 7u, 16u, 64u, 128u}) {
    // Margin 0 maximizes fallback pressure; large margins maximize the
    // degenerate exact-score-all path. Same answer everywhere.
    for (const uint32_t margin : {0u, 2u, 64u, 1000u}) {
      const CatalogScorer scorer(
          snap, pool,
          serve::ScorerOptions{.items_per_shard = shard,
                               .quantize = true,
                               .candidate_margin = margin});
      const std::vector<ScoredItem> got = scorer.TopK(query);
      ASSERT_EQ(got.size(), want.size())
          << "shard " << shard << " margin " << margin;
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].item, want[i].item)
            << "shard " << shard << " margin " << margin << " rank " << i;
        EXPECT_EQ(got[i].score, want[i].score)
            << "shard " << shard << " margin " << margin << " rank " << i;
      }
    }
  }
}

TEST(QuantizedService, BitIdenticalToExactServiceAcrossThreadCounts) {
  const Dataset d = MediumDataset();
  Rng rng(33);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  std::vector<TopKRequest> reqs;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    reqs.push_back(Req(u, 1 + u % 19));
  }
  InferenceService exact(d, model, Config(1));
  const std::vector<TopKResponse> want = exact.HandleBatch(reqs);
  for (const size_t threads : {1u, 2u, 8u}) {
    InferenceService service(d, model, QuantConfig(threads));
    const std::vector<TopKResponse> got = service.HandleBatch(reqs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t r = 0; r < want.size(); ++r) {
      ExpectSameResponse(got[r], want[r],
                         "quantized " + std::to_string(threads) +
                             " threads, request " + std::to_string(r));
    }
  }
}

TEST(QuantizedService, BatchedMatchesSingleAndHonorsFilters) {
  const Dataset d = MediumDataset();
  Rng rng(34);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const std::vector<uint32_t> extra = {3, 40, 41};
  std::vector<TopKRequest> reqs;
  reqs.push_back(Req(5, 10));
  reqs.push_back(Req(9, 4));
  reqs.push_back(Req(12, 8, false));        // unfiltered
  reqs.push_back(Req(17, 6, true, extra));  // extra seen ids
  reqs.push_back(Req(5, 10));               // repeat
  InferenceService batched(d, model, QuantConfig(2));
  InferenceService single(d, model, QuantConfig(2));
  const std::vector<TopKResponse> got = batched.HandleBatch(reqs);
  ASSERT_EQ(got.size(), reqs.size());
  for (size_t r = 0; r < reqs.size(); ++r) {
    ExpectSameResponse(got[r], single.Handle(reqs[r]),
                       "quantized request " + std::to_string(r));
  }
}

// Near-tie score distributions are the quantized scan's worst case: the
// candidate margin cannot certify a boundary running through a tie
// plateau, so shards must fall back to the exact scan — and the result
// must still be bit-identical.
TEST(QuantizedService, AdversarialNearTiesFallBackAndStayExact) {
  const Dataset d = MediumDataset();
  Rng rng(35);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  // Collapse the item table onto 4 distinct rows: massive exact-score
  // ties everywhere, every top-k boundary sits inside a plateau.
  for (ParamGrad& pg : model.Params()) {
    Matrix& m = *pg.value;
    for (size_t r = 0; r < m.rows(); ++r) {
      for (size_t c = 0; c < m.cols(); ++c) {
        m.Row(r)[c] = 0.25f + 0.5f * static_cast<float>((r % 4 == c % 4));
      }
    }
  }
  model.Forward(rng);
  std::vector<TopKRequest> reqs;
  for (uint32_t u = 0; u < d.num_users(); ++u) reqs.push_back(Req(u, 5));
  // Shards wider than max_k + margin, so the scan must actually try to
  // certify a boundary (narrow shards take the exact-score-all path).
  InferenceService exact(d, model, Config(2, 64));
  const std::vector<TopKResponse> want = exact.HandleBatch(reqs);
  for (const uint32_t margin : {0u, 2u}) {
    InferenceService service(d, model, QuantConfig(2, 64, margin));
    const std::vector<TopKResponse> got = service.HandleBatch(reqs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t r = 0; r < want.size(); ++r) {
      ExpectSameResponse(got[r], want[r],
                         "near-tie margin " + std::to_string(margin) +
                             " request " + std::to_string(r));
    }
    // The tie plateaus must actually have exercised the fallback path.
    const CatalogScorer::Stats st = service.scorer().stats();
    EXPECT_GT(st.shards_scanned, 0u) << "margin " << margin;
    EXPECT_GT(st.shards_fallback, 0u) << "margin " << margin;
  }
}

TEST(QuantizedService, CacheAndPrefixReuseStillHold) {
  const Dataset d = MediumDataset();
  Rng rng(36);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  InferenceService warm(d, model, QuantConfig(2));
  const TopKResponse deep = warm.Handle(Req(4, 20));
  ASSERT_EQ(deep.items.size(), 20u);
  for (const uint32_t k : {1u, 3u, 12u}) {
    const TopKResponse prefix = warm.Handle(Req(4, k));
    ASSERT_EQ(prefix.items.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(prefix.items[i], deep.items[i]) << "k " << k;
      EXPECT_EQ(prefix.scores[i], deep.scores[i]) << "k " << k;
    }
  }
}

TEST(QuantizedEvaluator, MetricsAndRankingsMatchExactEvaluator) {
  const Dataset d = MediumDataset();
  Rng rng(37);
  MfModel model(d.num_users(), d.num_items(), 8, rng);
  model.Forward(rng);
  const Evaluator exact(d, 10, runtime::RuntimeConfig{2});
  const Evaluator quant(d, 10, runtime::RuntimeConfig{2},
                        serve::ScorerOptions{.items_per_shard = 16,
                                             .quantize = true});
  const TopKMetrics want = exact.Evaluate(model);
  const TopKMetrics got = quant.Evaluate(model);
  // Bit-identical metrics, not approximately equal: the quantized pass
  // re-scores candidates with the same fp32 kernel.
  EXPECT_EQ(got.recall, want.recall);
  EXPECT_EQ(got.ndcg, want.ndcg);
  EXPECT_EQ(got.precision, want.precision);
  EXPECT_EQ(got.hit_rate, want.hit_rate);
  EXPECT_EQ(got.num_users, want.num_users);
  Evaluator::Pass exact_pass = exact.BeginPass(model);
  Evaluator::Pass quant_pass = quant.BeginPass(model);
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    EXPECT_EQ(quant_pass.TopKForUser(u), exact_pass.TopKForUser(u))
        << "user " << u;
  }
}

}  // namespace
}  // namespace bslrec
