// Overload-resilience tests for the serving front door: bounded
// admission (block / shed-newest / shed-oldest), deadline enforcement
// at every stage, weighted-fair lanes, brownout degradation with
// hysteresis, injected batch faults, and the Drain/publish race — all
// driven by the deterministic fault injector so the failure modes
// engage on purpose instead of by luck.
#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "gtest/gtest.h"
#include "math/rng.h"
#include "models/mf.h"
#include "serve/fault_injector.h"
#include "serve/inference_service.h"
#include "serve/ranking_engine.h"
#include "serve/serving_frontend.h"

namespace bslrec {
namespace {

using serve::BrownoutServeConfigFor;
using serve::DeadlineExceededError;
using serve::DeadlineStage;
using serve::DegradeMode;
using serve::FaultAction;
using serve::FaultRule;
using serve::FrontEndConfig;
using serve::FrontEndStats;
using serve::InferenceService;
using serve::ModelSnapshot;
using serve::OverflowPolicy;
using serve::OverloadError;
using serve::RankingEngine;
using serve::RequestLane;
using serve::ScheduledFaultInjector;
using serve::ServedResponse;
using serve::ServeConfig;
using serve::ServingFrontEnd;
using serve::TopKRequest;
using serve::TopKResponse;

Dataset MediumDataset(uint64_t seed = 11) {
  SyntheticConfig cfg;
  cfg.num_users = 60;
  cfg.num_items = 90;
  cfg.num_clusters = 5;
  cfg.avg_items_per_user = 10.0;
  cfg.seed = seed;
  return GenerateSynthetic(cfg).dataset;
}

std::unique_ptr<MfModel> MakeModel(const Dataset& d, uint64_t seed,
                                   size_t dim = 8) {
  Rng rng(seed);
  auto model = std::make_unique<MfModel>(d.num_users(), d.num_items(), dim,
                                         rng);
  model->Forward(rng);
  return model;
}

FrontEndConfig Config(size_t max_batch = 8, uint32_t flush_us = 200,
                      size_t threads = 2) {
  FrontEndConfig cfg;
  cfg.max_batch = max_batch;
  cfg.flush_deadline_us = flush_us;
  cfg.serve.max_k = 20;
  cfg.serve.items_per_shard = 16;  // several shards per scan
  cfg.serve.runtime.num_threads = threads;
  return cfg;
}

TopKRequest Req(uint32_t user, uint32_t k, uint32_t deadline_us = 0,
                RequestLane lane = RequestLane::kInteractive) {
  TopKRequest req;
  req.user = user;
  req.k = k;
  req.deadline_us = deadline_us;
  req.lane = lane;
  return req;
}

std::shared_ptr<ScheduledFaultInjector> Inject(std::vector<FaultRule> rules,
                                               uint64_t seed = 0) {
  return std::make_shared<ScheduledFaultInjector>(std::move(rules), seed);
}

void ExpectSameResponse(const TopKResponse& a, const TopKResponse& b,
                        const std::string& what) {
  ASSERT_EQ(a.items.size(), b.items.size()) << what;
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i], b.items[i]) << what << " rank " << i;
    // Bit-identical, not approximately equal: the equivalence contract.
    EXPECT_EQ(a.scores[i], b.scores[i]) << what << " rank " << i;
  }
}

// The idle-state accounting identity from serving_frontend.h: every
// submitted request was finalized exactly once, somewhere.
void ExpectAccounting(const FrontEndStats& st) {
  EXPECT_EQ(st.submitted, st.requests + st.shed_newest + st.shed_oldest +
                              st.expired_admission)
      << "requests leaked or were double-counted";
}

// ---------------------------------------------------------------------------
// ScheduledFaultInjector: pure function of (rules, seed, tick).

TEST(FaultInjector, UnseededScheduleIsExact) {
  // Rule order matters: the delay rule is listed first, so it wins the
  // ticks both rules match, until its count runs out.
  ScheduledFaultInjector inj({
      {FaultAction::Kind::kDelay, /*first=*/0, /*period=*/4, /*count=*/2, 7},
      {FaultAction::Kind::kStall, /*first=*/2, /*period=*/3, /*count=*/0, 5},
  });
  const std::vector<FaultAction::Kind> want = {
      FaultAction::Kind::kDelay, FaultAction::Kind::kNone,
      FaultAction::Kind::kStall, FaultAction::Kind::kNone,
      FaultAction::Kind::kDelay, FaultAction::Kind::kStall,
      FaultAction::Kind::kNone,  FaultAction::Kind::kNone,
      FaultAction::Kind::kStall,  // the delay rule is exhausted by now
      FaultAction::Kind::kNone,  FaultAction::Kind::kNone,
      FaultAction::Kind::kStall,
  };
  for (uint64_t t = 0; t < want.size(); ++t) {
    const FaultAction a = inj.OnTick(t);
    EXPECT_EQ(a.kind, want[t]) << "tick " << t;
    if (a.kind == FaultAction::Kind::kDelay) {
      EXPECT_EQ(a.micros, 7u);
    }
    if (a.kind == FaultAction::Kind::kStall) {
      EXPECT_EQ(a.micros, 5u);
    }
  }
  EXPECT_EQ(inj.fired(FaultAction::Kind::kDelay), 2u);
  EXPECT_EQ(inj.fired(FaultAction::Kind::kStall), 4u);
}

TEST(FaultInjector, SameSeedReplaysIdentically) {
  const std::vector<FaultRule> rules = {
      {FaultAction::Kind::kStall, 0, 5, 0, 11},
      {FaultAction::Kind::kFail, 3, 7, 4, 0},
      {FaultAction::Kind::kDelay, 1, 2, 0, 13},
  };
  ScheduledFaultInjector a(rules, /*seed=*/123);
  ScheduledFaultInjector b(rules, /*seed=*/123);
  for (uint64_t t = 0; t < 50; ++t) {
    const FaultAction fa = a.OnTick(t);
    const FaultAction fb = b.OnTick(t);
    EXPECT_EQ(fa.kind, fb.kind) << "tick " << t;
    EXPECT_EQ(fa.micros, fb.micros) << "tick " << t;
  }
}

// ---------------------------------------------------------------------------
// Shed policies.

TEST(Overload, ShedNewestRefusesWithTypedRetriableError) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 3);
  FrontEndConfig cfg = Config(/*max_batch=*/8);
  cfg.max_queue_depth = 2;
  cfg.overflow = OverflowPolicy::kShedNewest;
  cfg.shed_retry_us = 1234;
  // Wedge the dispatcher on its first wakeup so the queue stays full
  // while we flood it.
  cfg.fault_injector = Inject({{FaultAction::Kind::kStall, 0, 1, 1, 150000}});
  ServingFrontEnd frontend(d, *model, cfg);

  std::vector<std::future<ServedResponse>> futures;
  for (uint32_t u = 0; u < 6; ++u) futures.push_back(frontend.Submit(Req(u, 5)));
  // The first two fit the queue; the other four are refused.
  InferenceService sync(d, *model, Config().serve);
  for (uint32_t u = 0; u < 2; ++u) {
    ExpectSameResponse(futures[u].get().topk, sync.Handle(Req(u, 5)),
                       "admitted request " + std::to_string(u));
  }
  for (uint32_t u = 2; u < 6; ++u) {
    try {
      futures[u].get();
      FAIL() << "request " << u << " should have been shed";
    } catch (const OverloadError& e) {
      EXPECT_EQ(e.retry_after_us(), 1234u) << "request " << u;
      EXPECT_NE(std::string(e.what()).find("shed"), std::string::npos);
    }
  }
  frontend.Drain();
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.submitted, 6u);
  EXPECT_EQ(st.shed_newest, 4u);
  EXPECT_EQ(st.requests, 2u);
  EXPECT_LE(st.queue_depth_high_water, 2u);
  ExpectAccounting(st);
}

TEST(Overload, ShedOldestEvictsBulkBeforeInteractive) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 4);
  FrontEndConfig cfg = Config(/*max_batch=*/8);
  cfg.max_queue_depth = 3;
  cfg.overflow = OverflowPolicy::kShedOldest;
  cfg.fault_injector = Inject({{FaultAction::Kind::kStall, 0, 1, 1, 150000}});
  ServingFrontEnd frontend(d, *model, cfg);

  // Fill: two bulk, one interactive. Each further submit evicts the
  // oldest bulk request first; once bulk is empty, the oldest
  // interactive one goes.
  auto bulk1 = frontend.Submit(Req(0, 5, 0, RequestLane::kBulk));
  auto bulk2 = frontend.Submit(Req(1, 5, 0, RequestLane::kBulk));
  auto int1 = frontend.Submit(Req(2, 5));
  auto int2 = frontend.Submit(Req(3, 5));  // evicts bulk1
  auto int3 = frontend.Submit(Req(4, 5));  // evicts bulk2
  auto int4 = frontend.Submit(Req(5, 5));  // bulk empty: evicts int1

  EXPECT_THROW(bulk1.get(), OverloadError);
  EXPECT_THROW(bulk2.get(), OverloadError);
  EXPECT_THROW(int1.get(), OverloadError);
  InferenceService sync(d, *model, Config().serve);
  ExpectSameResponse(int2.get().topk, sync.Handle(Req(3, 5)), "survivor int2");
  ExpectSameResponse(int3.get().topk, sync.Handle(Req(4, 5)), "survivor int3");
  ExpectSameResponse(int4.get().topk, sync.Handle(Req(5, 5)), "survivor int4");
  frontend.Drain();
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.shed_oldest, 3u);
  EXPECT_EQ(st.requests, 3u);
  EXPECT_LE(st.queue_depth_high_water, 3u);
  ExpectAccounting(st);
}

TEST(Overload, BlockBackpressureNeverExceedsDepthAndServesEverything) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 5);
  FrontEndConfig cfg = Config(/*max_batch=*/4, /*flush_us=*/100);
  cfg.max_queue_depth = 4;
  cfg.overflow = OverflowPolicy::kBlock;
  // Periodic stalls keep the server slower than the producers so the
  // bound is actually exercised.
  cfg.fault_injector =
      Inject({{FaultAction::Kind::kStall, 0, 3, 0, 3000}});
  ServingFrontEnd frontend(d, *model, cfg);

  constexpr size_t kProducers = 4;
  constexpr size_t kPerProducer = 20;
  std::vector<std::vector<ServedResponse>> got(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t r = 0; r < kPerProducer; ++r) {
        got[p].push_back(frontend.HandleSync(
            Req(static_cast<uint32_t>((p * kPerProducer + r) %
                                      d.num_users()),
                5 + static_cast<uint32_t>(r % 7))));
      }
    });
  }
  for (std::thread& t : producers) t.join();

  InferenceService sync(d, *model, Config().serve);
  for (size_t p = 0; p < kProducers; ++p) {
    ASSERT_EQ(got[p].size(), kPerProducer);
    for (size_t r = 0; r < kPerProducer; ++r) {
      ExpectSameResponse(
          got[p][r].topk,
          sync.Handle(Req(static_cast<uint32_t>((p * kPerProducer + r) %
                                                d.num_users()),
                          5 + static_cast<uint32_t>(r % 7))),
          "producer " + std::to_string(p) + " request " + std::to_string(r));
    }
  }
  frontend.Drain();
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.submitted, kProducers * kPerProducer);
  EXPECT_EQ(st.requests, kProducers * kPerProducer);
  EXPECT_EQ(st.shed_newest + st.shed_oldest, 0u);  // kBlock never sheds
  // The overload proof: the bound held at every instant.
  EXPECT_LE(st.queue_depth_high_water, 4u);
  ExpectAccounting(st);
}

// ---------------------------------------------------------------------------
// Deadlines, stage by stage.

TEST(Overload, DeadlineExpiresAtAdmissionWhileBlockedForSpace) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 6);
  FrontEndConfig cfg = Config(/*max_batch=*/8);
  cfg.max_queue_depth = 2;
  cfg.overflow = OverflowPolicy::kBlock;
  cfg.fault_injector = Inject({{FaultAction::Kind::kStall, 0, 1, 1, 200000}});
  ServingFrontEnd frontend(d, *model, cfg);

  auto r1 = frontend.Submit(Req(0, 5));
  auto r2 = frontend.Submit(Req(1, 5));
  // Queue full, dispatcher stalled: this submit blocks for space and
  // its 10ms deadline expires long before the 200ms stall ends.
  auto r3 = frontend.Submit(Req(2, 5, /*deadline_us=*/10000));
  try {
    r3.get();
    FAIL() << "blocked submit should have expired at admission";
  } catch (const DeadlineExceededError& e) {
    EXPECT_EQ(e.stage(), DeadlineStage::kAdmission);
  }
  EXPECT_EQ(r1.get().topk.items.size(), 5u);
  EXPECT_EQ(r2.get().topk.items.size(), 5u);
  frontend.Drain();
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.expired_admission, 1u);
  EXPECT_GE(st.blocked_submits, 1u);
  ExpectAccounting(st);
}

TEST(Overload, DeadlineExpiresInQueueWithoutBurningScorerCycles) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 7);
  FrontEndConfig cfg = Config(/*max_batch=*/4);
  cfg.fault_injector = Inject({{FaultAction::Kind::kStall, 0, 1, 1, 100000}});
  ServingFrontEnd frontend(d, *model, cfg);

  // The no-deadline request triggers the stall; the 5ms-deadline ones
  // rot in the queue behind it and must fail fast at dequeue.
  auto live = frontend.Submit(Req(0, 5));
  std::vector<std::future<ServedResponse>> doomed;
  for (uint32_t u = 1; u <= 5; ++u) {
    doomed.push_back(frontend.Submit(Req(u, 5, /*deadline_us=*/5000)));
  }
  EXPECT_EQ(live.get().topk.items.size(), 5u);
  for (size_t i = 0; i < doomed.size(); ++i) {
    try {
      doomed[i].get();
      FAIL() << "queued request " << i << " should have expired";
    } catch (const DeadlineExceededError& e) {
      EXPECT_EQ(e.stage(), DeadlineStage::kQueue) << "request " << i;
    }
  }
  frontend.Drain();
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.expired_queue, 5u);
  EXPECT_EQ(st.requests, 6u);  // expiry is dispatcher finalization
  ExpectAccounting(st);
}

TEST(Overload, DeadlineExpiresMidBatchFailsOnlyThatRequest) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 8);
  FrontEndConfig cfg = Config(/*max_batch=*/4, /*flush_us=*/5000);
  // The batch forms promptly (size flush at 4), then the injected
  // 100ms scoring delay blows through the 20ms deadlines.
  cfg.fault_injector = Inject({{FaultAction::Kind::kDelay, 0, 1, 1, 100000}});
  ServingFrontEnd frontend(d, *model, cfg);

  std::vector<std::future<ServedResponse>> futures;
  for (uint32_t u = 0; u < 3; ++u) {
    futures.push_back(frontend.Submit(Req(u, 5, /*deadline_us=*/20000)));
  }
  futures.push_back(frontend.Submit(Req(3, 5)));  // no deadline: survives

  for (size_t i = 0; i < 3; ++i) {
    try {
      futures[i].get();
      FAIL() << "request " << i << " must never be fulfilled past deadline";
    } catch (const DeadlineExceededError& e) {
      EXPECT_EQ(e.stage(), DeadlineStage::kBatch) << "request " << i;
    }
  }
  InferenceService sync(d, *model, Config().serve);
  ExpectSameResponse(futures[3].get().topk, sync.Handle(Req(3, 5)),
                     "deadline-free batchmate");
  frontend.Drain();
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.expired_batch, 3u);
  EXPECT_EQ(st.requests, 4u);
  ExpectAccounting(st);
}

// ---------------------------------------------------------------------------
// Priority lanes.

TEST(Overload, BulkFloodCannotStarveInteractiveTraffic) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 9);
  FrontEndConfig cfg = Config(/*max_batch=*/4, /*flush_us=*/100);
  cfg.interactive_weight = 3;
  cfg.bulk_weight = 1;
  // Tick 0: stall 100ms so the whole flood queues up behind a wedged
  // dispatcher. Every later batch is slowed 50ms so completion order
  // across batches is observable.
  cfg.fault_injector = Inject({
      {FaultAction::Kind::kStall, 0, 1, 1, 100000},
      {FaultAction::Kind::kDelay, 1, 1, 0, 50000},
  });
  ServingFrontEnd frontend(d, *model, cfg);

  constexpr size_t kBulk = 12;
  constexpr size_t kInteractive = 6;
  std::mutex order_mu;
  std::vector<std::string> order;  // completion labels, in finish order
  std::vector<std::thread> waiters;
  std::vector<std::future<ServedResponse>> futures;
  // The bulk flood is submitted FIRST — strict FIFO would finish all
  // of it before any interactive request.
  for (size_t b = 0; b < kBulk; ++b) {
    futures.push_back(frontend.Submit(
        Req(static_cast<uint32_t>(b), 5, 0, RequestLane::kBulk)));
  }
  for (size_t i = 0; i < kInteractive; ++i) {
    futures.push_back(
        frontend.Submit(Req(static_cast<uint32_t>(20 + i), 5)));
  }
  for (size_t f = 0; f < futures.size(); ++f) {
    waiters.emplace_back([&, f] {
      futures[f].get();
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(f < kBulk ? "bulk" : "interactive");
    });
  }
  for (std::thread& t : waiters) t.join();

  // Weighted-fair 3:1 drain serves all 6 interactive within the first
  // two 4-request batches; under bulk-first FIFO they would be the
  // last 6 completions. Allow one batch of recorder slack.
  ASSERT_EQ(order.size(), kBulk + kInteractive);
  size_t last_interactive = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "interactive") last_interactive = i;
  }
  EXPECT_LT(last_interactive, 12u)
      << "interactive requests were starved behind the bulk flood";
  frontend.Drain();
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.lane_submitted[0], kInteractive);
  EXPECT_EQ(st.lane_submitted[1], kBulk);
  EXPECT_EQ(st.lane_served[0], kInteractive);
  EXPECT_EQ(st.lane_served[1], kBulk);
  ExpectAccounting(st);
}

// ---------------------------------------------------------------------------
// Brownout degradation.

TEST(Overload, DepthBrownoutDegradesAndRecoversBitIdentically) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 10);
  FrontEndConfig cfg = Config(/*max_batch=*/8, /*flush_us=*/100);
  cfg.brownout.enable = true;
  cfg.brownout.high_watermark = 8;
  cfg.brownout.low_watermark = 2;
  cfg.brownout.nprobe = 2;
  cfg.fault_injector = Inject({{FaultAction::Kind::kStall, 0, 1, 1, 150000}});
  ServingFrontEnd frontend(d, *model, cfg);
  // Brownout forces an IVF build on the initial snapshot, so the best
  // degraded tier is ANN.
  ASSERT_EQ(frontend.current_brownout_mode(), DegradeMode::kIvf);

  // Flood 30 requests into the stalled dispatcher: depth crosses the
  // high-water mark, so the backlog is served degraded.
  std::vector<TopKRequest> reqs;
  std::vector<std::future<ServedResponse>> futures;
  for (uint32_t i = 0; i < 30; ++i) {
    reqs.push_back(Req(i % d.num_users(), 5 + (i % 9)));
    futures.push_back(frontend.Submit(reqs.back()));
  }
  frontend.Drain();
  // Recovery: the queue is empty, so the next lone request (depth 1
  // <= low watermark) exits brownout and serves exact.
  const TopKRequest tail = Req(7, 10);
  const ServedResponse tail_resp = frontend.HandleSync(tail);
  EXPECT_FALSE(tail_resp.degraded);
  EXPECT_EQ(tail_resp.degrade_mode, DegradeMode::kNone);

  // Every response is bit-identical to the single-driver engine at
  // the tier that served it — exact or the published brownout tier.
  const std::shared_ptr<const ModelSnapshot> snap =
      frontend.current_snapshot();
  runtime::ThreadPool ref_pool(1);
  RankingEngine exact_ref(d, *snap, ref_pool, cfg.serve);
  RankingEngine degraded_ref(
      d, *snap, ref_pool,
      BrownoutServeConfigFor(cfg.serve, DegradeMode::kIvf,
                             cfg.brownout.nprobe));
  size_t degraded_count = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    const ServedResponse resp = futures[i].get();
    if (resp.degraded) {
      ++degraded_count;
      EXPECT_EQ(resp.degrade_mode, DegradeMode::kIvf) << "request " << i;
      EXPECT_GT(resp.queue_us, 0u) << "request " << i;
      ExpectSameResponse(resp.topk, degraded_ref.Handle(reqs[i]),
                         "degraded request " + std::to_string(i));
    } else {
      ExpectSameResponse(resp.topk, exact_ref.Handle(reqs[i]),
                         "exact request " + std::to_string(i));
    }
  }
  ExpectSameResponse(tail_resp.topk, exact_ref.Handle(tail),
                     "post-recovery request");
  EXPECT_GE(degraded_count, 8u);  // at least the above-watermark backlog

  frontend.Drain();  // stats are settled once the queue is idle
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.brownout_entries, 1u);  // hysteresis: no flapping
  EXPECT_EQ(st.brownout_exits, 1u);
  EXPECT_GT(st.brownout_us, 0u);
  EXPECT_EQ(st.degraded_served, degraded_count);
  ExpectAccounting(st);
}

TEST(Overload, LatencyBrownoutTriggersOnSlowBatches) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 11);
  FrontEndConfig cfg = Config(/*max_batch=*/8, /*flush_us=*/100);
  cfg.brownout.enable = true;
  cfg.brownout.high_watermark = 1000;  // depth can never trigger
  cfg.brownout.low_watermark = 1;
  cfg.brownout.latency_high_us = 50000;
  cfg.brownout.nprobe = 2;
  // Only the first batch is slowed (200ms >> the 50ms threshold).
  cfg.fault_injector = Inject({{FaultAction::Kind::kDelay, 0, 1, 1, 200000}});
  ServingFrontEnd frontend(d, *model, cfg);

  // Batch 1: slow but decided before the latency was observed — exact.
  const ServedResponse r1 = frontend.HandleSync(Req(1, 5));
  EXPECT_FALSE(r1.degraded);
  // Batch 2: the observed 200ms batch latency trips brownout.
  const ServedResponse r2 = frontend.HandleSync(Req(2, 5));
  EXPECT_TRUE(r2.degraded);
  EXPECT_EQ(r2.degrade_mode, DegradeMode::kIvf);
  // Batch 3: the degraded batch was fast and depth is low — recovered.
  const ServedResponse r3 = frontend.HandleSync(Req(3, 5));
  EXPECT_FALSE(r3.degraded);

  frontend.Drain();
  const FrontEndStats st = frontend.stats();
  EXPECT_EQ(st.brownout_entries, 1u);
  EXPECT_EQ(st.brownout_exits, 1u);
  EXPECT_EQ(st.degraded_served, 1u);
  ExpectAccounting(st);
}

// ---------------------------------------------------------------------------
// Injected batch faults and error context.

TEST(Overload, InjectedBatchFaultCarriesSnapshotAndLaneContext) {
  const Dataset d = MediumDataset();
  const std::unique_ptr<MfModel> model = MakeModel(d, 12);
  FrontEndConfig cfg = Config();
  cfg.fault_injector = Inject({{FaultAction::Kind::kFail, 0, 1, 1, 0}});
  ServingFrontEnd frontend(d, *model, cfg);

  try {
    frontend.HandleSync(Req(1, 5, 0, RequestLane::kBulk));
    FAIL() << "the injected fault must fail the batch";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("snapshot seq 1"), std::string::npos) << what;
    EXPECT_NE(what.find("lane bulk"), std::string::npos) << what;
    EXPECT_NE(what.find("injected"), std::string::npos) << what;
  }
  // The fault was one batch wide: the next request is served normally.
  InferenceService sync(d, *model, Config().serve);
  ExpectSameResponse(frontend.HandleSync(Req(2, 5)).topk,
                     sync.Handle(Req(2, 5)), "post-fault request");
  frontend.Drain();
  ExpectAccounting(frontend.stats());
}

// ---------------------------------------------------------------------------
// Drain vs mid-batch publish (the satellite audit).

TEST(Overload, DrainObservesMidBatchPublisherAndFulfilledPromises) {
  const Dataset d = MediumDataset();
  runtime::ThreadPool freeze_pool(2);
  const std::unique_ptr<MfModel> gen1 = MakeModel(d, 40);
  const std::unique_ptr<MfModel> gen2 = MakeModel(d, 41);
  const auto snap1 = std::make_shared<const ModelSnapshot>(*gen1, freeze_pool);
  const auto snap2 = std::make_shared<const ModelSnapshot>(*gen2, freeze_pool);

  FrontEndConfig cfg = Config(/*max_batch=*/8, /*flush_us=*/100);
  // One slow batch (100ms) so the publish lands mid-batch.
  cfg.fault_injector = Inject({{FaultAction::Kind::kDelay, 0, 1, 1, 100000}});
  ServingFrontEnd frontend(d, snap1, cfg);

  std::vector<TopKRequest> reqs;
  for (uint32_t u = 0; u < 8; ++u) reqs.push_back(Req(u, 5));
  std::vector<std::future<ServedResponse>> futures =
      frontend.SubmitBatch(reqs);
  // Publish while the batch is inside its injected delay.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(frontend.PublishSnapshot(snap2), 2u);

  frontend.Drain();
  // The documented post-condition: every future from a Submit that
  // returned before Drain was entered is ready the moment Drain
  // returns — no grace sleep needed.
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "request " << i;
    const ServedResponse resp = futures[i].get();
    // The in-flight batch kept the generation it loaded: seq and
    // snapshot pointer must agree (no torn state).
    EXPECT_EQ(resp.snapshot_seq, 1u) << "request " << i;
    EXPECT_EQ(resp.snapshot, snap1) << "request " << i;
  }
  // Traffic after the publish serves the new generation.
  EXPECT_EQ(frontend.HandleSync(Req(0, 5)).snapshot_seq, 2u);
}

}  // namespace
}  // namespace bslrec
