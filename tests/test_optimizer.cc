#include "train/optimizer.h"

#include <cmath>

#include "gtest/gtest.h"

namespace bslrec {
namespace {

TEST(Sgd, SingleStepMath) {
  Matrix w(1, 2), g(1, 2);
  w.At(0, 0) = 1.0f;
  w.At(0, 1) = -2.0f;
  g.At(0, 0) = 0.5f;
  g.At(0, 1) = -0.5f;
  SgdOptimizer opt(/*lr=*/0.1);
  opt.Step({{&w, &g}});
  EXPECT_FLOAT_EQ(w.At(0, 0), 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(w.At(0, 1), -2.0f + 0.1f * 0.5f);
}

TEST(Sgd, WeightDecayShrinksParameters) {
  Matrix w(1, 1), g(1, 1);
  w.At(0, 0) = 10.0f;
  SgdOptimizer opt(/*lr=*/0.1, /*weight_decay=*/0.5);
  opt.Step({{&w, &g}});  // zero gradient: pure decay
  EXPECT_FLOAT_EQ(w.At(0, 0), 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // min (w - 3)^2: gradient 2(w - 3).
  Matrix w(1, 1), g(1, 1);
  SgdOptimizer opt(0.1);
  for (int i = 0; i < 200; ++i) {
    g.At(0, 0) = 2.0f * (w.At(0, 0) - 3.0f);
    opt.Step({{&w, &g}});
  }
  EXPECT_NEAR(w.At(0, 0), 3.0f, 1e-4f);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step is ~lr * sign(g).
  Matrix w(1, 1), g(1, 1);
  g.At(0, 0) = 0.37f;
  AdamOptimizer opt(/*lr=*/0.01);
  opt.Step({{&w, &g}});
  EXPECT_NEAR(w.At(0, 0), -0.01f, 1e-5f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Matrix w(1, 2), g(1, 2);
  w.At(0, 0) = -4.0f;
  w.At(0, 1) = 7.0f;
  AdamOptimizer opt(0.05);
  for (int i = 0; i < 2000; ++i) {
    g.At(0, 0) = 2.0f * (w.At(0, 0) - 1.0f);
    g.At(0, 1) = 8.0f * (w.At(0, 1) + 2.0f);  // ill-conditioned pair
    opt.Step({{&w, &g}});
  }
  EXPECT_NEAR(w.At(0, 0), 1.0f, 1e-2f);
  EXPECT_NEAR(w.At(0, 1), -2.0f, 1e-2f);
}

TEST(Adam, HandlesMultipleParameterTensors) {
  Matrix w1(2, 2), g1(2, 2), w2(3, 1), g2(3, 1);
  AdamOptimizer opt(0.1);
  for (int i = 0; i < 500; ++i) {
    for (size_t k = 0; k < w1.size(); ++k) {
      g1.data()[k] = w1.data()[k] - 1.0f;
    }
    for (size_t k = 0; k < w2.size(); ++k) {
      g2.data()[k] = w2.data()[k] + 2.0f;
    }
    opt.Step({{&w1, &g1}, {&w2, &g2}});
  }
  for (size_t k = 0; k < w1.size(); ++k) {
    EXPECT_NEAR(w1.data()[k], 1.0f, 1e-2f);
  }
  for (size_t k = 0; k < w2.size(); ++k) {
    EXPECT_NEAR(w2.data()[k], -2.0f, 1e-2f);
  }
}

TEST(Adam, DecoupledWeightDecayActsWithoutGradient) {
  Matrix w(1, 1), g(1, 1);
  w.At(0, 0) = 1.0f;
  AdamOptimizer opt(/*lr=*/0.1, /*weight_decay=*/0.1);
  for (int i = 0; i < 50; ++i) opt.Step({{&w, &g}});
  EXPECT_LT(w.At(0, 0), 1.0f);
  EXPECT_GT(w.At(0, 0), 0.0f);
}

TEST(Adam, StatePersistsAcrossStepsPerTensor) {
  // Second moment accumulation: after many large gradients, a small
  // gradient produces a small step (unlike fresh state).
  Matrix w(1, 1), g(1, 1);
  AdamOptimizer warm(0.1);
  for (int i = 0; i < 100; ++i) {
    g.At(0, 0) = 10.0f;
    warm.Step({{&w, &g}});
  }
  const float before = w.At(0, 0);
  g.At(0, 0) = 1e-4f;
  warm.Step({{&w, &g}});
  const float warm_step = std::abs(w.At(0, 0) - before);

  Matrix w2(1, 1), g2(1, 1);
  AdamOptimizer cold(0.1);
  g2.At(0, 0) = 1e-4f;
  cold.Step({{&w2, &g2}});
  const float cold_step = std::abs(w2.At(0, 0));
  EXPECT_LT(warm_step, cold_step);
}

}  // namespace
}  // namespace bslrec
