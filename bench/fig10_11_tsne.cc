// Figures 10-11: t-SNE of item embeddings trained with SL vs BSL under
// 0/20/40% positive noise on Gowalla(synth) and Yelp2018(synth).
// Coordinates are written to CSV (item,x,y,cluster) for plotting; the
// printed silhouette / intra-inter metrics quantify the paper's visual
// claim that BSL keeps clusters separated under noise.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/embedding_analysis.h"
#include "analysis/tsne.h"
#include "bench_util.h"
#include "data/noise.h"
#include "models/mf.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

namespace {

// Trains MF with `loss_kind` on `data` and returns the final item table.
bslrec::Matrix TrainItemEmbeddings(const bslrec::Dataset& data,
                                   LossKind loss_kind, double tau1_ratio) {
  bslrec::Rng rng(21);
  bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
  bslrec::LossParams params;
  params.tau = 0.6;
  params.tau1 = 0.6 * tau1_ratio;
  const auto loss = CreateLoss(loss_kind, params);
  bslrec::UniformNegativeSampler sampler(data);
  bslrec::Trainer trainer(data, model, *loss, sampler,
                          bb::DefaultTrainConfig());
  trainer.Train();
  bslrec::Rng fwd(22);
  model.Forward(fwd);
  return model.FinalItemMatrix();
}

}  // namespace

int main() {
  const std::vector<bslrec::SyntheticConfig> datasets = {
      bslrec::GowallaSynth(), bslrec::Yelp18Synth()};
  const std::vector<double> noise_ratios = {0.0, 0.2, 0.4};

  for (const auto& cfg : datasets) {
    const bslrec::SyntheticData synth = bslrec::GenerateSynthetic(cfg);
    bb::PrintHeader("Figures 10-11 on " + cfg.name +
                    " (cluster separation of item embeddings)");
    std::printf("%-8s%-8s%14s%16s%14s\n", "noise", "loss", "silhouette",
                "intra/inter", "uniformity");
    bb::PrintRule(62);
    for (double ratio : noise_ratios) {
      bslrec::Rng noise_rng(55);
      const bslrec::Dataset data =
          ratio > 0.0
              ? bslrec::InjectFalsePositives(synth.dataset, ratio, noise_rng)
              : synth.dataset;
      for (LossKind l : {LossKind::kSoftmax, LossKind::kBsl}) {
        const bslrec::Matrix items =
            TrainItemEmbeddings(data, l, /*tau1_ratio=*/1.2 + ratio);
        const double sil =
            bslrec::SilhouetteScore(items, synth.item_cluster);
        const double ratio_ii =
            bslrec::IntraInterRatio(items, synth.item_cluster);
        const double unif = bslrec::UniformityLoss(items);
        std::printf("%-8.0f%-8s%14.4f%16.4f%14.4f\n", 100.0 * ratio,
                    LossKindName(l).data(), sil, ratio_ii, unif);

        if (!bb::FastMode()) {
          // 2-D t-SNE coordinates for plotting.
          bslrec::TsneConfig tsne_cfg;
          tsne_cfg.iterations = 200;
          const bslrec::Matrix y = bslrec::RunTsne(items, tsne_cfg);
          const std::string path =
              "tsne_" + std::string(LossKindName(l)) + "_" +
              std::to_string(static_cast<int>(100 * ratio)) + "pct_" +
              (cfg.name.substr(0, 4)) + ".csv";
          std::ofstream out(path);
          out << "item,x,y,cluster\n";
          for (size_t i = 0; i < y.rows(); ++i) {
            out << i << ',' << y.At(i, 0) << ',' << y.At(i, 1) << ','
                << synth.item_cluster[i] << '\n';
          }
        }
      }
    }
  }
  std::printf(
      "\nPaper shape: the paper's t-SNE plots show BSL retaining group "
      "structure under noise while SL entangles. In this reproduction the "
      "shipped per-sample BSL does NOT recover that geometry: its "
      "positive gradient is constant per sample, so it cannot adaptively "
      "down-weight noisy positives, and the tau1>tau2 setting trades "
      "embedding spread (uniformity) for ranking accuracy. The adaptive "
      "mechanism lives in the grouped Eq.(18) form — see "
      "ablation_grouped_bsl — and EXPERIMENTS.md records this figure as "
      "a partial reproduction. CSV t-SNE coordinates are written to the "
      "working directory for inspection.\n");
  return 0;
}
