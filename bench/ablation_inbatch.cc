// Ablation for the paper's Table V protocol split: MF trains with
// sampled negatives (Algorithm 1) while the GCN backbones train with
// in-batch negatives (Algorithm 2). In-batch negatives are drawn
// proportionally to item popularity, which biases the sampled softmax;
// the classic logQ correction (Bengio & Senecal, 2003 — the paper's
// reference [12]) de-biases it. This harness runs LightGCN + SL/BSL
// under all three settings.
#include <cstdio>

#include "bench_util.h"
#include "models/lightgcn.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

namespace {

bslrec::TopKMetrics Run(const bslrec::Dataset& data, LossKind kind,
                        bslrec::SamplingMode mode, double logq_tau) {
  const bslrec::BipartiteGraph graph(data);
  bslrec::Rng rng(23);
  bslrec::LightGcnModel model(graph, 16, 2, rng);
  bslrec::LossParams params;
  params.tau = 0.9;  // GCN optimum (Corollary III.1)
  params.tau1 = 1.0;
  const auto loss = CreateLoss(kind, params);
  bslrec::UniformNegativeSampler sampler(data);
  bslrec::TrainConfig cfg = bb::DefaultTrainConfig();
  cfg.sampling_mode = mode;
  cfg.batch_size = 512;  // in-batch: 511 negatives per sample
  cfg.inbatch_logq_tau = logq_tau;
  bslrec::Trainer trainer(data, model, *loss, sampler, cfg);
  return trainer.Train().best;
}

}  // namespace

int main() {
  bb::PrintHeader(
      "Ablation (Table V): sampled vs in-batch vs logQ-corrected in-batch, "
      "LightGCN");
  std::printf("%-22s%-8s%14s%14s%18s\n", "dataset", "loss", "sampled",
              "in-batch", "in-batch+logQ");
  bb::PrintRule(78);
  for (const auto& cfg : {bslrec::Yelp18Synth(), bslrec::Movielens1MSynth()}) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    for (LossKind kind : {LossKind::kSoftmax, LossKind::kBsl}) {
      const auto sampled =
          Run(data, kind, bslrec::SamplingMode::kSampledNegatives, 0.0);
      const auto raw =
          Run(data, kind, bslrec::SamplingMode::kInBatch, 0.0);
      const auto corrected =
          Run(data, kind, bslrec::SamplingMode::kInBatch, 0.9);
      std::printf("%-22s%-8s%14.4f%14.4f%18.4f\n", cfg.name.c_str(),
                  LossKindName(kind).data(), sampled.ndcg, raw.ndcg,
                  corrected.ndcg);
    }
  }
  std::printf(
      "\nReading: uncorrected in-batch sampling collapses on the skewed, "
      "cluster-concentrated synthetic catalogs (the popularity bias of "
      "in-batch negatives is much stronger here than on the paper's real "
      "data); the standard logQ correction restores in-batch training to "
      "the sampled-negatives band (NDCG@20 within a few percent).\n");
  return 0;
}
