// Figure 8: NDCG@20 as the false-negative sampling odds r_noise grows
// (each train positive is r_noise times as likely to be served as a
// "negative" as a true negative). SL and BSL stay stable; classic losses
// degrade or fluctuate.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Figure 8: NDCG@20 vs false-negative odds r_noise");
  const std::vector<bslrec::SyntheticConfig> datasets = {
      bslrec::Movielens1MSynth(), bslrec::GowallaSynth(),
      bslrec::Yelp18Synth()};
  const std::vector<LossKind> losses = {LossKind::kMse, LossKind::kBpr,
                                        LossKind::kBce, LossKind::kSoftmax,
                                        LossKind::kBsl};
  const std::vector<double> odds = {1.0, 3.0, 5.0, 7.0, 10.0};

  for (const auto& cfg : datasets) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    std::printf("\n%s\n", cfg.name.c_str());
    std::printf("%-8s", "loss");
    for (double r : odds) std::printf("   r=%-5.1f", r);
    std::printf("\n");
    bb::PrintRule(60);
    for (LossKind l : losses) {
      std::printf("%-8s", LossKindName(l).data());
      for (double r : odds) {
        bb::RunSpec spec;
        spec.loss = l;
        // The paper re-tunes tau per noise level; emulate with a noise-
        // scaled temperature for the softmax family (Corollary III.1:
        // higher noise -> larger optimal tau).
        spec.loss_params.tau = 0.5 + 0.03 * r;
        spec.loss_params.tau1 = spec.loss_params.tau * 1.2;
        spec.r_noise = r;
        spec.train = bb::DefaultTrainConfig();
        spec.train.epochs = bb::FastMode() ? 3 : 12;
        std::printf("  %8.4f", bb::RunExperiment(data, spec).ndcg);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: SL/BSL sit on top and degrade gently with r_noise; "
      "pointwise/pairwise losses are lower and less stable.\n");
  return 0;
}
