// Table II: overall comparison. Backbones MF / NGCF / LightGCN crossed
// with losses BPR / BCE / MSE / SL / BSL on all four datasets, plus
// standalone baseline rows (CML, ENMF, SimpleX-style CCL and the
// contrastive SOTA backbones with their native BPR loss).
// Paper claims reproduced here: SL >> classic losses on every backbone;
// BSL >= SL everywhere; MF+SL/BSL rivals the SOTA rows.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "train/enmf.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

namespace {

void PrintMetrics(const char* label, const bslrec::TopKMetrics& m) {
  std::printf("  %-18s  Recall@20 %7.4f   NDCG@20 %7.4f\n", label, m.recall,
              m.ndcg);
}

}  // namespace

int main() {
  for (const auto& cfg : bslrec::AllPresets()) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    bb::PrintHeader("Table II on " + cfg.name);

    // --- standalone baselines ---
    {
      bb::RunSpec spec;
      spec.loss = LossKind::kCml;
      spec.loss_params.margin = 0.5;
      spec.train = bb::DefaultTrainConfig();
      PrintMetrics("CML", bb::RunExperiment(data, spec));
    }
    {
      bslrec::Rng rng(3);
      bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
      bslrec::EnmfConfig ecfg;
      ecfg.epochs = bb::FastMode() ? 4 : 25;
      bslrec::EnmfTrainer trainer(data, model, ecfg);
      PrintMetrics("ENMF", trainer.Train().best);
    }
    {
      bb::RunSpec spec;
      spec.loss = LossKind::kCcl;
      spec.loss_params.margin = 0.4;
      spec.loss_params.negative_weight = 2.0;
      spec.train = bb::DefaultTrainConfig();
      PrintMetrics("SimpleX (CCL)", bb::RunExperiment(data, spec));
    }
    for (bb::Backbone sota :
         {bb::Backbone::kSgl, bb::Backbone::kSimGcl, bb::Backbone::kLightGcl}) {
      bb::RunSpec spec;
      spec.backbone = sota;
      spec.loss = LossKind::kBpr;  // native recommendation loss
      spec.train = bb::DefaultTrainConfig();
      spec.train.batch_size = 512;
      PrintMetrics(bb::BackboneName(sota), bb::RunExperiment(data, spec));
    }

    // --- backbone x loss grid ---
    const std::vector<bb::Backbone> backbones = {
        bb::Backbone::kMf, bb::Backbone::kNgcf, bb::Backbone::kLightGcn};
    const std::vector<LossKind> losses = {LossKind::kBpr, LossKind::kBce,
                                          LossKind::kMse, LossKind::kSoftmax,
                                          LossKind::kBsl};
    std::printf("\n  %-8s", "model");
    for (LossKind l : losses) {
      std::printf("        +%-12s", LossKindName(l).data());
    }
    std::printf("\n  %-8s", "");
    for (size_t i = 0; i < losses.size(); ++i) {
      std::printf("   %8s %8s ", "R@20", "N@20");
    }
    std::printf("\n  ");
    bb::PrintRule(112);
    for (bb::Backbone backbone : backbones) {
      std::printf("  %-8s", bb::BackboneName(backbone));
      for (LossKind l : losses) {
        bb::RunSpec spec;
        spec.backbone = backbone;
        spec.loss = l;
        spec.loss_params.tau = 0.6;
        spec.loss_params.tau1 = 0.66;  // mild positive-side robustness
        spec.tau_grid = bb::DefaultTauGrid();
        spec.train = bb::DefaultTrainConfig();
        const auto m = bb::RunExperiment(data, spec);
        std::printf("   %8.4f %8.4f ", m.recall, m.ndcg);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: SL/BSL dominate BPR/BCE/MSE on every backbone; BSL "
      ">= SL (largest gap on Gowalla, the noisiest preset); MF+SL/BSL is "
      "competitive with the SOTA contrastive rows.\n");
  return 0;
}
