// Extension of the paper's stated future work ("exploring the role of
// different loss functions in fairness from our perspective"): one
// fairness scoreboard across every implemented loss. For each loss we
// report accuracy (NDCG@20), the Gini concentration of top-20 exposure
// across the catalog (lower = recommendations spread over more items)
// and the unpopular-half share of NDCG.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "eval/evaluator.h"
#include "models/mf.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader(
      "Extension: fairness scoreboard across losses (MF, milder-skew "
      "Yelp preset)");
  bslrec::SyntheticConfig cfg = bslrec::Yelp18Synth();
  cfg.zipf_alpha = 0.7;
  cfg.popularity_gamma = 0.35;
  const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;

  const std::vector<LossKind> losses = {
      LossKind::kMse, LossKind::kBce,     LossKind::kBpr,
      LossKind::kCml, LossKind::kCcl,     LossKind::kSoftmax,
      LossKind::kBsl, LossKind::kSoftmaxNoVariance,
  };

  std::printf("%-12s%12s%16s%18s\n", "loss", "NDCG@20", "exposure Gini",
              "tail-half share");
  bb::PrintRule(58);
  const bslrec::Evaluator eval(data, 20);
  for (LossKind l : losses) {
    bslrec::Rng rng(41);
    bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
    bslrec::LossParams params;
    params.tau = 0.6;
    params.tau1 = 0.66;
    params.margin = 0.4;
    params.negative_weight = l == LossKind::kCcl ? 2.0 : 1.0;
    const auto loss = CreateLoss(l, params);
    bslrec::UniformNegativeSampler sampler(data);
    bslrec::Trainer trainer(data, model, *loss, sampler,
                            bb::DefaultTrainConfig());
    const auto result = trainer.Train();
    // One pass: both queries share the scored+ranked top-20 lists.
    bslrec::Evaluator::Pass pass = eval.BeginPass(model);
    const double gini = bslrec::GiniCoefficient(pass.ItemExposure());
    const auto groups = pass.GroupNdcg(10);
    double tail = 0.0, total = 0.0;
    for (size_t g = 0; g < groups.size(); ++g) {
      total += groups[g];
      if (g < 5) tail += groups[g];
    }
    std::printf("%-12s%12.4f%16.4f%18.3f\n", LossKindName(l).data(),
                result.best.ndcg, gini, total > 0.0 ? tail / total : 0.0);
  }
  std::printf(
      "\nReading: SL concentrates exposure far less than pointwise BCE, "
      "and deleting its variance term (SL-noVar) raises the Gini — "
      "isolating Lemma 2's penalty as the fairness driver. The metric-"
      "learning losses (CML/CCL) buy low concentration with accuracy, "
      "while BSL sits at the opposite end: highest accuracy and highest "
      "concentration, the same spread-for-margin trade-off its embedding "
      "geometry shows in Figs 10-11. Fairness and positive-noise "
      "robustness pull the loss design in opposite directions — a "
      "concrete datapoint for the paper's future-work question.\n");
  return 0;
}
