// Ablation: is SL's fairness an artifact of popularity-aware negative
// sampling? Prior work attributed it to the sampler; the paper's rebuttal
// (Sections I and VI) is that *uniform* sampling preserves both fairness
// and accuracy. This harness trains SL with a uniform and a popularity-
// proportional sampler and prints the popularity-group NDCG for each.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "eval/evaluator.h"
#include "models/mf.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader(
      "Ablation: SL fairness under uniform vs popularity sampling");
  // Milder skew so tail groups carry test mass (see fig04).
  bslrec::SyntheticConfig cfg = bslrec::Yelp18Synth();
  cfg.zipf_alpha = 0.7;
  cfg.popularity_gamma = 0.35;
  const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;

  struct Arm {
    const char* label;
    std::unique_ptr<bslrec::NegativeSampler> sampler;
  };
  std::vector<Arm> arms;
  arms.push_back({"uniform", std::make_unique<bslrec::UniformNegativeSampler>(
                                 data)});
  arms.push_back(
      {"popularity^1.0",
       std::make_unique<bslrec::PopularityNegativeSampler>(data, 1.0)});

  std::printf("%-16s", "sampler");
  for (int g = 1; g <= 10; ++g) std::printf("  grp%02d", g);
  std::printf("%9s\n", "NDCG@20");
  bb::PrintRule(100);
  const bslrec::Evaluator eval(data, 20);
  for (const Arm& arm : arms) {
    bslrec::Rng rng(17);
    bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
    bslrec::SoftmaxLoss loss(0.6);
    bslrec::Trainer trainer(data, model, loss, *arm.sampler,
                            bb::DefaultTrainConfig());
    const auto result = trainer.Train();
    const auto groups = eval.GroupNdcg(model, 10);
    std::printf("%-16s", arm.label);
    for (double g : groups) std::printf("%7.4f", g);
    std::printf("%9.4f\n", result.best.ndcg);
  }
  std::printf(
      "\nReading: uniform sampling already yields the fair group profile "
      "— fairness is a property of the loss (Lemma 2), not the sampler.\n");
  return 0;
}
