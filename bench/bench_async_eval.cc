// Async-evaluation pipeline bench: end-to-end Trainer::Train wall time
// and epochs/sec, synchronous vs overlapped (TrainConfig::async_eval),
// at 1 / 2 / hardware threads — plus the metrics-bit-identical probe
// that gates the exit code: every run's full {epoch, metrics} eval
// history must match the serial synchronous baseline bitwise.
//
// The workload is shaped so evaluation is a large fraction of sync wall
// time (full-catalog ranking over a wide catalog, modest training work
// per epoch, eval every epoch) — the regime the BSL/PSL config sweeps
// live in. Overlap recovers the cycles the trainer's serial sections
// leave idle, so the wall-time win needs >1 hardware core; on a
// single-core host the async columns are informational only (the
// bit-identical probe still gates).
//
// Emits machine-readable BENCH_async.json into the working directory.
// BSLREC_FAST=1 shrinks the dataset and epoch count for CI.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/losses.h"
#include "data/synthetic.h"
#include "models/mf.h"
#include "runtime/thread_pool.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace {

using namespace bslrec;  // NOLINT: bench-local convenience

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct RunPoint {
  size_t threads = 0;
  size_t eval_threads = 0;  // resolved background pool width
  double sync_seconds = 0.0;
  double async_seconds = 0.0;
  std::vector<EvalRecord> sync_evals;
  std::vector<EvalRecord> async_evals;
};

std::vector<size_t> ThreadCounts() {
  const size_t hw = runtime::ResolveNumThreads(0);
  std::vector<size_t> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

TrainResult RunOnce(const Dataset& data, size_t dim, size_t threads,
                    bool async, int epochs, size_t negatives,
                    double* seconds) {
  Rng rng(7);
  MfModel model(data.num_users(), data.num_items(), dim, rng);
  BilateralSoftmaxLoss loss(0.2, 0.25);
  UniformNegativeSampler sampler(data);
  TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.batch_size = 256;  // many optimizer steps → real serial fraction
  cfg.num_negatives = negatives;
  cfg.eval_every = 1;  // the sweep regime: metrics after every epoch
  cfg.seed = 99;
  cfg.runtime.num_threads = threads;
  cfg.async_eval = async;
  Trainer trainer(data, model, loss, sampler, cfg);
  const auto t0 = std::chrono::steady_clock::now();
  TrainResult result = trainer.Train();
  *seconds = SecondsSince(t0);
  return result;
}

bool SameEvals(const std::vector<EvalRecord>& a,
               const std::vector<EvalRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t e = 0; e < a.size(); ++e) {
    if (a[e].epoch != b[e].epoch ||
        a[e].metrics.recall != b[e].metrics.recall ||
        a[e].metrics.ndcg != b[e].metrics.ndcg ||
        a[e].metrics.precision != b[e].metrics.precision ||
        a[e].metrics.hit_rate != b[e].metrics.hit_rate ||
        a[e].metrics.num_users != b[e].metrics.num_users) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const bool fast = bench::FastMode();
  SyntheticConfig cfg;
  cfg.num_users = fast ? 500 : 1200;
  cfg.num_items = fast ? 900 : 1600;  // wide catalog: ranking dominates
  cfg.num_clusters = 10;
  cfg.avg_items_per_user = 10.0;
  cfg.seed = 177;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  const size_t dim = fast ? 24 : 48;
  const int epochs = fast ? 4 : 8;
  const size_t negatives = fast ? 16 : 32;
  const size_t hw = runtime::ResolveNumThreads(0);

  std::printf(
      "async-eval bench: %u users, %u items, %zu train edges, dim %zu, "
      "%d epochs (eval every epoch)\n",
      data.num_users(), data.num_items(), data.num_train(), dim, epochs);

  std::vector<RunPoint> points;
  for (size_t threads : ThreadCounts()) {
    RunPoint p;
    p.threads = threads;
    runtime::RuntimeConfig rt;
    rt.num_threads = threads;
    p.eval_threads = runtime::ResolveEvalThreads(rt);
    p.sync_evals =
        RunOnce(data, dim, threads, false, epochs, negatives, &p.sync_seconds)
            .evals;
    p.async_evals =
        RunOnce(data, dim, threads, true, epochs, negatives, &p.async_seconds)
            .evals;
    std::printf(
        "threads=%zu (eval pool %zu)  sync %.2fs (%.2f epochs/s)  "
        "async %.2fs (%.2f epochs/s)  wall speedup %.2fx\n",
        p.threads, p.eval_threads, p.sync_seconds, epochs / p.sync_seconds,
        p.async_seconds, epochs / p.async_seconds,
        p.sync_seconds / p.async_seconds);
    points.push_back(std::move(p));
  }

  // ---- metrics-bit-identical probe (gates the exit code) ----
  // Every run — sync or async, any thread split — must reproduce the
  // serial synchronous eval history bitwise.
  bool identical = !points.empty() && !points[0].sync_evals.empty();
  for (const RunPoint& p : points) {
    identical = identical && SameEvals(p.sync_evals, points[0].sync_evals) &&
                SameEvals(p.async_evals, points[0].sync_evals);
  }
  std::printf("metrics bit-identical across sync/async and thread counts: %s\n",
              identical ? "yes" : "NO — BUG");

  const RunPoint& at_hw = points.back();
  const bool async_faster_at_hw = at_hw.async_seconds < at_hw.sync_seconds;
  if (hw > 1) {
    std::printf("async strictly faster at hw threads: %s\n",
                async_faster_at_hw ? "yes" : "NO");
  } else {
    std::printf(
        "single hardware core: overlap cannot beat sequential "
        "(informational only)\n");
  }

  FILE* out = bench::BeginBenchJson("BENCH_async.json");
  if (out == nullptr) return 1;
  std::fprintf(out,
               "  \"dataset\": {\"users\": %u, \"items\": %u, "
               "\"train_edges\": %zu, \"dim\": %zu, \"epochs\": %d},\n",
               data.num_users(), data.num_items(), data.num_train(), dim,
               epochs);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const RunPoint& p = points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"eval_threads\": %zu, "
                 "\"sync_seconds\": %.3f, \"async_seconds\": %.3f, "
                 "\"sync_epochs_per_sec\": %.3f, "
                 "\"async_epochs_per_sec\": %.3f, "
                 "\"wall_speedup\": %.3f}%s\n",
                 p.threads, p.eval_threads, p.sync_seconds, p.async_seconds,
                 epochs / p.sync_seconds, epochs / p.async_seconds,
                 p.sync_seconds / p.async_seconds,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"async_faster_at_hw_threads\": %s,\n",
               async_faster_at_hw ? "true" : "false");
  bench::FinishBenchJson(out, "BENCH_async.json", identical,
                         "metrics_bit_identical");
  return identical ? 0 : 1;
}
