// Figure 12: NDCG@20 across embedding dimensions. The paper sweeps
// 128/256/512 at its full data scale; the ~50x-smaller synthetic presets
// saturate earlier, so the sweep here is 16/32/64 (same relative range).
// Claim: SL/BSL-equipped MF and LightGCN keep their edge at every size.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

namespace {

struct ModelRow {
  const char* label;
  bb::Backbone backbone;
  LossKind loss;
};

}  // namespace

int main() {
  bb::PrintHeader("Figure 12: NDCG@20 vs embedding dimension");
  const std::vector<ModelRow> rows = {
      {"SGL", bb::Backbone::kSgl, LossKind::kBpr},
      {"MF_SL", bb::Backbone::kMf, LossKind::kSoftmax},
      {"MF_BSL", bb::Backbone::kMf, LossKind::kBsl},
      {"LGN_SL", bb::Backbone::kLightGcn, LossKind::kSoftmax},
      {"LGN_BSL", bb::Backbone::kLightGcn, LossKind::kBsl},
  };
  const std::vector<size_t> dims = {16, 32, 64};
  const std::vector<bslrec::SyntheticConfig> datasets = {
      bslrec::Yelp18Synth(), bslrec::Movielens1MSynth()};

  for (const auto& cfg : datasets) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    std::printf("\n%s\n", cfg.name.c_str());
    std::printf("%-10s", "model");
    for (size_t d : dims) std::printf("    d=%-5zu", d);
    std::printf("\n");
    bb::PrintRule(46);
    for (const ModelRow& row : rows) {
      std::printf("%-10s", row.label);
      for (size_t d : dims) {
        bb::RunSpec spec;
        spec.backbone = row.backbone;
        spec.loss = row.loss;
        spec.loss_params.tau = 0.6;
        spec.loss_params.tau1 = 0.66;
        spec.tau_grid = bb::DefaultTauGrid();
        spec.dim = d;
        spec.train = bb::DefaultTrainConfig();
        if (row.backbone == bb::Backbone::kSgl) {
          spec.train.batch_size = 512;
        }
        std::printf("  %9.4f", bb::RunExperiment(data, spec).ndcg);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: SL/BSL rows stay on top across dimensions; gains "
      "from growing the dimension flatten out.\n");
  return 0;
}
