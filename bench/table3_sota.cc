// Table III: the contrastive SOTA backbones (SGL, SimGCL, LightGCL) with
// their native BPR recommendation loss versus the same backbones with the
// recommendation loss swapped for SL and BSL. Paper claim: both swaps
// help, BSL more.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  const std::vector<bb::Backbone> backbones = {
      bb::Backbone::kSgl, bb::Backbone::kSimGcl, bb::Backbone::kLightGcl};
  struct Row {
    const char* label;
    LossKind loss;
  };
  const std::vector<Row> rows = {{"base(BPR)", LossKind::kBpr},
                                 {"+SL", LossKind::kSoftmax},
                                 {"+BSL", LossKind::kBsl}};

  for (const auto& cfg : bslrec::AllPresets()) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    bb::PrintHeader("Table III on " + cfg.name);
    std::printf("%-10s", "model");
    for (const Row& r : rows) std::printf("  %9s %9s", r.label, "N@20");
    std::printf("\n");
    bb::PrintRule(76);
    for (bb::Backbone backbone : backbones) {
      std::printf("%-10s", bb::BackboneName(backbone));
      double base_ndcg = 0.0;
      for (const Row& r : rows) {
        bb::RunSpec spec;
        spec.backbone = backbone;
        spec.loss = r.loss;
        spec.loss_params.tau = 0.6;
        spec.loss_params.tau1 = 0.66;
        spec.tau_grid = bb::DefaultTauGrid();
        spec.train = bb::DefaultTrainConfig();
        spec.train.batch_size = 512;
        const auto m = bb::RunExperiment(data, spec);
        if (r.loss == LossKind::kBpr) base_ndcg = m.ndcg;
        const double gain =
            base_ndcg > 0.0 ? 100.0 * (m.ndcg / base_ndcg - 1.0) : 0.0;
        std::printf("  %9.4f %+8.1f%%", m.ndcg, gain);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: +SL improves each contrastive backbone over its "
      "native BPR loss and +BSL improves it further on average.\n");
  return 0;
}
