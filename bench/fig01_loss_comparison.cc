// Figure 1: Recall@20 of MF and LightGCN under BPR / MSE / BCE / SL on
// Yelp2018 and Amazon. Paper claim: SL wins by > 15% on every
// backbone/dataset combination.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Figure 1: loss comparison (Recall@20)");
  const std::vector<bslrec::SyntheticConfig> datasets = {
      bslrec::Yelp18Synth(), bslrec::AmazonSynth()};
  const std::vector<LossKind> losses = {LossKind::kBpr, LossKind::kMse,
                                        LossKind::kBce, LossKind::kSoftmax};
  const std::vector<bb::Backbone> backbones = {bb::Backbone::kMf,
                                               bb::Backbone::kLightGcn};

  for (const auto& cfg : datasets) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    std::printf("\n%-20s", cfg.name.c_str());
    for (LossKind l : losses) std::printf("%10s", LossKindName(l).data());
    std::printf("%12s\n", "SL gain");
    bb::PrintRule();
    for (bb::Backbone backbone : backbones) {
      std::printf("%-20s", bb::BackboneName(backbone));
      double best_classic = 0.0, sl_recall = 0.0;
      for (LossKind l : losses) {
        bb::RunSpec spec;
        spec.backbone = backbone;
        spec.loss = l;
        spec.loss_params.tau = 0.6;
        spec.tau_grid = bb::DefaultTauGrid();
        spec.train = bb::DefaultTrainConfig();
        const double recall = bb::RunExperiment(data, spec).recall;
        std::printf("%10.4f", recall);
        if (l == LossKind::kSoftmax) {
          sl_recall = recall;
        } else {
          best_classic = std::max(best_classic, recall);
        }
      }
      const double gain =
          best_classic > 0.0 ? 100.0 * (sl_recall / best_classic - 1.0) : 0.0;
      std::printf("%11.1f%%\n", gain);
    }
  }
  std::printf(
      "\nPaper shape: SL clearly above BPR/MSE/BCE for both backbones on "
      "both datasets (>15%% in the paper's full-scale setting).\n");
  return 0;
}
