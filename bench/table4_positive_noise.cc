// Table IV: SL vs BSL under 10-40% injected false positives (test split
// kept clean). BSL's improvement over SL widens as the noise grows.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "data/noise.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Table IV: MF-SL vs MF-BSL under positive noise");
  const std::vector<double> ratios = {0.1, 0.2, 0.3, 0.4};

  std::printf("%-8s%-22s%12s%12s%12s%12s%12s\n", "ratio", "dataset",
              "SL R@20", "SL N@20", "BSL R@20", "BSL N@20", "N@20 gain");
  bb::PrintRule(90);
  for (double ratio : ratios) {
    for (const auto& cfg : bslrec::AllPresets()) {
      const bslrec::Dataset clean = bslrec::GenerateSynthetic(cfg).dataset;
      bslrec::Rng noise_rng(77);
      const bslrec::Dataset data =
          bslrec::InjectFalsePositives(clean, ratio, noise_rng);

      bb::RunSpec sl_spec;
      sl_spec.loss = LossKind::kSoftmax;
      sl_spec.loss_params.tau = 0.6;
      sl_spec.train = bb::DefaultTrainConfig();
      const auto sl = bb::RunExperiment(data, sl_spec);

      bb::RunSpec bsl_spec = sl_spec;
      bsl_spec.loss = LossKind::kBsl;
      // The paper raises tau1/tau2 as the positive noise grows.
      bsl_spec.loss_params.tau1 = 0.6 * (1.2 + ratio);
      const auto bsl = bb::RunExperiment(data, bsl_spec);

      const double gain =
          sl.ndcg > 0.0 ? 100.0 * (bsl.ndcg / sl.ndcg - 1.0) : 0.0;
      std::printf("%-8.0f%-22s%12.4f%12.4f%12.4f%12.4f%+11.2f%%\n",
                  100.0 * ratio, cfg.name.c_str(), sl.recall, sl.ndcg,
                  bsl.recall, bsl.ndcg, gain);
    }
  }
  std::printf(
      "\nPaper shape: BSL >= SL at every noise level, with the relative "
      "gain widening as the ratio grows (largest on Gowalla).\n");
  return 0;
}
