// Figure 3: robustness analysis of SL on Yelp2018(synth).
//  (a) NDCG@20 across temperatures tau for several false-negative noise
//      rates r_noise — performance is unimodal in tau and the best tau
//      grows with the noise rate.
//  (b) empirical robustness radius eta at the best tau per noise rate —
//      eta rises with noise (more noise needs a larger uncertainty set).
#include <cstdio>
#include <vector>

#include "analysis/dro_analysis.h"
#include "bench_util.h"
#include "core/dro.h"
#include "models/mf.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Figure 3a: NDCG@20 of SL vs temperature and noise rate");
  bslrec::SyntheticConfig cfg = bslrec::Yelp18Synth();
  cfg.num_users = 500;  // sweep-sized copy of the preset
  cfg.num_items = 700;
  const bslrec::SyntheticData synth = bslrec::GenerateSynthetic(cfg);
  const bslrec::Dataset& data = synth.dataset;

  const std::vector<double> noise_rates = {0.0, 0.5, 1.0, 2.0, 3.0};
  const std::vector<double> taus = {0.3, 0.45, 0.6, 0.8, 1.0, 1.3};

  std::printf("%-12s", "r_noise\\tau");
  for (double tau : taus) std::printf("%9.2f", tau);
  std::printf("%12s\n", "best tau");
  bb::PrintRule(90);

  std::vector<double> best_taus;
  for (double rn : noise_rates) {
    std::printf("%-12.1f", rn);
    double best_ndcg = -1.0, best_tau = taus[0];
    for (double tau : taus) {
      bb::RunSpec spec;
      spec.loss = LossKind::kSoftmax;
      spec.loss_params.tau = tau;
      spec.r_noise = rn;
      spec.train = bb::DefaultTrainConfig();
      spec.train.epochs = bb::FastMode() ? 3 : 14;
      const double ndcg = bb::RunExperiment(data, spec).ndcg;
      std::printf("%9.4f", ndcg);
      if (ndcg > best_ndcg) {
        best_ndcg = ndcg;
        best_tau = tau;
      }
    }
    std::printf("%12.2f\n", best_tau);
    best_taus.push_back(best_tau);
  }

  bb::PrintHeader("Figure 3b: empirical eta at the best tau per noise rate");
  // Two eta readings: at the per-noise best tau (the paper's Eq. 16
  // protocol) and at the clean-data optimum tau held fixed — the latter
  // isolates "more noise needs a larger robustness radius" from the
  // simultaneous growth of the optimal temperature.
  std::printf("%-12s%14s%14s%20s%16s\n", "r_noise", "best tau", "eta(KL)",
              "eta @ fixed tau", "score var");
  bb::PrintRule(80);
  const double fixed_tau = best_taus[0];
  for (size_t k = 0; k < noise_rates.size(); ++k) {
    // Train at the best tau, then probe the sampled negative scores.
    bb::RunSpec spec;
    spec.loss = LossKind::kSoftmax;
    spec.loss_params.tau = best_taus[k];
    spec.r_noise = noise_rates[k];
    spec.train = bb::DefaultTrainConfig();
    spec.train.epochs = bb::FastMode() ? 3 : 14;

    const bslrec::BipartiteGraph graph(data);
    bslrec::Rng rng(7);
    bslrec::MfModel model(data.num_users(), data.num_items(), spec.dim, rng);
    const auto loss = CreateLoss(spec.loss, spec.loss_params);
    bslrec::NoisyNegativeSampler sampler(data, noise_rates[k]);
    bslrec::Trainer trainer(data, model, *loss, sampler, spec.train);
    trainer.Train();

    bslrec::Rng probe_rng(11);
    const auto probe = bslrec::CollectNegativeScores(model, data, sampler,
                                                     128, 256, probe_rng);
    const double eta =
        bslrec::dro::EmpiricalEta(probe.scores, best_taus[k]);
    const double eta_fixed =
        bslrec::dro::EmpiricalEta(probe.scores, fixed_tau);
    std::printf("%-12.1f%14.2f%14.4f%20.4f%16.5f\n", noise_rates[k],
                best_taus[k], eta, eta_fixed, probe.variance);
  }
  std::printf(
      "\nPaper shape: NDCG unimodal in tau; the best tau, the score "
      "variance and the fixed-tau radius eta all grow with the noise rate "
      "(Corollary III.1 ties the three together).\n");
  return 0;
}
