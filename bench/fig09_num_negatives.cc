// Figure 9: NDCG@20 as the number of sampled negatives N- grows. SL/BSL
// improve then plateau (stable); MSE/BCE can degrade on the small dense
// dataset because large N- inflates the false-negative count.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Figure 9: NDCG@20 vs number of negatives");
  const std::vector<bslrec::SyntheticConfig> datasets = {
      bslrec::Movielens1MSynth(), bslrec::GowallaSynth(),
      bslrec::Yelp18Synth()};
  const std::vector<LossKind> losses = {LossKind::kBce, LossKind::kMse,
                                        LossKind::kBpr, LossKind::kSoftmax,
                                        LossKind::kBsl};
  // The paper sweeps 32..2048; the sweep here stops at 1024 to keep the
  // single-core harness inside its time budget — the crossover behaviour
  // (pointwise losses flat-to-declining, SL/BSL stable) is already fully
  // visible by N=1024 on the dense MovieLens preset.
  const std::vector<size_t> counts = bb::FastMode()
                                         ? std::vector<size_t>{16, 64}
                                         : std::vector<size_t>{16, 64, 256,
                                                               1024};

  for (const auto& cfg : datasets) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    std::printf("\n%s\n", cfg.name.c_str());
    std::printf("%-8s", "loss");
    for (size_t n : counts) std::printf("   N=%-6zu", n);
    std::printf("\n");
    bb::PrintRule(56);
    for (LossKind l : losses) {
      std::printf("%-8s", LossKindName(l).data());
      for (size_t n : counts) {
        bb::RunSpec spec;
        spec.loss = l;
        spec.loss_params.tau = 0.6;
        spec.loss_params.tau1 = 0.66;
        spec.train = bb::DefaultTrainConfig();
        spec.train.num_negatives = n;
        spec.train.epochs = bb::FastMode() ? 3 : 8;
        std::printf("  %9.4f", bb::RunExperiment(data, spec).ndcg);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: SL/BSL stable or improving in N-; pointwise losses "
      "flat-to-declining, most visibly on the dense MovieLens preset.\n");
  return 0;
}
