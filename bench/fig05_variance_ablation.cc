// Figure 5: variance-term ablation. "w/ variance" is standard SL;
// "w/o variance" replaces the Log-Expectation-Exp negative part with its
// mean-field first-order term, removing the implicit variance penalty of
// Lemma 2. Removing it shifts NDCG mass from unpopular to popular groups.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "eval/evaluator.h"
#include "models/mf.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Figure 5: group NDCG@20 with and without variance term");
  // Milder skew variant (see fig04_fairness_weights.cc for the rationale).
  bslrec::SyntheticConfig cfg = bslrec::Yelp18Synth();
  cfg.zipf_alpha = 0.7;
  cfg.popularity_gamma = 0.35;
  const bslrec::SyntheticData synth = bslrec::GenerateSynthetic(cfg);
  const bslrec::Dataset& data = synth.dataset;

  struct Variant {
    const char* label;
    LossKind kind;
  };
  const std::vector<Variant> variants = {
      {"w/ variance (SL)", LossKind::kSoftmax},
      {"w/o variance", LossKind::kSoftmaxNoVariance},
  };

  std::printf("%-20s", "variant");
  for (int g = 1; g <= 10; ++g) std::printf("  grp%02d", g);
  std::printf("%9s\n", "total");
  bb::PrintRule(100);

  std::vector<std::vector<double>> group_rows;
  const bslrec::Evaluator eval(data, 20);
  for (const Variant& v : variants) {
    bslrec::Rng rng(3);
    bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
    bslrec::LossParams params;
    params.tau = 0.6;
    const auto loss = CreateLoss(v.kind, params);
    bslrec::UniformNegativeSampler sampler(data);
    bslrec::Trainer trainer(data, model, *loss, sampler,
                            bb::DefaultTrainConfig());
    trainer.Train();
    const auto groups = eval.GroupNdcg(model, 10);
    group_rows.push_back(groups);
    std::printf("%-20s", v.label);
    double total = 0.0;
    for (double g : groups) {
      std::printf("%7.4f", g);
      total += g;
    }
    std::printf("%9.4f\n", total);
  }

  // Tail (groups 1-5) share comparison.
  const auto tail_share = [](const std::vector<double>& groups) {
    double tail = 0.0, total = 0.0;
    for (size_t g = 0; g < groups.size(); ++g) {
      total += groups[g];
      if (g < 5) tail += groups[g];
    }
    return total > 0.0 ? tail / total : 0.0;
  };
  std::printf("\nUnpopular-half NDCG share: w/ variance %.3f, w/o %.3f\n",
              tail_share(group_rows[0]), tail_share(group_rows[1]));
  std::printf(
      "Paper shape: dropping the variance term helps popular groups and "
      "hurts unpopular ones (fairness degrades).\n");
  return 0;
}
