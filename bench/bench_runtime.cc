// Parallel-runtime throughput bench: wall-clock for the threaded
// evaluator and trainer at 1 / 2 / hardware threads, plus a check that
// the results stay bit-identical across worker counts (the runtime's
// core guarantee). Emits machine-readable BENCH_runtime.json into the
// working directory.
//
// BSLREC_FAST=1 shrinks the dataset and repetitions for CI.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/losses.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/mf.h"
#include "runtime/thread_pool.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace {

using namespace bslrec;  // NOLINT: bench-local convenience

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct EvalPoint {
  size_t threads;
  double ms_per_pass;
  double ndcg;
};

struct TrainPoint {
  size_t threads;
  double samples_per_sec;
  double first_epoch_loss;
};

std::vector<size_t> ThreadCounts() {
  // Always measure 2 workers, even on a single-core host: the point is
  // to exercise the threaded path and the bit-identical probe; speedup
  // only materializes where the cores do.
  const size_t hw = runtime::ResolveNumThreads(0);
  std::vector<size_t> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

}  // namespace

int main() {
  const bool fast = bench::FastMode();
  SyntheticConfig cfg;
  cfg.num_users = fast ? 400 : 1500;
  cfg.num_items = fast ? 300 : 1200;
  cfg.num_clusters = 10;
  cfg.avg_items_per_user = 18.0;
  cfg.seed = 77;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  const size_t dim = fast ? 16 : 48;
  const int eval_reps = fast ? 2 : 5;

  std::printf("runtime bench: %u users, %u items, %zu train edges, dim %zu\n",
              data.num_users(), data.num_items(), data.num_train(), dim);

  // ---- evaluator: ms per full-ranking pass per thread count ----
  std::vector<EvalPoint> eval_points;
  {
    Rng rng(5);
    MfModel model(data.num_users(), data.num_items(), dim, rng);
    model.Forward(rng);
    for (size_t threads : ThreadCounts()) {
      const Evaluator eval(data, 20, runtime::RuntimeConfig{threads});
      TopKMetrics m = eval.Evaluate(model);  // warm-up + correctness probe
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < eval_reps; ++r) m = eval.Evaluate(model);
      const double ms = SecondsSince(t0) * 1000.0 / eval_reps;
      eval_points.push_back({threads, ms, m.ndcg});
      std::printf("evaluator  threads=%zu  %.1f ms/pass  ndcg %.6f\n",
                  threads, ms, m.ndcg);
    }
  }

  // ---- trainer: samples/sec over one epoch per thread count ----
  std::vector<TrainPoint> train_points;
  for (size_t threads : ThreadCounts()) {
    Rng rng(6);
    MfModel model(data.num_users(), data.num_items(), dim, rng);
    BilateralSoftmaxLoss loss(0.2, 0.25);
    UniformNegativeSampler sampler(data);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 1024;
    tc.num_negatives = fast ? 16 : 64;
    tc.seed = 99;
    tc.runtime.num_threads = threads;
    Trainer trainer(data, model, loss, sampler, tc);
    const auto t0 = std::chrono::steady_clock::now();
    const EpochStats stats = trainer.RunEpoch(1);
    const double secs = SecondsSince(t0);
    const double sps = static_cast<double>(data.num_train()) / secs;
    train_points.push_back({threads, sps, stats.avg_loss});
    std::printf("trainer    threads=%zu  %.0f samples/sec  loss %.6f\n",
                threads, sps, stats.avg_loss);
  }

  // ---- determinism probe: results must match the 1-thread baseline ----
  bool identical = true;
  for (const EvalPoint& p : eval_points) {
    identical = identical && p.ndcg == eval_points[0].ndcg;
  }
  for (const TrainPoint& p : train_points) {
    identical =
        identical && p.first_epoch_loss == train_points[0].first_epoch_loss;
  }
  std::printf("bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — BUG");

  // ---- machine-readable output ----
  FILE* out = bench::BeginBenchJson("BENCH_runtime.json");
  if (out == nullptr) return 1;
  std::fprintf(out,
               "  \"dataset\": {\"users\": %u, \"items\": %u, "
               "\"train_edges\": %zu, \"dim\": %zu},\n",
               data.num_users(), data.num_items(), data.num_train(), dim);
  std::fprintf(out, "  \"evaluator\": [\n");
  for (size_t i = 0; i < eval_points.size(); ++i) {
    const EvalPoint& p = eval_points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"ms_per_pass\": %.3f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 p.threads, p.ms_per_pass,
                 eval_points[0].ms_per_pass / p.ms_per_pass,
                 i + 1 < eval_points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"trainer\": [\n");
  for (size_t i = 0; i < train_points.size(); ++i) {
    const TrainPoint& p = train_points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"samples_per_sec\": %.1f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 p.threads, p.samples_per_sec,
                 p.samples_per_sec / train_points[0].samples_per_sec,
                 i + 1 < train_points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  bench::FinishBenchJson(out, "BENCH_runtime.json", identical);
  return identical ? 0 : 1;
}
