// Google-benchmark microbenchmarks for the hot kernels: loss
// forward+backward per sample, negative sampling, cosine scoring, graph
// propagation and the evaluator. These guard the throughput the
// experiment harnesses depend on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/dro.h"
#include "core/losses.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"
#include "math/rng.h"
#include "math/vec.h"
#include "models/lightgcn.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"

namespace {

using namespace bslrec;  // NOLINT: bench-local convenience

std::vector<float> MakeScores(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> s(n);
  for (auto& x : s) x = 2.0f * static_cast<float>(rng.NextDouble()) - 1.0f;
  return s;
}

void BM_LossCompute(benchmark::State& state, LossKind kind) {
  const size_t n = static_cast<size_t>(state.range(0));
  LossParams params;
  params.tau = 0.12;
  params.tau1 = 0.15;
  const auto loss = CreateLoss(kind, params);
  const auto negs = MakeScores(n, 1);
  std::vector<float> d_neg(n);
  float d_pos = 0.0f;
  for (auto _ : state) {
    const double l = loss->Compute(0.4f, negs, &d_pos, d_neg);
    benchmark::DoNotOptimize(l);
    benchmark::DoNotOptimize(d_neg.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void RegisterLossBenchmarks() {
  const std::pair<const char*, LossKind> kinds[] = {
      {"BPR", LossKind::kBpr},     {"BCE", LossKind::kBce},
      {"MSE", LossKind::kMse},     {"SL", LossKind::kSoftmax},
      {"BSL", LossKind::kBsl},     {"CCL", LossKind::kCcl},
  };
  for (const auto& [name, kind] : kinds) {
    const std::string bench_name = std::string("BM_Loss/") + name;
    benchmark::RegisterBenchmark(bench_name.c_str(),
                                 [kind](benchmark::State& st) {
                                   BM_LossCompute(st, kind);
                                 })
        ->Arg(32)
        ->Arg(256);
  }
}

void BM_UniformSampler(benchmark::State& state) {
  SyntheticConfig cfg;
  cfg.num_users = 300;
  cfg.num_items = 250;
  cfg.seed = 2;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  UniformNegativeSampler sampler(data);
  Rng rng(3);
  std::vector<uint32_t> out;
  const size_t n = static_cast<size_t>(state.range(0));
  uint32_t u = 0;
  for (auto _ : state) {
    sampler.Sample(u, n, rng, out);
    benchmark::DoNotOptimize(out.data());
    u = (u + 1) % data.num_users();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UniformSampler)->Arg(32)->Arg(256);

void BM_NoisySampler(benchmark::State& state) {
  SyntheticConfig cfg;
  cfg.num_users = 300;
  cfg.num_items = 250;
  cfg.seed = 2;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  NoisyNegativeSampler sampler(data, 5.0);
  Rng rng(4);
  std::vector<uint32_t> out;
  uint32_t u = 0;
  for (auto _ : state) {
    sampler.Sample(u, 64, rng, out);
    benchmark::DoNotOptimize(out.data());
    u = (u + 1) % data.num_users();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NoisySampler);

// Naive scalar references for the blocked vec kernels: the pre-blocking
// single-accumulator forms, kept here so BM_Dot/blocked vs BM_Dot/naive
// (etc.) quantifies what the unrolled multi-accumulator loops buy.
namespace naive {

float Dot(const float* a, const float* b, size_t n) {
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) acc += static_cast<double>(a[k]) * b[k];
  return static_cast<float>(acc);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t k = 0; k < n; ++k) y[k] += alpha * x[k];
}

float Normalize(const float* x, float* out, size_t n, float eps = 1e-12f) {
  const float norm = std::sqrt(std::max(0.0f, Dot(x, x, n)));
  const float inv = 1.0f / std::max(norm, eps);
  for (size_t k = 0; k < n; ++k) out[k] = x[k] * inv;
  return norm;
}

double LogSumExp(const float* x, size_t n) {
  float max_x = x[0];
  for (size_t k = 1; k < n; ++k) max_x = std::max(max_x, x[k]);
  double acc = 0.0;
  for (size_t k = 0; k < n; ++k) {
    acc += std::exp(static_cast<double>(x[k]) - max_x);
  }
  return static_cast<double>(max_x) + std::log(acc);
}

}  // namespace naive

std::vector<float> GaussianVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

void BM_DotBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = GaussianVec(n, 11), b = GaussianVec(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DotBlocked)->Arg(16)->Arg(64)->Arg(256)->Arg(4096);

void BM_DotNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = GaussianVec(n, 11), b = GaussianVec(n, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DotNaive)->Arg(16)->Arg(64)->Arg(256)->Arg(4096);

void BM_AxpyBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = GaussianVec(n, 13);
  auto y = GaussianVec(n, 14);
  for (auto _ : state) {
    vec::Axpy(0.25f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AxpyBlocked)->Arg(64)->Arg(4096);

void BM_AxpyNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = GaussianVec(n, 13);
  auto y = GaussianVec(n, 14);
  for (auto _ : state) {
    naive::Axpy(0.25f, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AxpyNaive)->Arg(64)->Arg(4096);

void BM_NormalizeBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = GaussianVec(n, 15);
  std::vector<float> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::Normalize(x.data(), out.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NormalizeBlocked)->Arg(64)->Arg(4096);

void BM_NormalizeNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = GaussianVec(n, 15);
  std::vector<float> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::Normalize(x.data(), out.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NormalizeNaive)->Arg(64)->Arg(4096);

void BM_LogSumExpBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = MakeScores(n, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::LogSumExp(x.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LogSumExpBlocked)->Arg(64)->Arg(4096);

void BM_LogSumExpNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = MakeScores(n, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive::LogSumExp(x.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LogSumExpNaive)->Arg(64)->Arg(4096);

// DotBatch (paired rows, shared query loads) vs the per-row Dot loop it
// replaced in the trainer's negative-scoring path. Arg is the dim; the
// block is 64 rows, the default N-.
void BM_DotBatchBlocked(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  constexpr size_t kRows = 64;
  const auto q = GaussianVec(d, 21);
  const auto rows = GaussianVec(kRows * d, 22);
  std::vector<float> out(kRows);
  for (auto _ : state) {
    vec::DotBatch(q.data(), rows.data(), kRows, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * d);
}
BENCHMARK(BM_DotBatchBlocked)->Arg(16)->Arg(64)->Arg(256);

void BM_DotBatchPerRowLoop(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  constexpr size_t kRows = 64;
  const auto q = GaussianVec(d, 21);
  const auto rows = GaussianVec(kRows * d, 22);
  std::vector<float> out(kRows);
  for (auto _ : state) {
    for (size_t r = 0; r < kRows; ++r) {
      out[r] = vec::Dot(q.data(), rows.data() + r * d, d);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * d);
}
BENCHMARK(BM_DotBatchPerRowLoop)->Arg(16)->Arg(64)->Arg(256);

// ---- int8 catalog-scan kernels (quantized two-phase scorer) ----
// SIMD dispatch vs the always-compiled scalar reference (vec::ref), and
// the batched int8 scan vs the fp32 DotBatch it displaces in phase 1 —
// the latter pair is the memory-traffic argument in numbers.

std::vector<int8_t> QuantizedVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int8_t> v(n);
  for (auto& x : v) {
    x = static_cast<int8_t>(static_cast<int>(rng.NextIndex(255)) - 127);
  }
  return v;
}

void BM_DotI8(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = QuantizedVec(n, 31), b = QuantizedVec(n, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::DotI8(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DotI8)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_DotI8Ref(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = QuantizedVec(n, 31), b = QuantizedVec(n, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::ref::DotI8(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DotI8Ref)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// One phase-1 shard scan: 64 catalog rows against one quantized query.
// Compare against BM_DotBatchBlocked at the same dim for the int8 vs
// fp32 bandwidth story.
void BM_DotBatchI8(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  constexpr size_t kRows = 64;
  const auto q = QuantizedVec(d, 33);
  const auto rows = QuantizedVec(kRows * d, 34);
  std::vector<int32_t> out(kRows);
  for (auto _ : state) {
    vec::DotBatchI8(q.data(), rows.data(), kRows, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * d);
}
BENCHMARK(BM_DotBatchI8)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_DotBatchI8Ref(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  constexpr size_t kRows = 64;
  const auto q = QuantizedVec(d, 33);
  const auto rows = QuantizedVec(kRows * d, 34);
  std::vector<int32_t> out(kRows);
  for (auto _ : state) {
    vec::ref::DotBatchI8(q.data(), rows.data(), kRows, d, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kRows * d);
}
BENCHMARK(BM_DotBatchI8Ref)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

// Row quantization — the snapshot-freeze cost of building the int8
// table and the per-query cost of encoding q into codes.
void BM_QuantizeRow(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = GaussianVec(n, 35);
  std::vector<int8_t> codes(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::QuantizeRow(x.data(), n, codes.data()));
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuantizeRow)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_QuantizeRowRef(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = GaussianVec(n, 35);
  std::vector<int8_t> codes(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vec::ref::QuantizeRow(x.data(), n, codes.data()));
    benchmark::DoNotOptimize(codes.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_QuantizeRowRef)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_StreamRngDraws(benchmark::State& state) {
  // Cost of one full per-sample stream: construction + 64 bounded draws,
  // the trainer's per-sample sampling pattern.
  uint64_t sink = 0;
  uint64_t s = 0;
  for (auto _ : state) {
    StreamRng rng(42, 1, ++s);
    for (int j = 0; j < 64; ++j) sink += rng.NextIndex(1200);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_StreamRngDraws);

void BM_CosineScore(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<float> u(d), v(d);
  for (auto& x : u) x = static_cast<float>(rng.NextGaussian());
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian());
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::Cosine(u.data(), v.data(), d));
  }
}
BENCHMARK(BM_CosineScore)->Arg(16)->Arg(64)->Arg(256);

void BM_GraphPropagation(benchmark::State& state) {
  SyntheticConfig cfg;
  cfg.num_users = 400;
  cfg.num_items = 350;
  cfg.seed = 6;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  const BipartiteGraph graph(data);
  Matrix base(graph.num_nodes(), 16), out(graph.num_nodes(), 16);
  graph::PropagationEngine engine;  // serial: this tracks the raw kernel
  Rng rng(7);
  base.InitGaussian(rng, 0.1f);
  const int layers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    engine.MeanPropagate(graph.Adjacency(), base, layers, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * graph.Adjacency().nnz() *
                          layers);
}
BENCHMARK(BM_GraphPropagation)->Arg(1)->Arg(3);

void BM_Evaluator(benchmark::State& state) {
  SyntheticConfig cfg;
  cfg.num_users = 300;
  cfg.num_items = 250;
  cfg.seed = 8;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  Rng rng(9);
  MfModel model(data.num_users(), data.num_items(), 16, rng);
  model.Forward(rng);
  const Evaluator eval(data, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Evaluate(model).ndcg);
  }
}
BENCHMARK(BM_Evaluator);

void BM_WorstCaseWeights(benchmark::State& state) {
  const auto scores = MakeScores(static_cast<size_t>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dro::WorstCaseWeights(scores, 0.1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorstCaseWeights)->Arg(256)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  RegisterLossBenchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
