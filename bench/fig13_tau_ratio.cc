// Figure 13: sensitivity of BSL to the temperature ratio tau1/tau2 on MF
// and LightGCN. Performance is unimodal: a moderate ratio (around 1)
// is best; extreme ratios hurt (too small or too large a positive-side
// robustness radius, Corollary III.1).
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Figure 13: NDCG@20 vs tau1/tau2 ratio (BSL)");
  const std::vector<double> ratios = {0.5, 0.8, 1.0, 1.2, 1.4, 2.0};
  const std::vector<bb::Backbone> backbones = {bb::Backbone::kMf,
                                               bb::Backbone::kLightGcn};
  constexpr double kTau2 = 0.6;

  for (const auto& cfg : bslrec::AllPresets()) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    std::printf("\n%s\n", cfg.name.c_str());
    std::printf("%-10s", "model");
    for (double r : ratios) std::printf("  r=%-6.1f", r);
    std::printf("\n");
    bb::PrintRule(70);
    for (bb::Backbone backbone : backbones) {
      std::printf("%-10s", bb::BackboneName(backbone));
      for (double r : ratios) {
        bb::RunSpec spec;
        spec.backbone = backbone;
        spec.loss = LossKind::kBsl;
        spec.loss_params.tau = kTau2;
        spec.loss_params.tau1 = kTau2 * r;
        spec.train = bb::DefaultTrainConfig();
        spec.train.epochs = bb::FastMode() ? 3 : 14;
        std::printf("  %8.4f", bb::RunExperiment(data, spec).ndcg);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: unimodal in the ratio; the peak sits near ratio ~1 "
      "on clean data and shifts right when positives are noisier.\n");
  return 0;
}
