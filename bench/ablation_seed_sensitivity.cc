// Seed sensitivity of the headline claim (Table II's loss ordering).
//
// Every number in the paper-reproduction tables comes from one seeded
// run; this harness re-trains MF with BPR / SL / BSL on Yelp2018(synth)
// under five different training seeds and reports mean +- std of
// NDCG@20, showing the SL > BPR and BSL > SL gaps dwarf seed noise.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "math/stats.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader("Ablation: seed sensitivity of the loss ordering (MF)");
  const bslrec::Dataset data =
      bslrec::GenerateSynthetic(bslrec::Yelp18Synth()).dataset;
  const std::vector<uint64_t> seeds = {11, 22, 33, 44, 55};
  const std::vector<LossKind> losses = {LossKind::kBpr, LossKind::kSoftmax,
                                        LossKind::kBsl};

  std::printf("%-8s%12s%12s%14s\n", "loss", "mean N@20", "std", "min..max");
  bb::PrintRule(48);
  std::vector<double> means;
  for (LossKind l : losses) {
    bslrec::RunningStats stats;
    for (uint64_t seed : seeds) {
      bb::RunSpec spec;
      spec.loss = l;
      spec.loss_params.tau = 0.6;
      spec.loss_params.tau1 = 0.66;
      spec.train = bb::DefaultTrainConfig();
      spec.train.seed = seed;
      stats.Add(bb::RunExperiment(data, spec).ndcg);
    }
    means.push_back(stats.mean());
    std::printf("%-8s%12.4f%12.4f   %.4f..%.4f\n", LossKindName(l).data(),
                stats.mean(), stats.stddev(), stats.min(), stats.max());
  }
  std::printf(
      "\nReading: the SL-BPR gap (%.4f) and BSL-SL gap (%.4f) are an "
      "order of magnitude above the per-loss seed std — the orderings in "
      "the reproduction tables are not seed artifacts.\n",
      means[1] - means[0], means[2] - means[1]);
  return 0;
}
