// Figure 7: NDCG at cutoffs 5/10/15 for MF and LightGCN equipped with
// SL/BSL next to the contrastive SOTA models. The SL/BSL-equipped basic
// backbones match or beat the SOTA rows at every cutoff.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "eval/evaluator.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

namespace {

struct ModelRow {
  const char* label;
  bb::Backbone backbone;
  LossKind loss;
};

}  // namespace

int main() {
  const std::vector<ModelRow> rows = {
      {"SimGCL", bb::Backbone::kSimGcl, LossKind::kBpr},
      {"SGL", bb::Backbone::kSgl, LossKind::kBpr},
      {"MF_SL", bb::Backbone::kMf, LossKind::kSoftmax},
      {"MF_BSL", bb::Backbone::kMf, LossKind::kBsl},
      {"LGN_SL", bb::Backbone::kLightGcn, LossKind::kSoftmax},
      {"LGN_BSL", bb::Backbone::kLightGcn, LossKind::kBsl},
  };
  const std::vector<uint32_t> cutoffs = {5, 10, 15};

  for (const auto& cfg : bslrec::AllPresets()) {
    const bslrec::Dataset data = bslrec::GenerateSynthetic(cfg).dataset;
    const bslrec::Evaluator eval(data, 20);
    bb::PrintHeader("Figure 7 on " + cfg.name + " (NDCG@K)");
    std::printf("%-10s", "model");
    for (uint32_t k : cutoffs) std::printf("     @%-4u", k);
    std::printf("\n");
    bb::PrintRule(44);
    for (const ModelRow& row : rows) {
      // Train once, evaluate at several cutoffs.
      const bslrec::BipartiteGraph graph(data);
      bslrec::Rng rng(13);
      auto model = bb::MakeModel(row.backbone, graph, 16, 2, rng);
      bslrec::LossParams params;
      // Propagated (GCN) embeddings have lower score variance, so their
      // optimal temperature sits higher (Corollary III.1).
      params.tau = row.backbone == bb::Backbone::kLightGcn ? 0.9 : 0.6;
      params.tau1 = params.tau * 1.1;
      const auto loss = CreateLoss(row.loss, params);
      bslrec::UniformNegativeSampler sampler(data);
      bslrec::TrainConfig tcfg = bb::DefaultTrainConfig();
      if (row.backbone == bb::Backbone::kSgl ||
          row.backbone == bb::Backbone::kSimGcl) {
        tcfg.batch_size = 512;
      }
      bslrec::Trainer trainer(data, *model, *loss, sampler, tcfg);
      trainer.Train();
      // One pass: the normalized item table is shared across cutoffs.
      bslrec::Evaluator::Pass pass = eval.BeginPass(*model);
      std::printf("%-10s", row.label);
      for (uint32_t k : cutoffs) {
        std::printf("  %8.4f", pass.EvaluateAtK(k).ndcg);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: MF/LGN + SL/BSL reach or beat the contrastive SOTA "
      "models at every cutoff.\n");
  return 0;
}
