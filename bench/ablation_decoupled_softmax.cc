// Ablation for the paper's footnote 1: the positive term is dropped from
// the softmax denominator ("decoupled" form, following DCL). This
// harness trains both variants and reports accuracy plus the
// embedding-uniformity metric the footnote cites as the reason the
// decoupled form works slightly better.
#include <cstdio>

#include "analysis/embedding_analysis.h"
#include "bench_util.h"
#include "models/mf.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  bb::PrintHeader(
      "Ablation (footnote 1): decoupled SL vs full-softmax denominator");
  std::printf("%-22s%-10s%12s%12s%14s\n", "dataset", "variant", "R@20",
              "N@20", "uniformity");
  bb::PrintRule(72);
  for (const auto& cfg : {bslrec::Yelp18Synth(), bslrec::GowallaSynth()}) {
    const bslrec::SyntheticData synth = bslrec::GenerateSynthetic(cfg);
    const bslrec::Dataset& data = synth.dataset;
    for (LossKind kind : {LossKind::kSoftmax, LossKind::kFullSoftmax}) {
      const bslrec::BipartiteGraph graph(data);
      bslrec::Rng rng(19);
      bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
      bslrec::LossParams params;
      params.tau = 0.6;
      const auto loss = CreateLoss(kind, params);
      bslrec::UniformNegativeSampler sampler(data);
      bslrec::Trainer trainer(data, model, *loss, sampler,
                              bb::DefaultTrainConfig());
      const auto result = trainer.Train();
      bslrec::Rng fwd(20);
      model.Forward(fwd);
      const double uniformity =
          bslrec::UniformityLoss(model.FinalItemMatrix());
      std::printf("%-22s%-10s%12.4f%12.4f%14.4f\n", cfg.name.c_str(),
                  LossKindName(kind).data(), result.best.recall,
                  result.best.ndcg, uniformity);
    }
  }
  std::printf(
      "\nReading: the two variants train to near-identical accuracy; the "
      "decoupled form tends to slightly more uniform item embeddings "
      "(more negative uniformity), matching the footnote's rationale.\n");
  return 0;
}
