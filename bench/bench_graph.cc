// Graph-propagation throughput bench: wall-clock for the sharded SpMM
// and the L-layer mean propagation at 1 / 2 / hardware threads, plus a
// probe that the results stay bit-identical across worker counts (the
// sharded-rows contract in graph/propagation.h). Emits machine-readable
// BENCH_graph.json into the working directory; exits non-zero if any
// thread count produces different bits.
//
// BSLREC_FAST=1 shrinks the graph and repetitions for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "graph/propagation.h"
#include "runtime/thread_pool.h"

namespace {

using namespace bslrec;  // NOLINT: bench-local convenience

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Point {
  size_t threads;
  double spmm_ms;
  double propagate_ms;
  std::vector<float> spmm_bits;       // output snapshot for the probe
  std::vector<float> propagate_bits;
};

std::vector<size_t> ThreadCounts() {
  // Always measure 2 workers, even on a single-core host: the point is
  // to exercise the threaded path and the bit-identical probe; speedup
  // only materializes where the cores do.
  const size_t hw = runtime::ResolveNumThreads(0);
  std::vector<size_t> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

}  // namespace

int main() {
  const bool fast = bench::FastMode();
  SyntheticConfig cfg;
  cfg.num_users = fast ? 500 : 4000;
  cfg.num_items = fast ? 400 : 3000;
  cfg.num_clusters = 10;
  cfg.avg_items_per_user = fast ? 15.0 : 25.0;
  cfg.seed = 88;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  const BipartiteGraph graph(data);
  const SparseMatrix& adj = graph.Adjacency();
  const size_t dim = fast ? 16 : 64;
  const int layers = fast ? 2 : 3;
  const int reps = fast ? 3 : 10;

  std::printf(
      "graph bench: %u users, %u items, %zu nnz, dim %zu, %d layers\n",
      graph.num_users(), graph.num_items(), adj.nnz(), dim, layers);

  Rng rng(9);
  Matrix x(graph.num_nodes(), dim);
  x.InitGaussian(rng, 0.1f);

  std::vector<Point> points;
  for (size_t threads : ThreadCounts()) {
    runtime::ThreadPool pool(threads);
    graph::PropagationEngine engine(&pool);
    Point p;
    p.threads = threads;

    Matrix out(graph.num_nodes(), dim);
    engine.Multiply(adj, x, out);  // warm-up (sizes engine scratch)
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) engine.Multiply(adj, x, out);
    p.spmm_ms = SecondsSince(t0) * 1000.0 / reps;
    p.spmm_bits.assign(out.data(), out.data() + out.size());

    Matrix prop(graph.num_nodes(), dim);
    engine.MeanPropagate(adj, x, layers, prop);  // warm-up
    t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) engine.MeanPropagate(adj, x, layers, prop);
    p.propagate_ms = SecondsSince(t0) * 1000.0 / reps;
    p.propagate_bits.assign(prop.data(), prop.data() + prop.size());

    std::printf(
        "threads=%zu  spmm %.2f ms  %d-layer propagate %.2f ms\n",
        threads, p.spmm_ms, layers, p.propagate_ms);
    points.push_back(std::move(p));
  }

  // ---- determinism probe: bits must match the 1-thread baseline ----
  bool identical = true;
  for (const Point& p : points) {
    identical =
        identical &&
        std::memcmp(p.spmm_bits.data(), points[0].spmm_bits.data(),
                    p.spmm_bits.size() * sizeof(float)) == 0 &&
        std::memcmp(p.propagate_bits.data(), points[0].propagate_bits.data(),
                    p.propagate_bits.size() * sizeof(float)) == 0;
  }
  std::printf("bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — BUG");

  // ---- machine-readable output ----
  FILE* out = bench::BeginBenchJson("BENCH_graph.json");
  if (out == nullptr) return 1;
  std::fprintf(out,
               "  \"graph\": {\"users\": %u, \"items\": %u, \"nnz\": %zu, "
               "\"dim\": %zu, \"layers\": %d},\n",
               graph.num_users(), graph.num_items(), adj.nnz(), dim, layers);
  std::fprintf(out, "  \"spmm\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"ms\": %.3f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 p.threads, p.spmm_ms, points[0].spmm_ms / p.spmm_ms,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"propagate\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"ms\": %.3f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 p.threads, p.propagate_ms,
                 points[0].propagate_ms / p.propagate_ms,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  bench::FinishBenchJson(out, "BENCH_graph.json", identical);
  return identical ? 0 : 1;
}
