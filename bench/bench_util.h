// Shared experiment runner for the bench/ harnesses.
//
// Every table/figure binary funnels through RunExperiment so a row in any
// printed table means exactly one thing: train <backbone> with <loss> on
// <dataset> under the standard protocol, report best Recall@20 / NDCG@20.
//
// Set BSLREC_FAST=1 in the environment to shrink epochs (useful on CI);
// printed results then lose fidelity but every code path still runs.
#ifndef BSLREC_BENCH_BENCH_UTIL_H_
#define BSLREC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/losses.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "math/vec.h"
#include "models/contrastive.h"
#include "models/lightgcn.h"
#include "models/mf.h"
#include "models/ngcf.h"
#include "runtime/thread_pool.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace bslrec::bench {

enum class Backbone { kMf, kNgcf, kLightGcn, kSgl, kSimGcl, kLightGcl };

inline const char* BackboneName(Backbone b) {
  switch (b) {
    case Backbone::kMf:
      return "MF";
    case Backbone::kNgcf:
      return "NGCF";
    case Backbone::kLightGcn:
      return "LGN";
    case Backbone::kSgl:
      return "SGL";
    case Backbone::kSimGcl:
      return "SimGCL";
    case Backbone::kLightGcl:
      return "LightGCL";
  }
  return "?";
}

struct RunSpec {
  Backbone backbone = Backbone::kMf;
  LossKind loss = LossKind::kSoftmax;
  LossParams loss_params;
  // Optional temperature grid emulating the paper's per-cell grid search:
  // when non-empty, the run is repeated per tau (keeping the configured
  // tau1/tau2 ratio for BSL) and the best-NDCG result is reported.
  std::vector<double> tau_grid;
  size_t dim = 16;
  int layers = 2;
  double r_noise = 0.0;  // false-negative odds (0 = clean uniform sampler)
  TrainConfig train;
};

inline bool FastMode() {
  const char* env = std::getenv("BSLREC_FAST");
  return env != nullptr && env[0] == '1';
}

// BSLREC_SCALE=1 selects the opposite regime from BSLREC_FAST: a
// serving-scale workload (wide catalogs, production dims) for benches
// that support it. FAST wins when both are set.
inline bool ScaleMode() {
  const char* env = std::getenv("BSLREC_SCALE");
  return env != nullptr && env[0] == '1' && !FastMode();
}

// ---- machine topology ----------------------------------------------------
//
// Every BENCH_*.json leads with a "machine" object so a results file is
// interpretable without knowing which host produced it: thread count,
// SIMD tier the binary dispatched to, cache geometry (the quantized
// catalog scan is a cache-footprint play), and which env switches
// shaped the workload. Cache fields are 0 when sysfs is unavailable
// (non-Linux, restricted containers) — absent, not wrong.

struct MachineTopology {
  size_t hardware_threads = 0;
  std::string simd_tier;        // vec::SimdTier(): "avx2" / "sse2" / "scalar"
  size_t cache_line_bytes = 0;  // coherency line size; 0 = unknown
  size_t l1d_kib = 0;           // per-core L1 data cache; 0 = unknown
  size_t l2_kib = 0;
  size_t l3_kib = 0;
  bool fast_mode = false;   // BSLREC_FAST=1
  bool scale_mode = false;  // BSLREC_SCALE=1
};

// Parses a sysfs cache size string ("32K", "8192K", "1M") into KiB;
// returns 0 on anything unrecognized.
inline size_t ParseCacheSizeKib(const std::string& s) {
  if (s.empty()) return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) return 0;
  if (*end == 'K') return static_cast<size_t>(v);
  if (*end == 'M') return static_cast<size_t>(v) * 1024;
  return 0;
}

inline MachineTopology QueryMachineTopology() {
  MachineTopology t;
  t.hardware_threads = runtime::ResolveNumThreads(0);
  t.simd_tier = vec::SimdTier();
  t.fast_mode = FastMode();
  t.scale_mode = ScaleMode();
  // cpu0's cache hierarchy stands in for the machine's (homogeneous
  // cores are the overwhelmingly common case; on hybrid parts this
  // reports the boot core).
  for (int idx = 0; idx < 8; ++idx) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(idx) + "/";
    std::ifstream level_f(base + "level");
    std::ifstream type_f(base + "type");
    std::ifstream size_f(base + "size");
    if (!level_f || !type_f || !size_f) continue;
    int level = 0;
    std::string type, size_str;
    level_f >> level;
    type_f >> type;
    size_f >> size_str;
    if (type == "Instruction") continue;  // want data/unified capacities
    const size_t kib = ParseCacheSizeKib(size_str);
    if (level == 1) {
      t.l1d_kib = kib;
    } else if (level == 2) {
      t.l2_kib = kib;
    } else if (level == 3) {
      t.l3_kib = kib;
    }
    if (t.cache_line_bytes == 0) {
      std::ifstream line_f(base + "coherency_line_size");
      size_t bytes = 0;
      if (line_f >> bytes) t.cache_line_bytes = bytes;
    }
  }
  return t;
}

// ---- BENCH_*.json envelope -----------------------------------------------
//
// Opens `path`, writes the opening brace plus the shared "machine"
// header, and returns the stream (nullptr + stderr diagnostic on
// failure). The bench then prints its own payload keys and closes the
// envelope with FinishBenchJson, which appends the determinism-probe
// verdict under `probe_key`, closes the file, and logs the write. Keys
// the benches already emitted before this helper existed keep their
// names ("bit_identical", "metrics_bit_identical") via `probe_key`.

inline FILE* BeginBenchJson(const char* path) {
  FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return nullptr;
  }
  const MachineTopology t = QueryMachineTopology();
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"machine\": {\"hardware_threads\": %zu, "
               "\"simd_tier\": \"%s\", \"cache_line_bytes\": %zu, "
               "\"l1d_kib\": %zu, \"l2_kib\": %zu, \"l3_kib\": %zu, "
               "\"fast_mode\": %s, \"scale_mode\": %s},\n",
               t.hardware_threads, t.simd_tier.c_str(), t.cache_line_bytes,
               t.l1d_kib, t.l2_kib, t.l3_kib, t.fast_mode ? "true" : "false",
               t.scale_mode ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %zu,\n", t.hardware_threads);
  return out;
}

inline void FinishBenchJson(FILE* out, const char* path, bool probe_passed,
                            const char* probe_key = "bit_identical") {
  std::fprintf(out, "  \"%s\": %s\n", probe_key,
               probe_passed ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path);
}

// Standard protocol used by (almost) every figure/table.
inline TrainConfig DefaultTrainConfig() {
  TrainConfig cfg;
  cfg.epochs = FastMode() ? 4 : 18;
  cfg.batch_size = 1024;
  cfg.num_negatives = 64;
  cfg.lr = 0.05;
  cfg.weight_decay = 1e-6;
  cfg.eval_every = 6;
  cfg.metric_k = 20;
  cfg.seed = 2024;
  return cfg;
}

inline std::unique_ptr<EmbeddingModel> MakeModel(Backbone backbone,
                                                 const BipartiteGraph& graph,
                                                 size_t dim, int layers,
                                                 Rng& rng) {
  switch (backbone) {
    case Backbone::kMf:
      return std::make_unique<MfModel>(graph.num_users(), graph.num_items(),
                                       dim, rng);
    case Backbone::kNgcf:
      return std::make_unique<NgcfModel>(graph, dim, layers, rng);
    case Backbone::kLightGcn:
      return std::make_unique<LightGcnModel>(graph, dim, layers, rng);
    case Backbone::kSgl: {
      ContrastiveConfig cc;
      cc.kind = AugmentationKind::kEdgeDropout;
      cc.num_layers = layers;
      return std::make_unique<ContrastiveModel>(graph, dim, cc, rng);
    }
    case Backbone::kSimGcl: {
      ContrastiveConfig cc;
      cc.kind = AugmentationKind::kEmbeddingNoise;
      cc.num_layers = layers;
      return std::make_unique<ContrastiveModel>(graph, dim, cc, rng);
    }
    case Backbone::kLightGcl: {
      ContrastiveConfig cc;
      cc.kind = AugmentationKind::kSvdView;
      cc.num_layers = layers;
      return std::make_unique<ContrastiveModel>(graph, dim, cc, rng);
    }
  }
  return nullptr;
}

// Trains one configuration and returns the best (by NDCG) checkpoint
// metrics — the paper's grid-search-with-early-stopping protocol.
inline TopKMetrics RunExperimentOnce(const Dataset& data,
                                     const RunSpec& spec) {
  const BipartiteGraph graph(data);
  Rng rng(spec.train.seed ^ 0x5EEDBA5EULL);
  std::unique_ptr<EmbeddingModel> model =
      MakeModel(spec.backbone, graph, spec.dim, spec.layers, rng);
  const std::unique_ptr<LossFunction> loss =
      CreateLoss(spec.loss, spec.loss_params);
  std::unique_ptr<NegativeSampler> sampler;
  if (spec.r_noise > 0.0) {
    sampler = std::make_unique<NoisyNegativeSampler>(data, spec.r_noise);
  } else {
    sampler = std::make_unique<UniformNegativeSampler>(data);
  }
  Trainer trainer(data, *model, *loss, *sampler, spec.train);
  return trainer.Train().best;
}

inline bool IsSoftmaxFamily(LossKind kind) {
  return kind == LossKind::kSoftmax || kind == LossKind::kBsl ||
         kind == LossKind::kSoftmaxNoVariance ||
         kind == LossKind::kVarianceAugmentedMean;
}

inline TopKMetrics RunExperiment(const Dataset& data, const RunSpec& spec) {
  if (spec.tau_grid.empty() || !IsSoftmaxFamily(spec.loss)) {
    return RunExperimentOnce(data, spec);
  }
  const double ratio = spec.loss_params.tau1 / spec.loss_params.tau;
  TopKMetrics best;
  for (double tau : spec.tau_grid) {
    RunSpec point = spec;
    point.loss_params.tau = tau;
    point.loss_params.tau1 = tau * ratio;
    const TopKMetrics m = RunExperimentOnce(data, point);
    if (m.ndcg > best.ndcg) best = m;
  }
  return best;
}

// The two-point grid used by the headline tables (MF peaks near 0.6 on
// the presets, propagated GCN embeddings nearer 0.9; Corollary III.1).
inline std::vector<double> DefaultTauGrid() {
  return FastMode() ? std::vector<double>{0.6} : std::vector<double>{0.6, 0.9};
}

// ---- table formatting helpers ----

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bslrec::bench

#endif  // BSLREC_BENCH_BENCH_UTIL_H_
