// Shared experiment runner for the bench/ harnesses.
//
// Every table/figure binary funnels through RunExperiment so a row in any
// printed table means exactly one thing: train <backbone> with <loss> on
// <dataset> under the standard protocol, report best Recall@20 / NDCG@20.
//
// Set BSLREC_FAST=1 in the environment to shrink epochs (useful on CI);
// printed results then lose fidelity but every code path still runs.
#ifndef BSLREC_BENCH_BENCH_UTIL_H_
#define BSLREC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/losses.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "models/contrastive.h"
#include "models/lightgcn.h"
#include "models/mf.h"
#include "models/ngcf.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace bslrec::bench {

enum class Backbone { kMf, kNgcf, kLightGcn, kSgl, kSimGcl, kLightGcl };

inline const char* BackboneName(Backbone b) {
  switch (b) {
    case Backbone::kMf:
      return "MF";
    case Backbone::kNgcf:
      return "NGCF";
    case Backbone::kLightGcn:
      return "LGN";
    case Backbone::kSgl:
      return "SGL";
    case Backbone::kSimGcl:
      return "SimGCL";
    case Backbone::kLightGcl:
      return "LightGCL";
  }
  return "?";
}

struct RunSpec {
  Backbone backbone = Backbone::kMf;
  LossKind loss = LossKind::kSoftmax;
  LossParams loss_params;
  // Optional temperature grid emulating the paper's per-cell grid search:
  // when non-empty, the run is repeated per tau (keeping the configured
  // tau1/tau2 ratio for BSL) and the best-NDCG result is reported.
  std::vector<double> tau_grid;
  size_t dim = 16;
  int layers = 2;
  double r_noise = 0.0;  // false-negative odds (0 = clean uniform sampler)
  TrainConfig train;
};

inline bool FastMode() {
  const char* env = std::getenv("BSLREC_FAST");
  return env != nullptr && env[0] == '1';
}

// Standard protocol used by (almost) every figure/table.
inline TrainConfig DefaultTrainConfig() {
  TrainConfig cfg;
  cfg.epochs = FastMode() ? 4 : 18;
  cfg.batch_size = 1024;
  cfg.num_negatives = 64;
  cfg.lr = 0.05;
  cfg.weight_decay = 1e-6;
  cfg.eval_every = 6;
  cfg.metric_k = 20;
  cfg.seed = 2024;
  return cfg;
}

inline std::unique_ptr<EmbeddingModel> MakeModel(Backbone backbone,
                                                 const BipartiteGraph& graph,
                                                 size_t dim, int layers,
                                                 Rng& rng) {
  switch (backbone) {
    case Backbone::kMf:
      return std::make_unique<MfModel>(graph.num_users(), graph.num_items(),
                                       dim, rng);
    case Backbone::kNgcf:
      return std::make_unique<NgcfModel>(graph, dim, layers, rng);
    case Backbone::kLightGcn:
      return std::make_unique<LightGcnModel>(graph, dim, layers, rng);
    case Backbone::kSgl: {
      ContrastiveConfig cc;
      cc.kind = AugmentationKind::kEdgeDropout;
      cc.num_layers = layers;
      return std::make_unique<ContrastiveModel>(graph, dim, cc, rng);
    }
    case Backbone::kSimGcl: {
      ContrastiveConfig cc;
      cc.kind = AugmentationKind::kEmbeddingNoise;
      cc.num_layers = layers;
      return std::make_unique<ContrastiveModel>(graph, dim, cc, rng);
    }
    case Backbone::kLightGcl: {
      ContrastiveConfig cc;
      cc.kind = AugmentationKind::kSvdView;
      cc.num_layers = layers;
      return std::make_unique<ContrastiveModel>(graph, dim, cc, rng);
    }
  }
  return nullptr;
}

// Trains one configuration and returns the best (by NDCG) checkpoint
// metrics — the paper's grid-search-with-early-stopping protocol.
inline TopKMetrics RunExperimentOnce(const Dataset& data,
                                     const RunSpec& spec) {
  const BipartiteGraph graph(data);
  Rng rng(spec.train.seed ^ 0x5EEDBA5EULL);
  std::unique_ptr<EmbeddingModel> model =
      MakeModel(spec.backbone, graph, spec.dim, spec.layers, rng);
  const std::unique_ptr<LossFunction> loss =
      CreateLoss(spec.loss, spec.loss_params);
  std::unique_ptr<NegativeSampler> sampler;
  if (spec.r_noise > 0.0) {
    sampler = std::make_unique<NoisyNegativeSampler>(data, spec.r_noise);
  } else {
    sampler = std::make_unique<UniformNegativeSampler>(data);
  }
  Trainer trainer(data, *model, *loss, *sampler, spec.train);
  return trainer.Train().best;
}

inline bool IsSoftmaxFamily(LossKind kind) {
  return kind == LossKind::kSoftmax || kind == LossKind::kBsl ||
         kind == LossKind::kSoftmaxNoVariance ||
         kind == LossKind::kVarianceAugmentedMean;
}

inline TopKMetrics RunExperiment(const Dataset& data, const RunSpec& spec) {
  if (spec.tau_grid.empty() || !IsSoftmaxFamily(spec.loss)) {
    return RunExperimentOnce(data, spec);
  }
  const double ratio = spec.loss_params.tau1 / spec.loss_params.tau;
  TopKMetrics best;
  for (double tau : spec.tau_grid) {
    RunSpec point = spec;
    point.loss_params.tau = tau;
    point.loss_params.tau1 = tau * ratio;
    const TopKMetrics m = RunExperimentOnce(data, point);
    if (m.ndcg > best.ndcg) best = m;
  }
  return best;
}

// The two-point grid used by the headline tables (MF peaks near 0.6 on
// the presets, propagated GCN embeddings nearer 0.9; Corollary III.1).
inline std::vector<double> DefaultTauGrid() {
  return FastMode() ? std::vector<double>{0.6} : std::vector<double>{0.6, 0.9};
}

// ---- table formatting helpers ----

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace bslrec::bench

#endif  // BSLREC_BENCH_BENCH_UTIL_H_
