// Figure 4:
//  (a) NDCG@20 decomposed over 10 item-popularity groups for BPR / MSE /
//      BCE / SL — SL shifts mass toward unpopular groups (fairness).
//  (b) DRO worst-case weight of each sampled negative vs its prediction
//      score for tau in {0.45, 0.6, 0.8} — smaller tau gives a more
//      "extreme" weighting of hard negatives.
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/dro_analysis.h"
#include "bench_util.h"
#include "core/dro.h"
#include "eval/evaluator.h"
#include "models/mf.h"
#include "train/trainer.h"

namespace bb = bslrec::bench;
using bslrec::LossKind;

int main() {
  // Milder popularity skew than the headline preset so the unpopular
  // groups carry measurable test mass (full-scale Yelp behaves this way;
  // the ~50x-scaled preset with zipf 1.0 concentrates the test set into
  // the head decile and flattens the figure).
  bslrec::SyntheticConfig cfg = bslrec::Yelp18Synth();
  cfg.zipf_alpha = 0.7;
  cfg.popularity_gamma = 0.35;
  const bslrec::SyntheticData synth = bslrec::GenerateSynthetic(cfg);
  const bslrec::Dataset& data = synth.dataset;

  bb::PrintHeader("Figure 4a: group-wise NDCG@20 (group 10 = most popular)");
  const std::vector<LossKind> losses = {LossKind::kBpr, LossKind::kMse,
                                        LossKind::kBce, LossKind::kSoftmax};
  std::printf("%-8s", "loss");
  for (int g = 1; g <= 10; ++g) std::printf("   grp%02d", g);
  std::printf("\n");
  bb::PrintRule(92);
  const bslrec::Evaluator eval(data, 20);
  for (LossKind l : losses) {
    const bslrec::BipartiteGraph graph(data);
    bslrec::Rng rng(5);
    bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
    bslrec::LossParams params;
    params.tau = 0.6;
    const auto loss = CreateLoss(l, params);
    bslrec::UniformNegativeSampler sampler(data);
    bslrec::Trainer trainer(data, model, *loss, sampler,
                            bb::DefaultTrainConfig());
    trainer.Train();
    const auto groups = eval.GroupNdcg(model, 10);
    std::printf("%-8s", LossKindName(l).data());
    for (double g : groups) std::printf("%8.4f", g);
    std::printf("\n");
  }

  bb::PrintHeader(
      "Figure 4b: worst-case weight vs prediction score (one batch)");
  // Train SL once, probe one batch of negatives, bin by score.
  bslrec::Rng rng(6);
  bslrec::MfModel model(data.num_users(), data.num_items(), 16, rng);
  bslrec::SoftmaxLoss sl(0.6);
  bslrec::UniformNegativeSampler sampler(data);
  bslrec::Trainer trainer(data, model, sl, sampler, bb::DefaultTrainConfig());
  trainer.Train();
  bslrec::Rng probe_rng(9);
  const auto probe =
      bslrec::CollectNegativeScores(model, data, sampler, 64, 32, probe_rng);

  const std::vector<double> taus = {0.45, 0.6, 0.8};
  std::printf("%-14s", "score bin");
  for (double tau : taus) std::printf("   tau=%.2f", tau);
  std::printf("\n");
  bb::PrintRule(50);
  // 8 equal-width score bins over the observed range; print mean weight.
  float lo = probe.scores[0], hi = probe.scores[0];
  for (float s : probe.scores) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  constexpr int kBins = 8;
  for (int b = 0; b < kBins; ++b) {
    const double bin_lo = lo + (hi - lo) * b / kBins;
    const double bin_hi = lo + (hi - lo) * (b + 1) / kBins;
    std::printf("[%5.2f,%5.2f)", bin_lo, bin_hi);
    for (double tau : taus) {
      const auto weights = bslrec::dro::WorstCaseWeights(probe.scores, tau);
      double acc = 0.0;
      int count = 0;
      for (size_t j = 0; j < probe.scores.size(); ++j) {
        if (probe.scores[j] >= bin_lo &&
            (probe.scores[j] < bin_hi || b == kBins - 1)) {
          acc += weights[j];
          ++count;
        }
      }
      std::printf("%11.6f", count > 0 ? acc / count : 0.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: (a) SL beats classic losses on unpopular groups; "
      "(b) weights rise with score, steeper for smaller tau.\n");
  return 0;
}
