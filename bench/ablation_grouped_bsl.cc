// Ablation: per-sample BSL (the paper's pseudocode, Algorithms 1-2)
// versus the literal Eq. (18) *grouped* BSL, which applies the
// Log-Expectation-Exp structure over a user's set of positives so that
// low-scoring (suspect) positives are explicitly down-weighted.
//
// The paper ships the per-sample form; the grouped form is its stated
// motivation. This harness trains both under growing positive noise to
// show they agree on clean data and that grouping adds a further margin
// when positives are noisy — evidence for the "bilateral robustness"
// mechanism beyond the shipped approximation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/losses.h"
#include "data/noise.h"
#include "eval/evaluator.h"
#include "math/vec.h"
#include "models/mf.h"
#include "sampling/negative_sampler.h"
#include "train/optimizer.h"

namespace bb = bslrec::bench;
using namespace bslrec;  // NOLINT: experiment driver

namespace {

// Custom loop: one training "sample" is (user, ALL of the user's train
// positives, N- shared negatives); the grouped loss sees the whole
// positive set at once.
double TrainGroupedBsl(const Dataset& data, double tau1, double tau2,
                       int epochs, size_t num_negatives) {
  const size_t dim = 16;
  Rng rng(33);
  MfModel model(data.num_users(), data.num_items(), dim, rng);
  GroupedBslLoss loss(tau1, tau2);
  UniformNegativeSampler sampler(data);
  AdamOptimizer optimizer(0.05, 1e-6);
  const Evaluator eval(data, 20);

  std::vector<uint32_t> users(data.num_users());
  for (uint32_t u = 0; u < data.num_users(); ++u) users[u] = u;

  std::vector<float> u_hat(dim);
  std::vector<uint32_t> negs;
  double best_ndcg = 0.0;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    rng.Shuffle(users);
    model.Forward(rng);
    model.ZeroGrad();
    size_t counted = 0;
    for (uint32_t u : users) {
      const auto pos = data.TrainItems(u);
      if (pos.empty()) continue;
      ++counted;
      sampler.Sample(u, num_negatives, rng, negs);

      const float u_norm = vec::Normalize(model.UserEmb(u), u_hat.data(), dim);
      std::vector<float> pos_scores(pos.size()), neg_scores(negs.size());
      Matrix pos_hat(pos.size(), dim), neg_hat(negs.size(), dim);
      std::vector<float> pos_norm(pos.size()), neg_norm(negs.size());
      for (size_t k = 0; k < pos.size(); ++k) {
        pos_norm[k] =
            vec::Normalize(model.ItemEmb(pos[k]), pos_hat.Row(k), dim);
        pos_scores[k] = vec::Dot(u_hat.data(), pos_hat.Row(k), dim);
      }
      for (size_t k = 0; k < negs.size(); ++k) {
        neg_norm[k] =
            vec::Normalize(model.ItemEmb(negs[k]), neg_hat.Row(k), dim);
        neg_scores[k] = vec::Dot(u_hat.data(), neg_hat.Row(k), dim);
      }
      std::vector<float> d_pos(pos.size()), d_neg(negs.size());
      loss.Compute(pos_scores, neg_scores, d_pos, d_neg);

      const float inv = 1.0f / static_cast<float>(data.num_users());
      for (size_t k = 0; k < pos.size(); ++k) {
        vec::AccumulateCosineGrad(u_hat.data(), pos_hat.Row(k), pos_scores[k],
                                  u_norm, d_pos[k] * inv, model.UserGrad(u),
                                  dim);
        vec::AccumulateCosineGrad(pos_hat.Row(k), u_hat.data(), pos_scores[k],
                                  pos_norm[k], d_pos[k] * inv,
                                  model.ItemGrad(pos[k]), dim);
      }
      for (size_t k = 0; k < negs.size(); ++k) {
        vec::AccumulateCosineGrad(u_hat.data(), neg_hat.Row(k), neg_scores[k],
                                  u_norm, d_neg[k] * inv, model.UserGrad(u),
                                  dim);
        vec::AccumulateCosineGrad(neg_hat.Row(k), u_hat.data(), neg_scores[k],
                                  neg_norm[k], d_neg[k] * inv,
                                  model.ItemGrad(negs[k]), dim);
      }
    }
    model.Backward();
    optimizer.Step(model.Params());
    if (epoch % 10 == 0 || epoch == epochs) {
      model.Forward(rng);
      best_ndcg = std::max(best_ndcg, eval.Evaluate(model).ndcg);
    }
  }
  return best_ndcg;
}

double TrainPerSampleBsl(const Dataset& data, double tau1, double tau2) {
  bb::RunSpec spec;
  spec.loss = LossKind::kBsl;
  spec.loss_params.tau = tau2;
  spec.loss_params.tau1 = tau1;
  spec.train = bb::DefaultTrainConfig();
  return bb::RunExperiment(data, spec).ndcg;
}

}  // namespace

int main() {
  bb::PrintHeader(
      "Ablation: per-sample BSL (pseudocode) vs grouped Eq.(18) BSL");
  const bslrec::Dataset clean =
      bslrec::GenerateSynthetic(bslrec::Yelp18Synth()).dataset;
  // Full-batch grouped training takes bigger, rarer steps; give it an
  // epoch budget with equivalent gradient evaluations.
  const int grouped_epochs = bb::FastMode() ? 20 : 120;

  std::printf("%-8s%16s%16s\n", "noise", "per-sample BSL", "grouped BSL");
  bb::PrintRule(44);
  for (double ratio : {0.0, 0.2, 0.4}) {
    Rng noise_rng(88);
    const bslrec::Dataset data =
        ratio > 0.0 ? bslrec::InjectFalsePositives(clean, ratio, noise_rng)
                    : clean;
    const double tau2 = 0.6;
    const double tau1 = tau2 * (1.2 + ratio);
    const double per_sample = TrainPerSampleBsl(data, tau1, tau2);
    const double grouped =
        TrainGroupedBsl(data, tau1, tau2, grouped_epochs, 128);
    std::printf("%-8.0f%16.4f%16.4f\n", 100.0 * ratio, per_sample, grouped);
  }
  std::printf(
      "\nReading: both forms train to comparable accuracy; the grouped "
      "form's positive-side softmax explicitly down-weights low-scoring "
      "(injected) positives — the mechanism Eq.(18) formalizes.\n");
  return 0;
}
