// Negative-sampling pipeline bench: throughput of the counter-based
// parallel sampling + fused batch-scoring path that replaced the serial
// pre-draw stage (PR 4), measured three ways:
//
//   1. raw draws/sec per sampler — the legacy sequential API on one
//      thread vs the counter-based stream API fanned over 1/2/hw
//      workers;
//   2. the sampling+scoring *stage* in isolation — the old pipeline
//      (serial pre-draw on the calling thread, then parallel per-row
//      Normalize + Dot scoring) vs the new one (in-shard stream draws,
//      vec::GatherNormalize + vec::DotBatch), at 1/2/hw workers;
//   3. the real trainer's samples/sec over one epoch at 1/2/hw workers.
//
// Every parallel measurement doubles as a determinism gate: per-shard
// checksums (reduced in shard order) and the trainer's first-epoch loss
// must be bit-identical across worker counts; the process exits non-zero
// on any mismatch, which is what CI's bench-smoke job checks. Emits
// machine-readable BENCH_sampling.json into the working directory.
//
// BSLREC_FAST=1 shrinks the dataset and repetitions for CI.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/losses.h"
#include "data/synthetic.h"
#include "math/matrix.h"
#include "math/rng.h"
#include "math/vec.h"
#include "models/mf.h"
#include "runtime/thread_pool.h"
#include "sampling/negative_sampler.h"
#include "train/trainer.h"

namespace {

using namespace bslrec;  // NOLINT: bench-local convenience

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<size_t> ThreadCounts() {
  // Always measure 2 workers, even on a single-core host: the point is
  // to exercise the threaded path and the bit-identical probe; speedup
  // only materializes where the cores do.
  const size_t hw = runtime::ResolveNumThreads(0);
  std::vector<size_t> counts = {1, 2};
  if (hw > 2) counts.push_back(hw);
  return counts;
}

constexpr uint64_t kStreamSeed = 0xBE7C5EEDULL;
constexpr size_t kGrain = 32;   // matches the trainer's sampled grain
constexpr int kStageReps = 3;   // best-of reps for the stage pipelines

struct Point {
  size_t threads;
  double per_sec;     // draws/sec or samples/sec depending on section
  uint64_t checksum;  // per-shard-reduced probe value
};

// Per-worker scratch for the stage pipelines.
struct Scratch {
  std::vector<uint32_t> negs;
  std::vector<float> u_hat, j_norm, scores;
  Matrix j_hat;
};

// ---- section 1: raw draw throughput --------------------------------------

// One uniform fingerprint for a drawn block: position-weighted so draw
// order matters, summed per shard and reduced in shard order.
uint64_t BlockChecksum(const uint32_t* negs, size_t n) {
  uint64_t c = 0;
  for (size_t j = 0; j < n; ++j) {
    c += (static_cast<uint64_t>(j) + 1) * (static_cast<uint64_t>(negs[j]) + 1);
  }
  return c;
}

double LegacyDrawsPerSec(const NegativeSampler& sampler, const Dataset& data,
                         size_t num_samples, size_t n_neg) {
  Rng rng(11);
  std::vector<uint32_t> out;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t s = 0; s < num_samples; ++s) {
    sampler.Sample(static_cast<uint32_t>(s % data.num_users()), n_neg, rng,
                   out);
  }
  return static_cast<double>(num_samples * n_neg) / SecondsSince(t0);
}

Point StreamDraws(const NegativeSampler& sampler, const Dataset& data,
                  size_t num_samples, size_t n_neg, size_t threads) {
  runtime::ThreadPool pool(threads);
  const SamplerDispatch sample = sampler.Dispatch();
  std::vector<std::vector<uint32_t>> bufs(pool.num_workers(),
                                          std::vector<uint32_t>(n_neg));
  const size_t num_shards = (num_samples + kGrain - 1) / kGrain;
  std::vector<uint64_t> shard_sums(num_shards);
  const auto t0 = std::chrono::steady_clock::now();
  runtime::ParallelFor(
      pool, 0, num_samples, kGrain,
      [&](size_t lo, size_t hi, size_t shard, size_t worker) {
        uint32_t* buf = bufs[worker].data();
        uint64_t sum = 0;
        for (size_t s = lo; s < hi; ++s) {
          StreamRng stream(kStreamSeed, /*epoch=*/0, s);
          sample(static_cast<uint32_t>(s % data.num_users()), stream,
                 {buf, n_neg});
          sum += BlockChecksum(buf, n_neg);
        }
        shard_sums[shard] = sum;
      });
  const double secs = SecondsSince(t0);
  uint64_t checksum = 0;
  for (uint64_t s : shard_sums) checksum += s;
  return {threads, static_cast<double>(num_samples * n_neg) / secs, checksum};
}

// ---- section 2: sampling + scoring stage ---------------------------------

// Reinterprets a double bit pattern as u64 so score sums can feed the
// exact-equality probe without any tolerance.
uint64_t Bits(double x) {
  uint64_t u;
  static_assert(sizeof(u) == sizeof(x));
  __builtin_memcpy(&u, &x, sizeof(u));
  return u;
}

// The pre-PR-4 pipeline: negatives for the whole block are drawn
// serially on the calling thread from one sequential stream, then the
// scoring loop fans out and does one strided Normalize + Dot per draw.
Point SerialPredrawStage(const NegativeSampler& sampler, const MfModel& model,
                         const std::vector<Edge>& edges, size_t n_neg,
                         size_t threads) {
  runtime::ThreadPool pool(threads);
  const size_t d = model.dim();
  const size_t b = edges.size();
  std::vector<Scratch> scratch(pool.num_workers());
  for (Scratch& ws : scratch) {
    ws.u_hat.resize(d);
    ws.j_norm.resize(n_neg);
    ws.scores.resize(n_neg);
    ws.j_hat = Matrix(n_neg, d);
  }
  std::vector<uint32_t> batch_negs(b * n_neg);
  std::vector<uint32_t> tmp;
  const size_t num_shards = (b + kGrain - 1) / kGrain;
  std::vector<double> shard_sums(num_shards);

  // Best-of-reps: one rep is a fresh pass over the whole edge list (the
  // sequential Rng restarts, so every rep draws identical negatives);
  // min-time cuts scheduler noise on small hosts.
  double best_secs = 0.0;
  double total = 0.0;
  for (int rep = 0; rep < kStageReps; ++rep) {
    Rng rng(13);
    const auto t0 = std::chrono::steady_clock::now();
    // Serial pre-draw: the stage this PR deleted from the trainer.
    for (size_t s = 0; s < b; ++s) {
      sampler.Sample(edges[s].user, n_neg, rng, tmp);
      std::copy(tmp.begin(), tmp.end(), batch_negs.begin() + s * n_neg);
    }
    runtime::ParallelFor(
        pool, 0, b, kGrain,
        [&](size_t lo, size_t hi, size_t shard, size_t worker) {
          Scratch& ws = scratch[worker];
          double sum = 0.0;
          for (size_t s = lo; s < hi; ++s) {
            const uint32_t* negs = batch_negs.data() + s * n_neg;
            vec::Normalize(model.UserEmb(edges[s].user), ws.u_hat.data(), d);
            for (size_t j = 0; j < n_neg; ++j) {
              ws.j_norm[j] =
                  vec::Normalize(model.ItemEmb(negs[j]), ws.j_hat.Row(j), d);
              ws.scores[j] = vec::Dot(ws.u_hat.data(), ws.j_hat.Row(j), d);
            }
            for (size_t j = 0; j < n_neg; ++j) sum += ws.scores[j];
          }
          shard_sums[shard] = sum;
        });
    const double secs = SecondsSince(t0);
    if (rep == 0 || secs < best_secs) best_secs = secs;
    total = 0.0;
    for (double s : shard_sums) total += s;
  }
  return {threads, static_cast<double>(b) / best_secs, Bits(total)};
}

// The PR 4 pipeline: counter-based in-shard draws, fused gather +
// blocked batch scoring. Same work, no serial stage.
Point FusedStreamStage(const NegativeSampler& sampler, const MfModel& model,
                       const std::vector<Edge>& edges, size_t n_neg,
                       size_t threads) {
  runtime::ThreadPool pool(threads);
  const SamplerDispatch sample = sampler.Dispatch();
  const Matrix& item_table = model.FinalItemMatrix();
  const size_t d = model.dim();
  const size_t b = edges.size();
  std::vector<Scratch> scratch(pool.num_workers());
  for (Scratch& ws : scratch) {
    ws.negs.resize(n_neg);
    ws.u_hat.resize(d);
    ws.j_norm.resize(n_neg);
    ws.scores.resize(n_neg);
    ws.j_hat = Matrix(n_neg, d);
  }
  const size_t num_shards = (b + kGrain - 1) / kGrain;
  std::vector<double> shard_sums(num_shards);

  double best_secs = 0.0;
  double total = 0.0;
  for (int rep = 0; rep < kStageReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    runtime::ParallelFor(
        pool, 0, b, kGrain,
        [&](size_t lo, size_t hi, size_t shard, size_t worker) {
          Scratch& ws = scratch[worker];
          double sum = 0.0;
          for (size_t s = lo; s < hi; ++s) {
            StreamRng stream(kStreamSeed, /*epoch=*/1, s);
            sample(edges[s].user, stream, {ws.negs.data(), n_neg});
            vec::Normalize(model.UserEmb(edges[s].user), ws.u_hat.data(), d);
            vec::GatherNormalize(item_table.data(), item_table.cols(),
                                 ws.negs.data(), n_neg, d, ws.j_hat.data(),
                                 ws.j_norm.data());
            vec::DotBatch(ws.u_hat.data(), ws.j_hat.data(), n_neg, d,
                          ws.scores.data());
            for (size_t j = 0; j < n_neg; ++j) sum += ws.scores[j];
          }
          shard_sums[shard] = sum;
        });
    const double secs = SecondsSince(t0);
    if (rep == 0 || secs < best_secs) best_secs = secs;
    total = 0.0;
    for (double s : shard_sums) total += s;
  }
  return {threads, static_cast<double>(b) / best_secs, Bits(total)};
}

// ---- section 3: end-to-end trainer ---------------------------------------

struct TrainPoint {
  size_t threads;
  double samples_per_sec;
  double first_epoch_loss;
};

TrainPoint TrainerRun(const Dataset& data, size_t dim, size_t n_neg,
                      size_t threads) {
  Rng rng(6);
  MfModel model(data.num_users(), data.num_items(), dim, rng);
  BilateralSoftmaxLoss loss(0.2, 0.25);
  UniformNegativeSampler sampler(data);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 1024;
  tc.num_negatives = n_neg;
  tc.seed = 99;
  tc.runtime.num_threads = threads;
  Trainer trainer(data, model, loss, sampler, tc);
  const auto t0 = std::chrono::steady_clock::now();
  const EpochStats stats = trainer.RunEpoch(1);
  const double secs = SecondsSince(t0);
  return {threads, static_cast<double>(data.num_train()) / secs,
          stats.avg_loss};
}

bool SameChecksums(const std::vector<Point>& pts) {
  for (const Point& p : pts) {
    if (p.checksum != pts.front().checksum) return false;
  }
  return true;
}

void PrintJsonPoints(FILE* out, const char* key,
                     const std::vector<Point>& pts) {
  std::fprintf(out, "  \"%s\": [\n", key);
  for (size_t i = 0; i < pts.size(); ++i) {
    std::fprintf(out,
                 "    {\"threads\": %zu, \"per_sec\": %.1f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 pts[i].threads, pts[i].per_sec,
                 pts[i].per_sec / pts[0].per_sec,
                 i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
}

}  // namespace

int main() {
  const bool fast = bench::FastMode();
  SyntheticConfig cfg;
  cfg.num_users = fast ? 400 : 1500;
  cfg.num_items = fast ? 300 : 1200;
  cfg.num_clusters = 10;
  cfg.avg_items_per_user = 18.0;
  cfg.seed = 77;
  const Dataset data = GenerateSynthetic(cfg).dataset;
  const size_t dim = fast ? 16 : 48;
  const size_t n_neg = fast ? 16 : 64;
  const size_t draw_samples = fast ? 20000 : 200000;

  std::printf(
      "sampling bench: %u users, %u items, %zu train edges, dim %zu, "
      "N- %zu\n",
      data.num_users(), data.num_items(), data.num_train(), dim, n_neg);

  bool identical = true;

  // ---- raw draw throughput per sampler ----
  const UniformNegativeSampler uniform(data);
  const PopularityNegativeSampler popularity(data, 0.75);
  const NoisyNegativeSampler noisy(data, 1.0);
  struct SamplerRow {
    const char* name;
    const NegativeSampler* sampler;
    double legacy_per_sec = 0.0;
    std::vector<Point> stream;
  };
  std::vector<SamplerRow> rows = {{"uniform", &uniform, 0.0, {}},
                                  {"popularity", &popularity, 0.0, {}},
                                  {"noisy", &noisy, 0.0, {}}};
  for (SamplerRow& row : rows) {
    row.legacy_per_sec =
        LegacyDrawsPerSec(*row.sampler, data, draw_samples, n_neg);
    for (size_t threads : ThreadCounts()) {
      row.stream.push_back(
          StreamDraws(*row.sampler, data, draw_samples, n_neg, threads));
      std::printf("draws      %-10s threads=%zu  %.2e draws/sec "
                  "(legacy serial %.2e)\n",
                  row.name, threads, row.stream.back().per_sec,
                  row.legacy_per_sec);
    }
    identical = identical && SameChecksums(row.stream);
  }

  // ---- sampling + scoring stage: serial pre-draw vs fused stream ----
  Rng model_rng(5);
  MfModel model(data.num_users(), data.num_items(), dim, model_rng);
  model.Forward(model_rng);
  const std::vector<Edge>& edges = data.train_edges();
  std::vector<Point> baseline, fused;
  for (size_t threads : ThreadCounts()) {
    baseline.push_back(
        SerialPredrawStage(uniform, model, edges, n_neg, threads));
    fused.push_back(FusedStreamStage(uniform, model, edges, n_neg, threads));
    std::printf("stage      threads=%zu  serial-predraw %.0f samples/sec, "
                "fused-stream %.0f samples/sec (%.2fx)\n",
                threads, baseline.back().per_sec, fused.back().per_sec,
                fused.back().per_sec / baseline.back().per_sec);
  }
  // The baseline is only *expected* deterministic across thread counts
  // for the scoring half; its checksum probe still must hold (the serial
  // pre-draw consumes one fixed stream regardless of workers).
  identical = identical && SameChecksums(baseline) && SameChecksums(fused);
  const double improvement_at_hw =
      fused.back().per_sec / baseline.back().per_sec;

  // ---- end-to-end trainer ----
  std::vector<TrainPoint> train_points;
  for (size_t threads : ThreadCounts()) {
    train_points.push_back(TrainerRun(data, dim, n_neg, threads));
    std::printf("trainer    threads=%zu  %.0f samples/sec  loss %.6f\n",
                threads, train_points.back().samples_per_sec,
                train_points.back().first_epoch_loss);
  }
  for (const TrainPoint& p : train_points) {
    identical =
        identical && p.first_epoch_loss == train_points[0].first_epoch_loss;
  }

  std::printf("fused vs serial-predraw at hw threads: %.2fx\n",
              improvement_at_hw);
  std::printf("bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO — BUG");

  // ---- machine-readable output ----
  FILE* out = bench::BeginBenchJson("BENCH_sampling.json");
  if (out == nullptr) return 1;
  std::fprintf(out,
               "  \"dataset\": {\"users\": %u, \"items\": %u, "
               "\"train_edges\": %zu, \"dim\": %zu, \"num_negatives\": "
               "%zu},\n",
               data.num_users(), data.num_items(), data.num_train(), dim,
               n_neg);
  std::fprintf(out, "  \"samplers\": [\n");
  for (size_t r = 0; r < rows.size(); ++r) {
    const SamplerRow& row = rows[r];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"legacy_serial_draws_per_sec\": "
                 "%.1f, \"stream\": [",
                 row.name, row.legacy_per_sec);
    for (size_t i = 0; i < row.stream.size(); ++i) {
      std::fprintf(out, "{\"threads\": %zu, \"draws_per_sec\": %.1f}%s",
                   row.stream[i].threads, row.stream[i].per_sec,
                   i + 1 < row.stream.size() ? ", " : "");
    }
    std::fprintf(out, "]}%s\n", r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  PrintJsonPoints(out, "stage_serial_predraw", baseline);
  PrintJsonPoints(out, "stage_fused_stream", fused);
  std::fprintf(out, "  \"stage_improvement_at_hw_threads\": %.3f,\n",
               improvement_at_hw);
  std::fprintf(out, "  \"trainer\": [\n");
  for (size_t i = 0; i < train_points.size(); ++i) {
    const TrainPoint& p = train_points[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"samples_per_sec\": %.1f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 p.threads, p.samples_per_sec,
                 p.samples_per_sec / train_points[0].samples_per_sec,
                 i + 1 < train_points.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  bench::FinishBenchJson(out, "BENCH_sampling.json", identical);
  return identical ? 0 : 1;
}
